// Command cfc-verify model-checks the signature schemes against the
// paper's Section 4 correctness conditions: the sufficient condition (every
// single control-flow error reaching a check is detected — no false
// negatives) and the necessary condition (error-free runs never report —
// no false positives). EdgCF and RCF satisfy both (the paper's Claim 1);
// the prior techniques fail the sufficient condition, and the checker
// prints a concrete counterexample execution for each.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	var scheme = flag.String("scheme", "", "verify one scheme (EdgCF|RCF|ECF|CFCSS|ECCA); default: all")
	var app cli.App
	app.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := app.Open(); err != nil {
		fmt.Fprintln(os.Stderr, "cfc-verify:", err)
		os.Exit(1)
	}

	names := []string{"EdgCF", "RCF", "ECF", "CFCSS", "ECCA"}
	if *scheme != "" {
		names = []string{*scheme}
	}
	for _, name := range names {
		res, err := core.VerifySchemeObs(name, app.Tracer(), app.Registry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfc-verify:", err)
			os.Exit(1)
		}
		fmt.Printf("%-6s sufficient=%-5v necessary=%-5v (%d states explored)\n",
			res.Scheme, res.Sufficient, res.Necessary, res.StatesExplored)
		if res.FalseNegative != nil {
			fmt.Println("  counterexample (missed error):")
			for _, ev := range res.FalseNegative {
				fmt.Printf("    %s\n", ev)
			}
		}
		if res.FalsePositive != nil {
			fmt.Println("  counterexample (false report):")
			for _, ev := range res.FalsePositive {
				fmt.Printf("    %s\n", ev)
			}
		}
	}
	if err := app.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "cfc-verify:", err)
		os.Exit(1)
	}
}
