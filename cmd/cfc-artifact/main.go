// Command cfc-artifact serves a standalone warm-artifact store: the
// content-addressed snapshot tier (internal/artifact) as its own process,
// so a fleet of cfc-serve replicas can share one warm store instead of
// each paying translator warm-up and checkpoint reference recording.
//
//	GET  /v1/artifacts                    ref index (fingerprint digests)
//	GET  /v1/artifacts/ref/{ref}          resolve a ref to its blob digest
//	PUT  /v1/artifacts/ref/{ref}          link a ref to an uploaded blob
//	GET  /v1/artifacts/blob/{digest}      fetch a sealed artifact envelope
//	PUT  /v1/artifacts/blob/{digest}      upload (digest-verified on write)
//	GET  /healthz                         liveness
//
// With -dir the store persists across restarts; without it, blobs live in
// memory for the life of the process. Replicas point at it with
// `cfc-serve -artifact-url http://host:9290`.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/artifact"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9290", "listen address")
	dir := flag.String("dir", "", "persistent store directory (empty: in-memory)")
	flag.Parse()

	store := artifact.NewStore(*dir)
	hs := &http.Server{Addr: *addr, Handler: artifact.Handler(store)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "cfc-artifact: listening on http://%s\n", *addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "cfc-artifact:", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		if err := hs.Shutdown(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "cfc-artifact: shutdown:", err)
		}
	}
}
