// Command cfc-serve runs the batch injection service: an HTTP API over a
// warm-session registry, so repeated campaigns on the same configuration
// pay the translator warm-up and the checkpoint reference recording once —
// and, with -cache-dir, not even once per process.
//
//	POST /v1/campaigns   {"workload":"164.gzip","scale":0.05,"technique":"RCF",
//	                      "style":"CMOVcc","policy":"ALLBB","ckpt_interval":-1,
//	                      "campaigns":[{"seed":1,"samples":200}]}
//	                     → NDJSON, one record per campaign as it completes
//	                       ("progress_ms":N interleaves live progress frames)
//	GET  /v1/campaigns/{id}/progress   poll a running batch's progress
//	POST /v1/bench       run the bench suite (figures 12/14/15, baseline,
//	                     ablations, coverage matrix) through the warm
//	                     registry → NDJSON rows, tables and span timings
//	GET  /v1/sessions    warm-session inventory
//	GET  /v1/version     build and configuration info
//	GET  /v1/metrics     metrics snapshot as JSON (what cfc-front merges)
//	GET  /metrics        Prometheus text exposition (incl. Go runtime gauges)
//	GET  /healthz        readiness: {"status":"ok|draining|restoring"}, 503 while
//	                     draining so front doors and probes eject the replica
//
// -debug-addr serves net/http/pprof on a second loopback listener.
//
// The warm-artifact tier (see internal/artifact) distributes warm state
// across replicas: -artifact-dir keeps a local content-addressed store,
// -artifact-url fetches/publishes against a remote store (cfc-artifact
// or another replica's -artifact-addr), and -artifact-addr serves this
// process's store on a second listener. A cold replica pointed at a warm
// store builds sessions with zero reference recordings and zero block
// translations; any verification failure degrades to a local build.
//
// Reports are byte-identical to the equivalent cfc-inject invocation for
// every worker count and cache temperature. SIGINT/SIGTERM drains in-flight
// campaigns before exiting; a second signal cancels them.
//
// -bench-json runs the serving benchmark instead: the same batch against a
// cold and a warm registry over real HTTP, recording campaigns/sec for
// each and whether the two streams matched byte for byte. -artifact-json
// does the same for the artifact tier: replica A builds locally and
// publishes, a fresh replica B cold-starts against the warm store, and
// the record carries the cold-vs-fetched speedup and byte-identity.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves the default mux's profiles
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/session"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8321", "listen address")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
		cacheDir     = flag.String("cache-dir", "", "persist checkpoint logs under this directory")
		maxSessions  = flag.Int("max-sessions", 64, "warm sessions kept before LRU eviction (<=0 unbounded)")
		benchOut     = flag.String("bench-json", "", "run the cold-vs-warm serving benchmark, write the record here, and exit")
		artifactDir  = flag.String("artifact-dir", "", "enable the warm-artifact tier with a local store under this directory")
		artifactURL  = flag.String("artifact-url", "", "fetch/publish warm artifacts against this remote store (enables the tier)")
		artifactAddr = flag.String("artifact-addr", "", "serve this process's artifact store on a second listener (enables the tier)")
		artifactOut  = flag.String("artifact-json", "", "run the cold-vs-fetched artifact benchmark, write the record here, and exit")
	)
	// The server defaults the campaign cell cache on, sharing -cache-dir
	// with the checkpoint logs (memory-only without one); -graph-cache
	// off/on/dir overrides.
	app := cli.App{GraphCache: "auto"}
	app.BindFlags(flag.CommandLine)
	flag.Parse()
	if app.GraphCache == "auto" {
		if *cacheDir != "" {
			app.GraphCache = *cacheDir
		} else {
			app.GraphCache = "on"
		}
	}
	fatalIf(app.Open())

	// The server always carries a live registry for /metrics; -metrics
	// additionally snapshots it to a file on exit.
	reg := app.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// The warm-artifact tier: any artifact flag enables the client; the
	// local store is memory-only unless -artifact-dir persists it.
	var artifacts *artifact.Client
	var store *artifact.Store
	if *artifactDir != "" || *artifactURL != "" || *artifactAddr != "" {
		store = artifact.NewStore(*artifactDir)
		artifacts = &artifact.Client{BaseURL: *artifactURL, Local: store, Metrics: reg}
	}
	registry := session.NewRegistry(session.Config{
		CacheDir:    *cacheDir,
		MaxSessions: *maxSessions,
		Metrics:     reg,
		Graph:       app.Graph(),
		Artifacts:   artifacts,
	})
	srv := &session.Server{Registry: registry, Metrics: reg}

	if *benchOut != "" {
		fatalIf(writeBenchJSON(*benchOut, *cacheDir, app.Workers))
		fatalIf(app.Close())
		return
	}
	if *artifactOut != "" {
		fatalIf(writeArtifactJSON(*artifactOut, app.Workers))
		fatalIf(app.Close())
		return
	}

	if *artifactAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "cfc-serve: artifact store on http://%s\n", *artifactAddr)
			if err := http.ListenAndServe(*artifactAddr, artifact.Handler(store)); err != nil {
				fmt.Fprintln(os.Stderr, "cfc-serve: artifact listener:", err)
			}
		}()
	}

	if *debugAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "cfc-serve: pprof on http://%s/debug/pprof/\n", *debugAddr)
			// http.DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cfc-serve: debug listener:", err)
			}
		}()
	}

	// First signal: stop accepting and drain in-flight campaigns. Second:
	// cancel the campaigns themselves (every handler's request context is
	// derived from runCtx via BaseContext).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()

	// One mux: the bench suite (package bench, which imports session)
	// mounts as an extra route on the session server's own mux, behind the
	// same request bounds, error shape and batch tracking.
	mux := srv.Handler(
		session.Route{Pattern: "POST /v1/bench", Handler: bench.Handler(srv)},
	)

	hs := &http.Server{
		Addr:        *addr,
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return runCtx },
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "cfc-serve: listening on http://%s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener died on its own; still flush and close the
		// observability sinks before exiting.
		if cerr := app.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "cfc-serve:", cerr)
		}
		fatalIf(err)
	case <-ctx.Done():
		stop() // restore default handling: a second signal now cancels below
		fmt.Fprintln(os.Stderr, "cfc-serve: draining (signal again to abort campaigns)")
		second, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		go func() {
			<-second.Done()
			cancelRuns()
		}()
		// Drain in three steps: refuse new work with a JSON 503 while the
		// listener still accepts (so clients and the front door see a clean
		// fast-fail, never connection-refused, and /healthz flips to
		// draining), wait for admitted campaigns to finish, then close the
		// listener itself.
		srv.StartDrain()
		srv.DrainWait()
		if err := hs.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "cfc-serve: shutdown:", err)
		}
	}
	fatalIf(app.Close())
}

// benchRecord is the -bench-json schema: the same batch served by a cold
// registry (session build + recording on the first campaign) and a warm
// one, with the byte-identity verdict across the two streams.
type benchRecord struct {
	Workload     string  `json:"workload"`
	Technique    string  `json:"technique"`
	Samples      int     `json:"samples"`
	Campaigns    int     `json:"campaigns"`
	CkptInterval int64   `json:"ckpt_interval"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	ColdSec      float64 `json:"cold_sec"`
	WarmSec      float64 `json:"warm_sec"`
	ColdPerSec   float64 `json:"cold_campaigns_per_sec"`
	WarmPerSec   float64 `json:"warm_campaigns_per_sec"`
	// Speedup is cold wall-clock over warm wall-clock: how much the warm
	// session saves per batch. CI gates on >= 2.
	Speedup float64 `json:"speedup"`
	// Identical reports the cold and warm NDJSON streams matched byte for
	// byte (elapsed_sec, the only legitimately varying field, excluded).
	Identical bool `json:"identical"`
}

// writeBenchJSON starts a real server on a loopback port, posts the same
// batch twice — the first pays the session build, the second rides the
// warm session — and records both timings.
func writeBenchJSON(path, cacheDir string, workers int) error {
	reg := obs.NewRegistry()
	registry := session.NewRegistry(session.Config{CacheDir: cacheDir, Metrics: reg})
	srv := &session.Server{Registry: registry, Metrics: reg}
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	const nCampaigns, nSamples = 2, 100
	req := session.Request{
		Workload: "164.gzip", Scale: 0.05, Technique: "RCF", Style: "CMOVcc",
		Policy: "ALLBB", CkptInterval: -1, Workers: workers,
	}
	for i := 0; i < nCampaigns; i++ {
		req.Campaigns = append(req.Campaigns, session.SpecJSON{Seed: int64(i + 1), Samples: nSamples})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	post := func() (string, time.Duration, error) {
		start := time.Now()
		resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", 0, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return "", 0, fmt.Errorf("POST /v1/campaigns: %s: %s", resp.Status, out)
		}
		return string(out), time.Since(start), nil
	}
	coldBody, coldDur, err := post()
	if err != nil {
		return err
	}
	warmBody, warmDur, err := post()
	if err != nil {
		return err
	}

	rec := benchRecord{
		Workload:     req.Workload,
		Technique:    req.Technique,
		Samples:      nSamples,
		Campaigns:    nCampaigns,
		CkptInterval: req.CkptInterval,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		ColdSec:      coldDur.Seconds(),
		WarmSec:      warmDur.Seconds(),
		Identical:    normalizeStream(coldBody) == normalizeStream(warmBody),
	}
	if coldDur > 0 {
		rec.ColdPerSec = float64(nCampaigns) / coldDur.Seconds()
	}
	if warmDur > 0 {
		rec.WarmPerSec = float64(nCampaigns) / warmDur.Seconds()
		rec.Speedup = coldDur.Seconds() / warmDur.Seconds()
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// artifactRecord is the -artifact-json schema: the same batch served by
// a replica that builds its warm state locally (and publishes it) and by
// a fresh replica that fetches it from the shared store, with the
// byte-identity verdict and the fetched replica's build accounting.
type artifactRecord struct {
	Workload     string  `json:"workload"`
	Technique    string  `json:"technique"`
	Samples      int     `json:"samples"`
	Campaigns    int     `json:"campaigns"`
	CkptInterval int64   `json:"ckpt_interval"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	ColdSec      float64 `json:"cold_sec"`
	FetchedSec   float64 `json:"fetched_sec"`
	// Speedup is cold wall-clock over fetched wall-clock: what fetching
	// the warm state saves a cold replica. CI gates on >= 2.
	Speedup float64 `json:"speedup"`
	// Identical reports the cold and fetched NDJSON streams matched byte
	// for byte (elapsed_sec excluded).
	Identical bool `json:"identical"`
	// The fetched replica's accounting: it must have restored (not
	// built), recorded nothing and translated nothing.
	FetchedRestores   uint64 `json:"fetched_restores"`
	FetchedWarmBuilds uint64 `json:"fetched_warm_builds"`
	FetchedRecordings uint64 `json:"fetched_recordings"`
}

// writeArtifactJSON measures the artifact tier end to end over real
// HTTP: an artifact store on one loopback listener, replica A building
// locally and publishing, then a fresh replica B cold-starting against
// the warm store. Both replicas serve the same batch; the record carries
// the wall-clock of each first batch and the byte-identity verdict.
func writeArtifactJSON(path string, workers int) error {
	// Small campaigns on purpose: the tier's win is the one-time session
	// build (translator warm-up + reference recording), so the batch is
	// sized to the cold-start-dominated shape replicas actually see.
	const nCampaigns, nSamples = 2, 5
	req := session.Request{
		Workload: "164.gzip", Scale: 0.25, Technique: "RCF", Style: "CMOVcc",
		Policy: "ALLBB", CkptInterval: -1, Workers: workers,
	}
	for i := 0; i < nCampaigns; i++ {
		req.Campaigns = append(req.Campaigns, session.SpecJSON{Seed: int64(i + 1), Samples: nSamples})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	// replica starts a campaign server wired to the shared store and posts
	// the batch once, returning the stream, its wall-clock and the
	// replica's metrics registry.
	replica := func(storeURL string) (string, time.Duration, *obs.Registry, error) {
		reg := obs.NewRegistry()
		registry := session.NewRegistry(session.Config{
			Metrics:   reg,
			Artifacts: &artifact.Client{BaseURL: storeURL, Local: artifact.NewStore(""), Metrics: reg},
		})
		srv := &session.Server{Registry: registry, Metrics: reg}
		hs := &http.Server{Handler: srv.Handler()}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", 0, nil, err
		}
		go hs.Serve(ln)
		defer hs.Close()
		start := time.Now()
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/campaigns",
			"application/json", bytes.NewReader(body))
		if err != nil {
			return "", 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", 0, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return "", 0, nil, fmt.Errorf("POST /v1/campaigns: %s: %s", resp.Status, out)
		}
		return string(out), time.Since(start), reg, nil
	}

	// attempt runs one full cold-then-fetched pair against a fresh store.
	attempt := func() (artifactRecord, error) {
		var rec artifactRecord
		storeLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return rec, err
		}
		storeSrv := &http.Server{Handler: artifact.Handler(artifact.NewStore(""))}
		go storeSrv.Serve(storeLn)
		defer storeSrv.Close()
		storeURL := "http://" + storeLn.Addr().String()

		coldBody, coldDur, _, err := replica(storeURL) // builds locally, publishes
		if err != nil {
			return rec, err
		}
		fetchedBody, fetchedDur, fetchedReg, err := replica(storeURL) // restores from the store
		if err != nil {
			return rec, err
		}

		counters := fetchedReg.Snapshot().Counters
		recordings := uint64(0)
		for name, v := range counters {
			if strings.HasPrefix(name, "ckpt_recordings_total") {
				recordings += v
			}
		}
		rec = artifactRecord{
			Workload:          req.Workload,
			Technique:         req.Technique,
			Samples:           nSamples,
			Campaigns:         nCampaigns,
			CkptInterval:      req.CkptInterval,
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			NumCPU:            runtime.NumCPU(),
			ColdSec:           coldDur.Seconds(),
			FetchedSec:        fetchedDur.Seconds(),
			Identical:         normalizeStream(coldBody) == normalizeStream(fetchedBody),
			FetchedRestores:   counters["session_restores_total"],
			FetchedWarmBuilds: counters["session_warm_builds_total"],
			FetchedRecordings: recordings,
		}
		if fetchedDur > 0 {
			rec.Speedup = coldDur.Seconds() / fetchedDur.Seconds()
		}
		return rec, nil
	}

	// Best of three for the timing; the correctness fields (identity,
	// restore/build/recording counters) must hold on every attempt, so
	// a lucky fast run cannot mask a broken one.
	var best artifactRecord
	for i := 0; i < 3; i++ {
		rec, err := attempt()
		if err != nil {
			return err
		}
		if i == 0 || rec.Speedup > best.Speedup {
			identical := best.Identical || i == 0
			best = rec
			best.Identical = rec.Identical && identical
		} else {
			best.Identical = best.Identical && rec.Identical
		}
		if rec.FetchedRestores != 1 || rec.FetchedWarmBuilds != 0 || rec.FetchedRecordings != 0 {
			best = rec // a broken attempt is the record: fail loudly downstream
			break
		}
	}
	out, err := json.MarshalIndent(best, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// normalizeStream zeroes the wall-clock field of every NDJSON record so
// the cold and warm streams compare byte for byte.
func normalizeStream(s string) string {
	var b bytes.Buffer
	dec := json.NewDecoder(bytes.NewReader([]byte(s)))
	for {
		var rec session.RecordJSON
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return b.String()
			}
			return s // not a clean stream; compare raw
		}
		rec.ElapsedSec = 0
		out, err := json.Marshal(rec)
		if err != nil {
			return s
		}
		b.Write(out)
		b.WriteByte('\n')
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfc-serve:", err)
		os.Exit(1)
	}
}
