// Command cfc-serve runs the batch injection service: an HTTP API over a
// warm-session registry, so repeated campaigns on the same configuration
// pay the translator warm-up and the checkpoint reference recording once —
// and, with -cache-dir, not even once per process.
//
//	POST /v1/campaigns   {"workload":"164.gzip","scale":0.05,"technique":"RCF",
//	                      "style":"CMOVcc","policy":"ALLBB","ckpt_interval":-1,
//	                      "campaigns":[{"seed":1,"samples":200}]}
//	                     → NDJSON, one record per campaign as it completes
//	                       ("progress_ms":N interleaves live progress frames)
//	GET  /v1/campaigns/{id}/progress   poll a running batch's progress
//	POST /v1/bench       run the bench suite (figures 12/14/15, baseline,
//	                     ablations, coverage matrix) through the warm
//	                     registry → NDJSON rows, tables and span timings
//	GET  /v1/sessions    warm-session inventory
//	GET  /v1/version     build and configuration info
//	GET  /metrics        Prometheus text exposition (incl. Go runtime gauges)
//	GET  /healthz        liveness
//
// -debug-addr serves net/http/pprof on a second loopback listener.
//
// Reports are byte-identical to the equivalent cfc-inject invocation for
// every worker count and cache temperature. SIGINT/SIGTERM drains in-flight
// campaigns before exiting; a second signal cancels them.
//
// -bench-json runs the serving benchmark instead: the same batch against a
// cold and a warm registry over real HTTP, recording campaigns/sec for
// each and whether the two streams matched byte for byte.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves the default mux's profiles
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/session"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8321", "listen address")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
		cacheDir    = flag.String("cache-dir", "", "persist checkpoint logs under this directory")
		maxSessions = flag.Int("max-sessions", 64, "warm sessions kept before LRU eviction (<=0 unbounded)")
		benchOut    = flag.String("bench-json", "", "run the cold-vs-warm serving benchmark, write the record here, and exit")
	)
	// The server defaults the campaign cell cache on, sharing -cache-dir
	// with the checkpoint logs (memory-only without one); -graph-cache
	// off/on/dir overrides.
	app := cli.App{GraphCache: "auto"}
	app.BindFlags(flag.CommandLine)
	flag.Parse()
	if app.GraphCache == "auto" {
		if *cacheDir != "" {
			app.GraphCache = *cacheDir
		} else {
			app.GraphCache = "on"
		}
	}
	fatalIf(app.Open())

	// The server always carries a live registry for /metrics; -metrics
	// additionally snapshots it to a file on exit.
	reg := app.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	registry := session.NewRegistry(session.Config{
		CacheDir:    *cacheDir,
		MaxSessions: *maxSessions,
		Metrics:     reg,
		Graph:       app.Graph(),
	})
	srv := &session.Server{Registry: registry, Metrics: reg}

	if *benchOut != "" {
		fatalIf(writeBenchJSON(*benchOut, *cacheDir, app.Workers))
		fatalIf(app.Close())
		return
	}

	if *debugAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "cfc-serve: pprof on http://%s/debug/pprof/\n", *debugAddr)
			// http.DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cfc-serve: debug listener:", err)
			}
		}()
	}

	// First signal: stop accepting and drain in-flight campaigns. Second:
	// cancel the campaigns themselves (every handler's request context is
	// derived from runCtx via BaseContext).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()

	// The bench suite shares the warm registry but lives in package bench
	// (which imports session), so it mounts on an outer mux.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("POST /v1/bench", bench.Handler(registry, reg))

	hs := &http.Server{
		Addr:        *addr,
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return runCtx },
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "cfc-serve: listening on http://%s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener died on its own; still flush and close the
		// observability sinks before exiting.
		if cerr := app.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "cfc-serve:", cerr)
		}
		fatalIf(err)
	case <-ctx.Done():
		stop() // restore default handling: a second signal now cancels below
		fmt.Fprintln(os.Stderr, "cfc-serve: draining (signal again to abort campaigns)")
		second, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		go func() {
			<-second.Done()
			cancelRuns()
		}()
		if err := hs.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "cfc-serve: shutdown:", err)
		}
	}
	fatalIf(app.Close())
}

// benchRecord is the -bench-json schema: the same batch served by a cold
// registry (session build + recording on the first campaign) and a warm
// one, with the byte-identity verdict across the two streams.
type benchRecord struct {
	Workload     string  `json:"workload"`
	Technique    string  `json:"technique"`
	Samples      int     `json:"samples"`
	Campaigns    int     `json:"campaigns"`
	CkptInterval int64   `json:"ckpt_interval"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	ColdSec      float64 `json:"cold_sec"`
	WarmSec      float64 `json:"warm_sec"`
	ColdPerSec   float64 `json:"cold_campaigns_per_sec"`
	WarmPerSec   float64 `json:"warm_campaigns_per_sec"`
	// Speedup is cold wall-clock over warm wall-clock: how much the warm
	// session saves per batch. CI gates on >= 2.
	Speedup float64 `json:"speedup"`
	// Identical reports the cold and warm NDJSON streams matched byte for
	// byte (elapsed_sec, the only legitimately varying field, excluded).
	Identical bool `json:"identical"`
}

// writeBenchJSON starts a real server on a loopback port, posts the same
// batch twice — the first pays the session build, the second rides the
// warm session — and records both timings.
func writeBenchJSON(path, cacheDir string, workers int) error {
	reg := obs.NewRegistry()
	registry := session.NewRegistry(session.Config{CacheDir: cacheDir, Metrics: reg})
	srv := &session.Server{Registry: registry, Metrics: reg}
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	const nCampaigns, nSamples = 2, 100
	req := session.Request{
		Workload: "164.gzip", Scale: 0.05, Technique: "RCF", Style: "CMOVcc",
		Policy: "ALLBB", CkptInterval: -1, Workers: workers,
	}
	for i := 0; i < nCampaigns; i++ {
		req.Campaigns = append(req.Campaigns, session.SpecJSON{Seed: int64(i + 1), Samples: nSamples})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	post := func() (string, time.Duration, error) {
		start := time.Now()
		resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", 0, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return "", 0, fmt.Errorf("POST /v1/campaigns: %s: %s", resp.Status, out)
		}
		return string(out), time.Since(start), nil
	}
	coldBody, coldDur, err := post()
	if err != nil {
		return err
	}
	warmBody, warmDur, err := post()
	if err != nil {
		return err
	}

	rec := benchRecord{
		Workload:     req.Workload,
		Technique:    req.Technique,
		Samples:      nSamples,
		Campaigns:    nCampaigns,
		CkptInterval: req.CkptInterval,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		ColdSec:      coldDur.Seconds(),
		WarmSec:      warmDur.Seconds(),
		Identical:    normalizeStream(coldBody) == normalizeStream(warmBody),
	}
	if coldDur > 0 {
		rec.ColdPerSec = float64(nCampaigns) / coldDur.Seconds()
	}
	if warmDur > 0 {
		rec.WarmPerSec = float64(nCampaigns) / warmDur.Seconds()
		rec.Speedup = coldDur.Seconds() / warmDur.Seconds()
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// normalizeStream zeroes the wall-clock field of every NDJSON record so
// the cold and warm streams compare byte for byte.
func normalizeStream(s string) string {
	var b bytes.Buffer
	dec := json.NewDecoder(bytes.NewReader([]byte(s)))
	for {
		var rec session.RecordJSON
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return b.String()
			}
			return s // not a clean stream; compare raw
		}
		rec.ElapsedSec = 0
		out, err := json.Marshal(rec)
		if err != nil {
			return s
		}
		b.Write(out)
		b.WriteByte('\n')
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfc-serve:", err)
		os.Exit(1)
	}
}
