// Command cfc-run executes a workload (or assembled binary) natively or
// under the dynamic binary translator with a chosen control-flow checking
// configuration, reporting cycles, output and translator statistics.
//
// Usage:
//
//	cfc-run -workload 181.mcf -technique RCF -policy ALLBB
//	cfc-run -bin prog.bin -native
//	cfc-run -workload 164.gzip -technique RCF -json run.json -metrics run.prom -trace run.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/isa"
)

func main() {
	var (
		workload = flag.String("workload", "", "SPEC2000 workload name (e.g. 164.gzip)")
		bin      = flag.String("bin", "", "binary file to run instead of a workload")
		entry    = flag.Uint("entry", 0, "entry address for -bin")
		data     = flag.Uint("data", 4096, "data segment words for -bin")
		scale    = flag.Float64("scale", 1.0, "workload dynamic scale")
		native   = flag.Bool("native", false, "run natively (no translator)")
		tech     = flag.String("technique", "none", "none|EdgCF|RCF|ECF")
		style    = flag.String("style", "Jcc", "Jcc|CMOVcc")
		policy   = flag.String("policy", "ALLBB", "ALLBB|RET-BE|RET|END")
		maxSteps = flag.Uint64("max-steps", 2_000_000_000, "step budget")
		list     = flag.Bool("list", false, "list workload names and exit")
		jsonOut  = flag.String("json", "", "write a machine-readable run record to `file`")
	)
	var app cli.App
	app.BindFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range core.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}

	var p *isa.Program
	var err error
	switch {
	case *workload != "":
		p, err = core.Workload(*workload, *scale)
	case *bin != "":
		var img []byte
		img, err = os.ReadFile(*bin)
		if err == nil {
			p, err = isa.LoadImage(*bin, img, uint32(*entry), uint32(*data))
		}
	default:
		err = fmt.Errorf("need -workload or -bin (try -list)")
	}
	if err != nil {
		fatal(err)
	}
	fatalIf(app.Open())

	if *native {
		res := core.RunNative(p, *maxSteps)
		fmt.Printf("native: stop=%v cycles=%d steps=%d output=%v\n",
			res.Stop, res.Cycles, res.Steps, res.Output)
		rec := runRecord{
			Program: p.Name, Mode: "native",
			Stop: res.Stop.String(), Cycles: res.Cycles, Steps: res.Steps,
			Output: res.Output,
		}
		if *jsonOut != "" {
			fatalIf(writeRunJSON(*jsonOut, &rec))
		}
		fatalIf(app.Close())
		exitFor(res.Stop)
		return
	}

	cfg := core.Config{Technique: *tech, Style: *style, Policy: *policy, Options: app.Options()}
	d, err := core.NewDBT(p, cfg)
	if err != nil {
		fatal(err)
	}
	res := d.Run(nil, *maxSteps)
	fmt.Printf("dbt(%s/%s/%s): stop=%v cycles=%d steps=%d\n",
		*tech, *style, *policy, res.Stop, res.Cycles, res.Steps)
	fmt.Printf("output: %v\n", res.Output)
	st := res.Stats
	fmt.Printf("translator: %d blocks (%d guest instrs), %d traces, %d check sites, %d dispatches, %d indirect lookups, cache %d instrs\n",
		st.BlocksTranslated, st.GuestInstrsTranslated, st.TracesFormed,
		st.CheckSites, st.Dispatches, st.IndirectLookups, res.CacheSize)

	if reg := app.Registry(); reg != nil {
		res.Stats.Publish(reg, *tech)
		reg.Gauge(fmt.Sprintf("dbt_code_cache_instrs{technique=%q}", *tech)).Max(int64(res.CacheSize))
		reg.Counter(fmt.Sprintf("cpu_sig_checks_total{technique=%q}", *tech)).Add(res.SigChecks)
	}
	if *jsonOut != "" {
		rec := runRecord{
			Program: p.Name, Mode: "dbt",
			Technique: *tech, Style: *style, Policy: *policy,
			Stop: res.Stop.String(), Cycles: res.Cycles, Steps: res.Steps,
			Output: res.Output, Translator: &res.Stats,
			CacheInstrs: res.CacheSize, SigChecks: res.SigChecks,
		}
		fatalIf(writeRunJSON(*jsonOut, &rec))
	}
	fatalIf(app.Close())
	exitFor(res.Stop)
}

// runRecord is the schema of the -json output: one record per run, the
// machine-readable counterpart of the text report.
type runRecord struct {
	Program     string     `json:"program"`
	Mode        string     `json:"mode"` // "native" or "dbt"
	Technique   string     `json:"technique,omitempty"`
	Style       string     `json:"style,omitempty"`
	Policy      string     `json:"policy,omitempty"`
	Stop        string     `json:"stop"`
	Cycles      uint64     `json:"cycles"`
	Steps       uint64     `json:"steps"`
	Output      []int32    `json:"output"`
	Translator  *dbt.Stats `json:"translator,omitempty"`
	CacheInstrs int        `json:"cache_instrs,omitempty"`
	SigChecks   uint64     `json:"sig_checks,omitempty"`
}

func writeRunJSON(path string, rec *runRecord) error {
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func exitFor(stop cpu.Stop) {
	if stop.Reason != cpu.StopHalt {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfc-run:", err)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
