// Command cfc-run executes a workload (or assembled binary) natively or
// under the dynamic binary translator with a chosen control-flow checking
// configuration, reporting cycles, output and translator statistics.
//
// Usage:
//
//	cfc-run -workload 181.mcf -technique RCF -policy ALLBB
//	cfc-run -bin prog.bin -native
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
)

func main() {
	var (
		workload = flag.String("workload", "", "SPEC2000 workload name (e.g. 164.gzip)")
		bin      = flag.String("bin", "", "binary file to run instead of a workload")
		entry    = flag.Uint("entry", 0, "entry address for -bin")
		data     = flag.Uint("data", 4096, "data segment words for -bin")
		scale    = flag.Float64("scale", 1.0, "workload dynamic scale")
		native   = flag.Bool("native", false, "run natively (no translator)")
		tech     = flag.String("technique", "none", "none|EdgCF|RCF|ECF")
		style    = flag.String("style", "Jcc", "Jcc|CMOVcc")
		policy   = flag.String("policy", "ALLBB", "ALLBB|RET-BE|RET|END")
		maxSteps = flag.Uint64("max-steps", 2_000_000_000, "step budget")
		list     = flag.Bool("list", false, "list workload names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range core.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}

	var p *isa.Program
	var err error
	switch {
	case *workload != "":
		p, err = core.Workload(*workload, *scale)
	case *bin != "":
		var img []byte
		img, err = os.ReadFile(*bin)
		if err == nil {
			p, err = isa.LoadImage(*bin, img, uint32(*entry), uint32(*data))
		}
	default:
		err = fmt.Errorf("need -workload or -bin (try -list)")
	}
	if err != nil {
		fatal(err)
	}

	if *native {
		res := core.RunNative(p, *maxSteps)
		fmt.Printf("native: stop=%v cycles=%d steps=%d output=%v\n",
			res.Stop, res.Cycles, res.Steps, res.Output)
		exitFor(res.Stop)
		return
	}

	d, err := core.NewDBT(p, core.Config{Technique: *tech, Style: *style, Policy: *policy})
	if err != nil {
		fatal(err)
	}
	res := d.Run(nil, *maxSteps)
	fmt.Printf("dbt(%s/%s/%s): stop=%v cycles=%d steps=%d\n",
		*tech, *style, *policy, res.Stop, res.Cycles, res.Steps)
	fmt.Printf("output: %v\n", res.Output)
	st := res.Stats
	fmt.Printf("translator: %d blocks (%d guest instrs), %d traces, %d dispatches, %d indirect lookups, cache %d instrs\n",
		st.BlocksTranslated, st.GuestInstrsTranslated, st.TracesFormed,
		st.Dispatches, st.IndirectLookups, res.CacheSize)
	exitFor(res.Stop)
}

func exitFor(stop cpu.Stop) {
	if stop.Reason != cpu.StopHalt {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfc-run:", err)
	os.Exit(1)
}
