// Command cfc-errmodel regenerates the paper's Figure 2 (branch-error
// probability tables for SPEC-Int and SPEC-Fp) and Figure 3 (probabilities
// normalized over the silent-data-corruption categories A-E).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/obs"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "workload dynamic scale")
		workload = flag.String("workload", "", "analyze a single workload instead of both suites")
	)
	var app cli.App
	app.BindFlags(flag.CommandLine)
	flag.Parse()
	fatalIf(app.Open())

	if *workload != "" {
		p, err := core.Workload(*workload, *scale)
		if err != nil {
			fatal(err)
		}
		t, err := core.AnalyzeErrors(p, bench.DefaultMaxSteps)
		if err != nil {
			fatal(err)
		}
		fmt.Print(errmodel.FormatFigure2("Branch-error probabilities: "+*workload, t))
		fmt.Println()
		fmt.Print(errmodel.FormatFigure3("Normalized: "+*workload, t))
		publishTable(app.Registry(), *workload, t)
		fatalIf(app.Close())
		return
	}

	intTab, fpTab, err := bench.Figure2(*scale, app.Workers)
	if err != nil {
		fatal(err)
	}
	fmt.Print(errmodel.FormatFigure2("Figure 2 — SPEC-Int 2000", intTab))
	fmt.Println()
	fmt.Print(errmodel.FormatFigure2("Figure 2 — SPEC-Fp 2000", fpTab))
	fmt.Println()
	fmt.Print(errmodel.FormatFigure3("Figure 3 — SPEC-Int 2000", intTab))
	fmt.Println()
	fmt.Print(errmodel.FormatFigure3("Figure 3 — SPEC-Fp 2000", fpTab))
	publishTable(app.Registry(), "spec-int", intTab)
	publishTable(app.Registry(), "spec-fp", fpTab)
	fatalIf(app.Close())
}

// publishTable exports a Figure 2 table's fault-site counts per category,
// plus the analyzed-branch totals, labeled by suite (or workload name).
func publishTable(reg *obs.Registry, suite string, t *errmodel.Table) {
	if reg == nil {
		return
	}
	for c := errmodel.CatA; c < errmodel.NumCategories; c++ {
		var n uint64
		for d := 0; d < 2; d++ {
			for k := 0; k < 2; k++ {
				n += t.Counts[c][d][k]
			}
		}
		reg.Counter(fmt.Sprintf("errmodel_fault_sites_total{suite=%q,category=%q}",
			suite, c.String())).Add(n)
	}
	reg.Counter(fmt.Sprintf("errmodel_branches_total{suite=%q}", suite)).Add(t.Branches)
	reg.Counter(fmt.Sprintf("errmodel_indirect_skipped_total{suite=%q}", suite)).Add(t.IndirectSkipped)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfc-errmodel:", err)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
