// Command cfc-errmodel regenerates the paper's Figure 2 (branch-error
// probability tables for SPEC-Int and SPEC-Fp) and Figure 3 (probabilities
// normalized over the silent-data-corruption categories A-E).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/errmodel"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "workload dynamic scale")
		workload = flag.String("workload", "", "analyze a single workload instead of both suites")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *workload != "" {
		p, err := core.Workload(*workload, *scale)
		if err != nil {
			fatal(err)
		}
		t, err := core.AnalyzeErrors(p, bench.DefaultMaxSteps)
		if err != nil {
			fatal(err)
		}
		fmt.Print(errmodel.FormatFigure2("Branch-error probabilities: "+*workload, t))
		fmt.Println()
		fmt.Print(errmodel.FormatFigure3("Normalized: "+*workload, t))
		return
	}

	intTab, fpTab, err := bench.Figure2(*scale, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Print(errmodel.FormatFigure2("Figure 2 — SPEC-Int 2000", intTab))
	fmt.Println()
	fmt.Print(errmodel.FormatFigure2("Figure 2 — SPEC-Fp 2000", fpTab))
	fmt.Println()
	fmt.Print(errmodel.FormatFigure3("Figure 3 — SPEC-Int 2000", intTab))
	fmt.Println()
	fmt.Print(errmodel.FormatFigure3("Figure 3 — SPEC-Fp 2000", fpTab))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfc-errmodel:", err)
	os.Exit(1)
}
