// Command cfc-bench regenerates the paper's performance figures over the
// synthetic SPEC2000 suite:
//
//	-fig 12     per-benchmark slowdown of RCF/EdgCF/ECF (Figure 12)
//	-fig 14     Jcc vs CMOVcc update styles (Figure 14)
//	-fig 15     RCF under the four checking policies (Figure 15)
//	-fig dbt    uninstrumented translator overhead vs native (Section 6 text)
//	-fig ablate  design-choice ablations (chaining, traces, xor-vs-lea, DFC)
//	-fig dfc     register-fault coverage of data-flow checking (future work)
//	-fig latency policy trade-off: slowdown vs coverage vs report latency
//	-fig all     everything
//
// -workers fans the per-benchmark runs (and campaign samples) across a
// goroutine pool; results are identical for every worker count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/obs"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "which figure: 12|14|15|dbt|all")
		scale      = flag.Float64("scale", 1.0, "workload dynamic scale")
		stepOut    = flag.String("step-json", "", "run the step-throughput microbench (baseline vs predecoded vs compiled) and write the record to this file")
		compileOut = flag.String("compile-json", "", "with -step-json: also write the compiled-backend record (BENCH_compile.json schema) to this file")
		graphOut   = flag.String("graph-json", "", "run the full coverage matrix cold then hot against a graph cell cache and write the record to this file")
	)
	app := cli.App{CkptInterval: -1}
	app.BindFlags(flag.CommandLine)
	flag.Parse()
	fatalIf(app.Open())
	if *stepOut != "" {
		fatalIf(writeStepJSON(*stepOut, *compileOut, *scale))
		fatalIf(app.Close())
		return
	}
	if *graphOut != "" {
		fatalIf(writeGraphJSON(*graphOut, minF(*scale, 0.05), app.Workers, app.CkptInterval))
		fatalIf(app.Close())
		return
	}
	reg := app.Registry()
	workers, ckptIv := &app.Workers, &app.CkptInterval

	run := func(name string) {
		// Figure-level section markers; the campaign-running figures do
		// not rebuild per-sample traces here (use cfc-inject for that).
		app.Tracer().Emit(obs.Event{Kind: obs.EvCampaignStart, Detail: "figure:" + name})
		defer app.Tracer().Emit(obs.Event{Kind: obs.EvCampaignEnd, Detail: "figure:" + name})
		switch name {
		case "12":
			t, err := bench.Figure12(*scale, *workers)
			fatalIf(err)
			fmt.Print(bench.FormatSlowdownTable(t))
			bench.PublishSlowdownTable(reg, "12", t)
		case "14":
			t, err := bench.Figure14(*scale, *workers)
			fatalIf(err)
			fmt.Print(bench.FormatFigure14(t))
			bench.PublishFigure14(reg, t)
		case "15":
			t, err := bench.Figure15(*scale, *workers)
			fatalIf(err)
			fmt.Print(bench.FormatSlowdownTable(t))
			bench.PublishSlowdownTable(reg, "15", t)
		case "dbt":
			rows, avg, err := bench.DBTBaseline(*scale, *workers)
			fatalIf(err)
			fmt.Print(bench.FormatBaseline(rows, avg))
			bench.PublishBaseline(reg, rows, avg)
		case "ablate":
			rows, err := bench.Ablations(*scale, *workers)
			fatalIf(err)
			fmt.Print(bench.FormatAblations(rows))
			bench.PublishAblations(reg, rows)
		case "dfc":
			reports, err := bench.DataFlowCoverage(minF(*scale, 0.1), 300, 1, *workers, *ckptIv)
			fatalIf(err)
			fmt.Print(bench.FormatDataFlowCoverage(reports))
			bench.PublishCoverage(reg, "dfc", reports)
		case "latency":
			rows, err := bench.PolicyLatency(minF(*scale, 0.3), 300, 1, *workers, *ckptIv)
			fatalIf(err)
			fmt.Print(bench.FormatPolicyLatency(rows))
			bench.PublishPolicyLatency(reg, rows)
		default:
			fmt.Fprintf(os.Stderr, "cfc-bench: unknown figure %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *fig == "all" {
		for _, f := range []string{"dbt", "12", "14", "15", "ablate", "dfc", "latency"} {
			run(f)
		}
		fatalIf(app.Close())
		return
	}
	run(*fig)
	fatalIf(app.Close())
}

// stepRecord is the -step-json schema CI gates on: the predecoded
// interpreter must beat the per-step baseline, and the block-compiled
// backend must beat the predecoded plan, each by the committed factor
// with a byte-identical architectural outcome.
type stepRecord struct {
	Workload       string  `json:"workload"`
	Scale          float64 `json:"scale"`
	Steps          uint64  `json:"steps"`
	Reps           int     `json:"reps"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	NumCPU         int     `json:"num_cpu"`
	RunSec         float64 `json:"run_sec"`
	PlanSec        float64 `json:"plan_sec"`
	CompileSec     float64 `json:"compile_sec"`
	Speedup        float64 `json:"speedup"`
	CompileSpeedup float64 `json:"compile_speedup"`
	Identical      bool    `json:"identical"`
}

// compileRecord is the BENCH_compile.json schema: just the compiled-vs-plan
// leg of the step microbench, the gate the acceptance criteria pin.
type compileRecord struct {
	Workload       string  `json:"workload"`
	Scale          float64 `json:"scale"`
	Steps          uint64  `json:"steps"`
	Reps           int     `json:"reps"`
	PlanSec        float64 `json:"plan_sec"`
	CompileSec     float64 `json:"compile_sec"`
	CompileSpeedup float64 `json:"compile_speedup"`
	Identical      bool    `json:"identical"`
}

func writeStepJSON(path, compilePath string, scale float64) error {
	r, err := bench.StepThroughput("164.gzip", scale, 3)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatStep(r))
	rec := stepRecord{
		Workload: r.Workload, Scale: scale, Steps: r.Steps, Reps: r.Reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		RunSec: r.RunSec, PlanSec: r.PlanSec, CompileSec: r.CompileSec,
		Speedup: r.Speedup, CompileSpeedup: r.CompileSpeedup, Identical: r.Identical,
	}
	if err := writeJSON(path, rec); err != nil {
		return err
	}
	if compilePath == "" {
		return nil
	}
	return writeJSON(compilePath, compileRecord{
		Workload: r.Workload, Scale: scale, Steps: r.Steps, Reps: r.Reps,
		PlanSec: r.PlanSec, CompileSec: r.CompileSec,
		CompileSpeedup: r.CompileSpeedup, Identical: r.Identical,
	})
}

// graphRecord is the BENCH_graph.json schema: the full coverage matrix
// run twice against one on-disk graph cell cache — the cold pass executes
// and stores every cell, the hot pass (a fresh registry and a fresh cache
// handle over the same directory, so hits come off disk, not memory)
// loads them — with the byte-identity verdict across the two matrices.
type graphRecord struct {
	Workloads    []string `json:"workloads"`
	Techniques   []string `json:"techniques"`
	Scale        float64  `json:"scale"`
	Samples      int      `json:"samples"`
	Seed         int64    `json:"seed"`
	CkptInterval int64    `json:"ckpt_interval"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	NumCPU       int      `json:"num_cpu"`
	Cells        int      `json:"cells"`
	ColdSec      float64  `json:"cold_sec"`
	HotSec       float64  `json:"hot_sec"`
	// Speedup is cold wall-clock over hot wall-clock: what a content-keyed
	// re-run saves when nothing invalidated. CI gates on >= 10.
	Speedup float64 `json:"speedup"`
	// Hot-pass cache accounting: every cell must hit, none may execute.
	HotHits   uint64 `json:"hot_hits"`
	HotMisses uint64 `json:"hot_misses"`
	// Identical reports the cold and hot formatted matrices matched byte
	// for byte.
	Identical bool `json:"identical"`
}

// writeGraphJSON times the cold and hot coverage-matrix passes over a
// temporary cache directory.
func writeGraphJSON(path string, scale float64, workers int, ckptInterval int64) error {
	dir, err := os.MkdirTemp("", "cfc-graph-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const samples, seed = 200, 1
	pass := func() (string, uint64, uint64, time.Duration, error) {
		m := obs.NewRegistry()
		cfg := bench.CoverageConfig{
			Scale: scale, Samples: samples, Seed: seed,
			Graph: graph.New(dir),
		}
		cfg.Metrics, cfg.Workers, cfg.CkptInterval = m, workers, ckptInterval
		start := time.Now()
		reports, err := bench.CoverageMatrix(context.Background(), cfg)
		if err != nil {
			return "", 0, 0, 0, err
		}
		d := time.Since(start)
		snap := m.Snapshot()
		return bench.FormatCoverageMatrix(reports),
			snap.Counters["graph_cache_hits_total"], snap.Counters["graph_cache_misses_total"], d, nil
	}
	coldText, _, _, coldDur, err := pass()
	if err != nil {
		return err
	}
	hotText, hotHits, hotMisses, hotDur, err := pass()
	if err != nil {
		return err
	}
	fmt.Print(hotText)
	rec := graphRecord{
		Workloads:    bench.DefaultCoverageWorkloads,
		Techniques:   bench.CoverageTechniques,
		Scale:        scale,
		Samples:      samples,
		Seed:         seed,
		CkptInterval: ckptInterval,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Cells:        len(bench.DefaultCoverageWorkloads) * len(bench.CoverageTechniques),
		ColdSec:      coldDur.Seconds(),
		HotSec:       hotDur.Seconds(),
		HotHits:      hotHits,
		HotMisses:    hotMisses,
		Identical:    coldText == hotText,
	}
	if hotDur > 0 {
		rec.Speedup = coldDur.Seconds() / hotDur.Seconds()
	}
	return writeJSON(path, rec)
}

func writeJSON(path string, rec any) error {
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// minF caps the campaign scale: fault injection runs the program once per
// sample, so full-scale campaigns would take minutes for no extra insight.
func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfc-bench:", err)
		os.Exit(1)
	}
}
