// Command cfc-inject runs soft-error injection campaigns: single bit flips
// in branch offsets or condition flags, per the paper's error model, with
// outcomes classified by branch-error category. The -matrix mode compares
// every technique (including the static CFCSS/ECCA baselines) side by side
// — the empirical counterpart of the paper's Section 3 coverage analysis
// and its stated future work.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/inject"
)

func main() {
	var (
		workload = flag.String("workload", "164.gzip", "workload name")
		scale    = flag.Float64("scale", 0.1, "workload dynamic scale")
		tech     = flag.String("technique", "RCF", "none|EdgCF|RCF|ECF")
		style    = flag.String("style", "CMOVcc", "Jcc|CMOVcc")
		policy   = flag.String("policy", "ALLBB", "ALLBB|RET-BE|RET|END")
		samples  = flag.Int("samples", 500, "number of injected faults")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		matrix   = flag.Bool("matrix", false, "run the full coverage matrix instead")
	)
	flag.Parse()

	if *matrix {
		reports, err := bench.CoverageMatrix(bench.CoverageConfig{
			Scale:   *scale,
			Samples: *samples,
			Seed:    *seed,
		})
		fatalIf(err)
		fmt.Print(bench.FormatCoverageMatrix(reports))
		return
	}

	p, err := core.Workload(*workload, *scale)
	fatalIf(err)
	rep, err := core.Inject(p, core.Config{Technique: *tech, Style: *style, Policy: *policy}, *samples, *seed)
	fatalIf(err)
	fmt.Print(inject.FormatReport(rep))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfc-inject:", err)
		os.Exit(1)
	}
}
