// Command cfc-inject runs soft-error injection campaigns: single bit flips
// in branch offsets or condition flags, per the paper's error model, with
// outcomes classified by branch-error category. The -matrix mode compares
// every technique (including the static CFCSS/ECCA baselines) side by side
// — the empirical counterpart of the paper's Section 3 coverage analysis
// and its stated future work.
//
// -workers shards the samples across a goroutine pool; the classified
// report is bit-identical for every worker count. -json additionally runs
// the campaign at one worker and at the requested count, checks the two
// reports agree, and writes a throughput record suitable for CI.
//
// -ckpt-interval selects the injection engine: 0 replays every sample from
// the start (the original engine), -1 (the default) checkpoints the clean
// run at an auto-sized step interval and resumes each sample from the
// nearest checkpoint, and a positive value sets the interval explicitly.
// Reports are byte-identical across all settings. -ckpt-json times both
// engines at one and four workers, verifies the reports match byte for
// byte, and writes the speedup record suitable for CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"reflect"
	"runtime"
	"syscall"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/par"
)

func main() {
	var (
		workload = flag.String("workload", "164.gzip", "workload name")
		scale    = flag.Float64("scale", 0.1, "workload dynamic scale")
		tech     = flag.String("technique", "RCF", "none|EdgCF|RCF|ECF")
		style    = flag.String("style", "CMOVcc", "Jcc|CMOVcc")
		policy   = flag.String("policy", "ALLBB", "ALLBB|RET-BE|RET|END")
		samples  = flag.Int("samples", 500, "number of injected faults")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		matrix   = flag.Bool("matrix", false, "run the full coverage matrix instead")
		jsonOut  = flag.String("json", "", "write a throughput benchmark record to this file")
		ckptOut  = flag.String("ckpt-json", "",
			"write a checkpoint-vs-replay engine benchmark record to this file")
		reportOut = flag.String("report-json", "",
			"write the normalized campaign report (JSON) to this file")
		scaleOut = flag.String("scale-json", "",
			"write a worker-scaling benchmark record (checkpoint engine at 1..N workers) to this file")
	)
	app := cli.App{CkptInterval: -1}
	app.BindFlags(flag.CommandLine)
	flag.Parse()
	fatalIf(app.Open())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *matrix {
		reports, err := bench.CoverageMatrix(ctx, bench.CoverageConfig{
			Scale:   *scale,
			Samples: *samples,
			Seed:    *seed,
			Graph:   app.Graph(),
			Options: app.Options(),
		})
		fatalIf(err)
		// The matrix goes to stdout untouched: with -graph-cache the CI
		// gate byte-diffs a cold run against a hot one, so cache status
		// belongs on stderr.
		fmt.Print(bench.FormatCoverageMatrix(reports))
		fatalIf(app.Close())
		return
	}

	p, err := core.Workload(*workload, *scale)
	fatalIf(err)
	cfg := core.Config{Technique: *tech, Style: *style, Policy: *policy, SampleOffset: app.SampleOffset}
	cfg.CkptInterval = app.CkptInterval

	if *jsonOut != "" {
		// The determinism-check runs stay unobserved so the snapshot and
		// trace describe exactly one campaign: the reported one below.
		fatalIf(writeBenchJSON(ctx, *jsonOut, p, cfg, *samples, *seed, app.Workers))
	}
	if *ckptOut != "" {
		fatalIf(writeCkptJSON(ctx, *ckptOut, p, cfg, *samples, *seed))
	}
	if *scaleOut != "" {
		fatalIf(writeScaleJSON(ctx, *scaleOut, p, cfg, *samples, *seed))
	}

	cfg.Options = app.Options()
	var rep *inject.Report
	if g := app.Graph(); g != nil {
		// The benchmark modes above re-run for wall-clock and bypass the
		// cache by design; the report itself is a cell.
		key := graph.KeyFor(p, *tech, *style, *policy, *samples, *seed,
			cfg.SampleOffset, cfg.CkptInterval, cfg.Backend, 0)
		var cached bool
		rep, cached, err = g.Run(key, app.Registry(), func(m *obs.Registry) (*inject.Report, error) {
			c := cfg
			c.Metrics = m
			return core.InjectCtx(ctx, p, c, *samples, *seed)
		})
		fatalIf(err)
		if cached {
			fmt.Fprintln(os.Stderr, "cfc-inject: graph cache hit — campaign loaded, not executed")
		}
	} else {
		rep, err = core.InjectCtx(ctx, p, cfg, *samples, *seed)
		fatalIf(err)
	}
	fmt.Print(inject.FormatReport(rep))
	if *reportOut != "" {
		fatalIf(writeReportJSON(*reportOut, rep))
	}
	fatalIf(app.Close())
}

// reportRecord is the -report-json schema: the normalized report text plus
// the summary fields the batch server streams, so CI can diff a CLI run
// against a served campaign field for field.
type reportRecord struct {
	Workload     string `json:"workload"`
	Technique    string `json:"technique"`
	Samples      int    `json:"samples"`
	SampleOffset int    `json:"sample_offset,omitempty"`
	NotFired     int    `json:"not_fired"`
	// Engine telemetry: samples whose tails executed vs were synthesized
	// (offset not-taken vs liveness-pruned families). Mirrors the batch
	// server's NDJSON fields; excluded from the normalized Report.
	Executed    int `json:"executed,omitempty"`
	ShortOffset int `json:"short_offset,omitempty"`
	ShortLive   int `json:"short_live,omitempty"`
	// Report is the FormatNormalized rendering: byte-identical to the
	// server stream's "report" field for the same configuration.
	Report string `json:"report"`
}

func writeReportJSON(path string, rep *inject.Report) error {
	out, err := json.MarshalIndent(reportRecord{
		Workload:     rep.Program,
		Technique:    rep.Technique,
		Samples:      rep.Samples,
		SampleOffset: rep.SampleOffset,
		NotFired:     rep.NotFired,
		Executed:    rep.Executed,
		ShortOffset: rep.ShortOffset,
		ShortLive:   rep.ShortLive,
		Report:      inject.FormatNormalized(rep),
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// benchRecord is the schema of the -json output, one file per campaign.
type benchRecord struct {
	Workload      string     `json:"workload"`
	Technique     string     `json:"technique"`
	Samples       int        `json:"samples"`
	Seed          int64      `json:"seed"`
	GOMAXPROCS    int        `json:"gomaxprocs"`
	NumCPU        int        `json:"num_cpu"`
	Runs          []benchRun `json:"runs"`
	Speedup       float64    `json:"speedup"`
	Deterministic bool       `json:"deterministic"`
}

type benchRun struct {
	Workers    int     `json:"workers"`
	ElapsedSec float64 `json:"elapsed_sec"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// writeBenchJSON measures the same campaign serially and at the requested
// worker count, verifies the classified results are identical, and records
// both timings so CI can track campaign throughput.
func writeBenchJSON(ctx context.Context, path string, p *isa.Program, cfg core.Config, samples int, seed int64, workers int) error {
	parallel := par.Workers(workers, samples)
	cfg.Workers = 1
	serial, err := core.InjectCtx(ctx, p, cfg, samples, seed)
	if err != nil {
		return err
	}
	multi := serial
	if parallel != 1 {
		cfg.Workers = parallel
		multi, err = core.InjectCtx(ctx, p, cfg, samples, seed)
		if err != nil {
			return err
		}
	}
	rec := benchRecord{
		Workload:      p.Name,
		Technique:     cfg.Technique,
		Samples:       samples,
		Seed:          seed,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Deterministic: sameReport(serial, multi),
		Runs: []benchRun{
			{Workers: 1, ElapsedSec: serial.Elapsed.Seconds(), RunsPerSec: serial.Throughput()},
		},
	}
	if parallel != 1 {
		rec.Runs = append(rec.Runs, benchRun{
			Workers: parallel, ElapsedSec: multi.Elapsed.Seconds(), RunsPerSec: multi.Throughput(),
		})
		if multi.Elapsed > 0 {
			rec.Speedup = serial.Elapsed.Seconds() / multi.Elapsed.Seconds()
		}
	} else {
		rec.Speedup = 1
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ckptRecord is the schema of the -ckpt-json output: both engines timed
// at each worker count, with the byte-identity verdict.
type ckptRecord struct {
	Workload     string    `json:"workload"`
	Technique    string    `json:"technique"`
	Samples      int       `json:"samples"`
	Seed         int64     `json:"seed"`
	CkptInterval int64     `json:"ckpt_interval"`
	GOMAXPROCS   int       `json:"gomaxprocs"`
	NumCPU       int       `json:"num_cpu"`
	Runs         []ckptRun `json:"runs"`
	// Speedup is the single-worker engine comparison: replay wall-clock
	// over checkpoint wall-clock, parallel scaling factored out.
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

type ckptRun struct {
	Workers   int     `json:"workers"`
	ReplaySec float64 `json:"replay_sec"`
	CkptSec   float64 `json:"ckpt_sec"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// writeCkptJSON runs the same campaign under the full-replay engine and
// the checkpoint-and-resume engine at one and four workers, verifies the
// classified reports are byte-identical, and records the wall-clock
// speedup the checkpoint engine delivers.
func writeCkptJSON(ctx context.Context, path string, p *isa.Program, cfg core.Config, samples int, seed int64) error {
	iv := cfg.CkptInterval
	if iv == 0 {
		iv = -1
	}
	rec := ckptRecord{
		Workload:     p.Name,
		Technique:    cfg.Technique,
		Samples:      samples,
		Seed:         seed,
		CkptInterval: iv,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Identical:    true,
	}
	for _, w := range []int{1, 4} {
		rcfg := cfg
		rcfg.CkptInterval, rcfg.Workers = 0, w
		replay, err := core.InjectCtx(ctx, p, rcfg, samples, seed)
		if err != nil {
			return err
		}
		ccfg := cfg
		ccfg.CkptInterval, ccfg.Workers = iv, w
		ck, err := core.InjectCtx(ctx, p, ccfg, samples, seed)
		if err != nil {
			return err
		}
		run := ckptRun{
			Workers:   w,
			ReplaySec: replay.Elapsed.Seconds(),
			CkptSec:   ck.Elapsed.Seconds(),
			Identical: sameReport(replay, ck) && inject.FormatNormalized(replay) == inject.FormatNormalized(ck),
		}
		if ck.Elapsed > 0 {
			run.Speedup = replay.Elapsed.Seconds() / ck.Elapsed.Seconds()
		}
		if w == 1 {
			rec.Speedup = run.Speedup
		}
		rec.Identical = rec.Identical && run.Identical
		rec.Runs = append(rec.Runs, run)
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// scaleRecord is the schema of the -scale-json output: the replay engine
// at one worker as the baseline, then the checkpoint engine at growing
// worker counts, so the record shows worker scaling composing with
// checkpoint amortization (total = replay_1w / ckpt_Nw).
type scaleRecord struct {
	Workload     string     `json:"workload"`
	Technique    string     `json:"technique"`
	Samples      int        `json:"samples"`
	Seed         int64      `json:"seed"`
	CkptInterval int64      `json:"ckpt_interval"`
	GOMAXPROCS   int        `json:"gomaxprocs"`
	NumCPU       int        `json:"num_cpu"`
	ReplaySec    float64    `json:"replay_sec"` // replay engine, 1 worker
	Runs         []scaleRun `json:"runs"`
	// BestSpeedup is the largest composed factor observed across the
	// worker sweep.
	BestSpeedup float64 `json:"best_speedup"`
	Identical   bool    `json:"identical"`
}

type scaleRun struct {
	Workers int     `json:"workers"`
	CkptSec float64 `json:"ckpt_sec"`
	// Speedup is composed: serial replay wall-clock over this run's
	// wall-clock (engine gain x worker scaling).
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// writeScaleJSON sweeps the checkpoint engine across worker counts against
// a single-worker full-replay baseline, verifying byte-identity at every
// point. The sweep stops at min(8, NumCPU) workers — beyond the core count
// the sharding only adds scheduling noise.
func writeScaleJSON(ctx context.Context, path string, p *isa.Program, cfg core.Config, samples int, seed int64) error {
	iv := cfg.CkptInterval
	if iv == 0 {
		iv = -1
	}
	rcfg := cfg
	rcfg.CkptInterval, rcfg.Workers = 0, 1
	replay, err := core.InjectCtx(ctx, p, rcfg, samples, seed)
	if err != nil {
		return err
	}
	rec := scaleRecord{
		Workload:     p.Name,
		Technique:    cfg.Technique,
		Samples:      samples,
		Seed:         seed,
		CkptInterval: iv,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		ReplaySec:    replay.Elapsed.Seconds(),
		Identical:    true,
	}
	maxWorkers := runtime.NumCPU()
	if maxWorkers > 8 {
		maxWorkers = 8
	}
	for w := 1; w <= maxWorkers; w *= 2 {
		ccfg := cfg
		ccfg.CkptInterval, ccfg.Workers = iv, w
		ck, err := core.InjectCtx(ctx, p, ccfg, samples, seed)
		if err != nil {
			return err
		}
		run := scaleRun{
			Workers:   w,
			CkptSec:   ck.Elapsed.Seconds(),
			Identical: sameReport(replay, ck) && inject.FormatNormalized(replay) == inject.FormatNormalized(ck),
		}
		if ck.Elapsed > 0 {
			run.Speedup = replay.Elapsed.Seconds() / ck.Elapsed.Seconds()
		}
		if run.Speedup > rec.BestSpeedup {
			rec.BestSpeedup = run.Speedup
		}
		rec.Identical = rec.Identical && run.Identical
		rec.Runs = append(rec.Runs, run)
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// sameReport compares everything a campaign classifies — including the
// merged per-sample translator statistics — ignoring the timing fields
// that legitimately differ between runs.
func sameReport(a, b *inject.Report) bool {
	return a.NotFired == b.NotFired &&
		a.LatencySum == b.LatencySum &&
		a.LatencyN == b.LatencyN &&
		a.Translator == b.Translator &&
		reflect.DeepEqual(a.Totals, b.Totals) &&
		reflect.DeepEqual(a.ByCat, b.ByCat)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfc-inject:", err)
		os.Exit(1)
	}
}
