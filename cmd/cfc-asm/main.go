// Command cfc-asm assembles guest assembly into the flat binary format the
// translator consumes, and disassembles binaries back to text.
//
// Usage:
//
//	cfc-asm -o prog.bin prog.s          # assemble
//	cfc-asm -d -entry 0 -data 0 prog.bin  # disassemble
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/isa"
)

func main() {
	var (
		out   = flag.String("o", "", "output file (default: stdout for -d, a.bin otherwise)")
		dis   = flag.Bool("d", false, "disassemble a binary instead of assembling")
		entry = flag.Uint("entry", 0, "entry address for -d")
		data  = flag.Uint("data", 4096, "data segment words for -d")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cfc-asm [-d] [-o out] file")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}

	if *dis {
		p, err := isa.LoadImage(in, src, uint32(*entry), uint32(*data))
		if err != nil {
			fatal(err)
		}
		text := core.Disassemble(p)
		if *out == "" {
			fmt.Print(text)
			return
		}
		fatalIf(os.WriteFile(*out, []byte(text), 0o644))
		return
	}

	p, err := core.Assemble(in, string(src))
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = "a.bin"
	}
	fatalIf(os.WriteFile(dst, p.Image(), 0o644))
	fmt.Printf("%s: %d instructions, entry 0x%x, data %d words -> %s\n",
		p.Name, p.Len(), p.Entry, p.DataWords, dst)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfc-asm:", err)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
