// Command cfc-asm assembles guest assembly into the flat binary format the
// translator consumes, and disassembles binaries back to text.
//
// Usage:
//
//	cfc-asm -o prog.bin prog.s          # assemble
//	cfc-asm -d -entry 0 -data 0 prog.bin  # disassemble
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
)

func main() {
	var (
		out   = flag.String("o", "", "output file (default: stdout for -d, a.bin otherwise)")
		dis   = flag.Bool("d", false, "disassemble a binary instead of assembling")
		entry = flag.Uint("entry", 0, "entry address for -d")
		data  = flag.Uint("data", 4096, "data segment words for -d")
	)
	var app cli.App
	app.BindFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cfc-asm [-d] [-o out] file")
		os.Exit(2)
	}
	fatalIf(app.Open())
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}

	if *dis {
		p, err := isa.LoadImage(in, src, uint32(*entry), uint32(*data))
		if err != nil {
			fatal(err)
		}
		publishProgram(app.Registry(), "disassemble", p)
		text := core.Disassemble(p)
		if *out == "" {
			fmt.Print(text)
			fatalIf(app.Close())
			return
		}
		fatalIf(os.WriteFile(*out, []byte(text), 0o644))
		fatalIf(app.Close())
		return
	}

	p, err := core.Assemble(in, string(src))
	if err != nil {
		fatal(err)
	}
	publishProgram(app.Registry(), "assemble", p)
	dst := *out
	if dst == "" {
		dst = "a.bin"
	}
	fatalIf(os.WriteFile(dst, p.Image(), 0o644))
	fmt.Printf("%s: %d instructions, entry 0x%x, data %d words -> %s\n",
		p.Name, p.Len(), p.Entry, p.DataWords, dst)
	fatalIf(app.Close())
}

func publishProgram(reg *obs.Registry, mode string, p *isa.Program) {
	if reg == nil {
		return
	}
	reg.Counter(fmt.Sprintf("asm_programs_total{mode=%q}", mode)).Inc()
	reg.Counter(fmt.Sprintf("asm_instructions_total{mode=%q}", mode)).Add(uint64(p.Len()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfc-asm:", err)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
