// Command cfc-front is the horizontal front door: it makes N cfc-serve
// replicas look like one server. Campaign batches route by session
// fingerprint over a consistent-hash ring, so repeated campaigns on one
// configuration always land on the replica already holding that warm
// session; per-tenant weighted-fair queues with bounded depth and
// per-replica in-flight caps shed overload as 429 + Retry-After instead
// of queueing without bound; and ?fanout=N splits one campaign into N
// contiguous sample shards across replicas, merging the partial reports
// (inject.MergeReports) into a record byte-identical to a single-server
// run.
//
//	POST /v1/campaigns            route a batch to its home replica
//	POST /v1/campaigns?fanout=N   shard each campaign over N replicas, merge
//	GET  /v1/replicas             ring membership and per-replica health
//	GET  /v1/metrics              fleet-merged metrics snapshot (JSON)
//	GET  /metrics                 fleet-merged Prometheus exposition
//	GET  /healthz                 front readiness (503 with no ready replicas)
//
// Replica membership is static (-replicas) but readiness is live: the
// front polls each replica's /healthz and ejects draining or
// unreachable replicas from the ring, re-routing their sessions to
// survivors (which restore warm state from the shared artifact store,
// when one is configured) and failing their queued requests fast.
//
// -front-json runs the fan-out benchmark instead: three in-process
// replicas behind a front versus one replica alone on the same
// campaign, recording the sharded speedup and whether the merged stream
// matched the single-server stream byte for byte.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/front"
	"repro/internal/obs"
	"repro/internal/session"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8320", "listen address")
		replicas   = flag.String("replicas", "", "comma-separated cfc-serve base URLs (required)")
		vnodes     = flag.Int("vnodes", front.DefaultVnodes, "virtual nodes per replica on the hash ring")
		queueDepth = flag.Int("queue-depth", front.DefaultQueueDepth, "per-tenant admission queue depth (full queue answers 429)")
		replicaCap = flag.Int("replica-cap", front.DefaultReplicaCap, "in-flight request cap per replica")
		weights    = flag.String("tenant-weights", "", "fair-share weights as tenant=w pairs, e.g. ci=3,adhoc=1")
		poll       = flag.Duration("poll", 500*time.Millisecond, "replica health poll interval")
		frontOut   = flag.String("front-json", "", "run the fan-out benchmark, write the record here, and exit")
	)
	flag.Parse()

	if *frontOut != "" {
		fatalIf(writeFrontJSON(*frontOut))
		return
	}
	if *replicas == "" {
		fatalIf(fmt.Errorf("-replicas is required (comma-separated cfc-serve URLs)"))
	}
	cfg := front.Config{
		Vnodes:       *vnodes,
		QueueDepth:   *queueDepth,
		ReplicaCap:   *replicaCap,
		PollInterval: *poll,
		Weights:      map[string]float64{},
	}
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			cfg.Replicas = append(cfg.Replicas, strings.TrimRight(r, "/"))
		}
	}
	if *weights != "" {
		for _, pair := range strings.Split(*weights, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				fatalIf(fmt.Errorf("bad -tenant-weights entry %q (want tenant=weight)", pair))
			}
			w, err := strconv.ParseFloat(val, 64)
			if err != nil || w <= 0 {
				fatalIf(fmt.Errorf("bad weight in %q", pair))
			}
			cfg.Weights[name] = w
		}
	}

	f := front.New(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	f.Start(ctx)

	hs := &http.Server{Addr: *addr, Handler: f.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "cfc-front: listening on http://%s over %d replica(s)\n",
			*addr, len(cfg.Replicas))
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fatalIf(err)
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "cfc-front: shutting down")
		hs.Shutdown(context.Background())
	}
}

// frontRecord is the -front-json schema: one campaign run whole on a
// single replica versus sharded across three replicas, with the
// byte-identity verdict on the front's merged stream.
type frontRecord struct {
	Workload     string    `json:"workload"`
	Technique    string    `json:"technique"`
	Samples      int       `json:"samples"`
	Shards       int       `json:"shards"`
	CkptInterval int64     `json:"ckpt_interval"`
	GOMAXPROCS   int       `json:"gomaxprocs"`
	NumCPU       int       `json:"num_cpu"`
	SingleSec    float64   `json:"single_sec"`
	ShardSecs    []float64 `json:"shard_secs"`
	// FanoutSec is the critical path: the slowest shard, each timed on
	// its replica in isolation — the fleet wall-clock with one shard per
	// machine, which the benchmark host (often a 1-2 core CI box running
	// all three replicas) cannot exhibit directly.
	FanoutSec float64 `json:"fanout_sec"`
	// WallSec is the observed wall-clock of the front's real concurrent
	// fan-out on this host, informational: it converges to FanoutSec as
	// the host gives each replica its own core.
	WallSec float64 `json:"wall_sec"`
	// Speedup is SingleSec over FanoutSec: what sharding one campaign
	// across a fleet saves. CI gates on >= 2.
	Speedup float64 `json:"speedup"`
	// Identical reports the front's merged fan-out record matched the
	// single-server record byte for byte (elapsed/workers excluded).
	Identical bool `json:"identical"`
}

// writeFrontJSON measures the fan-out end to end over real HTTP: three
// in-process replicas behind a front. The byte-identity verdict comes
// from the front's real concurrent ?fanout=3 merge; the speedup comes
// from timing each shard on its replica in isolation (sequentially, so
// replicas sharing this host's cores don't contend) and taking the
// slowest shard as the fleet's critical path. Each replica is pinned to
// one worker so the comparison isolates the horizontal effect rather
// than intra-replica parallelism.
func writeFrontJSON(path string) error {
	const (
		nShards = 3
		samples = 6000
		seed    = 1
	)
	req := session.Request{
		Workload: "164.gzip", Scale: 0.05, Technique: "RCF", Style: "CMOVcc",
		Policy: "ALLBB", CkptInterval: -1, Workers: 1,
		Campaigns: []session.SpecJSON{{Seed: seed, Samples: samples}},
	}

	newReplica := func() (*http.Server, string, error) {
		reg := obs.NewRegistry()
		srv := &session.Server{Registry: session.NewRegistry(session.Config{Metrics: reg}), Metrics: reg}
		hs := &http.Server{Handler: srv.Handler()}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", err
		}
		go hs.Serve(ln)
		return hs, "http://" + ln.Addr().String(), nil
	}

	var urls []string
	for i := 0; i < nShards; i++ {
		hs, url, err := newReplica()
		if err != nil {
			return err
		}
		defer hs.Close()
		urls = append(urls, url)
	}
	f := front.New(front.Config{Replicas: urls})
	fhs := &http.Server{Handler: f.Handler()}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go fhs.Serve(fln)
	defer fhs.Close()
	frontURL := "http://" + fln.Addr().String()

	post := func(url string, body []byte) (session.RecordJSON, time.Duration, error) {
		var rec session.RecordJSON
		start := time.Now()
		resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
		if err != nil {
			return rec, 0, err
		}
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		if resp.StatusCode != http.StatusOK {
			var e session.ErrorJSON
			dec.Decode(&e)
			return rec, 0, fmt.Errorf("%s: %s: %s", url, resp.Status, e.Error)
		}
		if err := dec.Decode(&rec); err != nil {
			return rec, 0, err
		}
		if rec.Error != "" {
			return rec, 0, fmt.Errorf("campaign error: %s", rec.Error)
		}
		return rec, time.Since(start), nil
	}

	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	// Warm every replica's session first (a tiny shard on each via the
	// front, plus the whole-campaign home), so both timed runs measure
	// steady-state injection, not translator warm-up.
	warm := req
	warm.Campaigns = []session.SpecJSON{{Seed: seed + 1000, Samples: nShards}}
	warmBody, err := json.Marshal(warm)
	if err != nil {
		return err
	}
	if _, _, err := post(frontURL+"/v1/campaigns?fanout="+strconv.Itoa(nShards), warmBody); err != nil {
		return fmt.Errorf("warm fan-out: %w", err)
	}
	if _, _, err := post(urls[0]+"/v1/campaigns", warmBody); err != nil {
		return fmt.Errorf("warm single: %w", err)
	}

	singleRec, singleDur, err := post(urls[0]+"/v1/campaigns", body)
	if err != nil {
		return fmt.Errorf("single run: %w", err)
	}
	fanRec, fanDur, err := post(frontURL+"/v1/campaigns?fanout="+strconv.Itoa(nShards), body)
	if err != nil {
		return fmt.Errorf("fan-out run: %w", err)
	}

	// The critical path: the same campaign's shards, each timed alone on
	// its own replica (the replicas carry no cell cache, so every run
	// executes), so one shard's measurement never steals this host's
	// cycles from another.
	var shardSecs []float64
	critical := 0.0
	for i, sh := range front.ShardSpecs(req.Campaigns[0], nShards) {
		sreq := req
		sreq.Campaigns = []session.SpecJSON{sh}
		sbody, err := json.Marshal(sreq)
		if err != nil {
			return err
		}
		_, dur, err := post(urls[i%len(urls)]+"/v1/campaigns", sbody)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		shardSecs = append(shardSecs, dur.Seconds())
		if s := dur.Seconds(); s > critical {
			critical = s
		}
	}

	rec := frontRecord{
		Workload:     req.Workload,
		Technique:    req.Technique,
		Samples:      samples,
		Shards:       nShards,
		CkptInterval: req.CkptInterval,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		SingleSec:    singleDur.Seconds(),
		ShardSecs:    shardSecs,
		FanoutSec:    critical,
		WallSec:      fanDur.Seconds(),
		Identical:    normalizeRecord(singleRec) == normalizeRecord(fanRec),
	}
	if critical > 0 {
		rec.Speedup = singleDur.Seconds() / critical
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// normalizeRecord renders a record with its legitimately varying fields
// (wall clock, worker count, cache temperature) zeroed, for the
// byte-identity verdict.
func normalizeRecord(rec session.RecordJSON) string {
	rec.ElapsedSec = 0
	rec.Workers = 0
	rec.Cached = false
	out, _ := json.Marshal(rec)
	return string(out)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfc-front:", err)
		os.Exit(1)
	}
}
