package ckpt

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/check"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/isa"
)

// The test workload mixes loops, calls, memory traffic (so checkpoints
// carry page deltas) and output, and runs a few thousand steps so an
// interval of a few hundred yields a meaningful point stream.
const workload = `
.data 64
main:
    movi eax, 0
    movi ecx, 30
    movi esi, 0
outer:
    movi edx, 8
inner:
    addi eax, 7
    store [esi], eax
    load ebx, [esi]
    add eax, ebx
    addi esi, 1
    cmpi esi, 40
    jlt keep
    movi esi, 0
keep:
    subi edx, 1
    cmpi edx, 0
    jgt inner
    call bump
    out eax
    subi ecx, 1
    cmpi ecx, 0
    jgt outer
    out esi
    halt
bump:
    addi eax, 3
    ret
`

func mustAssemble(t *testing.T) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("ckpt-t", workload)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const maxSteps = 10_000_000

// warmSnapshot runs the translator until clean runs stop mutating shared
// state, then snapshots — the same precondition the injection campaigns
// establish.
func warmSnapshot(t *testing.T, p *isa.Program, opts dbt.Options) *dbt.Snapshot {
	t.Helper()
	d := dbt.New(p, opts)
	res := d.Run(nil, maxSteps)
	if res.Stop.Reason != cpu.StopHalt {
		t.Fatalf("clean run: %v", res.Stop)
	}
	for i := 0; i < 32; i++ {
		pre := d.StatsSnapshot()
		if res = d.Run(nil, maxSteps); res.Stop.Reason != cpu.StopHalt {
			t.Fatalf("warm run: %v", res.Stop)
		}
		if !d.StatsSnapshot().Sub(pre).Structural() {
			break
		}
	}
	return d.Snapshot()
}

// checkAgainstLog asserts that a resumed execution reproduced the
// reference run exactly.
func checkAgainstLog(t *testing.T, label string, k int, l *Log,
	stopReason cpu.StopReason, st cpu.State, out []int32) {
	t.Helper()
	if stopReason != l.Stop.Reason {
		t.Errorf("%s point %d: stop %v, want %v", label, k, stopReason, l.Stop.Reason)
	}
	if st.Steps != l.Final.Steps {
		t.Errorf("%s point %d: steps %d, want %d", label, k, st.Steps, l.Final.Steps)
	}
	if st.Cycles != l.Final.Cycles {
		t.Errorf("%s point %d: cycles %d, want %d", label, k, st.Cycles, l.Final.Cycles)
	}
	if st.DirectBranches != l.Final.DirectBranches {
		t.Errorf("%s point %d: branches %d, want %d", label, k, st.DirectBranches, l.Final.DirectBranches)
	}
	if st.SigChecks != l.Final.SigChecks {
		t.Errorf("%s point %d: sig checks %d, want %d", label, k, st.SigChecks, l.Final.SigChecks)
	}
	if len(out) != len(l.Output) {
		t.Fatalf("%s point %d: output length %d, want %d", label, k, len(out), len(l.Output))
	}
	for i := range out {
		if out[i] != l.Output[i] {
			t.Fatalf("%s point %d: output[%d] = %d, want %d", label, k, i, out[i], l.Output[i])
		}
	}
}

// Property: restoring any checkpoint and running to completion reproduces
// the full run exactly — output, cycles, steps, counters and stop reason —
// for every translated technique under every checking policy.
func TestRestoreReproducesReferenceDBT(t *testing.T) {
	p := mustAssemble(t)
	techs := []string{"none", "EdgCF", "RCF", "ECF"}
	policies := []dbt.Policy{dbt.PolicyAllBB, dbt.PolicyRetBE, dbt.PolicyRet, dbt.PolicyEnd}
	for _, name := range techs {
		for _, pol := range policies {
			label := fmt.Sprintf("%s/%v", name, pol)
			tech, err := check.New(name, dbt.UpdateCmov)
			if err != nil {
				t.Fatal(err)
			}
			snap := warmSnapshot(t, p, dbt.Options{Technique: tech, Policy: pol})
			l, err := Record(snap, 500, maxSteps)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if l.Stop.Reason != cpu.StopHalt {
				t.Fatalf("%s: reference ended with %v", label, l.Stop)
			}
			if l.Truncated {
				t.Fatalf("%s: recording truncated — warm snapshot still churns", label)
			}
			if len(l.Points) < 3 {
				t.Fatalf("%s: only %d points recorded", label, len(l.Points))
			}
			r := l.NewReplayer()
			for k := range l.Points {
				sd := snap.NewDBT()
				m := r.Machine(k)
				sd.Resume(m, l.Points[k].Prefix)
				stop := sd.Advance(m, maxSteps)
				res := sd.Finish(m, stop)
				checkAgainstLog(t, label, k, l, res.Stop.Reason, m.CaptureState(), res.Output)
				want := snap.Stats()
				want.Add(l.FinalPrefix)
				if res.Stats != want {
					t.Errorf("%s point %d: stats %+v, want %+v", label, k, res.Stats, want)
				}
			}
			// Seeking backwards rebuilds the memory image from scratch.
			sd := snap.NewDBT()
			m := r.Machine(0)
			sd.Resume(m, l.Points[0].Prefix)
			res := sd.Finish(m, sd.Advance(m, maxSteps))
			checkAgainstLog(t, label+"/rewind", 0, l, res.Stop.Reason, m.CaptureState(), res.Output)
		}
	}
}

// The same property for native execution, covering the statically
// instrumented techniques (CFCSS, ECCA) and the uninstrumented baseline.
func TestRestoreReproducesReferenceStatic(t *testing.T) {
	p := mustAssemble(t)
	progs := map[string]*isa.Program{"native": p}
	for kind, name := range map[check.StaticKind]string{check.StaticCFCSS: "CFCSS", check.StaticECCA: "ECCA"} {
		ip, err := check.InstrumentStatic(p, kind)
		if err != nil {
			t.Fatal(err)
		}
		progs[name] = ip
	}
	for label, prog := range progs {
		l, err := RecordStatic(prog, 700, maxSteps)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if l.Stop.Reason != cpu.StopHalt {
			t.Fatalf("%s: reference ended with %v", label, l.Stop)
		}
		if len(l.Points) < 3 {
			t.Fatalf("%s: only %d points recorded", label, len(l.Points))
		}
		r := l.NewReplayer()
		// Visit points out of order to exercise backward seeks too.
		for k := len(l.Points) - 1; k >= 0; k-- {
			m := r.Machine(k)
			stop := m.Run(prog.Code, maxSteps)
			checkAgainstLog(t, label, k, l, stop.Reason, m.CaptureState(), m.Output)
		}
	}
}

// Restoring at the point chosen for a fault site replays the firing
// exactly: same step, same IP, same direction pair as a full run.
func TestPointSelectionReplaysFiring(t *testing.T) {
	p := mustAssemble(t)
	tech, _ := check.New("RCF", dbt.UpdateCmov)
	snap := warmSnapshot(t, p, dbt.Options{Technique: tech})
	l, err := Record(snap, 300, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	branches := l.Final.DirectBranches
	for _, bi := range []uint64{0, 1, branches / 3, branches / 2, branches - 1} {
		full := &cpu.Fault{BranchIndex: bi, Kind: cpu.FaultOffsetBit, Bit: 3}
		fd := snap.NewDBT()
		fres := fd.Run(full, maxSteps)

		part := &cpu.Fault{BranchIndex: bi, Kind: cpu.FaultOffsetBit, Bit: 3}
		k := l.PointAtBranch(bi)
		if pt := &l.Points[k]; pt.State.DirectBranches > bi {
			t.Fatalf("branch %d: point %d already past the site (%d)", bi, k, pt.State.DirectBranches)
		}
		sd := snap.NewDBT()
		m := l.NewReplayer().Machine(k)
		m.Fault = part
		sd.Resume(m, l.Points[k].Prefix)
		res := sd.Finish(m, sd.Advance(m, maxSteps))

		if !part.Fired || !full.Fired {
			t.Fatalf("branch %d: fault did not fire (restored %v, full %v)", bi, part.Fired, full.Fired)
		}
		if *part != *full {
			t.Errorf("branch %d: firing differs\nrestored: %+v\nfull:     %+v", bi, *part, *full)
		}
		if res.Stop != fres.Stop || res.Steps != fres.Steps || res.Cycles != fres.Cycles {
			t.Errorf("branch %d: outcome differs: %v/%d/%d vs %v/%d/%d",
				bi, res.Stop, res.Steps, res.Cycles, fres.Stop, fres.Steps, fres.Cycles)
		}
	}
}

// Recording degrades gracefully: an interval longer than the run yields
// just the start point, which restores to a full replay.
func TestSinglePointLog(t *testing.T) {
	p := mustAssemble(t)
	snap := warmSnapshot(t, p, dbt.Options{})
	l, err := Record(snap, maxSteps, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Points) != 1 {
		t.Fatalf("%d points, want 1", len(l.Points))
	}
	sd := snap.NewDBT()
	m := l.NewReplayer().Machine(0)
	sd.Resume(m, l.Points[0].Prefix)
	res := sd.Finish(m, sd.Advance(m, maxSteps))
	checkAgainstLog(t, "single", 0, l, res.Stop.Reason, m.CaptureState(), res.Output)
}

func TestRecordRejectsZeroInterval(t *testing.T) {
	p := mustAssemble(t)
	if _, err := Record(warmSnapshot(t, p, dbt.Options{}), 0, maxSteps); err == nil {
		t.Error("Record accepted interval 0")
	}
	if _, err := RecordStatic(p, 0, maxSteps); err == nil {
		t.Error("RecordStatic accepted interval 0")
	}
}
