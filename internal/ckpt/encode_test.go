package ckpt

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/dbt"
	"repro/internal/frame"

	"repro/internal/check"
)

const testFingerprint = "ckpt-t|1|RCF|CMOVcc|ALLBB|-1"

// recordedLogs produces one log per recorder so every encode test runs
// against both the translator and the native (static-baseline) shape.
func recordedLogs(t *testing.T) map[string]*Log {
	t.Helper()
	p := mustAssemble(t)
	snap := warmSnapshot(t, p, dbt.Options{Technique: &check.RCF{Style: dbt.UpdateCmov}})
	dl, err := Record(snap, 512, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := RecordStatic(p, 512, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Log{"dbt": dl, "static": sl}
}

func encode(t *testing.T, l *Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.EncodeTo(&buf, testFingerprint); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The on-disk format must round-trip every field, and a replayer over the
// decoded log must rebuild bit-identical machine state at every point.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for name, l := range recordedLogs(t) {
		t.Run(name, func(t *testing.T) {
			raw := encode(t, l)
			got, err := DecodeLog(bytes.NewReader(raw), testFingerprint)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, l) {
				t.Fatalf("decoded log differs\n got: %+v\nwant: %+v", got, l)
			}
			// Machine reconstruction, not just field equality: the decoded
			// log must restore the same registers, flags, counters, memory
			// image and output prefix at every checkpoint.
			orig, dec := l.NewReplayer(), got.NewReplayer()
			for k := range l.Points {
				if !reflect.DeepEqual(dec.Machine(k), orig.Machine(k)) {
					t.Fatalf("point %d: restored machine differs", k)
				}
			}
		})
	}
}

// Any unreadable byte stream — wrong magic, flipped bits, truncation,
// bytes bolted onto either end — must come back as ErrCorrupt so callers
// fall back to re-recording instead of trusting garbage.
func TestDecodeRejectsCorrupt(t *testing.T) {
	l := recordedLogs(t)["dbt"]
	raw := encode(t, l)

	cases := map[string][]byte{
		"empty":     {},
		"short":     raw[:6],
		"truncated": raw[:len(raw)/2],
		"appended":  append(append([]byte{}, raw...), 0xde, 0xad),
	}
	badMagic := append([]byte{}, raw...)
	badMagic[0] ^= 0xff
	cases["bad magic"] = badMagic
	flipped := append([]byte{}, raw...)
	flipped[len(flipped)/2] ^= 0x01
	cases["flipped byte"] = flipped

	for name, b := range cases {
		if _, err := DecodeLog(bytes.NewReader(b), testFingerprint); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v, want ErrCorrupt", name, err)
		}
	}
}

// A clean decode under the wrong fingerprint is stale, not corrupt: the
// bytes are fine but belong to a different configuration.
func TestDecodeRejectsStaleFingerprint(t *testing.T) {
	for name, l := range recordedLogs(t) {
		raw := encode(t, l)
		if _, err := DecodeLog(bytes.NewReader(raw), "other|config"); !errors.Is(err, ErrStale) {
			t.Errorf("%s: error %v, want ErrStale", name, err)
		}
		if _, err := DecodeLog(bytes.NewReader(raw), testFingerprint); err != nil {
			t.Errorf("%s: correct fingerprint rejected: %v", name, err)
		}
	}
}

// Interior extra bytes with a valid checksum must still be rejected (the
// decoder demands the body section end exactly where the fields do).
func TestDecodeRejectsTrailingPayload(t *testing.T) {
	l := recordedLogs(t)["static"]
	padded := frame.Seal(logMagic, []byte(testFingerprint), append(l.encodeBody(), 0, 0, 0, 0))
	if _, err := DecodeLog(bytes.NewReader(padded), testFingerprint); !errors.Is(err, ErrCorrupt) {
		t.Errorf("error %v, want ErrCorrupt", err)
	}
}
