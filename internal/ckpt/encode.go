package ckpt

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/frame"
	"repro/internal/isa"
)

// logMagic identifies the on-disk checkpoint-log format; the trailing
// digit is the version (see the package documentation for the layout).
// Version 2 moved the envelope onto the shared frame.Seal layout: the
// fingerprint and the binary body are two framed sections instead of the
// version-1 fingerprint-then-unframed-body arrangement. Version-1 files
// decode as corrupt and are re-recorded in place.
const logMagic = "CFCKLOG2"

// ErrCorrupt marks a checkpoint-log file whose bytes cannot be decoded:
// bad magic, checksum mismatch, or a truncated/overlong payload.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint log")

// ErrStale marks a checkpoint-log file that decodes cleanly but was
// recorded for a different configuration (fingerprint mismatch).
var ErrStale = errors.New("ckpt: stale checkpoint log")

// AutoInterval maps the CkptInterval knob to a capture spacing in steps:
// positive values are explicit, zero or negative auto-sizes to ~256
// checkpoints over the clean run with a floor that keeps small programs
// from spending more on captures than they save on restores.
func AutoInterval(knob int64, cleanSteps uint64) uint64 {
	if knob > 0 {
		return uint64(knob)
	}
	iv := cleanSteps / 256
	if iv < 512 {
		iv = 512
	}
	return iv
}

func encodeState(w *frame.Writer, st *cpu.State) {
	for _, r := range st.Regs {
		w.U32(uint32(r))
	}
	w.U8(uint8(st.Flags))
	w.U32(st.IP)
	w.U64(st.Cycles)
	w.U64(st.Steps)
	w.U64(st.DirectBranches)
	w.U64(st.IndirectBranches)
	w.U64(st.SigChecks)
}

func encodeStats(w *frame.Writer, s *dbt.Stats) {
	w.I64(int64(s.BlocksTranslated))
	w.U64(s.GuestInstrsTranslated)
	w.I64(int64(s.TracesFormed))
	w.U64(s.Dispatches)
	w.U64(s.IndirectLookups)
	w.I64(int64(s.Invalidations))
	w.I64(int64(s.CheckSites))
}

// encodeBody serializes the log fields into the binary section of the
// envelope (everything except the magic, fingerprint and checksum, which
// frame.Seal supplies).
func (l *Log) encodeBody() []byte {
	w := frame.NewWriter(64 + int(l.Bytes))
	w.U64(l.Interval)
	w.U32(l.MemWords)
	w.Bool(l.Truncated)
	w.U32(uint32(l.Stop.Reason))
	w.U32(l.Stop.IP)
	w.String(l.Stop.Detail)
	w.I64(int64(l.CacheSize))
	w.U64(l.Bytes)
	encodeState(w, &l.Final)
	encodeStats(w, &l.FinalPrefix)
	w.Words(l.Output)
	w.U32(uint32(len(l.Points)))
	for i := range l.Points {
		pt := &l.Points[i]
		encodeState(w, &pt.State)
		w.U32(uint32(pt.OutLen))
		encodeStats(w, &pt.Prefix)
		w.U32(uint32(len(pt.Pages)))
		for _, pg := range pt.Pages {
			w.U32(pg.Index)
			w.Words(pg.Words)
		}
	}
	return w.Buf()
}

// Encode renders the log in the versioned, checksummed on-disk format
// documented at the package level: a logMagic envelope whose two framed
// sections are the fingerprint and the binary body. fingerprint is an
// opaque identity string (typically the cache key) that DecodeLog will
// demand back.
func (l *Log) Encode(fingerprint string) []byte {
	return frame.Seal(logMagic, []byte(fingerprint), l.encodeBody())
}

// EncodeTo writes Encode's bytes to w.
func (l *Log) EncodeTo(w io.Writer, fingerprint string) error {
	_, err := w.Write(l.Encode(fingerprint))
	return err
}

func decodeState(r *frame.Reader, st *cpu.State) {
	for i := range st.Regs {
		st.Regs[i] = int32(r.U32())
	}
	st.Flags = isa.Flags(r.U8())
	st.IP = r.U32()
	st.Cycles = r.U64()
	st.Steps = r.U64()
	st.DirectBranches = r.U64()
	st.IndirectBranches = r.U64()
	st.SigChecks = r.U64()
}

func decodeStats(r *frame.Reader, s *dbt.Stats) {
	s.BlocksTranslated = int(r.I64())
	s.GuestInstrsTranslated = r.U64()
	s.TracesFormed = int(r.I64())
	s.Dispatches = r.U64()
	s.IndirectLookups = r.U64()
	s.Invalidations = int(r.I64())
	s.CheckSites = int(r.I64())
}

// decodeBody reads the fields written by encodeBody.
func decodeBody(body []byte) (*Log, error) {
	r := frame.NewReader(body)
	l := &Log{}
	l.Interval = r.U64()
	l.MemWords = r.U32()
	l.Truncated = r.Bool()
	l.Stop.Reason = cpu.StopReason(r.U32())
	l.Stop.IP = r.U32()
	l.Stop.Detail = r.String()
	l.CacheSize = int(r.I64())
	l.Bytes = r.U64()
	decodeState(r, &l.Final)
	decodeStats(r, &l.FinalPrefix)
	l.Output = r.Words()
	npoints := r.Count(1)
	if r.Err() == nil && npoints > 0 {
		l.Points = make([]Point, npoints)
	}
	for i := 0; i < npoints && r.Err() == nil; i++ {
		pt := &l.Points[i]
		decodeState(r, &pt.State)
		pt.OutLen = int(r.U32())
		decodeStats(r, &pt.Prefix)
		npages := r.Count(8)
		if r.Err() == nil && npages > 0 {
			pt.Pages = make([]Page, npages)
		}
		for j := 0; j < npages && r.Err() == nil; j++ {
			pt.Pages[j].Index = r.U32()
			pt.Pages[j].Words = r.Words()
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return l, nil
}

// DecodeLog reads a log written by EncodeTo, verifying the magic, the
// CRC-32 checksum and the fingerprint before trusting any field. It
// returns ErrCorrupt for unreadable bytes and ErrStale when the bytes
// decode but were recorded under a different fingerprint; callers fall
// back to re-recording on either.
func DecodeLog(r io.Reader, fingerprint string) (*Log, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return DecodeLogBytes(buf, fingerprint)
}

// DecodeLogBytes is DecodeLog over an in-memory encoding.
func DecodeLogBytes(buf []byte, fingerprint string) (*Log, error) {
	sections, err := frame.Open(logMagic, buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(sections) != 2 {
		return nil, fmt.Errorf("%w: %d sections, want 2", ErrCorrupt, len(sections))
	}
	if got := string(sections[0]); got != fingerprint {
		return nil, fmt.Errorf("%w: fingerprint %q, want %q", ErrStale, got, fingerprint)
	}
	return decodeBody(sections[1])
}
