package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/fp"
	"repro/internal/isa"
)

// logMagic identifies the on-disk checkpoint-log format; the trailing
// digit is the version (see the package documentation for the layout).
const logMagic = "CFCKLOG1"

// ErrCorrupt marks a checkpoint-log file whose bytes cannot be decoded:
// bad magic, checksum mismatch, or a truncated/overlong payload.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint log")

// ErrStale marks a checkpoint-log file that decodes cleanly but was
// recorded for a different configuration (fingerprint mismatch).
var ErrStale = errors.New("ckpt: stale checkpoint log")

// AutoInterval maps the CkptInterval knob to a capture spacing in steps:
// positive values are explicit, zero or negative auto-sizes to ~256
// checkpoints over the clean run with a floor that keeps small programs
// from spending more on captures than they save on restores.
func AutoInterval(knob int64, cleanSteps uint64) uint64 {
	if knob > 0 {
		return uint64(knob)
	}
	iv := cleanSteps / 256
	if iv < 512 {
		iv = 512
	}
	return iv
}

// logEncoder serializes into an in-memory buffer while folding every byte
// into the checksum.
type logEncoder struct {
	buf []byte
}

func (e *logEncoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *logEncoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *logEncoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *logEncoder) i64(v int64)  { e.u64(uint64(v)) }

func (e *logEncoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *logEncoder) words(ws []int32) {
	e.u32(uint32(len(ws)))
	for _, w := range ws {
		e.u32(uint32(w))
	}
}

func (e *logEncoder) state(st *cpu.State) {
	for _, r := range st.Regs {
		e.u32(uint32(r))
	}
	e.u8(uint8(st.Flags))
	e.u32(st.IP)
	e.u64(st.Cycles)
	e.u64(st.Steps)
	e.u64(st.DirectBranches)
	e.u64(st.IndirectBranches)
	e.u64(st.SigChecks)
}

func (e *logEncoder) stats(s *dbt.Stats) {
	e.i64(int64(s.BlocksTranslated))
	e.u64(s.GuestInstrsTranslated)
	e.i64(int64(s.TracesFormed))
	e.u64(s.Dispatches)
	e.u64(s.IndirectLookups)
	e.i64(int64(s.Invalidations))
	e.i64(int64(s.CheckSites))
}

// EncodeTo writes the log in the versioned, checksummed on-disk format
// documented at the package level. fingerprint is an opaque identity
// string (typically the cache key) that DecodeLog will demand back.
func (l *Log) EncodeTo(w io.Writer, fingerprint string) error {
	e := &logEncoder{buf: make([]byte, 0, 64+l.Bytes)}
	e.buf = append(e.buf, logMagic...)
	e.bytes([]byte(fingerprint))
	e.u64(l.Interval)
	e.u32(l.MemWords)
	if l.Truncated {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u32(uint32(l.Stop.Reason))
	e.u32(l.Stop.IP)
	e.bytes([]byte(l.Stop.Detail))
	e.i64(int64(l.CacheSize))
	e.u64(l.Bytes)
	e.state(&l.Final)
	e.stats(&l.FinalPrefix)
	e.words(l.Output)
	e.u32(uint32(len(l.Points)))
	for i := range l.Points {
		pt := &l.Points[i]
		e.state(&pt.State)
		e.u32(uint32(pt.OutLen))
		e.stats(&pt.Prefix)
		e.u32(uint32(len(pt.Pages)))
		for _, pg := range pt.Pages {
			e.u32(pg.Index)
			e.words(pg.Words)
		}
	}
	e.u32(fp.Checksum(e.buf))
	_, err := w.Write(e.buf)
	return err
}

// logDecoder walks the checksummed payload, failing sticky on the first
// out-of-bounds read.
type logDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *logDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: payload truncated at byte %d", ErrCorrupt, d.pos)
	}
}

func (d *logDecoder) take(n int) []byte {
	if d.err != nil || n < 0 || d.pos+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *logDecoder) u8() uint8 {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *logDecoder) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *logDecoder) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *logDecoder) i64() int64 { return int64(d.u64()) }

// count reads a u32 length and bounds it against the bytes remaining at
// unit size, so a corrupt length cannot drive a huge allocation.
func (d *logDecoder) count(unit int) int {
	n := int(d.u32())
	if d.err == nil && n*unit > len(d.buf)-d.pos {
		d.fail()
		return 0
	}
	return n
}

func (d *logDecoder) str() string { return string(d.take(d.count(1))) }

func (d *logDecoder) words() []int32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	ws := make([]int32, n)
	for i := range ws {
		ws[i] = int32(d.u32())
	}
	return ws
}

func (d *logDecoder) state(st *cpu.State) {
	for i := range st.Regs {
		st.Regs[i] = int32(d.u32())
	}
	st.Flags = isa.Flags(d.u8())
	st.IP = d.u32()
	st.Cycles = d.u64()
	st.Steps = d.u64()
	st.DirectBranches = d.u64()
	st.IndirectBranches = d.u64()
	st.SigChecks = d.u64()
}

func (d *logDecoder) stats(s *dbt.Stats) {
	s.BlocksTranslated = int(d.i64())
	s.GuestInstrsTranslated = d.u64()
	s.TracesFormed = int(d.i64())
	s.Dispatches = d.u64()
	s.IndirectLookups = d.u64()
	s.Invalidations = int(d.i64())
	s.CheckSites = int(d.i64())
}

// DecodeLog reads a log written by EncodeTo, verifying the magic, the
// CRC-32 checksum and the fingerprint before trusting any field. It
// returns ErrCorrupt for unreadable bytes and ErrStale when the bytes
// decode but were recorded under a different fingerprint; callers fall
// back to re-recording on either.
func DecodeLog(r io.Reader, fingerprint string) (*Log, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(buf) < len(logMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(buf))
	}
	if string(buf[:len(logMagic)]) != logMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:len(logMagic)])
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := fp.Checksum(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, file says %08x", ErrCorrupt, got, want)
	}

	d := &logDecoder{buf: body, pos: len(logMagic)}
	if fp := d.str(); d.err == nil && fp != fingerprint {
		return nil, fmt.Errorf("%w: fingerprint %q, want %q", ErrStale, fp, fingerprint)
	}
	l := &Log{}
	l.Interval = d.u64()
	l.MemWords = d.u32()
	l.Truncated = d.u8() != 0
	l.Stop.Reason = cpu.StopReason(d.u32())
	l.Stop.IP = d.u32()
	l.Stop.Detail = d.str()
	l.CacheSize = int(d.i64())
	l.Bytes = d.u64()
	d.state(&l.Final)
	d.stats(&l.FinalPrefix)
	l.Output = d.words()
	npoints := d.count(1)
	if d.err == nil && npoints > 0 {
		l.Points = make([]Point, npoints)
	}
	for i := 0; i < npoints && d.err == nil; i++ {
		pt := &l.Points[i]
		d.state(&pt.State)
		pt.OutLen = int(d.u32())
		d.stats(&pt.Prefix)
		npages := d.count(8)
		if d.err == nil && npages > 0 {
			pt.Pages = make([]Page, npages)
		}
		for j := 0; j < npages && d.err == nil; j++ {
			pt.Pages[j].Index = d.u32()
			pt.Pages[j].Words = d.words()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.pos)
	}
	return l, nil
}
