// Package ckpt implements checkpoint-and-resume acceleration for fault
// injection campaigns. One instrumented clean reference run records
// periodic machine checkpoints — architectural state, counters, output
// length and a dirty-page memory delta — and every subsequent faulty run
// restores the nearest checkpoint at or before its fault site instead of
// re-executing the shared prefix. A campaign of N samples over a clean run
// of S steps drops from O(N·S) to O(N·interval + S) while reproducing the
// full-replay results bit for bit: a restored machine is exactly the
// machine that executed the whole prefix.
//
// Checkpoints under the DBT are only valid while the reference run leaves
// the shared translator state untouched. On a fully warmed snapshot the
// only translator activity a clean run performs is indirect-branch lookup
// servicing (a counter, no cache mutation); any structural activity —
// dispatches, translations, trace formation, invalidation — means the
// reference run's cache diverged from the pristine clones faulty samples
// start from, so recording stops capturing points at that instant and the
// points captured earlier remain valid (graceful degradation down to
// "checkpoint 0 only", which is plain replay).
//
// # On-disk checkpoint-log format
//
// A recorded Log can be persisted with Log.EncodeTo and reloaded with
// DecodeLog, so repeated campaigns on the same configuration skip the
// reference-run recording entirely (the session registry keys these files
// by workload, scale, technique, style, policy and interval). The file is
// a frame.Seal envelope, all integers little-endian:
//
//	offset  field
//	0       magic: the 8 ASCII bytes "CFCKLOG2" (the trailing digit is
//	        the format version; incompatible layout changes bump it, and
//	        decoders reject any other magic — version-1 files decode
//	        corrupt and are re-recorded in place)
//	8       fingerprint section: u32 length + bytes — an opaque
//	        caller-supplied identity string (the session cache writes its
//	        key here); DecodeLog rejects the file as stale when it does
//	        not match
//	...     body section: u32 length + the payload below
//	end-4   checksum: IEEE CRC-32 of every preceding byte (magic
//	        included); a mismatch marks the file corrupt
//
// The body payload is a fixed field sequence with no padding:
//
//	interval     u64   capture spacing in machine steps
//	memWords     u32   machine memory size in words
//	truncated    u8    1 when recording stopped early (structural
//	                   translator activity), else 0
//	stop         how the reference run ended: reason u32, ip u32,
//	             detail u32 length + bytes
//	cacheSize    i64   code cache size at the end of the run
//	bytes        u64   in-memory footprint estimate of the points
//	final        machine state (layout below)
//	finalPrefix  translator stats (layout below)
//	output       u32 word count + that many i32 output words
//	points       u32 point count, then per point:
//	               state    machine state
//	               outLen   u32 reference-output prefix length
//	               prefix   translator stats
//	               pages    u32 page count, then per page:
//	                          index u32, wordCount u32, words i32 each
//
// A machine state is the architectural and counter snapshot, in order:
// isa.NumRegs general registers (i32 each), flags (u8), IP (u32), then
// the five u64 counters cycles, steps, direct branches, indirect
// branches, signature checks. Translator stats are seven i64 fields in
// struct order: blocks translated, guest instructions translated, traces
// formed, dispatches, indirect lookups, invalidations, check sites.
//
// Decoding validates the magic, the checksum, the fingerprint and every
// length field against the remaining input before allocating, and
// classifies failures as ErrCorrupt (unreadable bytes) or ErrStale
// (readable bytes recorded for a different configuration). Callers treat
// both the same way: fall back to re-recording and overwrite the file.
package ckpt
