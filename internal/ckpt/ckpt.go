package ckpt

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Page is one dirty memory page captured at a checkpoint: the words of
// tracking page Index at capture time.
type Page struct {
	Index uint32
	Words []int32
}

// Point is one checkpoint: everything needed to rebuild the machine at a
// step boundary of the clean reference run.
type Point struct {
	// State is the architectural and counter state at the boundary.
	State cpu.State
	// OutLen is how many words of the reference output stream had been
	// emitted by the boundary.
	OutLen int
	// Prefix is the translator work the reference run accumulated from its
	// start to this point (a delta over the snapshot baseline): a resumed
	// clone credits it so its final stats equal a full replay's.
	Prefix dbt.Stats
	// Pages holds the memory pages written since the previous point, in
	// ascending page order. Rebuilding memory at point k applies the page
	// deltas of points 0..k onto a zero image.
	Pages []Page
}

// Log is the recorded checkpoint stream of one clean reference run, plus
// the run's final result — the reference against which faulty outcomes are
// classified and from which provably clean tails are synthesized.
type Log struct {
	// Interval is the capture spacing in machine steps.
	Interval uint64
	// MemWords is the machine's memory size in words.
	MemWords uint32
	// Output is the complete reference output stream.
	Output []int32
	// Points are the checkpoints in capture (ascending step) order. Index 0
	// is the run's start boundary and always exists.
	Points []Point
	// Truncated reports that recording stopped capturing points early
	// because the reference run mutated shared translator state; the points
	// present are still valid.
	Truncated bool
	// Stop is how the reference run ended.
	Stop cpu.Stop
	// Final is the machine state when the reference run stopped.
	Final cpu.State
	// FinalPrefix is the translator-work delta of the whole reference run.
	FinalPrefix dbt.Stats
	// CacheSize is the code cache size (instructions) at the end of the
	// reference run (zero for native recordings).
	CacheSize int
	// Bytes approximates the memory footprint of the recorded checkpoint
	// data (states plus page deltas).
	Bytes uint64
}

// Complete reports whether the reference run ran to a normal halt, which
// the clean-tail short circuit requires.
func (l *Log) Complete() bool { return l.Stop.Reason == cpu.StopHalt }

// pointBytes approximates the in-memory size of one checkpoint.
func pointBytes(pt *Point) uint64 {
	b := uint64(len(pt.Pages)) * 16 // headers
	for i := range pt.Pages {
		b += uint64(len(pt.Pages[i].Words)) * 4
	}
	return b + uint64(isa.NumRegs+8)*8
}

// capture appends the machine's current boundary state as a new point.
func (l *Log) capture(m *cpu.Machine, prefix dbt.Stats) {
	pt := Point{State: m.CaptureState(), OutLen: len(m.Output), Prefix: prefix}
	m.Mem.CaptureDirty(func(page uint32, words []int32) {
		pt.Pages = append(pt.Pages, Page{Index: page, Words: append([]int32(nil), words...)})
	})
	l.Bytes += pointBytes(&pt)
	l.Points = append(l.Points, pt)
}

// finish seals the log with the reference run's terminal result.
func (l *Log) finish(m *cpu.Machine, stop cpu.Stop, prefix dbt.Stats, cacheSize int) {
	l.Stop = stop
	l.Final = m.CaptureState()
	l.FinalPrefix = prefix
	l.CacheSize = cacheSize
	l.Output = append([]int32(nil), m.Output...)
	l.MemWords = m.Mem.Size()
}

// Record performs the instrumented clean reference run on a private clone
// of snap, capturing a checkpoint every interval steps. It returns the log
// even when the run does not halt (Stop records how it ended); callers
// decide whether that is an error.
func Record(snap *dbt.Snapshot, interval, maxSteps uint64) (*Log, error) {
	if interval == 0 {
		return nil, fmt.Errorf("ckpt: interval must be positive")
	}
	d := snap.NewDBT()
	base := snap.Stats()
	m, res := d.Start(nil)
	if res != nil {
		return nil, fmt.Errorf("ckpt: reference run failed to start: %v", res.Stop)
	}
	l := &Log{Interval: interval}
	// Point 0: the run's start boundary (memory untouched, so the capture
	// takes no pages — the replayer's zero image is the start image).
	l.capture(m, d.StatsSnapshot().Sub(base))
	for {
		target := m.Steps + interval
		if target > maxSteps {
			target = maxSteps
		}
		stop := d.Advance(m, target)
		prefix := d.StatsSnapshot().Sub(base)
		if stop.Reason != cpu.StopOutOfSteps || target >= maxSteps {
			// Terminal: halt, detection, trap — or the real budget ran out.
			l.finish(m, stop, prefix, d.CacheLen())
			return l, nil
		}
		if l.Truncated {
			continue
		}
		if prefix.Structural() {
			// The run warmed the translator further; clones would not share
			// this cache state, so later boundaries are not restorable.
			l.Truncated = true
			continue
		}
		l.capture(m, prefix)
	}
}

// RecordStatic performs the clean reference run for native (no translator)
// execution of p, capturing a checkpoint every interval steps. Native runs
// share no translator state, so recording never truncates.
func RecordStatic(p *isa.Program, interval, maxSteps uint64) (*Log, error) {
	if interval == 0 {
		return nil, fmt.Errorf("ckpt: interval must be positive")
	}
	m := cpu.New()
	m.Reset(p)
	plan := cpu.NewPlan(p.Code, nil)
	l := &Log{Interval: interval}
	l.capture(m, dbt.Stats{})
	for {
		target := m.Steps + interval
		if target > maxSteps {
			target = maxSteps
		}
		stop := m.RunPlan(&plan, target)
		if stop.Reason != cpu.StopOutOfSteps || target >= maxSteps {
			l.finish(m, stop, dbt.Stats{}, 0)
			return l, nil
		}
		l.capture(m, dbt.Stats{})
	}
}

// PointAtBranch returns the index of the last point whose direct-branch
// counter has not yet passed branchIndex: restoring there replays the
// branch that the fault strikes. The counter is nondecreasing across
// points, so this is a binary search.
func (l *Log) PointAtBranch(branchIndex uint64) int {
	return l.lastAtOrBefore(func(pt *Point) uint64 { return pt.State.DirectBranches }, branchIndex)
}

// PointAtStep returns the index of the last point at or before machine
// step stepIndex (the restore point for step-indexed register faults).
func (l *Log) PointAtStep(stepIndex uint64) int {
	return l.lastAtOrBefore(func(pt *Point) uint64 { return pt.State.Steps }, stepIndex)
}

// lastAtOrBefore finds the greatest k with key(points[k]) <= limit. Point
// 0 always qualifies: both counters start at zero.
func (l *Log) lastAtOrBefore(key func(*Point) uint64, limit uint64) int {
	k := sort.Search(len(l.Points), func(i int) bool { return key(&l.Points[i]) > limit })
	if k == 0 {
		return 0
	}
	return k - 1
}

// Replayer materializes machines at checkpoints of one log. It keeps a
// working memory image and applies page deltas incrementally, so a worker
// that visits points in ascending order pays each delta once; seeking
// backwards rebuilds from the zero image. A Replayer is not safe for
// concurrent use — campaigns give each worker its own.
type Replayer struct {
	log *Log
	img []int32
	cur int // last applied point index; -1 = zero image
}

// NewReplayer returns a replayer over the log with a zeroed image.
func (l *Log) NewReplayer() *Replayer {
	return &Replayer{log: l, img: make([]int32, l.MemWords), cur: -1}
}

// seek brings the image to checkpoint k's memory state.
func (r *Replayer) seek(k int) {
	if k < r.cur {
		clear(r.img)
		r.cur = -1
	}
	for ; r.cur < k; r.cur++ {
		for _, pg := range r.log.Points[r.cur+1].Pages {
			lo := int(pg.Index) << mem.PageShift
			copy(r.img[lo:lo+len(pg.Words)], pg.Words)
		}
	}
}

// Machine returns a fresh machine restored to checkpoint k: architectural
// state and counters from the point, memory copied from the incrementally
// rebuilt image, output primed with the reference prefix. The caller
// plants the fault and (for DBT runs) resumes a translator clone on it.
func (r *Replayer) Machine(k int) *cpu.Machine {
	r.seek(k)
	pt := &r.log.Points[k]
	m := cpu.New()
	m.RestoreFrom(pt.State)
	m.Mem = mem.NewFrom(r.img)
	m.Output = append([]int32(nil), r.log.Output[:pt.OutLen]...)
	return m
}
