// Package live computes backward dataflow liveness over the basic-block
// graph of internal/cfg: for every instruction address, which condition-flag
// bits and which registers may still be read before they are redefined. The
// fault-injection engines use it to prune provably benign faults — a
// transient bit flip in a flag or register that is dead at its site is
// redefined before any use along every path, so the faulted run's tail is
// the clean run's tail and can be synthesized from the recorded reference
// instead of executed.
//
// The analysis is deliberately conservative at every boundary it cannot see
// through: blocks ending in indirect transfers (ret, jmpr, callr) and
// translator exit stubs (trapout) treat everything as live-out, so a prune
// never reaches across a control transfer the static graph cannot resolve.
// Over-approximating liveness only costs pruning opportunities; it can never
// produce a wrong outcome.
package live

import (
	"repro/internal/cfg"
	"repro/internal/isa"
)

// allRegs is the live-set of all registers (guest and target alike).
const allRegs = uint32(1)<<isa.NumRegs - 1

// allFlags is the live-set of all condition-flag bits.
const allFlags = uint8(isa.FlagMask)

// Info holds the per-instruction liveness facts of one code image.
type Info struct {
	// flagsIn[a] and regsIn[a] are the bits that may be read before being
	// redefined on some path starting at instruction address a (live-in).
	flagsIn []uint8
	regsIn  []uint32
}

// Analyze computes liveness for the program underlying g.
func Analyze(g *cfg.Graph) *Info {
	n := int(g.Prog.Len())
	info := &Info{
		flagsIn: make([]uint8, n),
		regsIn:  make([]uint32, n),
	}
	if n == 0 {
		return info
	}
	code := g.Prog.Code

	// Block-level fixpoint on live-in sets. Iterating blocks in reverse
	// address order converges in a handful of passes on reducible graphs.
	type sets struct {
		flags uint8
		regs  uint32
	}
	in := make([]sets, len(g.Blocks))
	blockOut := func(b *cfg.Block) sets {
		last := code[b.End-1]
		if b.HasIndirectSucc || last.Op == isa.OpTrapOut {
			// Indirect successors and translator exits: anything may be
			// read downstream.
			return sets{flags: allFlags, regs: allRegs}
		}
		var out sets
		for _, s := range b.Succs {
			sb := g.BlockAt(s)
			if sb == nil {
				continue
			}
			out.flags |= in[sb.ID].flags
			out.regs |= in[sb.ID].regs
		}
		// Halt/report terminators and falls off the image end contribute
		// nothing: the run is over (or traps) and no state is read.
		return out
	}
	transferBlock := func(b *cfg.Block, out sets) sets {
		for a := int(b.End) - 1; a >= int(b.Start); a-- {
			out.flags, out.regs = transfer(code[a], out.flags, out.regs)
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for i := len(g.Blocks) - 1; i >= 0; i-- {
			b := g.Blocks[i]
			ni := transferBlock(b, blockOut(b))
			if ni != in[b.ID] {
				in[b.ID] = ni
				changed = true
			}
		}
	}

	// Materialize per-instruction live-in sets with one more backward walk
	// per block, now against the converged block live-outs.
	for _, b := range g.Blocks {
		out := blockOut(b)
		for a := int(b.End) - 1; a >= int(b.Start); a-- {
			out.flags, out.regs = transfer(code[a], out.flags, out.regs)
			info.flagsIn[a] = out.flags
			info.regsIn[a] = out.regs
		}
	}
	return info
}

// AnalyzeCode computes liveness for a bare instruction slice (the DBT code
// cache), entry at address 0.
func AnalyzeCode(code []isa.Instr) *Info {
	return Analyze(cfg.Build(&isa.Program{Name: "cache", Code: code}))
}

// FlagBitDead reports whether flag bit (0..NumFlagBits-1) is provably dead
// at the entry of the instruction at addr: no path from addr reads it
// before redefining it. Addresses outside the analyzed image are never
// provably dead.
func (i *Info) FlagBitDead(addr uint32, bit uint) bool {
	if addr >= uint32(len(i.flagsIn)) || bit >= isa.NumFlagBits {
		return false
	}
	return i.flagsIn[addr]&(1<<bit) == 0
}

// RegDead reports whether register r is provably dead at the entry of the
// instruction at addr.
func (i *Info) RegDead(addr uint32, r isa.Reg) bool {
	if addr >= uint32(len(i.regsIn)) || int(r) >= isa.NumRegs {
		return false
	}
	return i.regsIn[addr]&(1<<r) == 0
}

// transfer applies one instruction's backward transfer function:
// live-in = (live-out minus kills) union gens.
func transfer(in isa.Instr, flags uint8, regs uint32) (uint8, uint32) {
	// Flags. Every flag writer in the ISA defines all five bits at once
	// (SubFlags/AddFlags/LogicFlags build the register from scratch and
	// popf masks a full stack word), so the kill set is total.
	if in.Op.WritesFlags() {
		flags = 0
	}
	switch in.Op {
	case isa.OpJcc:
		flags |= uint8(in.Cond().FlagsRead())
	case isa.OpCmov:
		flags |= uint8(in.CmovCond().FlagsRead())
	case isa.OpPushF:
		flags = allFlags
	}

	use, def := regUseDef(in)
	regs = regs&^def | use
	return flags, regs
}

// regUseDef returns the register read and write sets of one instruction,
// including the implicit stack-pointer traffic of push/pop/call/ret.
func regUseDef(in isa.Instr) (use, def uint32) {
	rd := uint32(1) << (uint32(in.RD) % uint32(isa.NumRegs))
	rs1 := uint32(1) << (uint32(in.RS1) % uint32(isa.NumRegs))
	rs2 := uint32(1) << (uint32(in.RS2) % uint32(isa.NumRegs))
	const esp = uint32(1) << isa.ESP
	switch in.Op {
	case isa.OpMovRI:
		return 0, rd
	case isa.OpMovRR, isa.OpLea:
		return rs1, rd
	case isa.OpLea3, isa.OpXor3:
		return rs1 | rs2, rd
	case isa.OpLoad:
		return rs1, rd
	case isa.OpStore:
		return rs1 | rs2, 0
	case isa.OpPush:
		return rs1 | esp, esp
	case isa.OpPop:
		return esp, rd | esp
	case isa.OpPushF, isa.OpPopF:
		return esp, esp
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpMul, isa.OpDiv,
		isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		return rd | rs1, rd
	case isa.OpAddI, isa.OpSubI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
		isa.OpShlI, isa.OpShrI:
		return rd, rd
	case isa.OpCmp, isa.OpTest:
		return rd | rs1, 0
	case isa.OpCmpI:
		return rd, 0
	case isa.OpJrz:
		return rs1, 0
	case isa.OpCall:
		return esp, esp
	case isa.OpRet:
		return esp, esp
	case isa.OpJmpR:
		return rs1, 0
	case isa.OpCallR:
		return rs1 | esp, esp
	case isa.OpCmov:
		// Conditional write: the old destination value may survive, so RD
		// is not killed (and stays live if it was live after).
		return rs1, 0
	case isa.OpOut:
		return rs1, 0
	}
	// nop, halt, jmp, report, trapout and unknown opcodes touch no
	// registers (unknowns trap before reading anything).
	return 0, 0
}
