package live

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(cfg.Build(p))
}

// A full flag redefinition before the next flag reader makes every flag bit
// dead at the intervening address.
func TestFlagsDeadAcrossRedefinition(t *testing.T) {
	li := analyze(t, `
    cmp eax, ecx
    addi edx, 1
    jeq done
    out edx
done:
    halt
`)
	// At address 1 (addi) the incoming flags from cmp are about to be
	// clobbered by addi before jeq reads them: all five bits dead.
	for bit := uint(0); bit < isa.NumFlagBits; bit++ {
		if !li.FlagBitDead(1, bit) {
			t.Errorf("flag bit %d live at addr 1, want dead", bit)
		}
	}
	// At address 2 (jeq) the Z bit is read by the branch itself.
	if li.FlagBitDead(2, 2) { // bit 2 == FlagZ
		t.Error("Z dead at the jeq, want live")
	}
	// Bits jeq does not inspect are dead even at the branch.
	if !li.FlagBitDead(2, 0) { // FlagC
		t.Error("C live at the jeq, want dead")
	}
}

func TestFlagBitsReadByCondition(t *testing.T) {
	li := analyze(t, `
    cmp eax, ecx
    jlt done
    out eax
done:
    halt
`)
	// jlt reads S and O (bits 3 and 4); Z, P, C are dead at the branch.
	for bit, wantDead := range map[uint]bool{0: true, 1: true, 2: true, 3: false, 4: false} {
		if got := li.FlagBitDead(1, bit); got != wantDead {
			t.Errorf("flag bit %d dead = %v, want %v", bit, got, wantDead)
		}
	}
}

func TestRegDeadAcrossRedefinition(t *testing.T) {
	li := analyze(t, `
    movi ecx, 5
    movi ecx, 7
    out ecx
    halt
`)
	if !li.RegDead(1, isa.ECX) {
		t.Error("ecx live at addr 1, want dead (redefined before use)")
	}
	if li.RegDead(2, isa.ECX) {
		t.Error("ecx dead at addr 2, want live (out reads it)")
	}
	if !li.RegDead(0, isa.ECX) {
		t.Error("ecx live at addr 0, want dead (movi writes without reading)")
	}
}

// Liveness must union over both sides of a branch: a register read only on
// the fall-through path is still live at the branch.
func TestRegLiveAcrossJoin(t *testing.T) {
	li := analyze(t, `
    jeq skip
    out ebx
skip:
    movi ebx, 0
    halt
`)
	if li.RegDead(0, isa.EBX) {
		t.Error("ebx dead at the branch, want live via the fall-through path")
	}
	if !li.RegDead(2, isa.EBX) {
		t.Error("ebx live at addr 2, want dead (redefined there)")
	}
}

// Back edges must propagate around the loop to a fixpoint.
func TestLoopFixpoint(t *testing.T) {
	li := analyze(t, `
loop:
    subi eax, 1
    cmpi eax, 0
    jgt loop
    halt
`)
	// eax is read on every loop iteration: live everywhere in the loop,
	// including back at the top via the back edge from jgt.
	for addr := uint32(0); addr < 3; addr++ {
		if li.RegDead(addr, isa.EAX) {
			t.Errorf("eax dead at addr %d, want live around the loop", addr)
		}
	}
}

// Indirect control flow is a liveness barrier: everything is live before it.
func TestIndirectIsConservative(t *testing.T) {
	li := analyze(t, `
    movi eax, 1
    ret
`)
	// At the ret everything is live: the analysis cannot see the callee of
	// the indirect transfer.
	if li.RegDead(1, isa.EAX) {
		t.Error("eax dead at the ret, want conservatively live")
	}
	for bit := uint(0); bit < isa.NumFlagBits; bit++ {
		if li.FlagBitDead(1, bit) {
			t.Errorf("flag bit %d dead at the ret, want conservatively live", bit)
		}
	}
	// Before the movi the kill still applies: eax is overwritten before the
	// transfer, so a flip there is provably benign even with an indirect
	// successor. Flags reach the ret untouched and stay live.
	if !li.RegDead(0, isa.EAX) {
		t.Error("eax live at addr 0, want dead (movi overwrites it)")
	}
	if li.FlagBitDead(0, 0) {
		t.Error("C dead at addr 0, want live through to the ret")
	}
}

// cmov is a conditional write: it must not kill its destination, and it
// reads the flags its condition inspects.
func TestCmovDoesNotKill(t *testing.T) {
	p, err := asm.Assemble("t", `
    cmp eax, ecx
    cmoveq ebx, edx
    out ebx
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	li := Analyze(cfg.Build(p))
	// ebx may survive the cmov unchanged, so it is live before it.
	if li.RegDead(1, isa.EBX) {
		t.Error("ebx dead at the cmov, want live (conditional write)")
	}
	// The cmov's Z read keeps FlagZ live at the cmp's successor.
	if li.FlagBitDead(1, 2) {
		t.Error("Z dead at the cmov, want live")
	}
}

// pushf spills the whole flags register: all bits live before it.
func TestPushFReadsAllFlags(t *testing.T) {
	li := analyze(t, `
    cmp eax, ecx
    pushf
    popf
    halt
`)
	for bit := uint(0); bit < isa.NumFlagBits; bit++ {
		if li.FlagBitDead(1, bit) {
			t.Errorf("flag bit %d dead before pushf, want live", bit)
		}
	}
}

func TestOutOfRangeNeverDead(t *testing.T) {
	li := AnalyzeCode(nil)
	if li.FlagBitDead(0, 0) || li.RegDead(0, isa.EAX) {
		t.Error("out-of-range address reported as provably dead")
	}
	li = analyze(t, "halt\n")
	if li.FlagBitDead(7, 0) || li.RegDead(7, isa.EAX) {
		t.Error("address past the image reported as provably dead")
	}
	if li.FlagBitDead(0, isa.NumFlagBits) {
		t.Error("out-of-range flag bit reported as dead")
	}
}
