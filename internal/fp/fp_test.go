package fp

import (
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestFileNameMatchesLegacySessionNames(t *testing.T) {
	// The session registry's checkpoint-log file names predate this
	// package; FileName must reproduce them byte for byte so existing
	// cache directories stay valid across the refactor.
	fp := "164.gzip|0.05|RCF|CMOVcc|ALLBB|-1"
	legacy := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-':
			return r
		}
		return '_'
	}, fp)
	want := legacy + "_" + hexChecksum(fp) + ".ckpt"
	if got := FileName(fp, ".ckpt"); got != want {
		t.Fatalf("FileName = %q, want %q", got, want)
	}
	if Checksum([]byte(fp)) != crc32.ChecksumIEEE([]byte(fp)) {
		t.Fatal("Checksum is not CRC-32 IEEE")
	}
}

func TestFileNameDisambiguatesSanitizeCollisions(t *testing.T) {
	a, b := FileName("a|b", ".x"), FileName("a_b", ".x")
	if a == b {
		t.Fatalf("colliding sanitized names share a file: %q", a)
	}
}

func TestHashFraming(t *testing.T) {
	// Length framing: the same concatenated bytes split differently must
	// hash differently.
	h1 := NewHash()
	h1.String("ab")
	h1.String("c")
	h2 := NewHash()
	h2.String("a")
	h2.String("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("field framing collision")
	}
}

func TestProgramHashSensitivity(t *testing.T) {
	base := &isa.Program{
		Name:  "p",
		Code:  []isa.Instr{{Op: isa.OpHalt}},
		Entry: 0,
	}
	h := Program(base)
	for name, mut := range map[string]func(*isa.Program){
		"name":  func(p *isa.Program) { p.Name = "q" },
		"entry": func(p *isa.Program) { p.Entry = 1 },
		"data":  func(p *isa.Program) { p.DataWords = 8 },
		"code":  func(p *isa.Program) { p.Code = append(p.Code, isa.Instr{Op: isa.OpHalt}) },
	} {
		m := *base
		m.Code = append([]isa.Instr(nil), base.Code...)
		mut(&m)
		if Program(&m) == h {
			t.Errorf("%s change did not change the program hash", name)
		}
	}
	if Program(base) != h {
		t.Fatal("program hash is not stable")
	}
}
