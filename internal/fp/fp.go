// Package fp holds the fingerprint and hashing helpers shared by every
// content-addressed cache in the tree: the session registry's checkpoint
// logs, the ckpt on-disk envelope and the campaign graph's cell entries.
// Two families live here:
//
//   - Checksum / Sanitize / FileName: the CRC-32 integrity checksum the
//     versioned encodings trail with, and the fingerprint→file-name
//     mapping cache directories use (readable fields sanitized plus a
//     hash of the exact fingerprint, so distinct keys never share a file
//     even when sanitizing collides).
//
//   - Hash / Program: a SHA-256 content-hash builder for cache keys that
//     must change whenever their inputs' bytes change — most importantly
//     Program, which fingerprints a built workload by everything that
//     influences its execution (name, entry point, data segment size and
//     the encoded instruction image).
package fp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"hash/crc32"
	"strings"

	"repro/internal/isa"
)

// Checksum is the integrity checksum of the on-disk encodings: CRC-32
// (IEEE) over the encoded payload, written as the file trailer and
// re-verified before any field is trusted.
func Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// Sanitize maps a fingerprint string to a filename-safe form: letters,
// digits, '.' and '-' pass through; everything else becomes '_'. The
// mapping is lossy, so file names must also embed a Checksum of the exact
// fingerprint (see FileName).
func Sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-':
			return r
		}
		return '_'
	}, s)
}

// FileName maps a cache-key fingerprint to its cache file name: the
// sanitized fingerprint plus a hash of the exact fingerprint and the
// given extension (including its dot).
func FileName(fingerprint, ext string) string {
	return Sanitize(fingerprint) + "_" + hexChecksum(fingerprint) + ext
}

// hexChecksum renders the fingerprint's checksum as fixed-width hex.
func hexChecksum(fingerprint string) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], Checksum([]byte(fingerprint)))
	return hex.EncodeToString(b[:])
}

// Hash accumulates content into a SHA-256 digest. Every field write is
// length-framed (strings) or fixed-width (integers), so distinct field
// sequences can never collide by concatenation.
type Hash struct {
	h hash.Hash
}

// NewHash returns an empty content hash.
func NewHash() *Hash { return &Hash{h: sha256.New()} }

// String folds a length-framed string into the hash.
func (h *Hash) String(s string) {
	h.U64(uint64(len(s)))
	h.h.Write([]byte(s))
}

// Bytes folds a length-framed byte slice into the hash.
func (h *Hash) Bytes(b []byte) {
	h.U64(uint64(len(b)))
	h.h.Write(b)
}

// U64 folds a fixed-width integer into the hash.
func (h *Hash) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.h.Write(b[:])
}

// Sum returns the accumulated digest as lowercase hex.
func (h *Hash) Sum() string { return hex.EncodeToString(h.h.Sum(nil)) }

// Program content-hashes a built workload: the fields that influence its
// execution and therefore any campaign result derived from it. Two
// programs with the same hash produce byte-identical campaigns under the
// same configuration; any change to the generator that alters the emitted
// code changes the hash and invalidates every cached cell keyed on it.
func Program(p *isa.Program) string {
	h := NewHash()
	h.String(p.Name)
	h.U64(uint64(p.Entry))
	h.U64(uint64(p.DataWords))
	if p.Target {
		h.U64(1)
	} else {
		h.U64(0)
	}
	h.Bytes(p.Image())
	return h.Sum()
}
