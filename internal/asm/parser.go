package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses assembly text into a program. The syntax is line based:
//
//	; comment
//	.data 1024        ; data segment size in words
//	.entry main       ; entry label (default: address 0)
//	main:             ; label definition
//	    movi eax, 10
//	loop:
//	    subi eax, 1
//	    jgt loop      ; conditional jump: j + condition mnemonic
//	    store [esp-1], eax
//	    movi ebx, =loop  ; label address as immediate
//	    halt
func Assemble(name, src string) (*isa.Program, error) {
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Possibly "label: instr".
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, fmt.Errorf("%s:%d: bad label %q", name, lineNo+1, label)
			}
			b.Label(label)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := parseStatement(b, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo+1, err)
		}
	}
	return b.Build()
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseStatement(b *Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)
	args := splitArgs(rest)

	switch mnemonic {
	case ".data":
		n, err := wantInt(args, 0, 1)
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf(".data size must be non-negative")
		}
		b.SetDataWords(uint32(n))
		return nil
	case ".entry":
		if len(args) != 1 || !isIdent(args[0]) {
			return fmt.Errorf(".entry wants one label")
		}
		b.SetEntry(args[0])
		return nil
	}

	// Conditional jump/cmov mnemonics: j<cond>, cmov<cond>.
	if strings.HasPrefix(mnemonic, "j") && mnemonic != "jmp" && mnemonic != "jrz" && mnemonic != "jmpr" {
		if c, ok := condByName(mnemonic[1:]); ok {
			lbl, err := wantLabel(args, 0, 1)
			if err != nil {
				return err
			}
			b.Jcc(c, lbl)
			return nil
		}
		return fmt.Errorf("unknown condition in %q", mnemonic)
	}
	if strings.HasPrefix(mnemonic, "cmov") {
		c, ok := condByName(mnemonic[4:])
		if !ok {
			return fmt.Errorf("unknown condition in %q", mnemonic)
		}
		rd, rs, err := wantRegReg(args)
		if err != nil {
			return err
		}
		b.Cmov(c, rd, rs)
		return nil
	}

	switch mnemonic {
	case "nop", "halt", "ret", "pushf", "popf":
		if len(args) != 0 {
			return fmt.Errorf("%s takes no operands", mnemonic)
		}
		switch mnemonic {
		case "nop":
			b.Nop()
		case "halt":
			b.Halt()
		case "ret":
			b.Ret()
		case "pushf":
			b.Emit(isa.Instr{Op: isa.OpPushF})
		case "popf":
			b.Emit(isa.Instr{Op: isa.OpPopF})
		}
	case "movi":
		rd, err := wantReg(args, 0, 2)
		if err != nil {
			return err
		}
		if strings.HasPrefix(args[1], "=") {
			lbl := args[1][1:]
			if !isIdent(lbl) {
				return fmt.Errorf("bad label reference %q", args[1])
			}
			b.MovLabel(rd, lbl)
			return nil
		}
		imm, err := parseInt(args[1])
		if err != nil {
			return err
		}
		b.MovI(rd, imm)
	case "mov":
		rd, rs, err := wantRegReg(args)
		if err != nil {
			return err
		}
		b.Mov(rd, rs)
	case "lea":
		rd, err := wantReg(args, 0, 2)
		if err != nil {
			return err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Lea(rd, base, off)
	case "lea3":
		if len(args) != 2 {
			return fmt.Errorf("lea3 wants rd, [rs1+rs2+imm]")
		}
		rd, ok := isa.RegByName(args[0])
		if !ok {
			return fmt.Errorf("bad register %q", args[0])
		}
		rs1, rs2, off, err := parseMem3(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: isa.OpLea3, RD: rd, RS1: rs1, RS2: rs2, Imm: off})
	case "load":
		rd, err := wantReg(args, 0, 2)
		if err != nil {
			return err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Load(rd, base, off)
	case "store":
		if len(args) != 2 {
			return fmt.Errorf("store wants [base+off], reg")
		}
		base, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		rs, ok := isa.RegByName(args[1])
		if !ok {
			return fmt.Errorf("bad register %q", args[1])
		}
		b.Store(base, off, rs)
	case "push":
		rs, err := wantReg(args, 0, 1)
		if err != nil {
			return err
		}
		b.Push(rs)
	case "pop":
		rd, err := wantReg(args, 0, 1)
		if err != nil {
			return err
		}
		b.Pop(rd)
	case "add", "sub", "and", "or", "xor", "shl", "shr", "mul", "div", "cmp", "test",
		"fadd", "fsub", "fmul", "fdiv":
		rd, rs, err := wantRegReg(args)
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: regRegOp[mnemonic], RD: rd, RS1: rs})
	case "addi", "subi", "andi", "ori", "xori", "shli", "shri", "cmpi":
		rd, err := wantReg(args, 0, 2)
		if err != nil {
			return err
		}
		imm, err := parseInt(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: regImmOp[mnemonic], RD: rd, Imm: imm})
	case "jmp":
		lbl, err := wantLabel(args, 0, 1)
		if err != nil {
			return err
		}
		b.Jmp(lbl)
	case "call":
		lbl, err := wantLabel(args, 0, 1)
		if err != nil {
			return err
		}
		b.Call(lbl)
	case "jrz":
		rs, err := wantReg(args, 0, 2)
		if err != nil {
			return err
		}
		if !isIdent(args[1]) {
			return fmt.Errorf("jrz wants a label, got %q", args[1])
		}
		b.Jrz(rs, args[1])
	case "jmpr":
		rs, err := wantReg(args, 0, 1)
		if err != nil {
			return err
		}
		b.JmpR(rs)
	case "callr":
		rs, err := wantReg(args, 0, 1)
		if err != nil {
			return err
		}
		b.CallR(rs)
	case "out":
		rs, err := wantReg(args, 0, 1)
		if err != nil {
			return err
		}
		b.Out(rs)
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

var regRegOp = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
	"xor": isa.OpXor, "shl": isa.OpShl, "shr": isa.OpShr, "mul": isa.OpMul,
	"div": isa.OpDiv, "cmp": isa.OpCmp, "test": isa.OpTest,
	"fadd": isa.OpFAdd, "fsub": isa.OpFSub, "fmul": isa.OpFMul, "fdiv": isa.OpFDiv,
}

var regImmOp = map[string]isa.Op{
	"addi": isa.OpAddI, "subi": isa.OpSubI, "andi": isa.OpAndI, "ori": isa.OpOrI,
	"xori": isa.OpXorI, "shli": isa.OpShlI, "shri": isa.OpShrI, "cmpi": isa.OpCmpI,
}

func condByName(s string) (isa.Cond, bool) {
	for c := isa.Cond(0); c.Valid(); c++ {
		if c.String() == s {
			return c, true
		}
	}
	// IA32 aliases.
	switch s {
	case "e":
		return isa.CondEQ, true
	case "z":
		return isa.CondEQ, true
	case "nz":
		return isa.CondNE, true
	case "l":
		return isa.CondLT, true
	case "g":
		return isa.CondGT, true
	}
	return 0, false
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInt(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if v < -(1<<31) || v > (1<<31)-1 {
		return 0, fmt.Errorf("integer %q out of 32-bit range", s)
	}
	return int32(v), nil
}

// parseMem parses "[reg]", "[reg+imm]" or "[reg-imm]".
func parseMem(s string) (isa.Reg, int32, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	i := strings.IndexAny(inner, "+-")
	if i < 0 {
		r, ok := isa.RegByName(strings.TrimSpace(inner))
		if !ok {
			return 0, 0, fmt.Errorf("bad register in %q", s)
		}
		return r, 0, nil
	}
	r, ok := isa.RegByName(strings.TrimSpace(inner[:i]))
	if !ok {
		return 0, 0, fmt.Errorf("bad register in %q", s)
	}
	off, err := parseInt(strings.TrimSpace(inner[i:]))
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

// parseMem3 parses "[rs1+rs2]" or "[rs1+rs2+imm]" or "[rs1+rs2-imm]".
func parseMem3(s string) (isa.Reg, isa.Reg, int32, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], "+")
	if len(parts) < 2 {
		return 0, 0, 0, fmt.Errorf("lea3 operand %q wants rs1+rs2[+imm]", s)
	}
	r1, ok := isa.RegByName(strings.TrimSpace(parts[0]))
	if !ok {
		return 0, 0, 0, fmt.Errorf("bad register in %q", s)
	}
	second := strings.TrimSpace(strings.Join(parts[1:], "+"))
	// second may be "reg", "reg+imm" (joined above) or "reg-imm".
	var immStr string
	sep := strings.IndexAny(second, "+-")
	if sep >= 0 {
		immStr = second[sep:]
		second = second[:sep]
	}
	r2, ok := isa.RegByName(strings.TrimSpace(second))
	if !ok {
		return 0, 0, 0, fmt.Errorf("bad register in %q", s)
	}
	var off int32
	if immStr != "" {
		v, err := parseInt(strings.TrimPrefix(immStr, "+"))
		if err != nil {
			return 0, 0, 0, err
		}
		off = v
	}
	return r1, r2, off, nil
}

func wantReg(args []string, i, n int) (isa.Reg, error) {
	if len(args) != n {
		return 0, fmt.Errorf("want %d operands, got %d", n, len(args))
	}
	r, ok := isa.RegByName(args[i])
	if !ok {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	return r, nil
}

func wantRegReg(args []string) (isa.Reg, isa.Reg, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("want 2 register operands, got %d", len(args))
	}
	r1, ok := isa.RegByName(args[0])
	if !ok {
		return 0, 0, fmt.Errorf("bad register %q", args[0])
	}
	r2, ok := isa.RegByName(args[1])
	if !ok {
		return 0, 0, fmt.Errorf("bad register %q", args[1])
	}
	return r1, r2, nil
}

func wantLabel(args []string, i, n int) (string, error) {
	if len(args) != n {
		return "", fmt.Errorf("want %d operands, got %d", n, len(args))
	}
	if !isIdent(args[i]) {
		return "", fmt.Errorf("bad label %q", args[i])
	}
	return args[i], nil
}

func wantInt(args []string, i, n int) (int64, error) {
	if len(args) != n {
		return 0, fmt.Errorf("want %d operands, got %d", n, len(args))
	}
	v, err := strconv.ParseInt(args[i], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", args[i])
	}
	return v, nil
}
