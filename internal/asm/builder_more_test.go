package asm

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// TestBuilderEmittersEndToEnd drives every convenience emitter through the
// machine and checks the computed results, pinning builder/opcode pairing.
func TestBuilderEmittersEndToEnd(t *testing.T) {
	b := NewBuilder("alu")
	b.SetDataWords(32)
	b.MovI(isa.EAX, 6)
	b.MovI(isa.EBX, 3)
	b.Add(isa.EAX, isa.EBX)  // 9
	b.AddI(isa.EAX, 1)       // 10
	b.Sub(isa.EAX, isa.EBX)  // 7
	b.Mul(isa.EAX, isa.EBX)  // 21
	b.Div(isa.EAX, isa.EBX)  // 7
	b.Xor(isa.EAX, isa.EBX)  // 4
	b.XorI(isa.EAX, 1)       // 5
	b.Or(isa.EAX, isa.EBX)   // 7
	b.OrI(isa.EAX, 8)        // 15
	b.And(isa.EAX, isa.EBX)  // 3
	b.AndI(isa.EAX, 2)       // 2
	b.ShlI(isa.EAX, 3)       // 16
	b.ShrI(isa.EAX, 1)       // 8
	b.Test(isa.EAX, isa.EAX) // flags only
	b.Cmp(isa.EAX, isa.EBX)  // flags only
	b.Out(isa.EAX)
	// fp: 2.0 * 2.0 = 4.0
	b.MovI(isa.ECX, 0x40000000)
	b.Mov(isa.EDX, isa.ECX)
	b.FMul(isa.ECX, isa.EDX) // 4.0
	b.FSub(isa.ECX, isa.EDX) // 2.0
	b.FAdd(isa.ECX, isa.EDX) // 4.0
	b.FDiv(isa.ECX, isa.EDX) // 2.0
	b.Out(isa.ECX)
	b.Nop()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New()
	if stop := m.RunProgram(p, 1000); stop.Reason != cpu.StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if m.Output[0] != 8 {
		t.Errorf("int chain = %d, want 8", m.Output[0])
	}
	if uint32(m.Output[1]) != 0x40000000 {
		t.Errorf("fp chain = %#x, want 2.0f", uint32(m.Output[1]))
	}
}

func TestBuilderTargetPrograms(t *testing.T) {
	b := NewBuilder("tgt")
	b.SetTarget()
	b.Emit(isa.Instr{Op: isa.OpMovRI, RD: isa.R12, Imm: 5})
	b.Emit(isa.Instr{Op: isa.OpReport})
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Target {
		t.Error("target flag lost")
	}
}

func TestParserErrorPaths(t *testing.T) {
	bad := []string{
		"add eax",            // want 2 operands
		"add eax, ebx, ecx",  // too many
		"add zork, ebx",      // bad first reg
		"add eax, zork",      // bad second reg
		"jmp 12tooweird!",    // bad label
		"jmp a, b",           // operand count
		".data 1 2",          // operand count
		".data xyz",          // bad integer
		"lea3 eax",           // operand form
		"lea3 eax, [ebx]",    // needs two registers
		"lea3 eax, [zz+ebx]", // bad register
		"load eax, esp",      // not a memory operand
		"load eax, [zz+1]",   // bad base register
		"pushf extra",        // unexpected operand is ignored? must fail
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src+"\nhalt\n"); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssemblePushfPopf(t *testing.T) {
	p, err := Assemble("flags", `
    movi eax, 1
    cmpi eax, 1
    pushf
    cmpi eax, 99
    popf
    jeq ok
    halt
ok:
    out eax
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New()
	if stop := m.RunProgram(p, 100); stop.Reason != cpu.StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if len(m.Output) != 1 {
		t.Errorf("popf did not restore Z for the jeq: output %v", m.Output)
	}
}

func TestCondAliases(t *testing.T) {
	for alias, want := range map[string]isa.Cond{
		"e": isa.CondEQ, "z": isa.CondEQ, "nz": isa.CondNE,
		"l": isa.CondLT, "g": isa.CondGT,
	} {
		src := "j" + alias + " t\nt: halt\n"
		p, err := Assemble("alias", src)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if p.Code[0].Cond() != want {
			t.Errorf("j%s parsed as %v, want %v", alias, p.Code[0].Cond(), want)
		}
	}
}
