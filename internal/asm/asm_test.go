package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(isa.EAX, 3)
	b.Label("loop")
	b.SubI(isa.EAX, 1)
	b.CmpI(isa.EAX, 0)
	b.Jcc(isa.CondGT, "loop")
	b.Out(isa.EAX)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 6 {
		t.Fatalf("len = %d", p.Len())
	}
	// The jcc at address 3 targets address 1: offset = 1 - 3 - 1 = -3.
	if p.Code[3].Imm != -3 {
		t.Errorf("jcc offset = %d, want -3", p.Code[3].Imm)
	}
	if p.Code[3].Target(3) != 1 {
		t.Errorf("jcc target = %d, want 1", p.Code[3].Target(3))
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder("fwd")
	b.Jmp("end") // forward
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target(0) != 2 {
		t.Errorf("forward jmp target = %d, want 2", p.Code[0].Target(0))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("want undefined label error, got %v", err)
	}

	b2 := NewBuilder("dup")
	b2.Label("x")
	b2.Nop()
	b2.Label("x")
	b2.Halt()
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "redefined") {
		t.Errorf("want redefinition error, got %v", err)
	}

	b3 := NewBuilder("noentry")
	b3.Halt()
	b3.SetEntry("main")
	if _, err := b3.Build(); err == nil || !strings.Contains(err.Error(), "entry") {
		t.Errorf("want entry error, got %v", err)
	}
}

func TestBuilderMovLabel(t *testing.T) {
	b := NewBuilder("ml")
	b.MovLabel(isa.ECX, "fn")
	b.CallR(isa.ECX)
	b.Halt()
	b.Label("fn")
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 3 {
		t.Errorf("movi =fn imm = %d, want 3 (absolute)", p.Code[0].Imm)
	}
}

func TestBuilderRejectsGuestInvalidRegs(t *testing.T) {
	b := NewBuilder("regs")
	b.Mov(isa.R12, isa.EAX) // target-only register in a guest binary
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("guest program using r12 should not validate")
	}
}

const sampleSrc = `
; compute 10+9+...+1 and print it
.data 64
.entry main
main:
    movi eax, 0
    movi ecx, 10
loop:
    add eax, ecx
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
helper:          ; never called, exercises labels
    push ebp
    pop ebp
    ret
`

func TestAssembleSample(t *testing.T) {
	p, err := Assemble("sample", sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.DataWords != 64 {
		t.Errorf("data words = %d", p.DataWords)
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d", p.Entry)
	}
	if p.SymbolAt(p.Entry) != "main" {
		t.Errorf("entry symbol = %q", p.SymbolAt(p.Entry))
	}
	// jgt at index 5 back to index 2.
	if p.Code[5].Op != isa.OpJcc || p.Code[5].Cond() != isa.CondGT || p.Code[5].Target(5) != 2 {
		t.Errorf("jgt = %+v", p.Code[5])
	}
}

func TestAssembleAllForms(t *testing.T) {
	src := `
start:
    nop
    movi eax, -5
    mov ebx, eax
    lea ecx, [ebx+4]
    lea3 edx, [eax+ebx-2]
    load esi, [esp]
    store [esp-1], esi
    push eax
    pop edi
    add eax, ebx
    addi eax, 1
    sub eax, ebx
    subi eax, 0x10
    and eax, ebx
    andi eax, 3
    or eax, ebx
    ori eax, 1
    xor eax, ebx
    xori eax, 7
    shl eax, ecx
    shli eax, 2
    shr eax, ecx
    shri eax, 1
    mul eax, ebx
    div eax, ebx
    cmp eax, ebx
    cmpi eax, 9
    test eax, eax
    fadd eax, ebx
    fsub eax, ebx
    fmul eax, ebx
    fdiv eax, ebx
    jmp next
next:
    jne start
    jae start
    jrz ecx, next2
next2:
    call fn
    movi ecx, =fn
    callr ecx
    jmpr edi
fn:
    cmoveq eax, ebx
    out eax
    ret
    halt
`
	p, err := Assemble("forms", src)
	if err != nil {
		t.Fatal(err)
	}
	// Spot checks.
	want := map[int]isa.Op{
		0: isa.OpNop, 1: isa.OpMovRI, 2: isa.OpMovRR, 3: isa.OpLea, 4: isa.OpLea3,
		5: isa.OpLoad, 6: isa.OpStore,
	}
	for idx, op := range want {
		if p.Code[idx].Op != op {
			t.Errorf("instr %d = %v, want op %v", idx, p.Code[idx], op)
		}
	}
	if p.Code[4].RS1 != isa.EAX || p.Code[4].RS2 != isa.EBX || p.Code[4].Imm != -2 {
		t.Errorf("lea3 = %+v", p.Code[4])
	}
	// IA32 alias: jne == jnz parse to CondNE.
	found := false
	for _, in := range p.Code {
		if in.Op == isa.OpCmov && in.CmovCond() == isa.CondEQ {
			found = true
		}
	}
	if !found {
		t.Error("cmoveq not assembled")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus eax, ebx",
		"movi r99, 1",
		"movi eax",
		"jxx somewhere",
		"lea eax, ebx",
		"store eax, ebx",
		".data -5",
		".entry",
		"9label: nop",
		"movi eax, 99999999999999",
		"cmovqq eax, ebx",
		"jrz ecx, 42", // numeric branch targets not supported in text form
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src+"\nhalt\n"); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	p, err := Assemble("sample", sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p)
	if !strings.Contains(text, "main:") || !strings.Contains(text, "jgt loop") {
		t.Errorf("disassembly missing labels:\n%s", text)
	}
	// The disassembly of branch-free instructions must re-assemble to the
	// identical encoding (labels are preserved for branches).
	p2, err := Assemble("sample2", stripComments(text))
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if p2.Len() != p.Len() {
		t.Fatalf("reassembled length %d != %d", p2.Len(), p.Len())
	}
	for i := range p.Code {
		if p.Code[i] != p2.Code[i] {
			t.Errorf("instr %d differs: %v vs %v", i, p.Code[i], p2.Code[i])
		}
	}
}

// stripComments removes the header comment and address columns emitted by
// Disassemble so the text can be re-assembled.
func stripComments(text string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), ";") {
			continue
		}
		// Lines look like "  0x000001  movi eax, 0" or "label:".
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "0x") {
			if i := strings.Index(trimmed, "  "); i >= 0 {
				trimmed = strings.TrimSpace(trimmed[i:])
			}
		}
		out = append(out, trimmed)
	}
	return strings.Join(out, "\n")
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble("inline", "a: b: movi eax, 1\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols[0] != "a" && p.Symbols[0] != "b" {
		t.Errorf("symbols = %v", p.Symbols)
	}
}
