// Package asm provides two front ends for producing guest programs: a
// programmatic Builder with symbolic labels (used by the workload
// generators) and a textual assembler (used by the cfc-asm tool and the
// examples). Both resolve labels to relative branch offsets and produce
// validated isa.Program values.
package asm

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

type fixup struct {
	at    uint32 // instruction index whose Imm needs patching
	label string
	line  int // source line for diagnostics (0 for builder emits)
}

// Builder incrementally constructs a program, resolving label references at
// Build time. The zero value is not usable; call NewBuilder.
type Builder struct {
	name      string
	code      []isa.Instr
	labels    map[string]uint32
	fixups    []fixup
	dataWords uint32
	entry     string
	target    bool
	errs      []error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]uint32), entry: ""}
}

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() uint32 { return uint32(len(b.code)) }

// SetDataWords sets the size of the data segment in words.
func (b *Builder) SetDataWords(n uint32) { b.dataWords = n }

// SetEntry makes the given label the program entry point. By default the
// entry is address 0.
func (b *Builder) SetEntry(label string) { b.entry = label }

// SetTarget marks the program as target-ISA (16 registers, pseudo-ops
// allowed), the output format of static instrumentation.
func (b *Builder) SetTarget() { b.target = true }

// Label defines a label at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("label %q redefined", name))
		return
	}
	b.labels[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instr) { b.code = append(b.code, in) }

// emitRef appends a branch whose Imm will be patched to reach label.
func (b *Builder) emitRef(in isa.Instr, label string) {
	b.fixups = append(b.fixups, fixup{at: b.PC(), label: label})
	b.code = append(b.code, in)
}

// Convenience emitters. Naming follows the assembler mnemonics.

func (b *Builder) Nop()  { b.Emit(isa.Instr{Op: isa.OpNop}) }
func (b *Builder) Halt() { b.Emit(isa.Instr{Op: isa.OpHalt}) }

func (b *Builder) MovI(rd isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpMovRI, RD: rd, Imm: imm})
}
func (b *Builder) Mov(rd, rs isa.Reg) { b.Emit(isa.Instr{Op: isa.OpMovRR, RD: rd, RS1: rs}) }
func (b *Builder) Lea(rd, rs isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.OpLea, RD: rd, RS1: rs, Imm: imm})
}
func (b *Builder) Load(rd, base isa.Reg, off int32) {
	b.Emit(isa.Instr{Op: isa.OpLoad, RD: rd, RS1: base, Imm: off})
}
func (b *Builder) Store(base isa.Reg, off int32, rs isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpStore, RS1: base, RS2: rs, Imm: off})
}
func (b *Builder) Push(rs isa.Reg) { b.Emit(isa.Instr{Op: isa.OpPush, RS1: rs}) }
func (b *Builder) Pop(rd isa.Reg)  { b.Emit(isa.Instr{Op: isa.OpPop, RD: rd}) }

func (b *Builder) Add(rd, rs isa.Reg)       { b.Emit(isa.Instr{Op: isa.OpAdd, RD: rd, RS1: rs}) }
func (b *Builder) AddI(rd isa.Reg, i int32) { b.Emit(isa.Instr{Op: isa.OpAddI, RD: rd, Imm: i}) }
func (b *Builder) Sub(rd, rs isa.Reg)       { b.Emit(isa.Instr{Op: isa.OpSub, RD: rd, RS1: rs}) }
func (b *Builder) SubI(rd isa.Reg, i int32) { b.Emit(isa.Instr{Op: isa.OpSubI, RD: rd, Imm: i}) }
func (b *Builder) And(rd, rs isa.Reg)       { b.Emit(isa.Instr{Op: isa.OpAnd, RD: rd, RS1: rs}) }
func (b *Builder) AndI(rd isa.Reg, i int32) { b.Emit(isa.Instr{Op: isa.OpAndI, RD: rd, Imm: i}) }
func (b *Builder) Or(rd, rs isa.Reg)        { b.Emit(isa.Instr{Op: isa.OpOr, RD: rd, RS1: rs}) }
func (b *Builder) OrI(rd isa.Reg, i int32)  { b.Emit(isa.Instr{Op: isa.OpOrI, RD: rd, Imm: i}) }
func (b *Builder) Xor(rd, rs isa.Reg)       { b.Emit(isa.Instr{Op: isa.OpXor, RD: rd, RS1: rs}) }
func (b *Builder) XorI(rd isa.Reg, i int32) { b.Emit(isa.Instr{Op: isa.OpXorI, RD: rd, Imm: i}) }
func (b *Builder) ShlI(rd isa.Reg, i int32) { b.Emit(isa.Instr{Op: isa.OpShlI, RD: rd, Imm: i}) }
func (b *Builder) ShrI(rd isa.Reg, i int32) { b.Emit(isa.Instr{Op: isa.OpShrI, RD: rd, Imm: i}) }
func (b *Builder) Mul(rd, rs isa.Reg)       { b.Emit(isa.Instr{Op: isa.OpMul, RD: rd, RS1: rs}) }
func (b *Builder) Div(rd, rs isa.Reg)       { b.Emit(isa.Instr{Op: isa.OpDiv, RD: rd, RS1: rs}) }

func (b *Builder) Cmp(r1, r2 isa.Reg)      { b.Emit(isa.Instr{Op: isa.OpCmp, RD: r1, RS1: r2}) }
func (b *Builder) CmpI(r isa.Reg, i int32) { b.Emit(isa.Instr{Op: isa.OpCmpI, RD: r, Imm: i}) }
func (b *Builder) Test(r1, r2 isa.Reg)     { b.Emit(isa.Instr{Op: isa.OpTest, RD: r1, RS1: r2}) }

func (b *Builder) FAdd(rd, rs isa.Reg) { b.Emit(isa.Instr{Op: isa.OpFAdd, RD: rd, RS1: rs}) }
func (b *Builder) FSub(rd, rs isa.Reg) { b.Emit(isa.Instr{Op: isa.OpFSub, RD: rd, RS1: rs}) }
func (b *Builder) FMul(rd, rs isa.Reg) { b.Emit(isa.Instr{Op: isa.OpFMul, RD: rd, RS1: rs}) }
func (b *Builder) FDiv(rd, rs isa.Reg) { b.Emit(isa.Instr{Op: isa.OpFDiv, RD: rd, RS1: rs}) }

func (b *Builder) Jmp(label string) { b.emitRef(isa.Instr{Op: isa.OpJmp}, label) }
func (b *Builder) Jcc(c isa.Cond, label string) {
	b.emitRef(isa.Instr{Op: isa.OpJcc, RD: isa.Reg(c)}, label)
}
func (b *Builder) Jrz(rs isa.Reg, label string) {
	b.emitRef(isa.Instr{Op: isa.OpJrz, RS1: rs}, label)
}
func (b *Builder) Call(label string) { b.emitRef(isa.Instr{Op: isa.OpCall}, label) }
func (b *Builder) Ret()              { b.Emit(isa.Instr{Op: isa.OpRet}) }
func (b *Builder) JmpR(rs isa.Reg)   { b.Emit(isa.Instr{Op: isa.OpJmpR, RS1: rs}) }
func (b *Builder) CallR(rs isa.Reg)  { b.Emit(isa.Instr{Op: isa.OpCallR, RS1: rs}) }

func (b *Builder) Cmov(c isa.Cond, rd, rs isa.Reg) {
	b.Emit(isa.Instr{Op: isa.OpCmov, RD: rd, RS1: rs, RS2: isa.Reg(c)})
}
func (b *Builder) Out(rs isa.Reg) { b.Emit(isa.Instr{Op: isa.OpOut, RS1: rs}) }

// MovLabel loads the address of a label into a register (for indirect
// branches through a register). The Imm is patched with the absolute
// address of the label rather than a relative offset.
func (b *Builder) MovLabel(rd isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{at: b.PC(), label: "=" + label})
	b.Emit(isa.Instr{Op: isa.OpMovRI, RD: rd})
}

// Build resolves all label references and returns a validated program.
func (b *Builder) Build() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, fx := range b.fixups {
		label, absolute := fx.label, false
		if len(label) > 0 && label[0] == '=' {
			label, absolute = label[1:], true
		}
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("%s: undefined label %q", b.name, label)
		}
		if absolute {
			b.code[fx.at].Imm = int32(target)
		} else {
			b.code[fx.at].Imm = isa.OffsetFor(fx.at, target)
		}
	}
	entry := uint32(0)
	if b.entry != "" {
		e, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("%s: undefined entry label %q", b.name, b.entry)
		}
		entry = e
	}
	syms := make(map[uint32]string, len(b.labels))
	// Deterministic tie-break when two labels share an address.
	names := make([]string, 0, len(b.labels))
	for n := range b.labels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, taken := syms[b.labels[n]]; !taken {
			syms[b.labels[n]] = n
		}
	}
	p := &isa.Program{
		Name:      b.name,
		Code:      b.code,
		Entry:     entry,
		DataWords: b.dataWords,
		Symbols:   syms,
		Target:    b.target,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
