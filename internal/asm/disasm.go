package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Disassemble renders a program as annotated assembly text, with labels for
// every symbol and branch targets resolved to labels where possible.
func Disassemble(p *isa.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s  (%d instructions, entry %s, data %d words)\n",
		p.Name, p.Len(), p.SymbolAt(p.Entry), p.DataWords)
	for addr, in := range p.Code {
		a := uint32(addr)
		if sym, ok := p.Symbols[a]; ok {
			fmt.Fprintf(&b, "%s:\n", sym)
		}
		if in.Op.IsDirectBranch() {
			tgt := in.Target(a)
			mn := in.Op.String()
			switch in.Op {
			case isa.OpJcc:
				fmt.Fprintf(&b, "  0x%06x  j%s %s\n", a, in.Cond(), p.SymbolAt(tgt))
			case isa.OpJrz:
				fmt.Fprintf(&b, "  0x%06x  jrz %s, %s\n", a, in.RS1, p.SymbolAt(tgt))
			default:
				fmt.Fprintf(&b, "  0x%06x  %s %s\n", a, mn, p.SymbolAt(tgt))
			}
			continue
		}
		fmt.Fprintf(&b, "  0x%06x  %s\n", a, in)
	}
	return b.String()
}
