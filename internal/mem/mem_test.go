package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadStore(t *testing.T) {
	m := New(16)
	if m.Size() != 16 {
		t.Fatalf("size = %d", m.Size())
	}
	if err := m.Store(3, -42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != -42 {
		t.Errorf("load = %d", v)
	}
}

func TestProtection(t *testing.T) {
	m := New(8)
	if _, err := m.Load(8); err == nil {
		t.Error("load at size should fault")
	}
	if err := m.Store(1<<30, 1); err == nil {
		t.Error("wild store should fault")
	}
	err := m.Store(100, 0)
	var pf *ProtectionFault
	if !asProtectionFault(err, &pf) {
		t.Fatalf("error type = %T", err)
	}
	if !pf.Write || pf.Addr != 100 {
		t.Errorf("fault = %+v", pf)
	}
	if !strings.Contains(pf.Error(), "store") {
		t.Errorf("fault message = %q", pf.Error())
	}
}

func asProtectionFault(err error, out **ProtectionFault) bool {
	pf, ok := err.(*ProtectionFault)
	if ok {
		*out = pf
	}
	return ok
}

func TestResetAndSnapshot(t *testing.T) {
	m := New(4)
	for i := uint32(0); i < 4; i++ {
		if err := m.Store(i, int32(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if snap[2] != 3 {
		t.Errorf("snapshot[2] = %d", snap[2])
	}
	snap[2] = 99 // snapshot must be a copy
	if v, _ := m.Load(2); v != 3 {
		t.Error("snapshot aliases memory")
	}
	m.Reset()
	for i := uint32(0); i < 4; i++ {
		if v, _ := m.Load(i); v != 0 {
			t.Errorf("after reset word %d = %d", i, v)
		}
	}
}

// Property: a store followed by a load at any in-range address returns the
// stored value, and out-of-range accesses always fault.
func TestLoadStoreProperty(t *testing.T) {
	m := New(1024)
	f := func(addr uint32, v int32) bool {
		errS := m.Store(addr, v)
		got, errL := m.Load(addr)
		if addr < 1024 {
			return errS == nil && errL == nil && got == v
		}
		return errS != nil && errL != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
