package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadStore(t *testing.T) {
	m := New(16)
	if m.Size() != 16 {
		t.Fatalf("size = %d", m.Size())
	}
	if err := m.Store(3, -42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != -42 {
		t.Errorf("load = %d", v)
	}
}

func TestProtection(t *testing.T) {
	m := New(8)
	if _, err := m.Load(8); err == nil {
		t.Error("load at size should fault")
	}
	if err := m.Store(1<<30, 1); err == nil {
		t.Error("wild store should fault")
	}
	err := m.Store(100, 0)
	var pf *ProtectionFault
	if !asProtectionFault(err, &pf) {
		t.Fatalf("error type = %T", err)
	}
	if !pf.Write || pf.Addr != 100 {
		t.Errorf("fault = %+v", pf)
	}
	if !strings.Contains(pf.Error(), "store") {
		t.Errorf("fault message = %q", pf.Error())
	}
}

func asProtectionFault(err error, out **ProtectionFault) bool {
	pf, ok := err.(*ProtectionFault)
	if ok {
		*out = pf
	}
	return ok
}

func TestResetAndSnapshot(t *testing.T) {
	m := New(4)
	for i := uint32(0); i < 4; i++ {
		if err := m.Store(i, int32(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if snap[2] != 3 {
		t.Errorf("snapshot[2] = %d", snap[2])
	}
	snap[2] = 99 // snapshot must be a copy
	if v, _ := m.Load(2); v != 3 {
		t.Error("snapshot aliases memory")
	}
	m.Reset()
	for i := uint32(0); i < 4; i++ {
		if v, _ := m.Load(i); v != 0 {
			t.Errorf("after reset word %d = %d", i, v)
		}
	}
}

func capturePages(m *Memory) map[uint32][]int32 {
	got := map[uint32][]int32{}
	m.CaptureDirty(func(page uint32, words []int32) {
		got[page] = append([]int32(nil), words...)
	})
	return got
}

func TestCaptureDirtyDeltas(t *testing.T) {
	m := New(PageWords*2 + 3) // final page is short
	if got := capturePages(m); len(got) != 0 {
		t.Fatalf("fresh memory has dirty pages: %v", got)
	}
	if err := m.Store(1, 11); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(PageWords*2+2, 22); err != nil {
		t.Fatal(err)
	}
	got := capturePages(m)
	if len(got) != 2 {
		t.Fatalf("dirty pages = %v, want pages 0 and 2", got)
	}
	if got[0][1] != 11 {
		t.Errorf("page 0 word 1 = %d", got[0][1])
	}
	if len(got[2]) != 3 || got[2][2] != 22 {
		t.Errorf("short final page = %v", got[2])
	}
	// The capture advanced the generation: only newer writes show up next.
	if err := m.Store(PageWords, 33); err != nil {
		t.Fatal(err)
	}
	got = capturePages(m)
	if len(got) != 1 || got[1][0] != 33 {
		t.Errorf("second capture = %v, want only page 1", got)
	}
	if got = capturePages(m); len(got) != 0 {
		t.Errorf("idle capture = %v, want none", got)
	}
}

func TestResetMarksAllDirty(t *testing.T) {
	m := New(PageWords * 3)
	capturePages(m) // advance the generation past creation
	m.Reset()
	if got := capturePages(m); len(got) != 3 {
		t.Errorf("after Reset %d pages dirty, want all 3", len(got))
	}
}

func TestNewFrom(t *testing.T) {
	src := []int32{5, 6, 7}
	m := NewFrom(src)
	src[0] = 99 // NewFrom must copy
	if v, _ := m.Load(0); v != 5 {
		t.Errorf("word 0 = %d, want 5", v)
	}
	if m.Size() != 3 {
		t.Errorf("size = %d", m.Size())
	}
}

// Property: replaying captured dirty pages onto a shadow image keeps it
// equal to the live memory — the invariant the checkpoint replayer needs.
func TestCaptureDirtyRebuildsImage(t *testing.T) {
	const size = PageWords*4 + 7
	m := New(size)
	img := make([]int32, size)
	rng := uint32(1)
	for round := 0; round < 10; round++ {
		for i := 0; i < 50; i++ {
			rng = rng*1664525 + 1013904223
			addr := rng % size
			if err := m.Store(addr, int32(rng)); err != nil {
				t.Fatal(err)
			}
		}
		m.CaptureDirty(func(page uint32, words []int32) {
			copy(img[int(page)<<PageShift:], words)
		})
		live := m.Snapshot()
		for i := range img {
			if img[i] != live[i] {
				t.Fatalf("round %d: image diverges at word %d: %d != %d", round, i, img[i], live[i])
			}
		}
	}
}

// Property: a store followed by a load at any in-range address returns the
// stored value, and out-of-range accesses always fault.
func TestLoadStoreProperty(t *testing.T) {
	m := New(1024)
	f := func(addr uint32, v int32) bool {
		errS := m.Store(addr, v)
		got, errL := m.Load(addr)
		if addr < 1024 {
			return errS == nil && errL == nil && got == v
		}
		return errS != nil && errL != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
