// Package mem implements the simulated data memory with bounds protection.
// Word granularity matches the ISA: addresses index 32-bit words. Loads or
// stores outside the mapped region raise a protection fault, playing the
// role of the hardware memory-protection mechanisms the paper relies on to
// catch wild accesses.
package mem

import "fmt"

// ProtectionFault describes an out-of-bounds access.
type ProtectionFault struct {
	Addr  uint32
	Write bool
	Size  uint32
}

func (f *ProtectionFault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("memory protection fault: %s at 0x%x (mapped: %d words)", kind, f.Addr, f.Size)
}

// Memory is a flat word-addressed data memory.
type Memory struct {
	words []int32
}

// New returns a memory of n words, zero initialized.
func New(n uint32) *Memory {
	return &Memory{words: make([]int32, n)}
}

// Size returns the number of mapped words.
func (m *Memory) Size() uint32 { return uint32(len(m.words)) }

// Load reads the word at addr.
func (m *Memory) Load(addr uint32) (int32, error) {
	if addr >= uint32(len(m.words)) {
		return 0, &ProtectionFault{Addr: addr, Size: m.Size()}
	}
	return m.words[addr], nil
}

// Store writes the word at addr.
func (m *Memory) Store(addr uint32, v int32) error {
	if addr >= uint32(len(m.words)) {
		return &ProtectionFault{Addr: addr, Write: true, Size: m.Size()}
	}
	m.words[addr] = v
	return nil
}

// Reset zeroes all words, keeping the size.
func (m *Memory) Reset() {
	for i := range m.words {
		m.words[i] = 0
	}
}

// Snapshot returns a copy of the memory contents (for tests and debugging).
func (m *Memory) Snapshot() []int32 {
	out := make([]int32, len(m.words))
	copy(out, m.words)
	return out
}
