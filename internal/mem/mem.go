// Package mem implements the simulated data memory with bounds protection.
// Word granularity matches the ISA: addresses index 32-bit words. Loads or
// stores outside the mapped region raise a protection fault, playing the
// role of the hardware memory-protection mechanisms the paper relies on to
// catch wild accesses.
//
// The memory additionally carries a dirty-page delta layer for the
// checkpoint engine: words are grouped into pages of PageWords, each page
// carries the generation tag of its last write, and CaptureDirty hands out
// exactly the pages written since the previous capture. Recording a
// checkpoint therefore copies only the delta, not the whole image.
package mem

import "fmt"

// PageShift and PageWords define the dirty-tracking granularity: 64 words
// (256 bytes) per page, small enough that loop-local working sets produce
// compact checkpoint deltas, large enough that the per-store tag write
// stays off the critical cache lines.
const (
	PageShift = 6
	PageWords = 1 << PageShift
)

// ProtectionFault describes an out-of-bounds access.
type ProtectionFault struct {
	Addr  uint32
	Write bool
	Size  uint32
}

func (f *ProtectionFault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("memory protection fault: %s at 0x%x (mapped: %d words)", kind, f.Addr, f.Size)
}

// Memory is a flat word-addressed data memory with per-page write
// generations.
type Memory struct {
	words   []int32
	pageGen []uint64 // last-write generation per page
	gen     uint64   // current write generation
}

// pageCount returns the number of tracking pages covering n words.
func pageCount(n int) int { return (n + PageWords - 1) >> PageShift }

// New returns a memory of n words, zero initialized.
func New(n uint32) *Memory {
	return &Memory{
		words:   make([]int32, n),
		pageGen: make([]uint64, pageCount(int(n))),
		gen:     1,
	}
}

// NewFrom returns a memory initialized with a copy of words (the restore
// path of the checkpoint engine).
func NewFrom(words []int32) *Memory {
	m := New(uint32(len(words)))
	copy(m.words, words)
	return m
}

// Size returns the number of mapped words.
func (m *Memory) Size() uint32 { return uint32(len(m.words)) }

// Load reads the word at addr.
func (m *Memory) Load(addr uint32) (int32, error) {
	if addr >= uint32(len(m.words)) {
		return 0, &ProtectionFault{Addr: addr, Size: m.Size()}
	}
	return m.words[addr], nil
}

// Store writes the word at addr.
func (m *Memory) Store(addr uint32, v int32) error {
	if addr >= uint32(len(m.words)) {
		return &ProtectionFault{Addr: addr, Write: true, Size: m.Size()}
	}
	m.words[addr] = v
	m.pageGen[addr>>PageShift] = m.gen
	return nil
}

// Reset zeroes all words, keeping the size. Every page is marked dirty so
// a pending CaptureDirty still sees the zeroing.
func (m *Memory) Reset() {
	clear(m.words)
	for i := range m.pageGen {
		m.pageGen[i] = m.gen
	}
}

// CaptureDirty invokes fn for every page written since the previous
// CaptureDirty (or since creation), in ascending page order, then advances
// the generation so the next capture sees only newer writes. The words
// slice aliases the live memory and is valid only during the call; the
// final page may be shorter than PageWords.
func (m *Memory) CaptureDirty(fn func(page uint32, words []int32)) {
	for p, g := range m.pageGen {
		if g != m.gen {
			continue
		}
		lo := p << PageShift
		hi := lo + PageWords
		if hi > len(m.words) {
			hi = len(m.words)
		}
		fn(uint32(p), m.words[lo:hi])
	}
	m.gen++
}

// Snapshot returns a copy of the memory contents (for tests and debugging).
func (m *Memory) Snapshot() []int32 {
	out := make([]int32, len(m.words))
	copy(out, m.words)
	return out
}
