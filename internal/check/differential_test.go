package check

import (
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/inject"
	"repro/internal/workloads"
)

// Differential fuzzing: generate many random structured programs (random
// workload profiles) and require that every technique, style and policy
// preserves the native behavior exactly — output, termination, and no
// false positives. This is the strongest end-to-end statement of the
// paper's necessary condition.
func TestDifferentialFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzz is slow")
	}
	const variants = 24
	for i := 0; i < variants; i++ {
		prof := randomProfile(int64(1000 + i*17))
		prof.Name = fmt.Sprintf("fuzz-%d", i)
		p, err := prof.Build(0.03)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		m := cpu.New()
		stop := m.RunProgram(p, 200_000_000)
		if stop.Reason != cpu.StopHalt {
			t.Fatalf("%s: native stop %v", prof.Name, stop)
		}
		want := append([]int32(nil), m.Output...)

		style := dbt.UpdateJcc
		if i%2 == 1 {
			style = dbt.UpdateCmov
		}
		pol := dbt.Policies()[i%4]
		for _, tech := range append(DBTTechniques(style), dbt.None{}) {
			d := dbt.New(p, dbt.Options{Technique: tech, Policy: pol, TraceThreshold: 5 + i%40})
			res := d.Run(nil, 200_000_000)
			if res.Stop.Reason != cpu.StopHalt {
				t.Errorf("%s/%s/%s/%s: stop %v", prof.Name, tech.Name(), style, pol, res.Stop)
				continue
			}
			if !equalOut(res.Output, want) {
				t.Errorf("%s/%s/%s/%s: output %v != native %v",
					prof.Name, tech.Name(), style, pol, res.Output, want)
			}
		}

		// Static baselines too (they reject indirect branches, which the
		// generator only emits via ret — always supported).
		for _, kind := range []StaticKind{StaticCFCSS, StaticECCA} {
			ip, err := InstrumentStatic(p, kind)
			if err != nil {
				t.Fatalf("%s/%s: %v", prof.Name, kind, err)
			}
			m2 := cpu.New()
			m2.Reset(ip)
			stop := m2.Run(ip.Code, 200_000_000)
			if stop.Reason != cpu.StopHalt || !equalOut(m2.Output, want) {
				t.Errorf("%s/%s: stop %v output %v want %v", prof.Name, kind, stop, m2.Output, want)
			}
		}
	}
}

// randomProfile draws a structurally diverse profile from a seed.
func randomProfile(seed int64) workloads.Profile {
	r := func(lo, hi int64) int { return int(lo + (seed*2654435761)%(hi-lo+1)) }
	suite := workloads.SuiteInt
	if seed%2 == 0 {
		suite = workloads.SuiteFp
	}
	return workloads.Profile{
		Suite:          suite,
		Seed:           seed,
		Funcs:          1 + r(0, 4),
		OuterIters:     40,
		InnerItersMin:  2 + r(0, 5),
		InnerItersMax:  8 + r(0, 30),
		BlockMin:       1 + r(0, 6),
		BlockMax:       8 + r(0, 60),
		SelfLoopFrac:   float64(r(0, 100)) / 100,
		DiamondFrac:    float64(r(0, 220)) / 100,
		TakenBias:      float64(10+r(0, 80)) / 100,
		FpFrac:         float64(r(0, 60)) / 100,
		MemFrac:        float64(r(0, 30)) / 100,
		MulFrac:        float64(r(0, 15)) / 100,
		CallInLoopFrac: float64(r(0, 40)) / 100,
		ColdWords:      500 + r(0, 3000),
		DataWords:      1024,
	}
}

// TestDifferentialFaultFuzz injects random faults into random programs
// under RCF and asserts the global safety property: no hang ever ends the
// campaign (ALLBB bounds detection), and silent corruption only through
// the two documented residual gaps.
func TestDifferentialFaultFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fault fuzz is slow")
	}
	for i := 0; i < 6; i++ {
		prof := randomProfile(int64(7000 + i*29))
		prof.Name = fmt.Sprintf("ffuzz-%d", i)
		p, err := prof.Build(0.02)
		if err != nil {
			t.Fatal(err)
		}
		want := nativeOut(t, p)
		tech := &RCF{Style: dbt.UpdateCmov}
		d := dbt.New(p, dbt.Options{Technique: tech})
		if r := d.Run(nil, 100_000_000); r.Stop.Reason != cpu.StopHalt {
			t.Fatalf("%s: clean %v", prof.Name, r.Stop)
		}
		for idx := uint64(0); idx < 60; idx += 3 {
			for _, bit := range []uint{0, 1, 3, 7, 13, 25} {
				f := &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultOffsetBit, Bit: bit}
				res := d.Run(f, 100_000_000)
				if !f.Fired {
					continue
				}
				if res.Stop.Reason == cpu.StopOutOfSteps {
					t.Errorf("%s: hang at idx %d bit %d", prof.Name, idx, bit)
				}
				if res.Stop.Reason == cpu.StopHalt && !equalOut(res.Output, want) {
					if !inject.IsResidualGap(d, f.FaultTarget) {
						t.Errorf("%s: unexplained SDC at idx %d bit %d (target %#x)",
							prof.Name, idx, bit, f.FaultTarget)
					}
				}
			}
		}
	}
}
