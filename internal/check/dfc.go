package check

// Data-flow checking — the paper's stated future work ("In the future we
// will add data flow checking into our implementation and measure the
// overall performance impact"), implemented here as a SWIFT-style
// instruction-duplication body transform for the translator.
//
// The target machine has four registers to spare after the control-flow
// instrumentation claims R12-R15, so four guest registers get shadows:
//
//	eax -> r8    edx -> r9    ebx -> r10    esi -> r11
//
// Every body instruction that writes a shadowed register is duplicated
// into shadow space (the shadow copy runs first so the architectural flags
// always come from the original instruction). At synchronization points —
// stores, outputs, and optionally compares — the value about to escape is
// compared against its shadow with the flag-transparent xor3/jrz pair; a
// mismatch reports through the same channel as the control-flow checks.
//
// Faults in the four unshadowed registers (ecx, ebp, edi, esp) are not
// covered, the same partial-protection trade real SWIFT deployments make
// under register pressure.

import (
	"repro/internal/dbt"
	"repro/internal/isa"
)

// DFC is the data-flow checking body transform.
type DFC struct {
	// SyncAtCmps additionally verifies compare operands, catching data
	// errors before they can steer a branch (SWIFT's control-relevant
	// checks). Costlier; stores and outputs are always checked.
	SyncAtCmps bool
}

// shadowOf maps guest registers to their shadows (0 = unshadowed; R8 is
// never a valid shadow value for "none" because guest code cannot name it).
var shadowOf = [isa.NumRegs]isa.Reg{
	isa.EAX: isa.R8,
	isa.EDX: isa.R9,
	isa.EBX: isa.R10,
	isa.ESI: isa.R11,
}

func shadow(r isa.Reg) (isa.Reg, bool) {
	s := shadowOf[r]
	return s, s != 0
}

// Name implements dbt.BodyTransform.
func (t *DFC) Name() string {
	if t.SyncAtCmps {
		return "DFC+cmp"
	}
	return "DFC"
}

// Prologue implements dbt.BodyTransform: shadows start equal to their
// (zeroed) originals.
func (t *DFC) Prologue() []dbt.RegInit {
	var inits []dbt.RegInit
	for r, s := range shadowOf {
		if s != 0 {
			inits = append(inits, dbt.RegInit{Reg: s, Val: 0})
		}
		_ = r
	}
	return inits
}

// emitSync compares r against its shadow (when shadowed) and reports on
// mismatch. xor3 is flag transparent, so guest flags survive the check.
func (t *DFC) emitSync(e *dbt.Emitter, r isa.Reg) {
	s, ok := shadow(r)
	if !ok {
		return
	}
	e.NoteCheck()
	e.Emit(isa.Instr{Op: isa.OpXor3, RD: regSCR, RS1: r, RS2: s})
	skip := e.JrzFwd(regSCR)
	e.Report()
	e.Bind(skip)
}

// srcReg returns the register to use as a shadow-side source: the shadow
// when one exists, the original otherwise (faults in unshadowed registers
// propagate into shadow space identically and stay undetected).
func srcReg(r isa.Reg) isa.Reg {
	if s, ok := shadow(r); ok {
		return s
	}
	return r
}

// TransformBody implements dbt.BodyTransform.
func (t *DFC) TransformBody(e *dbt.Emitter, in isa.Instr) {
	switch in.Op {
	case isa.OpStore:
		// Sync point: both the address base and the stored value are about
		// to escape to (unduplicated) memory.
		t.emitSync(e, in.RS1)
		t.emitSync(e, in.RS2)
		e.Emit(in)
		return

	case isa.OpOut:
		t.emitSync(e, in.RS1)
		e.Emit(in)
		return

	case isa.OpCmp, isa.OpTest:
		if t.SyncAtCmps {
			t.emitSync(e, in.RD)
			t.emitSync(e, in.RS1)
		}
		e.Emit(in)
		return
	case isa.OpCmpI:
		if t.SyncAtCmps {
			t.emitSync(e, in.RD)
		}
		e.Emit(in)
		return

	case isa.OpLoad:
		// Duplicate the load: the shadow re-reads the same memory through
		// the shadowed address base, giving the shadow an independent copy.
		e.Emit(in)
		if s, ok := shadow(in.RD); ok {
			e.Emit(isa.Instr{Op: isa.OpLoad, RD: s, RS1: srcReg(in.RS1), Imm: in.Imm})
		}
		return

	case isa.OpPop:
		// Stack memory is unduplicated; resynchronize the shadow from the
		// popped value.
		e.Emit(in)
		if s, ok := shadow(in.RD); ok {
			e.Emit(isa.Instr{Op: isa.OpMovRR, RD: s, RS1: in.RD})
		}
		return

	case isa.OpPush:
		t.emitSync(e, in.RS1)
		e.Emit(in)
		return

	case isa.OpDiv:
		// Shadowing div would double its prohibitive cost and duplicate
		// its trap; resynchronize instead (documented coverage gap).
		e.Emit(in)
		if s, ok := shadow(in.RD); ok {
			e.Emit(isa.Instr{Op: isa.OpMovRR, RD: s, RS1: in.RD})
		}
		return
	}

	// Arithmetic, moves, shifts, cmov: duplicate into shadow space when
	// the destination is shadowed. The shadow copy runs FIRST so it reads
	// pre-update sources and the architectural flags come from the
	// original instruction.
	if s, ok := shadow(in.RD); ok && writesRD(in.Op) {
		dup := in
		dup.RD = s
		dup.RS1 = srcReg(in.RS1)
		if in.Op == isa.OpLea3 {
			dup.RS2 = srcReg(in.RS2)
		}
		// For OpCmov RS2 holds the condition code: never remapped.
		e.Emit(dup)
	}
	e.Emit(in)
}

// writesRD reports whether the op writes its RD operand with a value the
// shadow can recompute.
func writesRD(op isa.Op) bool {
	switch op {
	case isa.OpMovRI, isa.OpMovRR, isa.OpLea, isa.OpLea3,
		isa.OpAdd, isa.OpAddI, isa.OpSub, isa.OpSubI,
		isa.OpAnd, isa.OpAndI, isa.OpOr, isa.OpOrI,
		isa.OpXor, isa.OpXorI, isa.OpShl, isa.OpShlI, isa.OpShr, isa.OpShrI,
		isa.OpMul, isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv,
		isa.OpCmov:
		return true
	}
	return false
}
