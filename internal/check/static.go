package check

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// StaticKind selects a baseline instrumenter applied offline to whole
// programs. The paper could not host CFCSS and ECCA inside its
// translate-on-demand DBT because both need the full CFG up front to assign
// signatures; we reproduce them as static rewriters so the coverage
// comparison of Section 3 can be run empirically.
type StaticKind int

// Static baseline kinds.
const (
	// StaticCFCSS is Oh/Shirvani/McCluskey control-flow checking by
	// software signatures: block-entry signature update + compare, with the
	// fan-in constraint forcing predecessor signature aliasing.
	StaticCFCSS StaticKind = iota
	// StaticECCA is Alkhalifa et al.'s Enhanced Control-flow Checking
	// using Assertions: a block-entry assertion accepting any legal
	// predecessor id and an end-of-block id assignment. (The original
	// routes the assertion through a div-by-zero trap; this implementation
	// reports through the same OpReport channel as the other techniques,
	// which does not change coverage.)
	StaticECCA
)

// String names the kind.
func (k StaticKind) String() string {
	if k == StaticCFCSS {
		return "CFCSS"
	}
	return "ECCA"
}

// InstrumentStatic rewrites a guest program with the selected baseline
// technique, producing a target-ISA program whose checks report through
// OpReport. Programs containing register-indirect jumps or calls are
// rejected: static rewriting cannot relocate address constants that flow
// into indirect branches (the classic static-instrumentation limitation
// that motivates the paper's DBT approach). Plain call/ret is supported.
func InstrumentStatic(p *isa.Program, kind StaticKind) (*isa.Program, error) {
	for addr, in := range p.Code {
		if in.Op == isa.OpJmpR || in.Op == isa.OpCallR {
			return nil, fmt.Errorf("%s: @0x%x: %s: static instrumentation cannot relocate indirect branch targets",
				p.Name, addr, in.Op)
		}
	}
	g := cfg.Build(p)
	n := g.NumBlocks()
	if n == 0 {
		return nil, fmt.Errorf("%s: empty program", p.Name)
	}

	// Predecessors and call-continuation blocks.
	preds := make([][]int, n)
	continuation := make([]bool, n)
	for _, b := range g.Blocks {
		last := p.Code[b.End-1]
		for _, s := range b.Succs {
			sb := g.BlockStarting(s)
			if last.Op == isa.OpCall && s == b.End {
				// The continuation is reached through the callee's return,
				// not through this static edge; it gets a signature reset
				// instead of an inherited signature (an intra-procedural
				// simplification both original papers also make in spirit:
				// signatures are not carried across call boundaries).
				continuation[sb.ID] = true
				continue
			}
			preds[sb.ID] = append(preds[sb.ID], b.ID)
		}
	}

	entryBlock := g.BlockAt(p.Entry)
	bl := func(start uint32) string { return fmt.Sprintf("b_%x", start) }

	bb := asm.NewBuilder(fmt.Sprintf("%s+%s", p.Name, kind))
	bb.SetTarget()
	bb.SetDataWords(p.DataWords)
	bb.SetEntry("prologue")
	okCount := 0
	okLabel := func() string { okCount++; return fmt.Sprintf("ok_%d", okCount) }

	switch kind {
	case StaticCFCSS:
		sigs, d := cfcssAssignment(g, preds)
		// Prologue: G primed so the entry block's own update lands on its
		// signature (loop-backs to the entry then work unchanged).
		bb.Label("prologue")
		bb.MovI(regPC, sigs[entryBlock.ID]-d[entryBlock.ID])
		bb.Jmp(bl(entryBlock.Start))
		for _, b := range g.Blocks {
			bb.Label(bl(b.Start))
			if continuation[b.ID] {
				bb.MovI(regPC, sigs[b.ID])
			} else {
				bb.Lea(regPC, regPC, d[b.ID])
				ok := okLabel()
				bb.Lea(regSCR, regPC, -sigs[b.ID])
				bb.Jrz(regSCR, ok)
				bb.Emit(isa.Instr{Op: isa.OpReport})
				bb.Label(ok)
			}
			copyBlock(bb, p, g, b, bl, nil)
		}

	case StaticECCA:
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i) + 1
		}
		initID := int32(n) + 1
		bb.Label("prologue")
		bb.MovI(regPC, initID)
		bb.Jmp(bl(entryBlock.Start))
		for _, b := range g.Blocks {
			bb.Label(bl(b.Start))
			if continuation[b.ID] {
				bb.MovI(regPC, ids[b.ID])
			} else {
				ok := okLabel()
				legal := preds[b.ID]
				var accepts []int32
				for _, pb := range legal {
					accepts = append(accepts, ids[pb])
				}
				if b == entryBlock {
					accepts = append(accepts, initID)
				}
				for _, v := range accepts {
					bb.Lea(regSCR, regPC, -v)
					bb.Jrz(regSCR, ok)
				}
				bb.Emit(isa.Instr{Op: isa.OpReport})
				bb.Label(ok)
				bb.MovI(regPC, ids[b.ID])
			}
			copyBlock(bb, p, g, b, bl, func() {
				// End-of-block id assignment (the NEXT product in the
				// concrete technique): executed even when an error lands
				// mid-block, which is exactly ECCA's category C/E hole.
				bb.MovI(regPC, ids[b.ID])
			})
		}
	default:
		return nil, fmt.Errorf("unknown static kind %d", kind)
	}

	out, err := bb.Build()
	if err != nil {
		return nil, fmt.Errorf("%s: instrumentation failed: %v", p.Name, err)
	}
	return out, nil
}

// cfcssAssignment computes the CFCSS signature assignment over the CFG:
// blocks sharing a successor are unified into one signature class (the
// common-predecessor constraint), then d(B) = sig(B) - sig(basePred(B)) in
// the additive algebra.
func cfcssAssignment(g *cfg.Graph, preds [][]int) (sigs, d []int32) {
	n := g.NumBlocks()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, ps := range preds {
		for i := 1; i < len(ps); i++ {
			parent[find(ps[0])] = find(ps[i])
		}
	}
	sigs = make([]int32, n)
	class := map[int]int32{}
	for b := 0; b < n; b++ {
		root := find(b)
		if _, ok := class[root]; !ok {
			class[root] = int32(len(class)) + 1
		}
		sigs[b] = class[root]
	}
	d = make([]int32, n)
	for b := 0; b < n; b++ {
		if len(preds[b]) > 0 {
			d[b] = sigs[b] - sigs[preds[b][0]]
		}
	}
	return sigs, d
}

// copyBlock re-emits a block's body and its terminator with branch targets
// remapped to block labels. exitHook, when non-nil, runs just before the
// terminator (end-of-block instrumentation).
func copyBlock(bb *asm.Builder, p *isa.Program, g *cfg.Graph, b *cfg.Block, bl func(uint32) string, exitHook func()) {
	last := p.Code[b.End-1]
	bodyEnd := b.End
	if last.Op.IsTerminator() {
		bodyEnd--
	}
	for a := b.Start; a < bodyEnd; a++ {
		bb.Emit(p.Code[a])
	}
	if exitHook != nil {
		exitHook()
	}
	if !last.Op.IsTerminator() {
		return // falls through into the next emitted block
	}
	termAddr := b.End - 1
	switch last.Op {
	case isa.OpJmp:
		bb.Jmp(bl(last.Target(termAddr)))
	case isa.OpJcc:
		bb.Jcc(last.Cond(), bl(last.Target(termAddr)))
	case isa.OpJrz:
		bb.Jrz(last.RS1, bl(last.Target(termAddr)))
	case isa.OpCall:
		bb.Call(bl(last.Target(termAddr)))
	default:
		// ret, halt: position independent.
		bb.Emit(last)
	}
}
