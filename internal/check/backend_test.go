package check

import (
	"fmt"
	"testing"

	"repro/internal/comp"
	"repro/internal/cpu"
	"repro/internal/dbt"
)

// backendOutcome is everything the execution backends must agree on for
// one run: the full architectural and counter state at the stop, the stop
// itself, and the output stream.
type backendOutcome struct {
	state cpu.State
	stop  cpu.Stop
	out   []int32
}

// TestBackendDifferential is the backend property test: random structured
// programs run under the step interpreter, the predecoded plan and the
// block-compiled backend must produce identical cpu.State (registers,
// flags, IP, step/cycle/branch/check counters), stop and output bytes —
// for every technique × policy. The step interpreter is the ground truth;
// the plan and compiled backends must be pure performance transforms.
func TestBackendDifferential(t *testing.T) {
	backends := []comp.Backend{comp.BackendStep, comp.BackendPlan, comp.BackendCompile}
	const maxSteps = 200_000_000
	for i := 0; i < 8; i++ {
		prof := randomProfile(int64(3000 + i*23))
		prof.Name = fmt.Sprintf("bfuzz-%d", i)
		p, err := prof.Build(0.02)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		style := dbt.UpdateJcc
		if i%2 == 1 {
			style = dbt.UpdateCmov
		}
		pol := dbt.Policies()[i%4]
		for _, tech := range append(DBTTechniques(style), dbt.None{}) {
			var want backendOutcome
			for bi, b := range backends {
				d := dbt.New(p, dbt.Options{
					Technique: tech, Policy: pol, Backend: b,
					TraceThreshold: 5 + i%40,
				})
				m, res := d.Start(nil)
				if res != nil {
					t.Fatalf("%s/%s/%s/%s: start: %v", prof.Name, tech.Name(), pol, b, res.Stop)
				}
				stop := d.Advance(m, maxSteps)
				got := backendOutcome{state: m.CaptureState(), stop: stop, out: m.Output}
				if got.stop.Reason != cpu.StopHalt {
					t.Fatalf("%s/%s/%s/%s: stop %v", prof.Name, tech.Name(), pol, b, got.stop)
				}
				if bi == 0 {
					want = got
					continue
				}
				if got.state != want.state || got.stop != want.stop {
					t.Errorf("%s/%s/%s/%s: state diverged from step backend\n got: %+v %v\nwant: %+v %v",
						prof.Name, tech.Name(), pol, b, got.state, got.stop, want.state, want.stop)
				}
				if !equalOut(got.out, want.out) {
					t.Errorf("%s/%s/%s/%s: output diverged from step backend",
						prof.Name, tech.Name(), pol, b)
				}
			}
		}
	}
}

// TestBackendDifferentialUnderFaults extends the property to faulty runs:
// the same planted fault must fire at the same dynamic site and classify
// identically — same stop, same step/cycle counters, same output — on
// every backend. One warm translator per backend runs the same fault
// sequence, so chain-patching state evolves in lockstep too.
func TestBackendDifferentialUnderFaults(t *testing.T) {
	backends := []comp.Backend{comp.BackendStep, comp.BackendPlan, comp.BackendCompile}
	const maxSteps = 100_000_000
	for i := 0; i < 3; i++ {
		prof := randomProfile(int64(5000 + i*31))
		prof.Name = fmt.Sprintf("bffuzz-%d", i)
		p, err := prof.Build(0.02)
		if err != nil {
			t.Fatal(err)
		}
		tech := func() dbt.Technique { return &RCF{Style: dbt.UpdateCmov} }
		ds := make([]*dbt.DBT, len(backends))
		for bi, b := range backends {
			ds[bi] = dbt.New(p, dbt.Options{Technique: tech(), Backend: b})
			if r := ds[bi].Run(nil, maxSteps); r.Stop.Reason != cpu.StopHalt {
				t.Fatalf("%s/%v: clean %v", prof.Name, b, r.Stop)
			}
		}
		for idx := uint64(0); idx < 40; idx += 5 {
			for _, bit := range []uint{0, 2, 9, 20} {
				var want *dbt.Result
				var wantFired bool
				for bi, b := range backends {
					f := &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultOffsetBit, Bit: bit}
					got := ds[bi].Run(f, maxSteps)
					if bi == 0 {
						want, wantFired = got, f.Fired
						continue
					}
					if f.Fired != wantFired {
						t.Fatalf("%s/%v: fault idx=%d bit=%d fired=%v, step backend fired=%v",
							prof.Name, b, idx, bit, f.Fired, wantFired)
					}
					if got.Stop != want.Stop || got.Steps != want.Steps ||
						got.Cycles != want.Cycles || !equalOut(got.Output, want.Output) {
						t.Errorf("%s/%v: fault idx=%d bit=%d diverged\n got: %v steps=%d cycles=%d\nwant: %v steps=%d cycles=%d",
							prof.Name, b, idx, bit,
							got.Stop, got.Steps, got.Cycles,
							want.Stop, want.Steps, want.Cycles)
					}
				}
			}
		}
	}
}
