package check

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/inject"
	"repro/internal/isa"
)

// TestDFCTransparency: the data-flow transform must preserve behavior
// exactly, alone and stacked with every control-flow technique.
func TestDFCTransparency(t *testing.T) {
	for name, src := range transparencyPrograms {
		p := mustAssemble(t, src)
		want := nativeOut(t, p)
		for _, body := range []dbt.BodyTransform{&DFC{}, &DFC{SyncAtCmps: true}} {
			for _, tech := range []dbt.Technique{dbt.None{}, &RCF{Style: dbt.UpdateCmov}, &EdgCF{Style: dbt.UpdateJcc}, &ECF{Style: dbt.UpdateCmov}} {
				d := dbt.New(p, dbt.Options{Technique: tech, Body: body})
				res := d.Run(nil, 100_000_000)
				if res.Stop.Reason != cpu.StopHalt {
					t.Errorf("%s/%s/%s: stop %v", name, tech.Name(), body.Name(), res.Stop)
					continue
				}
				if !equalOut(res.Output, want) {
					t.Errorf("%s/%s/%s: output %v, want %v", name, tech.Name(), body.Name(), res.Output, want)
				}
			}
		}
	}
}

// TestDFCDetectsRegisterFaults: flip a bit in a shadowed register feeding
// the output; without DFC the run silently corrupts, with DFC it reports.
func TestDFCDetectsRegisterFaults(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["sum"])
	want := nativeOut(t, p)

	outcomes := func(body dbt.BodyTransform) (detected, sdc int) {
		d := dbt.New(p, dbt.Options{Technique: &RCF{Style: dbt.UpdateCmov}, Body: body})
		clean := d.Run(nil, 1_000_000)
		if clean.Stop.Reason != cpu.StopHalt {
			t.Fatalf("clean: %v", clean.Stop)
		}
		for step := uint64(0); step < clean.Steps; step += 2 {
			// eax is the accumulator: bit 7 flips are value-changing.
			f := &cpu.Fault{Kind: cpu.FaultRegBit, StepIndex: step, Reg: isa.EAX, Bit: 7}
			res := d.Run(f, 1_000_000)
			if !f.Fired {
				continue
			}
			switch {
			case res.Stop.Reason == cpu.StopReport:
				detected++
			case res.Stop.Reason == cpu.StopHalt && !equalOut(res.Output, want):
				sdc++
			}
		}
		return detected, sdc
	}

	detNone, sdcNone := outcomes(nil)
	detDFC, sdcDFC := outcomes(&DFC{})
	if detNone != 0 {
		t.Errorf("control-flow checking alone detected %d register faults; expected 0", detNone)
	}
	if sdcNone == 0 {
		t.Fatal("no effective register faults; test is vacuous")
	}
	if detDFC == 0 {
		t.Errorf("DFC detected nothing (none: %d SDCs)", sdcNone)
	}
	if sdcDFC >= sdcNone {
		t.Errorf("DFC did not reduce SDCs: %d vs %d without", sdcDFC, sdcNone)
	}
}

// TestDFCUnshadowedRegsEscape documents the partial-protection trade:
// faults in an unshadowed register (edi here) escape as silent corruption
// when they strike outside the duplication window. (A strike *between* the
// shadow copy and the original of one instruction still gets caught — the
// two copies consume different values — which is the time-redundancy bonus
// real SWIFT gets too.)
func TestDFCUnshadowedRegsEscape(t *testing.T) {
	src := `
main:
    movi edi, 5
    movi eax, 0
loop:
    add eax, edi
    subi edi, 1
    cmpi edi, 0
    jgt loop
    out eax
    halt
`
	p := mustAssemble(t, src)
	want := nativeOut(t, p)
	d := dbt.New(p, dbt.Options{Body: &DFC{}})
	clean := d.Run(nil, 1_000_000)
	sdc, detected := 0, 0
	for step := uint64(0); step < clean.Steps; step++ {
		f := &cpu.Fault{Kind: cpu.FaultRegBit, StepIndex: step, Reg: isa.EDI, Bit: 1}
		res := d.Run(f, 1_000_000)
		if !f.Fired {
			continue
		}
		switch {
		case res.Stop.Reason == cpu.StopHalt && !equalOut(res.Output, want):
			sdc++
		case res.Stop.Reason == cpu.StopReport:
			detected++
		}
	}
	if sdc == 0 {
		t.Errorf("every edi fault was caught (%d detections); unshadowed registers should leave escapes", detected)
	}
}

// TestDFCOverhead: duplication costs real cycles; stacking RCF+DFC costs
// more than either alone (the paper's future-work measurement).
func TestDFCOverhead(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["nested-loops"])
	cycles := func(tech dbt.Technique, body dbt.BodyTransform) uint64 {
		d := dbt.New(p, dbt.Options{Technique: tech, Body: body})
		res := d.Run(nil, 100_000_000)
		if res.Stop.Reason != cpu.StopHalt {
			t.Fatalf("stop %v", res.Stop)
		}
		return res.Cycles
	}
	base := cycles(dbt.None{}, nil)
	dfc := cycles(dbt.None{}, &DFC{})
	dfcCmp := cycles(dbt.None{}, &DFC{SyncAtCmps: true})
	rcf := cycles(&RCF{Style: dbt.UpdateJcc}, nil)
	both := cycles(&RCF{Style: dbt.UpdateJcc}, &DFC{})
	if !(dfc > base) {
		t.Errorf("DFC %d !> base %d", dfc, base)
	}
	if !(dfcCmp > dfc) {
		t.Errorf("DFC+cmp %d !> DFC %d", dfcCmp, dfc)
	}
	if !(both > rcf && both > dfc) {
		t.Errorf("RCF+DFC %d should exceed RCF %d and DFC %d", both, rcf, dfc)
	}
}

// TestDFCRegFaultCampaign: the randomized register-fault campaign through
// the inject package, comparing protection levels.
func TestDFCRegFaultCampaign(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["calls"])
	run := func(body dbt.BodyTransform) *inject.Report {
		tech, _ := New("RCF", dbt.UpdateCmov)
		rep, err := inject.Campaign(p, inject.Config{
			Technique: tech, Body: body, RegFaults: true, Samples: 300, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	without := run(nil)
	with := run(&DFC{SyncAtCmps: true})
	if with.Totals.Coverage() <= without.Totals.Coverage() {
		t.Errorf("DFC coverage %.3f <= bare %.3f", with.Totals.Coverage(), without.Totals.Coverage())
	}
	if with.Totals.Count[inject.OutSDC] >= without.Totals.Count[inject.OutSDC] {
		t.Errorf("DFC SDCs %d >= bare %d", with.Totals.Count[inject.OutSDC], without.Totals.Count[inject.OutSDC])
	}
}
