package check

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/inject"
	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func nativeOut(t *testing.T, p *isa.Program) []int32 {
	t.Helper()
	m := cpu.New()
	if stop := m.RunProgram(p, 100_000_000); stop.Reason != cpu.StopHalt {
		t.Fatalf("native stop = %v", stop)
	}
	return append([]int32(nil), m.Output...)
}

var transparencyPrograms = map[string]string{
	"sum": `
main:
    movi eax, 0
    movi ecx, 10
loop:
    add eax, ecx
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
`,
	"calls": `
.data 32
main:
    movi eax, 2
    call f
    call f
    call g
    out eax
    halt
f:
    push ebx
    movi ebx, 3
    mul eax, ebx
    pop ebx
    ret
g:
    addi eax, 7
    ret
`,
	"diamond": `
main:
    movi eax, 4
    movi edi, 0
next:
    cmpi eax, 2
    jlt small
    addi edi, 100
    jmp join
small:
    addi edi, 1
join:
    subi eax, 1
    cmpi eax, 0
    jgt next
    out edi
    halt
`,
	"indirect": `
main:
    movi ecx, =fa
    callr ecx
    movi ecx, =fb
    callr ecx
    out eax
    halt
fa:
    addi eax, 5
    ret
fb:
    mul eax, eax
    ret
`,
	"flags-live-across-blocks": `
main:
    movi eax, 1
    cmpi eax, 2
    jmp next        ; flags stay live across this block boundary
next:
    jlt less
    movi ebx, 0
    jmp done
less:
    movi ebx, 77
done:
    out ebx
    halt
`,
	"nested-loops": `
main:
    movi eax, 0
    movi ecx, 200
outer:
    movi edx, 50
inner:
    addi eax, 1
    subi edx, 1
    cmpi edx, 0
    jgt inner
    subi ecx, 1
    cmpi ecx, 0
    jgt outer
    out eax
    halt
`,
}

// TestTransparency: every technique, update style and policy must preserve
// program behavior exactly — same output, no false error reports (the
// paper's necessary condition, end to end).
func TestTransparency(t *testing.T) {
	for name, src := range transparencyPrograms {
		p := mustAssemble(t, src)
		want := nativeOut(t, p)
		for _, style := range []dbt.UpdateStyle{dbt.UpdateJcc, dbt.UpdateCmov} {
			for _, tech := range DBTTechniques(style) {
				for _, pol := range dbt.Policies() {
					d := dbt.New(p, dbt.Options{Technique: tech, Policy: pol})
					res := d.Run(nil, 100_000_000)
					if res.Stop.Reason != cpu.StopHalt {
						t.Errorf("%s/%s/%s/%s: stop = %v (false positive?)",
							name, tech.Name(), style, pol, res.Stop)
						continue
					}
					if !equalOut(res.Output, want) {
						t.Errorf("%s/%s/%s/%s: output %v, want %v",
							name, tech.Name(), style, pol, res.Output, want)
					}
				}
			}
		}
	}
}

func equalOut(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTransparencyWithTraces: instrumentation must stay correct inside hot
// traces (merged blocks, seamless fall-throughs).
func TestTransparencyWithTraces(t *testing.T) {
	src := `
main:
    movi eax, 0
    movi ecx, 300
loop:
    addi eax, 2
    jmp mid
mid:
    subi eax, 1
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
`
	p := mustAssemble(t, src)
	want := nativeOut(t, p)
	for _, style := range []dbt.UpdateStyle{dbt.UpdateJcc, dbt.UpdateCmov} {
		for _, tech := range DBTTechniques(style) {
			d := dbt.New(p, dbt.Options{Technique: tech, TraceThreshold: 10})
			res := d.Run(nil, 100_000_000)
			if res.Stop.Reason != cpu.StopHalt || !equalOut(res.Output, want) {
				t.Errorf("%s/%s: stop=%v output=%v want=%v", tech.Name(), style, res.Stop, res.Output, want)
			}
			if res.Stats.TracesFormed == 0 {
				t.Errorf("%s/%s: no traces formed", tech.Name(), style)
			}
		}
	}
}

// TestOverheadOrdering reproduces the qualitative cost relations of
// Figures 12 and 14: every technique slows the program down relative to
// plain translation; RCF costs more than EdgCF; CMOVcc costs more than Jcc.
func TestOverheadOrdering(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["nested-loops"])
	cycles := func(tech dbt.Technique) uint64 {
		d := dbt.New(p, dbt.Options{Technique: tech})
		return d.Run(nil, 100_000_000).Cycles
	}
	base := cycles(dbt.None{})
	rcfJ := cycles(&RCF{Style: dbt.UpdateJcc})
	edgJ := cycles(&EdgCF{Style: dbt.UpdateJcc})
	ecfJ := cycles(&ECF{Style: dbt.UpdateJcc})
	rcfC := cycles(&RCF{Style: dbt.UpdateCmov})
	edgC := cycles(&EdgCF{Style: dbt.UpdateCmov})
	ecfC := cycles(&ECF{Style: dbt.UpdateCmov})

	for name, c := range map[string]uint64{"rcf": rcfJ, "edgcf": edgJ, "ecf": ecfJ} {
		if c <= base {
			t.Errorf("%s cycles %d <= baseline %d", name, c, base)
		}
	}
	if rcfJ <= edgJ {
		t.Errorf("RCF (%d) must cost more than EdgCF (%d)", rcfJ, edgJ)
	}
	if rcfC <= rcfJ || edgC <= edgJ || ecfC <= ecfJ {
		t.Errorf("CMOVcc must cost more than Jcc: rcf %d/%d edg %d/%d ecf %d/%d",
			rcfC, rcfJ, edgC, edgJ, ecfC, ecfJ)
	}
}

// TestPolicyOverheadOrdering reproduces Figure 15's relation: less frequent
// checking runs faster.
func TestPolicyOverheadOrdering(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["nested-loops"])
	cycles := func(pol dbt.Policy) uint64 {
		d := dbt.New(p, dbt.Options{Technique: &RCF{Style: dbt.UpdateJcc}, Policy: pol})
		return d.Run(nil, 100_000_000).Cycles
	}
	all, retbe, ret, end := cycles(dbt.PolicyAllBB), cycles(dbt.PolicyRetBE), cycles(dbt.PolicyRet), cycles(dbt.PolicyEnd)
	if !(all > retbe && retbe > ret && ret >= end) {
		t.Errorf("policy ordering violated: ALLBB=%d RET-BE=%d RET=%d END=%d", all, retbe, ret, end)
	}
}

// mistakenBranchProgram distinguishes its two paths by output: the correct
// run prints 222.
const mistakenBranchProgram = `
main:
    movi eax, 5
    cmpi eax, 5
    jeq good
    movi ebx, 111
    out ebx
    halt
good:
    movi ebx, 222
    out ebx
    halt
`

// outcome classifies a faulty run against the clean output.
type outcome int

const (
	outDetected outcome = iota
	outBenign           // completed with correct output
	outSDC              // completed with wrong output: silent data corruption
	outHung
)

func runWithFault(t *testing.T, p *isa.Program, tech dbt.Technique, pol dbt.Policy, f *cpu.Fault, want []int32) outcome {
	t.Helper()
	d := dbt.New(p, dbt.Options{Technique: tech, Policy: pol})
	res := d.Run(f, 5_000_000)
	switch {
	case res.Stop.Reason == cpu.StopReport, res.Stop.Reason.IsHardwareTrap():
		return outDetected
	case res.Stop.Reason == cpu.StopHalt:
		if equalOut(res.Output, want) {
			return outBenign
		}
		return outSDC
	default:
		return outHung
	}
}

// TestMistakenBranchCmovDetected: with the CMOVcc update style, a flag
// upset at any branch can never cause silent data corruption — the
// duplicated condition evaluation (the cmov committed the signature with
// clean flags) disagrees with the faulted branch. This is the category A
// coverage the paper claims for EdgCF/RCF/ECF.
func TestMistakenBranchCmovDetected(t *testing.T) {
	p := mustAssemble(t, mistakenBranchProgram)
	want := nativeOut(t, p)
	for _, tech := range DBTTechniques(dbt.UpdateCmov) {
		sdc := sweepFlagFaults(t, p, tech, want)
		if sdc != 0 {
			t.Errorf("%s/CMOVcc: %d silent corruptions from flag faults, want 0", tech.Name(), sdc)
		}
	}
}

// TestMistakenBranchJccEscapes: with the Jcc update style the inserted
// update branch and the original branch read the same (faulted) flags, so
// a category A error escapes — the configuration the paper marks unsafe.
func TestMistakenBranchJccEscapes(t *testing.T) {
	p := mustAssemble(t, mistakenBranchProgram)
	want := nativeOut(t, p)
	tech := &EdgCF{Style: dbt.UpdateJcc}
	if sdc := sweepFlagFaults(t, p, tech, want); sdc == 0 {
		t.Error("EdgCF/Jcc: expected at least one silent corruption from flag faults (unsafe configuration)")
	}
}

// sweepFlagFaults plants a Z-flag flip at every dynamic branch index and
// returns how many runs ended in silent data corruption.
func sweepFlagFaults(t *testing.T, p *isa.Program, tech dbt.Technique, want []int32) int {
	t.Helper()
	sdc := 0
	for idx := uint64(0); idx < 64; idx++ {
		f := &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultFlagBit, Bit: 2 /* FlagZ */}
		if runWithFault(t, p, tech, dbt.PolicyAllBB, f, want) == outSDC {
			sdc++
		}
		if !f.Fired {
			break // past the last executed branch
		}
	}
	return sdc
}

// TestOffsetFaultSweepRCF: RCF with ALLBB must detect every offset upset
// that matters — sweep all (branch, bit) pairs and require zero silent
// corruptions and zero hangs, modulo the one gap no signature scheme
// closes (the paper's Assumption 2): landing at the very end of a block,
// past its final check, where no CHECK_SIG can ever run.
func TestOffsetFaultSweepRCF(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["diamond"])
	want := nativeOut(t, p)
	tech := &RCF{Style: dbt.UpdateJcc}
	d := dbt.New(p, dbt.Options{Technique: tech, Policy: dbt.PolicyAllBB})
	d.Run(nil, 5_000_000)
	hung := 0
	for idx := uint64(0); idx < 200; idx++ {
		fired := false
		for bit := uint(0); bit < 12; bit++ {
			f := &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultOffsetBit, Bit: bit}
			switch runWithFault(t, p, tech, dbt.PolicyAllBB, f, want) {
			case outSDC:
				if !inject.IsResidualGap(d, f.FaultTarget) {
					t.Errorf("RCF/ALLBB: unexplained SDC at branch %d bit %d (target %#x)",
						idx, bit, f.FaultTarget)
				}
			case outHung:
				hung++
			}
			fired = f.Fired
		}
		if !fired {
			break
		}
	}
	if hung != 0 {
		t.Errorf("RCF/ALLBB: %d hangs from offset faults, want 0", hung)
	}
}

// TestEndPolicyCanMissLoopingErrors documents the paper's caveat: the END
// policy cannot report an error that throws the program into an infinite
// loop. We only require that the run does not silently corrupt output.
func TestEndPolicyStillChecksAtExit(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["diamond"])
	want := nativeOut(t, p)
	tech := &EdgCF{Style: dbt.UpdateCmov}
	sdc := 0
	for idx := uint64(0); idx < 100; idx++ {
		f := &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultOffsetBit, Bit: 1}
		if runWithFault(t, p, tech, dbt.PolicyEnd, f, want) == outSDC {
			sdc++
		}
		if !f.Fired {
			break
		}
	}
	if sdc != 0 {
		t.Errorf("END policy: %d silent corruptions; the final check must catch surviving errors", sdc)
	}
}
