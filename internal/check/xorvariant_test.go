package check

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dbt"
)

// TestXorVariantBreaksTransparency is the Section 5.1 argument run as
// code: the naive xor-update EdgCF clobbers the flags between the guest's
// compare and its branch, changing program behavior.
func TestXorVariantBreaksTransparency(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["diamond"])
	want := nativeOut(t, p)
	for _, style := range []dbt.UpdateStyle{dbt.UpdateJcc, dbt.UpdateCmov} {
		tech := &EdgCFXor{Style: style, PreserveFlags: false}
		d := dbt.New(p, dbt.Options{Technique: tech})
		res := d.Run(nil, 100_000_000)
		broken := res.Stop.Reason != cpu.StopHalt || !equalOut(res.Output, want)
		if !broken {
			t.Errorf("%s/%s: naive xor updates should corrupt flag-dependent behavior", tech.Name(), style)
		}
	}
}

// TestXorVariantWithPushfIsTransparent: bracketing every update with
// pushf/popf restores correctness on every program, style and policy.
func TestXorVariantWithPushfIsTransparent(t *testing.T) {
	for name, src := range transparencyPrograms {
		p := mustAssemble(t, src)
		want := nativeOut(t, p)
		for _, style := range []dbt.UpdateStyle{dbt.UpdateJcc, dbt.UpdateCmov} {
			for _, pol := range dbt.Policies() {
				tech := &EdgCFXor{Style: style, PreserveFlags: true}
				d := dbt.New(p, dbt.Options{Technique: tech, Policy: pol})
				res := d.Run(nil, 100_000_000)
				if res.Stop.Reason != cpu.StopHalt || !equalOut(res.Output, want) {
					t.Errorf("%s/%s/%s/%s: stop %v output %v want %v",
						name, tech.Name(), style, pol, res.Stop, res.Output, want)
				}
			}
		}
	}
}

// TestXorVariantCostsMoreThanLea: the safe xor variant pays pushf/popf on
// every update, making lea the strictly better implementation — the
// paper's conclusion ("the lea instruction does not have side-effects and
// has performance similar to the xor").
func TestXorVariantCostsMoreThanLea(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["nested-loops"])
	cycles := func(tech dbt.Technique) uint64 {
		d := dbt.New(p, dbt.Options{Technique: tech})
		res := d.Run(nil, 100_000_000)
		if res.Stop.Reason != cpu.StopHalt {
			t.Fatalf("%s: %v", tech.Name(), res.Stop)
		}
		return res.Cycles
	}
	lea := cycles(&EdgCF{Style: dbt.UpdateJcc})
	xor := cycles(&EdgCFXor{Style: dbt.UpdateJcc, PreserveFlags: true})
	if xor <= lea {
		t.Errorf("safe xor variant (%d cycles) should cost more than lea (%d)", xor, lea)
	}
	// And by a real margin: two 5-cycle stack operations per update.
	if float64(xor) < 1.1*float64(lea) {
		t.Errorf("xor variant margin too small: %d vs %d", xor, lea)
	}
}

// TestXorVariantStillDetects: flag preservation does not weaken coverage —
// the xor algebra detects the same mistaken branches as the lea form.
func TestXorVariantStillDetects(t *testing.T) {
	p := mustAssemble(t, mistakenBranchProgram)
	want := nativeOut(t, p)
	tech := &EdgCFXor{Style: dbt.UpdateCmov, PreserveFlags: true}
	if sdc := sweepFlagFaults(t, p, tech, want); sdc != 0 {
		t.Errorf("xor variant: %d silent corruptions from flag faults, want 0", sdc)
	}
}
