package check

// The Section 5.1 ablation: EdgCF with xor-based signature updates, the
// straightforward port of the paper's Figure 6. On this ISA, as on IA32,
// xor writes the flags register, so the naive variant silently changes
// program behavior (the re-emitted conditional branch reads clobbered
// flags); making it correct requires bracketing every update with
// pushf/popf, which costs more than switching the update to lea — which is
// precisely the argument the paper makes for its lea implementation.

import (
	"repro/internal/dbt"
	"repro/internal/isa"
)

// EdgCFXor is EdgCF with xor updates instead of lea.
type EdgCFXor struct {
	Style dbt.UpdateStyle
	// PreserveFlags brackets every update with pushf/popf. Without it the
	// technique is NOT transparent: any conditional branch whose flags are
	// produced before a signature update misbehaves.
	PreserveFlags bool
}

// Name implements dbt.Technique.
func (t *EdgCFXor) Name() string {
	if t.PreserveFlags {
		return "EdgCF-xor+pushf"
	}
	return "EdgCF-xor"
}

// Prologue implements dbt.Technique.
func (t *EdgCFXor) Prologue(entry uint32) []dbt.RegInit {
	return []dbt.RegInit{{Reg: regPC, Val: dbt.SigOf(entry)}}
}

// xorUpdate emits PC'-space xor of an immediate, with optional flag
// preservation.
func (t *EdgCFXor) xorUpdate(e *dbt.Emitter, dst isa.Reg, delta int32) {
	if t.PreserveFlags {
		e.Emit(isa.Instr{Op: isa.OpPushF})
	}
	e.Emit(isa.Instr{Op: isa.OpXorI, RD: dst, Imm: delta})
	if t.PreserveFlags {
		e.Emit(isa.Instr{Op: isa.OpPopF})
	}
}

// EmitHead implements dbt.Technique: "xor PC', L1" folds the edge
// signature to zero (Figure 6 verbatim).
func (t *EdgCFXor) EmitHead(e *dbt.Emitter, guestStart uint32, check bool) {
	t.xorUpdate(e, regPC, dbt.SigOf(guestStart))
	if check {
		emitCheck(e, regPC, 0)
	}
}

// EmitFinalCheck implements dbt.Technique.
func (t *EdgCFXor) EmitFinalCheck(e *dbt.Emitter, guestStart uint32) {
	emitCheck(e, regPC, 0)
}

// EmitTail implements dbt.Technique.
func (t *EdgCFXor) EmitTail(e *dbt.Emitter, guestStart uint32, term dbt.TermInfo) {
	emitCommonTail(e, guestStart, term, edgcfXorOps{t}, t.Style)
}

type edgcfXorOps struct{ t *EdgCFXor }

func (o edgcfXorOps) updateDirect(e *dbt.Emitter, guestStart uint32, target uint32) {
	o.t.xorUpdate(e, regPC, dbt.SigOf(target))
}

func (o edgcfXorOps) updateIndirect(e *dbt.Emitter, guestStart uint32) {
	// AUX = dynamic target + 1 (lea, flag-free), then PC' ^= AUX.
	e.Lea(regAUX, regSCR, 1)
	if o.t.PreserveFlags {
		e.Emit(isa.Instr{Op: isa.OpPushF})
	}
	e.Emit(isa.Instr{Op: isa.OpXor, RD: regPC, RS1: regAUX})
	if o.t.PreserveFlags {
		e.Emit(isa.Instr{Op: isa.OpPopF})
	}
}

func (o edgcfXorOps) condDelta(guestStart, target uint32) int32 { return dbt.SigOf(target) }
func (edgcfXorOps) condReg() isa.Reg                            { return regPC }

func (o edgcfXorOps) condLoad(e *dbt.Emitter, dst isa.Reg, delta int32) {
	if dst != regPC {
		e.Emit(isa.Instr{Op: isa.OpMovRR, RD: dst, RS1: regPC})
	}
	o.t.xorUpdate(e, dst, delta)
}

func (edgcfXorOps) preCond(*dbt.Emitter, uint32) {}
