package check

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/isa"
)

func runTarget(t *testing.T, p *isa.Program, f *cpu.Fault) (cpu.Stop, []int32) {
	t.Helper()
	m := cpu.New()
	m.Reset(p)
	m.Fault = f
	stop := m.Run(p.Code, 50_000_000)
	return stop, append([]int32(nil), m.Output...)
}

// TestStaticTransparency: CFCSS and ECCA instrumented programs behave
// identically to the originals on clean runs.
func TestStaticTransparency(t *testing.T) {
	for name, src := range transparencyPrograms {
		if strings.Contains(src, "callr") || strings.Contains(src, "jmpr") {
			continue // static baselines reject indirect branches
		}
		p := mustAssemble(t, src)
		want := nativeOut(t, p)
		for _, kind := range []StaticKind{StaticCFCSS, StaticECCA} {
			ip, err := InstrumentStatic(p, kind)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, kind, err)
			}
			if !ip.Target {
				t.Fatalf("%s/%s: instrumented program not marked target", name, kind)
			}
			stop, out := runTarget(t, ip, nil)
			if stop.Reason != cpu.StopHalt {
				t.Errorf("%s/%s: stop = %v (false positive?)", name, kind, stop)
				continue
			}
			if !equalOut(out, want) {
				t.Errorf("%s/%s: output %v, want %v", name, kind, out, want)
			}
		}
	}
}

func TestStaticRejectsIndirect(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["indirect"])
	if _, err := InstrumentStatic(p, StaticCFCSS); err == nil {
		t.Error("CFCSS static instrumentation must reject indirect branches")
	}
	if _, err := InstrumentStatic(p, StaticECCA); err == nil {
		t.Error("ECCA static instrumentation must reject indirect branches")
	}
}

// TestStaticBaselinesMissMistakenBranch: the paper's Section 3 analysis —
// neither CFCSS nor ECCA can detect category A (mistaken branch): the
// wrong-but-legal successor passes their entry checks.
func TestStaticBaselinesMissMistakenBranch(t *testing.T) {
	p := mustAssemble(t, mistakenBranchProgram)
	want := nativeOut(t, p)
	for _, kind := range []StaticKind{StaticCFCSS, StaticECCA} {
		ip, err := InstrumentStatic(p, kind)
		if err != nil {
			t.Fatal(err)
		}
		sawSDC := false
		for idx := uint64(0); idx < 32; idx++ {
			f := &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultFlagBit, Bit: 2}
			stop, out := runTarget(t, ip, f)
			if stop.Reason == cpu.StopHalt && !equalOut(out, want) {
				sawSDC = true
			}
			if !f.Fired {
				break
			}
		}
		if !sawSDC {
			t.Errorf("%s: expected a silent corruption from a mistaken branch (category A gap)", kind)
		}
	}
}

// TestECCADetectsIllegalBlockEntry: a jump to the beginning of a
// non-successor block must trip the ECCA assertion (category D coverage).
func TestECCADetectsIllegalBlockEntry(t *testing.T) {
	// Program with several well-separated blocks; offset faults on the
	// taken jump scatter control flow to other block starts.
	src := `
main:
    movi eax, 0
    movi ecx, 8
loop:
    addi eax, 1
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
cold1:
    movi ebx, 1
    out ebx
    halt
cold2:
    movi ebx, 2
    out ebx
    halt
`
	p := mustAssemble(t, src)
	want := nativeOut(t, p)
	ip, err := InstrumentStatic(p, StaticECCA)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	total := 0
	for idx := uint64(0); idx < 16; idx++ {
		for bit := uint(0); bit < 8; bit++ {
			f := &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultOffsetBit, Bit: bit}
			stop, out := runTarget(t, ip, f)
			if !f.Fired {
				continue
			}
			if stop.Reason == cpu.StopHalt && equalOut(out, want) {
				continue // benign
			}
			total++
			if stop.Reason == cpu.StopReport || stop.Reason.IsHardwareTrap() {
				detected++
			}
		}
	}
	if total == 0 {
		t.Fatal("no effective faults planted")
	}
	if detected == 0 {
		t.Errorf("ECCA detected none of %d effective offset faults", total)
	}
}

// TestCFCSSDetectsWildJumpToUnrelatedBlock: with unique (non-aliased)
// signatures between unrelated blocks, CFCSS catches category D/E jumps
// that land on another block's check.
func TestCFCSSDetectsSomething(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["diamond"])
	want := nativeOut(t, p)
	ip, err := InstrumentStatic(p, StaticCFCSS)
	if err != nil {
		t.Fatal(err)
	}
	detected, total := 0, 0
	for idx := uint64(0); idx < 64; idx++ {
		for bit := uint(0); bit < 10; bit++ {
			f := &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultOffsetBit, Bit: bit}
			stop, out := runTarget(t, ip, f)
			if !f.Fired {
				continue
			}
			if stop.Reason == cpu.StopHalt && equalOut(out, want) {
				continue
			}
			total++
			if stop.Reason == cpu.StopReport || stop.Reason.IsHardwareTrap() || stop.Reason == cpu.StopDivZero {
				detected++
			}
		}
	}
	if total == 0 || detected == 0 {
		t.Errorf("CFCSS: detected %d of %d effective faults", detected, total)
	}
}

// TestStaticCoverageBelowRCF: sweeping the same fault space, the static
// baselines must leave strictly more silent corruptions than RCF in the
// DBT — the paper's core comparative claim.
func TestStaticCoverageBelowRCF(t *testing.T) {
	p := mustAssemble(t, transparencyPrograms["diamond"])
	want := nativeOut(t, p)

	sdcStatic := func(kind StaticKind) int {
		ip, err := InstrumentStatic(p, kind)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for idx := uint64(0); idx < 64; idx++ {
			for _, fk := range []cpu.FaultKind{cpu.FaultOffsetBit, cpu.FaultFlagBit} {
				for bit := uint(0); bit < 8; bit++ {
					f := &cpu.Fault{BranchIndex: idx, Kind: fk, Bit: bit}
					stop, out := runTarget(t, ip, f)
					if stop.Reason == cpu.StopHalt && !equalOut(out, want) {
						n++
					}
				}
			}
		}
		return n
	}
	cfcss := sdcStatic(StaticCFCSS)
	ecca := sdcStatic(StaticECCA)

	rcf := 0
	tech := &RCF{Style: dbt.UpdateCmov}
	for idx := uint64(0); idx < 64; idx++ {
		for _, fk := range []cpu.FaultKind{cpu.FaultOffsetBit, cpu.FaultFlagBit} {
			for bit := uint(0); bit < 8; bit++ {
				f := &cpu.Fault{BranchIndex: idx, Kind: fk, Bit: bit}
				if runWithFault(t, p, tech, dbt.PolicyAllBB, f, want) == outSDC {
					rcf++
				}
			}
		}
	}
	if !(rcf <= cfcss && rcf <= ecca) {
		t.Errorf("SDC counts: RCF=%d CFCSS=%d ECCA=%d; RCF must not lose", rcf, cfcss, ecca)
	}
	if cfcss == 0 && ecca == 0 {
		t.Error("baselines unexpectedly perfect; the comparison is vacuous")
	}
}
