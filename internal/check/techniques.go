// Package check implements the control-flow checking techniques evaluated
// by the paper: EdgCF and RCF (the paper's contributions) and ECF (Reis et
// al.) as dynamic-translator instrumentation, plus CFCSS and ECCA as static
// instrumenters for coverage comparison (the paper's translate-on-demand
// scheme cannot host them, Section 5).
//
// All techniques follow the paper's IA32/EM64T constraints translated to
// the simulated ISA: signature updates use the flag-transparent LEA family
// (never XOR, which clobbers flags), checks branch with JRZ (the jcxz
// idiom), and the signature of a block is the address of its first guest
// instruction (plus one), so indirect-branch targets map to signatures for
// free.
package check

import (
	"fmt"

	"repro/internal/dbt"
	"repro/internal/isa"
)

// Instrumentation register conventions (target-only registers).
const (
	regPC  = isa.RegPC  // PC': the shadow signature register
	regRTS = isa.RegRTS // RTS: run-time adjusting signature (ECF)
	regAUX = isa.RegAUX // conditional-update scratch
	regSCR = isa.RegSCR // check scratch / indirect targets
)

// BodyBias displaces RCF body-region signatures into their own namespace so
// they can never collide with block-entry signatures (guest addresses + 1).
const BodyBias = int32(1) << 28

// BranchBias further displaces the RCF region covering a block's
// conditional-update and branch code (the R2E/R3E regions of the paper's
// Figure 9), so errors on those inserted instructions are distinguishable
// from body-region errors.
const BranchBias = int32(1) << 27

// emitCheck emits the signature check sequence of the paper's Figure 13:
// the flag-transparent branch is "jump if CX is zero", so the check stages
// through the guest's ECX — save ECX, compute PC' minus the expected
// signature into it, jcxz over the report, restore ECX. Four executed
// instructions per check, five emitted.
func emitCheck(e *dbt.Emitter, expected isa.Reg, delta int32) {
	e.NoteCheck()
	e.Emit(isa.Instr{Op: isa.OpMovRR, RD: regSCR, RS1: isa.ECX}) // save CX
	e.Lea(isa.ECX, expected, delta)                              // CX = PC' - L
	ok := e.JrzFwd(isa.ECX)
	e.Report()
	e.Bind(ok)
	e.Emit(isa.Instr{Op: isa.OpMovRR, RD: isa.ECX, RS1: regSCR}) // restore CX
}

// New returns the named technique ("EdgCF", "RCF", "ECF", or "none") with
// the given conditional-update style.
func New(name string, style dbt.UpdateStyle) (dbt.Technique, error) {
	switch name {
	case "EdgCF", "edgcf":
		return &EdgCF{Style: style}, nil
	case "RCF", "rcf":
		return &RCF{Style: style}, nil
	case "ECF", "ecf":
		return &ECF{Style: style}, nil
	case "none", "":
		return dbt.None{}, nil
	}
	return nil, fmt.Errorf("unknown technique %q", name)
}

// DBTTechniques lists the techniques implemented inside the translator, in
// the order the paper's figures use.
func DBTTechniques(style dbt.UpdateStyle) []dbt.Technique {
	return []dbt.Technique{&RCF{Style: style}, &EdgCF{Style: style}, &ECF{Style: style}}
}

// ----------------------------------------------------------------------
// EdgCF — Edge Control-Flow checking (Section 3.1).
//
// Invariant: on every control-flow edge PC' holds the signature of the
// destination block; inside a block PC' holds zero. GEN_SIG(x,y,z)=x-y+z
// (the paper's EFLAGS-safe variant of the xor form), CHECK_SIG compares
// with zero via the flag-free JRZ.
// ----------------------------------------------------------------------

// EdgCF implements dbt.Technique.
type EdgCF struct {
	Style dbt.UpdateStyle
}

// Name implements dbt.Technique.
func (t *EdgCF) Name() string { return "EdgCF" }

// Prologue implements dbt.Technique: establish the edge invariant for the
// entry block.
func (t *EdgCF) Prologue(entry uint32) []dbt.RegInit {
	return []dbt.RegInit{{Reg: regPC, Val: dbt.SigOf(entry)}}
}

// EmitHead implements dbt.Technique: "lea PC', [PC'-L]" folds the edge
// signature to zero; the optional check reports unless PC' is now zero.
func (t *EdgCF) EmitHead(e *dbt.Emitter, guestStart uint32, check bool) {
	e.Lea(regPC, regPC, -dbt.SigOf(guestStart))
	if check {
		emitCheck(e, regPC, 0)
	}
}

// EmitFinalCheck implements dbt.Technique: mid-block PC' must be zero.
func (t *EdgCF) EmitFinalCheck(e *dbt.Emitter, guestStart uint32) {
	emitCheck(e, regPC, 0)
}

// EmitTail implements dbt.Technique.
func (t *EdgCF) EmitTail(e *dbt.Emitter, guestStart uint32, term dbt.TermInfo) {
	emitCommonTail(e, guestStart, term, edgcfOps{}, t.Style)
}

// edgcfOps parameterizes the shared tail emitter for EdgCF: deltas are
// applied to PC' directly, and the mid-block base is zero.
type edgcfOps struct{}

func (edgcfOps) updateDirect(e *dbt.Emitter, guestStart uint32, target uint32) {
	e.Lea(regPC, regPC, dbt.SigOf(target))
}
func (edgcfOps) updateIndirect(e *dbt.Emitter, guestStart uint32) {
	// SCR holds the dynamic guest target; its signature is target+1.
	e.Lea3(regPC, regPC, regSCR, 1)
}
func (edgcfOps) condDelta(guestStart, target uint32) int32 { return dbt.SigOf(target) }
func (edgcfOps) condReg() isa.Reg                          { return regPC }
func (edgcfOps) condLoad(e *dbt.Emitter, dst isa.Reg, delta int32) {
	if dst != regPC {
		e.Emit(isa.Instr{Op: isa.OpMovRR, RD: dst, RS1: regPC})
	}
	e.Lea(dst, dst, delta)
}
func (edgcfOps) preCond(*dbt.Emitter, uint32) {}

// ----------------------------------------------------------------------
// RCF — Region-based Control-Flow checking (Section 3.2).
//
// Like EdgCF, but each block's interior is its own signature region with a
// unique nonzero value (entry signature + BodyBias), so errors on the
// instrumentation's own branch instructions — whose EdgCF-era PC' value of
// zero aliases every block interior — are detected too.
// ----------------------------------------------------------------------

// RCF implements dbt.Technique.
type RCF struct {
	Style dbt.UpdateStyle
}

// Name implements dbt.Technique.
func (t *RCF) Name() string { return "RCF" }

// Prologue implements dbt.Technique.
func (t *RCF) Prologue(entry uint32) []dbt.RegInit {
	return []dbt.RegInit{{Reg: regPC, Val: dbt.SigOf(entry)}}
}

// EmitHead implements dbt.Technique: check the entry-region signature (in
// region R_E, through SCR so PC' keeps its unique value), then transition
// into the body region.
func (t *RCF) EmitHead(e *dbt.Emitter, guestStart uint32, check bool) {
	entrySig := dbt.SigOf(guestStart)
	if check {
		emitCheck(e, regPC, -entrySig)
	}
	// Region transition R_E -> R_B.
	e.Lea(regPC, regPC, BodyBias)
}

// EmitFinalCheck implements dbt.Technique: the body-region signature must
// hold right before program exit.
func (t *RCF) EmitFinalCheck(e *dbt.Emitter, guestStart uint32) {
	emitCheck(e, regPC, -(dbt.SigOf(guestStart) + BodyBias))
}

// EmitTail implements dbt.Technique.
func (t *RCF) EmitTail(e *dbt.Emitter, guestStart uint32, term dbt.TermInfo) {
	emitCommonTail(e, guestStart, term, rcfOps{}, t.Style)
}

type rcfOps struct{}

func (rcfOps) bodySig(guestStart uint32) int32 { return dbt.SigOf(guestStart) + BodyBias }

func (o rcfOps) updateDirect(e *dbt.Emitter, guestStart uint32, target uint32) {
	e.Lea(regPC, regPC, dbt.SigOf(target)-o.bodySig(guestStart))
}
func (o rcfOps) updateIndirect(e *dbt.Emitter, guestStart uint32) {
	e.Lea3(regPC, regPC, regSCR, 1-o.bodySig(guestStart))
}
func (o rcfOps) condDelta(guestStart, target uint32) int32 {
	// Arms leave from the branch region, not the body region.
	return dbt.SigOf(target) - (o.bodySig(guestStart) + BranchBias)
}
func (rcfOps) condReg() isa.Reg { return regPC }
func (rcfOps) condLoad(e *dbt.Emitter, dst isa.Reg, delta int32) {
	if dst != regPC {
		e.Emit(isa.Instr{Op: isa.OpMovRR, RD: dst, RS1: regPC})
	}
	e.Lea(dst, dst, delta)
}

// preCond transitions into the per-branch region before the conditional
// update executes — the extra signature update that makes RCF "update the
// signature more than twice in each basic block".
func (rcfOps) preCond(e *dbt.Emitter, guestStart uint32) {
	e.Lea(regPC, regPC, BranchBias)
}

// ----------------------------------------------------------------------
// ECF — enhanced control-flow checking (Reis et al., SWIFT).
//
// PC' holds the current block's signature inside the block; the run-time
// adjusting signature RTS carries the delta to the next block, selected by
// a duplicated evaluation of the branch condition.
// ----------------------------------------------------------------------

// ECF implements dbt.Technique.
type ECF struct {
	Style dbt.UpdateStyle
}

// Name implements dbt.Technique.
func (t *ECF) Name() string { return "ECF" }

// Prologue implements dbt.Technique.
func (t *ECF) Prologue(entry uint32) []dbt.RegInit {
	return []dbt.RegInit{{Reg: regPC, Val: dbt.SigOf(entry)}, {Reg: regRTS, Val: 0}}
}

// EmitHead implements dbt.Technique: fold RTS into PC' ("xor PC', RTS" in
// the paper, lea-based here), then optionally compare PC' with the block
// signature.
func (t *ECF) EmitHead(e *dbt.Emitter, guestStart uint32, check bool) {
	e.Lea3(regPC, regPC, regRTS, 0)
	if check {
		emitCheck(e, regPC, -dbt.SigOf(guestStart))
	}
}

// EmitFinalCheck implements dbt.Technique.
func (t *ECF) EmitFinalCheck(e *dbt.Emitter, guestStart uint32) {
	emitCheck(e, regPC, -dbt.SigOf(guestStart))
}

// EmitTail implements dbt.Technique.
func (t *ECF) EmitTail(e *dbt.Emitter, guestStart uint32, term dbt.TermInfo) {
	emitCommonTail(e, guestStart, term, ecfOps{}, t.Style)
}

type ecfOps struct{}

func (ecfOps) updateDirect(e *dbt.Emitter, guestStart uint32, target uint32) {
	e.Emit(isa.Instr{Op: isa.OpMovRI, RD: regRTS, Imm: dbt.SigOf(target) - dbt.SigOf(guestStart)})
}
func (ecfOps) updateIndirect(e *dbt.Emitter, guestStart uint32) {
	e.Lea(regRTS, regSCR, 1-dbt.SigOf(guestStart))
}
func (ecfOps) condDelta(guestStart, target uint32) int32 {
	return dbt.SigOf(target) - dbt.SigOf(guestStart)
}
func (ecfOps) condReg() isa.Reg { return regRTS }
func (ecfOps) condLoad(e *dbt.Emitter, dst isa.Reg, delta int32) {
	e.Emit(isa.Instr{Op: isa.OpMovRI, RD: dst, Imm: delta})
}
func (ecfOps) preCond(*dbt.Emitter, uint32) {}

// ----------------------------------------------------------------------
// Shared tail emission.
// ----------------------------------------------------------------------

// tailOps abstracts the per-technique signature update forms used by the
// common tail shapes.
type tailOps interface {
	// updateDirect updates the signature state for a statically known
	// transition guestStart -> target.
	updateDirect(e *dbt.Emitter, guestStart uint32, target uint32)
	// updateIndirect updates the signature state for a dynamic transition
	// whose guest target address is in SCR.
	updateIndirect(e *dbt.Emitter, guestStart uint32)
	// condDelta is the immediate a conditional update loads/adds for the
	// transition guestStart -> target.
	condDelta(guestStart, target uint32) int32
	// condReg is the register the conditional update selects into (PC' for
	// EdgCF/RCF, RTS for ECF).
	condReg() isa.Reg
	// condLoad materializes one arm's update into dst.
	condLoad(e *dbt.Emitter, dst isa.Reg, delta int32)
	// preCond emits the region transition preceding a conditional update
	// (RCF gives the branch code its own region; others do nothing).
	preCond(e *dbt.Emitter, guestStart uint32)
}

// emitCommonTail emits the signature update plus control transfer for all
// terminator shapes. Conditional branches follow the paper's two styles:
//
// UpdateCmov (Figure 8): a duplicated condition evaluation selects the
// signature with a conditional move, then the original branch executes. A
// flag upset at the branch disagrees with the already-committed signature
// and is detected (category A coverage).
//
// UpdateJcc (Figure 14): an inserted branch with the same condition selects
// the signature, then the original branch executes. Cheaper, but the
// inserted branch is a new fault site: under EdgCF/ECF an offset upset on
// it escapes (the mid-block signature state of those techniques aliases
// every other mid-block point), which is why the paper calls those
// configurations unsafe; RCF's unique body regions detect it.
func emitCommonTail(e *dbt.Emitter, guestStart uint32, term dbt.TermInfo, ops tailOps, style dbt.UpdateStyle) {
	switch term.Kind {
	case dbt.TermFall:
		ops.updateDirect(e, guestStart, term.Fall)
		e.ExitDirect(term.Fall)

	case dbt.TermJmp:
		ops.updateDirect(e, guestStart, term.Taken)
		e.ExitDirect(term.Taken)

	case dbt.TermCall:
		e.PushGuestReturn(term.Fall)
		ops.updateDirect(e, guestStart, term.Taken)
		e.ExitDirect(term.Taken)

	case dbt.TermRet:
		e.Emit(isa.Instr{Op: isa.OpPop, RD: regSCR})
		ops.updateIndirect(e, guestStart)
		e.ExitIndirect()

	case dbt.TermJmpR:
		e.Emit(isa.Instr{Op: isa.OpMovRR, RD: regSCR, RS1: term.Reg})
		ops.updateIndirect(e, guestStart)
		e.ExitIndirect()

	case dbt.TermCallR:
		e.Emit(isa.Instr{Op: isa.OpMovRR, RD: regSCR, RS1: term.Reg})
		e.PushGuestReturn(term.Fall)
		ops.updateIndirect(e, guestStart)
		e.ExitIndirect()

	case dbt.TermHalt:
		e.Emit(isa.Instr{Op: isa.OpHalt})

	case dbt.TermCond:
		ops.preCond(e, guestStart)
		dT := ops.condDelta(guestStart, term.Taken)
		dF := ops.condDelta(guestStart, term.Fall)
		r := ops.condReg()
		neg := term.Cond.Negate()
		if style == dbt.UpdateCmov {
			// Fall value into AUX first (the lea form snapshots PC' before
			// the taken update overwrites it), taken value into r, then
			// the conditional move picks the loser arm.
			ops.condLoad(e, regAUX, dF)
			ops.condLoad(e, r, dT)
			e.Emit(isa.Instr{Op: isa.OpCmov, RD: r, RS1: regAUX, RS2: isa.Reg(neg)})
			orig := e.JccFwd(neg) // original branch, re-emitted
			e.ExitDirect(term.Taken)
			e.Bind(orig)
			e.ExitDirect(term.Fall)
		} else {
			upd := e.JccFwd(term.Cond) // inserted update branch
			ops.condLoad(e, r, dF)
			join := e.JmpFwd()
			e.Bind(upd)
			ops.condLoad(e, r, dT)
			e.Bind(join)
			orig := e.JccFwd(neg) // original branch, re-emitted
			e.ExitDirect(term.Taken)
			e.Bind(orig)
			e.ExitDirect(term.Fall)
		}
	}
}
