package graph

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/frame"
)

// cellMagic identifies the on-disk cell-entry format; the trailing digit
// is the envelope version (see the package documentation for the layout).
// The envelope itself — magic, framed fingerprint, framed JSON payload,
// CRC-32 trailer — is the shared frame.Seal layout, so the bytes are
// unchanged from the pre-frame encoder.
const cellMagic = "CFCGRPH1"

// errCorruptEntry marks an entry whose bytes cannot be decoded: bad
// magic, checksum mismatch, bad framing or unparseable JSON.
var errCorruptEntry = errors.New("graph: corrupt cell entry")

// errStaleEntry marks an entry that decodes cleanly but was written under
// a different fingerprint (program bytes, configuration or version).
var errStaleEntry = errors.New("graph: stale cell entry")

// encodeEntry serializes an entry under the given fingerprint: the
// fingerprint and the JSON payload as the two framed sections of a
// cellMagic envelope.
func encodeEntry(e *Entry, fingerprint string) []byte {
	payload, err := json.Marshal(e)
	if err != nil {
		// Entry is plain exported data; Marshal cannot fail on it. Keep
		// the signature infallible and make any future regression loud.
		panic(fmt.Sprintf("graph: encode entry: %v", err))
	}
	return frame.Seal(cellMagic, []byte(fingerprint), payload)
}

// decodeEntry reads an entry written by encodeEntry, verifying the magic,
// the checksum and the fingerprint before trusting the payload. It
// returns errCorruptEntry for unreadable bytes and errStaleEntry when the
// bytes decode but carry a different fingerprint; callers recompute and
// rewrite on either.
func decodeEntry(buf []byte, fingerprint string) (*Entry, error) {
	sections, err := frame.Open(cellMagic, buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorruptEntry, err)
	}
	if len(sections) != 2 {
		return nil, fmt.Errorf("%w: %d sections, want 2", errCorruptEntry, len(sections))
	}
	if string(sections[0]) != fingerprint {
		return nil, fmt.Errorf("%w: fingerprint %q, want %q", errStaleEntry, sections[0], fingerprint)
	}
	e := &Entry{}
	if err := json.Unmarshal(sections[1], e); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", errCorruptEntry, err)
	}
	if e.Report == nil {
		return nil, fmt.Errorf("%w: entry without a report", errCorruptEntry)
	}
	return e, nil
}
