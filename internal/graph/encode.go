package graph

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/fp"
)

// cellMagic identifies the on-disk cell-entry format; the trailing digit
// is the envelope version (see the package documentation for the layout).
const cellMagic = "CFCGRPH1"

// errCorruptEntry marks an entry whose bytes cannot be decoded: bad
// magic, checksum mismatch, bad framing or unparseable JSON.
var errCorruptEntry = errors.New("graph: corrupt cell entry")

// errStaleEntry marks an entry that decodes cleanly but was written under
// a different fingerprint (program bytes, configuration or version).
var errStaleEntry = errors.New("graph: stale cell entry")

// encodeEntry serializes an entry under the given fingerprint:
// magic, length-framed fingerprint, length-framed JSON payload, CRC-32
// trailer over everything before it.
func encodeEntry(e *Entry, fingerprint string) []byte {
	payload, err := json.Marshal(e)
	if err != nil {
		// Entry is plain exported data; Marshal cannot fail on it. Keep
		// the signature infallible and make any future regression loud.
		panic(fmt.Sprintf("graph: encode entry: %v", err))
	}
	buf := make([]byte, 0, len(cellMagic)+8+len(fingerprint)+len(payload)+4)
	buf = append(buf, cellMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fingerprint)))
	buf = append(buf, fingerprint...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, fp.Checksum(buf))
}

// decodeEntry reads an entry written by encodeEntry, verifying the magic,
// the checksum and the fingerprint before trusting the payload. It
// returns errCorruptEntry for unreadable bytes and errStaleEntry when the
// bytes decode but carry a different fingerprint; callers recompute and
// rewrite on either.
func decodeEntry(buf []byte, fingerprint string) (*Entry, error) {
	if len(buf) < len(cellMagic)+12 {
		return nil, fmt.Errorf("%w: %d bytes", errCorruptEntry, len(buf))
	}
	if string(buf[:len(cellMagic)]) != cellMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errCorruptEntry, buf[:len(cellMagic)])
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := fp.Checksum(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, file says %08x", errCorruptEntry, got, want)
	}
	pos := len(cellMagic)
	frame := func() ([]byte, error) {
		if pos+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated at byte %d", errCorruptEntry, pos)
		}
		n := int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		if n < 0 || pos+n > len(body) {
			return nil, fmt.Errorf("%w: frame of %d bytes at byte %d", errCorruptEntry, n, pos)
		}
		b := body[pos : pos+n]
		pos += n
		return b, nil
	}
	fpBytes, err := frame()
	if err != nil {
		return nil, err
	}
	payload, err := frame()
	if err != nil {
		return nil, err
	}
	if pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCorruptEntry, len(body)-pos)
	}
	if string(fpBytes) != fingerprint {
		return nil, fmt.Errorf("%w: fingerprint %q, want %q", errStaleEntry, fpBytes, fingerprint)
	}
	e := &Entry{}
	if err := json.Unmarshal(payload, e); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", errCorruptEntry, err)
	}
	if e.Report == nil {
		return nil, fmt.Errorf("%w: entry without a report", errCorruptEntry)
	}
	return e, nil
}
