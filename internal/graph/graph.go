package graph

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/comp"
	"repro/internal/fp"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/obs"
)

// EngineVersion invalidates every cached cell at once. Bump it whenever a
// semantics-affecting engine change lands: anything that can alter a
// classified report for the same (program, configuration) inputs —
// translator or checker semantics, fault derivation, outcome
// classification, report formatting.
const EngineVersion = 1

// TechniqueVersions invalidates one technique's cells: bump a technique's
// entry when only its checker or instrumentation changed, and the other
// techniques' cached cells stay valid. Techniques not listed here fold in
// as version 0.
var TechniqueVersions = map[string]int{
	"none":  1,
	"ECF":   1,
	"EdgCF": 1,
	"RCF":   1,
	"CFCSS": 1,
	"ECCA":  1,
}

// CellKey identifies one campaign cell by everything that influences its
// classified output. Workers, tracing, progress and flight recording are
// deliberately absent: reports are proven byte-identical across them.
type CellKey struct {
	// Program is the workload's readable name; ProgramHash is its content
	// hash (fp.Program), the field that actually keys the cell.
	Program     string
	ProgramHash string

	Technique string
	Style     string
	Policy    string
	Samples   int
	Seed      int64
	// SampleOffset distinguishes a shard's cell from the unsharded
	// campaign's: [offset, offset+samples) classifies differently from
	// [0, samples) even under the same seed.
	SampleOffset int

	// Engine identity: the checkpoint interval selects replay vs
	// checkpoint engine (and the capture spacing), Backend is the resolved
	// execution backend, MaxSteps the hang budget.
	CkptInterval int64
	Backend      string
	MaxSteps     uint64
}

// KeyFor builds the cell key for a campaign over p. backend and maxSteps
// are normalized (auto resolves to its concrete backend, 0 to
// inject.DefaultMaxSteps) so spellings that run identically share a cell.
func KeyFor(p *isa.Program, technique, style, policy string, samples int, seed int64,
	sampleOffset int, ckptInterval int64, backend comp.Backend, maxSteps uint64) CellKey {
	if backend == comp.BackendAuto {
		backend = comp.BackendCompile
	}
	if maxSteps == 0 {
		maxSteps = inject.DefaultMaxSteps
	}
	if sampleOffset < 0 {
		sampleOffset = 0
	}
	return CellKey{
		Program:      p.Name,
		ProgramHash:  fp.Program(p),
		Technique:    technique,
		Style:        style,
		Policy:       policy,
		Samples:      samples,
		Seed:         seed,
		SampleOffset: sampleOffset,
		CkptInterval: ckptInterval,
		Backend:      backend.String(),
		MaxSteps:     maxSteps,
	}
}

// id renders the version-free key identity: every field including the
// program hash, but no version knobs.
func (k CellKey) id() string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|s%d|n%d|o%d|i%d|%s|m%d",
		k.Program, k.ProgramHash, k.Technique, k.Style, k.Policy,
		k.Seed, k.Samples, k.SampleOffset, k.CkptInterval, k.Backend, k.MaxSteps)
}

// Fingerprint renders the full cell fingerprint embedded in cache
// entries: the engine and technique versions plus the key identity.
func (k CellKey) Fingerprint() string {
	return k.fingerprintAt(EngineVersion, TechniqueVersions[k.Technique])
}

// fingerprintAt is Fingerprint under explicit versions, split out so the
// invalidation tests can write entries "from the past".
func (k CellKey) fingerprintAt(engine, technique int) string {
	return fmt.Sprintf("cell|v%d|t%d|%s", engine, technique, k.id())
}

// fileName maps the key to its cache file name. The readable fields plus
// their checksum — not the program hash or the versions — so a program
// edit or version bump finds the old file, decodes it as stale and
// overwrites in place instead of orphaning it.
func (k CellKey) fileName() string {
	readable := fmt.Sprintf("%s|%s|%s|%s|s%d|n%d|o%d|i%d|%s|m%d",
		k.Program, k.Technique, k.Style, k.Policy,
		k.Seed, k.Samples, k.SampleOffset, k.CkptInterval, k.Backend, k.MaxSteps)
	return fp.FileName(readable, ".cell")
}

// Entry is one cached cell: the normalized report, its rendering, and
// the cell's deterministic metrics.
type Entry struct {
	// Report is the campaign report with Workers and Elapsed zeroed, so
	// the stored payload is byte-identical no matter how many workers
	// computed it.
	Report *inject.Report `json:"report"`
	// Normalized is the inject.FormatNormalized rendering of Report,
	// stored so the artifact is self-describing (and greppable) on disk.
	Normalized string `json:"normalized"`
	// Metrics is the cell's deterministic observability snapshot
	// (counters, gauges, histograms; wall-clock spans stripped), merged
	// into the live registry on every hit.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Cache is a content-keyed store of campaign cells: an in-memory layer
// always, plus a directory when configured. The zero value is not usable;
// a nil *Cache is valid and disables caching (Run always computes).
type Cache struct {
	dir string // "" = memory-only

	mu  sync.Mutex
	mem map[string][]byte // encoded entries by file name
}

// New returns a cache persisting under dir ("" keeps entries in memory
// only — hits survive the process, not a restart).
func New(dir string) *Cache {
	return &Cache{dir: dir, mem: map[string][]byte{}}
}

// Dir returns the persistence directory ("" when memory-only).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// count bumps a cache accounting counter.
func count(m *obs.Registry, name string) {
	if m != nil {
		m.Counter(name).Add(1)
	}
}

// Lookup returns the cached entry for k, or nil. A corrupt or stale
// entry counts into metrics and misses; the caller recomputes and Store
// overwrites it.
func (c *Cache) Lookup(k CellKey, metrics *obs.Registry) *Entry {
	if c == nil {
		return nil
	}
	name := k.fileName()
	want := k.Fingerprint()
	c.mu.Lock()
	raw, ok := c.mem[name]
	c.mu.Unlock()
	if !ok && c.dir != "" {
		b, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			return nil
		}
		raw, ok = b, true
	}
	if !ok {
		return nil
	}
	e, err := decodeEntry(raw, want)
	if err != nil {
		if errors.Is(err, errStaleEntry) {
			count(metrics, "graph_cache_stale_total")
		} else {
			count(metrics, "graph_cache_corrupt_total")
		}
		return nil
	}
	return e
}

// Store encodes and saves the entry under k, in memory and — when a
// directory is configured — on disk via temp file + rename, best effort:
// a read-only or full disk degrades to memory-only, never to an error.
func (c *Cache) Store(k CellKey, e *Entry) {
	if c == nil {
		return
	}
	raw := encodeEntry(e, k.Fingerprint())
	name := k.fileName()
	c.mu.Lock()
	c.mem[name] = raw
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".cell-*")
	if err != nil {
		return
	}
	_, err = tmp.Write(raw)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(c.dir, name))
	}
	if err != nil {
		os.Remove(tmp.Name())
	}
}

// Run resolves one cell: a hit returns the cached normalized report
// (cached=true) after merging its deterministic metrics into metrics; a
// miss calls compute against a fresh private registry, merges and stores
// what it collected, and returns the live report. The lookup itself is
// timed into a graph_cell_lookup span either way.
//
// A nil cache always computes, against metrics directly (no private
// registry, no store) — the uncached paths are exactly as before.
func (c *Cache) Run(k CellKey, metrics *obs.Registry,
	compute func(*obs.Registry) (*inject.Report, error)) (*inject.Report, bool, error) {
	if c == nil {
		return nil, false, fmt.Errorf("graph: Run on a nil cache")
	}
	start := time.Now()
	e := c.Lookup(k, metrics)
	if metrics != nil {
		metrics.RecordSpan(fmt.Sprintf("graph_cell_lookup{technique=%q}", k.Technique), time.Since(start))
	}
	if e != nil {
		count(metrics, "graph_cache_hits_total")
		metrics.Merge(e.Metrics)
		return e.Report, true, nil
	}
	count(metrics, "graph_cache_misses_total")
	count(metrics, "graph_cells_executed_total")
	priv := obs.NewRegistry()
	rep, err := compute(priv)
	if err != nil {
		// Failed computes still surface what they collected; nothing is
		// cached.
		metrics.Merge(priv.Snapshot())
		return nil, false, err
	}
	full := priv.Snapshot()
	metrics.Merge(full)
	stored := *rep
	stored.Workers = 0
	stored.Elapsed = 0
	c.Store(k, &Entry{
		Report:     &stored,
		Normalized: inject.FormatNormalized(rep),
		Metrics:    full.StripTimings(),
	})
	return rep, false, nil
}
