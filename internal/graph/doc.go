// Package graph turns every campaign cell — one (workload, technique,
// style, policy, samples, seed, engine) configuration of the coverage
// matrix or a served batch — into a content-keyed build target, the way
// a ninja-style build system keys compilation outputs by the hash of
// their inputs. PRs 1–7 made each cell's classified report a pure
// function of those inputs (byte-identical across worker counts,
// engines and backends, pinned by the CI byte-identity gates); this
// package is the payoff: a matrix re-run only executes the cells whose
// inputs changed, everything else is a cache hit that skips the entire
// warm/record/inject pipeline.
//
// # Keys
//
// A CellKey captures everything that influences a cell's classified
// output:
//
//   - the program's content hash (fp.Program over name, entry point,
//     data size and the encoded instruction image), so regenerated
//     workloads invalidate their cells;
//   - the campaign configuration: technique, update style, checking
//     policy, sample count, seed, MaxSteps;
//   - the engine identity: checkpoint interval (replay vs checkpoint
//     engine) and the resolved execution backend.
//
// Workers, tracing, progress and the flight recorder are deliberately
// absent: they are proven output-invariant (the normalized report and
// the deterministic metric sections are bit-identical for every value),
// so one worker's run answers for all.
//
// Engine code itself cannot be content-hashed, so two version knobs
// stand in for it: EngineVersion (bump on any semantics-affecting engine
// change — every cell invalidates) and TechniqueVersions (bump one
// technique's entry when only its checker or instrumentation changed —
// only that technique's cells invalidate). Both fold into the embedded
// fingerprint but not the file name, so a bump overwrites entries in
// place instead of orphaning dead files.
//
// # Entries and the on-disk format
//
// A cache entry stores the normalized inject.Report (Workers and Elapsed
// zeroed — the stored payload is byte-identical no matter how many
// workers computed it), the FormatNormalized rendering, and the cell's
// deterministic observability snapshot (counters, gauges, histograms;
// spans stripped). On a hit the snapshot merges back into the live
// registry, so /metrics accounting stays continuous whether a cell ran
// or loaded.
//
// Entries persist under the same cache directory as the session
// registry's checkpoint logs, in the same envelope style (see
// internal/ckpt): an 8-byte magic "CFCGRPH1", the length-framed
// fingerprint, the length-framed JSON payload, and a trailing CRC-32
// (fp.Checksum) over everything before it. Decoding distinguishes
// corruption (bad magic, checksum, framing, JSON — ErrCorrupt) from
// staleness (clean decode, different fingerprint — ErrStale); both fall
// back to recompute-and-rewrite. Writes go through a temp file + rename.
package graph
