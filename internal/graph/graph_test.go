package graph

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/obs"
)

// The test cell family: one real workload at a tiny scale, mirroring the
// session tests, so the end-to-end cases stay in the tens of
// milliseconds.
const (
	testWorkload = "164.gzip"
	testScale    = 0.02
	testSamples  = 30
	testSeed     = 7
)

func testProgram(t *testing.T) *isa.Program {
	t.Helper()
	p, err := core.Workload(testWorkload, testScale)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testKey(t *testing.T, p *isa.Program) CellKey {
	t.Helper()
	return KeyFor(p, "RCF", "CMOVcc", "ALLBB", testSamples, testSeed, 0, -1, comp.BackendAuto, 0)
}

// fakeReport builds a small but structurally complete report, enough for
// FormatNormalized and the JSON round trip.
func fakeReport(tech string) *inject.Report {
	a := &inject.Agg{Total: 10}
	a.Count[inject.OutDetectedSW] = 8
	a.Count[inject.OutSDC] = 2
	r := &inject.Report{
		Program: testWorkload, Technique: tech,
		Samples: 10, Workers: 4,
		ByCat: map[errmodel.Category]*inject.Agg{errmodel.CatA: a},
	}
	r.Totals = *a
	return r
}

func fakeEntry(tech string) *Entry {
	rep := fakeReport(tech)
	stored := *rep
	stored.Workers = 0
	return &Entry{Report: &stored, Normalized: inject.FormatNormalized(rep)}
}

func counter(reg *obs.Registry, name string) uint64 {
	return reg.Snapshot().Counters[name]
}

// Every key field must reach the fingerprint: two cells differing in any
// output-influencing input must never share an entry.
func TestFingerprintSensitivity(t *testing.T) {
	base := testKey(t, testProgram(t))
	mutations := map[string]func(*CellKey){
		"program":       func(k *CellKey) { k.Program = "other" },
		"program hash":  func(k *CellKey) { k.ProgramHash = "beef" },
		"technique":     func(k *CellKey) { k.Technique = "ECF" },
		"style":         func(k *CellKey) { k.Style = "Jcc" },
		"policy":        func(k *CellKey) { k.Policy = "RET" },
		"samples":       func(k *CellKey) { k.Samples++ },
		"seed":          func(k *CellKey) { k.Seed++ },
		"sample offset": func(k *CellKey) { k.SampleOffset += 10 },
		"ckpt interval": func(k *CellKey) { k.CkptInterval = 0 },
		"backend":       func(k *CellKey) { k.Backend = "step" },
		"max steps":     func(k *CellKey) { k.MaxSteps++ },
	}
	for name, mutate := range mutations {
		k := base
		mutate(&k)
		if k.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
	// Version bumps invalidate without moving the file: same name, new
	// fingerprint, so the stale entry is overwritten in place.
	if got := base.fingerprintAt(EngineVersion+1, TechniqueVersions[base.Technique]); got == base.Fingerprint() {
		t.Error("engine version bump did not change the fingerprint")
	}
	stale := base
	stale.ProgramHash = "beef"
	if stale.fileName() != base.fileName() {
		t.Error("program-hash change moved the cache file (stale entry would be orphaned)")
	}
}

// KeyFor folds spellings that run identically into one cell.
func TestKeyForNormalizes(t *testing.T) {
	p := testProgram(t)
	auto := KeyFor(p, "RCF", "CMOVcc", "ALLBB", 10, 1, 0, -1, comp.BackendAuto, 0)
	explicit := KeyFor(p, "RCF", "CMOVcc", "ALLBB", 10, 1, 0, -1, comp.BackendCompile, inject.DefaultMaxSteps)
	if auto != explicit {
		t.Errorf("auto spelling %+v != explicit spelling %+v", auto, explicit)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	k := testKey(t, testProgram(t))
	e := fakeEntry("RCF")
	got, err := decodeEntry(encodeEntry(e, k.Fingerprint()), k.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
	if got.Normalized != inject.FormatNormalized(got.Report) {
		t.Error("decoded Normalized does not re-render from the decoded report")
	}
}

// A miss computes against a private registry, stores, and the next Run —
// including from a fresh cache over the same directory — hits without
// calling compute.
func TestRunMissThenHit(t *testing.T) {
	dir := t.TempDir()
	k := testKey(t, testProgram(t))
	live := fakeReport("RCF")
	computes := 0
	compute := func(m *obs.Registry) (*inject.Report, error) {
		computes++
		m.Counter("ckpt_recordings_total").Add(1)
		return live, nil
	}

	reg := obs.NewRegistry()
	rep, cached, err := New(dir).Run(k, reg, compute)
	if err != nil {
		t.Fatal(err)
	}
	if cached || computes != 1 {
		t.Fatalf("cold run: cached=%v computes=%d, want false/1", cached, computes)
	}
	if rep.Workers != 4 {
		t.Error("cold run did not return the live report")
	}
	if counter(reg, "graph_cache_misses_total") != 1 || counter(reg, "graph_cells_executed_total") != 1 {
		t.Error("cold run miss accounting wrong")
	}
	// The private registry's counters surfaced in the caller's.
	if counter(reg, "ckpt_recordings_total") != 1 {
		t.Error("compute-side counters were not merged into the live registry")
	}

	// Fresh cache handle on the same directory: the hit comes off disk.
	reg2 := obs.NewRegistry()
	rep2, cached2, err := New(dir).Run(k, reg2, compute)
	if err != nil {
		t.Fatal(err)
	}
	if !cached2 || computes != 1 {
		t.Fatalf("warm run: cached=%v computes=%d, want true/1", cached2, computes)
	}
	if counter(reg2, "graph_cache_hits_total") != 1 {
		t.Error("warm run hit accounting wrong")
	}
	// The cached report is the normalized form: wall clock was not spent.
	if rep2.Workers != 0 || rep2.Elapsed != 0 {
		t.Error("cached report carries wall-clock fields")
	}
	if inject.FormatNormalized(rep2) != inject.FormatNormalized(live) {
		t.Error("cached report renders differently from the live one")
	}
	// The deterministic compute-side counters replay on a hit too.
	if counter(reg2, "ckpt_recordings_total") != 1 {
		t.Error("cached metrics were not merged on the hit")
	}
}

// An entry written under an older engine version is stale: the lookup
// misses (counting it), Run recomputes, and the rewrite heals the file.
func TestEngineVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	k := testKey(t, testProgram(t))
	raw := encodeEntry(fakeEntry("RCF"), k.fingerprintAt(EngineVersion-1, TechniqueVersions[k.Technique]))
	if err := os.WriteFile(filepath.Join(dir, k.fileName()), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	computes := 0
	_, cached, err := New(dir).Run(k, reg, func(*obs.Registry) (*inject.Report, error) {
		computes++
		return fakeReport("RCF"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached || computes != 1 {
		t.Fatalf("stale entry answered: cached=%v computes=%d", cached, computes)
	}
	if counter(reg, "graph_cache_stale_total") != 1 {
		t.Errorf("stale = %d, want 1", counter(reg, "graph_cache_stale_total"))
	}
	if counter(reg, "graph_cache_corrupt_total") != 0 {
		t.Error("stale entry counted as corrupt")
	}
	// The recompute overwrote the stale bytes in place: current version hits.
	if e := New(dir).Lookup(k, nil); e == nil {
		t.Error("recompute did not heal the cache file")
	}
}

// Bumping one technique's version invalidates that technique's cells and
// no others — the incremental re-run the docs walk through.
func TestTechniqueVersionBumpInvalidatesOnlyThatTechnique(t *testing.T) {
	dir := t.TempDir()
	p := testProgram(t)
	rcf := testKey(t, p)
	ecf := rcf
	ecf.Technique = "ECF"

	c := New(dir)
	c.Store(rcf, fakeEntry("RCF"))
	c.Store(ecf, fakeEntry("ECF"))

	old := TechniqueVersions["RCF"]
	TechniqueVersions["RCF"] = old + 1
	defer func() { TechniqueVersions["RCF"] = old }()

	reg := obs.NewRegistry()
	fresh := New(dir)
	if fresh.Lookup(rcf, reg) != nil {
		t.Error("bumped technique's cell still answers")
	}
	if counter(reg, "graph_cache_stale_total") != 1 {
		t.Errorf("stale = %d, want 1", counter(reg, "graph_cache_stale_total"))
	}
	if fresh.Lookup(ecf, reg) == nil {
		t.Error("unbumped technique's cell was invalidated too")
	}
}

// Garbage bytes in the cache file count as corrupt, never error, and the
// recompute rewrites them.
func TestCorruptEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	k := testKey(t, testProgram(t))
	if err := os.WriteFile(filepath.Join(dir, k.fileName()), []byte("not a cell entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, cached, err := New(dir).Run(k, reg, func(*obs.Registry) (*inject.Report, error) {
		return fakeReport("RCF"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("corrupt entry was trusted")
	}
	if counter(reg, "graph_cache_corrupt_total") != 1 {
		t.Errorf("corrupt = %d, want 1", counter(reg, "graph_cache_corrupt_total"))
	}
	if e := New(dir).Lookup(k, nil); e == nil {
		t.Error("recompute did not heal the corrupt file")
	}
}

// Truncated or bit-flipped encodings must decode as corrupt, not stale
// and never as a valid entry.
func TestDecodeRejectsDamage(t *testing.T) {
	k := testKey(t, testProgram(t))
	good := encodeEntry(fakeEntry("RCF"), k.Fingerprint())
	for name, buf := range map[string][]byte{
		"empty":     {},
		"short":     good[:8],
		"truncated": good[:len(good)-3],
		"bad magic": append([]byte("XXXXXXXX"), good[8:]...),
	} {
		if _, err := decodeEntry(buf, k.Fingerprint()); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := decodeEntry(flipped, k.Fingerprint()); err == nil {
		t.Error("bit flip: decoded successfully")
	}
}

// A nil cache is a valid no-op handle everywhere but Run.
func TestNilCache(t *testing.T) {
	var c *Cache
	if c.Lookup(testKey(t, testProgram(t)), nil) != nil {
		t.Error("nil cache answered a lookup")
	}
	c.Store(CellKey{}, fakeEntry("RCF")) // must not panic
	if c.Dir() != "" {
		t.Error("nil cache claims a directory")
	}
	if _, _, err := c.Run(CellKey{}, nil, nil); err == nil {
		t.Error("nil cache Run did not error")
	}
}

// The workers knob must not reach the cell: campaigns run with 1 and 4
// workers share one key and produce byte-identical cache entries.
func TestWorkerCountInvariantCells(t *testing.T) {
	p := testProgram(t)
	var raws [][]byte
	var keys []CellKey
	for _, w := range []int{1, 4} {
		dir := t.TempDir()
		reg := obs.NewRegistry()
		k := testKey(t, p)
		_, cached, err := New(dir).Run(k, reg, func(m *obs.Registry) (*inject.Report, error) {
			cfg := core.Config{Technique: "RCF", Style: "CMOVcc", Policy: "ALLBB"}
			cfg.Workers, cfg.CkptInterval, cfg.Metrics = w, -1, m
			return core.Inject(p, cfg, testSamples, testSeed, w)
		})
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatal("cold campaign claimed a cache hit")
		}
		raw, err := os.ReadFile(filepath.Join(dir, k.fileName()))
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw)
		keys = append(keys, k)
	}
	if keys[0] != keys[1] {
		t.Errorf("worker counts produced distinct keys:\n %+v\n %+v", keys[0], keys[1])
	}
	if string(raws[0]) != string(raws[1]) {
		t.Error("worker counts produced byte-different cache entries")
	}
}
