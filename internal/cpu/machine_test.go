package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunSum(t *testing.T) {
	p := mustAssemble(t, `
main:
    movi eax, 0
    movi ecx, 10
loop:
    add eax, ecx
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
`)
	m := New()
	stop := m.RunProgram(p, 1_000_000)
	if stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if len(m.Output) != 1 || m.Output[0] != 55 {
		t.Errorf("output = %v, want [55]", m.Output)
	}
	if m.Steps == 0 || m.Cycles == 0 {
		t.Error("no accounting")
	}
	// 10 loop iterations, one conditional branch each.
	if m.DirectBranches != 10 {
		t.Errorf("direct branches = %d, want 10", m.DirectBranches)
	}
}

func TestCallRetAndStack(t *testing.T) {
	p := mustAssemble(t, `
.data 16
main:
    movi eax, 7
    call double
    call double
    out eax
    halt
double:
    add eax, eax
    ret
`)
	m := New()
	stop := m.RunProgram(p, 10_000)
	if stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if m.Output[0] != 28 {
		t.Errorf("output = %v, want [28]", m.Output)
	}
	// Stack pointer restored.
	if m.Regs[isa.ESP] != int32(m.Mem.Size()) {
		t.Errorf("esp = %d, want %d", m.Regs[isa.ESP], m.Mem.Size())
	}
}

func TestIndirectCall(t *testing.T) {
	p := mustAssemble(t, `
main:
    movi ecx, =fn
    callr ecx
    out eax
    halt
fn:
    movi eax, 123
    ret
`)
	m := New()
	if stop := m.RunProgram(p, 10_000); stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if m.Output[0] != 123 {
		t.Errorf("output = %v", m.Output)
	}
}

func TestIndirectJumpTable(t *testing.T) {
	p := mustAssemble(t, `
main:
    movi ecx, =case1
    jmpr ecx
case0:
    movi eax, 0
    jmp done
case1:
    movi eax, 1
    jmp done
done:
    out eax
    halt
`)
	m := New()
	if stop := m.RunProgram(p, 10_000); stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if m.Output[0] != 1 {
		t.Errorf("output = %v", m.Output)
	}
}

func TestDivZeroTrap(t *testing.T) {
	p := mustAssemble(t, `
    movi eax, 5
    movi ebx, 0
    div eax, ebx
    halt
`)
	m := New()
	if stop := m.RunProgram(p, 100); stop.Reason != StopDivZero {
		t.Fatalf("stop = %v, want div-zero", stop)
	}
}

func TestBadFetchTrap(t *testing.T) {
	// Fall off the end of the code region: hardware protection catches it.
	p := mustAssemble(t, "nop\nnop\nnop\n")
	m := New()
	stop := m.RunProgram(p, 100)
	if stop.Reason != StopBadFetch {
		t.Fatalf("stop = %v, want bad-fetch", stop)
	}
	if !stop.Reason.IsHardwareTrap() {
		t.Error("bad-fetch should be a hardware trap")
	}
	if StopHalt.IsHardwareTrap() || StopReport.IsHardwareTrap() {
		t.Error("halt/report are not hardware traps")
	}
}

func TestBadMemoryTrap(t *testing.T) {
	p := mustAssemble(t, `
    movi eax, 1
    shli eax, 29
    load ebx, [eax]
    halt
`)
	m := New()
	if stop := m.RunProgram(p, 100); stop.Reason != StopBadMemory {
		t.Fatalf("stop = %v, want bad-memory", stop)
	}
}

func TestOutOfSteps(t *testing.T) {
	p := mustAssemble(t, "spin: jmp spin\n")
	m := New()
	if stop := m.RunProgram(p, 1000); stop.Reason != StopOutOfSteps {
		t.Fatalf("stop = %v, want out-of-steps", stop)
	}
}

func TestInvalidInstr(t *testing.T) {
	p := &isa.Program{Name: "inv", Code: []isa.Instr{{Op: isa.Op(200)}}}
	m := New()
	if stop := m.RunProgram(p, 10); stop.Reason != StopInvalidInstr {
		t.Fatalf("stop = %v, want invalid-instr", stop)
	}
}

func TestFlagsSemantics(t *testing.T) {
	p := mustAssemble(t, `
    movi eax, 5
    cmpi eax, 5
    jeq eq_ok
    halt
eq_ok:
    movi ebx, -3
    cmpi ebx, 2
    jlt lt_ok
    halt
lt_ok:
    ; unsigned: -3 (0xFFFFFFFD) is above 2
    ja  a_ok
    halt
a_ok:
    movi eax, 1
    out eax
    halt
`)
	m := New()
	stop := m.RunProgram(p, 1000)
	if stop.Reason != StopHalt || len(m.Output) != 1 || m.Output[0] != 1 {
		t.Fatalf("stop = %v output = %v", stop, m.Output)
	}
}

func TestLeaPreservesFlags(t *testing.T) {
	// The entire instrumentation strategy depends on lea not clobbering
	// the flags between the compare and the branch.
	p := mustAssemble(t, `
    movi eax, 1
    cmpi eax, 2
    lea ebx, [eax+100]
    jlt ok
    halt
ok:
    out ebx
    halt
`)
	m := New()
	stop := m.RunProgram(p, 1000)
	if stop.Reason != StopHalt || len(m.Output) != 1 || m.Output[0] != 101 {
		t.Fatalf("stop = %v output = %v", stop, m.Output)
	}
}

func TestCmov(t *testing.T) {
	p := mustAssemble(t, `
    movi eax, 1
    movi ebx, 42
    movi ecx, 99
    cmpi eax, 1
    cmoveq ebx, ecx  ; taken: ebx = 99
    cmovne ecx, eax  ; not taken: ecx stays
    out ebx
    out ecx
    halt
`)
	m := New()
	if stop := m.RunProgram(p, 100); stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if m.Output[0] != 99 || m.Output[1] != 99 {
		t.Errorf("output = %v, want [99 99]", m.Output)
	}
}

func TestJrz(t *testing.T) {
	p := mustAssemble(t, `
    movi ecx, 0
    jrz ecx, zero
    halt
zero:
    movi ecx, 5
    jrz ecx, bad
    out ecx
    halt
bad:
    halt
`)
	m := New()
	if stop := m.RunProgram(p, 100); stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if len(m.Output) != 1 || m.Output[0] != 5 {
		t.Errorf("output = %v", m.Output)
	}
}

func TestFloatOps(t *testing.T) {
	// 3.0f = 0x40400000, 2.0f = 0x40000000; 3*2=6.0f = 0x40C00000.
	p := mustAssemble(t, `
    movi eax, 0x40400000
    movi ebx, 0x40000000
    fmul eax, ebx
    out eax
    fdiv eax, ecx    ; divide by +0 -> +Inf
    out eax
    halt
`)
	m := New()
	if stop := m.RunProgram(p, 100); stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if uint32(m.Output[0]) != 0x40C00000 {
		t.Errorf("fmul = %#x", uint32(m.Output[0]))
	}
	if uint32(m.Output[1]) != 0x7F800000 {
		t.Errorf("fdiv by zero = %#x, want +Inf", uint32(m.Output[1]))
	}
}

func TestBranchHook(t *testing.T) {
	p := mustAssemble(t, `
    movi ecx, 3
loop:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    halt
`)
	m := New()
	var events []BranchEvent
	m.BranchHook = func(ev BranchEvent) { events = append(events, ev) }
	if stop := m.RunProgram(p, 1000); stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if !events[0].Taken || !events[1].Taken || events[2].Taken {
		t.Errorf("taken pattern = %v %v %v", events[0].Taken, events[1].Taken, events[2].Taken)
	}
	if events[0].Target != 1 {
		t.Errorf("target = %#x", events[0].Target)
	}
}

func TestOffsetBitFault(t *testing.T) {
	p := mustAssemble(t, `
    movi ecx, 2
loop:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out ecx
    halt
`)
	// Flip bit 4 of the first execution of the jgt (branch index 0):
	// target 1 becomes 1 ^ ... -> wild.
	m := New()
	m.Fault = &Fault{BranchIndex: 0, Kind: FaultOffsetBit, Bit: 20}
	stop := m.RunProgram(p, 10_000)
	if !m.Fault.Fired {
		t.Fatal("fault did not fire")
	}
	if stop.Reason != StopBadFetch {
		t.Fatalf("stop = %v, want bad-fetch (offset bit 20 leaves tiny code region)", stop)
	}
	if m.Fault.CleanTarget == m.Fault.FaultTarget {
		t.Error("fault did not change target")
	}
	if !m.Fault.CleanTaken {
		t.Error("clean direction should be taken")
	}
}

func TestFlagBitFaultFlipsDirection(t *testing.T) {
	p := mustAssemble(t, `
    movi eax, 1
    cmpi eax, 1
    jeq good
    out eax
    halt
good:
    movi ebx, 7
    out ebx
    halt
`)
	// Clean run: jeq taken, outputs 7. Fault: flip the Z flag (bit 2).
	m := New()
	m.Fault = &Fault{BranchIndex: 0, Kind: FaultFlagBit, Bit: 2}
	stop := m.RunProgram(p, 1000)
	if stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if !m.Fault.Fired || m.Fault.FaultTaken == m.Fault.CleanTaken {
		t.Fatalf("fault = %+v, want direction flip", m.Fault)
	}
	if len(m.Output) != 1 || m.Output[0] != 1 {
		t.Errorf("output = %v, want mistaken-branch output [1]", m.Output)
	}
}

func TestFaultOnlyFiresOnce(t *testing.T) {
	p := mustAssemble(t, `
    movi ecx, 5
loop:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    halt
`)
	m := New()
	// Offset bit 0 on branch 1: target 1 ^ ... the offset is -3
	// (0xFFFFFFFD); bit 0 flip gives -4 -> target 0 (begin of program).
	m.Fault = &Fault{BranchIndex: 1, Kind: FaultOffsetBit, Bit: 0}
	stop := m.RunProgram(p, 10_000)
	if stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	// Jumping to 0 re-runs movi ecx,5 -> loop runs again cleanly.
	if m.Fault.FaultTarget != 0 {
		t.Errorf("fault target = %#x, want 0", m.Fault.FaultTarget)
	}
	// Two branches before the fault restarts the program, then five more
	// in the clean re-run of the loop.
	if got := m.DirectBranches; got != 7 {
		t.Errorf("direct branches = %d, want 7", got)
	}
}

func TestResetClearsState(t *testing.T) {
	p := mustAssemble(t, "movi eax, 9\nout eax\nhalt\n")
	m := New()
	m.RunProgram(p, 100)
	first := m.Cycles
	m.RunProgram(p, 100)
	if m.Cycles != first {
		t.Errorf("cycles after reset = %d, want %d", m.Cycles, first)
	}
	if len(m.Output) != 1 {
		t.Errorf("output not reset: %v", m.Output)
	}
}

func TestCostModelOrdering(t *testing.T) {
	c := DefaultCosts()
	if c.Of(isa.OpLea) != c.Of(isa.OpMovRR) {
		t.Error("lea and mov should cost the same (paper's substitution argument)")
	}
	if c.Of(isa.OpCmov) <= c.Of(isa.OpJcc) {
		t.Error("cmov must cost more than a branch (Figure 14 gap)")
	}
	if c.Of(isa.OpDiv) < 10*c.Of(isa.OpAdd) {
		t.Error("div must be prohibitive (ECCA rejection argument)")
	}
	if c.Of(isa.OpFMul) <= c.Of(isa.OpMul) {
		t.Error("fp ops must be longer-latency than int ops")
	}
	if c.Of(isa.Op(255)) != 1 {
		t.Error("unknown op cost should default to 1")
	}
}

func TestStopStrings(t *testing.T) {
	s := Stop{Reason: StopReport, IP: 0x42, Detail: "x"}
	if s.String() == "" || StopReason(99).String() == "" {
		t.Error("empty stop strings")
	}
	if StopBadFetch.String() != "bad-fetch" {
		t.Errorf("bad-fetch name = %q", StopBadFetch.String())
	}
}
