package cpu

import (
	"fmt"

	"repro/internal/obs"
)

// TraceRunOutcome emits the machine-level events of one completed run:
// fault-fired (reconstructed from the Fault's recorded firing point) and
// check-fail (a run that stopped at OpReport). Emission happens after the
// run rather than inside Step so the interpreter's hot loop carries no
// tracing code — with tracing disabled the machine is byte-for-byte the
// uninstrumented interpreter.
func TraceRunOutcome(tr *obs.Tracer, m *Machine, stop Stop) {
	if tr == nil {
		return
	}
	if f := m.Fault; f != nil && f.Fired {
		detail := fmt.Sprintf("%s bit %d", f.Kind, f.Bit)
		if f.Kind == FaultRegBit {
			detail = fmt.Sprintf("reg-bit r%d bit %d", f.Reg, f.Bit)
		}
		tr.Emit(obs.Event{Kind: obs.EvFaultFired, Step: f.FiredStep, Addr: f.FaultIP, Detail: detail})
	}
	if stop.Reason == StopReport {
		tr.Emit(obs.Event{Kind: obs.EvCheckFail, Step: m.Steps, Addr: stop.IP})
	}
}
