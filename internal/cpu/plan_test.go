package cpu

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

// runBoth executes the same program twice — reference Step loop and
// predecoded RunPlan — and requires bit-identical final machine state.
func runBoth(t *testing.T, p *isa.Program, maxSteps uint64, fault *Fault) (*Machine, Stop) {
	t.Helper()
	ref := New()
	ref.Reset(p)
	if fault != nil {
		f := *fault
		ref.Fault = &f
	}
	refStop := ref.Run(p.Code, maxSteps)

	m := New()
	m.Reset(p)
	if fault != nil {
		f := *fault
		m.Fault = &f
	}
	plan := NewPlan(p.Code, m.Costs)
	stop := m.RunPlan(&plan, maxSteps)

	if stop != refStop {
		t.Fatalf("stop = %v, reference = %v", stop, refStop)
	}
	if ref.Regs != m.Regs || ref.Flags != m.Flags || ref.IP != m.IP ||
		ref.Steps != m.Steps || ref.Cycles != m.Cycles ||
		ref.DirectBranches != m.DirectBranches ||
		ref.IndirectBranches != m.IndirectBranches ||
		ref.SigChecks != m.SigChecks {
		t.Fatalf("state diverged:\nref  %+v\nplan %+v", ref.CaptureState(), m.CaptureState())
	}
	if !reflect.DeepEqual(ref.Output, m.Output) {
		t.Fatalf("output diverged: ref %v plan %v", ref.Output, m.Output)
	}
	if (ref.Fault == nil) != (m.Fault == nil) {
		t.Fatal("fault presence diverged")
	}
	if ref.Fault != nil && *ref.Fault != *m.Fault {
		t.Fatalf("fault record diverged:\nref  %+v\nplan %+v", *ref.Fault, *m.Fault)
	}
	return m, stop
}

const planWorkload = `
main:
    movi eax, 0
    movi ecx, 12
    movi esi, 3
loop:
    add eax, ecx
    push ecx
    call double
    pop ecx
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    fadd edx, esi
    cmoveq ebx, eax
    out eax
    halt
double:
    movi ebx, 2
    mul ebx, ebx
    out ebx
    ret
`

func planProgram(t *testing.T) *isa.Program {
	t.Helper()
	return mustAssemble(t, planWorkload)
}

func TestRunPlanMatchesRun(t *testing.T) {
	p := planProgram(t)
	_, stop := runBoth(t, p, 1_000_000, nil)
	if stop.Reason != StopHalt {
		t.Fatalf("stop = %v, want halt", stop)
	}
}

func TestRunPlanOutOfSteps(t *testing.T) {
	p := planProgram(t)
	for _, budget := range []uint64{0, 1, 2, 3, 5, 7, 11, 17, 23, 40} {
		runBoth(t, p, budget, nil)
	}
}

func TestRunPlanBranchFaults(t *testing.T) {
	p := planProgram(t)
	for _, kind := range []FaultKind{FaultOffsetBit, FaultFlagBit} {
		for idx := uint64(0); idx < 30; idx++ {
			for _, bit := range []uint{0, 1, 3, 7, 31} {
				runBoth(t, p, 10_000, &Fault{Kind: kind, BranchIndex: idx, Bit: bit})
			}
		}
	}
}

func TestRunPlanRegFaults(t *testing.T) {
	p := planProgram(t)
	for step := uint64(0); step < 120; step += 7 {
		for _, reg := range []isa.Reg{isa.EAX, isa.ECX, isa.ESP} {
			runBoth(t, p, 10_000, &Fault{Kind: FaultRegBit, StepIndex: step, Reg: reg, Bit: 5})
		}
	}
}

// Resuming a plan run in chunks must agree with one uninterrupted run, the
// way checkpoint tails re-enter the interpreter mid-program.
func TestRunPlanChunkedResume(t *testing.T) {
	p := planProgram(t)
	ref := New()
	ref.Reset(p)
	refStop := ref.Run(p.Code, 1_000_000)

	m := New()
	m.Reset(p)
	plan := NewPlan(p.Code, m.Costs)
	var stop Stop
	for {
		stop = m.RunPlan(&plan, m.Steps+5)
		if stop.Reason != StopOutOfSteps {
			break
		}
	}
	if stop != refStop {
		t.Fatalf("stop = %v, reference = %v", stop, refStop)
	}
	if ref.CaptureState() != m.CaptureState() {
		t.Fatalf("state diverged:\nref  %+v\nplan %+v", ref.CaptureState(), m.CaptureState())
	}
}

func TestPlanSyncAndRedecode(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.OpNop},
		{Op: isa.OpTrapOut},
	}
	plan := NewPlan(code, nil)
	if plan.Len() != 2 || !plan.IsTerminator(1) || plan.IsDirectBranch(1) {
		t.Fatalf("initial decode wrong: len=%d", plan.Len())
	}

	clone := plan.Clone()
	// Patch the trapout to a jmp (the DBT's chain patch) in the clone only.
	code2 := append([]isa.Instr(nil), code...)
	code2[1] = isa.Instr{Op: isa.OpJmp, Imm: -2}
	clone.Sync(code2)
	clone.Redecode(1)
	if !clone.IsDirectBranch(1) {
		t.Error("clone did not redecode the patched slot")
	}
	if plan.IsDirectBranch(1) {
		t.Error("redecoding a clone mutated the shared metadata")
	}

	// Growing after Clone must also leave the parent untouched.
	code3 := append(append([]isa.Instr(nil), code...), isa.Instr{Op: isa.OpHalt})
	grown := plan.Clone()
	grown.Sync(code3)
	if grown.Len() != 3 || !grown.IsTerminator(2) {
		t.Errorf("grown clone len=%d", grown.Len())
	}
	if plan.Len() != 2 {
		t.Errorf("parent len changed to %d", plan.Len())
	}

	// Shrinking (cache invalidation) rebuilds.
	shrunk := plan.Clone()
	shrunk.Sync(code[:1])
	if shrunk.Len() != 1 || shrunk.IsTerminator(1) {
		t.Errorf("shrunk len=%d", shrunk.Len())
	}
}

// The hot loop must not allocate: one fixed-size span over a self-loop,
// measured per interpreted step.
func TestRunSpanZeroAllocs(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.OpAddI, RD: isa.EAX, Imm: 1},
		{Op: isa.OpJmp, Imm: -2},
	}
	m := New()
	m.Mem = nil // the loop touches no memory
	plan := NewPlan(code, m.Costs)
	allocs := testing.AllocsPerRun(100, func() {
		stop := m.RunPlan(&plan, m.Steps+1024)
		if stop.Reason != StopOutOfSteps {
			t.Fatalf("stop = %v", stop)
		}
	})
	if allocs != 0 {
		t.Fatalf("RunPlan allocates %.1f times per 1024-step span, want 0", allocs)
	}
}
