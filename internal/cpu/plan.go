package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// opMeta is the predecoded metadata of one instruction slot: the cost-model
// charge folded in at decode time plus branch/terminator classification, so
// the span interpreter's common path needs neither the cost table lookup
// nor opcode predicates.
type opMeta struct {
	cost uint32
	kind uint8
}

// opMeta.kind bits.
const (
	metaDirectBranch uint8 = 1 << iota
	metaTerminator
)

// Plan is a predecoded execution plan over a code slice: a metadata array
// parallel to the instructions, decoded once instead of per step. Machine.
// RunPlan drives a fault-free span loop over it, removing the per-step
// fault nil-check and cost-table lookup from the interpreter's common path.
//
// Plans follow the code they cover: Sync re-aliases the (possibly
// reallocated, possibly grown) slice and decodes only the appended suffix;
// Redecode refreshes one slot after an in-place opcode patch (the DBT's
// chain patching). Immediate-only patches never need a Redecode — the
// metadata depends only on the opcode.
//
// Clone shares the metadata array read-only between translator clones and
// copies it on the first mutation, so per-sample snapshot clones pay
// nothing for predecode.
type Plan struct {
	code   []isa.Instr
	meta   []opMeta
	costs  *CostModel
	shared bool
}

// NewPlan decodes code once against the cost model (nil selects
// DefaultCosts).
func NewPlan(code []isa.Instr, costs *CostModel) Plan {
	if costs == nil {
		costs = DefaultCosts()
	}
	p := Plan{costs: costs}
	p.Sync(code)
	return p
}

// Code returns the code slice the plan currently covers.
func (p *Plan) Code() []isa.Instr { return p.code }

// Len returns the number of predecoded slots.
func (p *Plan) Len() int { return len(p.meta) }

// IsDirectBranch reports whether the predecoded slot at addr is a direct
// branch (jmp/jcc/jrz/call).
func (p *Plan) IsDirectBranch(addr uint32) bool {
	return addr < uint32(len(p.meta)) && p.meta[addr].kind&metaDirectBranch != 0
}

// IsTerminator reports whether the predecoded slot at addr ends a basic
// block.
func (p *Plan) IsTerminator(addr uint32) bool {
	return addr < uint32(len(p.meta)) && p.meta[addr].kind&metaTerminator != 0
}

func metaFor(costs *CostModel, in isa.Instr) opMeta {
	om := opMeta{cost: costs.Of(in.Op)}
	if in.Op.IsDirectBranch() {
		om.kind |= metaDirectBranch
	}
	if in.Op.IsTerminator() {
		om.kind |= metaTerminator
	}
	return om
}

// own materializes a private metadata array with the given capacity; a
// no-op when the plan already owns its metadata and has room.
func (p *Plan) own(capacity int) {
	if !p.shared && cap(p.meta) >= len(p.meta) {
		return
	}
	meta := make([]opMeta, len(p.meta), capacity)
	copy(meta, p.meta)
	p.meta = meta
	p.shared = false
}

// Sync re-aliases the plan onto code and decodes any appended suffix. A
// shorter slice (cache invalidation) rebuilds from scratch.
func (p *Plan) Sync(code []isa.Instr) {
	p.code = code
	if len(code) < len(p.meta) {
		if p.shared {
			p.meta, p.shared = nil, false
		} else {
			p.meta = p.meta[:0]
		}
	}
	if len(code) == len(p.meta) {
		return
	}
	if p.shared {
		p.own(len(code))
	}
	for a := len(p.meta); a < len(code); a++ {
		p.meta = append(p.meta, metaFor(p.costs, code[a]))
	}
}

// Redecode refreshes the metadata of one slot after its instruction was
// patched in place (copy-on-write when the metadata is shared).
func (p *Plan) Redecode(addr uint32) {
	if addr >= uint32(len(p.meta)) {
		return
	}
	if p.shared {
		p.own(len(p.meta))
	}
	p.meta[addr] = metaFor(p.costs, p.code[addr])
}

// Clone returns a plan sharing this plan's metadata read-only; the clone
// copies it on its first Sync growth or Redecode. The receiver must stay
// immutable for as long as clones are live (the DBT snapshot guarantees
// this: a snapshot's plan is built once at capture and never mutated).
func (p *Plan) Clone() Plan {
	n := len(p.meta)
	return Plan{code: p.code, meta: p.meta[:n:n], costs: p.costs, shared: true}
}

// RunPlan executes instructions from the plan's code starting at the
// current IP until a terminator, trap, or the step budget is exhausted. It
// is step-for-step equivalent to Run over the same code — same state, same
// counters, same Stop — but dispatches through the predecoded span loop:
// pending register faults bound the span at their firing step and fire
// through the reference Step path, so the span itself never tests for
// them.
func (m *Machine) RunPlan(p *Plan, maxSteps uint64) Stop {
	for {
		if f := m.Fault; f != nil && !f.Fired && f.Kind == FaultRegBit {
			if m.Steps < f.StepIndex {
				bound := f.StepIndex
				if bound > maxSteps {
					bound = maxSteps
				}
				if stop, done := m.runSpan(p, bound); done {
					return stop
				}
			}
			if m.Steps >= maxSteps {
				return Stop{Reason: StopOutOfSteps, IP: m.IP}
			}
			// At the firing boundary: one reference Step applies the flip
			// with the exact semantics (and recording) of the seed path.
			if stop, done := m.Step(p.code); done {
				return stop
			}
			continue
		}
		if stop, done := m.runSpan(p, maxSteps); done {
			return stop
		}
		return Stop{Reason: StopOutOfSteps, IP: m.IP}
	}
}

// Deferred flag sources: most ALU flag results are overwritten before any
// instruction reads them, so the span loop records (operation, operands)
// instead of computing flags eagerly and materializes only at a read (Jcc,
// CMOVcc, PUSHF), at the slow branch path, and at every span exit — the
// same dead-flag observation the liveness pruner exploits, applied to the
// interpreter itself. flagsLive means the flags local is authoritative.
const (
	flagsLive uint8 = iota
	flagsAdd
	flagsSub
	flagsLogic
)

// matFlags materializes a deferred flag source (identity for flagsLive).
func matFlags(fk uint8, fa, fb int32, f isa.Flags) isa.Flags {
	switch fk {
	case flagsAdd:
		return isa.AddFlags(fa, fb)
	case flagsSub:
		return isa.SubFlags(fa, fb)
	case flagsLogic:
		return isa.LogicFlags(fa)
	}
	return f
}

// spanExit flushes span-local state back to the machine on a stop path.
func (m *Machine) spanExit(ip uint32, steps, cycles uint64, fk uint8, fa, fb int32, flags isa.Flags) {
	m.IP, m.Steps, m.Cycles = ip, steps, cycles
	m.Flags = matFlags(fk, fa, fb, flags)
}

// runSpan is the predecoded hot loop: it executes until bound steps have
// been taken (returning done=false) or execution stops (done=true). The
// machine's hot state (ip, step and cycle counters, flags) lives in locals,
// flushed back on every exit path and around the slow branch path; flag
// writes are deferred (see matFlags) so dead flag results cost nothing. The
// caller guarantees no unfired register fault can fire inside the span;
// unfired branch faults route direct branches through the reference
// directBranch until they fire.
func (m *Machine) runSpan(p *Plan, bound uint64) (Stop, bool) {
	code := p.code
	meta := p.meta
	if len(code) > len(meta) {
		// Sync keeps the arrays equal-length; clamp defensively so the meta
		// accesses below stay in bounds (and bounds-check free).
		code = code[:len(meta)]
	}
	r := &m.Regs
	ip := m.IP
	steps := m.Steps
	cycles := m.Cycles
	flags := m.Flags
	fk := flagsLive
	var fa, fb int32

	pending := m.Fault != nil && !m.Fault.Fired && m.Fault.Kind != FaultRegBit
	hot := m.BranchHook == nil && !pending

	for steps < bound {
		if ip >= uint32(len(code)) {
			m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
			return Stop{Reason: StopBadFetch, IP: ip}, true
		}
		in := code[ip]
		steps++
		cycles += uint64(meta[ip].cost)
		next := ip + 1

		if meta[ip].kind&metaDirectBranch != 0 {
			if hot {
				m.DirectBranches++
				if in.Op == isa.OpJrz {
					m.SigChecks++
				}
				taken := true
				switch in.Op {
				case isa.OpJcc:
					if fk != flagsLive {
						flags = matFlags(fk, fa, fb, flags)
						fk = flagsLive
					}
					taken = in.Cond().Eval(flags)
				case isa.OpJrz:
					taken = r[in.RS1] == 0
				}
				if taken {
					next = ip + 1 + uint32(in.Imm)
				}
			} else {
				// Flush so directBranch sees the exact machine state the
				// reference path would (FiredStep reads Steps, the flag
				// fault mutates Flags), then reload and re-test: once the
				// fault fires, later branches take the fast path.
				if fk != flagsLive {
					flags = matFlags(fk, fa, fb, flags)
					fk = flagsLive
				}
				m.IP, m.Steps, m.Cycles, m.Flags = ip, steps, cycles, flags
				next = m.directBranch(ip, in)
				flags = m.Flags
				pending = m.Fault != nil && !m.Fault.Fired && m.Fault.Kind != FaultRegBit
				hot = m.BranchHook == nil && !pending
			}
			if in.Op == isa.OpCall && next != ip+1 {
				r[isa.ESP]--
				if err := m.Mem.Store(uint32(r[isa.ESP]), int32(ip+1)); err != nil {
					m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
					return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
				}
			}
			ip = next
			continue
		}

		switch in.Op {
		case isa.OpNop:
		case isa.OpHalt:
			m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
			return Stop{Reason: StopHalt, IP: ip}, true
		case isa.OpReport:
			m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
			return Stop{Reason: StopReport, IP: ip}, true
		case isa.OpTrapOut:
			m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
			return Stop{Reason: StopTrapOut, IP: ip}, true

		case isa.OpMovRI:
			r[in.RD] = in.Imm
		case isa.OpMovRR:
			r[in.RD] = r[in.RS1]
		case isa.OpLea:
			r[in.RD] = r[in.RS1] + in.Imm
		case isa.OpLea3:
			r[in.RD] = r[in.RS1] + r[in.RS2] + in.Imm
		case isa.OpXor3:
			r[in.RD] = r[in.RS1] ^ r[in.RS2] ^ in.Imm
		case isa.OpPushF:
			if fk != flagsLive {
				flags = matFlags(fk, fa, fb, flags)
				fk = flagsLive
			}
			r[isa.ESP]--
			if err := m.Mem.Store(uint32(r[isa.ESP]), int32(flags)); err != nil {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
		case isa.OpPopF:
			v, err := m.Mem.Load(uint32(r[isa.ESP]))
			if err != nil {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
			r[isa.ESP]++
			flags = isa.Flags(v) & isa.FlagMask
			fk = flagsLive

		case isa.OpLoad:
			v, err := m.Mem.Load(uint32(r[in.RS1] + in.Imm))
			if err != nil {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
			r[in.RD] = v
		case isa.OpStore:
			if err := m.Mem.Store(uint32(r[in.RS1]+in.Imm), r[in.RS2]); err != nil {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
		case isa.OpPush:
			r[isa.ESP]--
			if err := m.Mem.Store(uint32(r[isa.ESP]), r[in.RS1]); err != nil {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
		case isa.OpPop:
			v, err := m.Mem.Load(uint32(r[isa.ESP]))
			if err != nil {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
			r[in.RD] = v
			r[isa.ESP]++

		case isa.OpAdd:
			a, b := r[in.RD], r[in.RS1]
			r[in.RD] = a + b
			fk, fa, fb = flagsAdd, a, b
		case isa.OpAddI:
			a := r[in.RD]
			r[in.RD] = a + in.Imm
			fk, fa, fb = flagsAdd, a, in.Imm
		case isa.OpSub:
			a, b := r[in.RD], r[in.RS1]
			r[in.RD] = a - b
			fk, fa, fb = flagsSub, a, b
		case isa.OpSubI:
			a := r[in.RD]
			r[in.RD] = a - in.Imm
			fk, fa, fb = flagsSub, a, in.Imm
		case isa.OpAnd:
			r[in.RD] &= r[in.RS1]
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpAndI:
			r[in.RD] &= in.Imm
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpOr:
			r[in.RD] |= r[in.RS1]
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpOrI:
			r[in.RD] |= in.Imm
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpXor:
			r[in.RD] ^= r[in.RS1]
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpXorI:
			r[in.RD] ^= in.Imm
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpShl:
			r[in.RD] = int32(uint32(r[in.RD]) << (uint32(r[in.RS1]) & 31))
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpShlI:
			r[in.RD] = int32(uint32(r[in.RD]) << (uint32(in.Imm) & 31))
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpShr:
			r[in.RD] = int32(uint32(r[in.RD]) >> (uint32(r[in.RS1]) & 31))
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpShrI:
			r[in.RD] = int32(uint32(r[in.RD]) >> (uint32(in.Imm) & 31))
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpMul:
			r[in.RD] *= r[in.RS1]
			fk, fa = flagsLogic, r[in.RD]
		case isa.OpDiv:
			if r[in.RS1] == 0 {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopDivZero, IP: ip}, true
			}
			r[in.RD] /= r[in.RS1]
			fk, fa = flagsLogic, r[in.RD]

		case isa.OpCmp:
			fk, fa, fb = flagsSub, r[in.RD], r[in.RS1]
		case isa.OpCmpI:
			fk, fa, fb = flagsSub, r[in.RD], in.Imm
		case isa.OpTest:
			fk, fa = flagsLogic, r[in.RD]&r[in.RS1]

		case isa.OpFAdd:
			r[in.RD] = fop(r[in.RD], r[in.RS1], '+')
		case isa.OpFSub:
			r[in.RD] = fop(r[in.RD], r[in.RS1], '-')
		case isa.OpFMul:
			r[in.RD] = fop(r[in.RD], r[in.RS1], '*')
		case isa.OpFDiv:
			r[in.RD] = fop(r[in.RD], r[in.RS1], '/')

		case isa.OpRet:
			v, err := m.Mem.Load(uint32(r[isa.ESP]))
			if err != nil {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
			r[isa.ESP]++
			next = uint32(v)
			m.IndirectBranches++
		case isa.OpJmpR:
			next = uint32(r[in.RS1])
			m.IndirectBranches++
		case isa.OpCallR:
			r[isa.ESP]--
			if err := m.Mem.Store(uint32(r[isa.ESP]), int32(ip+1)); err != nil {
				m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
			next = uint32(r[in.RS1])
			m.IndirectBranches++

		case isa.OpCmov:
			if fk != flagsLive {
				flags = matFlags(fk, fa, fb, flags)
				fk = flagsLive
			}
			if in.CmovCond().Eval(flags) {
				r[in.RD] = r[in.RS1]
			}
		case isa.OpOut:
			m.Output = append(m.Output, r[in.RS1])

		default:
			m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
			return Stop{Reason: StopInvalidInstr, IP: ip, Detail: fmt.Sprintf("opcode %d", uint8(in.Op))}, true
		}

		ip = next
	}
	m.spanExit(ip, steps, cycles, fk, fa, fb, flags)
	return Stop{}, false
}
