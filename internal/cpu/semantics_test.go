package cpu

import (
	"testing"

	"repro/internal/isa"
)

// runSnippet executes a hand-built instruction sequence on a fresh machine
// with a small memory, returning the machine for inspection.
func runSnippet(t *testing.T, code []isa.Instr, maxSteps uint64) (*Machine, Stop) {
	t.Helper()
	p := &isa.Program{Name: "snippet", Code: code, DataWords: 64, Target: true}
	m := New()
	m.Reset(p)
	stop := m.Run(code, maxSteps)
	return m, stop
}

func ins(op isa.Op, rd, rs1, rs2 isa.Reg, imm int32) isa.Instr {
	return isa.Instr{Op: op, RD: rd, RS1: rs1, RS2: rs2, Imm: imm}
}

// TestOpcodeSemanticsTable exercises every ALU/data opcode with concrete
// values and checks both results and flags.
func TestOpcodeSemanticsTable(t *testing.T) {
	const (
		A = isa.EAX
		B = isa.EBX
		C = isa.ECX
	)
	cases := []struct {
		name  string
		setup []isa.Instr
		reg   isa.Reg
		want  int32
	}{
		{"mov-rr", []isa.Instr{ins(isa.OpMovRI, B, 0, 0, 7), ins(isa.OpMovRR, A, B, 0, 0)}, A, 7},
		{"add", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 5), ins(isa.OpMovRI, B, 0, 0, 3), ins(isa.OpAdd, A, B, 0, 0)}, A, 8},
		{"sub", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 5), ins(isa.OpMovRI, B, 0, 0, 3), ins(isa.OpSub, A, B, 0, 0)}, A, 2},
		{"and", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 0b1100), ins(isa.OpMovRI, B, 0, 0, 0b1010), ins(isa.OpAnd, A, B, 0, 0)}, A, 0b1000},
		{"andi", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 0xFF), ins(isa.OpAndI, A, 0, 0, 0x0F)}, A, 0x0F},
		{"or", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 0b0100), ins(isa.OpMovRI, B, 0, 0, 0b0010), ins(isa.OpOr, A, B, 0, 0)}, A, 0b0110},
		{"ori", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 1), ins(isa.OpOrI, A, 0, 0, 8)}, A, 9},
		{"xor", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 0b0110), ins(isa.OpMovRI, B, 0, 0, 0b0011), ins(isa.OpXor, A, B, 0, 0)}, A, 0b0101},
		{"shl", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 3), ins(isa.OpMovRI, B, 0, 0, 2), ins(isa.OpShl, A, B, 0, 0)}, A, 12},
		{"shr", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 12), ins(isa.OpMovRI, B, 0, 0, 2), ins(isa.OpShr, A, B, 0, 0)}, A, 3},
		{"shr-logical", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, -1), ins(isa.OpShrI, A, 0, 0, 28)}, A, 15},
		{"mul", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 6), ins(isa.OpMovRI, B, 0, 0, 7), ins(isa.OpMul, A, B, 0, 0)}, A, 42},
		{"div", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 42), ins(isa.OpMovRI, B, 0, 0, 5), ins(isa.OpDiv, A, B, 0, 0)}, A, 8},
		{"lea3", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 10), ins(isa.OpMovRI, B, 0, 0, 20), ins(isa.OpLea3, C, A, B, 3)}, C, 33},
		{"xor3", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 0b1100), ins(isa.OpMovRI, B, 0, 0, 0b1010), ins(isa.OpXor3, C, A, B, 1)}, C, 0b0111},
		{"test-preserves", []isa.Instr{ins(isa.OpMovRI, A, 0, 0, 5), ins(isa.OpTest, A, A, 0, 0)}, A, 5},
		{"store-load", []isa.Instr{
			ins(isa.OpMovRI, A, 0, 0, 99),
			ins(isa.OpMovRI, B, 0, 0, 10),
			ins(isa.OpStore, 0, B, A, 2), // mem[12] = 99
			ins(isa.OpLoad, C, B, 0, 2),  // ecx = mem[12]
		}, C, 99},
		{"push-pop", []isa.Instr{
			ins(isa.OpMovRI, A, 0, 0, 123),
			ins(isa.OpPush, 0, A, 0, 0),
			ins(isa.OpPop, C, 0, 0, 0),
		}, C, 123},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code := append(append([]isa.Instr{}, c.setup...), isa.Instr{Op: isa.OpHalt})
			m, stop := runSnippet(t, code, 100)
			if stop.Reason != StopHalt {
				t.Fatalf("stop = %v", stop)
			}
			if got := m.Regs[c.reg]; got != c.want {
				t.Errorf("%s = %d, want %d", c.reg, got, c.want)
			}
		})
	}
}

func TestPushfPopfRoundTrip(t *testing.T) {
	// cmp sets flags; pushf saves; a clobbering cmp changes them; popf
	// restores the originals.
	code := []isa.Instr{
		ins(isa.OpMovRI, isa.EAX, 0, 0, 1),
		ins(isa.OpCmpI, isa.EAX, 0, 0, 1), // Z set
		{Op: isa.OpPushF},
		ins(isa.OpCmpI, isa.EAX, 0, 0, 99), // Z clear, S set
		{Op: isa.OpPopF},
		{Op: isa.OpHalt},
	}
	m, stop := runSnippet(t, code, 100)
	if stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if m.Flags&isa.FlagZ == 0 {
		t.Errorf("popf did not restore Z: flags = %v", m.Flags)
	}
	if m.Regs[isa.ESP] != int32(m.Mem.Size()) {
		t.Error("pushf/popf unbalanced the stack")
	}
}

func TestFlagsAfterArithmetic(t *testing.T) {
	cases := []struct {
		name string
		code []isa.Instr
		set  isa.Flags
		clr  isa.Flags
	}{
		{"add-zero", []isa.Instr{ins(isa.OpMovRI, isa.EAX, 0, 0, -3), ins(isa.OpAddI, isa.EAX, 0, 0, 3)}, isa.FlagZ, isa.FlagS},
		{"sub-negative", []isa.Instr{ins(isa.OpMovRI, isa.EAX, 0, 0, 2), ins(isa.OpSubI, isa.EAX, 0, 0, 5)}, isa.FlagS, isa.FlagZ},
		{"and-zero", []isa.Instr{ins(isa.OpMovRI, isa.EAX, 0, 0, 5), ins(isa.OpAndI, isa.EAX, 0, 0, 2)}, isa.FlagZ, isa.FlagS | isa.FlagC},
		{"mul-negative", []isa.Instr{ins(isa.OpMovRI, isa.EAX, 0, 0, -2), ins(isa.OpMovRI, isa.EBX, 0, 0, 3), ins(isa.OpMul, isa.EAX, isa.EBX, 0, 0)}, isa.FlagS, isa.FlagZ},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code := append(append([]isa.Instr{}, c.code...), isa.Instr{Op: isa.OpHalt})
			m, stop := runSnippet(t, code, 100)
			if stop.Reason != StopHalt {
				t.Fatalf("stop = %v", stop)
			}
			if m.Flags&c.set != c.set {
				t.Errorf("flags %v missing %v", m.Flags, c.set)
			}
			if m.Flags&c.clr != 0 {
				t.Errorf("flags %v should clear %v", m.Flags, c.clr)
			}
		})
	}
}

func TestRegBitFault(t *testing.T) {
	code := []isa.Instr{
		ins(isa.OpMovRI, isa.EAX, 0, 0, 0), // step 0
		ins(isa.OpNop, 0, 0, 0, 0),         // step 1 (fault fires before this)
		ins(isa.OpOut, 0, isa.EAX, 0, 0),   // step 2
		{Op: isa.OpHalt},
	}
	p := &isa.Program{Name: "regfault", Code: code, DataWords: 8, Target: true}
	m := New()
	m.Reset(p)
	m.Fault = &Fault{Kind: FaultRegBit, StepIndex: 1, Reg: isa.EAX, Bit: 4}
	stop := m.Run(code, 100)
	if stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if !m.Fault.Fired {
		t.Fatal("register fault did not fire")
	}
	if len(m.Output) != 1 || m.Output[0] != 16 {
		t.Errorf("output = %v, want [16] (bit 4 flipped)", m.Output)
	}
	if m.Fault.FiredStep != 1 {
		t.Errorf("fired step = %d", m.Fault.FiredStep)
	}
}

func TestRegBitFaultDoesNotTriggerOnBranches(t *testing.T) {
	// A register fault must not consume the branch-fault path even when
	// BranchIndex is zero.
	code := []isa.Instr{
		ins(isa.OpMovRI, isa.ECX, 0, 0, 2),
		ins(isa.OpSubI, isa.ECX, 0, 0, 1), // loop body
		ins(isa.OpCmpI, isa.ECX, 0, 0, 0),
		{Op: isa.OpJcc, RD: isa.Reg(isa.CondGT), Imm: -3},
		{Op: isa.OpHalt},
	}
	p := &isa.Program{Name: "t", Code: code, DataWords: 8, Target: true}
	m := New()
	m.Reset(p)
	m.Fault = &Fault{Kind: FaultRegBit, StepIndex: 1 << 40, Reg: isa.EAX, Bit: 0}
	if stop := m.Run(code, 1000); stop.Reason != StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if m.Fault.Fired {
		t.Error("far-future register fault fired early")
	}
}

func TestCmovNotTaken(t *testing.T) {
	code := []isa.Instr{
		ins(isa.OpMovRI, isa.EAX, 0, 0, 1),
		ins(isa.OpMovRI, isa.EBX, 0, 0, 42),
		ins(isa.OpCmpI, isa.EAX, 0, 0, 0), // 1 != 0
		ins(isa.OpCmov, isa.EAX, isa.EBX, isa.Reg(isa.CondEQ), 0),
		{Op: isa.OpHalt},
	}
	m, stop := runSnippet(t, code, 100)
	if stop.Reason != StopHalt || m.Regs[isa.EAX] != 1 {
		t.Errorf("cmov not-taken: eax = %d stop %v", m.Regs[isa.EAX], stop)
	}
}

func TestStackUnderflowTraps(t *testing.T) {
	// Pop with SP at the top of memory reads beyond the mapped region.
	code := []isa.Instr{
		ins(isa.OpPop, isa.EAX, 0, 0, 0),
		{Op: isa.OpHalt},
	}
	_, stop := runSnippet(t, code, 100)
	if stop.Reason != StopBadMemory {
		t.Fatalf("stop = %v, want bad-memory", stop)
	}
}

func TestPushfStackOverflowTraps(t *testing.T) {
	// Exhaust the stack with pushf in a loop.
	code := []isa.Instr{
		{Op: isa.OpPushF},
		{Op: isa.OpJmp, Imm: -2},
	}
	_, stop := runSnippet(t, code, 10_000_000)
	if stop.Reason != StopBadMemory {
		t.Fatalf("stop = %v, want bad-memory", stop)
	}
}

func TestFSubAndFDiv(t *testing.T) {
	// 6.0f - 2.0f = 4.0f; 4.0f / 2.0f = 2.0f.
	code := []isa.Instr{
		ins(isa.OpMovRI, isa.EAX, 0, 0, 0x40C00000), // 6.0
		ins(isa.OpMovRI, isa.EBX, 0, 0, 0x40000000), // 2.0
		ins(isa.OpFSub, isa.EAX, isa.EBX, 0, 0),     // 4.0
		ins(isa.OpFDiv, isa.EAX, isa.EBX, 0, 0),     // 2.0
		{Op: isa.OpHalt},
	}
	m, stop := runSnippet(t, code, 100)
	if stop.Reason != StopHalt {
		t.Fatal(stop)
	}
	if uint32(m.Regs[isa.EAX]) != 0x40000000 {
		t.Errorf("fp result = %#x, want 2.0f", uint32(m.Regs[isa.EAX]))
	}
	// Negative / 0 -> -Inf.
	code2 := []isa.Instr{
		ins(isa.OpMovRI, isa.EAX, 0, 0, int32(-1098907648)), // -6.0f bits
		ins(isa.OpMovRI, isa.EBX, 0, 0, 0),
		ins(isa.OpFDiv, isa.EAX, isa.EBX, 0, 0),
		{Op: isa.OpHalt},
	}
	m2, _ := runSnippet(t, code2, 100)
	if uint32(m2.Regs[isa.EAX]) != 0xFF800000 {
		t.Errorf("neg/0 = %#x, want -Inf", uint32(m2.Regs[isa.EAX]))
	}
}
