// Package cpu implements the simulated processor: a cycle-cost interpreter
// for the ISA, with hardware memory protection (the paper's category-F
// detector), per-branch hooks for the error model, and a single-fault
// injection mechanism implementing the paper's soft-error model (one bit
// flip in a branch's address offset or in the condition flags).
package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// StopReason classifies why execution stopped.
type StopReason int

// Stop reasons.
const (
	// StopHalt: the program executed OpHalt and finished normally.
	StopHalt StopReason = iota
	// StopReport: a software control-flow check detected an error
	// (OpReport executed). This is the detection channel of the
	// instrumentation techniques.
	StopReport
	// StopTrapOut: translated code executed a deliberate exit stub
	// (OpTrapOut); the DBT regains control. Never an error.
	StopTrapOut
	// StopBadFetch: the instruction pointer left the mapped code region.
	// This models the hardware execute-disable protection that detects the
	// paper's category F errors.
	StopBadFetch
	// StopBadMemory: a load/store violated memory protection.
	StopBadMemory
	// StopDivZero: division by zero. ECCA deliberately routes its signature
	// checks through this trap.
	StopDivZero
	// StopInvalidInstr: an undecodable opcode was executed.
	StopInvalidInstr
	// StopOutOfSteps: the step budget was exhausted (livelock guard; a
	// control-flow error may throw the program into an infinite loop, which
	// the END/RET policies cannot report, per the paper).
	StopOutOfSteps
)

var stopNames = [...]string{
	"halt", "report", "trapout", "bad-fetch", "bad-memory",
	"div-zero", "invalid-instr", "out-of-steps",
}

// String names the stop reason.
func (r StopReason) String() string {
	if int(r) < len(stopNames) {
		return stopNames[r]
	}
	return fmt.Sprintf("stop(%d)", int(r))
}

// IsHardwareTrap reports whether the stop is an error detected by the
// simulated hardware rather than by software checks.
func (r StopReason) IsHardwareTrap() bool {
	switch r {
	case StopBadFetch, StopBadMemory, StopDivZero, StopInvalidInstr:
		return true
	}
	return false
}

// Stop describes how an execution ended.
type Stop struct {
	Reason StopReason
	IP     uint32 // instruction pointer at the stop
	Detail string
}

func (s Stop) String() string {
	if s.Detail != "" {
		return fmt.Sprintf("%v@0x%x (%s)", s.Reason, s.IP, s.Detail)
	}
	return fmt.Sprintf("%v@0x%x", s.Reason, s.IP)
}

// BranchEvent reports one executed branch to the BranchHook, carrying
// everything the error model needs: the flags as seen by the branch, the
// direction taken and the resolved target.
type BranchEvent struct {
	IP     uint32
	Instr  isa.Instr
	Flags  isa.Flags
	Taken  bool
	Target uint32 // meaningful only when Taken (or for unconditional)
}

// FaultKind selects which fault the injector plants.
type FaultKind int

// Fault kinds, mirroring the paper's error model.
const (
	// FaultOffsetBit flips one bit of the branch's address-offset immediate
	// for a single execution (a transient datapath upset).
	FaultOffsetBit FaultKind = iota
	// FaultFlagBit flips one bit of the flags register immediately before
	// the branch evaluates its condition.
	FaultFlagBit
	// FaultRegBit flips one bit of a general-purpose register at a given
	// machine step — a data error rather than a control-flow error, the
	// fault class the paper's future-work data-flow checking targets.
	FaultRegBit
)

// String names the fault kind (used in trace events and reports).
func (k FaultKind) String() string {
	switch k {
	case FaultOffsetBit:
		return "offset-bit"
	case FaultFlagBit:
		return "flag-bit"
	case FaultRegBit:
		return "reg-bit"
	}
	return "?"
}

// Fault is a single planned transient fault. Branch faults (offset/flag
// bits) fire when the dynamic direct-branch counter reaches BranchIndex;
// register faults fire when the step counter reaches StepIndex.
type Fault struct {
	BranchIndex uint64 // 0-based count of executed direct branches
	Kind        FaultKind
	Bit         uint // offset: 0..31; flags: 0..NumFlagBits-1; reg: 0..31

	// StepIndex and Reg select the firing point and victim of a
	// FaultRegBit fault.
	StepIndex uint64
	Reg       isa.Reg

	// Outcome, filled in when the fault fires.
	Fired       bool
	FiredStep   uint64 // machine step count when the fault fired
	FaultIP     uint32
	FaultInstr  isa.Instr
	CleanTaken  bool
	FaultTaken  bool
	CleanTarget uint32
	FaultTarget uint32
}

// StackWords is the default stack size appended above the data segment.
const StackWords = 1 << 14

// Machine is the simulated processor. A single Machine can execute both
// guest binaries (native runs) and translated code-cache contents (the DBT
// supplies the code slice and handles StopTrapOut exits).
type Machine struct {
	Regs  [isa.NumRegs]int32
	Flags isa.Flags
	IP    uint32
	Mem   *mem.Memory
	Costs *CostModel

	// Cycles accumulates the cost-model cycles; the DBT adds its own
	// translation/dispatch charges on top.
	Cycles uint64
	// Steps counts executed instructions.
	Steps uint64
	// DirectBranches counts executed direct branches (the fault-site
	// counter for the error model).
	DirectBranches uint64
	// IndirectBranches counts executed indirect transfers (ret, jmpr,
	// callr), which the error model excludes, as in the paper.
	IndirectBranches uint64
	// SigChecks counts executed signature-check branches (OpJrz). Under
	// the DBT this is exact — guest jrz terminators are rewritten to
	// compare-and-Jcc, so every jrz in the code cache belongs to a check
	// sequence — and approximate for native runs of guest code that uses
	// jrz itself.
	SigChecks uint64

	// Output is the observable output stream (OpOut); silent data
	// corruption is detected by comparing streams between runs.
	Output []int32

	// BranchHook, when set, observes every executed direct branch.
	BranchHook func(ev BranchEvent)

	// Fault, when non-nil, is the planned single transient fault.
	Fault *Fault
}

// New returns a machine with the default cost model and no memory.
func New() *Machine {
	return &Machine{Costs: DefaultCosts()}
}

// Reset prepares the machine to run program p from its entry point: zeroed
// registers and flags, fresh memory sized for the program's data segment
// plus the stack, SP at the top of memory.
func (m *Machine) Reset(p *isa.Program) {
	m.Regs = [isa.NumRegs]int32{}
	m.Flags = 0
	m.IP = p.Entry
	m.Mem = mem.New(p.DataWords + StackWords)
	m.Regs[isa.ESP] = int32(m.Mem.Size())
	m.Cycles = 0
	m.Steps = 0
	m.DirectBranches = 0
	m.IndirectBranches = 0
	m.SigChecks = 0
	m.Output = m.Output[:0]
}

// Run executes instructions from code starting at the current IP until a
// terminator, trap, or the step budget is exhausted.
func (m *Machine) Run(code []isa.Instr, maxSteps uint64) Stop {
	for {
		if m.Steps >= maxSteps {
			return Stop{Reason: StopOutOfSteps, IP: m.IP}
		}
		if stop, done := m.Step(code); done {
			return stop
		}
	}
}

// RunProgram resets the machine and runs p natively to completion.
func (m *Machine) RunProgram(p *isa.Program, maxSteps uint64) Stop {
	m.Reset(p)
	return m.Run(code(p), maxSteps)
}

func code(p *isa.Program) []isa.Instr { return p.Code }

// Step executes a single instruction. It returns done=true when execution
// must stop (including OpHalt/OpReport/OpTrapOut and all traps).
func (m *Machine) Step(codeSlice []isa.Instr) (Stop, bool) {
	ip := m.IP
	if ip >= uint32(len(codeSlice)) {
		// Hardware protection: fetching outside the code region traps.
		return Stop{Reason: StopBadFetch, IP: ip}, true
	}
	in := codeSlice[ip]
	if f := m.Fault; f != nil && f.Kind == FaultRegBit && !f.Fired && m.Steps >= f.StepIndex {
		f.Fired = true
		f.FiredStep = m.Steps
		f.FaultIP = ip
		f.FaultInstr = in
		m.Regs[f.Reg%isa.Reg(isa.NumRegs)] ^= int32(1) << (f.Bit & 31)
	}
	m.Steps++
	m.Cycles += uint64(m.Costs.Of(in.Op))

	r := &m.Regs
	next := ip + 1

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		return Stop{Reason: StopHalt, IP: ip}, true
	case isa.OpReport:
		return Stop{Reason: StopReport, IP: ip}, true
	case isa.OpTrapOut:
		return Stop{Reason: StopTrapOut, IP: ip}, true

	case isa.OpMovRI:
		r[in.RD] = in.Imm
	case isa.OpMovRR:
		r[in.RD] = r[in.RS1]
	case isa.OpLea:
		r[in.RD] = r[in.RS1] + in.Imm
	case isa.OpLea3:
		r[in.RD] = r[in.RS1] + r[in.RS2] + in.Imm
	case isa.OpXor3:
		r[in.RD] = r[in.RS1] ^ r[in.RS2] ^ in.Imm
	case isa.OpPushF:
		r[isa.ESP]--
		if err := m.Mem.Store(uint32(r[isa.ESP]), int32(m.Flags)); err != nil {
			return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
		}
	case isa.OpPopF:
		v, err := m.Mem.Load(uint32(r[isa.ESP]))
		if err != nil {
			return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
		}
		r[isa.ESP]++
		m.Flags = isa.Flags(v) & isa.FlagMask

	case isa.OpLoad:
		v, err := m.Mem.Load(uint32(r[in.RS1] + in.Imm))
		if err != nil {
			return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
		}
		r[in.RD] = v
	case isa.OpStore:
		if err := m.Mem.Store(uint32(r[in.RS1]+in.Imm), r[in.RS2]); err != nil {
			return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
		}
	case isa.OpPush:
		r[isa.ESP]--
		if err := m.Mem.Store(uint32(r[isa.ESP]), r[in.RS1]); err != nil {
			return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
		}
	case isa.OpPop:
		v, err := m.Mem.Load(uint32(r[isa.ESP]))
		if err != nil {
			return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
		}
		r[in.RD] = v
		r[isa.ESP]++

	case isa.OpAdd:
		a, b := r[in.RD], r[in.RS1]
		r[in.RD] = a + b
		m.Flags = isa.AddFlags(a, b)
	case isa.OpAddI:
		a := r[in.RD]
		r[in.RD] = a + in.Imm
		m.Flags = isa.AddFlags(a, in.Imm)
	case isa.OpSub:
		a, b := r[in.RD], r[in.RS1]
		r[in.RD] = a - b
		m.Flags = isa.SubFlags(a, b)
	case isa.OpSubI:
		a := r[in.RD]
		r[in.RD] = a - in.Imm
		m.Flags = isa.SubFlags(a, in.Imm)
	case isa.OpAnd:
		r[in.RD] &= r[in.RS1]
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpAndI:
		r[in.RD] &= in.Imm
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpOr:
		r[in.RD] |= r[in.RS1]
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpOrI:
		r[in.RD] |= in.Imm
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpXor:
		r[in.RD] ^= r[in.RS1]
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpXorI:
		r[in.RD] ^= in.Imm
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpShl:
		r[in.RD] = int32(uint32(r[in.RD]) << (uint32(r[in.RS1]) & 31))
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpShlI:
		r[in.RD] = int32(uint32(r[in.RD]) << (uint32(in.Imm) & 31))
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpShr:
		r[in.RD] = int32(uint32(r[in.RD]) >> (uint32(r[in.RS1]) & 31))
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpShrI:
		r[in.RD] = int32(uint32(r[in.RD]) >> (uint32(in.Imm) & 31))
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpMul:
		r[in.RD] *= r[in.RS1]
		m.Flags = isa.LogicFlags(r[in.RD])
	case isa.OpDiv:
		if r[in.RS1] == 0 {
			return Stop{Reason: StopDivZero, IP: ip}, true
		}
		r[in.RD] /= r[in.RS1]
		m.Flags = isa.LogicFlags(r[in.RD])

	case isa.OpCmp:
		m.Flags = isa.SubFlags(r[in.RD], r[in.RS1])
	case isa.OpCmpI:
		m.Flags = isa.SubFlags(r[in.RD], in.Imm)
	case isa.OpTest:
		m.Flags = isa.LogicFlags(r[in.RD] & r[in.RS1])

	case isa.OpFAdd:
		r[in.RD] = fop(r[in.RD], r[in.RS1], '+')
	case isa.OpFSub:
		r[in.RD] = fop(r[in.RD], r[in.RS1], '-')
	case isa.OpFMul:
		r[in.RD] = fop(r[in.RD], r[in.RS1], '*')
	case isa.OpFDiv:
		r[in.RD] = fop(r[in.RD], r[in.RS1], '/')

	case isa.OpJmp, isa.OpJcc, isa.OpJrz, isa.OpCall:
		next = m.directBranch(ip, in)
		if in.Op == isa.OpCall && next != ip+1 {
			r[isa.ESP]--
			if err := m.Mem.Store(uint32(r[isa.ESP]), int32(ip+1)); err != nil {
				return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
			}
		}

	case isa.OpRet:
		v, err := m.Mem.Load(uint32(r[isa.ESP]))
		if err != nil {
			return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
		}
		r[isa.ESP]++
		next = uint32(v)
		m.IndirectBranches++
	case isa.OpJmpR:
		next = uint32(r[in.RS1])
		m.IndirectBranches++
	case isa.OpCallR:
		r[isa.ESP]--
		if err := m.Mem.Store(uint32(r[isa.ESP]), int32(ip+1)); err != nil {
			return Stop{Reason: StopBadMemory, IP: ip, Detail: err.Error()}, true
		}
		next = uint32(r[in.RS1])
		m.IndirectBranches++

	case isa.OpCmov:
		if in.CmovCond().Eval(m.Flags) {
			r[in.RD] = r[in.RS1]
		}
	case isa.OpOut:
		m.Output = append(m.Output, r[in.RS1])

	default:
		// Undecodable opcode. Folding validity into the dispatch switch
		// (rather than a per-step Op.Valid() pre-check) makes decode free
		// for valid instructions: translated code-cache contents are
		// validated once at emission time, and guest binaries that do
		// carry junk opcodes still trap here exactly as before.
		return Stop{Reason: StopInvalidInstr, IP: ip, Detail: fmt.Sprintf("opcode %d", uint8(in.Op))}, true
	}

	m.IP = next
	return Stop{}, false
}

// directBranch resolves a direct branch: applies a pending fault, evaluates
// the direction, fires the BranchHook, and returns the next IP.
func (m *Machine) directBranch(ip uint32, in isa.Instr) uint32 {
	idx := m.DirectBranches
	m.DirectBranches++
	if in.Op == isa.OpJrz {
		m.SigChecks++
	}

	imm := in.Imm
	faulted := false
	if f := m.Fault; f != nil && f.Kind != FaultRegBit && !f.Fired && idx == f.BranchIndex {
		f.Fired = true
		f.FiredStep = m.Steps
		f.FaultIP = ip
		f.FaultInstr = in
		f.CleanTaken = m.evalTakenWith(in)
		f.CleanTarget = ip + 1 + uint32(imm)
		switch f.Kind {
		case FaultOffsetBit:
			imm ^= int32(1) << (f.Bit & 31)
		case FaultFlagBit:
			m.Flags ^= isa.Flags(1) << (f.Bit % isa.NumFlagBits)
		}
		faulted = true
	}

	taken := m.evalTakenWith(in)
	target := ip + 1 + uint32(imm)

	if faulted {
		m.Fault.FaultTaken = taken
		m.Fault.FaultTarget = target
	}
	if m.BranchHook != nil {
		m.BranchHook(BranchEvent{IP: ip, Instr: in, Flags: m.Flags, Taken: taken, Target: target})
	}
	if taken {
		return target
	}
	return ip + 1
}

// evalTakenWith evaluates whether the branch is taken under the current
// flags and registers (called both pre-fault, to record the clean
// direction, and post-fault, to resolve the actual one).
func (m *Machine) evalTakenWith(in isa.Instr) bool {
	switch in.Op {
	case isa.OpJmp, isa.OpCall:
		return true
	case isa.OpJcc:
		return in.Cond().Eval(m.Flags)
	case isa.OpJrz:
		return m.Regs[in.RS1] == 0
	}
	return false
}

// fop performs a float32 operation on register bit patterns.
func fop(a, b int32, op byte) int32 {
	fa := float32frombits(uint32(a))
	fb := float32frombits(uint32(b))
	var fr float32
	switch op {
	case '+':
		fr = fa + fb
	case '-':
		fr = fa - fb
	case '*':
		fr = fa * fb
	case '/':
		if fb == 0 {
			// IEEE: produce +/-Inf; keep it simple and deterministic.
			inf := uint32(0x7F800000)
			if fa < 0 {
				inf |= 1 << 31
			}
			return int32(inf)
		}
		fr = fa / fb
	}
	return int32(float32bits(fr))
}
