package cpu

import "repro/internal/isa"

// CostModel assigns a cycle cost to every opcode plus fixed costs for the
// events a dynamic binary translator introduces. The absolute values are a
// calibrated abstraction of the Xeon the paper measured on; what matters for
// reproducing the paper's figures is the ordering: lea/mov are cheap (the
// paper switches the signature update from xor to lea for exactly this
// class), cmov costs more than a predicted branch (Figure 14's Jcc vs
// CMOVcc gap), div is prohibitive (why ECCA-style checks are rejected), and
// floating-point instructions are long-latency (why SPEC-Fp slowdowns are
// smaller than SPEC-Int, Figures 12 and 15).
type CostModel struct {
	Cost [isa.NumOps]uint32

	// TranslateUnit is charged once per guest instruction translated
	// (code-cache compilation cost).
	TranslateUnit uint32
	// DispatchCost is charged each time translated code exits to the
	// translator to look up an untranslated or unchained successor.
	DispatchCost uint32
	// IndirectLookup is charged for every indirect-branch target lookup in
	// the code cache's hash map (the dominant steady-state DBT overhead).
	IndirectLookup uint32
}

// DefaultCosts returns the calibrated cost model used by all experiments.
func DefaultCosts() *CostModel {
	m := &CostModel{
		TranslateUnit:  40,
		DispatchCost:   25,
		IndirectLookup: 10,
	}
	c := &m.Cost
	set := func(ops []isa.Op, v uint32) {
		for _, op := range ops {
			c[op] = v
		}
	}
	set([]isa.Op{isa.OpNop, isa.OpHalt, isa.OpReport, isa.OpTrapOut}, 1)
	set([]isa.Op{isa.OpMovRI, isa.OpMovRR, isa.OpLea, isa.OpLea3, isa.OpXor3}, 1)
	set([]isa.Op{isa.OpLoad, isa.OpStore}, 2)
	set([]isa.Op{isa.OpPush, isa.OpPop}, 2)
	// pushf/popf are microcoded and slow on IA32 — the cost side of the
	// paper's xor-vs-lea argument.
	set([]isa.Op{isa.OpPushF, isa.OpPopF}, 5)
	set([]isa.Op{
		isa.OpAdd, isa.OpAddI, isa.OpSub, isa.OpSubI,
		isa.OpAnd, isa.OpAndI, isa.OpOr, isa.OpOrI,
		isa.OpXor, isa.OpXorI, isa.OpShl, isa.OpShlI, isa.OpShr, isa.OpShrI,
	}, 1)
	set([]isa.Op{isa.OpMul}, 3)
	set([]isa.Op{isa.OpDiv}, 24)
	set([]isa.Op{isa.OpCmp, isa.OpCmpI, isa.OpTest}, 1)
	set([]isa.Op{isa.OpFAdd, isa.OpFSub}, 3)
	set([]isa.Op{isa.OpFMul}, 4)
	set([]isa.Op{isa.OpFDiv}, 16)
	set([]isa.Op{isa.OpJmp, isa.OpJcc, isa.OpJrz}, 1)
	set([]isa.Op{isa.OpCall, isa.OpRet, isa.OpJmpR, isa.OpCallR}, 2)
	set([]isa.Op{isa.OpCmov}, 2)
	set([]isa.Op{isa.OpOut}, 2)
	return m
}

// Of returns the cycle cost of an opcode.
func (m *CostModel) Of(op isa.Op) uint32 {
	if int(op) < len(m.Cost) {
		return m.Cost[op]
	}
	return 1
}
