package cpu

import "math"

// Thin wrappers so machine.go reads at the ISA's level of abstraction:
// registers hold float32 bit patterns for the FP opcodes.

func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
func float32bits(f float32) uint32     { return math.Float32bits(f) }

// Fop applies one float32 ALU operation ('+', '-', '*', '/') to register bit
// patterns with the interpreter's exact semantics. The compiled backend
// shares it so FP results stay bit-identical across execution tiers.
func Fop(a, b int32, op byte) int32 { return fop(a, b, op) }
