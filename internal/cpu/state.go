package cpu

import "repro/internal/isa"

// State is a copyable snapshot of the machine's architectural and counter
// state: everything Reset initializes except the memory image and the
// output stream, which the checkpoint layer captures separately (memory as
// dirty-page deltas, output as a prefix length into the reference run's
// stream). Capturing and restoring a State at the same step boundary of a
// deterministic execution is exact: a restored machine is bit-for-bit the
// machine that executed the whole prefix.
type State struct {
	Regs             [isa.NumRegs]int32
	Flags            isa.Flags
	IP               uint32
	Cycles           uint64
	Steps            uint64
	DirectBranches   uint64
	IndirectBranches uint64
	SigChecks        uint64
}

// CaptureState copies the machine's architectural and counter state.
func (m *Machine) CaptureState() State {
	return State{
		Regs:             m.Regs,
		Flags:            m.Flags,
		IP:               m.IP,
		Cycles:           m.Cycles,
		Steps:            m.Steps,
		DirectBranches:   m.DirectBranches,
		IndirectBranches: m.IndirectBranches,
		SigChecks:        m.SigChecks,
	}
}

// RestoreFrom loads a captured state into the machine. Memory, output and
// the planted fault are left untouched — the caller installs those (the
// checkpoint replayer materializes memory from page deltas and the output
// prefix from the reference stream).
func (m *Machine) RestoreFrom(st State) {
	m.Regs = st.Regs
	m.Flags = st.Flags
	m.IP = st.IP
	m.Cycles = st.Cycles
	m.Steps = st.Steps
	m.DirectBranches = st.DirectBranches
	m.IndirectBranches = st.IndirectBranches
	m.SigChecks = st.SigChecks
}
