package bench

import (
	"fmt"
	"strings"

	"repro/internal/errmodel"
	"repro/internal/inject"
	"repro/internal/workloads"
)

// FormatSlowdownTable renders a per-benchmark slowdown table with suite
// geomeans, fp block first (the paper's figure layout).
func FormatSlowdownTable(t *SlowdownTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, c := range t.Configs {
		fmt.Fprintf(&b, " %9s", c)
	}
	fmt.Fprintln(&b)
	emit := func(name string, vals []float64) {
		fmt.Fprintf(&b, "%-14s", name)
		for _, v := range vals {
			fmt.Fprintf(&b, " %9.3f", v)
		}
		fmt.Fprintln(&b)
	}
	for _, suite := range []workloads.Suite{workloads.SuiteFp, workloads.SuiteInt} {
		for _, r := range t.Rows {
			if r.Suite == suite {
				emit(r.Name, r.Slowdown)
			}
		}
		if suite == workloads.SuiteFp {
			emit("geomean-fp", t.GeoFp)
		} else {
			emit("geomean-int", t.GeoInt)
		}
	}
	emit("geomean-all", t.GeoAll)
	return b.String()
}

// FormatFigure14 renders the update-style comparison table.
func FormatFigure14(t *Figure14Table) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 14 - geomean slowdown by conditional-update instruction")
	fmt.Fprintf(&b, "%-8s", "update")
	for _, tc := range t.Techniques {
		fmt.Fprintf(&b, " %8s", tc)
	}
	fmt.Fprintln(&b)
	for si, st := range t.Styles {
		fmt.Fprintf(&b, "%-8s", st)
		for ti := range t.Techniques {
			fmt.Fprintf(&b, " %8.2f", t.Slowdown[si][ti])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintln(&b, "(Jcc rows for EdgCF/ECF are the unsafe configurations; RCF-Jcc is safe)")
	return b.String()
}

// FormatBaseline renders the native-vs-DBT overhead table.
func FormatBaseline(rows []BaselineRow, avg float64) string {
	var b strings.Builder
	fmt.Fprintln(&b, "DBT baseline overhead vs native (uninstrumented translation)")
	fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", "benchmark", "native-cycles", "dbt-cycles", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14d %14d %8.1f%%\n", r.Name, r.Native, r.DBT, r.Overhead*100)
	}
	fmt.Fprintf(&b, "geomean overhead: %.1f%% (paper: ~12%%)\n", avg*100)
	return b.String()
}

// FormatCoverageMatrix renders technique x category coverage (percent of
// effective errors detected), the empirical counterpart of Section 3's
// analysis.
func FormatCoverageMatrix(reports []*inject.Report) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fault-injection coverage by branch-error category (detected / effective errors)")
	cats := append(errmodel.SDCCategories(), errmodel.CatF)
	fmt.Fprintf(&b, "%-10s", "technique")
	for _, c := range cats {
		fmt.Fprintf(&b, " %7s", c.String())
	}
	fmt.Fprintf(&b, " %7s %6s\n", "total", "SDCs")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-10s", r.Technique)
		for _, c := range cats {
			a := r.ByCat[c]
			if a == nil || a.Errors() == 0 {
				fmt.Fprintf(&b, " %7s", "-")
				continue
			}
			fmt.Fprintf(&b, " %6.1f%%", a.Coverage()*100)
		}
		fmt.Fprintf(&b, " %6.1f%% %6d\n", r.Totals.Coverage()*100, r.Totals.Count[inject.OutSDC])
	}
	var exec, short, live int
	for _, r := range reports {
		exec += r.Executed
		short += r.ShortOffset
		live += r.ShortLive
	}
	if short+live > 0 {
		fmt.Fprintf(&b, "engine: %d executed, %d offset short-circuits, %d liveness-pruned\n",
			exec, short, live)
	}
	return b.String()
}
