package bench

import (
	"fmt"
	"math"

	"repro/internal/inject"
	"repro/internal/obs"
)

// Figure-level metrics. Slowdowns and overheads are dimensionless ratios;
// the integer-valued gauge registry stores them in milli-units (1.234x ->
// 1234), which keeps three decimal places — more precision than the
// cycle-count measurements themselves carry. All publishers are nil-safe
// so the figure generators' callers can pass the -metrics registry
// unconditionally.

// milli converts a ratio to integer milli-units for a gauge.
func milli(x float64) int64 { return int64(math.Round(x * 1000)) }

// PublishSlowdownTable records a per-benchmark slowdown table (Figures 12
// and 15) as bench_slowdown_milli gauges plus per-suite geomeans.
func PublishSlowdownTable(reg *obs.Registry, figure string, t *SlowdownTable) {
	if reg == nil || t == nil {
		return
	}
	for _, r := range t.Rows {
		for ci, cfg := range t.Configs {
			reg.Gauge(fmt.Sprintf("bench_slowdown_milli{figure=%q,benchmark=%q,config=%q}",
				figure, r.Name, cfg)).Set(milli(r.Slowdown[ci]))
		}
	}
	for ci, cfg := range t.Configs {
		for _, g := range []struct {
			suite string
			val   float64
		}{{"int", t.GeoInt[ci]}, {"fp", t.GeoFp[ci]}, {"all", t.GeoAll[ci]}} {
			reg.Gauge(fmt.Sprintf("bench_slowdown_geomean_milli{figure=%q,config=%q,suite=%q}",
				figure, cfg, g.suite)).Set(milli(g.val))
		}
	}
}

// PublishFigure14 records the update-style comparison geomeans.
func PublishFigure14(reg *obs.Registry, t *Figure14Table) {
	if reg == nil || t == nil {
		return
	}
	for si, style := range t.Styles {
		for ti, tech := range t.Techniques {
			reg.Gauge(fmt.Sprintf("bench_slowdown_geomean_milli{figure=%q,config=%q,style=%q}",
				"14", tech, style)).Set(milli(t.Slowdown[si][ti]))
		}
	}
}

// PublishBaseline records the uninstrumented translator's per-benchmark
// overhead over native execution, and the geomean.
func PublishBaseline(reg *obs.Registry, rows []BaselineRow, avg float64) {
	if reg == nil {
		return
	}
	for _, r := range rows {
		reg.Gauge(fmt.Sprintf("bench_dbt_overhead_milli{benchmark=%q}", r.Name)).Set(milli(r.Overhead))
	}
	reg.Gauge(`bench_dbt_overhead_milli{benchmark="geomean"}`).Set(milli(avg))
}

// PublishAblations records each design-choice ablation's geomean slowdown.
func PublishAblations(reg *obs.Registry, rows []AblationRow) {
	if reg == nil {
		return
	}
	for _, r := range rows {
		reg.Gauge(fmt.Sprintf("bench_ablation_slowdown_milli{config=%q}", r.Name)).Set(milli(r.Slowdown))
	}
}

// PublishCoverage records coverage percentages (milli-fractions: 0.987 ->
// 987) for a set of merged campaign reports, keyed by technique — used by
// the coverage matrix and the register-fault comparison.
func PublishCoverage(reg *obs.Registry, figure string, reports []*inject.Report) {
	if reg == nil {
		return
	}
	for _, r := range reports {
		reg.Gauge(fmt.Sprintf("bench_coverage_milli{figure=%q,technique=%q}",
			figure, r.Technique)).Set(milli(r.Totals.Coverage()))
	}
}

// PublishPolicyLatency records the policy trade-off rows: slowdown,
// coverage and mean detection latency (whole instructions) per policy.
func PublishPolicyLatency(reg *obs.Registry, rows []PolicyRow) {
	if reg == nil {
		return
	}
	for _, r := range rows {
		pol := r.Policy.String()
		reg.Gauge(fmt.Sprintf("bench_policy_slowdown_milli{policy=%q}", pol)).Set(milli(r.Slowdown))
		reg.Gauge(fmt.Sprintf("bench_policy_coverage_milli{policy=%q}", pol)).Set(milli(r.Coverage))
		reg.Gauge(fmt.Sprintf("bench_policy_latency_instructions{policy=%q}", pol)).Set(int64(math.Round(r.MeanLatency)))
	}
}
