package bench

import (
	"strings"
	"testing"

	"repro/internal/dbt"
)

func TestPolicyLatencyShape(t *testing.T) {
	rows, err := PolicyLatency(0.1, 120, 21, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPol := map[dbt.Policy]PolicyRow{}
	for _, r := range rows {
		byPol[r.Policy] = r
	}
	all, end := byPol[dbt.PolicyAllBB], byPol[dbt.PolicyEnd]
	// ALLBB: slowest, lowest latency. END: fastest, highest latency.
	if !(all.Slowdown > end.Slowdown) {
		t.Errorf("slowdown: ALLBB %.3f !> END %.3f", all.Slowdown, end.Slowdown)
	}
	if !(all.MeanLatency < end.MeanLatency) {
		t.Errorf("latency: ALLBB %.0f !< END %.0f", all.MeanLatency, end.MeanLatency)
	}
	// Coverage stays high everywhere: the signature persists, so sparse
	// checks still catch surviving errors.
	for _, r := range rows {
		if r.Coverage < 0.85 {
			t.Errorf("%v coverage %.3f suspiciously low", r.Policy, r.Coverage)
		}
	}
	s := FormatPolicyLatency(rows)
	if !strings.Contains(s, "ALLBB") || !strings.Contains(s, "latency") {
		t.Errorf("format:\n%s", s)
	}
}
