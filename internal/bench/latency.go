package bench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dbt"
	"repro/internal/inject"
	"repro/internal/par"
	"repro/internal/workloads"

	"repro/internal/check"
)

// PolicyRow quantifies one checking policy's complete trade-off: the
// performance it buys, the coverage it keeps, and the error-report latency
// it pays — the trade the paper's Section 6 describes qualitatively.
type PolicyRow struct {
	Policy      dbt.Policy
	Slowdown    float64 // geomean vs uninstrumented DBT
	Coverage    float64 // detected / effective errors
	MeanLatency float64 // instructions from fault to report
	Hangs       int     // errors that looped past the step budget
	SDCs        int
}

// PolicyLatency measures RCF under all four policies: slowdown over the
// whole suite, coverage/latency from injection campaigns on a workload
// subset. workers fans the per-benchmark runs and shards the campaigns;
// ckptInterval selects the campaign engine (0 replay, -1 auto-sized
// checkpointing, >0 explicit interval) without changing any number.
func PolicyLatency(scale float64, samples int, seed int64, workers int, ckptInterval int64) ([]PolicyRow, error) {
	campaignLoads := []string{"164.gzip", "183.equake"}
	var rows []PolicyRow
	for _, pol := range dbt.Policies() {
		row := PolicyRow{Policy: pol}

		// Slowdown across the full suite.
		profs := workloads.All()
		ratios := make([]float64, len(profs))
		err := par.ForEach(len(profs), workers, func(i int) error {
			p, err := profs[i].Build(scale)
			if err != nil {
				return err
			}
			base, err := dbtCycles(p, nil, dbt.PolicyAllBB)
			if err != nil {
				return err
			}
			c, err := dbtCycles(p, &check.RCF{Style: dbt.UpdateJcc}, pol)
			if err != nil {
				return err
			}
			ratios[i] = float64(c) / float64(base)
			return nil
		})
		if err != nil {
			return nil, err
		}
		row.Slowdown = Geomean(ratios)

		// Coverage and latency from injection.
		var latSum uint64
		var latN int
		var detected, errs int
		for _, n := range campaignLoads {
			prof, err := workloads.ByName(n)
			if err != nil {
				return nil, err
			}
			p, err := prof.Build(scale / 2)
			if err != nil {
				return nil, err
			}
			rep, err := inject.Execute(context.Background(), p, inject.Config{
				Technique: &check.RCF{Style: dbt.UpdateCmov},
				Policy:    pol,
				Samples:   samples,
				Seed:      seed,
				MaxSteps:  20_000_000,
				Options:   inject.Options{Workers: workers, CkptInterval: ckptInterval},
			})
			if err != nil {
				return nil, err
			}
			latSum += rep.LatencySum
			latN += rep.LatencyN
			detected += rep.Totals.Detected()
			errs += rep.Totals.Errors()
			row.Hangs += rep.Totals.Count[inject.OutHang]
			row.SDCs += rep.Totals.Count[inject.OutSDC]
		}
		if errs > 0 {
			row.Coverage = float64(detected) / float64(errs)
		}
		if latN > 0 {
			row.MeanLatency = float64(latSum) / float64(latN)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPolicyLatency renders the policy trade-off table.
func FormatPolicyLatency(rows []PolicyRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "RCF checking policies — speed vs coverage vs error-report latency")
	fmt.Fprintf(&b, "%-8s %10s %10s %14s %7s %6s\n",
		"policy", "slowdown", "coverage", "mean-latency", "hangs", "SDCs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %9.2fx %9.1f%% %8.0f instr %7d %6d\n",
			r.Policy, r.Slowdown, r.Coverage*100, r.MeanLatency, r.Hangs, r.SDCs)
	}
	fmt.Fprintln(&b, "(signature updates run everywhere under every policy; only the checks move)")
	return b.String()
}
