package bench

import (
	"strings"
	"testing"

	"repro/internal/inject"
)

func TestAblationsShape(t *testing.T) {
	rows, err := Ablations(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.Slowdown
	}
	// Chaining and traces are wins: disabling them slows things down.
	if byName["no-chaining"] <= 1.0 {
		t.Errorf("no-chaining = %.3f, want > 1 (chaining is a win)", byName["no-chaining"])
	}
	// Traces are roughly cost-neutral under a pure cycle-count model: the
	// eliminated jumps pay for the profiling dispatches and the duplicate
	// translation. Their real-hardware value (fetch locality, layout) is
	// outside this model — an honest negative result, asserted as such.
	if byName["no-traces"] < 0.9 || byName["no-traces"] > 1.1 {
		t.Errorf("no-traces = %.3f, want roughly neutral", byName["no-traces"])
	}
	// The Section 5.1 argument: safe xor costs more than lea.
	if byName["EdgCF-xor+pushf"] <= byName["EdgCF-lea"] {
		t.Errorf("xor+pushf (%.3f) should exceed lea (%.3f)",
			byName["EdgCF-xor+pushf"], byName["EdgCF-lea"])
	}
	// Stacking protections stacks costs.
	if byName["RCF+DFC"] <= byName["RCF"] || byName["RCF+DFC"] <= byName["DFC"] {
		t.Errorf("RCF+DFC (%.3f) should exceed RCF (%.3f) and DFC (%.3f)",
			byName["RCF+DFC"], byName["RCF"], byName["DFC"])
	}
	if byName["DFC+cmp"] <= byName["DFC"] {
		t.Errorf("DFC+cmp (%.3f) should exceed DFC (%.3f)", byName["DFC+cmp"], byName["DFC"])
	}
	s := FormatAblations(rows)
	if !strings.Contains(s, "no-chaining") || !strings.Contains(s, "RCF+DFC") {
		t.Errorf("format:\n%s", s)
	}
}

func TestDataFlowCoverageShape(t *testing.T) {
	reports, err := DataFlowCoverage(0.04, 150, 11, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	cov := map[string]float64{}
	sdc := map[string]int{}
	for _, r := range reports {
		cov[r.Technique] = r.Totals.Coverage()
		sdc[r.Technique] = r.Totals.Count[inject.OutSDC]
	}
	// Control-flow checking alone barely helps against data faults; the
	// data-flow transform must raise coverage and cut SDCs.
	if cov["RCF+DFC"] <= cov["RCF"] {
		t.Errorf("RCF+DFC coverage %.3f <= RCF %.3f", cov["RCF+DFC"], cov["RCF"])
	}
	if sdc["RCF+DFC"] >= sdc["none"] {
		t.Errorf("RCF+DFC SDCs %d >= none %d", sdc["RCF+DFC"], sdc["none"])
	}
	if cov["RCF+DFC+cmp"] < cov["RCF+DFC"] {
		t.Errorf("adding cmp checks lowered coverage: %.3f < %.3f",
			cov["RCF+DFC+cmp"], cov["RCF+DFC"])
	}
	s := FormatDataFlowCoverage(reports)
	if !strings.Contains(s, "RCF+DFC") {
		t.Errorf("format:\n%s", s)
	}
}
