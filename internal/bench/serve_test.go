package bench

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/workloads"
)

// decodeFrames parses an NDJSON suite stream.
func decodeFrames(t *testing.T, body string) []SuiteFrame {
	t.Helper()
	var frames []SuiteFrame
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f SuiteFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	return frames
}

// TestBenchHandlerStreamsSuite: POST /v1/bench with a figure subset must
// stream start, one row per benchmark, the formatted table, and a span
// timing — all through the shared warm registry.
func TestBenchHandlerStreamsSuite(t *testing.T) {
	metrics := obs.NewRegistry()
	reg := session.NewRegistry(session.Config{Metrics: metrics})
	srv := &session.Server{Registry: reg, Metrics: metrics}
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	resp, err := http.Post(ts.URL, "application/json",
		strings.NewReader(`{"scale":0.05,"workers":2,"figures":["dbt"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type %q", ct)
	}
	if id := resp.Header.Get("Campaign-Id"); id == "" {
		t.Error("no Campaign-Id header: bench runs are not batch-tracked")
	}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	frames := decodeFrames(t, body.String())

	byKind := map[string]int{}
	for _, f := range frames {
		byKind[f.Kind]++
		if f.Figure != "dbt" {
			t.Errorf("frame for figure %q, want dbt", f.Figure)
		}
	}
	if byKind["start"] != 1 || byKind["table"] != 1 || byKind["span"] != 1 {
		t.Fatalf("frame kinds %v, want one start/table/span", byKind)
	}
	if got, want := byKind["row"], len(workloads.All()); got != want {
		t.Errorf("%d row frames, want %d", got, want)
	}
	last := frames[len(frames)-1]
	if last.Kind != "span" || last.Seconds <= 0 {
		t.Errorf("final frame %+v, want positive span", last)
	}
	for _, f := range frames {
		if f.Kind == "table" && !strings.Contains(f.Text, "geomean overhead") {
			t.Errorf("table frame text:\n%s", f.Text)
		}
	}
	// The suite's program builds went through the warm registry.
	if _, err := reg.Program("164.gzip", 0.05); err != nil {
		t.Fatal(err)
	}
	// Figure timing landed in the metrics registry's span section.
	snap := metrics.Snapshot()
	if _, ok := snap.Spans[`bench_figure{figure="dbt"}`]; !ok {
		t.Errorf("no bench_figure span; spans: %v", snap.Spans)
	}
}

// TestBenchHandlerRejectsBadBody: unknown fields are a 400, not a stream.
func TestBenchHandlerRejectsBadBody(t *testing.T) {
	metrics := obs.NewRegistry()
	reg := session.NewRegistry(session.Config{Metrics: metrics})
	srv := &session.Server{Registry: reg, Metrics: metrics}
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	resp, err := http.Post(ts.URL, "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %s, want 400", resp.Status)
	}
}

// TestBenchHandlerRejectsOutOfRange: suite parameters are bounded like
// the campaign endpoint's MaxSamples gate — one request cannot pin the
// server on an arbitrarily large run.
func TestBenchHandlerRejectsOutOfRange(t *testing.T) {
	metrics := obs.NewRegistry()
	reg := session.NewRegistry(session.Config{Metrics: metrics})
	srv := &session.Server{Registry: reg, Metrics: metrics}
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"samples over max", `{"samples":1000001}`},
		{"negative samples", `{"samples":-1}`},
		{"scale over full", `{"scale":1.5}`},
		{"negative scale", `{"scale":-0.1}`},
		{"workers over max", `{"workers":100000}`},
		{"negative workers", `{"workers":-1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %s, want 400", resp.Status)
			}
		})
	}
}

// TestBenchHandlerUnknownFigure: a bad figure name aborts with an error
// frame on the stream (headers are already committed).
func TestBenchHandlerUnknownFigure(t *testing.T) {
	metrics := obs.NewRegistry()
	reg := session.NewRegistry(session.Config{Metrics: metrics})
	srv := &session.Server{Registry: reg, Metrics: metrics}
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	resp, err := http.Post(ts.URL, "application/json",
		strings.NewReader(`{"figures":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var f SuiteFrame
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	if f.Kind != "error" || !strings.Contains(f.Error, "unknown figure") {
		t.Errorf("frame %+v, want error frame", f)
	}
}
