package bench

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/errmodel"
	"repro/internal/inject"
	"repro/internal/workloads"
)

// Tests run the experiments at reduced scale and assert the qualitative
// relations the paper reports; EXPERIMENTS.md records full-scale numbers.
const testScale = 0.15

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{3}); math.Abs(g-3) > 1e-9 {
		t.Errorf("geomean(3) = %v", g)
	}
}

func TestFigure12Shape(t *testing.T) {
	tab, err := Figure12(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 26 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Columns: RCF, EdgCF, ECF.
	rcf, edg, ecf := tab.GeoAll[0], tab.GeoAll[1], tab.GeoAll[2]
	if !(rcf > edg) {
		t.Errorf("RCF (%.3f) must exceed EdgCF (%.3f)", rcf, edg)
	}
	if math.Abs(edg-ecf) > 0.05 {
		t.Errorf("EdgCF (%.3f) and ECF (%.3f) should be close", edg, ecf)
	}
	for i := range tab.Configs {
		if !(tab.GeoAll[i] > 1) {
			t.Errorf("%s slowdown %.3f not above 1", tab.Configs[i], tab.GeoAll[i])
		}
		// The fp suite suffers less than the int suite (big blocks,
		// long-latency instructions), the paper's Figure 12 observation.
		if !(tab.GeoFp[i] < tab.GeoInt[i]) {
			t.Errorf("%s: fp %.3f !< int %.3f", tab.Configs[i], tab.GeoFp[i], tab.GeoInt[i])
		}
	}
	s := FormatSlowdownTable(tab)
	if !strings.Contains(s, "geomean-fp") || !strings.Contains(s, "164.gzip") {
		t.Errorf("format:\n%s", s)
	}
}

func TestFigure14Shape(t *testing.T) {
	tab, err := Figure14(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range tab.Techniques {
		if !(tab.Slowdown[1][ti] > tab.Slowdown[0][ti]) {
			t.Errorf("%s: CMOVcc (%.3f) must exceed Jcc (%.3f)",
				tab.Techniques[ti], tab.Slowdown[1][ti], tab.Slowdown[0][ti])
		}
	}
	// RCF with the safe Jcc implementation "almost beats" the cmov ECF,
	// the paper's headline for Figure 14: it must at least be in range.
	if tab.Slowdown[0][0] > tab.Slowdown[1][2]+0.1 {
		t.Errorf("RCF/Jcc (%.3f) should be near ECF/CMOVcc (%.3f)",
			tab.Slowdown[0][0], tab.Slowdown[1][2])
	}
	s := FormatFigure14(tab)
	if !strings.Contains(s, "CMOVcc") {
		t.Errorf("format:\n%s", s)
	}
}

func TestFigure15Shape(t *testing.T) {
	tab, err := Figure15(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := tab.GeoAll // ALLBB, RET-BE, RET, END
	if !(all[0] > all[1] && all[1] > all[2] && all[2] >= all[3]) {
		t.Errorf("policy ordering violated: %v", all)
	}
	// The improvement is larger for int than fp (paper: 77%->37% vs
	// 23%->18%).
	dropInt := tab.GeoInt[0] - tab.GeoInt[1]
	dropFp := tab.GeoFp[0] - tab.GeoFp[1]
	if dropInt <= dropFp {
		t.Errorf("ALLBB->RET-BE drop: int %.3f <= fp %.3f", dropInt, dropFp)
	}
	// RET and END nearly identical (programs live in inner loops, not in
	// call/return traffic).
	if math.Abs(tab.GeoAll[2]-tab.GeoAll[3]) > 0.05 {
		t.Errorf("RET (%.3f) and END (%.3f) should nearly coincide", all[2], all[3])
	}
}

func TestDBTBaselineShape(t *testing.T) {
	rows, avg, err := DBTBaseline(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 26 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Overhead positive but modest (paper: ~12% average; translation is
	// relatively heavier at test scale).
	if avg <= 0 || avg > 0.6 {
		t.Errorf("baseline overhead = %.1f%%", avg*100)
	}
	for _, r := range rows {
		if r.DBT <= r.Native {
			t.Errorf("%s: DBT %d <= native %d", r.Name, r.DBT, r.Native)
		}
	}
	s := FormatBaseline(rows, avg)
	if !strings.Contains(s, "geomean overhead") {
		t.Errorf("format:\n%s", s)
	}
}

func TestFigure2Shape(t *testing.T) {
	intTab, fpTab, err := Figure2(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	ni, nf := intTab.Normalized(), fpTab.Normalized()
	// E dominates everywhere (the paper's headline observation).
	if ni[errmodel.CatE] < 0.5 || nf[errmodel.CatE] < 0.4 {
		t.Errorf("E should dominate: int %.2f fp %.2f", ni[errmodel.CatE], nf[errmodel.CatE])
	}
	// A is the second large category.
	if ni[errmodel.CatA] < 0.08 || nf[errmodel.CatA] < 0.08 {
		t.Errorf("A too small: int %.2f fp %.2f", ni[errmodel.CatA], nf[errmodel.CatA])
	}
	// C is much larger for fp than for int (big blocks, tight kernels).
	if !(nf[errmodel.CatC] > 4*ni[errmodel.CatC]) {
		t.Errorf("fp C (%.3f) should far exceed int C (%.3f)", nf[errmodel.CatC], ni[errmodel.CatC])
	}
	// B is negligible.
	if ni[errmodel.CatB] > 0.01 || nf[errmodel.CatB] > 0.01 {
		t.Errorf("B should be negligible: %.3f %.3f", ni[errmodel.CatB], nf[errmodel.CatB])
	}
	// F absorbs a large share of raw taken-address faults.
	if intTab.CategoryProb(errmodel.CatF) < 0.1 || fpTab.CategoryProb(errmodel.CatF) < 0.2 {
		t.Error("F too small; code footprints miscalibrated")
	}
}

func TestCoverageMatrixShape(t *testing.T) {
	reports, err := CoverageMatrix(context.Background(), CoverageConfig{
		Scale:     0.05,
		Samples:   120,
		Seed:      42,
		Workloads: []string{"164.gzip", "171.swim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 6 { // none, ECF, EdgCF, RCF, CFCSS, ECCA
		t.Fatalf("reports = %d", len(reports))
	}
	byName := map[string]*inject.Report{}
	for _, r := range reports {
		byName[r.Technique] = r
	}
	rcf := byName["RCF"].Totals.Coverage()
	none := byName["none"].Totals.Coverage()
	cfcss := byName["CFCSS"].Totals.Coverage()
	if !(rcf > none) {
		t.Errorf("RCF coverage %.3f !> none %.3f", rcf, none)
	}
	if !(rcf >= cfcss) {
		t.Errorf("RCF coverage %.3f < CFCSS %.3f", rcf, cfcss)
	}
	// SDC counts: RCF lowest among software techniques.
	if byName["RCF"].Totals.Count[inject.OutSDC] > byName["none"].Totals.Count[inject.OutSDC] {
		t.Error("RCF worse than unprotected")
	}
	s := FormatCoverageMatrix(reports)
	if !strings.Contains(s, "RCF") || !strings.Contains(s, "CFCSS") {
		t.Errorf("format:\n%s", s)
	}
}

func TestWorkloadsCoverAllProfiles(t *testing.T) {
	if len(workloads.Names()) != 26 {
		t.Error("workload count changed; figures incomplete")
	}
}
