package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/session"
)

// BenchRequest is the POST /v1/bench body. Every field is optional: an
// empty body runs the default suite (scale 0.05, 200 coverage samples,
// all figures).
type BenchRequest struct {
	Scale   float64  `json:"scale"`
	Samples int      `json:"samples"`
	Seed    int64    `json:"seed"`
	Workers int      `json:"workers"`
	Figures []string `json:"figures"`
}

// Served-suite bounds, mirroring the campaign endpoint's MaxSamples gate:
// one unauthenticated POST must not be able to pin the server on an
// arbitrarily large run. Full-scale (1.0) figures belong to cfc-bench
// batch runs on the machine's own terms.
const (
	maxServeScale   = 1.0
	maxServeWorkers = 256
)

// validate rejects out-of-range suite parameters before any work starts.
func (r BenchRequest) validate(maxSamples int) error {
	if r.Samples < 0 || r.Samples > maxSamples {
		return fmt.Errorf("samples %d out of range [0, %d]", r.Samples, maxSamples)
	}
	if r.Scale < 0 || r.Scale > maxServeScale {
		return fmt.Errorf("scale %g out of range [0, %g]", r.Scale, maxServeScale)
	}
	if r.Workers < 0 || r.Workers > maxServeWorkers {
		return fmt.Errorf("workers %d out of range [0, %d]", r.Workers, maxServeWorkers)
	}
	return nil
}

// Handler serves the bench suite over the given warm-session registry as
// an NDJSON stream of SuiteFrames, one per line, flushed as produced.
// The handler lives here rather than in package session because bench
// already imports session; cfc-serve mounts it next to the session
// server's handler on an outer mux.
func Handler(reg *session.Registry, metrics *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req BenchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := req.validate(session.DefaultMaxSamples); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		RunSuite(r.Context(), SuiteConfig{
			Scale:    req.Scale,
			Samples:  req.Samples,
			Seed:     req.Seed,
			Figures:  req.Figures,
			Sessions: reg,
			Options:  core.Options{Metrics: metrics, Workers: req.Workers},
		}, func(f SuiteFrame) error {
			if err := enc.Encode(f); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		// Errors after the first frame ride the stream as an "error"
		// frame; the status line is already committed.
	})
}
