package bench

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/session"
)

// BenchRequest is the POST /v1/bench body. Every field is optional: an
// empty body runs the default suite (scale 0.05, 200 coverage samples,
// all figures).
type BenchRequest struct {
	Scale   float64  `json:"scale"`
	Samples int      `json:"samples"`
	Seed    int64    `json:"seed"`
	Workers int      `json:"workers"`
	Figures []string `json:"figures"`
}

// validate rejects out-of-range suite parameters before any work starts,
// against the serve mux's shared bounds: one unauthenticated POST must
// not be able to pin the server on an arbitrarily large run. Full-scale
// (1.0) figures belong to cfc-bench batch runs on the machine's own
// terms.
func (r BenchRequest) validate(limits session.Limits) error {
	if err := limits.CheckSamples(r.Samples); err != nil {
		return err
	}
	if err := limits.CheckScale(r.Scale); err != nil {
		return err
	}
	return limits.CheckWorkers(r.Workers)
}

// Handler serves the bench suite over the server's warm-session registry
// as an NDJSON stream of SuiteFrames, one per line, flushed as produced.
// The handler lives here rather than in package session because bench
// already imports session; cfc-serve mounts it on the session server's
// mux as an extra Route, so it shares the server's request bounds, error
// shape and batch tracking — the run's Campaign-Id is pollable at
// GET /v1/campaigns/{id}/progress like any campaign batch.
func Handler(srv *session.Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A bench run is work-carrying like a campaign batch, so it obeys
		// the same drain gate: fail fast with the JSON 503 once the server
		// starts draining.
		release, ok := srv.Begin(w)
		if !ok {
			return
		}
		defer release()
		var req BenchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			session.WriteError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if err := req.validate(srv.Limits); err != nil {
			session.WriteError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		figures := req.Figures
		if len(figures) == 0 {
			figures = DefaultSuiteFigures
		}
		batch := srv.TrackBatch(len(figures))
		defer batch.Finish()
		w.Header().Set("Campaign-Id", batch.ID())
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		figureIndex := map[string]int{}
		for i, f := range figures {
			figureIndex[f] = i
		}
		RunSuite(r.Context(), SuiteConfig{
			Scale:    req.Scale,
			Samples:  req.Samples,
			Seed:     req.Seed,
			Figures:  figures,
			Sessions: srv.Registry,
			Options:  core.Options{Metrics: srv.Metrics, Workers: req.Workers, Progress: batch.Tracker()},
		}, func(f SuiteFrame) error {
			if i, ok := figureIndex[f.Figure]; ok {
				batch.SetCampaign(i)
			}
			if err := enc.Encode(f); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		// Errors after the first frame ride the stream as an "error"
		// frame; the status line is already committed.
	})
}
