package bench

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/session"
)

// BenchRequest is the POST /v1/bench body. Every field is optional: an
// empty body runs the default suite (scale 0.05, 200 coverage samples,
// all figures).
type BenchRequest struct {
	Scale   float64  `json:"scale"`
	Samples int      `json:"samples"`
	Seed    int64    `json:"seed"`
	Workers int      `json:"workers"`
	Figures []string `json:"figures"`
}

// Handler serves the bench suite over the given warm-session registry as
// an NDJSON stream of SuiteFrames, one per line, flushed as produced.
// The handler lives here rather than in package session because bench
// already imports session; cfc-serve mounts it next to the session
// server's handler on an outer mux.
func Handler(reg *session.Registry, metrics *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req BenchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		RunSuite(r.Context(), SuiteConfig{
			Scale:    req.Scale,
			Samples:  req.Samples,
			Seed:     req.Seed,
			Figures:  req.Figures,
			Sessions: reg,
			Options:  core.Options{Metrics: metrics, Workers: req.Workers},
		}, func(f SuiteFrame) error {
			if err := enc.Encode(f); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		// Errors after the first frame ride the stream as an "error"
		// frame; the status line is already committed.
	})
}
