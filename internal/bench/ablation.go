package bench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dbt"
	"repro/internal/errmodel"
	"repro/internal/inject"
	"repro/internal/par"
	"repro/internal/workloads"

	"repro/internal/check"
)

// AblationRow is one configuration's geomean slowdown relative to the
// plain (chained, traced, uninstrumented) translator.
type AblationRow struct {
	Name     string
	Slowdown float64
	Note     string
}

// Ablations measures the design choices DESIGN.md calls out, each relative
// to the default uninstrumented translator:
//
//   - block chaining off (every edge dispatches through the runtime)
//   - hot-trace backend off
//   - EdgCF with lea updates vs the safe xor+pushf/popf variant (the
//     Section 5.1 argument)
//   - data-flow checking alone, and stacked on RCF (the paper's future
//     work, with and without compare-operand checks)
func Ablations(scale float64, workers int) ([]AblationRow, error) {
	return ablations(scale, workers, nil)
}

func ablations(scale float64, workers int, build buildFn) ([]AblationRow, error) {
	type cfg struct {
		name string
		note string
		opts func() dbt.Options
	}
	cfgs := []cfg{
		{"no-chaining", "every block transfer pays a dispatch", func() dbt.Options {
			return dbt.Options{NoChaining: true}
		}},
		{"no-traces", "hot loops stay as chained single blocks", func() dbt.Options {
			return dbt.Options{TraceThreshold: -1}
		}},
		{"EdgCF-lea", "the paper's flag-transparent update", func() dbt.Options {
			return dbt.Options{Technique: &check.EdgCF{Style: dbt.UpdateJcc}}
		}},
		{"EdgCF-xor+pushf", "xor updates made safe with pushf/popf", func() dbt.Options {
			return dbt.Options{Technique: &check.EdgCFXor{Style: dbt.UpdateJcc, PreserveFlags: true}}
		}},
		{"DFC", "data-flow duplication, store/out checks", func() dbt.Options {
			return dbt.Options{Body: &check.DFC{}}
		}},
		{"DFC+cmp", "also checks compare operands", func() dbt.Options {
			return dbt.Options{Body: &check.DFC{SyncAtCmps: true}}
		}},
		{"RCF", "control-flow checking only", func() dbt.Options {
			return dbt.Options{Technique: &check.RCF{Style: dbt.UpdateJcc}}
		}},
		{"RCF+DFC", "full control-flow + data-flow protection", func() dbt.Options {
			return dbt.Options{Technique: &check.RCF{Style: dbt.UpdateJcc}, Body: &check.DFC{}}
		}},
	}

	profs := workloads.All()
	// perWorkload[w][c]: workload w's ratio under configuration c; the jobs
	// fan across workers, the geomeans fold in workload order.
	perWorkload := make([][]float64, len(profs))
	bf := buildOrDefault(build)
	err := par.ForEach(len(profs), workers, func(w int) error {
		prof := profs[w]
		p, err := bf(prof.Name, scale)
		if err != nil {
			return err
		}
		base := dbt.New(p, dbt.Options{}).Run(nil, DefaultMaxSteps)
		if base.Stop.Reason.String() != "halt" {
			return fmt.Errorf("%s: baseline %v", prof.Name, base.Stop)
		}
		ratios := make([]float64, len(cfgs))
		for i, c := range cfgs {
			res := dbt.New(p, c.opts()).Run(nil, DefaultMaxSteps)
			if res.Stop.Reason.String() != "halt" {
				return fmt.Errorf("%s/%s: %v", prof.Name, c.name, res.Stop)
			}
			ratios[i] = float64(res.Cycles) / float64(base.Cycles)
		}
		perWorkload[w] = ratios
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(cfgs))
	for i, c := range cfgs {
		all := make([]float64, len(profs))
		for w := range profs {
			all[w] = perWorkload[w][i]
		}
		rows[i] = AblationRow{Name: c.name, Slowdown: Geomean(all), Note: c.note}
	}
	return rows, nil
}

// FormatAblations renders the ablation table.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablations — geomean slowdown vs the default uninstrumented translator")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %6.3fx   %s\n", r.Name, r.Slowdown, r.Note)
	}
	return b.String()
}

// DataFlowCoverage runs register-bit fault campaigns (the data errors the
// paper's future-work data-flow checking targets) under increasing
// protection. workers shards each campaign's samples; ckptInterval
// selects the campaign engine (0 replay, -1 auto checkpointing).
func DataFlowCoverage(scale float64, samples int, seed int64, workers int, ckptInterval int64) ([]*inject.Report, error) {
	names := []string{"164.gzip", "183.equake"}
	type cfg struct {
		label string
		tech  dbt.Technique
		body  dbt.BodyTransform
	}
	cfgs := []cfg{
		{"none", nil, nil},
		{"RCF", &check.RCF{Style: dbt.UpdateCmov}, nil},
		{"RCF+DFC", &check.RCF{Style: dbt.UpdateCmov}, &check.DFC{}},
		{"RCF+DFC+cmp", &check.RCF{Style: dbt.UpdateCmov}, &check.DFC{SyncAtCmps: true}},
	}
	var reports []*inject.Report
	for _, c := range cfgs {
		merged := &inject.Report{Technique: c.label, Program: "suite", ByCat: map[errmodel.Category]*inject.Agg{}}
		for _, n := range names {
			prof, err := workloads.ByName(n)
			if err != nil {
				return nil, err
			}
			p, err := prof.Build(scale)
			if err != nil {
				return nil, err
			}
			rep, err := inject.Execute(context.Background(), p, inject.Config{
				Technique: c.tech, Body: c.body, RegFaults: true,
				Samples: samples, Seed: seed,
				Options: inject.Options{Workers: workers, CkptInterval: ckptInterval},
				// Data faults can wreck the stack pointer and livelock;
				// a tight budget keeps hang detection cheap.
				MaxSteps: 4_000_000,
			})
			if err != nil {
				return nil, err
			}
			mergeReports(merged, rep)
		}
		merged.Technique = c.label
		reports = append(reports, merged)
	}
	return reports, nil
}

// FormatDataFlowCoverage renders the register-fault campaign comparison.
func FormatDataFlowCoverage(reports []*inject.Report) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Register-bit fault campaigns (data errors; the paper's future work)")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %9s\n", "config", "detected", "benign", "SDC", "hang", "coverage")
	for _, r := range reports {
		t := &r.Totals
		fmt.Fprintf(&b, "%-14s %8d %8d %8d %8d %8.1f%%\n",
			r.Technique, t.Count[inject.OutDetectedSW]+t.Count[inject.OutDetectedHW],
			t.Count[inject.OutBenign], t.Count[inject.OutSDC], t.Count[inject.OutHang],
			t.Coverage()*100)
	}
	return b.String()
}
