// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 2's error-model tables and
// Section 6's performance figures) over the synthetic SPEC2000 workloads,
// plus the fault-injection coverage matrix the paper argues analytically.
//
// Every generator takes a workers knob (0 = GOMAXPROCS): the per-benchmark
// measurements fan out across a goroutine pool and are merged in benchmark
// order, so the tables are identical for every worker count. Each job owns
// its program build and its own DBT instances; nothing mutable is shared.
package bench

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/errmodel"
	"repro/internal/graph"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/par"
	"repro/internal/session"
	"repro/internal/workloads"

	"repro/internal/check"
)

// DefaultMaxSteps bounds every measured run.
const DefaultMaxSteps = 2_000_000_000

// Geomean returns the geometric mean of xs.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// SlowdownRow is one benchmark's slowdowns under a set of configurations.
type SlowdownRow struct {
	Name     string
	Suite    workloads.Suite
	Slowdown []float64
}

// SlowdownTable is a per-benchmark slowdown table with suite geomeans —
// the structure of the paper's Figures 12 and 15.
type SlowdownTable struct {
	Title   string
	Configs []string
	Rows    []SlowdownRow
	GeoFp   []float64
	GeoInt  []float64
	GeoAll  []float64
}

// computeGeomeans fills the suite geometric means.
func (t *SlowdownTable) computeGeomeans() {
	n := len(t.Configs)
	t.GeoFp = make([]float64, n)
	t.GeoInt = make([]float64, n)
	t.GeoAll = make([]float64, n)
	for c := 0; c < n; c++ {
		var fp, in, all []float64
		for _, r := range t.Rows {
			all = append(all, r.Slowdown[c])
			if r.Suite == workloads.SuiteFp {
				fp = append(fp, r.Slowdown[c])
			} else {
				in = append(in, r.Slowdown[c])
			}
		}
		t.GeoFp[c] = Geomean(fp)
		t.GeoInt[c] = Geomean(in)
		t.GeoAll[c] = Geomean(all)
	}
}

// dbtCycles runs p under the translator with the given instrumentation and
// returns the cycle count (cold run: translation included, as the paper
// measures whole executions).
func dbtCycles(p *isa.Program, tech dbt.Technique, pol dbt.Policy) (uint64, error) {
	d := dbt.New(p, dbt.Options{Technique: tech, Policy: pol})
	res := d.Run(nil, DefaultMaxSteps)
	if res.Stop.Reason != cpu.StopHalt {
		return 0, fmt.Errorf("%s/%v: run ended with %v", p.Name, pol, res.Stop)
	}
	return res.Cycles, nil
}

// buildFn builds the named workload at the given scale. The figure
// generators default to a private workloads.ByName build per job; the
// bench suite passes session.Registry.Program instead, so each workload
// builds once and is shared across every figure (and with any warm
// campaign sessions in the same process).
type buildFn func(name string, scale float64) (*isa.Program, error)

// buildOrDefault resolves a nil build function to the private per-job
// build.
func buildOrDefault(build buildFn) buildFn {
	if build != nil {
		return build
	}
	return func(name string, scale float64) (*isa.Program, error) {
		prof, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		return prof.Build(scale)
	}
}

// slowdownRows measures one row per workload — the baseline plus each
// configuration's cycles — fanning the workloads across workers. Rows come
// back in workload order whatever the worker count. onRow, when non-nil,
// receives each row as its job completes (from the worker goroutine, in
// completion order — callers that stream must serialize).
func slowdownRows(scale float64, workers int, build buildFn, onRow func(SlowdownRow), configs func(p *isa.Program, base uint64) ([]float64, error)) ([]SlowdownRow, error) {
	profs := workloads.All()
	rows := make([]SlowdownRow, len(profs))
	bf := buildOrDefault(build)
	err := par.ForEach(len(profs), workers, func(i int) error {
		prof := profs[i]
		p, err := bf(prof.Name, scale)
		if err != nil {
			return err
		}
		base, err := dbtCycles(p, nil, dbt.PolicyAllBB)
		if err != nil {
			return err
		}
		slow, err := configs(p, base)
		if err != nil {
			return err
		}
		rows[i] = SlowdownRow{Name: prof.Name, Suite: prof.Suite, Slowdown: slow}
		if onRow != nil {
			onRow(rows[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure12 measures the per-benchmark slowdown of RCF, EdgCF and ECF
// (Jcc update style, ALLBB policy) relative to the uninstrumented DBT.
func Figure12(scale float64, workers int) (*SlowdownTable, error) {
	return figure12(scale, workers, nil, nil)
}

func figure12(scale float64, workers int, build buildFn, onRow func(SlowdownRow)) (*SlowdownTable, error) {
	techs := check.DBTTechniques(dbt.UpdateJcc)
	names := make([]string, len(techs))
	for i, tc := range techs {
		names[i] = tc.Name()
	}
	t := &SlowdownTable{
		Title:   "Figure 12 - performance slowdown (Jcc update, ALLBB policy)",
		Configs: names,
	}
	rows, err := slowdownRows(scale, workers, build, onRow, func(p *isa.Program, base uint64) ([]float64, error) {
		var slow []float64
		for _, tc := range techs {
			c, err := dbtCycles(p, tc, dbt.PolicyAllBB)
			if err != nil {
				return nil, err
			}
			slow = append(slow, float64(c)/float64(base))
		}
		return slow, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.computeGeomeans()
	return t, nil
}

// Figure14Table is the 2x3 geomean-slowdown table comparing the Jcc and
// CMOVcc conditional-update styles.
type Figure14Table struct {
	// Slowdown[style][technique]: styles Jcc, CMOVcc; techniques RCF,
	// EdgCF, ECF.
	Techniques []string
	Styles     []string
	Slowdown   [2][3]float64
}

// Figure14 measures geometric-mean slowdowns for both update styles.
func Figure14(scale float64, workers int) (*Figure14Table, error) {
	return figure14(scale, workers, nil, nil)
}

func figure14(scale float64, workers int, build buildFn, onRow func(style string, r SlowdownRow)) (*Figure14Table, error) {
	out := &Figure14Table{
		Techniques: []string{"RCF", "EdgCF", "ECF"},
		Styles:     []string{"Jcc", "CMOVcc"},
	}
	for si, style := range []dbt.UpdateStyle{dbt.UpdateJcc, dbt.UpdateCmov} {
		techs := check.DBTTechniques(style)
		var rowHook func(SlowdownRow)
		if onRow != nil {
			name := out.Styles[si]
			rowHook = func(r SlowdownRow) { onRow(name, r) }
		}
		rows, err := slowdownRows(scale, workers, build, rowHook, func(p *isa.Program, base uint64) ([]float64, error) {
			var slow []float64
			for _, tc := range techs {
				c, err := dbtCycles(p, tc, dbt.PolicyAllBB)
				if err != nil {
					return nil, err
				}
				slow = append(slow, float64(c)/float64(base))
			}
			return slow, nil
		})
		if err != nil {
			return nil, err
		}
		for ti := range techs {
			var all []float64
			for _, row := range rows {
				all = append(all, row.Slowdown[ti])
			}
			out.Slowdown[si][ti] = Geomean(all)
		}
	}
	return out, nil
}

// Figure15 measures the RCF technique under the four signature checking
// policies.
func Figure15(scale float64, workers int) (*SlowdownTable, error) {
	return figure15(scale, workers, nil, nil)
}

func figure15(scale float64, workers int, build buildFn, onRow func(SlowdownRow)) (*SlowdownTable, error) {
	pols := dbt.Policies()
	names := make([]string, len(pols))
	for i, pol := range pols {
		names[i] = pol.String()
	}
	t := &SlowdownTable{
		Title:   "Figure 15 - RCF slowdown under the checking policies",
		Configs: names,
	}
	rows, err := slowdownRows(scale, workers, build, onRow, func(p *isa.Program, base uint64) ([]float64, error) {
		var slow []float64
		for _, pol := range pols {
			c, err := dbtCycles(p, &check.RCF{Style: dbt.UpdateJcc}, pol)
			if err != nil {
				return nil, err
			}
			slow = append(slow, float64(c)/float64(base))
		}
		return slow, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.computeGeomeans()
	return t, nil
}

// BaselineRow reports the translator's own overhead for one benchmark.
type BaselineRow struct {
	Name     string
	Suite    workloads.Suite
	Native   uint64
	DBT      uint64
	Overhead float64 // DBT/Native - 1
}

// DBTBaseline measures the uninstrumented translator against native
// execution (the paper reports ~12% average).
func DBTBaseline(scale float64, workers int) ([]BaselineRow, float64, error) {
	return dbtBaseline(scale, workers, nil, nil)
}

func dbtBaseline(scale float64, workers int, build buildFn, onRow func(BaselineRow)) ([]BaselineRow, float64, error) {
	profs := workloads.All()
	rows := make([]BaselineRow, len(profs))
	bf := buildOrDefault(build)
	err := par.ForEach(len(profs), workers, func(i int) error {
		prof := profs[i]
		p, err := bf(prof.Name, scale)
		if err != nil {
			return err
		}
		m := cpu.New()
		if stop := m.RunProgram(p, DefaultMaxSteps); stop.Reason != cpu.StopHalt {
			return fmt.Errorf("%s: native %v", p.Name, stop)
		}
		dc, err := dbtCycles(p, nil, dbt.PolicyAllBB)
		if err != nil {
			return err
		}
		rows[i] = BaselineRow{
			Name:     prof.Name,
			Suite:    prof.Suite,
			Native:   m.Cycles,
			DBT:      dc,
			Overhead: float64(dc)/float64(m.Cycles) - 1,
		}
		if onRow != nil {
			onRow(rows[i])
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	ratios := make([]float64, len(rows))
	for i, r := range rows {
		ratios[i] = float64(r.DBT) / float64(r.Native)
	}
	return rows, Geomean(ratios) - 1, nil
}

// Figure2 runs the error model over both suites, aggregating fault-site
// counts per suite (dynamic weighting, as the paper's per-suite tables).
// The per-workload analyses fan across workers; tables merge in workload
// order.
func Figure2(scale float64, workers int) (intTab, fpTab *errmodel.Table, err error) {
	profs := workloads.All()
	tabs := make([]*errmodel.Table, len(profs))
	err = par.ForEach(len(profs), workers, func(i int) error {
		p, err := profs[i].Build(scale)
		if err != nil {
			return err
		}
		t, err := errmodel.Analyze(p, DefaultMaxSteps)
		if err != nil {
			return err
		}
		tabs[i] = t
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	intTab, fpTab = &errmodel.Table{}, &errmodel.Table{}
	for i, prof := range profs {
		if prof.Suite == workloads.SuiteInt {
			intTab.Add(tabs[i])
		} else {
			fpTab.Add(tabs[i])
		}
	}
	return intTab, fpTab, nil
}

// DefaultCoverageWorkloads is the representative int+fp subset the
// coverage matrix runs when CoverageConfig.Workloads is nil.
var DefaultCoverageWorkloads = []string{"164.gzip", "181.mcf", "171.swim", "183.equake"}

// CoverageTechniques lists the matrix columns: the DBT techniques (CMOVcc,
// the safe configuration) followed by the static baselines.
var CoverageTechniques = []string{"none", "ECF", "EdgCF", "RCF", "CFCSS", "ECCA"}

// CoverageConfig parameterizes the coverage matrix experiment.
type CoverageConfig struct {
	Scale     float64
	Samples   int
	Seed      int64
	Workloads []string // nil: DefaultCoverageWorkloads
	// Sessions routes every campaign through a warm-session registry, so
	// each workload builds once and is shared across all six techniques
	// (and, when the registry persists checkpoint logs, across processes).
	// nil uses a private in-memory registry.
	Sessions *session.Registry
	// Graph caches whole cells by content key when Sessions is nil (a
	// provided registry carries its own). A cached cell skips its
	// campaign entirely; the matrix text is byte-identical either way.
	Graph *graph.Cache
	// Options is the shared execution surface (Trace, Metrics, Workers,
	// CkptInterval), forwarded to every campaign. The classified matrix is
	// byte-identical for every Workers and CkptInterval value; only the
	// engine-telemetry footer (executed vs short-circuited samples) reflects
	// which engine ran.
	core.Options
	// OnReport, when non-nil, receives each technique's merged report as
	// it completes — the bench suite streams the matrix row by row.
	// cached reports that every one of the technique's cells came out of
	// the graph cache.
	OnReport func(r *inject.Report, cached bool)
}

// CoverageMatrix runs fault-injection campaigns for every technique
// (including the static baselines) over the selected workloads and returns
// one merged report per technique. ctx cancels mid-matrix.
func CoverageMatrix(ctx context.Context, cfg CoverageConfig) ([]*inject.Report, error) {
	if cfg.Samples <= 0 {
		cfg.Samples = 200
	}
	names := cfg.Workloads
	if names == nil {
		names = DefaultCoverageWorkloads
	}
	reg := cfg.Sessions
	if reg == nil {
		reg = session.NewRegistry(session.Config{Metrics: cfg.Metrics, Graph: cfg.Graph})
	}
	opts := cfg.Options
	var reports []*inject.Report
	for _, tech := range CoverageTechniques {
		merged := &inject.Report{Technique: tech, Program: "suite", ByCat: map[errmodel.Category]*inject.Agg{}}
		rowCached := true
		for _, n := range names {
			k := session.Key{
				Workload: n, Scale: cfg.Scale, Technique: tech,
				Style: "CMOVcc", CkptInterval: cfg.CkptInterval,
			}
			r, cached, err := reg.RunCell(ctx, k, session.Spec{Samples: cfg.Samples, Seed: cfg.Seed}, opts)
			if err != nil {
				return nil, err
			}
			rowCached = rowCached && cached
			mergeReports(merged, r)
		}
		reports = append(reports, merged)
		if cfg.OnReport != nil {
			cfg.OnReport(merged, rowCached)
		}
	}
	return reports, nil
}

func mergeReports(dst, src *inject.Report) {
	dst.Samples += src.Samples
	dst.NotFired += src.NotFired
	dst.LatencySum += src.LatencySum
	dst.LatencyN += src.LatencyN
	dst.Elapsed += src.Elapsed
	dst.Workers = src.Workers
	dst.Executed += src.Executed
	dst.ShortOffset += src.ShortOffset
	dst.ShortLive += src.ShortLive
	dst.Translator.Add(src.Translator)
	for c, a := range src.ByCat {
		da := dst.ByCat[c]
		if da == nil {
			da = &inject.Agg{}
			dst.ByCat[c] = da
		}
		for o, n := range a.Count {
			da.Count[o] += n
			dst.Totals.Count[o] += n
		}
		da.Total += a.Total
		dst.Totals.Total += a.Total
	}
}
