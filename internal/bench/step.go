package bench

import (
	"fmt"
	"time"

	"repro/internal/comp"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/workloads"
)

// StepResult reports the predecoded hot loop (RunPlan) and the
// block-compiled backend against the baseline per-step interpreter (Run)
// on one workload: best-of-reps wall-clock for each, the composed
// speedups, and an identity verdict over the full architectural outcome.
type StepResult struct {
	Workload       string
	Steps          uint64 // guest instructions retired per run
	Reps           int
	RunSec         float64 // baseline interpreter, best rep
	PlanSec        float64 // predecoded plan, best rep
	CompileSec     float64 // block-compiled backend, best rep
	Speedup        float64 // RunSec / PlanSec
	CompileSpeedup float64 // PlanSec / CompileSec
	Identical      bool    // counters, registers, flags and output all match
}

// StepThroughput measures raw step throughput across the three execution
// backends: the per-step interpreter, the predecoded execution plan, and
// the block-compiled engine with direct chaining. All three run the same
// program to completion reps times; the best (minimum) wall-clock per
// engine is kept, the usual microbenchmark discipline for spotting the
// noise floor. The compiled engine is built once before the reps — hot
// blocks promoted on rep one serve every later rep, exactly how a warm
// campaign reuses a frozen snapshot core. The identity verdict compares
// final registers, flags, IP, step/cycle/branch counters and output —
// both the plan and the compiled backend must be pure performance
// transforms.
func StepThroughput(workload string, scale float64, reps int) (*StepResult, error) {
	if reps <= 0 {
		reps = 3
	}
	prof, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	p, err := prof.Build(scale)
	if err != nil {
		return nil, err
	}

	type outcome struct {
		stop    cpu.Stop
		regs    [isa.NumRegs]int32
		flags   isa.Flags
		ip      uint32
		steps   uint64
		cycles  uint64
		direct  uint64
		outLen  int
		outLast int32
	}
	capture := func(m *cpu.Machine, stop cpu.Stop) outcome {
		o := outcome{
			stop: stop, regs: m.Regs, flags: m.Flags, ip: m.IP,
			steps: m.Steps, cycles: m.Cycles, direct: m.DirectBranches,
			outLen: len(m.Output),
		}
		if o.outLen > 0 {
			o.outLast = m.Output[o.outLen-1]
		}
		return o
	}

	res := &StepResult{Workload: p.Name, Reps: reps}
	var runOut, planOut, compOut outcome
	plan := cpu.NewPlan(p.Code, nil)
	eng := comp.NewEngine(p.Code, nil, 0)
	for rep := 0; rep < reps; rep++ {
		m := cpu.New()
		m.Reset(p)
		start := time.Now()
		stop := m.Run(p.Code, DefaultMaxSteps)
		sec := time.Since(start).Seconds()
		if stop.Reason != cpu.StopHalt {
			return nil, fmt.Errorf("%s: baseline run ended with %v", p.Name, stop)
		}
		if rep == 0 || sec < res.RunSec {
			res.RunSec = sec
		}
		runOut = capture(m, stop)

		m = cpu.New()
		m.Reset(p)
		start = time.Now()
		stop = m.RunPlan(&plan, DefaultMaxSteps)
		sec = time.Since(start).Seconds()
		if stop.Reason != cpu.StopHalt {
			return nil, fmt.Errorf("%s: plan run ended with %v", p.Name, stop)
		}
		if rep == 0 || sec < res.PlanSec {
			res.PlanSec = sec
		}
		planOut = capture(m, stop)

		m = cpu.New()
		m.Reset(p)
		start = time.Now()
		stop = eng.Run(m, &plan, DefaultMaxSteps)
		sec = time.Since(start).Seconds()
		if stop.Reason != cpu.StopHalt {
			return nil, fmt.Errorf("%s: compiled run ended with %v", p.Name, stop)
		}
		if rep == 0 || sec < res.CompileSec {
			res.CompileSec = sec
		}
		compOut = capture(m, stop)
	}
	res.Steps = planOut.steps
	res.Identical = runOut == planOut && compOut == planOut
	if res.PlanSec > 0 {
		res.Speedup = res.RunSec / res.PlanSec
	}
	if res.CompileSec > 0 {
		res.CompileSpeedup = res.PlanSec / res.CompileSec
	}
	return res, nil
}

// FormatStep renders the step-throughput comparison.
func FormatStep(r *StepResult) string {
	mips := func(sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(r.Steps) / sec / 1e6
	}
	return fmt.Sprintf(
		"Interpreter step throughput — %s (%d guest instrs, best of %d)\n"+
			"%-12s %10.4fs %8.1f Minstr/s\n"+
			"%-12s %10.4fs %8.1f Minstr/s\n"+
			"%-12s %10.4fs %8.1f Minstr/s\n"+
			"speedup: %.2fx (plan/baseline), %.2fx (compiled/plan), identical: %v\n",
		r.Workload, r.Steps, r.Reps,
		"baseline", r.RunSec, mips(r.RunSec),
		"predecoded", r.PlanSec, mips(r.PlanSec),
		"compiled", r.CompileSec, mips(r.CompileSec),
		r.Speedup, r.CompileSpeedup, r.Identical)
}
