package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/session"
)

// The bench suite: every performance figure and the coverage matrix as
// one streamed run. RunSuite drives the same generators cfc-bench calls,
// but builds every workload through a warm-session registry (each program
// materializes once and is shared across all figures and any concurrent
// campaign sessions) and emits its results incrementally as SuiteFrames —
// the NDJSON protocol POST /v1/bench serves.

// DefaultSuiteFigures is the figure set a zero SuiteConfig runs.
var DefaultSuiteFigures = []string{"dbt", "12", "14", "15", "ablate", "coverage"}

// SuiteConfig parameterizes one suite run.
type SuiteConfig struct {
	// Scale is the workload dynamic scale (0: 0.05, the serving default —
	// full-scale figures belong to cfc-bench batch runs).
	Scale float64
	// Samples sizes the coverage-matrix campaigns (0: 200).
	Samples int
	// Seed seeds the coverage-matrix campaigns.
	Seed int64
	// Figures selects which figures run, in order (nil:
	// DefaultSuiteFigures). Valid names: dbt, 12, 14, 15, ablate,
	// coverage.
	Figures []string
	// Sessions is the warm-session registry programs build through; nil
	// uses a private in-memory registry.
	Sessions *session.Registry
	// Options is the shared execution surface. Metrics additionally
	// receives one bench_figure span per figure; Workers fans each
	// figure's per-workload jobs.
	core.Options
}

// SuiteFrame is one NDJSON record of a streamed suite run.
type SuiteFrame struct {
	// Kind: "start" (figure begins; Configs lists its columns), "row"
	// (one benchmark / technique as it completes), "table" (the figure's
	// formatted table, Text), "span" (the figure's wall-clock, Seconds),
	// "error" (the figure failed, Error).
	Kind   string `json:"kind"`
	Figure string `json:"figure,omitempty"`
	// Benchmark / Configs / Values carry slowdown rows: Values[i] is the
	// benchmark's ratio under the figure's Configs[i].
	Benchmark string    `json:"benchmark,omitempty"`
	Configs   []string  `json:"configs,omitempty"`
	Values    []float64 `json:"values,omitempty"`
	// Technique / Coverage carry coverage-matrix rows (Coverage is the
	// detected fraction of effective errors, 0..1).
	Technique string  `json:"technique,omitempty"`
	Coverage  float64 `json:"coverage,omitempty"`
	// Cached marks a coverage row whose cells all came out of the graph
	// cell cache — byte-identical results, no campaign executed.
	Cached  bool    `json:"cached,omitempty"`
	Note    string  `json:"note,omitempty"`
	Text    string  `json:"text,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// RunSuite runs the selected figures in order, streaming frames through
// emit. Rows arrive as each benchmark's measurement completes (emit is
// serialized internally, so it may be called from worker goroutines'
// callbacks); every figure ends with its formatted table and a span
// frame. A failed figure emits an error frame and aborts the suite.
func RunSuite(ctx context.Context, cfg SuiteConfig, emit func(SuiteFrame) error) error {
	if cfg.Scale == 0 {
		cfg.Scale = 0.05
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 200
	}
	figures := cfg.Figures
	if figures == nil {
		figures = DefaultSuiteFigures
	}
	if cfg.Sessions == nil {
		cfg.Sessions = session.NewRegistry(session.Config{Metrics: cfg.Metrics})
	}
	build := cfg.Sessions.Program

	// emit must be serialized: row callbacks fire from the figure
	// generators' worker goroutines. A failed emit (client gone) poisons
	// the stream; the next between-rows check aborts the suite.
	var mu sync.Mutex
	var emitErr error
	send := func(f SuiteFrame) {
		mu.Lock()
		defer mu.Unlock()
		if emitErr != nil {
			return
		}
		emitErr = emit(f)
	}
	broken := func() error {
		mu.Lock()
		defer mu.Unlock()
		return emitErr
	}

	for _, fig := range figures {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := broken(); err != nil {
			return err
		}
		start := time.Now()
		if err := runFigure(ctx, cfg, fig, build, send); err != nil {
			send(SuiteFrame{Kind: "error", Figure: fig, Error: err.Error()})
			return err
		}
		d := time.Since(start)
		cfg.Metrics.RecordSpan(fmt.Sprintf("bench_figure{figure=%q}", fig), d)
		send(SuiteFrame{Kind: "span", Figure: fig, Seconds: d.Seconds()})
	}
	return broken()
}

// runFigure dispatches one figure, streaming its rows through send and
// closing with the formatted table frame.
func runFigure(ctx context.Context, cfg SuiteConfig, fig string, build buildFn, send func(SuiteFrame)) error {
	switch fig {
	case "dbt":
		send(SuiteFrame{Kind: "start", Figure: fig, Configs: []string{"overhead"},
			Note: "uninstrumented translator overhead vs native"})
		rows, avg, err := dbtBaseline(cfg.Scale, cfg.Workers, build, func(r BaselineRow) {
			send(SuiteFrame{Kind: "row", Figure: fig, Benchmark: r.Name, Values: []float64{r.Overhead}})
		})
		if err != nil {
			return err
		}
		PublishBaseline(cfg.Metrics, rows, avg)
		send(SuiteFrame{Kind: "table", Figure: fig, Text: FormatBaseline(rows, avg)})
	case "12":
		send(SuiteFrame{Kind: "start", Figure: fig, Configs: []string{"RCF", "EdgCF", "ECF"},
			Note: "slowdown, Jcc update, ALLBB policy"})
		t, err := figure12(cfg.Scale, cfg.Workers, build, func(r SlowdownRow) {
			send(SuiteFrame{Kind: "row", Figure: fig, Benchmark: r.Name, Values: r.Slowdown})
		})
		if err != nil {
			return err
		}
		PublishSlowdownTable(cfg.Metrics, fig, t)
		send(SuiteFrame{Kind: "table", Figure: fig, Text: FormatSlowdownTable(t)})
	case "14":
		send(SuiteFrame{Kind: "start", Figure: fig, Configs: []string{"RCF", "EdgCF", "ECF"},
			Note: "Jcc vs CMOVcc update styles"})
		t, err := figure14(cfg.Scale, cfg.Workers, build, func(style string, r SlowdownRow) {
			send(SuiteFrame{Kind: "row", Figure: fig, Benchmark: r.Name, Values: r.Slowdown, Note: style})
		})
		if err != nil {
			return err
		}
		PublishFigure14(cfg.Metrics, t)
		send(SuiteFrame{Kind: "table", Figure: fig, Text: FormatFigure14(t)})
	case "15":
		send(SuiteFrame{Kind: "start", Figure: fig, Configs: []string{"ALLBB", "RET-BE", "RET", "END"},
			Note: "RCF under the checking policies"})
		t, err := figure15(cfg.Scale, cfg.Workers, build, func(r SlowdownRow) {
			send(SuiteFrame{Kind: "row", Figure: fig, Benchmark: r.Name, Values: r.Slowdown})
		})
		if err != nil {
			return err
		}
		PublishSlowdownTable(cfg.Metrics, fig, t)
		send(SuiteFrame{Kind: "table", Figure: fig, Text: FormatSlowdownTable(t)})
	case "ablate":
		send(SuiteFrame{Kind: "start", Figure: fig, Configs: []string{"slowdown"},
			Note: "design-choice ablations vs the default translator"})
		rows, err := ablations(cfg.Scale, cfg.Workers, build)
		if err != nil {
			return err
		}
		for _, r := range rows {
			send(SuiteFrame{Kind: "row", Figure: fig, Benchmark: r.Name,
				Values: []float64{r.Slowdown}, Note: r.Note})
		}
		PublishAblations(cfg.Metrics, rows)
		send(SuiteFrame{Kind: "table", Figure: fig, Text: FormatAblations(rows)})
	case "coverage":
		send(SuiteFrame{Kind: "start", Figure: fig, Configs: CoverageTechniques,
			Note: "fault-injection coverage matrix"})
		reports, err := CoverageMatrix(ctx, CoverageConfig{
			Scale: cfg.Scale, Samples: cfg.Samples, Seed: cfg.Seed,
			Sessions: cfg.Sessions, Options: cfg.Options,
			OnReport: func(r *inject.Report, cached bool) {
				send(SuiteFrame{Kind: "row", Figure: fig, Technique: r.Technique,
					Coverage: r.Totals.Coverage(), Cached: cached})
			},
		})
		if err != nil {
			return err
		}
		PublishCoverage(cfg.Metrics, fig, reports)
		send(SuiteFrame{Kind: "table", Figure: fig, Text: FormatCoverageMatrix(reports)})
	default:
		return fmt.Errorf("unknown figure %q (valid: dbt, 12, 14, 15, ablate, coverage)", fig)
	}
	return nil
}
