package errmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClassify(t *testing.T) {
	p := mustAssemble(t, `
main:
    movi ecx, 3      ; B0: 0
loop:
    addi eax, 1      ; B1: 1-4
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax          ; B2: 5-6
    halt
`)
	g := cfg.Build(p)
	// Branch at address 4 (jgt) lives in B1 [1,5).
	cases := []struct {
		target uint32
		want   Category
	}{
		{1, CatB},       // beginning of same block
		{2, CatC},       // middle of same block
		{3, CatC},       // middle of same block
		{0, CatD},       // beginning of other block (B0)
		{5, CatD},       // beginning of other block (B2)
		{6, CatE},       // middle of other block
		{1000, CatF},    // outside code
		{1 << 30, CatF}, // far outside
	}
	for _, c := range cases {
		if got := Classify(g, 4, c.target); got != c.want {
			t.Errorf("Classify(4, %d) = %v, want %v", c.target, got, c.want)
		}
	}
}

func TestAnalyzeAccounting(t *testing.T) {
	p := mustAssemble(t, `
main:
    movi ecx, 4
loop:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    halt
`)
	tab, err := Analyze(p, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// The jgt executes 4 times: 3 taken, 1 not taken.
	if tab.Branches != 4 {
		t.Fatalf("branches = %d, want 4", tab.Branches)
	}
	// Sites: each execution has 32 offset + 5 flag sites.
	want := uint64(4 * (isa.OffsetBits + isa.NumFlagBits))
	if tab.Total != want {
		t.Errorf("total sites = %d, want %d", tab.Total, want)
	}
	// Not-taken address flips are all No Error.
	if got := tab.Counts[CatNoError][0][0]; got != isa.OffsetBits {
		t.Errorf("not-taken addr no-error = %d, want %d", got, isa.OffsetBits)
	}
	// Probabilities sum to 1.
	var sum float64
	for c := Category(0); c < NumCategories; c++ {
		sum += tab.CategoryProb(c)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probability sum = %v", sum)
	}
}

func TestMistakenBranchesClassifiedA(t *testing.T) {
	// jeq with Z set: flipping Z (and only Z among the condition-relevant
	// bits) changes the direction.
	p := mustAssemble(t, `
    movi eax, 1
    cmpi eax, 1
    jeq done
    nop
done:
    halt
`)
	tab, err := Analyze(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tab.CategoryProb(CatA) == 0 {
		t.Error("no category A sites found for a conditional branch")
	}
	// A-sites from a taken branch are flag faults.
	if tab.Counts[CatA][1][1] == 0 {
		t.Error("taken/flags A cell empty")
	}
	if tab.Counts[CatA][0][0] != 0 || tab.Counts[CatA][1][0] != 0 {
		t.Error("address flips cannot produce category A")
	}
}

func TestUnconditionalBranchesHaveNoFlagSites(t *testing.T) {
	p := mustAssemble(t, `
    jmp over
over:
    halt
`)
	tab, err := Analyze(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Total != isa.OffsetBits {
		t.Errorf("total = %d, want %d (offset bits only)", tab.Total, isa.OffsetBits)
	}
	for c := Category(0); c < NumCategories; c++ {
		if tab.Counts[c][1][1]+tab.Counts[c][0][1] != 0 {
			t.Errorf("flag sites recorded for unconditional branch (cat %v)", c)
		}
	}
}

func TestSelfLoopProducesCategoryC(t *testing.T) {
	// A single-block loop: low-bit offset flips land inside the same
	// block — the mechanism behind the paper's high category C for
	// SPEC-Fp (big blocks, tight loops).
	p := mustAssemble(t, `
main:
    movi ecx, 100
loop:
    addi eax, 1
    addi eax, 2
    addi eax, 3
    addi eax, 4
    addi eax, 5
    addi eax, 6
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    halt
`)
	tab, err := Analyze(p, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if tab.CategoryProb(CatC) == 0 {
		t.Error("self-loop should produce category C sites")
	}
	// Category B needs a flip landing exactly on the block start — rare by
	// construction (the paper measures ~0.1%), so no assertion on it here.
	// High offset bits leave the tiny code region: F dominates.
	if tab.CategoryProb(CatF) < tab.CategoryProb(CatC) {
		t.Error("tiny program: F should dominate C")
	}
}

func TestNormalizedSumsToOne(t *testing.T) {
	p := mustAssemble(t, `
main:
    movi ecx, 50
loop:
    addi eax, 1
    cmpi eax, 3
    jlt skip
    movi eax, 0
skip:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    halt
`)
	tab, err := Analyze(p, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	norm := tab.Normalized()
	var sum float64
	for _, v := range norm {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("normalized sum = %v", sum)
	}
	// E should beat B in any multi-block program (paper's headline shape).
	if norm[CatE] <= norm[CatB] {
		t.Errorf("E (%v) should exceed B (%v)", norm[CatE], norm[CatB])
	}
}

func TestAddMerge(t *testing.T) {
	p := mustAssemble(t, "main:\n movi ecx, 2\nl:\n subi ecx, 1\n cmpi ecx, 0\n jgt l\n halt\n")
	t1, err := Analyze(p, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	t2 := &Table{}
	t2.Add(t1)
	t2.Add(t1)
	if t2.Total != 2*t1.Total || t2.Branches != 2*t1.Branches {
		t.Error("Add did not merge counts")
	}
	if math.Abs(t2.CategoryProb(CatF)-t1.CategoryProb(CatF)) > 1e-12 {
		t.Error("probabilities must be invariant under self-merge")
	}
}

func TestAnalyzeFailsOnBrokenProgram(t *testing.T) {
	p := &isa.Program{Name: "spin", Code: []isa.Instr{{Op: isa.OpJmp, Imm: -1}}}
	if _, err := Analyze(p, 100); err == nil {
		t.Error("non-halting program should fail analysis")
	}
}

func TestFormatting(t *testing.T) {
	p := mustAssemble(t, "main:\n movi ecx, 2\nl:\n subi ecx, 1\n cmpi ecx, 0\n jgt l\n halt\n")
	tab, err := Analyze(p, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	f2 := FormatFigure2("Figure 2 - test", tab)
	if !strings.Contains(f2, "No Error") || !strings.Contains(f2, "Tk/Addr") {
		t.Errorf("figure 2 format:\n%s", f2)
	}
	f3 := FormatFigure3("Figure 3 - test", tab)
	if !strings.Contains(f3, "%") {
		t.Errorf("figure 3 format:\n%s", f3)
	}
}
