package errmodel

import (
	"fmt"
	"strings"
)

// FormatFigure2 renders a table in the layout of the paper's Figure 2:
// rows per category, columns Taken/Not-taken × Addr/Flags plus totals.
func FormatFigure2(title string, t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %12s %10s\n",
		"Category", "Tk/Addr", "Tk/Flags", "NotTk/Addr", "NotTk/Flags", "Total")
	pct := func(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
	var colTot [4]float64
	for c := Category(0); c < NumCategories; c++ {
		ta := t.Prob(c, true, false)
		tf := t.Prob(c, true, true)
		na := t.Prob(c, false, false)
		nf := t.Prob(c, false, true)
		colTot[0] += ta
		colTot[1] += tf
		colTot[2] += na
		colTot[3] += nf
		fmt.Fprintf(&b, "%-10s %10s %10s %12s %12s %10s\n",
			c, pct(ta), pct(tf), pct(na), pct(nf), pct(ta+tf+na+nf))
	}
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %12s %10s\n",
		"Total", pct(colTot[0]), pct(colTot[1]), pct(colTot[2]), pct(colTot[3]),
		pct(colTot[0]+colTot[1]+colTot[2]+colTot[3]))
	fmt.Fprintf(&b, "(direct branch executions: %d; indirect excluded: %d)\n",
		t.Branches, t.IndirectSkipped)
	return b.String()
}

// FormatFigure3 renders the normalized A-E probabilities (Figure 3).
func FormatFigure3(title string, t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (normalized over categories A-E)\n", title)
	norm := t.Normalized()
	for _, c := range SDCCategories() {
		fmt.Fprintf(&b, "  %-2s %7.2f%%\n", c, norm[c]*100)
	}
	return b.String()
}
