// Package errmodel implements the paper's Section 2 error model: a
// soft-error flips exactly one bit in the address offset of a branch
// instruction or in the flags that determine a conditional branch's
// direction. Every executed direct branch contributes one fault site per
// offset bit (32) and, when conditional, one per flag bit; each site has
// equal probability. Sites are classified into the branch-error categories
// of Figure 1:
//
//	A — mistaken branch (flag flip changes the direction)
//	B — jump to the beginning of the same basic block
//	C — jump to the middle of the same basic block
//	D — jump to the beginning of another basic block
//	E — jump to the middle of another basic block
//	F — jump to a non-code memory region (caught by hardware protection)
//
// plus NoError for flips with no control-flow effect (offset flips on
// not-taken branches, flag flips that do not change the direction).
// Indirect branches are excluded, as in the paper (they account for <5% of
// dynamic branch frequency and their targets are only known at run time).
package errmodel

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/cpu"
	"repro/internal/isa"
)

// Category is a branch-error category.
type Category int

// Categories in paper order.
const (
	CatA Category = iota
	CatB
	CatC
	CatD
	CatE
	CatF
	CatNoError
	NumCategories
)

// CatData labels register-bit (data) faults in injection reports. The
// Section 2 error model never produces it: it exists for the data-flow
// checking experiments (the paper's future work).
const CatData = NumCategories

var catNames = [...]string{"A", "B", "C", "D", "E", "F", "No Error", "Data"}

// String names the category.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "?"
}

// SDCCategories lists the categories that can cause silent data corruption
// (A through E); F is detected by memory protection.
func SDCCategories() []Category { return []Category{CatA, CatB, CatC, CatD, CatE} }

// FaultSite axes.
const (
	kindAddr = 0
	kindFlag = 1
)

// Table accumulates fault-site counts, indexed by category, branch
// direction (taken=1) and fault kind (addr/flags) — the structure of the
// paper's Figure 2.
type Table struct {
	Counts [NumCategories][2][2]uint64
	Total  uint64
	// Branches is the number of direct-branch executions analyzed.
	Branches uint64
	// IndirectSkipped counts indirect branch executions excluded from the
	// model.
	IndirectSkipped uint64
}

// Add merges another table's counts (dynamic weighting).
func (t *Table) Add(o *Table) {
	for c := range t.Counts {
		for d := range t.Counts[c] {
			for k := range t.Counts[c][d] {
				t.Counts[c][d][k] += o.Counts[c][d][k]
			}
		}
	}
	t.Total += o.Total
	t.Branches += o.Branches
	t.IndirectSkipped += o.IndirectSkipped
}

// Prob returns the probability of (category, taken, kind) among all fault
// sites, as the paper's Figure 2 reports.
func (t *Table) Prob(c Category, taken bool, flagKind bool) float64 {
	if t.Total == 0 {
		return 0
	}
	d, k := 0, kindAddr
	if taken {
		d = 1
	}
	if flagKind {
		k = kindFlag
	}
	return float64(t.Counts[c][d][k]) / float64(t.Total)
}

// CategoryProb returns the total probability of a category.
func (t *Table) CategoryProb(c Category) float64 {
	if t.Total == 0 {
		return 0
	}
	var n uint64
	for d := 0; d < 2; d++ {
		for k := 0; k < 2; k++ {
			n += t.Counts[c][d][k]
		}
	}
	return float64(n) / float64(t.Total)
}

// Normalized returns the A..E probabilities renormalized over A..E only —
// the errors that may lead to silent data corruption (Figure 3).
func (t *Table) Normalized() map[Category]float64 {
	var sum float64
	for _, c := range SDCCategories() {
		sum += t.CategoryProb(c)
	}
	out := make(map[Category]float64, 5)
	for _, c := range SDCCategories() {
		if sum > 0 {
			out[c] = t.CategoryProb(c) / sum
		}
	}
	return out
}

// Classify assigns a faulty branch target to a category, given the branch
// address, using the static CFG. Targets outside the code region are F.
func Classify(g *cfg.Graph, branchIP, target uint32) Category {
	tb := g.BlockAt(target)
	if tb == nil {
		return CatF
	}
	cur := g.BlockAt(branchIP)
	if tb == cur {
		if target == tb.Start {
			return CatB
		}
		return CatC
	}
	if target == tb.Start {
		return CatD
	}
	return CatE
}

// Analyze runs the program natively, enumerating every fault site of every
// executed direct branch and classifying it. maxSteps bounds the run.
func Analyze(p *isa.Program, maxSteps uint64) (*Table, error) {
	g := cfg.Build(p)
	t := &Table{}
	m := cpu.New()
	m.BranchHook = func(ev cpu.BranchEvent) {
		analyzeBranch(t, g, ev)
	}
	m.Reset(p)
	stop := m.Run(p.Code, maxSteps)
	if stop.Reason != cpu.StopHalt {
		return nil, fmt.Errorf("%s: error-model run ended with %v", p.Name, stop)
	}
	t.IndirectSkipped = m.IndirectBranches
	return t, nil
}

func analyzeBranch(t *Table, g *cfg.Graph, ev cpu.BranchEvent) {
	t.Branches++
	in := ev.Instr
	cond := in.Op.IsConditional()
	dir := 0
	if ev.Taken {
		dir = 1
	}

	// Address-offset bits.
	if !ev.Taken {
		// The offset is unused when the branch falls through: no error.
		t.Counts[CatNoError][dir][kindAddr] += isa.OffsetBits
		t.Total += isa.OffsetBits
	} else {
		for bit := 0; bit < isa.OffsetBits; bit++ {
			imm := in.Imm ^ (int32(1) << bit)
			target := ev.IP + 1 + uint32(imm)
			cat := Classify(g, ev.IP, target)
			t.Counts[cat][dir][kindAddr]++
			t.Total++
		}
	}

	// Flag bits determine the direction of conditional branches only.
	if cond && in.Op == isa.OpJcc {
		cc := in.Cond()
		for bit := 0; bit < isa.NumFlagBits; bit++ {
			flipped := ev.Flags ^ (isa.Flags(1) << bit)
			if cc.Eval(flipped) != ev.Taken {
				t.Counts[CatA][dir][kindFlag]++
			} else {
				t.Counts[CatNoError][dir][kindFlag]++
			}
			t.Total++
		}
	}
}
