package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(p)
}

func TestLinearProgram(t *testing.T) {
	g := build(t, "movi eax, 1\naddi eax, 2\nout eax\nhalt\n")
	if g.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", g.NumBlocks())
	}
	b := g.Blocks[0]
	if b.Start != 0 || b.End != 4 || b.Len() != 4 {
		t.Errorf("block = %v", b)
	}
	if len(b.Succs) != 0 {
		t.Errorf("halt block has successors: %v", b.Succs)
	}
}

func TestDiamond(t *testing.T) {
	g := build(t, `
    cmpi eax, 0      ; B0: 0-1
    jeq else
    movi ebx, 1      ; B1: 2-3
    jmp join
else:
    movi ebx, 2      ; B2: 4
join:
    out ebx          ; B3: 5-6
    halt
`)
	if g.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4: %v", g.NumBlocks(), g.Blocks)
	}
	b0 := g.BlockStarting(0)
	if len(b0.Succs) != 2 {
		t.Fatalf("B0 succs = %v", b0.Succs)
	}
	// jeq targets 4 (else) and falls through to 2.
	if b0.Succs[0] != 4 || b0.Succs[1] != 2 {
		t.Errorf("B0 succs = %v, want [4 2]", b0.Succs)
	}
	b1 := g.BlockStarting(2)
	if len(b1.Succs) != 1 || b1.Succs[0] != 5 {
		t.Errorf("B1 succs = %v, want [5]", b1.Succs)
	}
	// Fall-through block split by the join leader.
	b2 := g.BlockStarting(4)
	if len(b2.Succs) != 1 || b2.Succs[0] != 5 {
		t.Errorf("B2 succs = %v, want [5]", b2.Succs)
	}
}

func TestLoopBackEdge(t *testing.T) {
	g := build(t, `
    movi ecx, 10     ; B0
loop:
    subi ecx, 1      ; B1
    cmpi ecx, 0
    jgt loop
    halt             ; B2
`)
	if g.NumBlocks() != 3 {
		t.Fatalf("blocks = %d: %v", g.NumBlocks(), g.Blocks)
	}
	loopBlock := g.BlockStarting(1)
	if loopBlock == nil {
		t.Fatal("no block at loop head")
	}
	if !g.HasBackEdge(loopBlock) {
		t.Error("loop block should have a back edge")
	}
	if g.HasBackEdge(g.BlockStarting(0)) {
		t.Error("entry block has no back edge")
	}
	if !IsBackEdge(3, 1) || IsBackEdge(3, 5) {
		t.Error("IsBackEdge heuristic wrong")
	}
	// Self back-edge (branch to its own address) counts.
	if !IsBackEdge(3, 3) {
		t.Error("self branch is a back edge")
	}
}

func TestCallSplitsBlocks(t *testing.T) {
	g := build(t, `
main:
    movi eax, 1     ; B0: 0-1 (call terminates it)
    call fn
    out eax         ; B1: 2-3
    halt
fn:
    ret             ; B2: 4
`)
	if g.NumBlocks() != 3 {
		t.Fatalf("blocks = %d: %v", g.NumBlocks(), g.Blocks)
	}
	b0 := g.BlockStarting(0)
	// Call successors: target fn (4) and return-continuation (2).
	if len(b0.Succs) != 2 || b0.Succs[0] != 4 || b0.Succs[1] != 2 {
		t.Errorf("call succs = %v, want [4 2]", b0.Succs)
	}
	fn := g.BlockStarting(4)
	if !fn.HasIndirectSucc {
		t.Error("ret block should have indirect successor")
	}
	if !g.EndsWithRet(fn) || g.EndsWithRet(b0) {
		t.Error("EndsWithRet misclassifies")
	}
}

func TestIndirectTargetsAreLeaders(t *testing.T) {
	g := build(t, `
main:
    movi ecx, =fn
    callr ecx
    halt
fn:
    movi eax, 5
    ret
`)
	if !g.IsBlockStart(3) {
		t.Error("indirect call target fn should start a block")
	}
	// callr block: fall-through successor plus indirect.
	b := g.BlockAt(1)
	if !b.HasIndirectSucc {
		t.Error("callr block should be marked indirect")
	}
}

func TestBlockAtClassification(t *testing.T) {
	g := build(t, `
    movi ecx, 3      ; B0: 0
loop:
    subi ecx, 1      ; B1: 1-3
    cmpi ecx, 0
    jgt loop
    halt             ; B2: 4
`)
	if b := g.BlockAt(2); b == nil || b.Start != 1 {
		t.Errorf("BlockAt(2) = %v", b)
	}
	if !g.IsBlockStart(1) || g.IsBlockStart(2) {
		t.Error("block start classification wrong")
	}
	if g.BlockAt(100) != nil {
		t.Error("BlockAt outside code should be nil")
	}
	b := g.BlockAt(3)
	if !b.Contains(3) || b.Contains(4) {
		t.Error("Contains wrong")
	}
}

func TestEveryInstrInExactlyOneBlock(t *testing.T) {
	g := build(t, `
main:
    movi eax, 0
    movi ecx, 4
outer:
    movi ebx, 3
inner:
    add eax, ebx
    subi ebx, 1
    cmpi ebx, 0
    jgt inner
    subi ecx, 1
    cmpi ecx, 0
    jgt outer
    call fn
    out eax
    halt
fn:
    addi eax, 100
    ret
dead:
    nop
    nop
    jmp dead
`)
	n := g.Prog.Len()
	covered := make([]int, n)
	for _, b := range g.Blocks {
		if b.Start >= b.End {
			t.Fatalf("empty block %v", b)
		}
		for a := b.Start; a < b.End; a++ {
			covered[a]++
		}
		if got := g.BlockAt(b.Start); got != b {
			t.Errorf("BlockAt(%#x) = %v, want %v", b.Start, got, b)
		}
	}
	for a, c := range covered {
		if c != 1 {
			t.Errorf("instr %d covered %d times", a, c)
		}
	}
	// Dead code still has block structure.
	if g.BlockAt(n-1) == nil {
		t.Error("dead code not covered")
	}
}

func TestStats(t *testing.T) {
	g := build(t, `
    movi ecx, 2
l:
    subi ecx, 1
    cmpi ecx, 0
    jgt l
    call f
    halt
f:
    ret
`)
	s := g.ComputeStats()
	if s.Blocks != g.NumBlocks() {
		t.Error("stats block count mismatch")
	}
	if s.BackEdges != 1 {
		t.Errorf("back edges = %d, want 1", s.BackEdges)
	}
	if s.IndirectEnds != 1 {
		t.Errorf("indirect ends = %d, want 1", s.IndirectEnds)
	}
	if s.MeanSize <= 0 || s.MaxSize == 0 {
		t.Errorf("sizes: %+v", s)
	}
}

func TestEmptyProgram(t *testing.T) {
	g := Build(&isa.Program{Name: "empty"})
	if g.NumBlocks() != 0 || g.BlockAt(0) != nil {
		t.Error("empty program should have no blocks")
	}
}

func TestEntryIsLeader(t *testing.T) {
	p, err := asm.Assemble("e", `
pad:
    nop
    nop
.entry main
main:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(p)
	if !g.IsBlockStart(p.Entry) {
		t.Error("entry must start a block")
	}
}
