// Package cfg recovers the control-flow graph of a guest program: basic
// block boundaries, successor edges, and back-edge identification. The
// error model uses it to classify faulty branch targets into the paper's
// categories (beginning/middle of same/other block), and the RET-BE
// checking policy uses back edges to place signature checks inside loops.
package cfg

import (
	"fmt"

	"repro/internal/isa"
)

// Block is a basic block: the maximal straight-line range [Start, End).
type Block struct {
	ID    int
	Start uint32
	End   uint32 // exclusive

	// Succs lists the statically known successor block start addresses
	// (branch target and/or fall-through). Indirect successors (ret, jmpr,
	// callr) are not enumerable statically.
	Succs []uint32
	// HasIndirectSucc marks blocks ending in ret/jmpr/callr.
	HasIndirectSucc bool
}

// Len returns the number of instructions in the block.
func (b *Block) Len() uint32 { return b.End - b.Start }

// Contains reports whether addr lies inside the block.
func (b *Block) Contains(addr uint32) bool { return addr >= b.Start && addr < b.End }

func (b *Block) String() string {
	return fmt.Sprintf("B%d[0x%x,0x%x)", b.ID, b.Start, b.End)
}

// Graph is the control-flow graph of a program.
type Graph struct {
	Prog    *isa.Program
	Blocks  []*Block
	byStart map[uint32]*Block
	// blockOf maps every instruction address to its block index.
	blockOf []int32
}

// Build scans the program and recovers all basic blocks. Every instruction
// belongs to exactly one block; leaders are the entry point, every direct
// branch target, and every instruction following a terminator (so that
// unreachable/cold code is still partitioned into blocks, which matters for
// classifying wild branch targets).
func Build(p *isa.Program) *Graph {
	n := p.Len()
	leader := make([]bool, n)
	if n == 0 {
		return &Graph{Prog: p, byStart: map[uint32]*Block{}}
	}
	leader[0] = true
	leader[p.Entry] = true
	for addr := uint32(0); addr < n; addr++ {
		in := p.Code[addr]
		if in.Op.IsDirectBranch() {
			if tgt := in.Target(addr); tgt < n {
				leader[tgt] = true
			}
		}
		if in.Op.IsTerminator() && addr+1 < n {
			leader[addr+1] = true
		}
		// Addresses materialized for indirect flow (movi rd, =label) are
		// entry points too.
		if in.Op == isa.OpMovRI && in.Imm >= 0 && uint32(in.Imm) < n {
			// Conservative: only mark when the register feeds an indirect
			// branch somewhere; marking every in-range immediate would
			// shred blocks. The builder emits =label references only for
			// genuine code addresses, and workload programs use small
			// integer immediates far below code addresses rarely enough
			// that the distortion is negligible. We mark only values that
			// are targets of callr/jmpr per a cheap whole-program check.
		}
	}
	// Second pass: mark movi-immediates as leaders only if the program
	// contains any indirect branch at all.
	hasIndirect := false
	for _, in := range p.Code {
		if in.Op == isa.OpJmpR || in.Op == isa.OpCallR {
			hasIndirect = true
			break
		}
	}
	if hasIndirect {
		for _, in := range p.Code {
			if in.Op == isa.OpMovRI && in.Imm > 0 && uint32(in.Imm) < n {
				if _, ok := p.Symbols[uint32(in.Imm)]; ok {
					leader[uint32(in.Imm)] = true
				}
			}
		}
	}

	g := &Graph{
		Prog:    p,
		byStart: make(map[uint32]*Block),
		blockOf: make([]int32, n),
	}
	var cur *Block
	for addr := uint32(0); addr < n; addr++ {
		if leader[addr] || cur == nil {
			if cur != nil {
				cur.End = addr
			}
			cur = &Block{ID: len(g.Blocks), Start: addr}
			g.Blocks = append(g.Blocks, cur)
			g.byStart[addr] = cur
		}
		g.blockOf[addr] = int32(cur.ID)
		if in := p.Code[addr]; in.Op.IsTerminator() {
			cur.End = addr + 1
			fillSuccs(cur, addr, in, n)
			cur = nil
		}
	}
	if cur != nil {
		cur.End = n
		// Block falls off the end of the image; no successors.
	}
	// Fall-through successors for blocks split by a leader (no terminator).
	for _, b := range g.Blocks {
		last := p.Code[b.End-1]
		if !last.Op.IsTerminator() && b.End < n {
			b.Succs = append(b.Succs, b.End)
		}
	}
	return g
}

func fillSuccs(b *Block, addr uint32, in isa.Instr, n uint32) {
	switch {
	case in.Op.IsDirectBranch():
		if tgt := in.Target(addr); tgt < n {
			b.Succs = append(b.Succs, tgt)
		}
		if in.Op.HasFallthrough() && addr+1 < n {
			b.Succs = append(b.Succs, addr+1)
		}
	case in.Op == isa.OpRet, in.Op == isa.OpJmpR:
		b.HasIndirectSucc = true
	case in.Op == isa.OpCallR:
		b.HasIndirectSucc = true
		if addr+1 < n {
			b.Succs = append(b.Succs, addr+1)
		}
	}
}

// NumBlocks returns the number of basic blocks.
func (g *Graph) NumBlocks() int { return len(g.Blocks) }

// BlockAt returns the block containing addr, or nil when addr is outside
// the code region.
func (g *Graph) BlockAt(addr uint32) *Block {
	if addr >= uint32(len(g.blockOf)) {
		return nil
	}
	return g.Blocks[g.blockOf[addr]]
}

// BlockStarting returns the block whose first instruction is addr, or nil.
func (g *Graph) BlockStarting(addr uint32) *Block { return g.byStart[addr] }

// IsBlockStart reports whether addr is the first instruction of a block.
func (g *Graph) IsBlockStart(addr uint32) bool {
	_, ok := g.byStart[addr]
	return ok
}

// IsBackEdge reports whether a branch at fromAddr targeting target closes a
// loop. We use the standard dynamic-translation heuristic: a backward
// direct branch (target at or before the branch) is a back edge. The RET-BE
// policy uses this to guarantee checks inside every loop, bounding
// error-report latency.
func IsBackEdge(fromAddr, target uint32) bool { return target <= fromAddr }

// HasBackEdge reports whether the block ends with a backward direct branch.
func (g *Graph) HasBackEdge(b *Block) bool {
	last := g.Prog.Code[b.End-1]
	if !last.Op.IsDirectBranch() {
		return false
	}
	return IsBackEdge(b.End-1, last.Target(b.End-1))
}

// EndsWithRet reports whether the block ends with a return instruction.
func (g *Graph) EndsWithRet(b *Block) bool {
	return g.Prog.Code[b.End-1].Op == isa.OpRet
}

// Stats summarizes block-size structure, used to sanity-check workload
// shapes (the paper's fp benchmarks have large blocks, int small ones).
type Stats struct {
	Blocks       int
	MeanSize     float64
	MaxSize      uint32
	BackEdges    int
	IndirectEnds int
}

// ComputeStats returns structural statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	var s Stats
	s.Blocks = len(g.Blocks)
	var total uint64
	for _, b := range g.Blocks {
		total += uint64(b.Len())
		if b.Len() > s.MaxSize {
			s.MaxSize = b.Len()
		}
		if g.HasBackEdge(b) {
			s.BackEdges++
		}
		if b.HasIndirectSucc {
			s.IndirectEnds++
		}
	}
	if s.Blocks > 0 {
		s.MeanSize = float64(total) / float64(s.Blocks)
	}
	return s
}
