package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct{ n, jobs, want int }{
		{0, 100, min(max, 100)},
		{-3, 100, min(max, 100)},
		{4, 100, 4},
		{4, 2, 2},
		{1, 0, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.n, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.n, c.jobs, got, c.want)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const jobs = 500
		var counts [jobs]atomic.Int32
		err := ForEach(jobs, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if n := counts[i].Load(); n != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(100, workers, func(i int) error {
			if i%10 == 3 {
				return fmt.Errorf("job %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3" {
			t.Errorf("workers=%d: err = %v, want job 3", workers, err)
		}
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := ForEach(100, 1, func(i int) error {
		ran++
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran != 6 {
		t.Errorf("err = %v after %d jobs, want boom after 6", err, ran)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero jobs: %v", err)
	}
}
