// Package par is the deterministic fan-out primitive shared by the
// fault-injection and benchmark harnesses: a fixed pool of goroutines
// drains an indexed job list, and every job writes only its own result
// slot. Because job i's inputs are derived from i alone and the caller
// merges slots in index order, the combined result is bit-identical
// regardless of the worker count or the order in which jobs finish.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n <= 0 selects GOMAXPROCS, and the
// pool is never larger than the job count.
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, jobs) on at most workers
// goroutines (resolved through Workers). It returns the error of the
// lowest-indexed failing job, so the reported error does not depend on
// scheduling. With one worker the jobs run inline on the calling
// goroutine in index order.
func ForEach(jobs, workers int, fn func(i int) error) error {
	return ForEachShard(jobs, workers, func(_, i int) error { return fn(i) })
}

// ForEachCtx is ForEach with cancellation: once ctx is done no further
// jobs start, and ctx.Err() is returned (it takes precedence over job
// errors, which a cancellation typically causes downstream).
func ForEachCtx(ctx context.Context, jobs, workers int, fn func(i int) error) error {
	return ForEachShardCtx(ctx, jobs, workers, func(_, i int) error { return fn(i) })
}

// RunWorkers starts one goroutine per worker index in [0, workers) and
// runs fn(w) on each. Unlike ForEachShard there is no shared job counter:
// the caller statically partitions the work by worker index (e.g. a
// round-robin split of a sorted job list), trading dynamic balance for a
// per-worker processing order the caller controls. With one worker fn runs
// inline on the calling goroutine. The lowest-indexed worker's error is
// returned, so the reported error does not depend on scheduling.
func RunWorkers(workers int, fn func(w int) error) error {
	return RunWorkersCtx(context.Background(), workers, func(_ context.Context, w int) error {
		return fn(w)
	})
}

// RunWorkersCtx is RunWorkers with cancellation. Each worker receives ctx
// and is expected to poll ctx.Err() between jobs of its static partition —
// the pool itself cannot preempt a running job. When ctx is done by the
// time all workers return, ctx.Err() is reported in preference to worker
// errors, so callers see the cancellation rather than its knock-on
// failures.
func RunWorkersCtx(ctx context.Context, workers int, fn func(ctx context.Context, w int) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn(ctx, 0)
		return ctxFirst(ctx, err)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(ctx, w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ctxFirst(ctx, err)
		}
	}
	return ctx.Err()
}

// ctxFirst prefers the context's cancellation error over a job error.
func ctxFirst(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// ForEachShard is ForEach with the worker's pool index exposed:
// fn(worker, i) with worker in [0, Workers(workers, jobs)). A worker
// index is owned by exactly one goroutine, so fn may accumulate into
// per-worker shards (e.g. obs.Collector) without synchronization. Which
// jobs land on which shard depends on scheduling; shard contents are
// only deterministic once merged with a commutative fold.
func ForEachShard(jobs, workers int, fn func(worker, i int) error) error {
	return ForEachShardCtx(context.Background(), jobs, workers, fn)
}

// ForEachShardCtx is ForEachShard with cancellation: the pool stops
// claiming jobs once ctx is done (a job already running is not
// preempted), and ctx.Err() is returned in preference to job errors.
func ForEachShardCtx(ctx context.Context, jobs, workers int, fn func(worker, i int) error) error {
	if jobs <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, jobs)
	if workers == 1 {
		for i := 0; i < jobs; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return ctxFirst(ctx, err)
			}
		}
		return ctx.Err()
	}
	errs := make([]error, jobs)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1))
				if i >= jobs {
					return
				}
				errs[i] = fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ctxFirst(ctx, err)
		}
	}
	return ctx.Err()
}
