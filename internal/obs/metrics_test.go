package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestBucketIndexBoundaries pins the inclusive-upper-bound (`le`)
// semantics: a value equal to a bound lands in that bound's bucket, one
// past it in the next, and anything above the last bound in +Inf.
func TestBucketIndexBoundaries(t *testing.T) {
	bounds := []uint64{1, 8, 64}
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, // le="1"
		{2, 1}, {7, 1}, {8, 1}, // le="8"
		{9, 2}, {64, 2}, // le="64"
		{65, 3}, {1 << 40, 3}, // +Inf
	}
	for _, c := range cases {
		if got := BucketIndex(bounds, c.v); got != c.want {
			t.Errorf("BucketIndex(%v, %d) = %d, want %d", bounds, c.v, got, c.want)
		}
	}
}

func TestDefaultLatencyBuckets(t *testing.T) {
	if len(DefaultLatencyBuckets) != 21 {
		t.Fatalf("len = %d, want 21", len(DefaultLatencyBuckets))
	}
	if DefaultLatencyBuckets[0] != 1 || DefaultLatencyBuckets[20] != 1<<20 {
		t.Fatalf("bounds = [%d ... %d], want [1 ... 2^20]",
			DefaultLatencyBuckets[0], DefaultLatencyBuckets[20])
	}
	// Power-of-two latencies must land exactly on their own bound, not in
	// the next bucket — this is what makes the histogram readable as
	// "detected within N instructions".
	if got := BucketIndex(DefaultLatencyBuckets, 1024); got != 10 {
		t.Errorf("BucketIndex(1024) = %d, want 10", got)
	}
}

func TestRegistryAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Counter("a_total").Inc()
	r.Gauge("g").Set(5)
	r.Gauge("g").Max(3) // lower: no effect
	r.Gauge("g").Max(9)
	h := r.Histogram("lat", []uint64{1, 8, 64})
	for _, v := range []uint64{1, 2, 8, 9, 100} {
		h.Observe(v)
	}

	s := r.Snapshot()
	if s.Counters["a_total"] != 3 {
		t.Errorf("counter = %d, want 3", s.Counters["a_total"])
	}
	if s.Gauges["g"] != 9 {
		t.Errorf("gauge = %d, want 9", s.Gauges["g"])
	}
	hs := s.Histograms["lat"]
	// 1 -> le"1"; 2 and 8 -> le"8"; 9 -> le"64"; 100 -> +Inf.
	if want := []uint64{1, 2, 1, 1}; !reflect.DeepEqual(hs.Counts, want) {
		t.Errorf("hist counts = %v, want %v", hs.Counts, want)
	}
	if hs.Sum != 120 || hs.Count != 5 {
		t.Errorf("hist sum/count = %d/%d, want 120/5", hs.Sum, hs.Count)
	}
}

func TestHistogramReboundPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []uint64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different bound count did not panic")
		}
	}()
	r.Histogram("h", []uint64{1, 2, 3})
}

// TestCollectorMergeOrderInvariance: splitting the same observations
// across shards, in any grouping and merge order, must flush to an
// identical snapshot — the property that makes campaign metrics
// deterministic across worker counts.
func TestCollectorMergeOrderInvariance(t *testing.T) {
	bounds := []uint64{4, 16}
	observe := func(c *Collector, vs ...uint64) {
		for _, v := range vs {
			c.Add("n_total", 1)
			c.Max("peak", int64(v))
			c.Observe("lat", bounds, v)
		}
	}

	// One shard sees everything.
	all := NewCollector()
	observe(all, 1, 3, 5, 16, 17, 200)

	// Three shards split it; merged in reverse order.
	s1, s2, s3 := NewCollector(), NewCollector(), NewCollector()
	observe(s1, 1, 200)
	observe(s2, 3, 5)
	observe(s3, 16, 17)
	merged := NewCollector()
	for _, s := range []*Collector{s3, s1, s2} {
		merged.Merge(s)
	}

	var bufA, bufB bytes.Buffer
	ra, rb := NewRegistry(), NewRegistry()
	all.FlushTo(ra)
	merged.FlushTo(rb)
	if err := ra.Snapshot().WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := rb.Snapshot().WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Errorf("sharded flush differs from single-shard flush:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`runs_total{technique="RCF"}`).Add(7)
	r.Gauge("cache_instrs").Set(42)
	h := r.Histogram(`lat{technique="RCF"}`, []uint64{1, 8})
	h.Observe(1)
	h.Observe(5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`runs_total{technique="RCF"} 7`,
		`cache_instrs 42`,
		`lat_bucket{technique="RCF",le="1"} 1`,
		`lat_bucket{technique="RCF",le="8"} 2`,
		`lat_bucket{technique="RCF",le="+Inf"} 3`,
		`lat_sum{technique="RCF"} 105`,
		`lat_count{technique="RCF"} 3`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestNilSafety: the disabled path — nil registry, nil collector, and the
// nil metrics they hand out — must accept every operation.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Gauge("g").Max(1)
	r.Histogram("h", []uint64{1}).Observe(1)
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %d", v)
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}

	var c *Collector
	c.Add("c", 1)
	c.Max("g", 1)
	c.Observe("h", []uint64{1}, 1)
	c.Merge(NewCollector())
	c.FlushTo(NewRegistry())
	NewCollector().Merge(nil)
	NewCollector().FlushTo(nil)
}
