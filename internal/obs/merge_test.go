package obs

import (
	"reflect"
	"testing"
	"time"
)

func TestRegistryMerge(t *testing.T) {
	src := NewRegistry()
	src.Counter("c").Add(3)
	src.Gauge("g").Max(7)
	src.Histogram("h", []uint64{1, 2}).Observe(2)
	src.Histogram("h", []uint64{1, 2}).Observe(100)
	src.RecordSpan(`p{phase="x"}`, 2*time.Second)

	dst := NewRegistry()
	dst.Counter("c").Add(1)
	dst.Gauge("g").Max(9)
	dst.Histogram("h", []uint64{1, 2}).Observe(1)
	dst.Merge(src.Snapshot())

	if got := dst.Counter("c").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if got := dst.Gauge("g").Value(); got != 9 {
		t.Errorf("gauge = %d, want 9 (max, not sum)", got)
	}
	hs := dst.Snapshot().Histograms["h"]
	if !reflect.DeepEqual(hs.Counts, []uint64{1, 1, 1}) || hs.Sum != 103 {
		t.Errorf("histogram = %+v, want counts [1 1 1] sum 103", hs)
	}
	sp := dst.Snapshot().Spans[`p{phase="x"}`]
	if sp.Count != 1 || sp.Seconds < 1.9 || sp.Seconds > 2.1 {
		t.Errorf("span = %+v, want count 1 seconds ~2", sp)
	}

	// Merging twice doubles the additive sections; gauges stay at max.
	dst.Merge(src.Snapshot())
	if got := dst.Counter("c").Value(); got != 7 {
		t.Errorf("counter after second merge = %d, want 7", got)
	}
}

func TestRegistryMergeNilSafe(t *testing.T) {
	var r *Registry
	r.Merge(NewRegistry().Snapshot()) // must not panic
	NewRegistry().Merge(nil)
}

func TestRegistryMergeMismatchedBoundsSkips(t *testing.T) {
	src := NewRegistry()
	src.Histogram("h", []uint64{1}).Observe(1)
	snap := src.Snapshot()

	dst := NewRegistry()
	dst.Histogram("h", []uint64{1, 2}).Observe(1)
	dst.Merge(snap)
	hs := dst.Snapshot().Histograms["h"]
	if hs.Count != 1 {
		t.Errorf("mismatched-bounds merge changed the histogram: %+v", hs)
	}
}
