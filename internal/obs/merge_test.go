package obs

import (
	"reflect"
	"testing"
	"time"
)

func TestRegistryMerge(t *testing.T) {
	src := NewRegistry()
	src.Counter("c").Add(3)
	src.Gauge("g").Max(7)
	src.Histogram("h", []uint64{1, 2}).Observe(2)
	src.Histogram("h", []uint64{1, 2}).Observe(100)
	src.RecordSpan(`p{phase="x"}`, 2*time.Second)

	dst := NewRegistry()
	dst.Counter("c").Add(1)
	dst.Gauge("g").Max(9)
	dst.Histogram("h", []uint64{1, 2}).Observe(1)
	dst.Merge(src.Snapshot())

	if got := dst.Counter("c").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if got := dst.Gauge("g").Value(); got != 9 {
		t.Errorf("gauge = %d, want 9 (max, not sum)", got)
	}
	hs := dst.Snapshot().Histograms["h"]
	if !reflect.DeepEqual(hs.Counts, []uint64{1, 1, 1}) || hs.Sum != 103 {
		t.Errorf("histogram = %+v, want counts [1 1 1] sum 103", hs)
	}
	sp := dst.Snapshot().Spans[`p{phase="x"}`]
	if sp.Count != 1 || sp.Seconds < 1.9 || sp.Seconds > 2.1 {
		t.Errorf("span = %+v, want count 1 seconds ~2", sp)
	}

	// Merging twice doubles the additive sections; gauges stay at max.
	dst.Merge(src.Snapshot())
	if got := dst.Counter("c").Value(); got != 7 {
		t.Errorf("counter after second merge = %d, want 7", got)
	}
}

func TestRegistryMergeNilSafe(t *testing.T) {
	var r *Registry
	r.Merge(NewRegistry().Snapshot()) // must not panic
	NewRegistry().Merge(nil)
}

// Snapshot.Merge must agree with Registry.Merge: folding replica
// snapshots into a zero accumulator yields the same series a live
// registry would have produced from the same merges.
func TestSnapshotMerge(t *testing.T) {
	mk := func(c uint64, g int64) *Snapshot {
		r := NewRegistry()
		r.Counter("c").Add(c)
		r.Gauge("g").Max(g)
		r.Histogram("h", []uint64{1, 2}).Observe(c)
		r.RecordSpan(`p{phase="x"}`, time.Second)
		return r.Snapshot()
	}

	var acc Snapshot // zero value is a valid accumulator
	acc.Merge(mk(3, 7))
	acc.Merge(mk(1, 9))
	acc.Merge(nil) // no-op

	ref := NewRegistry()
	ref.Merge(mk(3, 7))
	ref.Merge(mk(1, 9))
	want := ref.Snapshot()

	if !reflect.DeepEqual(acc.Counters, want.Counters) {
		t.Errorf("counters = %v, want %v", acc.Counters, want.Counters)
	}
	if !reflect.DeepEqual(acc.Gauges, want.Gauges) {
		t.Errorf("gauges = %v, want %v (max, not sum)", acc.Gauges, want.Gauges)
	}
	if !reflect.DeepEqual(acc.Histograms, want.Histograms) {
		t.Errorf("histograms = %v, want %v", acc.Histograms, want.Histograms)
	}
	sp := acc.Spans[`p{phase="x"}`]
	if sp.Count != 2 || sp.Seconds < 1.9 || sp.Seconds > 2.1 {
		t.Errorf("span = %+v, want count 2 seconds ~2", sp)
	}

	// Mismatched histogram bounds skip rather than corrupt.
	odd := NewRegistry()
	odd.Histogram("h", []uint64{1}).Observe(1)
	before := acc.Histograms["h"]
	acc.Merge(odd.Snapshot())
	if !reflect.DeepEqual(acc.Histograms["h"], before) {
		t.Errorf("mismatched-bounds merge changed the histogram: %+v", acc.Histograms["h"])
	}
}

func TestRegistryMergeMismatchedBoundsSkips(t *testing.T) {
	src := NewRegistry()
	src.Histogram("h", []uint64{1}).Observe(1)
	snap := src.Snapshot()

	dst := NewRegistry()
	dst.Histogram("h", []uint64{1, 2}).Observe(1)
	dst.Merge(snap)
	hs := dst.Snapshot().Histograms["h"]
	if hs.Count != 1 {
		t.Errorf("mismatched-bounds merge changed the histogram: %+v", hs)
	}
}
