package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Seq: uint64(i), Kind: EvBranch, Step: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("events[%d].Seq = %d, want %d (oldest first)", i, ev.Seq, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(0) // 0 → DefaultFlightDepth
	if cap(r.buf) != DefaultFlightDepth {
		t.Fatalf("default capacity = %d, want %d", cap(r.buf), DefaultFlightDepth)
	}
	r.Append(Event{Seq: 1})
	r.Append(Event{Seq: 2})
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("Len/Dropped = %d/%d, want 2/0", r.Len(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("events = %v", evs)
	}
}

func TestFlightRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(&buf, 8)
	if f.Depth() != 8 {
		t.Fatalf("Depth = %d, want 8", f.Depth())
	}
	in := FlightDump{
		Sample: 7, SampleSeed: 0xdeadbeef, Technique: "RCF",
		Outcome: "SDC", Replayed: "SDC", Dropped: 3,
		Events: []Event{{Seq: 1, Kind: EvBranch, Addr: 0x40}},
	}
	f.Dump(in)
	if f.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", f.Dumps())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no JSONL line written")
	}
	var out FlightDump
	if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Sample != 7 || out.SampleSeed != 0xdeadbeef || out.Outcome != "SDC" ||
		len(out.Events) != 1 || out.Events[0].Addr != 0x40 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if sc.Scan() {
		t.Fatalf("extra line: %q", sc.Text())
	}
}

type flightFailWriter struct{}

func (flightFailWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestFlightRecorderErrorRetention(t *testing.T) {
	f := NewFlightRecorder(flightFailWriter{}, 1)
	// Overflow the 64 KiB buffer so the error surfaces.
	big := FlightDump{Events: make([]Event, 4096)}
	f.Dump(big)
	f.Dump(big)
	f.Close()
	if f.Err() == nil {
		t.Fatal("write error not retained")
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Dump(FlightDump{})
	if f.Depth() != 0 || f.Dumps() != 0 || f.Err() != nil || f.Close() != nil {
		t.Fatal("nil recorder methods not inert")
	}
}
