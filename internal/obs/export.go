package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// HistSnapshot is the exported form of one histogram: inclusive upper
// bounds, per-bucket counts (one extra trailing count for +Inf), the sum
// of observed values and the total observation count.
type HistSnapshot struct {
	Bounds []uint64 `json:"le"`
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry or collector. Equal
// metric states serialize to byte-identical output: encoding/json sorts
// map keys, and the Prometheus writer sorts series names itself.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	// Spans carries the phase-timing aggregates. Durations are wall-clock
	// and never deterministic, so byte-identity comparisons strip this
	// section (StripTimings) while the other three stay bit-identical.
	Spans map[string]SpanSnapshot `json:"spans,omitempty"`
}

// StripTimings drops the wall-clock-derived sections, leaving only the
// deterministic counters, gauges and histograms. Returns s for chaining.
func (s *Snapshot) StripTimings() *Snapshot {
	s.Spans = nil
	return s
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
			hs.Count += hs.Counts[i]
		}
		s.Histograms[n] = hs
	}
	if len(r.spans) > 0 {
		s.Spans = make(map[string]SpanSnapshot, len(r.spans))
		for n, a := range r.spans {
			s.Spans[n] = SpanSnapshot{Count: a.count, Seconds: float64(a.nanos) / 1e9}
		}
	}
	return s
}

// Snapshot copies the collector's current state.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if c == nil {
		return s
	}
	for n, v := range c.counters {
		s.Counters[n] = v
	}
	for n, v := range c.gauges {
		s.Gauges[n] = v
	}
	for n, h := range c.hists {
		hs := HistSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
		}
		for _, ct := range h.counts {
			hs.Count += ct
		}
		s.Histograms[n] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (deterministic: map
// keys are sorted by the encoder).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// splitSeries separates `base{labels}` into base and the inner label
// list (without braces); labels is empty for plain names.
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// joinLabels renders a label set, appending extra (e.g. `le="8"`) to any
// labels already embedded in the series name.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format, series sorted by name. Histograms expand into cumulative
// `_bucket` series with `le` labels plus `_sum` and `_count`; spans
// expand into `_seconds_total` and `_runs_total`.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, n := range sortedKeys(s.Counters) {
		base, labels := splitSeries(n)
		fmt.Fprintf(&b, "%s%s %d\n", base, joinLabels(labels, ""), s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		base, labels := splitSeries(n)
		fmt.Fprintf(&b, "%s%s %d\n", base, joinLabels(labels, ""), s.Gauges[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		base, labels := splitSeries(n)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, joinLabels(labels, fmt.Sprintf("le=%q", fmt.Sprint(bound))), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), cum)
		fmt.Fprintf(&b, "%s_sum%s %d\n", base, joinLabels(labels, ""), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, joinLabels(labels, ""), cum)
	}
	for _, n := range sortedKeys(s.Spans) {
		sp := s.Spans[n]
		base, labels := splitSeries(n)
		fmt.Fprintf(&b, "%s_seconds_total%s %s\n", base, joinLabels(labels, ""),
			strconv.FormatFloat(sp.Seconds, 'g', -1, 64))
		fmt.Fprintf(&b, "%s_runs_total%s %d\n", base, joinLabels(labels, ""), sp.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
