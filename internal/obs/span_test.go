package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpan("campaign_phase", `technique="RCF"`, "inject")
	if d := s.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	// Second End must not double-count.
	s.End()
	r.RecordSpan(`campaign_phase{phase="inject",technique="RCF"}`, 2*time.Second)

	snap := r.Snapshot()
	sp, ok := snap.Spans[`campaign_phase{phase="inject",technique="RCF"}`]
	if !ok {
		t.Fatalf("span series missing; have %v", snap.Spans)
	}
	if sp.Count != 2 {
		t.Fatalf("count = %d, want 2", sp.Count)
	}
	if sp.Seconds < 2 {
		t.Fatalf("seconds = %v, want >= 2", sp.Seconds)
	}
}

func TestSpanChildPath(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("campaign_phase", "", "inject")
	child := parent.Child("worker3")
	child.End()
	parent.End()

	snap := r.Snapshot()
	for _, want := range []string{
		`campaign_phase{phase="inject"}`,
		`campaign_phase{phase="inject/worker3"}`,
	} {
		if _, ok := snap.Spans[want]; !ok {
			t.Errorf("missing series %s; have %v", want, snap.Spans)
		}
	}
}

func TestSpanNilSafety(t *testing.T) {
	var r *Registry
	s := r.StartSpan("x", "", "root")
	if s != nil {
		t.Fatalf("nil registry returned non-nil span")
	}
	if c := s.Child("sub"); c != nil {
		t.Fatalf("nil span Child returned non-nil")
	}
	if d := s.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	r.RecordSpan("x", time.Second) // must not panic
}

func TestSpanExportAndStripTimings(t *testing.T) {
	r := NewRegistry()
	r.Counter("inject_samples_total").Add(5)
	r.RecordSpan(`campaign_phase{phase="merge"}`, 1500*time.Millisecond)

	var js strings.Builder
	if err := r.Snapshot().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"spans"`) {
		t.Fatalf("JSON export missing spans section:\n%s", js.String())
	}

	var prom strings.Builder
	if err := r.Snapshot().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`campaign_phase_seconds_total{phase="merge"} 1.5`,
		`campaign_phase_runs_total{phase="merge"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus export missing %q:\n%s", want, prom.String())
		}
	}

	stripped := r.Snapshot().StripTimings()
	if stripped.Spans != nil {
		t.Fatalf("StripTimings left spans: %v", stripped.Spans)
	}
	if stripped.Counters["inject_samples_total"] != 5 {
		t.Fatalf("StripTimings dropped counters: %v", stripped.Counters)
	}
}
