package obs

import (
	"strings"
	"testing"
)

func TestEmptyRegistryExports(t *testing.T) {
	r := NewRegistry()
	var js strings.Builder
	if err := r.Snapshot().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if js.String() != "{}\n" {
		t.Fatalf("empty JSON export = %q, want {}\\n", js.String())
	}
	var prom strings.Builder
	if err := r.Snapshot().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if prom.String() != "" {
		t.Fatalf("empty Prometheus export = %q, want empty", prom.String())
	}
}

func TestHistogramSingleBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{5})
	h.Observe(4) // <= 5: bucket 0
	h.Observe(5) // inclusive upper bound: bucket 0
	h.Observe(6) // > 5: +Inf bucket
	hs := r.Snapshot().Histograms["lat"]
	if len(hs.Counts) != 2 {
		t.Fatalf("counts len = %d, want 2", len(hs.Counts))
	}
	if hs.Counts[0] != 2 || hs.Counts[1] != 1 {
		t.Fatalf("counts = %v, want [2 1]", hs.Counts)
	}
	if hs.Sum != 15 || hs.Count != 3 {
		t.Fatalf("sum/count = %d/%d, want 15/3", hs.Sum, hs.Count)
	}

	var prom strings.Builder
	if err := r.Snapshot().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_bucket{le="5"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 15",
		"lat_count 3",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus export missing %q:\n%s", want, prom.String())
		}
	}
}
