package obs

import (
	"fmt"
	"time"
)

// Phase spans: hierarchical wall-clock timing for campaign phases
// (record → checkpoint-capture → inject → prune → merge, plus per-worker
// shard spans). Spans are aggregates, not a trace: each series keeps a
// run count and a total duration, so hot phases may be entered many
// times (one span per worker, per campaign) without unbounded growth.
//
// Hierarchy lives in the phase label value, not the metric name:
// `campaign_phase{phase="inject/worker3",technique="RCF"}` — "/" is not
// legal in a Prometheus metric name but is fine inside a label value,
// and the exporters already treat the full `base{labels}` string as the
// series key.
//
// Durations are wall-clock and therefore never deterministic. They
// export through the JSON and Prometheus paths like every other metric,
// but live in their own Snapshot section so byte-identity gates can
// strip them (Snapshot.StripTimings) while the counters, gauges and
// histograms keep comparing bit for bit.

// spanAgg accumulates one span series under the registry mutex.
type spanAgg struct {
	count uint64
	nanos int64
}

// SpanSnapshot is the exported form of one span series: how many times
// the phase ran and the total wall-clock spent in it.
type SpanSnapshot struct {
	Count   uint64  `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Span is one open phase timing. A nil Span (from a nil Registry) is a
// valid receiver: Child returns nil and End is a no-op, so instrumented
// code needs no enablement checks.
type Span struct {
	r      *Registry
	base   string
	labels string
	path   string
	start  time.Time
}

// StartSpan opens a phase span on series base with an optional extra
// label list (without braces, e.g. `technique="RCF"`; "" for none) and
// the root phase name. End records it.
func (r *Registry) StartSpan(base, labels, phase string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, base: base, labels: labels, path: phase, start: time.Now()}
}

// Child opens a sub-span whose phase path extends the parent's with
// "/phase" (e.g. "inject" → "inject/worker3"). The child shares the
// parent's base series and labels but times independently; ending the
// parent does not end its children.
func (s *Span) Child(phase string) *Span {
	if s == nil {
		return nil
	}
	return &Span{r: s.r, base: s.base, labels: s.labels, path: s.path + "/" + phase, start: time.Now()}
}

// End records the span's duration into its registry and returns it.
// Safe to call more than once; only the first call records.
func (s *Span) End() time.Duration {
	if s == nil || s.r == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.RecordSpan(s.series(), d)
	s.r = nil
	return d
}

// series renders the span's full series key.
func (s *Span) series() string {
	if s.labels == "" {
		return fmt.Sprintf("%s{phase=%q}", s.base, s.path)
	}
	return fmt.Sprintf("%s{phase=%q,%s}", s.base, s.path, s.labels)
}

// RecordSpan folds an externally measured duration into a span series —
// for phases timed by code that cannot hold a Span open (e.g. a
// duration computed from two timestamps).
func (r *Registry) RecordSpan(series string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.spans[series]
	if a == nil {
		a = &spanAgg{}
		r.spans[series] = a
	}
	a.count++
	a.nanos += int64(d)
}
