package obs

import (
	"reflect"
	"strings"
	"testing"
)

// drive distributes the same sample outcomes over workers shards and
// returns the deterministic fold.
func drive(workers int) ProgressSnapshot {
	p := NewProgress()
	labels := []string{"benign", "SDC", "not-fired"}
	p.Begin(12, workers, labels)
	slots := []int{0, 0, 1, 2, 0, 1, 2, 0, 0, 0, 1, 2}
	for i, slot := range slots {
		p.Observe(i%workers, slot)
	}
	return p.Snapshot().Deterministic()
}

func TestProgressShardInvariance(t *testing.T) {
	base := drive(1)
	if base.Done != 12 || base.Total != 12 {
		t.Fatalf("done/total = %d/%d, want 12/12", base.Done, base.Total)
	}
	want := map[string]int64{"benign": 6, "SDC": 3, "not-fired": 3}
	if !reflect.DeepEqual(base.Tallies, want) {
		t.Fatalf("tallies = %v, want %v", base.Tallies, want)
	}
	for _, w := range []int{2, 4, 7} {
		if got := drive(w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d snapshot %+v != serial %+v", w, got, base)
		}
	}
}

func TestProgressOutOfRange(t *testing.T) {
	p := NewProgress()
	p.Begin(4, 2, []string{"a"})
	p.Observe(0, 99) // bad slot: counts Done only
	p.Observe(0, -1)
	p.Observe(-1, 0) // bad worker: ignored entirely
	p.Observe(5, 0)
	s := p.Snapshot()
	if s.Done != 2 {
		t.Fatalf("done = %d, want 2", s.Done)
	}
	if len(s.Tallies) != 0 {
		t.Fatalf("tallies = %v, want empty", s.Tallies)
	}
}

func TestProgressNilAndIdle(t *testing.T) {
	var p *Progress
	p.Begin(10, 4, nil)
	p.Observe(0, 0)
	if s := p.Snapshot(); !reflect.DeepEqual(s, ProgressSnapshot{}) {
		t.Fatalf("nil tracker snapshot = %+v", s)
	}
	idle := NewProgress() // armed only by Begin
	idle.Observe(0, 0)
	if s := idle.Snapshot(); !reflect.DeepEqual(s, ProgressSnapshot{}) {
		t.Fatalf("idle tracker snapshot = %+v", s)
	}
}

func TestProgressBeginResets(t *testing.T) {
	p := NewProgress()
	p.Begin(5, 1, []string{"a"})
	p.Observe(0, 0)
	p.Begin(7, 2, []string{"b"})
	s := p.Snapshot()
	if s.Done != 0 || s.Total != 7 || len(s.Tallies) != 0 {
		t.Fatalf("after re-Begin: %+v", s)
	}
}

func TestProgressString(t *testing.T) {
	s := ProgressSnapshot{
		Done: 3, Total: 12,
		Tallies: map[string]int64{"SDC": 1, "benign": 2},
		PerSec:  6, ETASec: 1.5,
	}
	got := s.String()
	for _, want := range []string{"3/12", "(25.0%)", "6/s", "eta 1.5s", "[SDC:1 benign:2]"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	// Zero totals must not divide by zero.
	if z := (ProgressSnapshot{}).String(); !strings.Contains(z, "0/0 (0.0%)") {
		t.Errorf("zero String() = %q", z)
	}
}
