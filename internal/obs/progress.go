package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Progress is a live campaign tracker: per-worker atomic counters of
// finished samples and running outcome tallies, folded on demand into a
// ProgressSnapshot. Writers (campaign workers) touch only their own
// cache-padded shard, so the hot path is one or two uncontended atomic
// adds; readers (a stderr ticker, the serve progress endpoint) fold all
// shards without stopping the campaign.
//
// The fold is a sum, so at any instant Done and the tallies are exact
// and — once the campaign completes — identical for every worker count
// and scheduling order. The timing-derived fields (ElapsedSec, PerSec,
// ETASec) are wall-clock; Deterministic zeroes them for byte-identity
// comparisons.
//
// A nil *Progress is a valid disabled tracker: every method is a no-op
// and Snapshot returns the zero snapshot.
type Progress struct {
	state atomic.Pointer[progressState]
}

// progressState is one campaign's counters; Begin swaps in a fresh one
// so a tracker can be reused across the campaigns of a batch without
// racing a concurrent Snapshot.
type progressState struct {
	labels []string
	total  int64
	start  time.Time
	shards []progressShard
}

// progressShard is one worker's counters. The pad keeps neighbouring
// shards' done counters off each other's cache lines.
type progressShard struct {
	done    atomic.Int64
	tallies []atomic.Int64 // len(labels), allocated by Begin
	_       [96]byte
}

// NewProgress returns an idle tracker; Begin arms it.
func NewProgress() *Progress { return &Progress{} }

// Begin resets the tracker for a campaign of total samples sharded over
// workers, with one tally slot per label (pass the outcome names).
func (p *Progress) Begin(total, workers int, labels []string) {
	if p == nil {
		return
	}
	if workers < 1 {
		workers = 1
	}
	st := &progressState{
		labels: labels,
		total:  int64(total),
		start:  time.Now(),
		shards: make([]progressShard, workers),
	}
	for i := range st.shards {
		st.shards[i].tallies = make([]atomic.Int64, len(labels))
	}
	p.state.Store(st)
}

// Observe counts one finished sample on worker w's shard, tallying slot
// (an index into Begin's labels; out-of-range slots count toward Done
// only).
func (p *Progress) Observe(w, slot int) {
	if p == nil {
		return
	}
	st := p.state.Load()
	if st == nil || w < 0 || w >= len(st.shards) {
		return
	}
	sh := &st.shards[w]
	sh.done.Add(1)
	if slot >= 0 && slot < len(sh.tallies) {
		sh.tallies[slot].Add(1)
	}
}

// ProgressSnapshot is a point-in-time fold of a Progress tracker. Done,
// Total and Tallies are exact counts (deterministic at completion);
// the remaining fields derive from wall-clock.
type ProgressSnapshot struct {
	Done       int64            `json:"done"`
	Total      int64            `json:"total"`
	Tallies    map[string]int64 `json:"tallies,omitempty"`
	ElapsedSec float64          `json:"elapsed_sec"`
	PerSec     float64          `json:"per_sec"`
	ETASec     float64          `json:"eta_sec,omitempty"`
}

// Snapshot folds the shards. Safe concurrently with Observe; a snapshot
// taken mid-campaign is a consistent lower bound, and one taken after
// the campaign completes is exact.
func (p *Progress) Snapshot() ProgressSnapshot {
	var out ProgressSnapshot
	if p == nil {
		return out
	}
	st := p.state.Load()
	if st == nil {
		return out
	}
	out.Total = st.total
	sums := make([]int64, len(st.labels))
	for i := range st.shards {
		sh := &st.shards[i]
		out.Done += sh.done.Load()
		for j := range sh.tallies {
			sums[j] += sh.tallies[j].Load()
		}
	}
	for j, n := range sums {
		if n != 0 {
			if out.Tallies == nil {
				out.Tallies = map[string]int64{}
			}
			out.Tallies[st.labels[j]] = n
		}
	}
	out.ElapsedSec = time.Since(st.start).Seconds()
	if out.ElapsedSec > 0 {
		out.PerSec = float64(out.Done) / out.ElapsedSec
	}
	if out.PerSec > 0 && out.Done < out.Total {
		out.ETASec = float64(out.Total-out.Done) / out.PerSec
	}
	return out
}

// Deterministic returns the snapshot with the wall-clock-derived fields
// zeroed, leaving only the exact counts — the form byte-identity tests
// and normalized streams compare.
func (s ProgressSnapshot) Deterministic() ProgressSnapshot {
	s.ElapsedSec, s.PerSec, s.ETASec = 0, 0, 0
	return s
}

// String renders the one-line ticker form:
//
//	1234/5000 (24.7%) 832/s eta 4.5s [SDC:3 benign:120 ...]
func (s ProgressSnapshot) String() string {
	var b strings.Builder
	pct := 0.0
	if s.Total > 0 {
		pct = 100 * float64(s.Done) / float64(s.Total)
	}
	fmt.Fprintf(&b, "%d/%d (%.1f%%) %.0f/s", s.Done, s.Total, pct, s.PerSec)
	if s.ETASec > 0 {
		fmt.Fprintf(&b, " eta %.1fs", s.ETASec)
	}
	if len(s.Tallies) > 0 {
		keys := make([]string, 0, len(s.Tallies))
		for k := range s.Tallies {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s:%d", k, s.Tallies[k]))
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, " "))
	}
	return b.String()
}
