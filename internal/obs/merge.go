package obs

import (
	"sync/atomic"
	"time"
)

// Merge folds a snapshot into the registry with the same commutative
// operations the collector shards use: counters add, gauges keep the
// maximum, histograms add bucket by bucket, and span series add both
// their run counts and their accumulated wall-clock. It is how a cached
// campaign's deterministic metrics (see internal/graph) re-enter a live
// registry on a cache hit, and how a miss's privately collected metrics
// publish once the result is stored.
//
// A nil registry or snapshot is a no-op. A histogram whose bucket count
// disagrees with an already registered series of the same name is skipped
// rather than corrupting it (snapshots from a different build could carry
// different bounds).
func (r *Registry) Merge(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for n, v := range s.Counters {
		r.Counter(n).Add(v)
	}
	for n, v := range s.Gauges {
		r.Gauge(n).Max(v)
	}
	for n, hs := range s.Histograms {
		r.mu.Lock()
		h := r.hists[n]
		if h == nil {
			h = &Histogram{bounds: append([]uint64(nil), hs.Bounds...), counts: make([]atomic.Uint64, len(hs.Bounds)+1)}
			r.hists[n] = h
		}
		r.mu.Unlock()
		if len(hs.Counts) != len(h.counts) {
			continue
		}
		for i, ct := range hs.Counts {
			h.counts[i].Add(ct)
		}
		h.sum.Add(hs.Sum)
	}
	for n, sp := range s.Spans {
		r.mergeSpan(n, sp.Count, time.Duration(sp.Seconds*1e9))
	}
}

// Merge folds another snapshot into s with the same commutative
// operations as Registry.Merge — counters add, gauges keep the maximum,
// histograms add bucket by bucket when their bounds agree (and are
// skipped otherwise), spans add runs and wall-clock. It is the
// cross-process form: a front door polls each replica's /v1/metrics
// snapshot and folds them into one fleet-wide view without needing a
// live registry. A nil other is a no-op; maps are allocated on demand so
// the zero Snapshot is a valid accumulator.
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	if len(other.Counters) > 0 && s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	for n, v := range other.Counters {
		s.Counters[n] += v
	}
	if len(other.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	for n, v := range other.Gauges {
		if cur, ok := s.Gauges[n]; !ok || v > cur {
			s.Gauges[n] = v
		}
	}
	if len(other.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = map[string]HistSnapshot{}
	}
	for n, oh := range other.Histograms {
		h, ok := s.Histograms[n]
		if !ok {
			h = HistSnapshot{
				Bounds: append([]uint64(nil), oh.Bounds...),
				Counts: make([]uint64, len(oh.Counts)),
			}
		} else if len(h.Counts) != len(oh.Counts) {
			continue // different bounds: skip rather than corrupt
		}
		for i, ct := range oh.Counts {
			h.Counts[i] += ct
		}
		h.Sum += oh.Sum
		h.Count += oh.Count
		s.Histograms[n] = h
	}
	if len(other.Spans) > 0 && s.Spans == nil {
		s.Spans = map[string]SpanSnapshot{}
	}
	for n, osp := range other.Spans {
		sp := s.Spans[n]
		sp.Count += osp.Count
		sp.Seconds += osp.Seconds
		s.Spans[n] = sp
	}
}

// mergeSpan folds an aggregate (count runs totalling d) into a span
// series, the multi-run counterpart of RecordSpan.
func (r *Registry) mergeSpan(series string, count uint64, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.spans[series]
	if a == nil {
		a = &spanAgg{}
		r.spans[series] = a
	}
	a.count += count
	a.nanos += int64(d)
}
