package obs

import (
	"sync/atomic"
	"time"
)

// Merge folds a snapshot into the registry with the same commutative
// operations the collector shards use: counters add, gauges keep the
// maximum, histograms add bucket by bucket, and span series add both
// their run counts and their accumulated wall-clock. It is how a cached
// campaign's deterministic metrics (see internal/graph) re-enter a live
// registry on a cache hit, and how a miss's privately collected metrics
// publish once the result is stored.
//
// A nil registry or snapshot is a no-op. A histogram whose bucket count
// disagrees with an already registered series of the same name is skipped
// rather than corrupting it (snapshots from a different build could carry
// different bounds).
func (r *Registry) Merge(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for n, v := range s.Counters {
		r.Counter(n).Add(v)
	}
	for n, v := range s.Gauges {
		r.Gauge(n).Max(v)
	}
	for n, hs := range s.Histograms {
		r.mu.Lock()
		h := r.hists[n]
		if h == nil {
			h = &Histogram{bounds: append([]uint64(nil), hs.Bounds...), counts: make([]atomic.Uint64, len(hs.Bounds)+1)}
			r.hists[n] = h
		}
		r.mu.Unlock()
		if len(hs.Counts) != len(h.counts) {
			continue
		}
		for i, ct := range hs.Counts {
			h.counts[i].Add(ct)
		}
		h.sum.Add(hs.Sum)
	}
	for n, sp := range s.Spans {
		r.mergeSpan(n, sp.Count, time.Duration(sp.Seconds*1e9))
	}
}

// mergeSpan folds an aggregate (count runs totalling d) into a span
// series, the multi-run counterpart of RecordSpan.
func (r *Registry) mergeSpan(series string, count uint64, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.spans[series]
	if a == nil {
		a = &spanAgg{}
		r.spans[series] = a
	}
	a.count += count
	a.nanos += int64(d)
}
