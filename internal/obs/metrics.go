package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Series names are flat strings, optionally carrying Prometheus-style
// labels: `dbt_blocks_translated_total` or
// `inject_outcomes_total{technique="RCF",category="A"}`. The registry
// treats the full string as the series key; the Prometheus exporter
// splits base name and label set so histograms can splice in their `le`
// label.

// DefaultLatencyBuckets are the fixed histogram bounds used for detection
// latency in guest instructions: powers of two from 1 to 2^20, plus the
// implicit +Inf bucket. Bounds are inclusive upper limits (Prometheus
// `le` semantics).
var DefaultLatencyBuckets = func() []uint64 {
	b := make([]uint64, 21)
	for i := range b {
		b[i] = 1 << i
	}
	return b
}()

// BucketIndex returns the index of the bucket that observes v given
// ascending inclusive upper bounds: the first i with v <= bounds[i], or
// len(bounds) for the +Inf bucket.
func BucketIndex(bounds []uint64, v uint64) int {
	return sort.Search(len(bounds), func(i int) bool { return v <= bounds[i] })
}

// Counter is a monotonically increasing atomic counter. A nil Counter
// (from a nil Registry) ignores all operations.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Shard merging keeps the
// maximum, so concurrent publication is order-independent.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Max raises the gauge to v if v is larger.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic bucket counts.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[BucketIndex(h.bounds, v)].Add(1)
	h.sum.Add(v)
}

// Registry is a thread-safe collection of named metrics. The zero value
// is not usable; construct with NewRegistry. A nil *Registry is a valid
// "disabled" registry: every lookup returns a nil metric whose
// operations are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanAgg
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*spanAgg{},
	}
}

// Counter returns (registering if needed) the named counter. Hot paths
// should look the counter up once and hold the pointer.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the named histogram with the
// given inclusive upper bounds. Re-registering an existing name must use
// identical bounds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{bounds: append([]uint64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds)+1)}
		r.hists[name] = h
	} else if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds (have %d)", name, len(bounds), len(h.bounds)))
	}
	return h
}

// Collector is an unsynchronized shard of metric deltas, owned by a
// single goroutine (one per campaign worker). Shards merge by addition
// (counters, histogram buckets) and maximum (gauges), so folding them in
// any order — or splitting the same work across any number of shards —
// yields identical totals. A nil Collector ignores all operations.
type Collector struct {
	counters map[string]uint64
	gauges   map[string]int64
	hists    map[string]*histShard
}

type histShard struct {
	bounds []uint64
	counts []uint64
	sum    uint64
}

// NewCollector returns an empty shard.
func NewCollector() *Collector {
	return &Collector{
		counters: map[string]uint64{},
		gauges:   map[string]int64{},
		hists:    map[string]*histShard{},
	}
}

// Add increments a sharded counter.
func (c *Collector) Add(name string, d uint64) {
	if c != nil {
		c.counters[name] += d
	}
}

// Max raises a sharded gauge.
func (c *Collector) Max(name string, v int64) {
	if c == nil {
		return
	}
	if cur, ok := c.gauges[name]; !ok || v > cur {
		c.gauges[name] = v
	}
}

// Observe records a value into a sharded histogram, registering it with
// bounds on first use.
func (c *Collector) Observe(name string, bounds []uint64, v uint64) {
	if c == nil {
		return
	}
	h := c.hists[name]
	if h == nil {
		h = &histShard{bounds: append([]uint64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
		c.hists[name] = h
	}
	h.counts[BucketIndex(h.bounds, v)]++
	h.sum += v
}

// Merge folds shard o into c.
func (c *Collector) Merge(o *Collector) {
	if c == nil || o == nil {
		return
	}
	for n, v := range o.counters {
		c.counters[n] += v
	}
	for n, v := range o.gauges {
		if cur, ok := c.gauges[n]; !ok || v > cur {
			c.gauges[n] = v
		}
	}
	for n, oh := range o.hists {
		h := c.hists[n]
		if h == nil {
			h = &histShard{bounds: append([]uint64(nil), oh.bounds...), counts: make([]uint64, len(oh.counts))}
			c.hists[n] = h
		}
		for i, ct := range oh.counts {
			h.counts[i] += ct
		}
		h.sum += oh.sum
	}
}

// FlushTo adds the shard's contents into a registry (no-op when either
// side is nil).
func (c *Collector) FlushTo(r *Registry) {
	if c == nil || r == nil {
		return
	}
	for n, v := range c.counters {
		r.Counter(n).Add(v)
	}
	for n, v := range c.gauges {
		r.Gauge(n).Max(v)
	}
	for n, h := range c.hists {
		rh := r.Histogram(n, h.bounds)
		for i, ct := range h.counts {
			rh.counts[i].Add(ct)
		}
		rh.sum.Add(h.sum)
	}
}
