package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured trace record. Kind is always set; the other
// fields are populated per kind (see the Ev* constants) and zero-valued
// fields are omitted from the JSONL encoding, so consumers must treat an
// absent field as zero.
type Event struct {
	Seq     uint64 `json:"seq"`
	Kind    string `json:"kind"`
	Sample  *int   `json:"sample,omitempty"`
	Step    uint64 `json:"step,omitempty"`
	Guest   uint32 `json:"guest,omitempty"`
	Addr    uint32 `json:"addr,omitempty"`
	Len     uint32 `json:"len,omitempty"`
	Value   int64  `json:"value,omitempty"`
	Checked bool   `json:"checked,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// SampleRef returns a pointer suitable for Event.Sample (sample indices
// start at 0, so the field cannot rely on omitempty's zero test).
func SampleRef(i int) *int { return &i }

// Tracer writes events as one JSON object per line. All methods are safe
// on a nil receiver — the disabled fast path costs a single branch — and
// safe for concurrent use: events from parallel workers interleave in
// arrival order, each with a unique ascending Seq.
type Tracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	seq uint64
	err error
}

// NewTracer wraps w in a buffered JSONL event stream. If w is also an
// io.Closer, Close closes it.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriterSize(w, 1<<16)
	t := &Tracer{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Emit writes one event, assigning its sequence number. The first write
// error is retained (see Err); later events are dropped.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	ev.Seq = t.seq
	t.err = t.enc.Encode(ev)
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes the stream and closes the underlying writer when it is
// closable.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	return t.err
}
