package obs

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// CLI binds the shared observability flags every cmd/ tool exposes:
//
//	-trace FILE    write a JSONL event trace
//	-metrics FILE  write a metrics snapshot (.prom selects the
//	               Prometheus text format; anything else JSON)
//
// Usage: call BindFlags before flag.Parse, Open after it, and Close on
// the way out. Tracer and Registry return nil when the corresponding
// flag was not given, so instrumented code pays only the nil fast path.
type CLI struct {
	TracePath   string
	MetricsPath string

	tracer   *Tracer
	registry *Registry
}

// BindFlags registers -trace and -metrics on fs.
func (c *CLI) BindFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.TracePath, "trace", "", "write a JSONL event trace to `file`")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a metrics snapshot to `file` (.prom = Prometheus text, else JSON)")
}

// Open materializes the tracer and registry selected by the parsed
// flags.
func (c *CLI) Open() error {
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return fmt.Errorf("open trace: %w", err)
		}
		c.tracer = NewTracer(f)
	}
	if c.MetricsPath != "" {
		c.registry = NewRegistry()
	}
	return nil
}

// Tracer returns the event tracer, or nil when -trace was not given.
func (c *CLI) Tracer() *Tracer { return c.tracer }

// Registry returns the metrics registry, or nil when -metrics was not
// given.
func (c *CLI) Registry() *Registry { return c.registry }

// Close writes the metrics snapshot and flushes the trace stream.
func (c *CLI) Close() error {
	var first error
	if c.tracer != nil {
		if err := c.tracer.Close(); err != nil && first == nil {
			first = fmt.Errorf("trace: %w", err)
		}
	}
	if c.registry != nil {
		f, err := os.Create(c.MetricsPath)
		if err != nil {
			return firstErr(first, fmt.Errorf("open metrics: %w", err))
		}
		snap := c.registry.Snapshot()
		if strings.HasSuffix(c.MetricsPath, ".prom") {
			err = snap.WritePrometheus(f)
		} else {
			err = snap.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		first = firstErr(first, err)
	}
	return first
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}
