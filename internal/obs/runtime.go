package obs

import "runtime"

// PublishRuntime refreshes the Go runtime gauges (goroutines, heap, GC)
// in r. Call it at scrape time — from a /metrics handler, not from
// campaign paths — so the process-health series never perturb the
// deterministic campaign snapshots.
func PublishRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go_heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("go_gc_cycles_total").Set(int64(ms.NumGC))
	r.Gauge("go_gc_pause_nanoseconds_total").Set(int64(ms.PauseTotalNs))
}
