package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvFaultFired})
	if err := tr.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Kind: EvBlockTranslated, Guest: 4, Addr: 16, Len: 3, Checked: true})
	tr.Emit(Event{Kind: EvErrorDetected, Sample: SampleRef(0), Value: 12, Detail: "detected-sw/A"})
	tr.Emit(Event{Kind: EvCampaignEnd})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d Seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	if e := events[0]; e.Kind != EvBlockTranslated || e.Guest != 4 || e.Addr != 16 || e.Len != 3 || !e.Checked {
		t.Errorf("event 0 = %+v", e)
	}
	// Sample 0 is a valid index and must survive the round trip (hence
	// the pointer field: omitempty would drop a plain zero int).
	if e := events[1]; e.Sample == nil || *e.Sample != 0 || e.Value != 12 || e.Detail != "detected-sw/A" {
		t.Errorf("event 1 = %+v", e)
	}
}

// TestTracerConcurrentSeq: concurrent emitters get unique ascending
// sequence numbers and whole, uninterleaved lines.
func TestTracerConcurrentSeq(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	const n = 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Emit(Event{Kind: EvStubDispatch})
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d events, want %d", len(seen), n)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestTracerRetainsFirstError(t *testing.T) {
	fw := &failWriter{}
	tr := NewTracer(fw)
	// Overflow the 64K buffer so the underlying write fails.
	big := Event{Kind: EvCheckSite, Detail: strings.Repeat("x", 1<<17)}
	tr.Emit(big)
	tr.Emit(big)
	if tr.Err() == nil {
		t.Fatal("expected a retained write error")
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close should surface the retained error")
	}
}
