// Package obs is the observability layer shared by the translator, the
// fault injector and the benchmark harness: a low-overhead metrics
// registry (atomic counters, gauges and fixed-bucket histograms, with
// per-worker sharded collectors that merge deterministically), a JSONL
// event tracer with a nil-receiver fast path, and exporters in JSON and
// Prometheus text format.
//
// Design rules:
//
//   - Disabled must be almost free. A nil *Tracer or nil *Registry is a
//     valid receiver: every method short-circuits, so instrumented hot
//     paths pay one branch when observability is off.
//   - Enabled must stay deterministic. Counters and histogram buckets
//     merge by addition and gauges by maximum — all commutative and
//     associative — so shards folded in any order produce identical
//     snapshots, and parallel campaigns export bit-identical metrics for
//     every worker count.
//   - Exports must be diffable. Snapshots serialize with sorted series
//     names; two equal snapshots produce byte-identical files.
package obs

// Event kinds emitted across the DBT and injection pipeline. The fields
// populated by each kind are documented in README.md ("Observability").
const (
	// EvBlockTranslated: the translator emitted one basic block
	// (guest=start, addr=cache start, len=cache instrs, checked=policy
	// placed a signature check).
	EvBlockTranslated = "block-translated"
	// EvTraceFormed: the hot-trace backend built a superblock (guest=loop
	// head, addr=cache start, len=cache instrs, value=merged blocks).
	EvTraceFormed = "trace-formed"
	// EvStubDispatch: an unchained direct edge dispatched through the
	// translator (guest=target, addr=stub slot, value=dispatch count).
	EvStubDispatch = "stub-dispatch"
	// EvChainPatch: a chaining stub was patched into a direct jump
	// (guest=target, addr=stub slot).
	EvChainPatch = "chain-patch"
	// EvCacheInvalidate: the code cache was flushed (value=instrs dropped).
	EvCacheInvalidate = "cache-invalidate"
	// EvCheckSite: a technique emitted a signature-check sequence
	// (addr=cache address of the check).
	EvCheckSite = "check-site"
	// EvFaultFired: the planted transient fault fired (step, addr=IP,
	// detail=fault kind/bit).
	EvFaultFired = "fault-fired"
	// EvCheckFail: a signature check executed its report instruction
	// (step, addr=IP) — the software detection point.
	EvCheckFail = "check-fail"
	// EvCheckPass: a CHECK_SIG evaluated and passed. Emitted by the
	// sig model checker (detail=node); runtime passing checks are counted
	// as metrics, not traced per execution.
	EvCheckPass = "check-pass"
	// EvErrorDetected: the injector classified a detected sample
	// (sample, value=detection latency in instructions, detail=
	// outcome/category).
	EvErrorDetected = "error-detected"
	// EvCampaignStart / EvCampaignEnd bracket one injection campaign
	// (detail=program/technique; end carries value=samples).
	EvCampaignStart = "campaign-start"
	EvCampaignEnd   = "campaign-end"
	// EvBranch: one executed direct branch, captured by the flight
	// recorder's re-run hook (step, addr=IP, value=resolved target,
	// detail=taken/fall-through).
	EvBranch = "branch"
	// EvStop: the final machine stop of a flight-recorded re-run
	// (step, addr=stop IP, detail=stop reason).
	EvStop = "stop"
)
