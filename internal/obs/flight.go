package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// The per-sample flight recorder: a fixed-size ring of the last K
// machine/translator events for one sample, dumped as JSONL only when
// the injector classifies an anomalous outcome (silent data corruption,
// hang-budget exhaustion). Forensic traces for the samples that matter,
// without paying full -trace cost on million-sample campaigns.

// DefaultFlightDepth is the ring capacity when none is configured: the
// last 64 events lead from well before the fault fired to the stop.
const DefaultFlightDepth = 64

// Ring is a fixed-capacity event ring. Appending past capacity
// overwrites the oldest entry. Not safe for concurrent use — one ring
// belongs to one sample re-run.
type Ring struct {
	buf []Event
	n   uint64 // total appended
}

// NewRing returns a ring holding the last capacity events
// (DefaultFlightDepth when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultFlightDepth
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Append records one event, evicting the oldest when full.
func (r *Ring) Append(ev Event) {
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped returns how many events were evicted.
func (r *Ring) Dropped() uint64 {
	return r.n - uint64(r.Len())
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	k := r.Len()
	out := make([]Event, k)
	for i := 0; i < k; i++ {
		out[i] = r.buf[(r.n-uint64(k)+uint64(i))%uint64(len(r.buf))]
	}
	return out
}

// FlightDump is one JSONL line of the flight-recorder output: one
// anomalous sample's identity, verdicts and final events. Dumps are
// keyed by the sample's derived seed, so a single sample is replayable
// without re-deriving the whole campaign.
type FlightDump struct {
	Sample     int    `json:"sample"`
	SampleSeed uint64 `json:"sample_seed"`
	Program    string `json:"program,omitempty"`
	Technique  string `json:"technique,omitempty"`
	// Outcome is the campaign's classification; Replayed is the forensic
	// re-run's. Execution is deterministic, so they must agree — a
	// mismatch in a dump is itself a finding.
	Outcome  string  `json:"outcome"`
	Replayed string  `json:"replayed,omitempty"`
	Fault    string  `json:"fault,omitempty"`
	Stop     string  `json:"stop,omitempty"`
	Dropped  uint64  `json:"dropped,omitempty"`
	Events   []Event `json:"events"`
}

// FlightRecorder serializes flight dumps to a JSONL stream. Safe for
// concurrent use (workers dump in completion order); a nil
// *FlightRecorder is a valid disabled recorder.
type FlightRecorder struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	enc   *json.Encoder
	depth int
	dumps int
	err   error
}

// NewFlightRecorder wraps w in a buffered JSONL dump stream with the
// given ring depth (<= 0 selects DefaultFlightDepth). If w is also an
// io.Closer, Close closes it.
func NewFlightRecorder(w io.Writer, depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	f := &FlightRecorder{w: bw, enc: json.NewEncoder(bw), depth: depth}
	if c, ok := w.(io.Closer); ok {
		f.c = c
	}
	return f
}

// Depth returns the configured ring capacity (0 on nil).
func (f *FlightRecorder) Depth() int {
	if f == nil {
		return 0
	}
	return f.depth
}

// Dump writes one sample's forensic record. The first write error is
// retained; later dumps are dropped.
func (f *FlightRecorder) Dump(d FlightDump) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return
	}
	f.dumps++
	f.err = f.enc.Encode(d)
}

// Dumps returns how many samples have been dumped (0 on nil).
func (f *FlightRecorder) Dumps() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// Err returns the first write error, if any.
func (f *FlightRecorder) Err() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Close flushes the stream and closes the underlying writer when it is
// closable.
func (f *FlightRecorder) Close() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ferr := f.w.Flush(); f.err == nil {
		f.err = ferr
	}
	if f.c != nil {
		if cerr := f.c.Close(); f.err == nil {
			f.err = cerr
		}
		f.c = nil
	}
	return f.err
}
