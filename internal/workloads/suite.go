package workloads

import "fmt"

// The per-benchmark profiles below are calibrated so the suite-level
// shapes match the paper: SPEC-Fp programs have large basic blocks, heavy
// floating-point mixes and tight single-block kernels (high category C,
// smaller instrumentation slowdown, higher taken ratio); SPEC-Int programs
// are branchy with small blocks and more calls (high category E and A,
// larger slowdown, more not-taken branches). Static footprints put roughly
// half of the taken-branch offset-bit flips outside the code region
// (category F), as the paper measures.

func intProfile(name string, seed int64) Profile {
	return Profile{
		Name: name, Suite: SuiteInt, Seed: seed,
		Funcs: 4, OuterIters: 12,
		InnerItersMin: 8, InnerItersMax: 24,
		BlockMin: 3, BlockMax: 9,
		SelfLoopFrac: 0.3, DiamondFrac: 1.6, TakenBias: 0.26,
		FpFrac: 0, MemFrac: 0.18, MulFrac: 0.06,
		CallInLoopFrac: 0.22,
		ColdWords:      88_000,
		DataWords:      4096,
	}
}

func fpProfile(name string, seed int64) Profile {
	return Profile{
		Name: name, Suite: SuiteFp, Seed: seed,
		Funcs: 3, OuterIters: 14,
		InnerItersMin: 20, InnerItersMax: 48,
		BlockMin: 16, BlockMax: 44,
		SelfLoopFrac: 0.8, DiamondFrac: 0.6, TakenBias: 0.32,
		FpFrac: 0.5, MemFrac: 0.14, MulFrac: 0.04,
		CallInLoopFrac: 0.05,
		ColdWords:      52_000,
		DataWords:      8192,
	}
}

// tweak applies per-benchmark personality on top of the suite defaults.
func tweak(p Profile, f func(*Profile)) Profile {
	f(&p)
	return p
}

// SpecInt returns the 12 SPEC-Int 2000 workload profiles.
func SpecInt() []Profile {
	return []Profile{
		tweak(intProfile("164.gzip", 164), func(p *Profile) { p.MemFrac = 0.25; p.BlockMax = 11 }),
		tweak(intProfile("175.vpr", 175), func(p *Profile) { p.DiamondFrac = 1.3; p.FpFrac = 0.08 }),
		tweak(intProfile("176.gcc", 176), func(p *Profile) {
			p.Funcs = 6
			p.ColdWords = 120_000
			p.BlockMin, p.BlockMax = 2, 7
			p.CallInLoopFrac = 0.3
		}),
		tweak(intProfile("181.mcf", 181), func(p *Profile) { p.MemFrac = 0.35; p.InnerItersMax = 40 }),
		tweak(intProfile("186.crafty", 186), func(p *Profile) { p.DiamondFrac = 2.0; p.MulFrac = 0.1 }),
		tweak(intProfile("197.parser", 197), func(p *Profile) { p.CallInLoopFrac = 0.35; p.BlockMax = 7 }),
		tweak(intProfile("252.eon", 252), func(p *Profile) { p.FpFrac = 0.15; p.BlockMax = 14 }),
		tweak(intProfile("253.perlbmk", 253), func(p *Profile) { p.Funcs = 5; p.CallInLoopFrac = 0.32 }),
		tweak(intProfile("254.gap", 254), func(p *Profile) { p.MulFrac = 0.12 }),
		tweak(intProfile("255.vortex", 255), func(p *Profile) { p.MemFrac = 0.3; p.ColdWords = 100_000 }),
		tweak(intProfile("256.bzip2", 256), func(p *Profile) { p.BlockMax = 12; p.DiamondFrac = 1.2 }),
		tweak(intProfile("300.twolf", 300), func(p *Profile) { p.DiamondFrac = 1.8; p.TakenBias = 0.34 }),
	}
}

// SpecFp returns the 14 SPEC-Fp 2000 workload profiles.
func SpecFp() []Profile {
	return []Profile{
		tweak(fpProfile("168.wupwise", 168), func(p *Profile) { p.FpFrac = 0.55 }),
		tweak(fpProfile("171.swim", 171), func(p *Profile) { p.SelfLoopFrac = 0.9; p.BlockMax = 56 }),
		tweak(fpProfile("172.mgrid", 172), func(p *Profile) { p.SelfLoopFrac = 0.9; p.BlockMin = 22 }),
		tweak(fpProfile("173.applu", 173), func(p *Profile) { p.BlockMax = 52 }),
		tweak(fpProfile("177.mesa", 177), func(p *Profile) {
			p.DiamondFrac = 0.7
			p.SelfLoopFrac = 0.5
			p.FpFrac = 0.35
		}),
		tweak(fpProfile("178.galgel", 178), func(p *Profile) { p.FpFrac = 0.6 }),
		tweak(fpProfile("179.art", 179), func(p *Profile) { p.MemFrac = 0.22; p.BlockMax = 40 }),
		tweak(fpProfile("183.equake", 183), func(p *Profile) { p.MemFrac = 0.25 }),
		tweak(fpProfile("187.facerec", 187), func(p *Profile) { p.DiamondFrac = 0.4 }),
		tweak(fpProfile("188.ammp", 188), func(p *Profile) { p.CallInLoopFrac = 0.12; p.SelfLoopFrac = 0.65 }),
		tweak(fpProfile("189.lucas", 189), func(p *Profile) { p.SelfLoopFrac = 0.9; p.MulFrac = 0.08 }),
		tweak(fpProfile("191.fma3d", 191), func(p *Profile) { p.Funcs = 4; p.CallInLoopFrac = 0.1 }),
		tweak(fpProfile("200.sixtrack", 200), func(p *Profile) { p.BlockMin = 20; p.FpFrac = 0.58 }),
		tweak(fpProfile("301.apsi", 301), func(p *Profile) { p.DiamondFrac = 0.3 }),
	}
}

// All returns every profile, fp first then int, matching the paper's
// figure ordering.
func All() []Profile {
	return append(SpecFp(), SpecInt()...)
}

// ByName looks a profile up by its benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("unknown workload %q (want one of the SPEC2000 names)", name)
}

// Names lists every workload name in figure order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}
