package workloads

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/cpu"
)

func TestSuiteSizes(t *testing.T) {
	if n := len(SpecInt()); n != 12 {
		t.Errorf("SPEC-Int profiles = %d, want 12", n)
	}
	if n := len(SpecFp()); n != 14 {
		t.Errorf("SPEC-Fp profiles = %d, want 14", n)
	}
	if n := len(All()); n != 26 {
		t.Errorf("All = %d, want 26", n)
	}
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Name] {
			t.Errorf("duplicate workload %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("181.mcf")
	if err != nil || p.Name != "181.mcf" || p.Suite != SuiteInt {
		t.Errorf("ByName(181.mcf) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
	if len(Names()) != 26 {
		t.Error("Names size")
	}
}

// TestAllWorkloadsRunToCompletion builds every workload at test scale and
// runs it natively: must halt, produce output, and be deterministic.
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, prof := range All() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			p, err := prof.Build(0.05)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			m := cpu.New()
			stop := m.RunProgram(p, 100_000_000)
			if stop.Reason != cpu.StopHalt {
				t.Fatalf("stop = %v", stop)
			}
			if len(m.Output) == 0 {
				t.Fatal("no output")
			}
			// Deterministic.
			m2 := cpu.New()
			m2.RunProgram(p, 100_000_000)
			if m2.Output[0] != m.Output[0] {
				t.Error("nondeterministic output")
			}
			// Rebuild gives identical program.
			p2, err := prof.Build(0.05)
			if err != nil {
				t.Fatal(err)
			}
			if p2.Len() != p.Len() {
				t.Error("nondeterministic generation")
			}
		})
	}
}

// TestSuiteShapeContrast checks the structural contrasts the paper's
// results rest on: fp workloads have larger mean blocks than int ones, and
// int workloads execute a larger share of not-taken branches.
func TestSuiteShapeContrast(t *testing.T) {
	// Dynamic mean block length: executed instructions per control
	// transfer. (Static means are dominated by the cold padding, which is
	// shaped identically in both suites.)
	meanBlock := func(prof Profile) float64 {
		p := prof.MustBuild(0.02)
		m := cpu.New()
		if stop := m.RunProgram(p, 100_000_000); stop.Reason != cpu.StopHalt {
			t.Fatalf("%s: %v", prof.Name, stop)
		}
		return float64(m.Steps) / float64(m.DirectBranches+m.IndirectBranches)
	}
	fpMean := meanBlock(SpecFp()[1])   // 171.swim
	intMean := meanBlock(SpecInt()[2]) // 176.gcc
	if fpMean <= 1.5*intMean {
		t.Errorf("fp dynamic block %.1f not clearly above int %.1f", fpMean, intMean)
	}

	takenRatio := func(prof Profile) float64 {
		p := prof.MustBuild(0.05)
		m := cpu.New()
		taken, total := 0, 0
		m.BranchHook = func(ev cpu.BranchEvent) {
			total++
			if ev.Taken {
				taken++
			}
		}
		if stop := m.RunProgram(p, 100_000_000); stop.Reason != cpu.StopHalt {
			t.Fatalf("%s: %v", prof.Name, stop)
		}
		return float64(taken) / float64(total)
	}
	fpTaken := takenRatio(SpecFp()[0])
	intTaken := takenRatio(SpecInt()[0])
	if fpTaken <= intTaken {
		t.Errorf("taken ratio: fp %.2f <= int %.2f (paper: fp 65%%, int 40%%)", fpTaken, intTaken)
	}
}

func TestScaling(t *testing.T) {
	prof := SpecInt()[0]
	small := prof.MustBuild(0.02)
	big := prof.MustBuild(0.2)
	run := func(p interface{ Len() uint32 }) {} // silence
	_ = run
	ms, mb := cpu.New(), cpu.New()
	if stop := ms.RunProgram(small, 1_000_000_000); stop.Reason != cpu.StopHalt {
		t.Fatal(stop)
	}
	if stop := mb.RunProgram(big, 1_000_000_000); stop.Reason != cpu.StopHalt {
		t.Fatal(stop)
	}
	if mb.Steps <= ms.Steps {
		t.Errorf("scaling broken: %d <= %d", mb.Steps, ms.Steps)
	}
	// Static code identical across scales (only dynamic work scales).
	if small.Len() != big.Len() {
		t.Errorf("static size changed with scale: %d vs %d", small.Len(), big.Len())
	}
}

func TestColdCodeFootprint(t *testing.T) {
	prof := SpecInt()[0]
	p := prof.MustBuild(0.02)
	if int(p.Len()) < prof.ColdWords {
		t.Errorf("image %d words < cold padding %d", p.Len(), prof.ColdWords)
	}
	g := cfg.Build(p)
	if g.NumBlocks() < 100 {
		t.Errorf("too few blocks: %d", g.NumBlocks())
	}
}
