// Package workloads generates the benchmark programs used by all
// experiments: one synthetic program per SPEC CPU2000 benchmark name (12
// integer, 14 floating point), shaped by per-benchmark profiles.
//
// The paper's results depend on aggregate program characteristics, not on
// SPEC semantics: basic-block size distribution (fp large, int small),
// branch taken ratios, single-block inner loops (the source of SPEC-Fp's
// high category C), call/return frequency (the DBT's indirect-branch
// overhead and the RET policy's check density), instruction mix (fp
// long-latency ops shrink relative instrumentation overhead), and static
// code footprint (which sets how many offset-bit flips leave the code
// region, category F). Each profile dials those knobs; generation is
// deterministic in the profile seed.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Suite tags a workload as integer or floating point.
type Suite int

// Suites.
const (
	SuiteInt Suite = iota
	SuiteFp
)

// String names the suite as the paper does.
func (s Suite) String() string {
	if s == SuiteInt {
		return "SPEC-Int"
	}
	return "SPEC-Fp"
}

// Profile describes one benchmark's shape.
type Profile struct {
	Name  string
	Suite Suite
	Seed  int64

	// Funcs is the number of distinct hot functions main calls per outer
	// iteration.
	Funcs int
	// OuterIters scales total work (main's outer loop trip count).
	OuterIters int
	// InnerItersMin/Max bound loop trip counts inside functions.
	InnerItersMin, InnerItersMax int

	// BlockMin/Max bound straight-line block sizes in instructions.
	BlockMin, BlockMax int
	// SelfLoopFrac is the fraction of loops generated as one big
	// single-block body (fp-style tight kernels; drives category C).
	SelfLoopFrac float64
	// DiamondFrac is the probability a body block is followed by a
	// data-dependent if/else diamond (int-style branchy code).
	DiamondFrac float64
	// TakenBias is the probability data-dependent branches are taken.
	TakenBias float64

	// FpFrac is the fraction of body instructions that are floating point.
	FpFrac float64
	// MemFrac is the fraction of body instructions touching memory.
	MemFrac float64
	// MulFrac is the fraction of body instructions that are multiplies.
	MulFrac float64

	// CallInLoopFrac is the probability a loop body calls a leaf helper
	// (drives ret frequency: DBT indirect overhead and the RET policy).
	CallInLoopFrac float64

	// ColdWords pads the image with never-executed but valid code placed
	// around the hot region, setting the static footprint (category F).
	ColdWords int

	// DataWords sizes the data segment.
	DataWords uint32
}

// scaled returns a copy with dynamic work scaled by f (static shape
// unchanged). Scale 1 is the full experiment size.
func (p Profile) scaled(f float64) Profile {
	if f <= 0 || f == 1 {
		return p
	}
	o := float64(p.OuterIters) * f
	if o < 1 {
		o = 1
	}
	p.OuterIters = int(o)
	return p
}

// Build generates the program at the given dynamic scale (1.0 = full
// size; tests use small fractions).
func (p Profile) Build(scale float64) (*isa.Program, error) {
	pr := p.scaled(scale)
	g := &generator{
		prof: pr,
		rng:  rand.New(rand.NewSource(pr.Seed)),
		b:    asm.NewBuilder(pr.Name),
	}
	return g.build()
}

// MustBuild is Build, panicking on generator bugs (profiles are static
// data; failures are programming errors).
func (p Profile) MustBuild(scale float64) *isa.Program {
	prog, err := p.Build(scale)
	if err != nil {
		panic(fmt.Sprintf("workload %s: %v", p.Name, err))
	}
	return prog
}

// generator carries the emission state.
//
// Register allocation:
//
//	eax — accumulator, printed at program end (SDC witness)
//	ebp — LCG state for data-dependent branch conditions
//	esi — scratch (LCG constants, memory addresses)
//	edx — body scratch
//	ebx — function outer-loop counter
//	ecx — function inner-loop counter
//	edi — main's outer counter (reserved for main)
type generator struct {
	prof   Profile
	rng    *rand.Rand
	b      *asm.Builder
	labels int
}

func (g *generator) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

func (g *generator) build() (*isa.Program, error) {
	pr := g.prof
	b := g.b
	b.SetDataWords(pr.DataWords)
	b.SetEntry("main")

	// Layout: cold front half, hot code, cold back half. Keeping the hot
	// region centered makes offset-bit flips land symmetrically, like a
	// branch in the middle of a real binary's text section.
	g.emitCold("coldf", pr.ColdWords/2)

	// Leaf helper used by CallInLoopFrac call sites.
	b.Label("leaf")
	b.Push(isa.EDX)
	b.MovI(isa.EDX, int32(g.rng.Intn(1000)+1))
	b.Add(isa.EAX, isa.EDX)
	b.XorI(isa.EAX, int32(g.rng.Intn(1<<16)))
	b.Pop(isa.EDX)
	b.Ret()

	// Hot functions.
	for f := 0; f < pr.Funcs; f++ {
		g.emitFunction(f)
	}

	// main.
	b.Label("main")
	b.MovI(isa.EAX, 0)
	b.MovI(isa.EBP, int32(pr.Seed)|1)
	b.MovI(isa.EDI, int32(pr.OuterIters))
	b.Label("main_loop")
	for f := 0; f < pr.Funcs; f++ {
		b.Call(fmt.Sprintf("fn_%d", f))
	}
	b.SubI(isa.EDI, 1)
	b.CmpI(isa.EDI, 0)
	b.Jcc(isa.CondGT, "main_loop")
	b.Out(isa.EAX)
	b.Halt()

	g.emitCold("coldb", pr.ColdWords-pr.ColdWords/2)

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = pr.Name
	return prog, nil
}

// emitFunction generates one hot function: a loop nest whose bodies are
// straight-line blocks, optional diamonds and optional leaf calls.
func (g *generator) emitFunction(idx int) {
	pr := g.prof
	b := g.b
	b.Label(fmt.Sprintf("fn_%d", idx))
	b.Push(isa.EBX)
	b.Push(isa.ECX)

	if g.rng.Float64() < pr.SelfLoopFrac {
		g.emitSelfLoop()
	} else {
		g.emitNest()
	}

	b.Pop(isa.ECX)
	b.Pop(isa.EBX)
	b.Ret()
}

// emitSelfLoop emits the fp-kernel shape: one large basic block looping on
// itself, so low offset-bit flips of the back edge land inside the same
// block (category C). Kernels iterate longer than ordinary loops, the way
// fp inner loops dominate dynamic branch counts.
func (g *generator) emitSelfLoop() {
	pr := g.prof
	b := g.b
	trips := g.trips() * 8
	top := g.label("kern")
	b.MovI(isa.EBX, int32(trips))
	b.Label(top)
	n := pr.BlockMax
	if n < 16 {
		// Integer-style tight loops: still a single block, just shorter.
		n = pr.BlockMax * 2
	}
	if n < 12 {
		n = 12
	}
	g.emitBody(n - 3)
	b.SubI(isa.EBX, 1)
	b.CmpI(isa.EBX, 0)
	b.Jcc(isa.CondGT, top)
}

// emitNest emits a two-level loop nest with branchy bodies.
func (g *generator) emitNest() {
	pr := g.prof
	b := g.b
	outer := g.label("outer")
	inner := g.label("inner")

	b.MovI(isa.EBX, int32(g.nestTrips()))
	b.Label(outer)
	b.MovI(isa.ECX, int32(g.nestTrips()))
	b.Label(inner)

	blocks := 1 + g.rng.Intn(3)
	for i := 0; i < blocks; i++ {
		g.emitBody(g.blockSize())
		// DiamondFrac is the expected number of conditionals per body
		// segment; values above 1 emit several.
		for frac := pr.DiamondFrac; frac > 0; frac-- {
			if g.rng.Float64() < frac {
				g.emitCond()
			}
		}
	}
	if g.rng.Float64() < pr.CallInLoopFrac {
		b.Call("leaf")
	}

	b.SubI(isa.ECX, 1)
	b.CmpI(isa.ECX, 0)
	b.Jcc(isa.CondGT, inner)
	b.SubI(isa.EBX, 1)
	b.CmpI(isa.EBX, 0)
	b.Jcc(isa.CondGT, outer)
}

// emitCond emits a data-dependent conditional with the profile's taken
// bias, conditioned on the LCG state. Most are else-less ifs (a skip
// branch, not taken with probability 1-bias, and no unconditional join
// jump), which is how branchy integer code reaches the paper's ~60%
// not-taken ratio; a quarter are full if/else diamonds.
func (g *generator) emitCond() {
	b := g.b
	g.emitLCGStep()
	thresh := thresholdFor(g.prof.TakenBias)
	g.emitLCGCmp(thresh)
	if g.rng.Float64() < 0.25 {
		elseL := g.label("else")
		joinL := g.label("join")
		b.Jcc(isa.CondGE, elseL)
		g.emitBody(g.blockSize())
		b.Jmp(joinL)
		b.Label(elseL)
		g.emitBody(g.blockSize())
		b.Label(joinL)
		return
	}
	skipL := g.label("skip")
	b.Jcc(isa.CondGE, skipL)
	g.emitBody(g.blockSize())
	b.Label(skipL)
}

func (g *generator) emitLCGCmp(thresh int32) {
	g.b.CmpI(isa.EBP, thresh)
}

// thresholdFor maps a taken bias to a signed comparison threshold over the
// roughly uniform int32 LCG output: P(x >= t) ~ bias.
func thresholdFor(bias float64) int32 {
	if bias <= 0 {
		return 1<<31 - 1
	}
	if bias >= 1 {
		return -(1 << 31)
	}
	return int32((1 - 2*bias) * float64(int64(1)<<31))
}

// emitLCGStep advances the pseudo-random state register.
func (g *generator) emitLCGStep() {
	b := g.b
	b.MovI(isa.ESI, 1103515245)
	b.Mul(isa.EBP, isa.ESI)
	b.AddI(isa.EBP, 12345)
}

// blockSize draws a straight-line block size from the profile.
func (g *generator) blockSize() int {
	pr := g.prof
	if pr.BlockMax <= pr.BlockMin {
		return pr.BlockMin
	}
	return pr.BlockMin + g.rng.Intn(pr.BlockMax-pr.BlockMin)
}

// nestTrips draws loop trip counts for multi-block nests. Fp nests are
// kept short so the single-block kernels dominate the dynamic branch mix,
// as they do in real fp codes.
func (g *generator) nestTrips() int {
	t := g.trips()
	if g.prof.Suite == SuiteFp {
		t = t/3 + 2
	}
	return t
}

func (g *generator) trips() int {
	pr := g.prof
	if pr.InnerItersMax <= pr.InnerItersMin {
		return pr.InnerItersMin
	}
	return pr.InnerItersMin + g.rng.Intn(pr.InnerItersMax-pr.InnerItersMin)
}

// emitBody emits n straight-line instructions with the profile's mix.
func (g *generator) emitBody(n int) {
	pr := g.prof
	b := g.b
	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		switch {
		case r < pr.FpFrac:
			switch g.rng.Intn(4) {
			case 0:
				b.FAdd(isa.EAX, isa.EDX)
			case 1:
				b.FMul(isa.EAX, isa.EDX)
			case 2:
				b.FSub(isa.EDX, isa.EAX)
			default:
				b.FAdd(isa.EDX, isa.EAX)
			}
		case r < pr.FpFrac+pr.MemFrac:
			addr := int32(g.rng.Intn(int(pr.DataWords)))
			b.MovI(isa.ESI, addr)
			if g.rng.Intn(2) == 0 {
				b.Store(isa.ESI, 0, isa.EAX)
			} else {
				b.Load(isa.EDX, isa.ESI, 0)
			}
			i++ // two instructions emitted
		case r < pr.FpFrac+pr.MemFrac+pr.MulFrac:
			b.MovI(isa.EDX, int32(g.rng.Intn(100)+3))
			b.Mul(isa.EAX, isa.EDX)
			i++
		default:
			switch g.rng.Intn(5) {
			case 0:
				b.AddI(isa.EAX, int32(g.rng.Intn(1000)))
			case 1:
				b.XorI(isa.EAX, int32(g.rng.Intn(1<<20)))
			case 2:
				b.Lea(isa.EDX, isa.EAX, int32(g.rng.Intn(64)))
			case 3:
				b.Add(isa.EAX, isa.EDX)
			default:
				b.ShrI(isa.EDX, 1)
			}
		}
	}
}

// emitCold pads the image with valid, never-executed code: short blocks of
// arithmetic ending in local jumps or returns, so wild branch targets
// landing there decode as plausible basic blocks.
func (g *generator) emitCold(prefix string, words int) {
	b := g.b
	start := int(b.PC())
	chunk := 0
	for int(b.PC())-start+80 <= words {
		lbl := fmt.Sprintf("%s_%d", prefix, chunk)
		b.Label(lbl)
		g.emitBody(28 + g.rng.Intn(36))
		// Alternate terminators: backward jump into the cold region or a
		// return (cold code is shaped like real library code).
		if chunk%3 == 2 {
			b.Jmp(lbl)
		} else {
			b.Ret()
		}
		chunk++
	}
}
