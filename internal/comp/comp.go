// Package comp implements the block-compiled execution backend: each basic
// block (and each straight-line hot trace across unconditional jumps) is
// compiled once into a fused superinstruction array whose body keeps the
// instruction pointer, step and cycle counters and the condition flags in
// locals, materializing flags only at reads and at tier boundaries. Blocks
// dispatch block-to-block through direct chain slots — pointers patched into
// the terminator the first time a transition resolves, mirroring the DBT's
// patched-cache chaining — with a dense by-address table as the unchained
// fallback.
//
// Execution is two-tier: a block starts life on the predecoded interpreter
// (cpu.RunPlan semantics via Machine.Step, block at a time) and an
// execution-count threshold promotes it to compiled form; unconditional
// forward jumps extend the compiled region into a trace, as in the paper's
// §5 hot-trace backend. Machine.Step remains the differential ground truth:
// the compiled tier is a pure performance transform, byte-identical in
// architectural state, counters and output, and it steps aside — exactly and
// mid-run — whenever semantics need the reference path (branch hooks, the
// firing step of a planted fault, step-budget boundaries that fall inside a
// block).
package comp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Backend selects the execution engine used for guest and translated code.
type Backend uint8

// Backends, from slowest to fastest. BackendAuto resolves to the compiled
// backend: it is byte-identical to the others by construction and falls
// back to the interpreter tiers on its own wherever required.
const (
	BackendAuto Backend = iota
	BackendStep
	BackendPlan
	BackendCompile
)

var backendNames = [...]string{"auto", "step", "plan", "compile"}

// String names the backend as accepted by ParseBackend.
func (b Backend) String() string {
	if int(b) < len(backendNames) {
		return backendNames[b]
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	for i, n := range backendNames {
		if s == n {
			return Backend(i), nil
		}
	}
	return BackendAuto, fmt.Errorf("unknown backend %q (want auto, step, plan or compile)", s)
}

// Compiled reports whether the backend uses the compiled tier.
func (b Backend) Compiled() bool { return b == BackendAuto || b == BackendCompile }

// Stats counts compiled-backend activity. Counter sums are order-independent,
// so per-sample totals merged across workers are worker-invariant.
type Stats struct {
	BlocksCompiled  uint64 // blocks promoted to compiled form
	TracePromotions uint64 // compiled blocks that extended across >=1 jump
	ChainHits       uint64 // block transitions resolved through a chain slot
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BlocksCompiled += other.BlocksCompiled
	s.TracePromotions += other.TracePromotions
	s.ChainHits += other.ChainHits
}

// DefaultThreshold is the execution count that promotes a block from the
// interpreted tier to compiled form.
const DefaultThreshold = 8

// heatPoison marks a block start whose compilation failed (unknown opcode,
// falls off the code image); it is never retried.
const heatPoison = ^uint32(0)

// span is one compiled guest address range [lo, hi).
type span struct{ lo, hi uint32 }

// cblock is one compiled block or trace: a fused uop array plus the bulk
// step/cycle totals charged on a full pass through it.
type cblock struct {
	start       uint32
	totalSteps  uint32
	totalCycles uint32
	uops        []uop
	spans       []span // covered guest ranges (one per trace segment)
	dead        bool   // invalidated; chain slots to it are unlinked
}

// covers reports whether addr lies inside any compiled segment.
func (b *cblock) covers(addr uint32) bool {
	for _, s := range b.spans {
		if addr >= s.lo && addr < s.hi {
			return true
		}
	}
	return false
}

// core is the compiled-block store. It is mutated only while a single owner
// drives it (translation-time warm-up); Freeze makes it immutable, after
// which any number of Engine views may execute from it concurrently.
type core struct {
	costs     *cpu.CostModel
	threshold uint32
	frozen    bool
	byAddr    []*cblock // dense: block start addr -> compiled block
	heat      []uint32  // execution counts for not-yet-compiled starts
	blocks    []*cblock
}

func (c *core) grow(n int) {
	if n <= len(c.byAddr) {
		return
	}
	byAddr := make([]*cblock, n)
	copy(byAddr, c.byAddr)
	c.byAddr = byAddr
	heat := make([]uint32, n)
	copy(heat, c.heat)
	c.heat = heat
}

func (c *core) reset() {
	clear(c.byAddr)
	clear(c.heat)
	c.blocks = c.blocks[:0]
}

// invalidate drops every compiled block covering addr and unlinks chain
// slots that point at the dropped blocks. Caller guarantees !frozen.
func (c *core) invalidate(addr uint32) {
	kept := c.blocks[:0]
	dropped := false
	for _, b := range c.blocks {
		if b.covers(addr) {
			b.dead = true
			c.byAddr[b.start] = nil
			c.heat[b.start] = 0
			dropped = true
		} else {
			kept = append(kept, b)
		}
	}
	c.blocks = kept
	if !dropped {
		return
	}
	for _, b := range c.blocks {
		for i := range b.uops {
			u := &b.uops[i]
			if u.taken != nil && u.taken.dead {
				u.taken = nil
			}
			if u.fall != nil && u.fall.dead {
				u.fall = nil
			}
		}
	}
}

// Engine is one execution view over a compiled-block core. The owning engine
// (unfrozen core) compiles and invalidates; views cloned from a frozen core
// share the compiled blocks read-only and keep their own code alias, stats
// and disable flag, so per-sample snapshot clones pay nothing for
// compilation and may diverge (a clone whose code cache is patched mid-run
// disables its compiled tier and finishes on the interpreter).
type Engine struct {
	c        *core
	code     []isa.Instr
	disabled bool
	Stats    Stats
}

// NewEngine returns an engine compiling code against the cost model (nil
// selects DefaultCosts) with the given promotion threshold (<=0 selects
// DefaultThreshold).
func NewEngine(code []isa.Instr, costs *cpu.CostModel, threshold int) *Engine {
	if costs == nil {
		costs = cpu.DefaultCosts()
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	c := &core{costs: costs, threshold: uint32(threshold)}
	c.grow(len(code))
	return &Engine{c: c, code: code}
}

// Sync re-aliases the engine onto code after the underlying slice grew,
// shrank or was reallocated (the DBT's cache following the plan's Sync).
// Growth is append-only and keeps compiled blocks valid; a shrink is a full
// cache invalidation: the owner rebuilds, a frozen view disables itself.
func (e *Engine) Sync(code []isa.Instr) {
	if e == nil || e.disabled {
		return
	}
	if e.c.frozen {
		if len(code) < len(e.c.byAddr) {
			e.disabled = true
			return
		}
		e.code = code
		return
	}
	if len(code) < len(e.code) {
		e.c.reset()
	}
	e.code = code
	e.c.grow(len(code))
}

// Redecode invalidates the compiled blocks covering addr after an in-place
// code patch (the DBT's chain patching rewrites both the trapout stub slot
// and the referring branch's immediate — both sites must be reported). A
// frozen view cannot recompile, so a patch under a compiled block disables
// its compiled tier for the rest of the run.
func (e *Engine) Redecode(addr uint32) {
	if e == nil || e.disabled {
		return
	}
	if !e.c.frozen {
		e.c.invalidate(addr)
		return
	}
	for _, b := range e.c.blocks {
		if b.covers(addr) {
			e.disabled = true
			return
		}
	}
}

// Freeze eagerly compiles every block start in starts, resolves all chain
// slots, and makes the core immutable. After Freeze the engine and its
// Clones may run concurrently.
func (e *Engine) Freeze(starts []uint32) {
	if e == nil {
		return
	}
	c := e.c
	if c.frozen {
		return
	}
	c.grow(len(e.code))
	for _, s := range starts {
		if s < uint32(len(c.byAddr)) && c.byAddr[s] == nil && c.heat[s] != heatPoison {
			e.compileAt(s)
		}
	}
	c.resolveChains()
	c.frozen = true
}

// Frozen reports whether the core is frozen (safe to Clone).
func (e *Engine) Frozen() bool { return e.c.frozen }

// Clone returns a view sharing this engine's frozen compiled blocks with
// fresh per-view stats. The receiver must be frozen.
func (e *Engine) Clone() *Engine {
	return &Engine{c: e.c, code: e.code, disabled: e.disabled}
}

// resolveChains fills every nil chain slot whose target is compiled.
func (c *core) resolveChains() {
	for _, b := range c.blocks {
		for i := range b.uops {
			u := &b.uops[i]
			k := u.k
			if k < uJmp || k > uDecJcc {
				continue
			}
			if u.taken == nil {
				if t := uint32(u.aux); t < uint32(len(c.byAddr)) {
					u.taken = c.byAddr[t]
				}
			}
			if u.fall == nil && k != uJmp && k != uCall {
				if t := u.ip + 1; t < uint32(len(c.byAddr)) {
					u.fall = c.byAddr[t]
				}
			}
		}
	}
}

// Run executes from the machine's current IP until a stop, RunPlan-
// equivalent in every observable: architectural state, counters, output,
// fault outcome and the returned Stop. Compiled blocks execute fused;
// everything the compiled tier cannot express exactly — branch hooks, the
// firing step of a planted fault, blocks straddling the step budget or the
// fault's firing boundary, cold blocks — runs on the reference tiers.
func (e *Engine) Run(m *cpu.Machine, p *cpu.Plan, maxSteps uint64) cpu.Stop {
	if e == nil || e.disabled || m.BranchHook != nil {
		return m.RunPlan(p, maxSteps)
	}
	c := e.c
	for {
		if m.Steps >= maxSteps {
			return cpu.Stop{Reason: cpu.StopOutOfSteps, IP: m.IP}
		}
		bound := maxSteps
		dbLimit := ^uint64(0)
		if f := m.Fault; f != nil && !f.Fired {
			if f.Kind == cpu.FaultRegBit {
				if m.Steps >= f.StepIndex {
					// At the firing boundary: one reference Step applies the
					// flip with the seed path's exact semantics.
					if stop, done := m.Step(p.Code()); done {
						return stop
					}
					continue
				}
				if f.StepIndex < bound {
					bound = f.StepIndex
				}
			} else {
				if m.DirectBranches >= f.BranchIndex {
					// The next direct branch fires the fault; walk to it on
					// the reference path.
					if stop, done := m.Step(p.Code()); done {
						return stop
					}
					continue
				}
				dbLimit = f.BranchIndex
			}
		}
		ip := m.IP
		if ip < uint32(len(c.byAddr)) {
			if cb := c.byAddr[ip]; cb != nil && m.Steps+uint64(cb.totalSteps) <= bound {
				if stop, done := e.runCompiled(m, cb, bound, dbLimit); done {
					return stop
				}
				continue
			}
		}
		if stop, done := e.interpBlock(m, p, maxSteps); done {
			return stop
		}
		if !c.frozen {
			e.noteBlock(ip)
		}
	}
}

// interpBlock executes one basic block (through its terminator) on the
// reference interpreter, stopping early on a trap or the step budget.
func (e *Engine) interpBlock(m *cpu.Machine, p *cpu.Plan, maxSteps uint64) (cpu.Stop, bool) {
	code := p.Code()
	for {
		if m.Steps >= maxSteps {
			return cpu.Stop{Reason: cpu.StopOutOfSteps, IP: m.IP}, true
		}
		wasTerm := p.IsTerminator(m.IP)
		if stop, done := m.Step(code); done {
			return stop, true
		}
		if wasTerm {
			return cpu.Stop{}, false
		}
	}
}

// noteBlock bumps the heat of an interpreted block start and promotes it to
// compiled form at the threshold.
func (e *Engine) noteBlock(ip uint32) {
	c := e.c
	if ip >= uint32(len(c.heat)) || c.byAddr[ip] != nil {
		return
	}
	h := c.heat[ip]
	if h == heatPoison {
		return
	}
	h++
	c.heat[ip] = h
	if h >= c.threshold {
		e.compileAt(ip)
	}
}
