package comp

import "repro/internal/isa"

// uop kinds. Layout matters in two places: the exec switch compiles to a
// dense jump table, and resolveChains treats [uJmp, uDecJcc] as the range of
// terminators carrying chain slots.
const (
	// Straight-line singles (one guest instruction each).
	uMovRI uint8 = iota
	uMovRR
	uLea
	uLea3
	uXor3
	uLoad
	uStore
	uPush
	uPop
	uPushF
	uPopF
	uAdd
	uAddI
	uSub
	uSubI
	uAnd
	uAndI
	uOr
	uOrI
	uXor
	uXorI
	uShl
	uShlI
	uShr
	uShrI
	uMul
	uDiv
	// Flag-elided ALU variants: the result's flags are provably overwritten
	// before any read, trap or block boundary, so the deferral record is
	// skipped entirely.
	uAddNF
	uAddINF
	uSubNF
	uSubINF
	uAndNF
	uAndINF
	uOrNF
	uOrINF
	uXorNF
	uXorINF
	uShlNF
	uShlINF
	uShrNF
	uShrINF
	uMulNF
	uCmp
	uCmpI
	uTest
	uFAdd
	uFSub
	uFMul
	uFDiv
	uCmov
	uOut
	// Fused straight-line superinstructions.
	uLCG       // movi rs1,imm ; mul rd,rs1 ; addi rd,aux
	uLCGNF     // same, addi flags elided
	uMoviMul   // movi rs1,imm ; mul rd,rs1
	uMoviMulNF // same, mul flags elided
	uMoviLoad  // movi rs1,imm ; load rd,[rs1+off] (aux = imm+off precomputed)
	uMoviStore // movi rs1,imm ; store [rs1+off],rs2 (aux = imm+off)
	// Trace-internal unconditional branch (accounting only; the successor's
	// uops follow inline).
	uBr
	// Terminators with chain slots. resolveChains relies on this range.
	uJmp
	uJcc
	uJrz
	uCall
	uCmpJcc  // cmp rd,rs1 ; jcc
	uCmpIJcc // cmpi rd,imm ; jcc
	uTestJcc // test rd,rs1 ; jcc
	uDecJcc  // subi rd,imm ; cmpi rd,aux2 ; jcc
	// Terminators without chain slots.
	uRet
	uJmpR
	uCallR
	uHalt
	uReport
	uTrapOut
)

// uop is one compiled superinstruction. preSteps/preCycles are the guest
// instructions retired and cycles charged from block entry through this
// uop's last member, inclusive — the state a trap at this uop must flush;
// ip is the guest address of the member that can trap or branch.
type uop struct {
	k         uint8
	rd        uint8
	rs1       uint8
	rs2       uint8 // condition code for Jcc/Cmov kinds
	imm       int32
	aux       int32 // second immediate / absolute branch target
	aux2      int32 // third immediate (uDecJcc's compare constant)
	ip        uint32
	preSteps  uint32
	preCycles uint32
	taken     *cblock // chain slot: branch-taken successor
	fall      *cblock // chain slot: fall-through successor
}

// maxTraceInstrs caps how many guest instructions a trace may cover.
const maxTraceInstrs = 192

// trapCapable reports whether the op can stop execution mid-block (memory
// protection, div-zero), forcing an exact flags materialization point.
func trapCapable(op isa.Op) bool {
	switch op {
	case isa.OpLoad, isa.OpStore, isa.OpPush, isa.OpPop, isa.OpPushF, isa.OpPopF, isa.OpDiv:
		return true
	}
	return false
}

// readsFlags reports whether the op observes the flags register.
func readsFlags(op isa.Op) bool {
	return op == isa.OpJcc || op == isa.OpCmov || op == isa.OpPushF
}

// elisionMask computes, for segment [seg, end) with terminator at end, which
// flag-writing instructions may skip their flag deferral: those whose flags
// are overwritten by a later writer in the same segment with no reader, no
// trap-capable instruction and no block boundary in between. The terminator
// itself is a boundary (deferred flags must survive into the next block), so
// elision never crosses it.
func elisionMask(code []isa.Instr, seg, end uint32) []bool {
	el := make([]bool, end-seg)
	for a := seg; a < end; a++ {
		if !code[a].Op.WritesFlags() {
			continue
		}
		for b := a + 1; b < end; b++ {
			op := code[b].Op
			if readsFlags(op) || trapCapable(op) || op.IsTerminator() {
				break
			}
			if op.WritesFlags() {
				el[a-seg] = true
				break
			}
		}
	}
	return el
}

// singleKind maps a straight-line opcode to its uop kind (with the
// flag-elided variant when nf). It returns ok=false for opcodes the
// compiler does not translate standalone (branches, terminators, nop).
func singleKind(op isa.Op, nf bool) (uint8, bool) {
	switch op {
	case isa.OpMovRI:
		return uMovRI, true
	case isa.OpMovRR:
		return uMovRR, true
	case isa.OpLea:
		return uLea, true
	case isa.OpLea3:
		return uLea3, true
	case isa.OpXor3:
		return uXor3, true
	case isa.OpLoad:
		return uLoad, true
	case isa.OpStore:
		return uStore, true
	case isa.OpPush:
		return uPush, true
	case isa.OpPop:
		return uPop, true
	case isa.OpPushF:
		return uPushF, true
	case isa.OpPopF:
		return uPopF, true
	case isa.OpAdd:
		return pick(nf, uAddNF, uAdd), true
	case isa.OpAddI:
		return pick(nf, uAddINF, uAddI), true
	case isa.OpSub:
		return pick(nf, uSubNF, uSub), true
	case isa.OpSubI:
		return pick(nf, uSubINF, uSubI), true
	case isa.OpAnd:
		return pick(nf, uAndNF, uAnd), true
	case isa.OpAndI:
		return pick(nf, uAndINF, uAndI), true
	case isa.OpOr:
		return pick(nf, uOrNF, uOr), true
	case isa.OpOrI:
		return pick(nf, uOrINF, uOrI), true
	case isa.OpXor:
		return pick(nf, uXorNF, uXor), true
	case isa.OpXorI:
		return pick(nf, uXorINF, uXorI), true
	case isa.OpShl:
		return pick(nf, uShlNF, uShl), true
	case isa.OpShlI:
		return pick(nf, uShlINF, uShlI), true
	case isa.OpShr:
		return pick(nf, uShrNF, uShr), true
	case isa.OpShrI:
		return pick(nf, uShrINF, uShrI), true
	case isa.OpMul:
		return pick(nf, uMulNF, uMul), true
	case isa.OpDiv:
		return uDiv, true
	case isa.OpCmp:
		return uCmp, true
	case isa.OpCmpI:
		return uCmpI, true
	case isa.OpTest:
		return uTest, true
	case isa.OpFAdd:
		return uFAdd, true
	case isa.OpFSub:
		return uFSub, true
	case isa.OpFMul:
		return uFMul, true
	case isa.OpFDiv:
		return uFDiv, true
	case isa.OpCmov:
		return uCmov, true
	case isa.OpOut:
		return uOut, true
	}
	return 0, false
}

func pick(nf bool, a, b uint8) uint8 {
	if nf {
		return a
	}
	return b
}

// compileAt compiles the block starting at start, extending across forward
// unconditional jumps into a trace. On failure the start is poisoned and
// never retried.
func (e *Engine) compileAt(start uint32) *cblock {
	c := e.c
	code := e.code
	n := uint32(len(code))
	cb := &cblock{start: start}
	var steps, cycles uint32
	seg := start
	visited := []uint32{}
	compiled := false

build:
	for {
		visited = append(visited, seg)
		end := seg
		for end < n && !code[end].Op.IsTerminator() {
			end++
		}
		if end >= n {
			break // falls off the code image; leave to the interpreter
		}
		for a := seg; a <= end; a++ {
			if !code[a].Op.Valid() {
				break build // junk opcode: the reference path must trap it
			}
		}
		term := code[end]

		// How many pre-terminator instructions fuse into the terminator.
		fuse := uint32(0)
		if term.Op == isa.OpJcc && end > seg {
			switch code[end-1].Op {
			case isa.OpCmp, isa.OpCmpI, isa.OpTest:
				fuse = 1
				if code[end-1].Op == isa.OpCmpI && end-1 > seg &&
					code[end-2].Op == isa.OpSubI && code[end-2].RD == code[end-1].RD {
					fuse = 2
				}
			}
		}

		el := elisionMask(code, seg, end)
		lim := end - fuse
		for a := seg; a < lim; {
			a += e.emitOne(cb, code, a, lim, el[a-seg:], &steps, &cycles)
		}

		// Charge the terminator and its fused members.
		for a := lim; a <= end; a++ {
			steps++
			cycles += c.costs.Of(code[a].Op)
		}
		cb.spans = append(cb.spans, span{seg, end + 1})

		if term.Op == isa.OpJmp {
			tgt := term.Target(end)
			if tgt > end && tgt < n && steps < maxTraceInstrs && !containsAddr(visited, tgt) {
				cb.uops = append(cb.uops, uop{
					k: uBr, ip: end, preSteps: steps, preCycles: cycles,
				})
				seg = tgt
				continue
			}
		}
		e.emitTerm(cb, code, seg, end, fuse, steps, cycles)
		compiled = true
		break
	}

	if !compiled || len(cb.uops) == 0 {
		c.heat[start] = heatPoison
		return nil
	}
	cb.totalSteps, cb.totalCycles = steps, cycles
	c.byAddr[start] = cb
	c.blocks = append(c.blocks, cb)
	e.Stats.BlocksCompiled++
	if len(cb.spans) > 1 {
		e.Stats.TracePromotions++
	}
	return cb
}

func containsAddr(s []uint32, a uint32) bool {
	for _, v := range s {
		if v == a {
			return true
		}
	}
	return false
}

// emitOne emits the superinstruction starting at guest address a (bounded by
// lim, exclusive) and returns how many guest instructions it consumed. el is
// the elision mask sliced to start at a.
func (e *Engine) emitOne(cb *cblock, code []isa.Instr, a, lim uint32, el []bool, steps, cycles *uint32) uint32 {
	costs := e.c.costs
	in := code[a]

	charge := func(k uint32) {
		s, cy := *steps, *cycles
		for i := uint32(0); i < k; i++ {
			s++
			cy += costs.Of(code[a+i].Op)
		}
		*steps, *cycles = s, cy
	}

	// Fusions rooted at movi.
	if in.Op == isa.OpMovRI && a+1 < lim {
		n1 := code[a+1]
		switch n1.Op {
		case isa.OpMul:
			if n1.RS1 == in.RD {
				if a+2 < lim {
					if n2 := code[a+2]; n2.Op == isa.OpAddI && n2.RD == n1.RD {
						charge(3)
						k := pick(el[2], uLCGNF, uLCG)
						cb.uops = append(cb.uops, uop{
							k: k, rd: uint8(n1.RD), rs1: uint8(in.RD),
							imm: in.Imm, aux: n2.Imm,
							ip: a + 2, preSteps: *steps, preCycles: *cycles,
						})
						return 3
					}
				}
				charge(2)
				k := pick(el[1], uMoviMulNF, uMoviMul)
				cb.uops = append(cb.uops, uop{
					k: k, rd: uint8(n1.RD), rs1: uint8(in.RD), imm: in.Imm,
					ip: a + 1, preSteps: *steps, preCycles: *cycles,
				})
				return 2
			}
		case isa.OpLoad:
			if n1.RS1 == in.RD {
				charge(2)
				cb.uops = append(cb.uops, uop{
					k: uMoviLoad, rd: uint8(n1.RD), rs1: uint8(in.RD),
					imm: in.Imm, aux: in.Imm + n1.Imm,
					ip: a + 1, preSteps: *steps, preCycles: *cycles,
				})
				return 2
			}
		case isa.OpStore:
			if n1.RS1 == in.RD {
				charge(2)
				cb.uops = append(cb.uops, uop{
					k: uMoviStore, rs1: uint8(in.RD), rs2: uint8(n1.RS2),
					imm: in.Imm, aux: in.Imm + n1.Imm,
					ip: a + 1, preSteps: *steps, preCycles: *cycles,
				})
				return 2
			}
		}
	}

	if in.Op == isa.OpNop {
		charge(1)
		return 1 // accounted in the cumulative counters, no uop emitted
	}

	k, _ := singleKind(in.Op, el[0])
	charge(1)
	cb.uops = append(cb.uops, uop{
		k: k, rd: uint8(in.RD), rs1: uint8(in.RS1), rs2: uint8(in.RS2),
		imm: in.Imm, ip: a, preSteps: *steps, preCycles: *cycles,
	})
	return 1
}

// emitTerm emits the block terminator at guest address end, fusing `fuse`
// preceding compare instructions into it, with the block's inclusive totals.
func (e *Engine) emitTerm(cb *cblock, code []isa.Instr, seg, end uint32, fuse, steps, cycles uint32) {
	in := code[end]
	u := uop{ip: end, preSteps: steps, preCycles: cycles}
	switch in.Op {
	case isa.OpJmp:
		u.k = uJmp
		u.aux = int32(in.Target(end))
	case isa.OpJcc:
		u.rs2 = uint8(in.Cond())
		u.aux = int32(in.Target(end))
		switch fuse {
		case 2: // subi rd,k ; cmpi rd,c ; jcc
			u.k = uDecJcc
			u.rd = uint8(code[end-2].RD)
			u.imm = code[end-2].Imm
			u.aux2 = code[end-1].Imm
		case 1:
			prev := code[end-1]
			u.rd = uint8(prev.RD)
			switch prev.Op {
			case isa.OpCmp:
				u.k = uCmpJcc
				u.rs1 = uint8(prev.RS1)
			case isa.OpCmpI:
				u.k = uCmpIJcc
				u.imm = prev.Imm
			case isa.OpTest:
				u.k = uTestJcc
				u.rs1 = uint8(prev.RS1)
			}
		default:
			u.k = uJcc
		}
	case isa.OpJrz:
		u.k = uJrz
		u.rs1 = uint8(in.RS1)
		u.aux = int32(in.Target(end))
	case isa.OpCall:
		u.k = uCall
		u.aux = int32(in.Target(end))
	case isa.OpRet:
		u.k = uRet
	case isa.OpJmpR:
		u.k = uJmpR
		u.rs1 = uint8(in.RS1)
	case isa.OpCallR:
		u.k = uCallR
		u.rs1 = uint8(in.RS1)
	case isa.OpHalt:
		u.k = uHalt
	case isa.OpReport:
		u.k = uReport
	case isa.OpTrapOut:
		u.k = uTrapOut
	}
	cb.uops = append(cb.uops, u)
}
