package comp

import (
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/workloads"
)

// outcome captures everything the backends must agree on.
type outcome struct {
	stop   cpu.Stop
	regs   [isa.NumRegs]int32
	flags  isa.Flags
	ip     uint32
	steps  uint64
	cycles uint64
	direct uint64
	indir  uint64
	sig    uint64
	outLen int
}

func capture(m *cpu.Machine, stop cpu.Stop) outcome {
	return outcome{
		stop: stop, regs: m.Regs, flags: m.Flags, ip: m.IP,
		steps: m.Steps, cycles: m.Cycles, direct: m.DirectBranches,
		indir: m.IndirectBranches, sig: m.SigChecks, outLen: len(m.Output),
	}
}

const testMaxSteps = uint64(1) << 62

// TestCompiledMatchesPlanOnWorkloads runs every workload under RunPlan and
// the compiled backend and requires identical outcomes.
func TestCompiledMatchesPlanOnWorkloads(t *testing.T) {
	for _, prof := range workloads.All() {
		p, err := prof.Build(0.05)
		if err != nil {
			t.Fatalf("%s: build: %v", prof.Name, err)
		}
		plan := cpu.NewPlan(p.Code, nil)
		m := cpu.New()
		m.Reset(p)
		want := capture(m, m.RunPlan(&plan, testMaxSteps))

		eng := NewEngine(p.Code, nil, 0)
		m2 := cpu.New()
		m2.Reset(p)
		got := capture(m2, eng.Run(m2, &plan, testMaxSteps))
		if got != want {
			t.Errorf("%s: compiled outcome differs\n got: %+v\nwant: %+v", prof.Name, got, want)
		}
	}
}

// TestCompiledThroughput reports the compiled backend's speedup over
// RunPlan on 164.gzip; informational (the CI gate runs via cfc-bench).
func TestCompiledThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	prof, err := workloads.ByName("164.gzip")
	if err != nil {
		t.Fatal(err)
	}
	p, err := prof.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	plan := cpu.NewPlan(p.Code, nil)

	best := func(run func() outcome) (float64, outcome) {
		sec := 0.0
		var out outcome
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			out = run()
			s := time.Since(start).Seconds()
			if rep == 0 || s < sec {
				sec = s
			}
		}
		return sec, out
	}

	planSec, planOut := best(func() outcome {
		m := cpu.New()
		m.Reset(p)
		return capture(m, m.RunPlan(&plan, testMaxSteps))
	})
	compSec, compOut := best(func() outcome {
		eng := NewEngine(p.Code, nil, 0)
		m := cpu.New()
		m.Reset(p)
		return capture(m, eng.Run(m, &plan, testMaxSteps))
	})
	if planOut != compOut {
		t.Fatalf("outcome mismatch\n got: %+v\nwant: %+v", compOut, planOut)
	}
	t.Logf("steps=%d plan=%.4fs compiled=%.4fs speedup=%.2fx",
		planOut.steps, planSec, compSec, planSec/compSec)
}

func benchProgram(b *testing.B) (*isa.Program, cpu.Plan) {
	prof, err := workloads.ByName("164.gzip")
	if err != nil {
		b.Fatal(err)
	}
	p, err := prof.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	return p, cpu.NewPlan(p.Code, nil)
}

func BenchmarkPlan(b *testing.B) {
	p, plan := benchProgram(b)
	for i := 0; i < b.N; i++ {
		m := cpu.New()
		m.Reset(p)
		m.RunPlan(&plan, testMaxSteps)
	}
}

func BenchmarkCompiled(b *testing.B) {
	p, plan := benchProgram(b)
	eng := NewEngine(p.Code, nil, 0)
	for i := 0; i < b.N; i++ {
		m := cpu.New()
		m.Reset(p)
		eng.Run(m, &plan, testMaxSteps)
	}
}
