package comp

import (
	"repro/internal/cpu"
	"repro/internal/isa"
)

// Deferred flag sources, mirroring cpu.RunPlan's deferral scheme: flag
// writes record (operation, operands) and materialize only at a read or a
// tier boundary.
const (
	fLive uint8 = iota
	fAdd
	fSub
	fLogic
)

// matf materializes a deferred flag source (identity for fLive).
func matf(fk uint8, fa, fb int32, f isa.Flags) isa.Flags {
	switch fk {
	case fAdd:
		return isa.AddFlags(fa, fb)
	case fSub:
		return isa.SubFlags(fa, fb)
	case fLogic:
		return isa.LogicFlags(fa)
	}
	return f
}

// flushState writes the compiled tier's locals back to the machine.
func flushState(m *cpu.Machine, ip uint32, steps, cycles, direct uint64, fk uint8, fa, fb int32, flags isa.Flags) {
	m.IP = ip
	m.Steps = steps
	m.Cycles = cycles
	m.DirectBranches = direct
	m.Flags = matf(fk, fa, fb, flags)
}

// evalSub evaluates cond against SubFlags(a, b) without materializing,
// using the IA32 compare identities.
func evalSub(c isa.Cond, a, b int32) bool {
	switch c {
	case isa.CondEQ:
		return a == b
	case isa.CondNE:
		return a != b
	case isa.CondLT:
		return a < b
	case isa.CondLE:
		return a <= b
	case isa.CondGT:
		return a > b
	case isa.CondGE:
		return a >= b
	case isa.CondB:
		return uint32(a) < uint32(b)
	case isa.CondBE:
		return uint32(a) <= uint32(b)
	case isa.CondA:
		return uint32(a) > uint32(b)
	case isa.CondAE:
		return uint32(a) >= uint32(b)
	case isa.CondS:
		return a-b < 0
	case isa.CondNS:
		return a-b >= 0
	}
	return c.Eval(isa.SubFlags(a, b))
}

// evalLogic evaluates cond against LogicFlags(v) (CF = OF = 0).
func evalLogic(c isa.Cond, v int32) bool {
	switch c {
	case isa.CondEQ:
		return v == 0
	case isa.CondNE:
		return v != 0
	case isa.CondLT, isa.CondS:
		return v < 0
	case isa.CondGE, isa.CondNS:
		return v >= 0
	case isa.CondLE:
		return v <= 0
	case isa.CondGT:
		return v > 0
	case isa.CondB:
		return false
	case isa.CondAE:
		return true
	case isa.CondBE:
		return v == 0
	case isa.CondA:
		return v != 0
	case isa.CondO:
		return false
	case isa.CondNO:
		return true
	}
	return c.Eval(isa.LogicFlags(v))
}

// evalAdd evaluates cond against AddFlags(a, b).
func evalAdd(c isa.Cond, a, b int32) bool {
	r := a + b
	switch c {
	case isa.CondEQ:
		return r == 0
	case isa.CondNE:
		return r != 0
	case isa.CondS:
		return r < 0
	case isa.CondNS:
		return r >= 0
	case isa.CondLT:
		return int64(a)+int64(b) < 0
	case isa.CondGE:
		return int64(a)+int64(b) >= 0
	case isa.CondLE:
		return r == 0 || int64(a)+int64(b) < 0
	case isa.CondGT:
		return r != 0 && int64(a)+int64(b) >= 0
	case isa.CondB:
		return uint32(r) < uint32(a)
	case isa.CondAE:
		return uint32(r) >= uint32(a)
	}
	return c.Eval(isa.AddFlags(a, b))
}

// condDeferred evaluates cond against the deferred flag state.
func condDeferred(c isa.Cond, fk uint8, fa, fb int32, flags isa.Flags) bool {
	switch fk {
	case fSub:
		return evalSub(c, fa, fb)
	case fLogic:
		return evalLogic(c, fa)
	case fAdd:
		return evalAdd(c, fa, fb)
	}
	return c.Eval(flags)
}

// runCompiled executes compiled blocks starting at cb, chaining block to
// block until a stop (done=true), an unchained cold target, a block that
// would cross bound, or the dbLimit-th direct branch (done=false with the
// machine state flushed exactly). The caller guarantees cb fits bound and
// that no branch hook is installed.
func (e *Engine) runCompiled(m *cpu.Machine, cb *cblock, bound, dbLimit uint64) (cpu.Stop, bool) {
	c := e.c
	frz := c.frozen
	byAddr := c.byAddr
	costs := c.costs
	code := e.code
	r := &m.Regs
	mm := m.Mem

	steps := m.Steps
	cycles := m.Cycles
	direct := m.DirectBranches
	flags := m.Flags
	fk := fLive
	var fa, fb int32
	var chainHits uint64

	var stop cpu.Stop
	done := false

chain:
	for {
		uops := cb.uops
		var slot **cblock
		var tgt uint32
	body:
		// Every block ends in a terminator uop that breaks out, so the range
		// bound never triggers; ranging (vs. an unbounded index) lets the
		// compiler drop the per-uop bounds check in this hottest loop.
		for i := range uops {
			u := &uops[i]
			switch u.k {
			case uMovRI:
				r[u.rd] = u.imm
			case uMovRR:
				r[u.rd] = r[u.rs1]
			case uLea:
				r[u.rd] = r[u.rs1] + u.imm
			case uLea3:
				r[u.rd] = r[u.rs1] + r[u.rs2] + u.imm
			case uXor3:
				r[u.rd] = r[u.rs1] ^ r[u.rs2] ^ u.imm

			case uLoad:
				v, err := mm.Load(uint32(r[u.rs1] + u.imm))
				if err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
				r[u.rd] = v
			case uStore:
				if err := mm.Store(uint32(r[u.rs1]+u.imm), r[u.rs2]); err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
			case uPush:
				r[isa.ESP]--
				if err := mm.Store(uint32(r[isa.ESP]), r[u.rs1]); err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
			case uPop:
				v, err := mm.Load(uint32(r[isa.ESP]))
				if err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
				r[u.rd] = v
				r[isa.ESP]++
			case uPushF:
				flags = matf(fk, fa, fb, flags)
				fk = fLive
				r[isa.ESP]--
				if err := mm.Store(uint32(r[isa.ESP]), int32(flags)); err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
			case uPopF:
				v, err := mm.Load(uint32(r[isa.ESP]))
				if err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
				r[isa.ESP]++
				flags = isa.Flags(v) & isa.FlagMask
				fk = fLive

			case uAdd:
				a, b := r[u.rd], r[u.rs1]
				r[u.rd] = a + b
				fk, fa, fb = fAdd, a, b
			case uAddI:
				a := r[u.rd]
				r[u.rd] = a + u.imm
				fk, fa, fb = fAdd, a, u.imm
			case uSub:
				a, b := r[u.rd], r[u.rs1]
				r[u.rd] = a - b
				fk, fa, fb = fSub, a, b
			case uSubI:
				a := r[u.rd]
				r[u.rd] = a - u.imm
				fk, fa, fb = fSub, a, u.imm
			case uAnd:
				r[u.rd] &= r[u.rs1]
				fk, fa = fLogic, r[u.rd]
			case uAndI:
				r[u.rd] &= u.imm
				fk, fa = fLogic, r[u.rd]
			case uOr:
				r[u.rd] |= r[u.rs1]
				fk, fa = fLogic, r[u.rd]
			case uOrI:
				r[u.rd] |= u.imm
				fk, fa = fLogic, r[u.rd]
			case uXor:
				r[u.rd] ^= r[u.rs1]
				fk, fa = fLogic, r[u.rd]
			case uXorI:
				r[u.rd] ^= u.imm
				fk, fa = fLogic, r[u.rd]
			case uShl:
				r[u.rd] = int32(uint32(r[u.rd]) << (uint32(r[u.rs1]) & 31))
				fk, fa = fLogic, r[u.rd]
			case uShlI:
				r[u.rd] = int32(uint32(r[u.rd]) << (uint32(u.imm) & 31))
				fk, fa = fLogic, r[u.rd]
			case uShr:
				r[u.rd] = int32(uint32(r[u.rd]) >> (uint32(r[u.rs1]) & 31))
				fk, fa = fLogic, r[u.rd]
			case uShrI:
				r[u.rd] = int32(uint32(r[u.rd]) >> (uint32(u.imm) & 31))
				fk, fa = fLogic, r[u.rd]
			case uMul:
				r[u.rd] *= r[u.rs1]
				fk, fa = fLogic, r[u.rd]
			case uDiv:
				if r[u.rs1] == 0 {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopDivZero, IP: u.ip}, true
					break chain
				}
				r[u.rd] /= r[u.rs1]
				fk, fa = fLogic, r[u.rd]

			case uAddNF:
				r[u.rd] += r[u.rs1]
			case uAddINF:
				r[u.rd] += u.imm
			case uSubNF:
				r[u.rd] -= r[u.rs1]
			case uSubINF:
				r[u.rd] -= u.imm
			case uAndNF:
				r[u.rd] &= r[u.rs1]
			case uAndINF:
				r[u.rd] &= u.imm
			case uOrNF:
				r[u.rd] |= r[u.rs1]
			case uOrINF:
				r[u.rd] |= u.imm
			case uXorNF:
				r[u.rd] ^= r[u.rs1]
			case uXorINF:
				r[u.rd] ^= u.imm
			case uShlNF:
				r[u.rd] = int32(uint32(r[u.rd]) << (uint32(r[u.rs1]) & 31))
			case uShlINF:
				r[u.rd] = int32(uint32(r[u.rd]) << (uint32(u.imm) & 31))
			case uShrNF:
				r[u.rd] = int32(uint32(r[u.rd]) >> (uint32(r[u.rs1]) & 31))
			case uShrINF:
				r[u.rd] = int32(uint32(r[u.rd]) >> (uint32(u.imm) & 31))
			case uMulNF:
				r[u.rd] *= r[u.rs1]

			case uCmp:
				fk, fa, fb = fSub, r[u.rd], r[u.rs1]
			case uCmpI:
				fk, fa, fb = fSub, r[u.rd], u.imm
			case uTest:
				fk, fa = fLogic, r[u.rd]&r[u.rs1]

			case uFAdd:
				r[u.rd] = cpu.Fop(r[u.rd], r[u.rs1], '+')
			case uFSub:
				r[u.rd] = cpu.Fop(r[u.rd], r[u.rs1], '-')
			case uFMul:
				r[u.rd] = cpu.Fop(r[u.rd], r[u.rs1], '*')
			case uFDiv:
				r[u.rd] = cpu.Fop(r[u.rd], r[u.rs1], '/')

			case uCmov:
				if condDeferred(isa.Cond(u.rs2), fk, fa, fb, flags) {
					r[u.rd] = r[u.rs1]
				}
			case uOut:
				m.Output = append(m.Output, r[u.rs1])

			case uLCG:
				r[u.rs1] = u.imm
				a := r[u.rd] * u.imm
				r[u.rd] = a + u.aux
				fk, fa, fb = fAdd, a, u.aux
			case uLCGNF:
				r[u.rs1] = u.imm
				r[u.rd] = r[u.rd]*u.imm + u.aux
			case uMoviMul:
				r[u.rs1] = u.imm
				v := r[u.rd] * u.imm
				r[u.rd] = v
				fk, fa = fLogic, v
			case uMoviMulNF:
				r[u.rs1] = u.imm
				r[u.rd] *= u.imm
			case uMoviLoad:
				r[u.rs1] = u.imm
				v, err := mm.Load(uint32(u.aux))
				if err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
				r[u.rd] = v
			case uMoviStore:
				r[u.rs1] = u.imm
				if err := mm.Store(uint32(u.aux), r[u.rs2]); err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}

			case uBr:
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				chainHits++

			case uJmp:
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				tgt, slot = uint32(u.aux), &u.taken
				break body
			case uJcc:
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				if condDeferred(isa.Cond(u.rs2), fk, fa, fb, flags) {
					tgt, slot = uint32(u.aux), &u.taken
				} else {
					tgt, slot = u.ip+1, &u.fall
				}
				break body
			case uJrz:
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				m.SigChecks++
				if r[u.rs1] == 0 {
					tgt, slot = uint32(u.aux), &u.taken
				} else {
					tgt, slot = u.ip+1, &u.fall
				}
				break body
			case uCall:
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				r[isa.ESP]--
				if err := mm.Store(uint32(r[isa.ESP]), int32(u.ip+1)); err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
				tgt, slot = uint32(u.aux), &u.taken
				break body

			case uCmpJcc:
				a, b := r[u.rd], r[u.rs1]
				fk, fa, fb = fSub, a, b
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				if evalSub(isa.Cond(u.rs2), a, b) {
					tgt, slot = uint32(u.aux), &u.taken
				} else {
					tgt, slot = u.ip+1, &u.fall
				}
				break body
			case uCmpIJcc:
				a := r[u.rd]
				fk, fa, fb = fSub, a, u.imm
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				if evalSub(isa.Cond(u.rs2), a, u.imm) {
					tgt, slot = uint32(u.aux), &u.taken
				} else {
					tgt, slot = u.ip+1, &u.fall
				}
				break body
			case uTestJcc:
				v := r[u.rd] & r[u.rs1]
				fk, fa = fLogic, v
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				if evalLogic(isa.Cond(u.rs2), v) {
					tgt, slot = uint32(u.aux), &u.taken
				} else {
					tgt, slot = u.ip+1, &u.fall
				}
				break body
			case uDecJcc:
				v := r[u.rd] - u.imm
				r[u.rd] = v
				fk, fa, fb = fSub, v, u.aux2
				if direct == dbLimit {
					flushState(m, u.ip, steps+uint64(u.preSteps)-1,
						cycles+uint64(u.preCycles)-uint64(costs.Of(code[u.ip].Op)),
						direct, fk, fa, fb, flags)
					break chain
				}
				direct++
				if evalSub(isa.Cond(u.rs2), v, u.aux2) {
					tgt, slot = uint32(u.aux), &u.taken
				} else {
					tgt, slot = u.ip+1, &u.fall
				}
				break body

			case uRet:
				v, err := mm.Load(uint32(r[isa.ESP]))
				if err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
				r[isa.ESP]++
				m.IndirectBranches++
				tgt, slot = uint32(v), nil
				break body
			case uJmpR:
				m.IndirectBranches++
				tgt, slot = uint32(r[u.rs1]), nil
				break body
			case uCallR:
				r[isa.ESP]--
				if err := mm.Store(uint32(r[isa.ESP]), int32(u.ip+1)); err != nil {
					flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
					stop, done = cpu.Stop{Reason: cpu.StopBadMemory, IP: u.ip, Detail: err.Error()}, true
					break chain
				}
				m.IndirectBranches++
				tgt, slot = uint32(r[u.rs1]), nil
				break body

			case uHalt:
				flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
				stop, done = cpu.Stop{Reason: cpu.StopHalt, IP: u.ip}, true
				break chain
			case uReport:
				flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
				stop, done = cpu.Stop{Reason: cpu.StopReport, IP: u.ip}, true
				break chain
			case uTrapOut:
				flushState(m, u.ip, steps+uint64(u.preSteps), cycles+uint64(u.preCycles), direct, fk, fa, fb, flags)
				stop, done = cpu.Stop{Reason: cpu.StopTrapOut, IP: u.ip}, true
				break chain
			}
		}

		// Block completed: charge its bulk totals and chain to the successor.
		steps += uint64(cb.totalSteps)
		cycles += uint64(cb.totalCycles)
		var nb *cblock
		if slot != nil {
			nb = *slot
		}
		if nb != nil {
			chainHits++
		} else {
			if tgt < uint32(len(byAddr)) {
				nb = byAddr[tgt]
			}
			if nb == nil {
				flushState(m, tgt, steps, cycles, direct, fk, fa, fb, flags)
				break chain
			}
			if !frz && slot != nil {
				*slot = nb
			}
		}
		if steps+uint64(nb.totalSteps) > bound {
			flushState(m, nb.start, steps, cycles, direct, fk, fa, fb, flags)
			break chain
		}
		cb = nb
	}
	e.Stats.ChainHits += chainHits
	return stop, done
}
