package comp

import (
	"fmt"

	"repro/internal/obs"
)

// Publish adds the stats as counters to reg (nil-safe), labeled with the
// technique name, mirroring dbt.Stats.Publish: campaigns sum per-sample
// deltas into one Stats and publish once, so worker sharding never skews
// the series.
func (s Stats) Publish(reg *obs.Registry, technique string) {
	if reg == nil {
		return
	}
	l := fmt.Sprintf("{technique=%q}", technique)
	reg.Counter("comp_blocks_compiled_total" + l).Add(s.BlocksCompiled)
	reg.Counter("comp_chain_hits_total" + l).Add(s.ChainHits)
	reg.Counter("comp_trace_promotions_total" + l).Add(s.TracePromotions)
}
