package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/fp"
)

const testMagic = "TESTMAG1"

func TestSealOpenRoundTrip(t *testing.T) {
	sections := [][]byte{
		[]byte("fingerprint|v1|demo"),
		{0x01, 0x02, 0x03},
		{}, // empty sections survive framing
	}
	buf := Seal(testMagic, sections...)
	got, err := Open(testMagic, buf)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(got) != len(sections) {
		t.Fatalf("sections = %d, want %d", len(got), len(sections))
	}
	for i := range sections {
		if !bytes.Equal(got[i], sections[i]) {
			t.Errorf("section %d = %x, want %x", i, got[i], sections[i])
		}
	}
}

func TestSealNoSections(t *testing.T) {
	buf := Seal(testMagic)
	got, err := Open(testMagic, buf)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("sections = %d, want 0", len(got))
	}
}

func TestOpenRejectsDamage(t *testing.T) {
	good := Seal(testMagic, []byte("identity"), []byte("payload bytes"))
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:6] }},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "WRONGMAG")
			return c
		}},
		{"flipped payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(testMagic)+5] ^= 0x40
			return c
		}},
		{"flipped checksum", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x01
			return c
		}},
		{"truncated", func(b []byte) []byte {
			// Drop a tail byte and re-seal the checksum so only the
			// framing is wrong.
			c := append([]byte(nil), b[:len(b)-5]...)
			return appendChecksum(c)
		}},
		{"overlong frame", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[len(testMagic):], 1<<30)
			return appendChecksum(c[:len(c)-4])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(testMagic, tc.mut(good))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// appendChecksum re-seals a damaged body with a valid trailer, isolating
// framing errors from checksum errors.
func appendChecksum(body []byte) []byte {
	c := append([]byte(nil), body...)
	return binary.LittleEndian.AppendUint32(c, fp.Checksum(c))
}

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1 << 40)
	w.I64(-12345)
	w.Bytes([]byte{9, 8, 7})
	w.String("hello")
	w.Words([]int32{-1, 0, 2_000_000})
	w.Words(nil)

	r := NewReader(w.Buf())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -12345 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Errorf("Bytes = %x", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Words(); !reflect.DeepEqual(got, []int32{-1, 0, 2_000_000}) {
		t.Errorf("Words = %v", got)
	}
	if got := r.Words(); got != nil {
		t.Errorf("empty Words = %v, want nil", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderStickyOnTruncation(t *testing.T) {
	w := NewWriter(8)
	w.U32(1)
	r := NewReader(w.Buf())
	if got := r.U64(); got != 0 { // 8 bytes from a 4-byte payload
		t.Errorf("U64 past end = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
	// Every later read keeps returning zero values without panicking.
	if r.U32() != 0 || r.String() != "" || r.Words() != nil {
		t.Error("reads after failure must return zero values")
	}
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Done = %v, want ErrCorrupt", err)
	}
}

func TestReaderBoundsHugeCount(t *testing.T) {
	w := NewWriter(8)
	w.U32(0xffffffff) // count that a naive make() would OOM on
	r := NewReader(w.Buf())
	if got := r.Words(); got != nil {
		t.Errorf("Words = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
}

func TestReaderDoneRejectsTrailing(t *testing.T) {
	w := NewWriter(8)
	w.U32(1)
	w.U8(0xcc) // trailing garbage the decoder never reads
	r := NewReader(w.Buf())
	_ = r.U32()
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Done = %v, want ErrCorrupt", err)
	}
}
