// Package frame implements the shared on-disk envelope of every
// versioned, checksummed cache encoding in the tree: an ASCII magic
// string (whose trailing digit is the format version), a sequence of
// u32-little-endian length-framed sections, and an IEEE CRC-32 trailer
// over everything before it. The checkpoint-log, campaign-cell and
// warm-artifact codecs all seal their payloads through this package, so
// the corrupt-vs-stale discipline is implemented once: Open rejects
// unreadable bytes (bad magic, bad checksum, bad framing — the corrupt
// class), while fingerprint comparison — the stale class — stays with the
// caller, who knows which section carries its identity.
//
// The package also provides the field-level Writer/Reader pair the
// binary payloads inside those sections are built from: little-endian
// fixed-width integers, length-framed byte strings and int32 word
// slices, with sticky bounded decoding so a corrupt length can neither
// drive a huge allocation nor read out of bounds.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/fp"
)

// ErrCorrupt marks an envelope whose bytes cannot be decoded: bad magic,
// checksum mismatch, or truncated/overlong framing. Callers typically
// wrap it in their own corrupt-class sentinel.
var ErrCorrupt = errors.New("frame: corrupt envelope")

// Seal builds the envelope: magic, each section length-framed in order,
// CRC-32 trailer over everything before it.
func Seal(magic string, sections ...[]byte) []byte {
	n := len(magic) + 4
	for _, s := range sections {
		n += 4 + len(s)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, magic...)
	for _, s := range sections {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return binary.LittleEndian.AppendUint32(buf, fp.Checksum(buf))
}

// Open verifies the magic and the checksum and returns the framed
// sections. The sections alias buf; callers that outlive it must copy.
// Every error is corrupt-class (wraps ErrCorrupt) — fingerprint checks
// are the caller's, over whichever section carries identity.
func Open(magic string, buf []byte) ([][]byte, error) {
	if len(buf) < len(magic)+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(buf))
	}
	if string(buf[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:len(magic)])
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := fp.Checksum(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, file says %08x", ErrCorrupt, got, want)
	}
	pos := len(magic)
	var sections [][]byte
	for pos < len(body) {
		if pos+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated frame header at byte %d", ErrCorrupt, pos)
		}
		n := int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		if n < 0 || pos+n > len(body) {
			return nil, fmt.Errorf("%w: frame of %d bytes at byte %d", ErrCorrupt, n, pos)
		}
		sections = append(sections, body[pos:pos+n])
		pos += n
	}
	return sections, nil
}

// Writer serializes a binary payload into an in-memory buffer:
// little-endian fixed-width integers plus length-framed variable fields.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Buf returns the accumulated payload.
func (w *Writer) Buf() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes appends a u32 length followed by the bytes.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a u32 length followed by the string bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Words appends a u32 count followed by the int32 words.
func (w *Writer) Words(ws []int32) {
	w.U32(uint32(len(ws)))
	for _, v := range ws {
		w.U32(uint32(v))
	}
}

// Reader walks a binary payload written by Writer, failing sticky on the
// first out-of-bounds read: after an error every accessor returns zero
// and Err reports the first failure.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a reader over the payload.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding failure (nil while healthy).
func (r *Reader) Err() error { return r.err }

// Done reports whether the payload was consumed exactly: no error and no
// trailing bytes. Decoders call it after the last field so interior
// garbage with a valid checksum is still rejected.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.pos)
	}
	return nil
}

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: payload truncated at byte %d", ErrCorrupt, r.pos)
	}
}

// Take returns the next n raw bytes (nil after a failure).
func (r *Reader) Take(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if b := r.Take(1); b != nil {
		return b[0]
	}
	return 0
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if b := r.Take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if b := r.Take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Count reads a u32 length and bounds it against the bytes remaining at
// unit size, so a corrupt length cannot drive a huge allocation.
func (r *Reader) Count(unit int) int {
	n := int(r.U32())
	if r.err == nil && n*unit > len(r.buf)-r.pos {
		r.fail()
		return 0
	}
	return n
}

// Bytes reads a length-framed byte field.
func (r *Reader) Bytes() []byte { return r.Take(r.Count(1)) }

// String reads a length-framed string field.
func (r *Reader) String() string { return string(r.Take(r.Count(1))) }

// Words reads a length-framed int32 word slice (nil when empty).
func (r *Reader) Words() []int32 {
	n := r.Count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	ws := make([]int32, n)
	for i := range ws {
		ws[i] = int32(r.U32())
	}
	return ws
}
