package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is a content-addressed artifact store: blobs addressed by their
// SHA-256 digest plus refs mapping fingerprint identities (RefID) to
// digests. The memory layer is always present; when a directory is
// configured, blobs and refs persist under dir/blobs and dir/refs via
// temp file + rename, best effort — a read-only or full disk degrades to
// memory-only, never to an error. A nil *Store is valid and empty.
type Store struct {
	dir string // "" = memory-only

	mu    sync.Mutex
	blobs map[string][]byte
	refs  map[string]string
}

// NewStore returns a store persisting under dir ("" keeps artifacts in
// memory only).
func NewStore(dir string) *Store {
	return &Store{dir: dir, blobs: map[string][]byte{}, refs: map[string]string{}}
}

// Dir returns the persistence directory ("" when memory-only).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// hexName reports whether name is a fixed-width lowercase hex digest —
// the only names Put/Get/Link/Resolve mint, and the only ones the disk
// layer will touch (so a hostile path element can never escape dir).
func hexName(name string) bool {
	if len(name) != 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put stores a blob under its content digest and returns the digest.
func (s *Store) Put(blob []byte) string {
	digest := Digest(blob)
	cp := append([]byte(nil), blob...)
	s.mu.Lock()
	s.blobs[digest] = cp
	s.mu.Unlock()
	s.writeFile(filepath.Join("blobs", digest), cp)
	return digest
}

// Get returns the blob for digest. A disk hit is re-verified against the
// digest before being trusted (content addressing makes corruption
// self-evident); a mismatching file reads as missing.
func (s *Store) Get(digest string) ([]byte, bool) {
	if s == nil || !hexName(digest) {
		return nil, false
	}
	s.mu.Lock()
	b, ok := s.blobs[digest]
	s.mu.Unlock()
	if ok {
		return b, true
	}
	if s.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, "blobs", digest))
	if err != nil || Digest(b) != digest {
		return nil, false
	}
	s.mu.Lock()
	s.blobs[digest] = b
	s.mu.Unlock()
	return b, true
}

// Link points refID at digest. The blob must already be present, so a
// ref can never dangle within one store.
func (s *Store) Link(refID, digest string) error {
	if !hexName(refID) || !hexName(digest) {
		return fmt.Errorf("artifact: bad ref %q -> %q", refID, digest)
	}
	if _, ok := s.Get(digest); !ok {
		return fmt.Errorf("artifact: ref %q targets unknown blob %q", refID, digest)
	}
	s.mu.Lock()
	s.refs[refID] = digest
	s.mu.Unlock()
	s.writeFile(filepath.Join("refs", refID), []byte(digest))
	return nil
}

// Resolve returns the digest refID points at.
func (s *Store) Resolve(refID string) (string, bool) {
	if s == nil || !hexName(refID) {
		return "", false
	}
	s.mu.Lock()
	d, ok := s.refs[refID]
	s.mu.Unlock()
	if ok {
		return d, true
	}
	if s.dir == "" {
		return "", false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, "refs", refID))
	if err != nil || !hexName(string(b)) {
		return "", false
	}
	d = string(b)
	s.mu.Lock()
	s.refs[refID] = d
	s.mu.Unlock()
	return d, true
}

// Refs snapshots the ref table (for the index endpoint).
func (s *Store) Refs() map[string]string {
	if s == nil {
		return nil
	}
	s.loadRefDir()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.refs))
	for k, v := range s.refs {
		out[k] = v
	}
	return out
}

// loadRefDir folds any on-disk refs not yet in memory (written by an
// earlier process) into the memory layer.
func (s *Store) loadRefDir() {
	if s.dir == "" {
		return
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "refs"))
	if err != nil {
		return
	}
	for _, e := range entries {
		if hexName(e.Name()) {
			s.Resolve(e.Name())
		}
	}
}

// writeFile persists rel under dir via temp file + rename, best effort.
func (s *Store) writeFile(rel string, b []byte) {
	if s.dir == "" {
		return
	}
	dst := filepath.Join(s.dir, rel)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".art-*")
	if err != nil {
		return
	}
	_, err = tmp.Write(b)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), dst)
	}
	if err != nil {
		os.Remove(tmp.Name())
	}
}
