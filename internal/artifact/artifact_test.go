package artifact

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/ckpt"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/fp"
	"repro/internal/isa"
	"repro/internal/obs"
)

// The test workload mixes loops, calls, memory traffic and output so the
// snapshot carries blocks, stubs and a trace, and the checkpoint log
// carries page deltas.
const workload = `
.data 64
main:
    movi eax, 0
    movi ecx, 30
    movi esi, 0
outer:
    movi edx, 8
inner:
    addi eax, 7
    store [esi], eax
    load ebx, [esi]
    add eax, ebx
    addi esi, 1
    cmpi esi, 40
    jlt keep
    movi esi, 0
keep:
    subi edx, 1
    cmpi edx, 0
    jgt inner
    call bump
    out eax
    subi ecx, 1
    cmpi ecx, 0
    jgt outer
    out esi
    halt
bump:
    addi eax, 3
    ret
`

const maxSteps = 10_000_000

func mustAssemble(t *testing.T) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("artifact-t", workload)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// warmArtifact builds a realistic dbt artifact: a warmed snapshot over
// the test workload plus its recorded checkpoint log.
func warmArtifact(t *testing.T) (*Artifact, *isa.Program) {
	t.Helper()
	p := mustAssemble(t)
	d := dbt.New(p, dbt.Options{})
	var clean *dbt.Result
	for i := 0; i < 3; i++ {
		if clean = d.Run(nil, maxSteps); clean.Stop.Reason != cpu.StopHalt {
			t.Fatalf("warm-up run %d: %v", i, clean.Stop)
		}
	}
	snap := d.Snapshot()
	log, err := ckpt.Record(snap, 500, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	st, err := snap.State()
	if err != nil {
		t.Fatal(err)
	}
	return &Artifact{
		Key:         "artifact-t|1|RCF|CMOVcc|ALLBB|-1",
		ProgramHash: fp.Program(p),
		MaxSteps:    maxSteps,
		CleanSteps:  log.Final.Steps,
		Snapshot:    st,
		Log:         log,
	}, p
}

func testFingerprint(a *Artifact) string {
	return Fingerprint(a.Key, "RCF", a.ProgramHash, a.MaxSteps)
}

// The fingerprint must separate every axis that shapes the warm state.
func TestFingerprintDistinguishes(t *testing.T) {
	base := Fingerprint("k", "RCF", "p", 100)
	for name, other := range map[string]string{
		"key":       Fingerprint("k2", "RCF", "p", 100),
		"technique": Fingerprint("k", "CFCSS", "p", 100),
		"program":   Fingerprint("k", "RCF", "p2", 100),
		"maxsteps":  Fingerprint("k", "RCF", "p", 200),
	} {
		if other == base {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
}

// Encode/Decode must round-trip every artifact shape — translator
// sessions (snapshot+log), static baselines (log only) and replay
// sessions (snapshot only) — and re-encode to the identical bytes, so a
// republished fetch stores the same blob under the same digest.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	full, _ := warmArtifact(t)
	static := &Artifact{
		Key: full.Key, ProgramHash: full.ProgramHash, MaxSteps: full.MaxSteps,
		CleanSteps: full.CleanSteps, Static: true, Log: full.Log,
	}
	replay := &Artifact{
		Key: full.Key, ProgramHash: full.ProgramHash, MaxSteps: full.MaxSteps,
		CleanSteps: full.CleanSteps, Snapshot: full.Snapshot,
	}
	for name, a := range map[string]*Artifact{"dbt": full, "static": static, "replay": replay} {
		t.Run(name, func(t *testing.T) {
			fpr := testFingerprint(a)
			blob := a.Encode(fpr)
			got, err := Decode(blob, fpr)
			if err != nil {
				t.Fatal(err)
			}
			if got.Key != a.Key || got.ProgramHash != a.ProgramHash ||
				got.MaxSteps != a.MaxSteps || got.CleanSteps != a.CleanSteps ||
				got.Static != a.Static {
				t.Errorf("header mismatch: %+v", got)
			}
			if !reflect.DeepEqual(got.Snapshot, a.Snapshot) {
				t.Error("snapshot state did not round-trip")
			}
			if (got.Log == nil) != (a.Log == nil) {
				t.Fatalf("log presence: got %v, want %v", got.Log != nil, a.Log != nil)
			}
			if a.Log != nil && !reflect.DeepEqual(got.Log.Points, a.Log.Points) {
				t.Error("log points did not round-trip")
			}
			if again := got.Encode(fpr); !bytes.Equal(again, blob) {
				t.Error("re-encoding a decoded artifact changed the bytes")
			}
		})
	}
}

// A decoded snapshot must restore into a translator whose clean run is
// indistinguishable from the original's.
func TestDecodedSnapshotRestores(t *testing.T) {
	a, p := warmArtifact(t)
	fpr := testFingerprint(a)
	got, err := Decode(a.Encode(fpr), fpr)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := dbt.RestoreSnapshot(p, dbt.Options{}, got.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	res := snap.NewDBT().Run(nil, maxSteps)
	if res.Stop.Reason != cpu.StopHalt {
		t.Fatalf("restored clean run: %v", res.Stop)
	}
	// Result stats are cumulative: a clean run over the restored state must
	// add nothing to the artifact's translation baseline.
	if res.Stats.BlocksTranslated != got.Snapshot.Stats.BlocksTranslated ||
		res.Stats.GuestInstrsTranslated != got.Snapshot.Stats.GuestInstrsTranslated {
		t.Errorf("restored clean run translated blocks: %+v vs baseline %+v",
			res.Stats, got.Snapshot.Stats)
	}
}

// Every damaged or mismatched envelope must be rejected with the right
// error class: unreadable bytes are ErrCorrupt, a clean decode under the
// wrong fingerprint is ErrStale.
func TestDecodeRejects(t *testing.T) {
	a, _ := warmArtifact(t)
	fpr := testFingerprint(a)
	blob := a.Encode(fpr)

	if _, err := Decode(blob, fpr+"x"); !errors.Is(err, ErrStale) {
		t.Errorf("wrong fingerprint: got %v, want ErrStale", err)
	}
	stale := Fingerprint(a.Key, "RCF", a.ProgramHash, a.MaxSteps+1)
	if _, err := Decode(a.Encode(stale), fpr); !errors.Is(err, ErrStale) {
		t.Errorf("stale version: got %v, want ErrStale", err)
	}

	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(flipped, fpr); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped byte: got %v, want ErrCorrupt", err)
	}
	if _, err := Decode(blob[:len(blob)-3], fpr); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: got %v, want ErrCorrupt", err)
	}
	if _, err := Decode(nil, fpr); !errors.Is(err, ErrCorrupt) {
		t.Error("nil buffer did not report ErrCorrupt")
	}

	// A static artifact carrying a snapshot is internally inconsistent.
	bad := &Artifact{Key: a.Key, CleanSteps: 1, Static: true, Snapshot: a.Snapshot}
	if _, err := Decode(bad.Encode(fpr), fpr); !errors.Is(err, ErrCorrupt) {
		t.Errorf("static+snapshot: got %v, want ErrCorrupt", err)
	}
}

// The store must persist blobs and refs across instances, re-verify disk
// blobs against their digest, and refuse non-digest names.
func TestStorePersistence(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(dir)
	blob := []byte("warm state bytes")
	digest := s1.Put(blob)
	ref := RefID("some-fingerprint")
	if err := s1.Link(ref, digest); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(dir)
	if d, ok := s2.Resolve(ref); !ok || d != digest {
		t.Fatalf("fresh store resolve = (%q, %v), want (%q, true)", d, ok, digest)
	}
	if b, ok := s2.Get(digest); !ok || !bytes.Equal(b, blob) {
		t.Fatal("fresh store did not serve the persisted blob")
	}
	if refs := s2.Refs(); refs[ref] != digest {
		t.Errorf("ref index missing persisted ref: %v", refs)
	}

	// A tampered disk blob reads as missing, never as wrong bytes.
	s3 := NewStore(dir)
	path := filepath.Join(dir, "blobs", digest)
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Get(digest); ok {
		t.Error("tampered blob served instead of missing")
	}

	if err := s1.Link("not-a-digest", digest); err == nil {
		t.Error("non-hex ref accepted")
	}
	if err := s1.Link(ref, strings.Repeat("a", 64)); err == nil {
		t.Error("ref to unknown blob accepted")
	}
	var nilStore *Store
	if _, ok := nilStore.Get(digest); ok {
		t.Error("nil store served a blob")
	}
}

// The HTTP surface: uploads are digest-verified, refs may only name held
// blobs, reads are faithful.
func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(NewStore("")))
	defer srv.Close()

	blob := []byte("served bytes")
	digest := Digest(blob)
	ref := RefID("fp")

	put := func(path string, body []byte) int {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+path, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	if code := put("/v1/artifacts/ref/"+ref, []byte(digest)); code != http.StatusConflict {
		t.Errorf("ref before blob: status %d, want 409", code)
	}
	if code := put("/v1/artifacts/blob/"+digest, []byte("other bytes")); code != http.StatusBadRequest {
		t.Errorf("blob under wrong digest: status %d, want 400", code)
	}
	if code := put("/v1/artifacts/blob/"+digest, blob); code != http.StatusNoContent {
		t.Errorf("blob upload: status %d, want 204", code)
	}
	if code := put("/v1/artifacts/ref/"+ref, []byte(digest)); code != http.StatusNoContent {
		t.Errorf("ref upload: status %d, want 204", code)
	}
	if code, body := get("/v1/artifacts/ref/" + ref); code != http.StatusOK || body != digest {
		t.Errorf("ref read = (%d, %q), want (200, digest)", code, body)
	}
	if code, body := get("/v1/artifacts/blob/" + digest); code != http.StatusOK || body != string(blob) {
		t.Errorf("blob read = (%d, %q)", code, body)
	}
	if code, _ := get("/v1/artifacts/blob/" + strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Errorf("missing blob: status %d, want 404", code)
	}
	if code, body := get("/v1/artifacts"); code != http.StatusOK || !strings.Contains(body, digest) {
		t.Errorf("index = (%d, %q)", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
}

func counterOf(reg *obs.Registry, name string) uint64 {
	return reg.Snapshot().Counters[name]
}

// The full fetch failure matrix: every way a store can lie — corrupt
// body, stale fingerprint, truncated frame, wrong blob, server errors —
// must return nil (the caller builds locally) and bump exactly the
// counter matching the failure class.
func TestClientFailureMatrix(t *testing.T) {
	a, _ := warmArtifact(t)
	fpr := testFingerprint(a)
	blob := a.Encode(fpr)
	digest := Digest(blob)
	ref := RefID(fpr)

	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x01
	truncated := blob[:len(blob)-5]
	staleFpr := Fingerprint(a.Key, "RCF", a.ProgramHash, a.MaxSteps+1)
	staleBlob := a.Encode(staleFpr)

	cases := []struct {
		name    string
		refBody string // digest the ref endpoint returns ("" = 404)
		refCode int
		blob    []byte // blob the blob endpoint returns (nil = 404)
		want    string // counter expected to bump
	}{
		{"miss", "", http.StatusNotFound, nil, "artifact_fetch_misses_total"},
		{"server-500", "boom", http.StatusInternalServerError, nil, "artifact_fetch_errors_total"},
		{"blob-gone", digest, http.StatusOK, nil, "artifact_fetch_errors_total"},
		{"corrupt-body", Digest(corrupt), http.StatusOK, corrupt, "artifact_fetch_corrupt_total"},
		{"digest-mismatch", digest, http.StatusOK, corrupt, "artifact_fetch_corrupt_total"},
		{"truncated-frame", Digest(truncated), http.StatusOK, truncated, "artifact_fetch_corrupt_total"},
		{"wrong-fingerprint", Digest(staleBlob), http.StatusOK, staleBlob, "artifact_fetch_stale_total"},
	}
	classes := []string{
		"artifact_fetch_hits_total", "artifact_fetch_misses_total",
		"artifact_fetch_stale_total", "artifact_fetch_corrupt_total",
		"artifact_fetch_errors_total",
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mux := http.NewServeMux()
			mux.HandleFunc("GET /v1/artifacts/ref/"+ref, func(w http.ResponseWriter, r *http.Request) {
				if tc.refBody == "" {
					http.Error(w, "unknown ref", http.StatusNotFound)
					return
				}
				w.WriteHeader(tc.refCode)
				w.Write([]byte(tc.refBody))
			})
			mux.HandleFunc("GET /v1/artifacts/blob/", func(w http.ResponseWriter, r *http.Request) {
				if tc.blob == nil {
					http.Error(w, "unknown blob", http.StatusNotFound)
					return
				}
				w.Write(tc.blob)
			})
			srv := httptest.NewServer(mux)
			defer srv.Close()

			reg := obs.NewRegistry()
			c := &Client{BaseURL: srv.URL, Local: NewStore(""), Metrics: reg}
			if got := c.Fetch(fpr); got != nil {
				t.Fatal("fetch returned an artifact; want nil fall-back to local build")
			}
			for _, class := range classes {
				want := uint64(0)
				if class == tc.want {
					want = 1
				}
				if got := counterOf(reg, class); got != want {
					t.Errorf("%s = %d, want %d", class, got, want)
				}
			}
		})
	}
}

// A verified fetch is cached pull-through: the second fetch must be
// served by the local store even after the remote disappears.
func TestClientPullThroughCache(t *testing.T) {
	a, _ := warmArtifact(t)
	fpr := testFingerprint(a)

	store := NewStore("")
	srv := httptest.NewServer(Handler(store))
	publisher := &Client{BaseURL: srv.URL, Metrics: obs.NewRegistry()}
	publisher.Publish(a, fpr)
	if got := counterOf(publisher.Metrics, "artifact_publish_total"); got != 1 {
		t.Fatalf("publish total = %d, want 1", got)
	}

	reg := obs.NewRegistry()
	c := &Client{BaseURL: srv.URL, Local: NewStore(""), Metrics: reg}
	if c.Fetch(fpr) == nil {
		t.Fatal("remote fetch failed")
	}
	srv.Close()
	if c.Fetch(fpr) == nil {
		t.Fatal("local pull-through cache did not serve after the remote died")
	}
	if got := counterOf(reg, "artifact_fetch_hits_total"); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}

	// A fresh client with no remote and an empty local store misses.
	lonely := &Client{Local: NewStore(""), Metrics: obs.NewRegistry()}
	if lonely.Fetch(fpr) != nil {
		t.Error("empty local-only client fetched an artifact")
	}
	if got := counterOf(lonely.Metrics, "artifact_fetch_misses_total"); got != 1 {
		t.Errorf("lonely misses = %d, want 1", got)
	}

	// A nil client is the disabled tier.
	var nilClient *Client
	if nilClient.Fetch(fpr) != nil {
		t.Error("nil client fetched an artifact")
	}
	nilClient.Publish(a, fpr) // must not panic
}

// A publisher with a failing remote still warms its local store and
// counts the error.
func TestPublishRemoteFailure(t *testing.T) {
	a, _ := warmArtifact(t)
	fpr := testFingerprint(a)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "full", http.StatusInsufficientStorage)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c := &Client{BaseURL: srv.URL, Local: NewStore(""), Metrics: reg}
	c.Publish(a, fpr)
	if got := counterOf(reg, "artifact_publish_errors_total"); got != 1 {
		t.Errorf("publish errors = %d, want 1", got)
	}
	// The local copy still serves.
	local := &Client{Local: c.Local, Metrics: obs.NewRegistry()}
	if local.Fetch(fpr) == nil {
		t.Error("local store not warmed by the failed remote publish")
	}
}
