// Package artifact implements the distributed warm-artifact tier: the
// portable serialization of a session's warm state — the translator
// snapshot (code cache, block map, chaining stubs, accumulated stats)
// plus the recorded checkpoint log and clean-run geometry — in the
// versioned, length-framed, CRC-32-checksummed envelope the other cache
// encodings share (internal/frame), fingerprinted by session key and
// engine/technique versions.
//
// Around the codec sit a content-addressed Store (SHA-256
// digest-addressed blobs plus fingerprint→digest refs, memory always and
// a directory when configured), a small HTTP server over a store, and a
// verified-fetch Client with pull-through local caching. The trust model
// follows the trusted-repository/checksummed-binary pattern: a fetched
// blob is accepted only when its bytes hash to the digest the ref named
// AND the decoded envelope carries the exact fingerprint the client
// derived locally; any failure — network error, digest mismatch, corrupt
// envelope, stale fingerprint — degrades to a local build, never to an
// error and never into the session registry.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/dbt"
	"repro/internal/fp"
	"repro/internal/frame"
	"repro/internal/graph"
	"repro/internal/isa"
)

// Version invalidates every artifact at once; bump it when the encoding
// or the meaning of a serialized field changes.
const Version = 1

// artifactMagic identifies the on-disk/wire artifact format; the trailing
// digit is the envelope version. The envelope is frame.Seal with four
// sections: fingerprint, header, snapshot (empty for static sessions)
// and checkpoint log (empty when the session replays).
const artifactMagic = "CFCARTF1"

// ErrCorrupt marks artifact bytes that cannot be decoded.
var ErrCorrupt = errors.New("artifact: corrupt artifact")

// ErrStale marks an artifact that decodes cleanly but was built for a
// different fingerprint (program bytes, configuration or version).
var ErrStale = errors.New("artifact: stale artifact")

// Artifact is one session's portable warm state.
type Artifact struct {
	// Key is the session-key fingerprint (session.Key.String()).
	Key string
	// ProgramHash is fp.Program of the built workload the state was
	// captured over; the restoring process rebuilds the program itself.
	ProgramHash string
	// MaxSteps is the registry's clean/reference-run step bound the state
	// was built under.
	MaxSteps uint64
	// CleanSteps is the clean reference run's length in steps.
	CleanSteps uint64
	// Static marks a native (no-translator) baseline session: Snapshot is
	// nil and the restoring process re-instruments the program locally.
	Static bool
	// Snapshot is the translator's warm state (nil for static sessions).
	Snapshot *dbt.SnapshotState
	// Log is the recorded checkpoint log (nil for replay sessions).
	Log *ckpt.Log
}

// Fingerprint derives the identity string sealed into an artifact: the
// artifact and engine/technique versions (shared with the campaign
// graph, so semantics changes invalidate both tiers together), the
// session key, the program content hash and the step bound. technique is
// the canonical label ("RCF", "CFCSS", ...).
func Fingerprint(key, technique, programHash string, maxSteps uint64) string {
	return fmt.Sprintf("artifact|v%d|e%d|t:%s.%d|%s|prog:%s|max:%d",
		Version, graph.EngineVersion, technique, graph.TechniqueVersions[technique],
		key, programHash, maxSteps)
}

// Digest content-addresses a blob: SHA-256 as lowercase hex.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// RefID maps a fingerprint to its ref name in the store: a SHA-256 of
// the fingerprint, so ref names are fixed-width, path-safe and leak no
// configuration detail into URLs.
func RefID(fingerprint string) string {
	h := fp.NewHash()
	h.String(fingerprint)
	return h.Sum()
}

// Encode seals the artifact under its fingerprint.
func (a *Artifact) Encode(fingerprint string) []byte {
	h := frame.NewWriter(64)
	h.String(a.Key)
	h.String(a.ProgramHash)
	h.U64(a.MaxSteps)
	h.U64(a.CleanSteps)
	h.Bool(a.Static)
	var snap, log []byte
	if a.Snapshot != nil {
		snap = encodeSnapshot(a.Snapshot)
	}
	if a.Log != nil {
		log = a.Log.Encode(fingerprint)
	}
	return frame.Seal(artifactMagic, []byte(fingerprint), h.Buf(), snap, log)
}

// Decode reads an artifact sealed by Encode, verifying the magic, the
// checksum and the fingerprint before trusting any field. It returns
// ErrCorrupt for unreadable bytes and ErrStale when the bytes decode but
// carry a different fingerprint; callers fall back to a local build on
// either.
func Decode(buf []byte, fingerprint string) (*Artifact, error) {
	sections, err := frame.Open(artifactMagic, buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(sections) != 4 {
		return nil, fmt.Errorf("%w: %d sections, want 4", ErrCorrupt, len(sections))
	}
	if got := string(sections[0]); got != fingerprint {
		return nil, fmt.Errorf("%w: fingerprint %q, want %q", ErrStale, got, fingerprint)
	}
	a := &Artifact{}
	h := frame.NewReader(sections[1])
	a.Key = h.String()
	a.ProgramHash = h.String()
	a.MaxSteps = h.U64()
	a.CleanSteps = h.U64()
	a.Static = h.Bool()
	if err := h.Done(); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if len(sections[2]) > 0 {
		if a.Snapshot, err = decodeSnapshot(sections[2]); err != nil {
			return nil, err
		}
	}
	if len(sections[3]) > 0 {
		// The nested log was sealed under the same fingerprint, which the
		// outer envelope already proved; any failure here is corruption.
		if a.Log, err = ckpt.DecodeLogBytes(sections[3], fingerprint); err != nil {
			return nil, fmt.Errorf("%w: log: %v", ErrCorrupt, err)
		}
	}
	if a.Static == (a.Snapshot != nil) {
		return nil, fmt.Errorf("%w: static=%v with snapshot=%v", ErrCorrupt, a.Static, a.Snapshot != nil)
	}
	return a, nil
}

func encodeStats(w *frame.Writer, s *dbt.Stats) {
	w.I64(int64(s.BlocksTranslated))
	w.U64(s.GuestInstrsTranslated)
	w.I64(int64(s.TracesFormed))
	w.U64(s.Dispatches)
	w.U64(s.IndirectLookups)
	w.I64(int64(s.Invalidations))
	w.I64(int64(s.CheckSites))
}

func decodeStats(r *frame.Reader, s *dbt.Stats) {
	s.BlocksTranslated = int(r.I64())
	s.GuestInstrsTranslated = r.U64()
	s.TracesFormed = int(r.I64())
	s.Dispatches = r.U64()
	s.IndirectLookups = r.U64()
	s.Invalidations = int(r.I64())
	s.CheckSites = int(r.I64())
}

// encodeSnapshot serializes the portable snapshot image into the
// artifact's snapshot section.
func encodeSnapshot(st *dbt.SnapshotState) []byte {
	w := frame.NewWriter(64 + len(st.Cache)*isa.InstrBytes)
	w.Bytes(isa.EncodeProgram(st.Cache))
	w.U32(uint32(len(st.Blocks)))
	for i := range st.Blocks {
		b := &st.Blocks[i]
		w.U32(b.GuestStart)
		w.U32(b.GuestEnd)
		w.U32(b.CacheStart)
		w.U32(b.CacheEnd)
		w.Bool(b.Checked)
		w.Bool(b.IsTrace)
		w.U32(uint32(len(b.GuestBlocks)))
		for _, g := range b.GuestBlocks {
			w.U32(g)
		}
	}
	w.U32(uint32(len(st.BlockMap)))
	for _, ref := range st.BlockMap {
		w.U32(ref.Guest)
		w.U32(ref.Index)
	}
	w.U32(uint32(len(st.Stubs)))
	for i := range st.Stubs {
		s := &st.Stubs[i]
		w.U32(s.Guest)
		w.U32(s.Slot)
		w.U32(s.Referrer)
		w.I64(s.Count)
		w.Bool(s.BackEdge)
		w.Bool(s.Chained)
	}
	w.U64(st.PendingCycles)
	encodeStats(w, &st.Stats)
	w.U64(st.CompStats.BlocksCompiled)
	w.U64(st.CompStats.TracePromotions)
	w.U64(st.CompStats.ChainHits)
	return w.Buf()
}

// decodeSnapshot reads the snapshot section.
func decodeSnapshot(buf []byte) (*dbt.SnapshotState, error) {
	r := frame.NewReader(buf)
	st := &dbt.SnapshotState{}
	image := r.Bytes()
	if r.Err() == nil {
		cache, err := isa.DecodeProgram(image)
		if err != nil {
			return nil, fmt.Errorf("%w: cache: %v", ErrCorrupt, err)
		}
		st.Cache = cache
	}
	nblocks := r.Count(18) // 4×u32 + 2 bools + count
	if r.Err() == nil && nblocks > 0 {
		st.Blocks = make([]dbt.BlockState, nblocks)
	}
	for i := 0; i < nblocks && r.Err() == nil; i++ {
		b := &st.Blocks[i]
		b.GuestStart = r.U32()
		b.GuestEnd = r.U32()
		b.CacheStart = r.U32()
		b.CacheEnd = r.U32()
		b.Checked = r.Bool()
		b.IsTrace = r.Bool()
		ng := r.Count(4)
		if r.Err() == nil && ng > 0 {
			b.GuestBlocks = make([]uint32, ng)
		}
		for j := 0; j < ng && r.Err() == nil; j++ {
			b.GuestBlocks[j] = r.U32()
		}
	}
	nrefs := r.Count(8)
	if r.Err() == nil && nrefs > 0 {
		st.BlockMap = make([]dbt.BlockRef, nrefs)
	}
	for i := 0; i < nrefs && r.Err() == nil; i++ {
		st.BlockMap[i].Guest = r.U32()
		st.BlockMap[i].Index = r.U32()
	}
	nstubs := r.Count(22) // 3×u32 + i64 + 2 bools
	if r.Err() == nil && nstubs > 0 {
		st.Stubs = make([]dbt.StubState, nstubs)
	}
	for i := 0; i < nstubs && r.Err() == nil; i++ {
		s := &st.Stubs[i]
		s.Guest = r.U32()
		s.Slot = r.U32()
		s.Referrer = r.U32()
		s.Count = r.I64()
		s.BackEdge = r.Bool()
		s.Chained = r.Bool()
	}
	st.PendingCycles = r.U64()
	decodeStats(r, &st.Stats)
	st.CompStats.BlocksCompiled = r.U64()
	st.CompStats.TracePromotions = r.U64()
	st.CompStats.ChainHits = r.U64()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
	}
	return st, nil
}
