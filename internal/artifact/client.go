package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Client fetches and publishes artifacts against an optional remote
// store, with a local pull-through cache. Every fetch is verified twice
// before anything is trusted: the blob bytes must hash to the digest the
// ref named, and the decoded envelope must carry the exact fingerprint
// the caller derived locally. Any failure returns nil — the caller
// builds locally — after bumping the counter matching the failure class:
//
//	artifact_fetch_hits_total     verified artifact served (local or remote)
//	artifact_fetch_misses_total   no store holds the fingerprint
//	artifact_fetch_stale_total    bytes decoded under a different fingerprint
//	artifact_fetch_corrupt_total  digest mismatch or unreadable bytes
//	artifact_fetch_errors_total   transport/server failure
//
// A nil *Client disables the tier (Fetch misses, Publish drops).
type Client struct {
	// BaseURL is the remote store ("http://host:port"); "" runs
	// local-store-only (publish warms the local store, fetch consults only
	// it — the mode a replica serving its own store runs in).
	BaseURL string
	// HTTP is the transport (nil uses a client with a short timeout:
	// the fallback is a local build, so a slow store must not stall it).
	HTTP *http.Client
	// Local is the pull-through cache (nil disables local caching).
	Local *Store
	// Metrics receives the fetch/publish counters and the artifact_fetch
	// span (nil drops them).
	Metrics *obs.Registry
}

// defaultTimeout bounds one store round trip.
const defaultTimeout = 30 * time.Second

func (c *Client) count(name string) {
	if c != nil && c.Metrics != nil {
		c.Metrics.Counter(name).Add(1)
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: defaultTimeout}
}

// Fetch returns the verified artifact for fingerprint, or nil when no
// store can serve one (for any reason — the caller's contract is "nil
// means build locally"). The whole resolution is timed into an
// artifact_fetch span.
func (c *Client) Fetch(fingerprint string) *Artifact {
	if c == nil {
		return nil
	}
	start := time.Now()
	a := c.fetch(fingerprint)
	if c.Metrics != nil {
		c.Metrics.RecordSpan("artifact_fetch", time.Since(start))
	}
	return a
}

func (c *Client) fetch(fingerprint string) *Artifact {
	refID := RefID(fingerprint)
	if digest, ok := c.Local.Resolve(refID); ok {
		if blob, ok := c.Local.Get(digest); ok {
			if a := c.verify(blob, digest, fingerprint); a != nil {
				c.count("artifact_fetch_hits_total")
				return a
			}
			// The local copy failed verification; fall through to the
			// remote, which may hold a fresh one.
		}
	}
	if c.BaseURL == "" {
		c.count("artifact_fetch_misses_total")
		return nil
	}
	digest, err, found := c.remoteRef(refID)
	if err != nil {
		c.count("artifact_fetch_errors_total")
		return nil
	}
	if !found {
		c.count("artifact_fetch_misses_total")
		return nil
	}
	blob, err := c.remoteBlob(digest)
	if err != nil {
		c.count("artifact_fetch_errors_total")
		return nil
	}
	if Digest(blob) != digest {
		c.count("artifact_fetch_corrupt_total")
		return nil
	}
	a := c.verify(blob, digest, fingerprint)
	if a == nil {
		return nil
	}
	if c.Local != nil {
		c.Local.Put(blob)
		c.Local.Link(refID, digest)
	}
	c.count("artifact_fetch_hits_total")
	return a
}

// verify decodes blob under fingerprint, counting the failure class. The
// digest is assumed already checked (local blobs are re-verified by
// Store.Get; remote blobs by fetch).
func (c *Client) verify(blob []byte, digest, fingerprint string) *Artifact {
	a, err := Decode(blob, fingerprint)
	switch {
	case err == nil:
		return a
	case errors.Is(err, ErrStale):
		c.count("artifact_fetch_stale_total")
	default:
		c.count("artifact_fetch_corrupt_total")
	}
	return nil
}

// remoteRef resolves refID at the remote store. found=false with err=nil
// is a clean 404 (nobody published yet).
func (c *Client) remoteRef(refID string) (digest string, err error, found bool) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/artifacts/ref/" + refID)
	if err != nil {
		return "", err, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return "", nil, false
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("artifact: ref %s: status %d", refID, resp.StatusCode), false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 128))
	if err != nil {
		return "", err, false
	}
	if !hexName(string(body)) {
		return "", fmt.Errorf("artifact: ref %s: malformed digest", refID), false
	}
	return string(body), nil, true
}

func (c *Client) remoteBlob(digest string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/artifacts/blob/" + digest)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("artifact: blob %s: status %d", digest, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
}

// Publish encodes a and pushes it to the local store and — when a remote
// is configured — the remote store, best effort: a failed publish counts
// into artifact_publish_errors_total and is otherwise silent (the next
// warm process re-publishes).
func (c *Client) Publish(a *Artifact, fingerprint string) {
	if c == nil {
		return
	}
	blob := a.Encode(fingerprint)
	digest := Digest(blob)
	refID := RefID(fingerprint)
	if c.Local != nil {
		c.Local.Put(blob)
		c.Local.Link(refID, digest)
	}
	if c.BaseURL != "" {
		if err := c.remotePublish(refID, digest, blob); err != nil {
			c.count("artifact_publish_errors_total")
			return
		}
	}
	c.count("artifact_publish_total")
}

func (c *Client) remotePublish(refID, digest string, blob []byte) error {
	if err := c.put("/v1/artifacts/blob/"+digest, blob); err != nil {
		return err
	}
	return c.put("/v1/artifacts/ref/"+refID, []byte(digest))
}

func (c *Client) put(path string, body []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("artifact: PUT %s: status %d", path, resp.StatusCode)
	}
	return nil
}
