package artifact

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// maxBlobBytes bounds one uploaded artifact (a warm snapshot plus log is
// typically well under a megabyte; the bound only exists so a hostile
// client cannot exhaust memory).
const maxBlobBytes = 1 << 28

// Handler serves a store over HTTP:
//
//	GET  /v1/artifacts               ref index as JSON
//	GET  /v1/artifacts/ref/{ref}     digest the ref points at (text)
//	PUT  /v1/artifacts/ref/{ref}     point ref at an uploaded digest
//	GET  /v1/artifacts/blob/{digest} blob bytes
//	PUT  /v1/artifacts/blob/{digest} upload a blob (digest-verified)
//	GET  /healthz                    liveness
//
// The server never decodes artifacts — integrity is content addressing
// (an uploaded blob must hash to its claimed digest; a ref may only name
// a blob the store holds) and the client's own fingerprint verification.
func Handler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"refs": s.Refs()})
	})
	mux.HandleFunc("GET /v1/artifacts/ref/{ref}", func(w http.ResponseWriter, r *http.Request) {
		digest, ok := s.Resolve(r.PathValue("ref"))
		if !ok {
			http.Error(w, "unknown ref", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, digest)
	})
	mux.HandleFunc("PUT /v1/artifacts/ref/{ref}", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 128))
		if err != nil || !hexName(string(body)) {
			http.Error(w, "body must be a blob digest", http.StatusBadRequest)
			return
		}
		if err := s.Link(r.PathValue("ref"), string(body)); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/artifacts/blob/{digest}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Get(r.PathValue("digest"))
		if !ok {
			http.Error(w, "unknown blob", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(b)
	})
	mux.HandleFunc("PUT /v1/artifacts/blob/{digest}", func(w http.ResponseWriter, r *http.Request) {
		want := r.PathValue("digest")
		if !hexName(want) {
			http.Error(w, "bad digest", http.StatusBadRequest)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBlobBytes+1))
		if err != nil || len(body) > maxBlobBytes {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		if got := Digest(body); got != want {
			http.Error(w, fmt.Sprintf("digest mismatch: body is %s", got), http.StatusBadRequest)
			return
		}
		s.Put(body)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}
