package core

import (
	"testing"

	"repro/internal/cpu"
)

func TestConfigResolve(t *testing.T) {
	ok := []Config{
		{},
		{Technique: "RCF", Style: "CMOVcc", Policy: "RET-BE"},
		{Technique: "EdgCF", Style: "Jcc", Policy: "END"},
		{Technique: "ECF", Policy: "RET"},
	}
	for _, c := range ok {
		if _, _, err := c.Resolve(); err != nil {
			t.Errorf("Resolve(%+v) = %v", c, err)
		}
	}
	bad := []Config{
		{Technique: "bogus"},
		{Style: "bogus"},
		{Policy: "bogus"},
	}
	for _, c := range bad {
		if _, _, err := c.Resolve(); err == nil {
			t.Errorf("Resolve(%+v) should fail", c)
		}
	}
}

func TestWorkloadFacade(t *testing.T) {
	if len(WorkloadNames()) != 26 {
		t.Fatal("workload list wrong")
	}
	p, err := Workload("181.mcf", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	nat := RunNative(p, 100_000_000)
	if nat.Stop.Reason != cpu.StopHalt || len(nat.Output) == 0 {
		t.Fatalf("native: %v %v", nat.Stop, nat.Output)
	}
	res, err := RunDBT(p, Config{Technique: "RCF"}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop.Reason != cpu.StopHalt {
		t.Fatalf("dbt: %v", res.Stop)
	}
	if len(res.Output) != len(nat.Output) || res.Output[0] != nat.Output[0] {
		t.Error("instrumented output differs from native")
	}
	if _, err := Workload("nope", 1); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestAssembleFacade(t *testing.T) {
	p, err := Assemble("hello", "movi eax, 5\nout eax\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if out := RunNative(p, 100).Output; len(out) != 1 || out[0] != 5 {
		t.Errorf("output = %v", out)
	}
	if Disassemble(p) == "" {
		t.Error("empty disassembly")
	}
	if _, err := Assemble("bad", "zork\n"); err == nil {
		t.Error("bad source should fail")
	}
}

func TestAnalyzeAndInjectFacade(t *testing.T) {
	p, err := Workload("164.gzip", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := AnalyzeErrors(p, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Total == 0 {
		t.Error("no fault sites")
	}
	rep, err := Inject(p, Config{Technique: "EdgCF", Style: "CMOVcc"}, 40, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Total == 0 {
		t.Error("no faults fired")
	}
	if _, err := Inject(p, Config{Technique: "zzz"}, 1, 1, 1); err == nil {
		t.Error("bad config should fail")
	}
}

func TestVerifySchemeFacade(t *testing.T) {
	for name, wantSufficient := range map[string]bool{
		"EdgCF": true, "RCF": true, "ECF": false, "CFCSS": false, "ECCA": false,
	} {
		res, err := VerifyScheme(name)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Necessary {
			t.Errorf("%s: false positives", name)
		}
		if res.Sufficient != wantSufficient {
			t.Errorf("%s: sufficient = %v, want %v", name, res.Sufficient, wantSufficient)
		}
	}
	if _, err := VerifyScheme("zork"); err == nil {
		t.Error("unknown scheme should fail")
	}
}
