// Package core is the library facade: one import that ties the guest ISA,
// assembler, native machine, dynamic binary translator, checking
// techniques, error model, fault injector and workload suite together
// behind a small string-configured API. The cmd/ tools and examples/ are
// thin wrappers over this package.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/errmodel"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/sig"
	"repro/internal/workloads"

	"repro/internal/check"
)

// Options is the shared execution surface (Trace, Metrics, Workers,
// CkptInterval) that the CLIs bind once via internal/cli and every
// campaign entry point embeds. It is an alias of inject.Options — core
// re-exports it so facade users never import internal/inject directly.
type Options = inject.Options

// Config selects a protection configuration by name, as the CLIs expose it.
type Config struct {
	// Technique: "none", "EdgCF", "RCF" or "ECF".
	Technique string
	// Style: "Jcc" (default) or "CMOVcc".
	Style string
	// Policy: "ALLBB" (default), "RET-BE", "RET" or "END".
	Policy string
	// SampleOffset shifts injection campaigns onto the global sample range
	// [SampleOffset, SampleOffset+samples) — one shard of a split campaign
	// (see inject.Config.SampleOffset).
	SampleOffset int
	// Options is the shared execution surface (Trace, Metrics, Workers,
	// CkptInterval), promoted so existing selector access keeps working.
	Options
}

// ParseStyle resolves an update-style name.
func ParseStyle(s string) (dbt.UpdateStyle, error) {
	switch strings.ToLower(s) {
	case "", "jcc":
		return dbt.UpdateJcc, nil
	case "cmov", "cmovcc":
		return dbt.UpdateCmov, nil
	}
	return 0, fmt.Errorf("unknown update style %q (want Jcc or CMOVcc)", s)
}

// ParsePolicy resolves a checking-policy name.
func ParsePolicy(s string) (dbt.Policy, error) {
	switch strings.ToUpper(s) {
	case "", "ALLBB":
		return dbt.PolicyAllBB, nil
	case "RET-BE", "RETBE":
		return dbt.PolicyRetBE, nil
	case "RET":
		return dbt.PolicyRet, nil
	case "END":
		return dbt.PolicyEnd, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want ALLBB, RET-BE, RET or END)", s)
}

// Resolve materializes the configuration.
func (c Config) Resolve() (dbt.Technique, dbt.Policy, error) {
	style, err := ParseStyle(c.Style)
	if err != nil {
		return nil, 0, err
	}
	tech, err := check.New(c.Technique, style)
	if err != nil {
		return nil, 0, err
	}
	pol, err := ParsePolicy(c.Policy)
	if err != nil {
		return nil, 0, err
	}
	return tech, pol, nil
}

// Workload builds a named SPEC2000-shaped benchmark at the given dynamic
// scale (1.0 = the full experiment size).
func Workload(name string, scale float64) (*isa.Program, error) {
	prof, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return prof.Build(scale)
}

// WorkloadNames lists the 26 benchmark names in figure order.
func WorkloadNames() []string { return workloads.Names() }

// Assemble parses assembly text into a guest program.
func Assemble(name, src string) (*isa.Program, error) { return asm.Assemble(name, src) }

// Disassemble renders a program as assembly text.
func Disassemble(p *isa.Program) string { return asm.Disassemble(p) }

// NativeResult reports a native (no translator) run.
type NativeResult struct {
	Stop   cpu.Stop
	Cycles uint64
	Steps  uint64
	Output []int32
}

// RunNative executes a program directly on the simulated machine (through
// the predecoded plan — native runs are always fault-free).
func RunNative(p *isa.Program, maxSteps uint64) *NativeResult {
	m := cpu.New()
	m.Reset(p)
	plan := cpu.NewPlan(p.Code, m.Costs)
	stop := m.RunPlan(&plan, maxSteps)
	return &NativeResult{
		Stop:   stop,
		Cycles: m.Cycles,
		Steps:  m.Steps,
		Output: append([]int32(nil), m.Output...),
	}
}

// NewDBT prepares a translator for p under the given configuration.
func NewDBT(p *isa.Program, c Config) (*dbt.DBT, error) {
	tech, pol, err := c.Resolve()
	if err != nil {
		return nil, err
	}
	return dbt.New(p, dbt.Options{Technique: tech, Policy: pol, Trace: c.Trace}), nil
}

// RunDBT translates and executes p under the given configuration.
func RunDBT(p *isa.Program, c Config, maxSteps uint64) (*dbt.Result, error) {
	d, err := NewDBT(p, c)
	if err != nil {
		return nil, err
	}
	return d.Run(nil, maxSteps), nil
}

// AnalyzeErrors runs the paper's Section 2 error model over p.
func AnalyzeErrors(p *isa.Program, maxSteps uint64) (*errmodel.Table, error) {
	return errmodel.Analyze(p, maxSteps)
}

// Inject runs a randomized single-fault campaign under the DBT. workers
// shards the samples across goroutines (0 means GOMAXPROCS, overriding
// c.Options.Workers); the report is bit-identical for every worker count.
// It is InjectCtx with a background context — kept one release for
// compatibility; new code calls InjectCtx.
func Inject(p *isa.Program, c Config, samples int, seed int64, workers int) (*inject.Report, error) {
	c.Workers = workers
	return InjectCtx(context.Background(), p, c, samples, seed)
}

// InjectCtx runs a randomized single-fault campaign under the DBT,
// honoring ctx for cancellation. Execution knobs (Workers, CkptInterval,
// Trace, Metrics) come from c.Options; the report is bit-identical for
// every worker count.
func InjectCtx(ctx context.Context, p *isa.Program, c Config, samples int, seed int64) (*inject.Report, error) {
	tech, pol, err := c.Resolve()
	if err != nil {
		return nil, err
	}
	icfg := inject.Config{
		Technique: tech, Policy: pol, Samples: samples, Seed: seed,
		SampleOffset: c.SampleOffset,
		Options:      c.Options,
	}
	return inject.Execute(ctx, p, icfg)
}

// VerifyScheme model-checks a technique's signature algebra against the
// paper's sufficient and necessary conditions on a representative graph
// (Section 4). Valid names: EdgCF, RCF, ECF, CFCSS, ECCA.
func VerifyScheme(name string) (sig.Result, error) {
	return VerifySchemeObs(name, nil, nil)
}

// VerifySchemeObs is VerifyScheme with observability: per-check-evaluation
// events on tr and explored-state/check-verdict counters on reg (both may
// be nil).
func VerifySchemeObs(name string, tr *obs.Tracer, reg *obs.Registry) (sig.Result, error) {
	g := &sig.Graph{Succs: [][]sig.BlockID{{1}, {2}, {1, 3}, {0, 4}, {}}}
	var scheme sig.Scheme
	switch strings.ToLower(name) {
	case "edgcf":
		scheme = sig.EdgCF{}
	case "rcf":
		scheme = sig.RCF{}
	case "ecf":
		scheme = sig.ECF{}
	case "cfcss":
		scheme = sig.NewCFCSS(g)
	case "ecca":
		scheme = sig.NewECCA(g)
	default:
		return sig.Result{}, fmt.Errorf("unknown scheme %q", name)
	}
	return sig.VerifyObs(g, scheme, tr, reg), nil
}
