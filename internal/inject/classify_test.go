package inject

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/errmodel"
)

// TestClassifyCategory drives classifyCategory through every branch-error
// category of the paper's Figure 1 (A-F), the NoError cases, and the Data
// label for register faults, using real code-cache geometry from a
// translated program.
func TestClassifyCategory(t *testing.T) {
	p := mustAssemble(t, workload)
	d := dbt.New(p, dbt.Options{})
	if res := d.Run(nil, 10_000_000); res.Stop.Reason != cpu.StopHalt {
		t.Fatalf("clean run: %v", res.Stop)
	}

	// Find two distinct multi-instruction translated blocks to aim at.
	var blocks []*dbt.TBlock
	for addr := uint32(0); addr < uint32(d.CacheLen()); addr++ {
		tb, ok := d.Locate(addr)
		if !ok || tb.CacheEnd-tb.CacheStart < 2 {
			continue
		}
		if len(blocks) == 0 || blocks[len(blocks)-1] != tb {
			blocks = append(blocks, tb)
		}
		if len(blocks) == 2 {
			break
		}
	}
	if len(blocks) < 2 {
		t.Fatalf("found %d usable blocks, need 2", len(blocks))
	}
	same, other := blocks[0], blocks[1]
	wild := uint32(d.CacheLen()) + 1000 // outside every translated block

	cases := []struct {
		name string
		f    cpu.Fault
		want errmodel.Category
	}{
		{"flag flip changes direction", cpu.Fault{
			Kind: cpu.FaultFlagBit, CleanTaken: true, FaultTaken: false,
		}, errmodel.CatA},
		{"flag flip keeps direction", cpu.Fault{
			Kind: cpu.FaultFlagBit, CleanTaken: true, FaultTaken: true,
		}, errmodel.CatNoError},
		{"offset flip on not-taken branch", cpu.Fault{
			Kind: cpu.FaultOffsetBit, CleanTaken: false,
		}, errmodel.CatNoError},
		{"same block, beginning", cpu.Fault{
			Kind: cpu.FaultOffsetBit, CleanTaken: true,
			FaultIP: same.CacheStart + 1, FaultTarget: same.CacheStart,
		}, errmodel.CatB},
		{"same block, middle", cpu.Fault{
			Kind: cpu.FaultOffsetBit, CleanTaken: true,
			FaultIP: same.CacheStart, FaultTarget: same.CacheStart + 1,
		}, errmodel.CatC},
		{"other block, beginning", cpu.Fault{
			Kind: cpu.FaultOffsetBit, CleanTaken: true,
			FaultIP: same.CacheStart, FaultTarget: other.CacheStart,
		}, errmodel.CatD},
		{"other block, middle", cpu.Fault{
			Kind: cpu.FaultOffsetBit, CleanTaken: true,
			FaultIP: same.CacheStart, FaultTarget: other.CacheStart + 1,
		}, errmodel.CatE},
		{"non-code target", cpu.Fault{
			Kind: cpu.FaultOffsetBit, CleanTaken: true,
			FaultIP: same.CacheStart, FaultTarget: wild,
		}, errmodel.CatF},
		{"register bit", cpu.Fault{
			Kind: cpu.FaultRegBit,
		}, errmodel.CatData},
	}
	for _, c := range cases {
		f := c.f
		if got := classifyCategory(d, &f); got != c.want {
			t.Errorf("%s: category = %v, want %v", c.name, got, c.want)
		}
	}
}
