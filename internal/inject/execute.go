package inject

import (
	"context"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/dbt"
	"repro/internal/isa"
)

// execPlan collects the optional execution inputs of Execute.
type execPlan struct {
	static     bool
	label      string
	snap       *dbt.Snapshot
	cleanSteps uint64
	haveSnap   bool
	log        *ckpt.Log
}

// ExecOption configures one Execute call: what pre-built state the
// campaign starts from.
type ExecOption func(*execPlan)

// WithSnapshot runs the campaign against a pre-built warm translator
// snapshot (from Warm, or restored from a fetched artifact) and the
// clean reference run's step count, instead of warming a fresh
// translator. Warm-up is deterministic, so the report is byte-identical
// to a cold run of the same configuration.
func WithSnapshot(snap *dbt.Snapshot, cleanSteps uint64) ExecOption {
	return func(e *execPlan) { e.snap, e.cleanSteps, e.haveSnap = snap, cleanSteps, true }
}

// WithRecording supplies a pre-recorded checkpoint log of the clean
// reference run, so the checkpoint engine skips its recording phase. The
// log is ignored when the replay engine is selected (CkptInterval 0);
// nil records one on demand.
func WithRecording(log *ckpt.Log) ExecOption {
	return func(e *execPlan) { e.log = log }
}

// AsStatic runs the campaign natively (no translator) under the given
// report label — the statically instrumented CFCSS/ECCA baselines and
// unprotected native runs. Incompatible with WithSnapshot.
func AsStatic(label string) ExecOption {
	return func(e *execPlan) { e.static, e.label = true, label }
}

// Execute is the single campaign entry point: it injects cfg.Samples
// faults into executions of p and classifies every outcome, honoring ctx
// for cancellation. With no options it warms a translator and runs the
// full pipeline; WithSnapshot/WithRecording start from pre-built warm
// state (the session registry's amortization path) and AsStatic selects
// native execution. Classified results are a pure function of (program,
// cfg minus Workers) — worker count, engine and pre-built state only
// change where the time goes.
//
// Run, RunWarm, RunStatic, RunStaticWarm, Campaign and StaticCampaign
// are all thin compatibility wrappers over this entry point.
func Execute(ctx context.Context, p *isa.Program, cfg Config, opts ...ExecOption) (*Report, error) {
	var plan execPlan
	for _, o := range opts {
		o(&plan)
	}
	cfg.applyDefaults()
	if plan.static {
		if plan.haveSnap {
			return nil, fmt.Errorf("inject: AsStatic is incompatible with WithSnapshot")
		}
		return cfg.runStaticWarm(ctx, p, plan.label, plan.log)
	}
	if !plan.haveSnap {
		warm := phaseSpan(cfg.Metrics, techName(cfg.Technique), "warm")
		snap, clean, err := Warm(p, cfg)
		warm.End()
		if err != nil {
			return nil, err
		}
		plan.snap, plan.cleanSteps = snap, clean.Steps
	}
	return cfg.runWarm(ctx, p, plan.snap, plan.cleanSteps, plan.log)
}
