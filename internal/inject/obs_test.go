package inject

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dbt"
	"repro/internal/obs"

	"repro/internal/check"
)

// metricsJSON runs one campaign with a fresh registry and returns the
// serialized snapshot plus the report.
func metricsJSON(t *testing.T, cfg Config, workers int) (string, *Report) {
	t.Helper()
	p := mustAssemble(t, workload)
	cfg.Workers = workers
	cfg.Metrics = obs.NewRegistry()
	rep, err := Campaign(p, cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	// Span durations are wall-clock; only the deterministic sections
	// participate in the byte-identity comparison.
	if err := cfg.Metrics.Snapshot().StripTimings().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rep
}

// TestCampaignMetricsWorkerCountInvariance: the exported metrics snapshot
// — counters, outcome series, latency histograms, gauges — must be
// byte-identical for every worker count, like the report itself.
func TestCampaignMetricsWorkerCountInvariance(t *testing.T) {
	base := Config{
		Technique: &check.RCF{Style: dbt.UpdateCmov},
		Samples:   200,
		Seed:      42,
		MaxSteps:  10_000_000,
	}
	serial, serialRep := metricsJSON(t, base, 1)
	if serial == "{}\n" {
		t.Fatal("serial campaign exported no metrics")
	}
	for _, w := range []int{2, 8} {
		multi, multiRep := metricsJSON(t, base, w)
		if multi != serial {
			t.Errorf("workers=%d: metrics snapshot differs from serial\n got: %s\nwant: %s",
				w, multi, serial)
		}
		if multiRep.Translator != serialRep.Translator {
			t.Errorf("workers=%d: translator stats differ: %+v vs %+v",
				w, multiRep.Translator, serialRep.Translator)
		}
	}
}

// TestCampaignMetricsContents checks the series a campaign is contracted
// to publish, and that they agree with the classified report.
func TestCampaignMetricsContents(t *testing.T) {
	reg := obs.NewRegistry()
	p := mustAssemble(t, workload)
	rep, err := Campaign(p, Config{
		Technique: &check.RCF{Style: dbt.UpdateCmov},
		Samples:   200, Seed: 1,
		MaxSteps: 10_000_000,
		Options:  Options{Workers: 4, Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()

	if got := s.Counters[`inject_samples_total{technique="RCF"}`]; got != uint64(rep.Samples) {
		t.Errorf("samples counter = %d, want %d", got, rep.Samples)
	}
	if got := s.Counters[`inject_not_fired_total{technique="RCF"}`]; got != uint64(rep.NotFired) {
		t.Errorf("not-fired counter = %d, want %d", got, rep.NotFired)
	}
	if got := s.Counters[`dbt_check_sites_total{technique="RCF"}`]; got != uint64(rep.Translator.CheckSites) {
		t.Errorf("check sites counter = %d, want %d", got, rep.Translator.CheckSites)
	}
	if rep.Translator.CheckSites == 0 {
		t.Error("RCF campaign reports zero check sites")
	}

	// Outcome counters sum to the fired-sample total.
	var outcomes uint64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "inject_outcomes_total{") {
			outcomes += v
		}
	}
	if outcomes != uint64(rep.Samples-rep.NotFired) {
		t.Errorf("outcome counters sum to %d, want %d fired samples",
			outcomes, rep.Samples-rep.NotFired)
	}

	// The overall latency histogram observes exactly the detected runs,
	// and its sum is the report's latency sum.
	h, ok := s.Histograms[`inject_detection_latency_instructions{technique="RCF"}`]
	if !ok {
		t.Fatal("no overall detection-latency histogram")
	}
	if h.Count != uint64(rep.LatencyN) || h.Sum != rep.LatencySum {
		t.Errorf("latency histogram count/sum = %d/%d, want %d/%d",
			h.Count, h.Sum, rep.LatencyN, rep.LatencySum)
	}
	if s.Gauges[`dbt_code_cache_instrs{technique="RCF"}`] <= 0 {
		t.Error("code-cache occupancy gauge not published")
	}
	if s.Counters[`cpu_sig_checks_total{technique="RCF"}`] == 0 {
		t.Error("no executed signature checks counted")
	}
}

// TestCampaignTraceEvents: with a tracer attached, a campaign emits a
// well-formed JSONL stream bracketed by campaign start/end, with
// detection events carrying sample indices and latencies.
func TestCampaignTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	p := mustAssemble(t, workload)
	rep, err := Campaign(p, Config{
		Technique: &check.RCF{Style: dbt.UpdateCmov},
		Samples:   100, Seed: 1,
		MaxSteps: 10_000_000,
		Options:  Options{Workers: 4, Trace: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	detections := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		kinds[ev.Kind]++
		if ev.Kind == obs.EvErrorDetected {
			detections++
			if ev.Sample == nil || *ev.Sample < 0 || *ev.Sample >= rep.Samples {
				t.Fatalf("detection event without valid sample: %+v", ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if kinds[obs.EvCampaignStart] != 1 || kinds[obs.EvCampaignEnd] != 1 {
		t.Errorf("campaign bracketing events: %d start, %d end",
			kinds[obs.EvCampaignStart], kinds[obs.EvCampaignEnd])
	}
	if kinds[obs.EvBlockTranslated] == 0 {
		t.Error("no block-translated events from the warm-up")
	}
	if kinds[obs.EvCheckSite] == 0 {
		t.Error("no check-site events under RCF")
	}
	if detections != rep.Totals.Detected() {
		t.Errorf("%d detection events, report says %d detected",
			detections, rep.Totals.Detected())
	}
	if kinds[obs.EvFaultFired] == 0 {
		t.Error("no fault-fired events")
	}
}

// The static campaigns publish through the same shard path.
func TestStaticCampaignMetricsWorkerCountInvariance(t *testing.T) {
	p := mustAssemble(t, workload)
	ip, err := check.InstrumentStatic(p, check.StaticCFCSS)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		reg := obs.NewRegistry()
		if _, err := StaticCampaign(ip, "CFCSS", Config{
			Samples: 200, Seed: 42, Options: Options{Workers: workers, Metrics: reg},
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().StripTimings().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	if multi := run(8); multi != serial {
		t.Errorf("static metrics differ across worker counts\n got: %s\nwant: %s", multi, serial)
	}
}
