package inject

import (
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/dbt"
)

// All six coverage-matrix techniques must keep the byte-identity invariant
// with the liveness prune and the predecoded hot loop active: checkpoint
// reports equal full replay at workers 1 and 4, dynamic and static engines
// alike. The prune itself must also fire — a campaign where ShortLive stays
// zero would pass equivalence vacuously.
func TestPruneEquivalenceAllTechniques(t *testing.T) {
	p := mustAssemble(t, workload)
	base := Config{
		Samples:     200,
		Seed:        42,
		KeepRecords: true,
		MaxSteps:    2_000_000,
		Options:     Options{Workers: 1},
	}

	totalPruned := 0
	compare := func(t *testing.T, name string, replay *Report, run func(cfg Config) (*Report, error)) {
		t.Helper()
		for _, w := range []int{1, 4} {
			cfg := base
			cfg.Workers = w
			cfg.CkptInterval = -1
			rep, err := run(cfg)
			if err != nil {
				t.Fatalf("%s ckpt workers=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(reportKey(rep), reportKey(replay)) {
				t.Errorf("%s ckpt workers=%d: report differs from replay", name, w)
			}
			if fg, fw := formatKey(rep), formatKey(replay); fg != fw {
				t.Errorf("%s ckpt workers=%d: formatted report differs\n got:\n%s\nwant:\n%s", name, w, fg, fw)
			}
			if got := rep.Executed + rep.ShortOffset + rep.ShortLive; got != rep.Samples {
				t.Errorf("%s ckpt workers=%d: engine counters sum to %d, want %d samples",
					name, w, got, rep.Samples)
			}
			totalPruned += rep.ShortLive
		}
		if replay.ShortOffset != 0 || replay.ShortLive != 0 || replay.Executed != replay.Samples {
			t.Errorf("%s replay short-circuited: %+v", name, reportKey(replay))
		}
	}

	// Dynamic engine: the four DBT techniques, with register faults on so
	// the register facet of the prune is exercised too.
	for _, name := range []string{"none", "ECF", "EdgCF", "RCF"} {
		tech, err := check.New(name, dbt.UpdateCmov)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Technique = tech
		cfg.RegFaults = true
		replay, err := Campaign(p, cfg)
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		compare(t, name, replay, func(cfg2 Config) (*Report, error) {
			cfg2.Technique = tech
			cfg2.RegFaults = true
			return Campaign(p, cfg2)
		})
	}

	// Static engine: the two statically instrumented baselines.
	for name, kind := range map[string]check.StaticKind{
		"CFCSS": check.StaticCFCSS,
		"ECCA":  check.StaticECCA,
	} {
		ip, err := check.InstrumentStatic(p, kind)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := StaticCampaign(ip, name, base)
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		compare(t, name, replay, func(cfg2 Config) (*Report, error) {
			return StaticCampaign(ip, name, cfg2)
		})
	}

	if totalPruned == 0 {
		t.Error("liveness prune never fired across all six techniques")
	}
}
