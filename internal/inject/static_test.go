package inject

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/isa"
)

const staticProg = `
main:
    movi eax, 0
    movi ecx, 12
loop:
    add eax, ecx
    cmpi eax, 40
    jlt keep
    subi eax, 13
keep:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
`

func TestStaticCampaignBasics(t *testing.T) {
	p := mustAssemble(t, staticProg)
	rep, err := StaticCampaign(p, "native", Config{Samples: 200, Seed: 5, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Technique != "native" {
		t.Errorf("label = %q", rep.Technique)
	}
	if rep.Totals.Total+rep.NotFired != rep.Samples {
		t.Error("sample accounting broken")
	}
	if rep.Totals.Total == 0 {
		t.Fatal("no faults fired")
	}
	// An unprotected program must exhibit silent corruption somewhere.
	if rep.Totals.Count[OutSDC] == 0 {
		t.Error("no SDCs on an unprotected program; fault model inert?")
	}
	// Category F faults are hardware-caught.
	sum := 0
	for _, a := range rep.ByCat {
		sum += a.Total
	}
	if sum != rep.Totals.Total {
		t.Error("category totals do not add up")
	}
}

func TestStaticCampaignErrors(t *testing.T) {
	spin := &isa.Program{Name: "spin", Code: []isa.Instr{{Op: isa.OpJmp, Imm: -1}}}
	if _, err := StaticCampaign(spin, "x", Config{Samples: 1, MaxSteps: 100}); err == nil {
		t.Error("non-halting program must fail")
	}
	nobranch := mustAssemble(t, "movi eax, 1\nout eax\nhalt\n")
	if _, err := StaticCampaign(nobranch, "x", Config{Samples: 1}); err == nil {
		t.Error("branch-free program must fail")
	}
}

func TestStaticCampaignLatency(t *testing.T) {
	p := mustAssemble(t, staticProg)
	rep, err := StaticCampaign(p, "native", Config{Samples: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyN > 0 && rep.MeanLatency() < 0 {
		t.Error("negative latency")
	}
	if FormatReport(rep) == "" {
		t.Error("empty report")
	}
}

func TestIsResidualGap(t *testing.T) {
	p := mustAssemble(t, staticProg)
	d := dbt.New(p, dbt.Options{})
	d.Run(nil, 1_000_000)
	// Find the halt instruction in the cache: landing there is the exit gap.
	foundHalt := false
	for a := uint32(0); a < uint32(d.CacheLen()); a++ {
		if d.CacheInstr(a).Op == isa.OpHalt {
			foundHalt = true
			if !IsResidualGap(d, a) {
				t.Errorf("halt at %#x not classified as exit gap", a)
			}
		}
	}
	if !foundHalt {
		t.Fatal("no halt in cache")
	}
	// A body instruction far from any report is not a gap.
	for a := uint32(0); a < uint32(d.CacheLen()); a++ {
		in := d.CacheInstr(a)
		if in.Op == isa.OpAdd {
			if IsResidualGap(d, a) {
				t.Errorf("plain add at %#x misclassified as gap", a)
			}
			break
		}
	}
}

func TestRegFaultCampaignViaConfig(t *testing.T) {
	p := mustAssemble(t, staticProg)
	rep, err := Campaign(p, Config{RegFaults: true, Samples: 150, Seed: 2, MaxSteps: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Total == 0 {
		t.Fatal("no register faults fired")
	}
	// All register faults are classified CatData.
	for c, a := range rep.ByCat {
		if c.String() != "Data" && a.Total > 0 {
			t.Errorf("register fault classified as %v", c)
		}
	}
}

func TestOutcomeOfFaultedStaticRun(t *testing.T) {
	// Deterministic: flip the direction of the loop-exit branch on its
	// last iteration so the loop runs longer -> wrong output.
	p := mustAssemble(t, staticProg)
	m := cpu.New()
	m.Reset(p)
	clean := m.Run(p.Code, 1_000_000)
	if clean.Reason != cpu.StopHalt {
		t.Fatal(clean)
	}
	want := append([]int32(nil), m.Output...)

	m2 := cpu.New()
	m2.Reset(p)
	m2.Fault = &cpu.Fault{BranchIndex: 0, Kind: cpu.FaultFlagBit, Bit: 2}
	stop := m2.Run(p.Code, 1_000_000)
	out := classifyStaticOutcome(stop, m2.Output, want)
	if out != OutBenign && out != OutSDC && out != OutDetectedHW && out != OutHang {
		t.Errorf("unexpected outcome %v", out)
	}
}
