package inject

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cfg"
	"repro/internal/ckpt"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/isa"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/par"
)

// The checkpoint-and-resume engine. One instrumented clean run records
// periodic checkpoints (ckpt.Record); every sample then restores the
// nearest checkpoint at or before its fault site and executes only the
// tail, turning a campaign of N samples over a clean run of S steps from
// O(N·S) into O(N·interval + S). Three properties keep the reports
// byte-identical to full replay:
//
//   - Restores are exact. A checkpoint captures the machine at a step
//     boundary of a run whose translator deltas are non-structural, so a
//     restored machine on a fresh snapshot clone is bit-for-bit the
//     machine that executed the whole prefix (dbt.Stats.Structural).
//   - Fault sites are monotone counters. A branch fault fires when the
//     direct-branch counter reaches its index and a register fault when
//     the step counter does; restoring at a point whose counters have not
//     passed the index replays the firing exactly.
//   - Clean tails are synthesized, never guessed. Two fault families are
//     provably on the reference trajectory after firing and short-circuit
//     to the recorded finals. (1) A fired offset-bit fault whose branch was
//     not taken in either direction: the corrupted immediate is use-once
//     and unused. (2) A fired flag/register-bit fault whose flipped bit is
//     dead at its site (internal/live): a flag flip that left the branch
//     direction unchanged and whose bit is redefined before any read along
//     every path from the resume address, or a register flip whose victim
//     is redefined before any read from the fault site on. Every other
//     fault runs its tail. The replay engine never short-circuits — it is
//     the ground truth the checkpoint reports are diffed against.

// sitePoint returns the checkpoint a fault restores from: the last point
// whose firing counter has not yet reached the fault's site.
func sitePoint(l *ckpt.Log, f *cpu.Fault) int {
	if f.Kind == cpu.FaultRegBit {
		return l.PointAtStep(f.StepIndex)
	}
	return l.PointAtBranch(f.BranchIndex)
}

// orderBySite returns sample indices sorted by restore point (ties in
// sample order). Workers take every workers-th entry of the result, so
// each worker visits its checkpoints in ascending order and its replayer
// applies every page delta at most once.
func orderBySite(points []int) []int {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if points[order[a]] != points[order[b]] {
			return points[order[a]] < points[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// shortKind classifies how a sample's tail was resolved.
type shortKind uint8

const (
	// shortNone: the tail was executed.
	shortNone shortKind = iota
	// shortOffset: not-taken offset-bit fault, tail synthesized.
	shortOffset
	// shortLive: dead flag/register bit (liveness prune), tail synthesized.
	shortLive
)

// shortCircuitKind reports whether the fired fault provably cannot change
// anything after its firing step, so that the reference finals are the
// sample's result. Three rules, all requiring a complete reference
// recording to synthesize from:
//
//   - Offset bits: the flipped bit lived in a branch immediate consumed
//     exactly once, by a branch that fell through in both the clean and
//     the faulted direction.
//   - Flag bits: the flip left the branch direction unchanged, and the
//     bit is dead at the resume address — every path redefines it before
//     any Jcc/cmov/pushf reads it, so the lingering flip in the flags
//     register can never be observed.
//   - Register bits: the victim register is dead at the fault site —
//     every path redefines it before any read — so the flip is
//     overwritten before it can influence anything.
//
// li may be nil (liveness unavailable), which disables the latter two.
func shortCircuitKind(l *ckpt.Log, f *cpu.Fault, li *live.Info) shortKind {
	if !l.Complete() || !f.Fired {
		return shortNone
	}
	switch f.Kind {
	case cpu.FaultOffsetBit:
		if !f.CleanTaken && !f.FaultTaken {
			return shortOffset
		}
	case cpu.FaultFlagBit:
		if li == nil || f.FaultTaken != f.CleanTaken {
			return shortNone
		}
		// The branch itself already consumed the flags; deadness is judged
		// where execution resumes.
		next := f.FaultIP + 1
		if f.CleanTaken {
			next = f.CleanTarget
		}
		if li.FlagBitDead(next, f.Bit%isa.NumFlagBits) {
			return shortLive
		}
	case cpu.FaultRegBit:
		// The fault fires before the instruction at FaultIP executes, so
		// deadness is judged at the fault site itself.
		if li != nil && li.RegDead(f.FaultIP, f.Reg%isa.Reg(isa.NumRegs)) {
			return shortLive
		}
	}
	return shortNone
}

// runCkptSamples is the checkpoint engine for translated campaigns. The
// recording run doubles as the clean reference. A non-nil log is a
// pre-recorded reference (a session-cache hit); nil records one here.
func runCkptSamples(ctx context.Context, p *isa.Program, cfg *Config, rep *Report, snap *dbt.Snapshot,
	tech string, shards []*obs.Collector, results []sampleResult, cleanSteps uint64, log *ckpt.Log) error {
	start := time.Now()
	if log == nil {
		record := phaseSpan(cfg.Metrics, tech, "record")
		interval := ckpt.AutoInterval(cfg.CkptInterval, cleanSteps)
		var err error
		log, err = ckpt.Record(snap, interval, cfg.MaxSteps)
		record.End()
		if err != nil {
			return fmt.Errorf("%s: %v", p.Name, err)
		}
		PublishRecording(cfg.Metrics, tech)
	}
	if log.Stop.Reason != cpu.StopHalt {
		return fmt.Errorf("%s: clean run ended with %v", p.Name, log.Stop)
	}
	want := log.Output
	branches := log.Final.DirectBranches
	steps := log.Final.Steps
	if branches == 0 {
		return fmt.Errorf("%s: no branches to fault", p.Name)
	}
	publishLog(cfg.Metrics, tech, log)

	// Faults derive per index exactly as under replay; only the execution
	// order changes, and results land in their own index slot.
	faults := make([]*cpu.Fault, cfg.Samples)
	points := make([]int, cfg.Samples)
	for i := range faults {
		faults[i] = deriveFault(cfg, i, branches, steps)
		points[i] = sitePoint(log, faults[i])
	}
	order := orderBySite(points)
	base := snap.Stats()
	// Liveness over the snapshot cache powers the dead-bit prune; the
	// analysis is shared read-only by every worker.
	prune := phaseSpan(cfg.Metrics, tech, "prune")
	li := snap.Liveness()
	prune.End()
	workers := rep.Workers
	injSpan := phaseSpan(cfg.Metrics, tech, "inject")
	err := par.RunWorkersCtx(ctx, workers, func(ctx context.Context, w int) error {
		ws := injSpan.Child(fmt.Sprintf("worker%d", w))
		defer ws.End()
		var c *obs.Collector
		if shards != nil {
			c = shards[w]
		}
		r := log.NewReplayer()
		for j := w; j < len(order); j += workers {
			if err := ctx.Err(); err != nil {
				return err
			}
			i := order[j]
			runCkptSample(cfg, snap, base, log, r, li, tech, c, faults[i], points[i], cfg.SampleOffset+i, want, &results[i])
			dumpFlightDBT(cfg, snap, p.Name, tech, i, want, &results[i])
			observeProgress(cfg.Progress, w, &results[i])
		}
		return nil
	})
	injSpan.End()
	rep.Elapsed = time.Since(start)
	return err
}

// runCkptSample classifies one fault from a checkpoint restore.
func runCkptSample(cfg *Config, snap *dbt.Snapshot, base dbt.Stats, log *ckpt.Log,
	r *ckpt.Replayer, li *live.Info, tech string, c *obs.Collector,
	f *cpu.Fault, k, sample int, want []int32, out *sampleResult) {
	sd := snap.NewDBT()
	m := r.Machine(k)
	m.Fault = f
	pt := &log.Points[k]
	sd.Resume(m, pt.Prefix)
	restored := pt.State.Steps

	// Execute the tail in interval-sized chunks until the fault fires,
	// then run the rest in one go — or synthesize it when the firing
	// provably left the run on the reference trajectory.
	stop := cpu.Stop{Reason: cpu.StopOutOfSteps}
	short := shortNone
	for stop.Reason == cpu.StopOutOfSteps && m.Steps < cfg.MaxSteps {
		if f.Fired {
			if short = shortCircuitKind(log, f, li); short == shortNone {
				stop = sd.Advance(m, cfg.MaxSteps)
			}
			break
		}
		target := m.Steps + log.Interval
		if target > cfg.MaxSteps {
			target = cfg.MaxSteps
		}
		stop = sd.Advance(m, target)
	}

	// Either way the sample's compiled-backend work is whatever its clone
	// actually executed (synthesized tails run no blocks).
	out.comp = sd.CompStats()

	if short != shortNone {
		observeRestore(c, tech, restored, m.Steps-restored, short)
		out.stats = log.FinalPrefix
		rec := Record{
			Sample:   sample,
			Fault:    *f,
			Outcome:  OutBenign,
			Category: classifyCategory(sd, f),
		}
		if c != nil {
			observeSample(c, tech, &rec, log.Final.SigChecks, log.CacheSize)
		}
		out.fired = true
		out.rec = rec
		out.short = short
		return
	}

	res := sd.Finish(m, stop)
	observeRestore(c, tech, restored, res.Steps-restored, shortNone)
	out.stats = res.Stats.Sub(base)
	if !f.Fired {
		if c != nil {
			observeNotFired(c, tech)
		}
		return
	}
	rec := Record{
		Sample:   sample,
		Fault:    *f,
		Outcome:  classifyOutcome(res, want),
		Category: classifyCategory(sd, f),
	}
	if rec.Outcome == OutDetectedSW || rec.Outcome == OutDetectedHW {
		rec.Latency = res.Steps - f.FiredStep
		if cfg.Trace != nil {
			cfg.Trace.Emit(obs.Event{
				Kind: obs.EvErrorDetected, Sample: obs.SampleRef(sample),
				Value:  int64(rec.Latency),
				Detail: rec.Outcome.String() + "/" + rec.Category.String(),
			})
		}
	}
	if c != nil {
		observeSample(c, tech, &rec, res.SigChecks, res.CacheSize)
	}
	out.fired = true
	out.rec = rec
}

// runStaticCkptSamples is the checkpoint engine for native (no
// translator) campaigns: same restore/sort/short-circuit discipline, but
// the machine runs guest code directly and there is no translator state
// to credit or protect.
func runStaticCkptSamples(ctx context.Context, p *isa.Program, g *cfg.Graph, se *staticExec, cfgn *Config, rep *Report,
	label string, shards []*obs.Collector, results []sampleResult, cleanSteps uint64, log *ckpt.Log) error {
	start := time.Now()
	if log == nil {
		record := phaseSpan(cfgn.Metrics, label, "record")
		interval := ckpt.AutoInterval(cfgn.CkptInterval, cleanSteps)
		var err error
		log, err = ckpt.RecordStatic(p, interval, cfgn.MaxSteps)
		record.End()
		if err != nil {
			return fmt.Errorf("%s: %v", p.Name, err)
		}
		PublishRecording(cfgn.Metrics, label)
	}
	if log.Stop.Reason != cpu.StopHalt {
		return fmt.Errorf("%s: clean run ended with %v", p.Name, log.Stop)
	}
	publishLog(cfgn.Metrics, label, log)
	want := log.Output
	branches := log.Final.DirectBranches

	faults := make([]*cpu.Fault, cfgn.Samples)
	points := make([]int, cfgn.Samples)
	for i := range faults {
		rng := newSampleRNG(cfgn.Seed, cfgn.SampleOffset+i)
		faults[i] = deriveBranchFault(&rng, branches)
		points[i] = sitePoint(log, faults[i])
	}
	order := orderBySite(points)
	// The program is fixed for native runs, so the shared plan, the frozen
	// compiled engine and one liveness analysis serve every worker
	// read-only (samples take per-view engine clones).
	prune := phaseSpan(cfgn.Metrics, label, "prune")
	li := live.Analyze(g)
	prune.End()
	workers := rep.Workers
	injSpan := phaseSpan(cfgn.Metrics, label, "inject")
	err := par.RunWorkersCtx(ctx, workers, func(ctx context.Context, w int) error {
		ws := injSpan.Child(fmt.Sprintf("worker%d", w))
		defer ws.End()
		var c *obs.Collector
		if shards != nil {
			c = shards[w]
		}
		r := log.NewReplayer()
		for j := w; j < len(order); j += workers {
			if err := ctx.Err(); err != nil {
				return err
			}
			i := order[j]
			f := faults[i]
			m := r.Machine(points[i])
			m.Fault = f
			restored := m.Steps
			v := se.view()

			stop := cpu.Stop{Reason: cpu.StopOutOfSteps}
			short := shortNone
			for stop.Reason == cpu.StopOutOfSteps && m.Steps < cfgn.MaxSteps {
				if f.Fired {
					if short = shortCircuitKind(log, f, li); short == shortNone {
						stop = se.run(v, m, cfgn.MaxSteps)
					}
					break
				}
				target := m.Steps + log.Interval
				if target > cfgn.MaxSteps {
					target = cfgn.MaxSteps
				}
				stop = se.run(v, m, target)
			}

			cst := se.stats(v)
			results[i].comp = cst
			observeRestore(c, label, restored, m.Steps-restored, short)
			if short != shortNone {
				rec := Record{
					Sample:   cfgn.SampleOffset + i,
					Fault:    *f,
					Outcome:  OutBenign,
					Category: classifyStaticCategory(g, f),
				}
				if c != nil {
					observeSample(c, label, &rec, log.Final.SigChecks, 0)
				}
				results[i] = sampleResult{fired: true, rec: rec, short: short, comp: cst}
				observeProgress(cfgn.Progress, w, &results[i])
				continue
			}
			cpu.TraceRunOutcome(cfgn.Trace, m, stop)
			if !f.Fired {
				if c != nil {
					observeNotFired(c, label)
				}
				observeProgress(cfgn.Progress, w, &results[i])
				continue
			}
			rec := Record{
				Sample:   cfgn.SampleOffset + i,
				Fault:    *f,
				Outcome:  classifyStaticOutcome(stop, m.Output, want),
				Category: classifyStaticCategory(g, f),
			}
			if rec.Outcome == OutDetectedSW || rec.Outcome == OutDetectedHW {
				rec.Latency = m.Steps - f.FiredStep
				cfgn.Trace.Emit(obs.Event{
					Kind: obs.EvErrorDetected, Sample: obs.SampleRef(cfgn.SampleOffset + i),
					Value:  int64(rec.Latency),
					Detail: rec.Outcome.String() + "/" + rec.Category.String(),
				})
			}
			if c != nil {
				observeSample(c, label, &rec, m.SigChecks, 0)
			}
			results[i] = sampleResult{fired: true, rec: rec, comp: cst}
			dumpFlightStatic(cfgn, p, label, i, want, &results[i])
			observeProgress(cfgn.Progress, w, &results[i])
		}
		return nil
	})
	injSpan.End()
	rep.Elapsed = time.Since(start)
	return err
}

// PublishRecording counts one reference-run recording (as opposed to a
// cache hit that reused a persisted log). The session server's CI smoke
// asserts this counter stays flat across a warm-cache restart.
func PublishRecording(reg *obs.Registry, technique string) {
	if reg == nil {
		return
	}
	reg.Counter(seriesName("ckpt_recordings_total", technique)).Add(1)
}

// publishLog records the reference recording's footprint: how many points
// were captured and how much memory the state and page deltas occupy.
func publishLog(reg *obs.Registry, technique string, l *ckpt.Log) {
	if reg == nil {
		return
	}
	reg.Counter(seriesName("ckpt_points_total", technique)).Add(uint64(len(l.Points)))
	reg.Counter(seriesName("ckpt_bytes_total", technique)).Add(l.Bytes)
}

// observeRestore folds one restore into a worker's shard: the steps the
// checkpoint skipped versus the steps actually executed (the engine's
// amortization ratio), plus the short-circuit counts.
// ckpt_shortcircuits_total counts every synthesized tail regardless of
// family; ckpt_live_pruned_total additionally counts the liveness family.
func observeRestore(c *obs.Collector, technique string, restored, replayed uint64, short shortKind) {
	if c == nil {
		return
	}
	c.Add(seriesName("ckpt_restores_total", technique), 1)
	if short != shortNone {
		c.Add(seriesName("ckpt_shortcircuits_total", technique), 1)
	}
	if short == shortLive {
		c.Add(seriesName("ckpt_live_pruned_total", technique), 1)
	}
	c.Observe(seriesName("ckpt_restored_steps", technique), obs.DefaultLatencyBuckets, restored)
	c.Observe(seriesName("ckpt_replayed_steps", technique), obs.DefaultLatencyBuckets, replayed)
}
