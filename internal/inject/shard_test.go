package inject

import (
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/dbt"
)

// shardRunner runs one campaign (dynamic technique or static label) so the
// offset/merge properties can be exercised uniformly across all six
// techniques.
type shardRunner struct {
	name string
	run  func(t *testing.T, cfg Config) *Report
}

func shardRunners(t *testing.T) []shardRunner {
	t.Helper()
	p := mustAssemble(t, workload)
	runners := []shardRunner{}
	for _, name := range []string{"none", "EdgCF", "RCF", "ECF"} {
		tech, err := check.New(name, dbt.UpdateCmov)
		if err != nil {
			t.Fatal(err)
		}
		runners = append(runners, shardRunner{name: name, run: func(t *testing.T, cfg Config) *Report {
			cfg.Technique = tech
			rep, err := Campaign(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}})
	}
	for _, s := range []struct {
		kind  check.StaticKind
		label string
	}{{check.StaticCFCSS, "CFCSS"}, {check.StaticECCA, "ECCA"}} {
		ip, err := check.InstrumentStatic(p, s.kind)
		if err != nil {
			t.Fatal(err)
		}
		label := s.label
		runners = append(runners, shardRunner{name: label, run: func(t *testing.T, cfg Config) *Report {
			rep, err := StaticCampaign(ip, label, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}})
	}
	return runners
}

// A shard campaign over [offset, offset+n) must derive, for its local
// sample i, exactly the fault the unsharded campaign derives for global
// index offset+i — same splitmix64 stream, same firing telemetry, same
// classification — across all six techniques and both engines.
func TestSampleOffsetMatchesGlobalIndex(t *testing.T) {
	const (
		seed    = int64(9)
		total   = 60
		offset  = 20
		samples = 20
	)
	for _, r := range shardRunners(t) {
		for _, iv := range []int64{0, -1} {
			base := Config{
				Samples:     total,
				Seed:        seed,
				KeepRecords: true,
				MaxSteps:    2_000_000,
				Options:     Options{Workers: 1, CkptInterval: iv},
			}
			full := r.run(t, base)
			shardCfg := base
			shardCfg.SampleOffset = offset
			shardCfg.Samples = samples
			shard := r.run(t, shardCfg)
			if shard.SampleOffset != offset {
				t.Fatalf("%s iv=%d: report offset %d, want %d", r.name, iv, shard.SampleOffset, offset)
			}
			var want []Record
			for _, rec := range full.Records {
				if rec.Sample >= offset && rec.Sample < offset+samples {
					want = append(want, rec)
				}
			}
			if !reflect.DeepEqual(shard.Records, want) {
				t.Errorf("%s iv=%d: shard records differ from the unsharded slice\n got: %+v\nwant: %+v",
					r.name, iv, shard.Records, want)
			}
		}
	}
	// The derived seed itself is pinned: shard-local i is global offset+i.
	for i := 0; i < samples; i++ {
		local := Config{Seed: seed, SampleOffset: offset}
		rng := newSampleRNG(local.Seed, local.SampleOffset+i)
		if got, want := rng.state, sampleSeed(seed, offset+i); got != want {
			t.Fatalf("sample %d: derived state %#x, want %#x", i, got, want)
		}
	}
}

// Any contiguous partition of a campaign must merge back to a report whose
// FormatNormalized text is byte-identical to the unsharded run, for both
// engines, dynamic and static techniques, and worker counts 1 and 4 — and
// the engine telemetry must still account for every sample.
func TestMergeReportsPartition(t *testing.T) {
	p := mustAssemble(t, workload)
	ip, err := check.InstrumentStatic(p, check.StaticCFCSS)
	if err != nil {
		t.Fatal(err)
	}
	tech := &check.RCF{Style: dbt.UpdateCmov}
	run := func(t *testing.T, static bool, cfg Config) *Report {
		t.Helper()
		var rep *Report
		if static {
			rep, err = StaticCampaign(ip, "CFCSS", cfg)
		} else {
			cfg.Technique = tech
			rep, err = Campaign(p, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	const total = 60
	partitions := [][]int{{total}, {30, 30}, {17, 20, 23}, {1, 59}}
	for _, static := range []bool{false, true} {
		kind := "dynamic"
		if static {
			kind = "static"
		}
		for _, iv := range []int64{0, -1} {
			base := Config{
				Samples:     total,
				Seed:        42,
				KeepRecords: true,
				MaxSteps:    2_000_000,
				Options:     Options{Workers: 1, CkptInterval: iv},
			}
			full := run(t, static, base)
			wantText := FormatNormalized(full)
			for _, sizes := range partitions {
				for _, w := range []int{1, 4} {
					parts := make([]*Report, 0, len(sizes))
					off := 0
					for _, n := range sizes {
						cfg := base
						cfg.SampleOffset = off
						cfg.Samples = n
						cfg.Workers = w
						parts = append(parts, run(t, static, cfg))
						off += n
					}
					// Merge must not depend on shard order.
					for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
						parts[i], parts[j] = parts[j], parts[i]
					}
					merged, err := MergeReports(parts)
					if err != nil {
						t.Fatalf("%s iv=%d workers=%d %v: %v", kind, iv, w, sizes, err)
					}
					if got := FormatNormalized(merged); got != wantText {
						t.Errorf("%s iv=%d workers=%d %v: merged normalized report differs\n got:\n%s\nwant:\n%s",
							kind, iv, w, sizes, got, wantText)
					}
					if merged.Executed+merged.ShortOffset+merged.ShortLive != merged.Samples {
						t.Errorf("%s iv=%d workers=%d %v: engine telemetry %d+%d+%d != %d samples",
							kind, iv, w, sizes,
							merged.Executed, merged.ShortOffset, merged.ShortLive, merged.Samples)
					}
					if !reflect.DeepEqual(merged.Records, full.Records) {
						t.Errorf("%s iv=%d workers=%d %v: merged records differ from the unsharded run",
							kind, iv, w, sizes)
					}
				}
			}
		}
	}
}

// Merge validation: gaps, overlaps and mismatched campaigns are rejected.
func TestMergeReportsValidation(t *testing.T) {
	mk := func(program string, offset, samples int) *Report {
		return &Report{Program: program, Technique: "RCF", Samples: samples, SampleOffset: offset}
	}
	if _, err := MergeReports(nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := MergeReports([]*Report{mk("a", 0, 10), mk("a", 20, 10)}); err == nil {
		t.Error("gap accepted")
	}
	if _, err := MergeReports([]*Report{mk("a", 0, 10), mk("a", 5, 10)}); err == nil {
		t.Error("overlap accepted")
	}
	if _, err := MergeReports([]*Report{mk("a", 0, 10), mk("b", 10, 10)}); err == nil {
		t.Error("mismatched program accepted")
	}
	if m, err := MergeReports([]*Report{mk("a", 10, 5), mk("a", 15, 5)}); err != nil {
		t.Errorf("contiguous non-zero-based shards rejected: %v", err)
	} else if m.SampleOffset != 10 || m.Samples != 10 {
		t.Errorf("merged range [%d,+%d), want [10,+10)", m.SampleOffset, m.Samples)
	}
}
