package inject

import (
	"reflect"
	"testing"

	"repro/internal/dbt"

	"repro/internal/check"
	"repro/internal/comp"
)

// reportKey strips the fields that legitimately vary between runs (wall
// clock, worker count) so reports can be compared for bit-identity.
func reportKey(r *Report) Report {
	k := *r
	k.Workers = 0
	k.Elapsed = 0
	// Engine telemetry: how tails were resolved differs between the
	// checkpoint and replay engines by design; the classified results may
	// not.
	k.Executed = 0
	k.ShortOffset = 0
	k.ShortLive = 0
	k.Compiled = comp.Stats{}
	return k
}

// Campaign results must be a pure function of (program, config, seed):
// sharding samples across any number of workers may change nothing — not
// the totals, not the per-category aggregates, not the per-sample records.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	p := mustAssemble(t, workload)
	techs := map[string]dbt.Technique{
		"RCF":   &check.RCF{Style: dbt.UpdateCmov},
		"EdgCF": &check.EdgCF{Style: dbt.UpdateJcc},
	}
	for name, tech := range techs {
		for _, regFaults := range []bool{false, true} {
			base := Config{
				Technique:   tech,
				Samples:     200,
				Seed:        42,
				RegFaults:   regFaults,
				KeepRecords: true,
				MaxSteps:    10_000_000,
			}
			serialCfg := base
			serialCfg.Workers = 1
			serial, err := Campaign(p, serialCfg)
			if err != nil {
				t.Fatalf("%s/reg=%v workers=1: %v", name, regFaults, err)
			}
			for _, w := range []int{2, 8} {
				cfg := base
				cfg.Workers = w
				rep, err := Campaign(p, cfg)
				if err != nil {
					t.Fatalf("%s/reg=%v workers=%d: %v", name, regFaults, w, err)
				}
				if rep.Workers != w {
					t.Errorf("%s/reg=%v: report says %d workers, want %d",
						name, regFaults, rep.Workers, w)
				}
				got, want := reportKey(rep), reportKey(serial)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/reg=%v workers=%d: report differs from serial\n got: %+v\nwant: %+v",
						name, regFaults, w, got, want)
				}
			}
		}
	}
}

// Records come back sorted by sample index regardless of completion order.
func TestCampaignRecordsInSampleOrder(t *testing.T) {
	p := mustAssemble(t, workload)
	rep, err := Campaign(p, Config{
		Technique:   &check.RCF{Style: dbt.UpdateCmov},
		Samples:     150,
		Seed:        7,
		KeepRecords: true,
		Options:     Options{Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) == 0 {
		t.Fatal("no records kept")
	}
	for i := 1; i < len(rep.Records); i++ {
		if rep.Records[i-1].Sample >= rep.Records[i].Sample {
			t.Fatalf("records out of order at %d: sample %d then %d",
				i, rep.Records[i-1].Sample, rep.Records[i].Sample)
		}
	}
}

// The static (no-translator) campaigns make the same guarantee.
func TestStaticCampaignWorkerCountInvariance(t *testing.T) {
	p := mustAssemble(t, workload)
	ip, err := check.InstrumentStatic(p, check.StaticCFCSS)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Samples: 200, Seed: 42, KeepRecords: true}
	serialCfg := base
	serialCfg.Workers = 1
	serial, err := StaticCampaign(ip, "CFCSS", serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 8
	rep, err := StaticCampaign(ip, "CFCSS", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reportKey(rep), reportKey(serial)) {
		t.Errorf("static campaign differs across worker counts\n got: %+v\nwant: %+v",
			reportKey(rep), reportKey(serial))
	}
}

// The per-sample PRNG must give every index an independent stream: distinct
// values across indexes, stable values for the same index.
func TestSampleRNG(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		rng := newSampleRNG(1, i)
		v := rng.Uint64()
		if seen[v] {
			t.Fatalf("index %d repeats an earlier first draw", i)
		}
		seen[v] = true

		again := newSampleRNG(1, i)
		if w := again.Uint64(); w != v {
			t.Fatalf("index %d not reproducible: %d then %d", i, v, w)
		}
	}
	// Different seeds decorrelate the same index.
	a, b := newSampleRNG(1, 5), newSampleRNG(2, 5)
	if a.Uint64() == b.Uint64() {
		t.Error("seed change did not alter the stream")
	}
	// Bounded draws stay in range.
	rng := newSampleRNG(3, 0)
	for i := 0; i < 1000; i++ {
		if v := rng.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
		if v := rng.Intn(5); v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
	}
}
