package inject

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/comp"
	"repro/internal/errmodel"
)

// FormatReport renders one campaign as a per-category outcome table.
func FormatReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s / %s — %d samples (%d not fired)\n",
		r.Program, r.Technique, r.Policy, r.Samples, r.NotFired)
	fmt.Fprintf(&b, "%-9s %8s %8s %8s %8s %8s %9s\n",
		"Category", "det-sw", "det-hw", "benign", "SDC", "hang", "coverage")
	cats := append(errmodel.SDCCategories(), errmodel.CatF, errmodel.CatNoError, errmodel.CatData)
	for _, c := range cats {
		a := r.ByCat[c]
		if a == nil {
			continue
		}
		fmt.Fprintf(&b, "%-9s %8d %8d %8d %8d %8d %8.1f%%\n",
			c, a.Count[OutDetectedSW], a.Count[OutDetectedHW], a.Count[OutBenign],
			a.Count[OutSDC], a.Count[OutHang], a.Coverage()*100)
	}
	t := &r.Totals
	fmt.Fprintf(&b, "%-9s %8d %8d %8d %8d %8d %8.1f%%\n",
		"total", t.Count[OutDetectedSW], t.Count[OutDetectedHW], t.Count[OutBenign],
		t.Count[OutSDC], t.Count[OutHang], t.Coverage()*100)
	if r.LatencyN > 0 {
		fmt.Fprintf(&b, "mean detection latency: %.0f instructions\n", r.MeanLatency())
	}
	st := r.Translator
	if st.BlocksTranslated > 0 {
		fmt.Fprintf(&b, "translator: %d blocks (%d guest instrs), %d traces, %d check sites, %d dispatches, %d indirect lookups\n",
			st.BlocksTranslated, st.GuestInstrsTranslated, st.TracesFormed,
			st.CheckSites, st.Dispatches, st.IndirectLookups)
	}
	if c := r.Compiled; c.BlocksCompiled > 0 {
		// Compiled-backend telemetry; elided when zero (interpreter
		// backends) so FormatNormalized output is unchanged.
		fmt.Fprintf(&b, "compiled: %d blocks, %d trace promotions, %d chain hits\n",
			c.BlocksCompiled, c.TracePromotions, c.ChainHits)
	}
	if r.ShortOffset+r.ShortLive > 0 {
		// Engine telemetry; elided when zero so FormatNormalized output is
		// unchanged (the counters are zeroed there).
		fmt.Fprintf(&b, "engine: %d executed, %d offset short-circuits, %d liveness-pruned\n",
			r.Executed, r.ShortOffset, r.ShortLive)
	}
	if r.Elapsed > 0 {
		fmt.Fprintf(&b, "throughput: %.0f runs/s (%d workers, %v wall-clock)\n",
			r.Throughput(), r.Workers, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// FormatNormalized renders the report with the wall-clock fields zeroed:
// everything left is a pure function of (program, cfg minus Workers and
// CkptInterval), so two renderings are byte-identical exactly when the
// classified results are. The determinism checks in cfc-inject and the
// batch server's CI smoke diff this form across engines, worker counts and
// cache temperatures.
func FormatNormalized(r *Report) string {
	n := *r
	n.Workers = 0
	n.Elapsed = 0
	// Engine telemetry: the checkpoint engine synthesizes tails the replay
	// engine executes; the classified results must still match.
	n.Executed = 0
	n.ShortOffset = 0
	n.ShortLive = 0
	n.Compiled = comp.Stats{}
	return FormatReport(&n)
}
