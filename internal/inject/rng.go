package inject

// Per-sample fault derivation. A campaign used to draw every fault from one
// sequential math/rand stream, which welds the classified outcomes to the
// order samples happen to run in — a non-starter for a sharded campaign.
// Instead, each sample index derives its own splitmix64 stream from
// (seed, index), so sample i's fault is a pure function of the campaign
// seed and i: a campaign's classified results are bit-identical regardless
// of worker count, shard assignment or completion order.

// splitmix64 constants (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators").
const (
	smixGamma = 0x9E3779B97F4A7C15
	smixMulA  = 0xBF58476D1CE4E5B9
	smixMulB  = 0x94D049BB133111EB
)

// mix64 is the splitmix64 finalizer: an avalanching bijection on uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= smixMulA
	x ^= x >> 27
	x *= smixMulB
	x ^= x >> 31
	return x
}

// sampleRNG is a splitmix64 stream keyed by (seed, sample index).
type sampleRNG struct {
	state uint64
}

// newSampleRNG derives the stream for one sample. Seed and index are mixed
// separately before combining so that neighbouring seeds or indices share
// no correlation.
func newSampleRNG(seed int64, index int) sampleRNG {
	return sampleRNG{state: mix64(uint64(seed)) ^ mix64(uint64(index)+smixGamma)}
}

// Uint64 returns the next value of the stream.
func (r *sampleRNG) Uint64() uint64 {
	r.state += smixGamma
	return mix64(r.state)
}

// Uint64n returns a value in [0, n). n must be positive. The modulo bias
// is below 2^-32 for every n the fault model uses (step and branch counts).
func (r *sampleRNG) Uint64n(n uint64) uint64 {
	return r.Uint64() % n
}

// Intn returns a value in [0, n). n must be positive.
func (r *sampleRNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}
