package inject

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/errmodel"
)

// MergeReports reassembles the shard reports of one split campaign into
// the report the unsharded campaign would have produced. Shards must come
// from the same (program, technique, policy) and tile a contiguous global
// sample range [first.SampleOffset, last.SampleOffset+last.Samples) with
// no gaps or overlaps; order does not matter. The merged report's
// FormatNormalized text is byte-identical to the single-run report
// because every aggregate is a sum of per-sample values that are a pure
// function of (Seed, global index), and the warm-up work each shard
// repeats (recorded in WarmTranslator/WarmCompiled) is counted exactly
// once. The inputs are not mutated.
func MergeReports(parts []*Report) (*Report, error) {
	if len(parts) == 0 {
		return nil, errors.New("inject: merge: no shard reports")
	}
	sorted := make([]*Report, len(parts))
	copy(sorted, parts)
	sort.SliceStable(sorted, func(a, b int) bool {
		return sorted[a].SampleOffset < sorted[b].SampleOffset
	})
	first := sorted[0]
	m := &Report{
		Program:        first.Program,
		Technique:      first.Technique,
		Policy:         first.Policy,
		SampleOffset:   first.SampleOffset,
		ByCat:          map[errmodel.Category]*Agg{},
		WarmTranslator: first.WarmTranslator,
		WarmCompiled:   first.WarmCompiled,
	}
	next := first.SampleOffset
	for idx, p := range sorted {
		if p.Program != first.Program || p.Technique != first.Technique || p.Policy != first.Policy {
			return nil, fmt.Errorf("inject: merge: shard %s/%s/%s does not match %s/%s/%s",
				p.Program, p.Technique, p.Policy, first.Program, first.Technique, first.Policy)
		}
		if p.SampleOffset != next {
			return nil, fmt.Errorf("inject: merge: shard at offset %d is not contiguous with previous end %d",
				p.SampleOffset, next)
		}
		if p.WarmTranslator != first.WarmTranslator || p.WarmCompiled != first.WarmCompiled {
			return nil, fmt.Errorf("inject: merge: shard at offset %d disagrees on the warm-up baseline",
				p.SampleOffset)
		}
		next += p.Samples
		m.Samples += p.Samples
		m.NotFired += p.NotFired
		for c, a := range p.ByCat {
			dst := m.ByCat[c]
			if dst == nil {
				dst = &Agg{}
				m.ByCat[c] = dst
			}
			for o, n := range a.Count {
				dst.Count[o] += n
			}
			dst.Total += a.Total
		}
		for o, n := range p.Totals.Count {
			m.Totals.Count[o] += n
		}
		m.Totals.Total += p.Totals.Total
		m.LatencySum += p.LatencySum
		m.LatencyN += p.LatencyN
		// Shards keep Records in global sample order, so concatenating in
		// offset order keeps the merged slice sorted.
		m.Records = append(m.Records, p.Records...)
		// Translator/Compiled each include the shard's own copy of the
		// identical warm-up baseline; keep the first and strip the rest.
		t, c := p.Translator, p.Compiled
		if idx > 0 {
			t = t.Sub(p.WarmTranslator)
			c.BlocksCompiled -= p.WarmCompiled.BlocksCompiled
			c.TracePromotions -= p.WarmCompiled.TracePromotions
			c.ChainHits -= p.WarmCompiled.ChainHits
		}
		m.Translator.Add(t)
		m.Compiled.Add(c)
		m.Executed += p.Executed
		m.ShortOffset += p.ShortOffset
		m.ShortLive += p.ShortLive
		// Shards run concurrently on different replicas: the merged run is
		// as wide as its widest shard and as long as its slowest.
		if p.Workers > m.Workers {
			m.Workers = p.Workers
		}
		if p.Elapsed > m.Elapsed {
			m.Elapsed = p.Elapsed
		}
	}
	return m, nil
}
