package inject

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/ckpt"
	"repro/internal/comp"
	"repro/internal/cpu"
	"repro/internal/errmodel"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/par"
)

// staticExec is the execution surface for native (no translator) sample
// runs: the guest code, its shared predecoded plan, and — for the compiled
// backend — a frozen block-compiled engine whose entry points are the
// program's own CFG block starts. The plan and the frozen core are shared
// read-only by every worker; each sample takes a fresh per-view clone so
// its chain-hit counters merge worker-invariantly.
type staticExec struct {
	backend comp.Backend
	code    []isa.Instr
	plan    cpu.Plan
	eng     *comp.Engine // frozen; nil for interpreter backends
}

func newStaticExec(p *isa.Program, g *cfg.Graph, backend comp.Backend) *staticExec {
	se := &staticExec{backend: backend, code: p.Code, plan: cpu.NewPlan(p.Code, nil)}
	if backend.Compiled() {
		se.eng = comp.NewEngine(p.Code, nil, 0)
		starts := make([]uint32, len(g.Blocks))
		for i, b := range g.Blocks {
			starts[i] = b.Start
		}
		se.eng.Freeze(starts)
	}
	return se
}

// baseline is the one-time compilation work (the freeze), credited to the
// campaign report the way snapshot warm-up work is for translated runs.
func (se *staticExec) baseline() comp.Stats {
	if se.eng == nil {
		return comp.Stats{}
	}
	return se.eng.Stats
}

// view returns a per-sample engine view (nil for interpreter backends).
func (se *staticExec) view() *comp.Engine {
	if se.eng == nil {
		return nil
	}
	return se.eng.Clone()
}

// run advances m on the selected backend until a stop or the step budget.
func (se *staticExec) run(v *comp.Engine, m *cpu.Machine, maxSteps uint64) cpu.Stop {
	switch se.backend {
	case comp.BackendStep:
		return m.Run(se.code, maxSteps)
	case comp.BackendPlan:
		return m.RunPlan(&se.plan, maxSteps)
	default: // BackendAuto, BackendCompile
		return v.Run(m, &se.plan, maxSteps)
	}
}

// stats returns the view's accumulated per-sample work.
func (se *staticExec) stats(v *comp.Engine) comp.Stats {
	if v == nil {
		return comp.Stats{}
	}
	return v.Stats
}

// StaticCampaign injects single faults into a program executed directly on
// the machine (no translator). It is Execute with AsStatic and a
// background context — the pre-batch-API surface, kept for compatibility;
// new code calls Execute.
func StaticCampaign(p *isa.Program, label string, cfgn Config) (*Report, error) {
	return Execute(context.Background(), p, cfgn, AsStatic(label))
}

// RunStatic injects single faults into a program executed directly on the
// machine (no translator). It is Execute with AsStatic — a compatibility
// wrapper; new code calls Execute.
func (cfgn Config) RunStatic(ctx context.Context, p *isa.Program, label string) (*Report, error) {
	return Execute(ctx, p, cfgn, AsStatic(label))
}

// RunStaticWarm is RunStatic with an optional pre-recorded checkpoint log.
// It is Execute with AsStatic and WithRecording — a compatibility wrapper;
// new code calls Execute.
func (cfgn Config) RunStaticWarm(ctx context.Context, p *isa.Program, label string, log *ckpt.Log) (*Report, error) {
	return Execute(ctx, p, cfgn, AsStatic(label), WithRecording(log))
}

// runStaticWarm injects single faults into a program executed directly on
// the machine (no translator) — the statically instrumented CFCSS/ECCA
// baselines and unprotected native runs. Faulty branch targets are
// classified against the program's own CFG. An optional pre-recorded
// checkpoint log of the native clean reference run skips the reference
// execution entirely (native execution is deterministic, so a cached
// log's finals are the clean run); nil records one when the checkpoint
// engine is selected, and the log is ignored otherwise.
//
// Like the translated pipeline, samples shard across cfgn.Workers
// goroutines with per-index fault derivation, so the classified results
// are bit-identical for every worker count. Native runs share nothing
// mutable — each sample gets its own machine; the CFG is read-only after
// Build. The caller (Execute) has applied the config defaults.
func (cfgn Config) runStaticWarm(ctx context.Context, p *isa.Program, label string, log *ckpt.Log) (*Report, error) {
	g := cfg.Build(p)

	var want []int32
	var branches, cleanSteps uint64
	if log != nil && cfgn.CkptInterval != 0 {
		want = log.Output
		branches = log.Final.DirectBranches
		cleanSteps = log.Final.Steps
	} else {
		log = nil // a cached log is meaningless to the replay engine
		record := phaseSpan(cfgn.Metrics, label, "record")
		clean := cpu.New()
		clean.Reset(p)
		cleanPlan := cpu.NewPlan(p.Code, nil)
		stop := clean.RunPlan(&cleanPlan, cfgn.MaxSteps)
		record.End()
		if stop.Reason != cpu.StopHalt {
			return nil, fmt.Errorf("%s: clean run ended with %v", p.Name, stop)
		}
		want = append([]int32(nil), clean.Output...)
		branches = clean.DirectBranches
		cleanSteps = clean.Steps
	}
	if branches == 0 {
		return nil, fmt.Errorf("%s: no branches to fault", p.Name)
	}

	rep := &Report{
		Program:      p.Name,
		Technique:    label,
		Policy:       cfgn.Policy,
		Samples:      cfgn.Samples,
		SampleOffset: cfgn.SampleOffset,
		ByCat:        map[errmodel.Category]*Agg{},
		Workers:      par.Workers(cfgn.Workers, cfgn.Samples),
	}
	cfgn.Trace.Emit(obs.Event{Kind: obs.EvCampaignStart, Detail: p.Name + "/" + label})
	cfgn.Progress.Begin(cfgn.Samples, rep.Workers, progressLabels())
	shards := newShards(cfgn.Metrics, rep.Workers)
	results := make([]sampleResult, cfgn.Samples)
	se := newStaticExec(p, g, cfgn.Backend)
	rep.Compiled = se.baseline()
	rep.WarmCompiled = rep.Compiled
	if cfgn.CkptInterval != 0 {
		// Checkpoint engine: the native recording run doubles as the clean
		// reference (native execution is trivially deterministic, so its
		// geometry matches the clean run above exactly).
		if err := runStaticCkptSamples(ctx, p, g, se, &cfgn, rep, label, shards, results, cleanSteps, log); err != nil {
			return nil, err
		}
		mg := phaseSpan(cfgn.Metrics, label, "merge")
		rep.merge(results, cfgn.KeepRecords)
		flushShards(shards, cfgn.Metrics)
		mg.End()
		rep.Compiled.Publish(cfgn.Metrics, label)
		cfgn.Trace.Emit(obs.Event{Kind: obs.EvCampaignEnd, Value: int64(cfgn.Samples), Detail: p.Name + "/" + label})
		return rep, nil
	}
	start := time.Now()
	injSpan := phaseSpan(cfgn.Metrics, label, "inject")
	err := par.ForEachShardCtx(ctx, cfgn.Samples, rep.Workers, func(w, i int) error {
		defer observeProgress(cfgn.Progress, w, &results[i])
		defer dumpFlightStatic(&cfgn, p, label, i, want, &results[i])
		rng := newSampleRNG(cfgn.Seed, cfgn.SampleOffset+i)
		f := deriveBranchFault(&rng, branches)
		m := cpu.New()
		m.Reset(p)
		m.Fault = f
		v := se.view()
		stop := se.run(v, m, cfgn.MaxSteps)
		results[i].comp = se.stats(v)
		cpu.TraceRunOutcome(cfgn.Trace, m, stop)
		if !f.Fired {
			if shards != nil {
				observeNotFired(shards[w], label)
			}
			return nil
		}
		rec := Record{
			Sample:   cfgn.SampleOffset + i,
			Fault:    *f,
			Outcome:  classifyStaticOutcome(stop, m.Output, want),
			Category: classifyStaticCategory(g, f),
		}
		if rec.Outcome == OutDetectedSW || rec.Outcome == OutDetectedHW {
			rec.Latency = m.Steps - f.FiredStep
			cfgn.Trace.Emit(obs.Event{
				Kind: obs.EvErrorDetected, Sample: obs.SampleRef(cfgn.SampleOffset + i),
				Value:  int64(rec.Latency),
				Detail: rec.Outcome.String() + "/" + rec.Category.String(),
			})
		}
		if shards != nil {
			observeSample(shards[w], label, &rec, m.SigChecks, 0)
		}
		results[i].fired = true
		results[i].rec = rec
		return nil
	})
	injSpan.End()
	rep.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	mg := phaseSpan(cfgn.Metrics, label, "merge")
	rep.merge(results, cfgn.KeepRecords)
	flushShards(shards, cfgn.Metrics)
	mg.End()
	rep.Compiled.Publish(cfgn.Metrics, label)
	cfgn.Trace.Emit(obs.Event{Kind: obs.EvCampaignEnd, Value: int64(cfgn.Samples), Detail: p.Name + "/" + label})
	return rep, nil
}

func classifyStaticOutcome(stop cpu.Stop, out, want []int32) Outcome {
	switch {
	case stop.Reason == cpu.StopReport:
		return OutDetectedSW
	case stop.Reason.IsHardwareTrap():
		return OutDetectedHW
	case stop.Reason == cpu.StopOutOfSteps:
		return OutHang
	case stop.Reason == cpu.StopHalt:
		if equalOutput(out, want) {
			return OutBenign
		}
		return OutSDC
	default:
		return OutHang
	}
}

func classifyStaticCategory(g *cfg.Graph, f *cpu.Fault) errmodel.Category {
	if f.Kind == cpu.FaultFlagBit {
		if f.FaultTaken != f.CleanTaken {
			return errmodel.CatA
		}
		return errmodel.CatNoError
	}
	if !f.CleanTaken {
		return errmodel.CatNoError
	}
	return errmodel.Classify(g, f.FaultIP, f.FaultTarget)
}
