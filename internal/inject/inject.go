// Package inject runs soft-error injection campaigns against programs
// executing under the dynamic binary translator: single transient bit flips
// in branch address offsets or condition flags (the paper's error model),
// with outcomes classified per branch-error category. The paper lists
// fault injection as future work; this package implements it and validates
// the coverage claims of Section 3 empirically.
package inject

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comp"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/errmodel"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/par"
)

// Outcome classifies one faulty run.
type Outcome int

// Outcomes.
const (
	// OutDetectedSW: a signature check reported the error.
	OutDetectedSW Outcome = iota
	// OutDetectedHW: the hardware protection trapped (wild fetch, memory
	// fault, divide by zero).
	OutDetectedHW
	// OutBenign: the program completed with correct output.
	OutBenign
	// OutSDC: the program completed with wrong output — silent data
	// corruption, the failure mode the techniques exist to prevent.
	OutSDC
	// OutHang: the run exceeded its step budget (e.g. an error that threw
	// the program into an infinite loop that the policy cannot report).
	OutHang
	NumOutcomes
)

var outcomeNames = [...]string{"detected-sw", "detected-hw", "benign", "SDC", "hang"}

// String names the outcome.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "?"
}

// Record is one injected fault and its result.
type Record struct {
	// Sample is the campaign sample index this record came from. Records
	// are kept in sample order, so a report is comparable field-for-field
	// across worker counts.
	Sample   int
	Fault    cpu.Fault
	Outcome  Outcome
	Category errmodel.Category
	// Latency is the number of instructions between the fault firing and
	// detection (meaningful for detected outcomes): the error-report delay
	// the checking policies trade against speed.
	Latency uint64
}

// Agg accumulates outcome counts.
type Agg struct {
	Count [NumOutcomes]int
	Total int
}

func (a *Agg) add(o Outcome) {
	a.Count[o]++
	a.Total++
}

// Detected returns software+hardware detections.
func (a *Agg) Detected() int { return a.Count[OutDetectedSW] + a.Count[OutDetectedHW] }

// Errors returns the number of injections that had any effect (everything
// except benign completions).
func (a *Agg) Errors() int { return a.Total - a.Count[OutBenign] }

// Coverage is the fraction of effective errors that were detected.
func (a *Agg) Coverage() float64 {
	if a.Errors() == 0 {
		return 1
	}
	return float64(a.Detected()) / float64(a.Errors())
}

// Report aggregates a campaign.
type Report struct {
	Program   string
	Technique string
	Policy    dbt.Policy
	Samples   int
	// SampleOffset is the campaign's first global sample index
	// (Config.SampleOffset); Records carry global indices. MergeReports
	// uses it to validate that shards tile a contiguous range.
	SampleOffset int
	NotFired     int
	ByCat        map[errmodel.Category]*Agg
	Totals       Agg
	// LatencySum/LatencyN give the mean detection latency.
	LatencySum uint64
	LatencyN   int
	// Records holds the individual runs when Config.KeepRecords is set,
	// in sample order.
	Records []Record
	// Translator aggregates the translation work of the whole campaign:
	// the warm-up runs plus every sample clone's own work (wild-target
	// translations, re-chaining). Like the outcome counts it is a pure
	// function of (program, cfg minus Workers).
	Translator dbt.Stats
	// Compiled aggregates the block-compiled backend's work: the warm-up
	// compilation (including the snapshot freeze) plus every sample's
	// chain-slot transitions. Counter sums are worker-invariant, but they
	// legitimately differ between the replay and checkpoint engines (a
	// synthesized tail executes no blocks), so — like Workers and Elapsed
	// — FormatNormalized excludes them.
	Compiled comp.Stats
	// WarmTranslator/WarmCompiled are the warm-up baselines already folded
	// into Translator/Compiled (the snapshot's stats, or the static
	// freeze). Every shard of a split campaign repeats the identical
	// warm-up, so MergeReports subtracts the baseline from all shards but
	// the first to count it exactly once, as the unsharded run would.
	WarmTranslator dbt.Stats
	WarmCompiled   comp.Stats
	// Workers is the resolved worker count that ran the campaign and
	// Elapsed the wall-clock of the injection phase (warm-up excluded).
	// Neither influences the classified results.
	Workers int
	Elapsed time.Duration
	// Engine telemetry: how the checkpoint engine resolved each sample.
	// Executed samples ran their tail; ShortOffset samples were synthesized
	// by the not-taken-offset rule and ShortLive by the liveness prune
	// (Executed+ShortOffset+ShortLive == Samples under the checkpoint
	// engine; the replay engine executes everything). Like Workers/Elapsed
	// these never influence the classified results and are zeroed by
	// FormatNormalized.
	Executed    int
	ShortOffset int
	ShortLive   int
}

// Throughput returns classified runs per second of wall-clock.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Samples) / r.Elapsed.Seconds()
}

// MeanLatency returns the mean detection latency in instructions.
func (r *Report) MeanLatency() float64 {
	if r.LatencyN == 0 {
		return 0
	}
	return float64(r.LatencySum) / float64(r.LatencyN)
}

// DefaultMaxSteps bounds each injected run when Config.MaxSteps is zero
// (hang detection).
const DefaultMaxSteps = 50_000_000

// Options is the shared execution surface of every campaign entry point:
// the knobs selecting how work runs and is observed, as opposed to what is
// measured. It is embedded by inject.Config, core.Config (which aliases
// the type as core.Options) and bench.CoverageConfig, and internal/cli
// binds it to flags once for all the cmd tools. Field access promotes
// (cfg.Workers reads as before); keyed literals name it explicitly
// (Config{Options: Options{Workers: 4}}).
type Options struct {
	// Trace, when non-nil, receives structured events (campaign
	// start/end, fault fired, check failed, error detected, plus the
	// translator events of every sample clone). Events from concurrent
	// samples interleave in completion order; only metrics are
	// deterministic across worker counts.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives campaign metrics: outcome counters,
	// per-category detection-latency histograms, translator counters and
	// code-cache occupancy. Samples observe into per-worker collector
	// shards merged with commutative folds, so the exported snapshot is
	// bit-identical for every Workers value.
	Metrics *obs.Registry
	// Workers shards the samples across a goroutine pool; 0 means
	// GOMAXPROCS. Results are bit-identical for every worker count: each
	// sample derives its fault from (Seed, index) and runs on a private
	// clone of the warmed translator.
	Workers int
	// CkptInterval selects the checkpoint-and-resume engine. 0 disables it
	// (every sample replays the whole clean prefix); -1 picks a capture
	// interval automatically from the clean run length; positive values set
	// the interval in machine steps. The engine records checkpoints during
	// one clean reference run and restores each sample at the nearest
	// checkpoint before its fault site, executing only the tail. Reports
	// are byte-identical to full replay for every Workers value.
	CkptInterval int64
	// Backend selects the execution engine (step interpreter, predecoded
	// plan, or block-compiled with direct chaining). The zero value
	// BackendAuto resolves to the compiled backend. Classified reports are
	// byte-identical across backends; only wall-clock changes.
	Backend comp.Backend
	// Progress, when non-nil, receives live campaign progress: per-worker
	// atomic counters of finished samples and running outcome tallies. The
	// counters never feed back into the campaign, so enabling progress
	// leaves classified reports byte-identical.
	Progress *obs.Progress
	// Flight, when non-nil, receives a forensic dump for every anomalous
	// sample (SDC, hang): the sample is deterministically re-run with a
	// branch hook filling a fixed-size event ring, and the ring's tail is
	// written as one JSONL line keyed by the sample's derived seed. The
	// re-run happens off the campaign's critical state (a fresh snapshot
	// clone / machine), so reports stay byte-identical.
	Flight *obs.FlightRecorder
}

// Config parameterizes a campaign.
type Config struct {
	Technique dbt.Technique // nil: plain translation
	Policy    dbt.Policy
	Samples   int
	Seed      int64
	// SampleOffset shifts the campaign onto the global sample range
	// [SampleOffset, SampleOffset+Samples): sample-local index i derives
	// its fault from global index SampleOffset+i, exactly as the unsharded
	// campaign would. Shards of one large campaign run with the same Seed
	// and disjoint contiguous offsets, and MergeReports reassembles their
	// reports into the unsharded report byte-for-byte.
	SampleOffset int
	// MaxSteps bounds each run (hang detection). Default DefaultMaxSteps.
	MaxSteps uint64
	// KeepRecords retains every Record in the Report.
	KeepRecords bool
	// TraceThreshold forwards to the DBT options.
	TraceThreshold int
	// RegFaults switches the campaign to register-bit (data) faults: one
	// bit of a random guest register flips at a random machine step. These
	// are the faults the data-flow checking transform targets; the
	// control-flow techniques alone mostly miss them.
	RegFaults bool
	// Body forwards a body transform (data-flow checking) to the DBT.
	Body dbt.BodyTransform
	// Options is the shared execution surface (Trace, Metrics, Workers,
	// CkptInterval), promoted so existing selector access keeps working.
	Options
}

// applyDefaults fills the zero-value knobs.
func (cfg *Config) applyDefaults() {
	if cfg.Samples <= 0 {
		cfg.Samples = 100
	}
	if cfg.SampleOffset < 0 {
		cfg.SampleOffset = 0
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
}

// deriveFault builds sample index's fault as a pure function of the
// campaign seed, the global sample index (the local index shifted by
// SampleOffset) and the clean-run geometry.
func deriveFault(cfg *Config, index int, branches, steps uint64) *cpu.Fault {
	rng := newSampleRNG(cfg.Seed, cfg.SampleOffset+index)
	if cfg.RegFaults {
		return &cpu.Fault{
			Kind:      cpu.FaultRegBit,
			StepIndex: rng.Uint64n(steps),
			Reg:       isa.Reg(rng.Intn(isa.NumGuestRegs)),
			Bit:       uint(rng.Intn(32)),
		}
	}
	return deriveBranchFault(&rng, branches)
}

// deriveBranchFault draws a branch-site fault: offset bits and flag bits in
// proportion to their site counts, mirroring the error model.
func deriveBranchFault(rng *sampleRNG, branches uint64) *cpu.Fault {
	f := &cpu.Fault{BranchIndex: rng.Uint64n(branches)}
	if rng.Intn(isa.OffsetBits+isa.NumFlagBits) < isa.NumFlagBits {
		f.Kind = cpu.FaultFlagBit
		f.Bit = uint(rng.Intn(isa.NumFlagBits))
	} else {
		f.Kind = cpu.FaultOffsetBit
		f.Bit = uint(rng.Intn(isa.OffsetBits))
	}
	return f
}

// sampleResult is one sample's classified outcome, produced by a worker
// and merged into the Report in sample order.
type sampleResult struct {
	fired bool
	rec   Record
	// stats is the clone's own translation work: its final stats minus
	// the snapshot baseline.
	stats dbt.Stats
	// comp is the clone's own compiled-backend work (clone views start
	// from zero stats, so no baseline subtraction is needed).
	comp comp.Stats
	// short records how the checkpoint engine resolved the sample
	// (executed vs synthesized); always shortNone under replay.
	short shortKind
}

// merge folds per-sample results into the report in index order, so the
// aggregates (and Records) never depend on which worker ran which sample.
func (r *Report) merge(results []sampleResult, keepRecords bool) {
	for i := range results {
		s := &results[i]
		r.Translator.Add(s.stats)
		r.Compiled.Add(s.comp)
		switch s.short {
		case shortOffset:
			r.ShortOffset++
		case shortLive:
			r.ShortLive++
		default:
			r.Executed++
		}
		if !s.fired {
			r.NotFired++
			continue
		}
		rec := s.rec
		if rec.Outcome == OutDetectedSW || rec.Outcome == OutDetectedHW {
			r.LatencySum += rec.Latency
			r.LatencyN++
		}
		agg := r.ByCat[rec.Category]
		if agg == nil {
			agg = &Agg{}
			r.ByCat[rec.Category] = agg
		}
		agg.add(rec.Outcome)
		r.Totals.add(rec.Outcome)
		if keepRecords {
			r.Records = append(r.Records, rec)
		}
	}
}

// warmRunCap bounds the stabilization loop: chaining settles after a
// couple of runs and trace formation within a few more, so the cap only
// matters for pathological programs whose cache never stops churning.
const warmRunCap = 32

// Warm translates and stabilizes p under cfg's translator options: the
// cache is run until a clean execution neither changes the dynamic branch
// count nor touches translator state. Chaining turns dispatch stubs into
// jump instructions, which are themselves fault sites, so a cold run
// undercounts; and a snapshot that still churns on clean runs would leave
// the checkpoint engine nothing restorable. The loop is identical for
// every CkptInterval, so both engines share snapshot geometry — and so a
// session-cached snapshot reproduces a fresh campaign's warm-up exactly.
// It returns the frozen snapshot plus the final clean result, whose Steps,
// DirectBranches and Output are the reference geometry campaigns derive
// faults from and validate cached checkpoint logs against.
func Warm(p *isa.Program, cfg Config) (*dbt.Snapshot, *dbt.Result, error) {
	cfg.applyDefaults()
	d := dbt.New(p, dbt.Options{
		Technique:      cfg.Technique,
		Policy:         cfg.Policy,
		TraceThreshold: cfg.TraceThreshold,
		Body:           cfg.Body,
		Trace:          cfg.Trace,
		Backend:        cfg.Backend,
	})
	clean := d.Run(nil, cfg.MaxSteps)
	if clean.Stop.Reason != cpu.StopHalt {
		return nil, nil, fmt.Errorf("%s: clean run ended with %v", p.Name, clean.Stop)
	}
	for i := 0; i < warmRunCap; i++ {
		pre := d.StatsSnapshot()
		next := d.Run(nil, cfg.MaxSteps)
		if next.Stop.Reason != cpu.StopHalt {
			return nil, nil, fmt.Errorf("%s: warm run ended with %v", p.Name, next.Stop)
		}
		stable := next.DirectBranches == clean.DirectBranches &&
			!d.StatsSnapshot().Sub(pre).Structural()
		clean = next
		if stable {
			break
		}
	}
	return d.Snapshot(), clean, nil
}

// Campaign injects cfg.Samples random single faults into executions of p
// under the translator and classifies every outcome. It is Execute with a
// background context — the pre-batch-API surface, kept for compatibility;
// new code calls Execute.
func Campaign(p *isa.Program, cfg Config) (*Report, error) {
	return Execute(context.Background(), p, cfg)
}

// Run warms the translator and executes the campaign, honoring ctx for
// cancellation. It is Execute with no options — a compatibility wrapper;
// new code calls Execute.
func (cfg Config) Run(ctx context.Context, p *isa.Program) (*Report, error) {
	return Execute(ctx, p, cfg)
}

// RunWarm executes the campaign against a pre-built warm snapshot and,
// optionally, a pre-recorded checkpoint log of its clean reference run.
// It is Execute with WithSnapshot and WithRecording — a compatibility
// wrapper; new code calls Execute.
func (cfg Config) RunWarm(ctx context.Context, p *isa.Program, snap *dbt.Snapshot, cleanSteps uint64, log *ckpt.Log) (*Report, error) {
	return Execute(ctx, p, cfg, WithSnapshot(snap, cleanSteps), WithRecording(log))
}

// techName renders the technique label used by metric series and spans.
func techName(t dbt.Technique) string {
	if t == nil {
		return "none"
	}
	return t.Name()
}

func (cfg Config) runWarm(ctx context.Context, p *isa.Program, snap *dbt.Snapshot, cleanSteps uint64, log *ckpt.Log) (*Report, error) {
	tech := techName(cfg.Technique)
	rep := &Report{
		Program:      p.Name,
		Technique:    tech,
		Policy:       cfg.Policy,
		Samples:      cfg.Samples,
		SampleOffset: cfg.SampleOffset,
		ByCat:        map[errmodel.Category]*Agg{},
		Workers:      par.Workers(cfg.Workers, cfg.Samples),
	}
	rep.Translator = snap.Stats() // warm-up work; merge adds per-sample deltas
	rep.Compiled = snap.CompStats()
	rep.WarmTranslator = rep.Translator
	rep.WarmCompiled = rep.Compiled

	cfg.Trace.Emit(obs.Event{Kind: obs.EvCampaignStart, Detail: p.Name + "/" + tech})
	cfg.Progress.Begin(cfg.Samples, rep.Workers, progressLabels())
	shards := newShards(cfg.Metrics, rep.Workers)
	results := make([]sampleResult, cfg.Samples)
	var err error
	if cfg.CkptInterval != 0 {
		err = runCkptSamples(ctx, p, &cfg, rep, snap, tech, shards, results, cleanSteps, log)
	} else {
		err = runReplaySamples(ctx, p, &cfg, rep, snap, tech, shards, results)
	}
	if err != nil {
		return nil, err
	}
	mg := phaseSpan(cfg.Metrics, tech, "merge")
	rep.merge(results, cfg.KeepRecords)
	flushShards(shards, cfg.Metrics)
	mg.End()
	if cfg.Metrics != nil {
		rep.Translator.Publish(cfg.Metrics, tech)
		rep.Compiled.Publish(cfg.Metrics, tech)
		cfg.Metrics.Gauge(seriesName("dbt_code_cache_instrs", tech)).Max(int64(snap.CacheLen()))
	}
	cfg.Trace.Emit(obs.Event{Kind: obs.EvCampaignEnd, Value: int64(cfg.Samples), Detail: p.Name + "/" + tech})
	return rep, nil
}

// runReplaySamples is the full-replay engine: every sample executes the
// guest from entry on a private snapshot clone. The clean reference is a
// post-snapshot run on a clone, so both engines classify against the same
// geometry regardless of how warm-up converged.
func runReplaySamples(ctx context.Context, p *isa.Program, cfg *Config, rep *Report, snap *dbt.Snapshot,
	tech string, shards []*obs.Collector, results []sampleResult) error {
	start := time.Now()
	base := snap.Stats()
	record := phaseSpan(cfg.Metrics, tech, "record")
	ref := snap.NewDBT().Run(nil, cfg.MaxSteps)
	record.End()
	if ref.Stop.Reason != cpu.StopHalt {
		return fmt.Errorf("%s: clean run ended with %v", p.Name, ref.Stop)
	}
	want := ref.Output
	branches := ref.DirectBranches
	steps := ref.Steps
	if branches == 0 {
		return fmt.Errorf("%s: no branches to fault", p.Name)
	}
	injSpan := phaseSpan(cfg.Metrics, tech, "inject")
	err := par.ForEachShardCtx(ctx, cfg.Samples, rep.Workers, func(w, i int) error {
		defer observeProgress(cfg.Progress, w, &results[i])
		defer dumpFlightDBT(cfg, snap, p.Name, tech, i, want, &results[i])
		f := deriveFault(cfg, i, branches, steps)
		sd := snap.NewDBT()
		res := sd.Run(f, cfg.MaxSteps)
		results[i].stats = res.Stats.Sub(base)
		results[i].comp = res.Comp
		if !f.Fired {
			if shards != nil {
				observeNotFired(shards[w], tech)
			}
			return nil
		}
		rec := Record{
			Sample:   cfg.SampleOffset + i,
			Fault:    *f,
			Outcome:  classifyOutcome(res, want),
			Category: classifyCategory(sd, f),
		}
		if rec.Outcome == OutDetectedSW || rec.Outcome == OutDetectedHW {
			rec.Latency = res.Steps - f.FiredStep
			if cfg.Trace != nil {
				cfg.Trace.Emit(obs.Event{
					Kind: obs.EvErrorDetected, Sample: obs.SampleRef(cfg.SampleOffset + i),
					Value:  int64(rec.Latency),
					Detail: rec.Outcome.String() + "/" + rec.Category.String(),
				})
			}
		}
		if shards != nil {
			observeSample(shards[w], tech, &rec, res.SigChecks, res.CacheSize)
		}
		results[i].fired = true
		results[i].rec = rec
		return nil
	})
	injSpan.End()
	rep.Elapsed = time.Since(start)
	return err
}

func classifyOutcome(res *dbt.Result, want []int32) Outcome {
	switch {
	case res.Stop.Reason == cpu.StopReport:
		return OutDetectedSW
	case res.Stop.Reason.IsHardwareTrap():
		return OutDetectedHW
	case res.Stop.Reason == cpu.StopOutOfSteps:
		return OutHang
	case res.Stop.Reason == cpu.StopHalt:
		if equalOutput(res.Output, want) {
			return OutBenign
		}
		return OutSDC
	default:
		// TrapOut cannot escape the run loop; anything else is a hang
		// equivalent.
		return OutHang
	}
}

func equalOutput(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// classifyCategory maps the fired fault onto the paper's branch-error
// categories, using the code-cache layout (faults strike translated
// branches, so same/other block is judged in cache coordinates).
func classifyCategory(d *dbt.DBT, f *cpu.Fault) errmodel.Category {
	if f.Kind == cpu.FaultRegBit {
		return errmodel.CatData
	}
	if f.Kind == cpu.FaultFlagBit {
		if f.FaultTaken != f.CleanTaken {
			return errmodel.CatA
		}
		return errmodel.CatNoError
	}
	if !f.CleanTaken {
		return errmodel.CatNoError
	}
	target, ok := d.Locate(f.FaultTarget)
	if !ok {
		return errmodel.CatF
	}
	from, _ := d.Locate(f.FaultIP)
	if target == from {
		if f.FaultTarget == target.CacheStart {
			return errmodel.CatB
		}
		return errmodel.CatC
	}
	if f.FaultTarget == target.CacheStart {
		return errmodel.CatD
	}
	return errmodel.CatE
}
