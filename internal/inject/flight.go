package inject

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Flight-recorder integration. Campaigns never pay for forensics on the
// hot path: when a sample classifies as anomalous (SDC, hang), it is
// deterministically re-run from the same planted fault with a branch hook
// filling a fixed-size event ring, and the ring's tail is dumped as one
// JSONL line. The hook forces the interpreter path (the compiled backend
// self-disables and the plan loop leaves its hot span when a hook is
// set), but every backend is architecturally identical, so the re-run
// reproduces the campaign's classification — a Replayed/Outcome mismatch
// in a dump is itself a finding.

// anomalous reports whether an outcome warrants a forensic dump.
func anomalous(o Outcome) bool { return o == OutSDC || o == OutHang }

// sampleSeed is the derived per-sample seed dumps are keyed by: the
// splitmix state newSampleRNG builds from (campaign seed, index), enough
// to replay one sample without re-deriving the whole campaign.
func sampleSeed(seed int64, index int) uint64 { return newSampleRNG(seed, index).state }

// plannedOnly strips the firing telemetry from a fault, leaving only the
// planted coordinates — the re-run must fire it afresh.
func plannedOnly(f cpu.Fault) cpu.Fault {
	return cpu.Fault{
		BranchIndex: f.BranchIndex,
		Kind:        f.Kind,
		Bit:         f.Bit,
		StepIndex:   f.StepIndex,
		Reg:         f.Reg,
	}
}

// ringHook returns a BranchHook that appends one EvBranch event per
// executed direct branch. m.Steps is synced before the hook fires, so the
// captured step counts are exact.
func ringHook(ring *obs.Ring, m *cpu.Machine) func(cpu.BranchEvent) {
	return func(ev cpu.BranchEvent) {
		detail := "fall-through"
		if ev.Taken {
			detail = "taken"
		}
		ring.Append(obs.Event{
			Kind:   obs.EvBranch,
			Step:   m.Steps,
			Addr:   ev.IP,
			Value:  int64(ev.Target),
			Detail: detail,
		})
	}
}

// faultDetail renders the planted fault for the dump.
func faultDetail(f *cpu.Fault) string {
	switch f.Kind {
	case cpu.FaultOffsetBit:
		return fmt.Sprintf("offset-bit %d at branch %d", f.Bit, f.BranchIndex)
	case cpu.FaultFlagBit:
		return fmt.Sprintf("flag-bit %d at branch %d", f.Bit, f.BranchIndex)
	default:
		return fmt.Sprintf("reg %d bit %d at step %d", f.Reg, f.Bit, f.StepIndex)
	}
}

// dumpFlightDBT re-runs one anomalous translated sample on a fresh
// snapshot clone with the ring hook attached and dumps the forensic
// record. No-op unless cfg.Flight is set and the sample fired an
// anomalous outcome.
func dumpFlightDBT(cfg *Config, snap *dbt.Snapshot, program, tech string, i int, want []int32, s *sampleResult) {
	if cfg.Flight == nil || !s.fired || !anomalous(s.rec.Outcome) {
		return
	}
	g := cfg.SampleOffset + i // dumps are keyed by the global sample index
	f := plannedOnly(s.rec.Fault)
	ring := obs.NewRing(cfg.Flight.Depth())
	sd := snap.NewDBT()
	m, res := sd.Start(&f)
	if res == nil {
		m.BranchHook = ringHook(ring, m)
		res = sd.Finish(m, sd.Advance(m, cfg.MaxSteps))
	}
	if f.Fired {
		ring.Append(obs.Event{Kind: obs.EvFaultFired, Step: f.FiredStep, Addr: f.FaultIP, Detail: faultDetail(&f)})
	}
	ring.Append(obs.Event{Kind: obs.EvStop, Step: res.Steps, Addr: res.Stop.IP, Detail: res.Stop.String()})
	cfg.Flight.Dump(obs.FlightDump{
		Sample:     g,
		SampleSeed: sampleSeed(cfg.Seed, g),
		Program:    program,
		Technique:  tech,
		Outcome:    s.rec.Outcome.String(),
		Replayed:   classifyOutcome(res, want).String(),
		Fault:      faultDetail(&f),
		Stop:       res.Stop.String(),
		Dropped:    ring.Dropped(),
		Events:     ring.Events(),
	})
}

// dumpFlightStatic is dumpFlightDBT for native (no translator) campaigns:
// the re-run executes guest code directly on a fresh machine.
func dumpFlightStatic(cfgn *Config, p *isa.Program, label string, i int, want []int32, s *sampleResult) {
	if cfgn.Flight == nil || !s.fired || !anomalous(s.rec.Outcome) {
		return
	}
	g := cfgn.SampleOffset + i // dumps are keyed by the global sample index
	f := plannedOnly(s.rec.Fault)
	ring := obs.NewRing(cfgn.Flight.Depth())
	m := cpu.New()
	m.Reset(p)
	m.Fault = &f
	m.BranchHook = ringHook(ring, m)
	stop := m.Run(p.Code, cfgn.MaxSteps)
	if f.Fired {
		ring.Append(obs.Event{Kind: obs.EvFaultFired, Step: f.FiredStep, Addr: f.FaultIP, Detail: faultDetail(&f)})
	}
	ring.Append(obs.Event{Kind: obs.EvStop, Step: m.Steps, Addr: stop.IP, Detail: stop.String()})
	cfgn.Flight.Dump(obs.FlightDump{
		Sample:     g,
		SampleSeed: sampleSeed(cfgn.Seed, g),
		Program:    p.Name,
		Technique:  label,
		Outcome:    s.rec.Outcome.String(),
		Replayed:   classifyStaticOutcome(stop, m.Output, want).String(),
		Fault:      faultDetail(&f),
		Stop:       stop.String(),
		Dropped:    ring.Dropped(),
		Events:     ring.Events(),
	})
}
