package inject

import (
	"fmt"

	"repro/internal/obs"
)

// Campaign metrics. Series are labeled by technique so CoverageMatrix
// campaigns publish into one registry without colliding; campaigns of
// the same technique (e.g. over several programs) accumulate, matching
// bench.mergeReports semantics. All per-sample observations go through
// per-worker collector shards and commutative merges, so the registry
// contents are identical for every worker count.

// seriesName renders `base{technique="T"}`.
func seriesName(base, technique string) string {
	return fmt.Sprintf("%s{technique=%q}", base, technique)
}

// phaseSpan opens a campaign phase timing on the shared series
// `campaign_phase{phase="...",technique="T"}`. Durations are wall-clock;
// they export in the snapshot's spans section, which byte-identity
// comparisons strip (obs.Snapshot.StripTimings).
func phaseSpan(reg *obs.Registry, technique, phase string) *obs.Span {
	return reg.StartSpan("campaign_phase", fmt.Sprintf("technique=%q", technique), phase)
}

// progressLabels returns the tally slots for a Progress tracker: one per
// outcome, indexed by the Outcome value, plus a trailing "not-fired".
func progressLabels() []string {
	labels := make([]string, NumOutcomes+1)
	for i := Outcome(0); i < NumOutcomes; i++ {
		labels[i] = i.String()
	}
	labels[NumOutcomes] = "not-fired"
	return labels
}

// observeProgress counts one finished sample on worker w's shard, slotted
// by outcome (or the not-fired slot when the planted fault never fired).
func observeProgress(p *obs.Progress, w int, s *sampleResult) {
	if p == nil {
		return
	}
	if s.fired {
		p.Observe(w, int(s.rec.Outcome))
	} else {
		p.Observe(w, int(NumOutcomes))
	}
}

// newShards allocates one collector per worker, or nil when metrics are
// disabled.
func newShards(reg *obs.Registry, workers int) []*obs.Collector {
	if reg == nil {
		return nil
	}
	shards := make([]*obs.Collector, workers)
	for i := range shards {
		shards[i] = obs.NewCollector()
	}
	return shards
}

// flushShards folds the shards in index order and publishes the result.
// The fold is commutative, so the outcome does not depend on which
// worker observed which sample.
func flushShards(shards []*obs.Collector, reg *obs.Registry) {
	if shards == nil {
		return
	}
	merged := obs.NewCollector()
	for _, s := range shards {
		merged.Merge(s)
	}
	merged.FlushTo(reg)
}

// observeNotFired records a sample whose planted fault never fired.
func observeNotFired(c *obs.Collector, technique string) {
	c.Add(seriesName("inject_samples_total", technique), 1)
	c.Add(seriesName("inject_not_fired_total", technique), 1)
}

// observeSample folds one classified sample into a worker's shard:
// outcome counters per category, detection-latency histograms (overall
// and per category), executed signature checks and peak code-cache
// occupancy.
func observeSample(c *obs.Collector, technique string, rec *Record, sigChecks uint64, cacheSize int) {
	c.Add(seriesName("inject_samples_total", technique), 1)
	c.Add(fmt.Sprintf("inject_outcomes_total{technique=%q,category=%q,outcome=%q}",
		technique, rec.Category.String(), rec.Outcome.String()), 1)
	c.Add(seriesName("cpu_sig_checks_total", technique), sigChecks)
	if cacheSize > 0 {
		c.Max(seriesName("dbt_code_cache_instrs", technique), int64(cacheSize))
	}
	if rec.Outcome == OutDetectedSW || rec.Outcome == OutDetectedHW {
		c.Observe(seriesName("inject_detection_latency_instructions", technique),
			obs.DefaultLatencyBuckets, rec.Latency)
		c.Observe(fmt.Sprintf("inject_detection_latency_instructions{technique=%q,category=%q}",
			technique, rec.Category.String()), obs.DefaultLatencyBuckets, rec.Latency)
	}
}
