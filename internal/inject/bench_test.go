package inject

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/dbt"

	"repro/internal/check"
)

// BenchmarkCampaignWorkers measures campaign throughput as the worker pool
// grows. On a multi-core machine the 4-worker run should approach a 4x
// speedup over serial; on a single core all three take the same time (the
// pool adds no overhead worth measuring against millions of interpreted
// steps per sample).
func BenchmarkCampaignWorkers(b *testing.B) {
	p, err := asm.Assemble("bench", workload)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Campaign(p, Config{
					Technique: &check.RCF{Style: dbt.UpdateCmov},
					Samples:   1000,
					Seed:      1,
					Options:   Options{Workers: workers},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Throughput(), "runs/s")
			}
		})
	}
}
