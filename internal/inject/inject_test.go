package inject

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/dbt"
	"repro/internal/errmodel"
	"repro/internal/isa"

	"repro/internal/check"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const workload = `
main:
    movi eax, 0
    movi ecx, 40
outer:
    movi edx, 5
inner:
    addi eax, 1
    cmpi eax, 1000
    jlt keep
    movi eax, 0
keep:
    subi edx, 1
    cmpi edx, 0
    jgt inner
    call bump
    subi ecx, 1
    cmpi ecx, 0
    jgt outer
    out eax
    out ecx
    halt
bump:
    addi eax, 3
    ret
`

func TestCampaignBasics(t *testing.T) {
	p := mustAssemble(t, workload)
	tech, err := check.New("RCF", dbt.UpdateCmov)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Campaign(p, Config{Technique: tech, Samples: 300, Seed: 1, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Total == 0 {
		t.Fatal("no faults fired")
	}
	if rep.Totals.Total+rep.NotFired != rep.Samples {
		t.Errorf("accounting: %d fired + %d not = %d samples",
			rep.Totals.Total, rep.NotFired, rep.Samples)
	}
	if len(rep.Records) != rep.Totals.Total {
		t.Error("KeepRecords mismatch")
	}
	// Per-category aggregates must sum to totals.
	sum := 0
	for _, a := range rep.ByCat {
		sum += a.Total
	}
	if sum != rep.Totals.Total {
		t.Errorf("category sum %d != total %d", sum, rep.Totals.Total)
	}
}

// TestRCFNoSDC: the paper's headline coverage claim. RCF + ALLBB must leave
// zero silent data corruptions across a randomized campaign — except for
// the one gap no signature scheme closes (the paper's Assumption 2): a
// branch error landing directly on the program-exit instruction, past the
// final check, reaches no CHECK_SIG at all.
func TestRCFNoSDC(t *testing.T) {
	p := mustAssemble(t, workload)
	tech, _ := check.New("RCF", dbt.UpdateCmov)
	rep, err := Campaign(p, Config{Technique: tech, Policy: dbt.PolicyAllBB, Samples: 500, Seed: 7, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	// A second, subtler residual gap is a violation of the paper's
	// Assumption 1 (CHECK_SIG atomicity): a branch error landing *inside*
	// the check sequence of its own correct target — past the jcxz, on the
	// ECX restore — leaves the signature chain consistent while corrupting
	// the guest's ECX through the staging registers. The paper assumes
	// such landings "usually lead to program fails or checking fails";
	// the campaign measures the exceptions honestly.
	d := dbt.New(p, dbt.Options{Technique: tech, Policy: dbt.PolicyAllBB})
	d.Run(nil, 50_000_000)
	for _, rec := range rep.Records {
		if rec.Outcome != OutSDC {
			continue
		}
		if !IsResidualGap(d, rec.Fault.FaultTarget) {
			t.Errorf("RCF/CMOVcc/ALLBB: SDC not explained by the exit or check-atomicity gaps: %+v\n%s",
				rec.Fault, FormatReport(rep))
		}
	}
	if rep.Totals.Detected() == 0 {
		t.Error("campaign detected nothing; fault model inert?")
	}
}

// TestCoverageOrdering: RCF must not be beaten by the uninstrumented
// baseline, and instrumentation must slash SDCs relative to none.
func TestCoverageOrdering(t *testing.T) {
	p := mustAssemble(t, workload)
	run := func(name string) *Report {
		tech, err := check.New(name, dbt.UpdateCmov)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Campaign(p, Config{Technique: tech, Samples: 400, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	none := run("none")
	rcf := run("RCF")
	edg := run("EdgCF")
	ecf := run("ECF")

	if !(rcf.Totals.Coverage() >= edg.Totals.Coverage()) {
		t.Errorf("coverage: RCF %.3f < EdgCF %.3f", rcf.Totals.Coverage(), edg.Totals.Coverage())
	}
	if !(edg.Totals.Coverage() > none.Totals.Coverage()) {
		t.Errorf("coverage: EdgCF %.3f <= none %.3f", edg.Totals.Coverage(), none.Totals.Coverage())
	}
	if rcf.Totals.Count[OutSDC] > none.Totals.Count[OutSDC] {
		t.Error("RCF has more SDCs than no protection")
	}
	_ = ecf
}

// TestDetectionLatencyByPolicy: sparser checking must not reduce detection
// below the final check, but should increase mean detection latency
// (ALLBB reports fastest).
func TestDetectionLatencyByPolicy(t *testing.T) {
	p := mustAssemble(t, workload)
	lat := func(pol dbt.Policy) float64 {
		tech, _ := check.New("EdgCF", dbt.UpdateCmov)
		rep, err := Campaign(p, Config{Technique: tech, Policy: pol, Samples: 400, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatencyN == 0 {
			t.Fatalf("%v: no detections", pol)
		}
		return rep.MeanLatency()
	}
	all := lat(dbt.PolicyAllBB)
	end := lat(dbt.PolicyEnd)
	if all >= end {
		t.Errorf("mean latency ALLBB (%.0f) should be below END (%.0f)", all, end)
	}
}

func TestCategoryFClassification(t *testing.T) {
	p := mustAssemble(t, workload)
	tech, _ := check.New("EdgCF", dbt.UpdateCmov)
	rep, err := Campaign(p, Config{Technique: tech, Samples: 600, Seed: 5, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.ByCat[errmodel.CatF]
	if f == nil || f.Total == 0 {
		t.Fatal("no category F faults in 600 samples (high offset bits should leave the cache)")
	}
	// All F faults are caught by hardware (the execute protection).
	if f.Count[OutDetectedHW] != f.Total {
		t.Errorf("category F: %d of %d caught by hardware\n%s",
			f.Count[OutDetectedHW], f.Total, FormatReport(rep))
	}
}

func TestNoErrorFaultsMostlyBenign(t *testing.T) {
	p := mustAssemble(t, workload)
	tech, _ := check.New("RCF", dbt.UpdateCmov)
	rep, err := Campaign(p, Config{Technique: tech, Samples: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ne := rep.ByCat[errmodel.CatNoError]
	if ne == nil || ne.Total == 0 {
		t.Skip("no no-effect faults sampled")
	}
	if ne.Count[OutBenign] == 0 {
		t.Error("no-effect faults should usually complete correctly")
	}
}

func TestCampaignErrors(t *testing.T) {
	spin := &isa.Program{Name: "spin", Code: []isa.Instr{{Op: isa.OpJmp, Imm: -1}}}
	if _, err := Campaign(spin, Config{Samples: 1, MaxSteps: 100}); err == nil {
		t.Error("non-halting clean run must fail")
	}
	// A straight-line program executes no branches at all under the DBT
	// (single block, no chained edges): nothing to fault.
	nobranch := mustAssemble(t, "movi eax, 1\nout eax\nhalt\n")
	if _, err := Campaign(nobranch, Config{Samples: 1}); err == nil {
		t.Error("program with no branches must fail")
	}
}

func TestFormatReport(t *testing.T) {
	p := mustAssemble(t, workload)
	tech, _ := check.New("ECF", dbt.UpdateJcc)
	rep, err := Campaign(p, Config{Technique: tech, Samples: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := FormatReport(rep)
	if !strings.Contains(s, "coverage") || !strings.Contains(s, "ECF") {
		t.Errorf("format:\n%s", s)
	}
	if OutSDC.String() != "SDC" || Outcome(99).String() != "?" {
		t.Error("outcome names")
	}
}
