package inject

import (
	"repro/internal/dbt"
	"repro/internal/isa"
)

// IsResidualGap reports whether a fault landing at the given cache address
// falls into one of the two coverage gaps that no signature-monitoring
// scheme closes, both acknowledged by the paper's assumptions:
//
//   - the exit gap (Assumption 2): landing on the program-exit instruction
//     itself, past every check — the error reaches no CHECK_SIG at all;
//   - the check-atomicity gap (Assumption 1): landing within the few
//     instructions after a check's report point (past the jcxz, on or
//     after the ECX restore), where the signature chain stays consistent
//     while the staged registers may corrupt guest state.
//
// Injection campaigns use it to separate these known residuals from
// genuine coverage failures.
func IsResidualGap(d *dbt.DBT, target uint32) bool {
	if d.CacheInstr(target).Op == isa.OpHalt {
		return true
	}
	// Landing shortly after a report marks a jump past a check sequence;
	// the restore and the region transition sit within 3 slots of it.
	for k := uint32(1); k <= 3 && k <= target; k++ {
		if d.CacheInstr(target-k).Op == isa.OpReport {
			return true
		}
	}
	// Landing inside the check sequence, past the ECX save but before the
	// jcxz resolves (the report sits 1-2 slots ahead): the partial check
	// reads PC' correctly yet restores ECX from a stale staging register.
	// A landing at the very start of the sequence executes the whole check
	// and is not a gap, so the forward window stops at 2.
	for k := uint32(1); k <= 2; k++ {
		if d.CacheInstr(target+k).Op == isa.OpReport {
			return true
		}
	}
	return false
}
