package inject

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestProgressSnapshotDeterminism: once a campaign completes, the
// progress tracker's deterministic fold (Done, Total, outcome tallies)
// must be identical for every worker count and engine.
func TestProgressSnapshotDeterminism(t *testing.T) {
	p := mustAssemble(t, workload)
	run := func(workers int, ckpt int64) obs.ProgressSnapshot {
		pr := obs.NewProgress()
		rep, err := Campaign(p, Config{
			Samples: 200, Seed: 42,
			Options: Options{Workers: workers, CkptInterval: ckpt, Progress: pr},
		})
		if err != nil {
			t.Fatalf("workers=%d ckpt=%d: %v", workers, ckpt, err)
		}
		s := pr.Snapshot().Deterministic()
		if s.Done != int64(rep.Samples) || s.Total != int64(rep.Samples) {
			t.Fatalf("workers=%d: done/total = %d/%d, want %d", workers, s.Done, s.Total, rep.Samples)
		}
		if s.Tallies["not-fired"] != int64(rep.NotFired) {
			t.Fatalf("workers=%d: not-fired tally = %d, want %d", workers, s.Tallies["not-fired"], rep.NotFired)
		}
		return s
	}
	serial := run(1, 0)
	for _, w := range []int{4} {
		if got := run(w, 0); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d progress %+v != serial %+v", w, got, serial)
		}
	}
	// The checkpoint engine counts the same samples, just in site order.
	if got := run(4, -1); !reflect.DeepEqual(got, serial) {
		t.Errorf("ckpt engine progress %+v != replay %+v", got, serial)
	}
}

// decodeDumps parses a flight recorder's JSONL output.
func decodeDumps(t *testing.T, buf *bytes.Buffer) []obs.FlightDump {
	t.Helper()
	var dumps []obs.FlightDump
	sc := bufio.NewScanner(buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var d obs.FlightDump
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad dump line: %v", err)
		}
		dumps = append(dumps, d)
	}
	return dumps
}

// checkDumps asserts the forensic invariants every dump must satisfy: the
// deterministic re-run reproduces the campaign's classification, the ring
// is non-empty, and its final event is the stop.
func checkDumps(t *testing.T, dumps []obs.FlightDump, rep *Report) {
	t.Helper()
	anomalies := rep.Totals.Count[OutSDC] + rep.Totals.Count[OutHang]
	if len(dumps) != anomalies {
		t.Fatalf("%d dumps for %d anomalous outcomes", len(dumps), anomalies)
	}
	for _, d := range dumps {
		if d.Replayed != d.Outcome {
			t.Errorf("sample %d: re-run classified %s, campaign %s", d.Sample, d.Replayed, d.Outcome)
		}
		if len(d.Events) == 0 {
			t.Errorf("sample %d: empty event ring", d.Sample)
			continue
		}
		if last := d.Events[len(d.Events)-1]; last.Kind != obs.EvStop {
			t.Errorf("sample %d: last event kind %q, want %q", d.Sample, last.Kind, obs.EvStop)
		}
		if d.SampleSeed == 0 {
			t.Errorf("sample %d: zero sample seed", d.Sample)
		}
	}
}

// TestFlightRecorderCampaign: an unprotected campaign produces SDCs, and
// every anomalous sample must yield a dump whose re-run agrees with the
// campaign classification — under both the replay and checkpoint engines.
func TestFlightRecorderCampaign(t *testing.T) {
	p := mustAssemble(t, workload)
	for _, ckpt := range []int64{0, -1} {
		var buf bytes.Buffer
		fr := obs.NewFlightRecorder(&buf, 16)
		rep, err := Campaign(p, Config{
			Samples: 200, Seed: 42,
			Options: Options{Workers: 4, CkptInterval: ckpt, Flight: fr},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := fr.Close(); err != nil {
			t.Fatal(err)
		}
		if rep.Totals.Count[OutSDC] == 0 {
			t.Fatalf("ckpt=%d: unprotected campaign produced no SDCs", ckpt)
		}
		if fr.Dumps() == 0 {
			t.Fatalf("ckpt=%d: no flight dumps", ckpt)
		}
		checkDumps(t, decodeDumps(t, &buf), rep)
	}
}

// TestFlightRecorderStatic: same invariants for native campaigns.
func TestFlightRecorderStatic(t *testing.T) {
	p := mustAssemble(t, workload)
	var buf bytes.Buffer
	fr := obs.NewFlightRecorder(&buf, 16)
	rep, err := StaticCampaign(p, "none", Config{
		Samples: 200, Seed: 42,
		Options: Options{Workers: 4, Flight: fr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Count[OutSDC]+rep.Totals.Count[OutHang] == 0 {
		t.Skip("no anomalous outcomes in static campaign")
	}
	checkDumps(t, decodeDumps(t, &buf), rep)
}

// TestObservabilityLeavesReportsIdentical: enabling metrics, progress and
// the flight recorder together must not change the normalized report —
// the invariant the CI byte-identity gate asserts end to end.
func TestObservabilityLeavesReportsIdentical(t *testing.T) {
	p := mustAssemble(t, workload)
	run := func(workers int, instrumented bool) string {
		cfg := Config{Samples: 200, Seed: 42, Options: Options{Workers: workers}}
		if instrumented {
			cfg.Metrics = obs.NewRegistry()
			cfg.Progress = obs.NewProgress()
			cfg.Flight = obs.NewFlightRecorder(&bytes.Buffer{}, 8)
		}
		rep, err := Campaign(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return FormatNormalized(rep)
	}
	plain := run(1, false)
	for _, w := range []int{1, 4} {
		if got := run(w, true); got != plain {
			t.Errorf("workers=%d instrumented report differs:\n%s\n---\n%s", w, got, plain)
		}
	}
}
