package inject

import (
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/dbt"
)

// formatKey renders a report with the legitimately varying fields (wall
// clock, worker count) normalized, so the formatted text can be compared
// byte for byte.
func formatKey(r *Report) string {
	k := reportKey(r)
	return FormatReport(&k)
}

// The checkpoint engine must produce reports byte-identical to full
// replay — same aggregates, same per-sample records, same translator
// stats — for every worker count, across fault models.
func TestCkptCampaignMatchesReplay(t *testing.T) {
	p := mustAssemble(t, workload)
	techs := map[string]dbt.Technique{
		"RCF":   &check.RCF{Style: dbt.UpdateCmov},
		"EdgCF": &check.EdgCF{Style: dbt.UpdateJcc},
	}
	for name, tech := range techs {
		for _, regFaults := range []bool{false, true} {
			base := Config{
				Technique:   tech,
				Samples:     200,
				Seed:        42,
				RegFaults:   regFaults,
				KeepRecords: true,
				MaxSteps:    2_000_000,
				Options:     Options{Workers: 1},
			}
			replay, err := Campaign(p, base)
			if err != nil {
				t.Fatalf("%s/reg=%v replay: %v", name, regFaults, err)
			}
			for _, w := range []int{1, 4} {
				// A tight explicit interval exercises many restore points;
				// the auto interval exercises the default path.
				for _, iv := range []int64{-1, 64} {
					cfg := base
					cfg.Workers = w
					cfg.CkptInterval = iv
					rep, err := Campaign(p, cfg)
					if err != nil {
						t.Fatalf("%s/reg=%v ckpt(iv=%d) workers=%d: %v", name, regFaults, iv, w, err)
					}
					got, want := reportKey(rep), reportKey(replay)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/reg=%v ckpt(iv=%d) workers=%d: report differs from replay\n got: %+v\nwant: %+v",
							name, regFaults, iv, w, got, want)
					}
					if fg, fw := formatKey(rep), formatKey(replay); fg != fw {
						t.Errorf("%s/reg=%v ckpt(iv=%d) workers=%d: formatted report differs\n got:\n%s\nwant:\n%s",
							name, regFaults, iv, w, fg, fw)
					}
				}
			}
		}
	}
}

// The static (no-translator) engine makes the same guarantee.
func TestStaticCkptCampaignMatchesReplay(t *testing.T) {
	p := mustAssemble(t, workload)
	ip, err := check.InstrumentStatic(p, check.StaticCFCSS)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Samples: 200, Seed: 42, KeepRecords: true, Options: Options{Workers: 1}}
	replay, err := StaticCampaign(ip, "CFCSS", base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		for _, iv := range []int64{-1, 64} {
			cfg := base
			cfg.Workers = w
			cfg.CkptInterval = iv
			rep, err := StaticCampaign(ip, "CFCSS", cfg)
			if err != nil {
				t.Fatalf("ckpt(iv=%d) workers=%d: %v", iv, w, err)
			}
			if !reflect.DeepEqual(reportKey(rep), reportKey(replay)) {
				t.Errorf("ckpt(iv=%d) workers=%d: static report differs from replay\n got: %+v\nwant: %+v",
					iv, w, reportKey(rep), reportKey(replay))
			}
			if fg, fw := formatKey(rep), formatKey(replay); fg != fw {
				t.Errorf("ckpt(iv=%d) workers=%d: formatted static report differs", iv, w)
			}
		}
	}
}

// The checkpoint engine keeps the worker-count invariance guarantee on
// its own too (site-sorted static sharding instead of dynamic draining).
func TestCkptCampaignWorkerCountInvariance(t *testing.T) {
	p := mustAssemble(t, workload)
	base := Config{
		Technique:   &check.RCF{Style: dbt.UpdateCmov},
		Samples:     200,
		Seed:        7,
		KeepRecords: true,
		MaxSteps:    2_000_000,
		Options:     Options{Workers: 1, CkptInterval: -1},
	}
	serial, err := Campaign(p, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		cfg := base
		cfg.Workers = w
		rep, err := Campaign(p, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(reportKey(rep), reportKey(serial)) {
			t.Errorf("workers=%d: report differs from serial", w)
		}
	}
}
