package dbt

import "repro/internal/obs"

// Hot-trace backend: the frontend counts dispatches through back-edge
// stubs; when a loop head gets hot, the backend re-emits the loop body as a
// straight-line superblock. Blocks linked by unconditional transfers or by
// conditional fall-throughs become seamless (no jump, no stub) while side
// exits keep their chaining stubs. Per-block instrumentation is re-emitted
// intact, so the signature invariants of the checking techniques hold
// inside traces exactly as outside.

// maxTraceBlocks caps superblock length.
const maxTraceBlocks = 8

// formTrace builds a superblock starting at the hot loop head. It returns
// nil when no profitable trace exists (e.g. the head block ends in an
// indirect branch).
func (d *DBT) formTrace(head uint32) *TBlock {
	type piece struct {
		guest uint32
		end   uint32
		term  TermInfo
	}
	var pieces []piece
	seen := map[uint32]bool{}
	cur := head
	for len(pieces) < maxTraceBlocks {
		if seen[cur] || !d.prog.Contains(cur) {
			break
		}
		end, term := d.scanBlock(cur)
		pieces = append(pieces, piece{cur, end, term})
		seen[cur] = true
		// Follow the straight-line continuation.
		var next uint32
		switch term.Kind {
		case TermJmp:
			next = term.Taken
		case TermFall:
			next = term.Fall
		case TermCond:
			if term.Taken == term.Fall {
				// Degenerate branch; a seamless fall-through would also
				// swallow the taken exit. Stop here.
				next = cur
			} else {
				next = term.Fall
			}
		default:
			next = cur // calls/indirects/halt end the trace
		}
		if next == cur || seen[next] {
			break
		}
		cur = next
	}
	if len(pieces) < 2 {
		return nil // nothing to merge
	}

	tb := &TBlock{
		GuestStart: head,
		GuestEnd:   pieces[0].end,
		CacheStart: uint32(len(d.cache)),
		IsTrace:    true,
	}
	e := &Emitter{d: d}
	for i, pc := range pieces {
		tb.GuestBlocks = append(tb.GuestBlocks, pc.guest)
		if i+1 < len(pieces) {
			// The next piece is emitted immediately after: its entry
			// transfer may be elided.
			e.armFallthrough(pieces[i+1].guest)
		}
		d.emitOne(e, pc.guest, pc.end, pc.term)
		e.suppressValid = false // safety: suppression never leaks
		d.stats.GuestInstrsTranslated += uint64(pc.end - pc.guest)
	}
	tb.CacheEnd = uint32(len(d.cache))
	tb.Checked = true
	d.opts.Trace.Emit(obs.Event{
		Kind: obs.EvTraceFormed, Guest: head,
		Addr: tb.CacheStart, Len: tb.CacheEnd - tb.CacheStart, Value: int64(len(pieces)),
	})
	d.tlist = append(d.tlist, tb)
	// Future transfers to the loop head land on the trace. Translations of
	// the interior blocks keep their standalone versions for side entries.
	d.setBlock(head, tb)
	d.stats.TracesFormed++
	d.pendingCycles += uint64(d.opts.Costs.TranslateUnit) * uint64(tb.CacheEnd-tb.CacheStart)
	return tb
}
