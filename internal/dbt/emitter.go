package dbt

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
)

// Emitter appends translated instructions to the code cache on behalf of
// the translator and the plugged-in Technique. It provides local forward
// labels (for instrumentation branches) and exit helpers that create
// chaining stubs.
//
// Layout contract for conditional tails: emit the taken arm first and the
// fall-through arm last (branching to the taken arm with the negated
// condition), so that trace formation can make the fall-through arm
// seamless. ExitDirect of the armed fall-through target is the only call
// allowed to emit nothing.
type Emitter struct {
	d *DBT

	// suppress is the guest address whose ExitDirect may be elided because
	// the next trace block is emitted immediately after.
	suppress      uint32
	suppressValid bool

	// lastBind remembers the most recent Bind so that a stub emitted
	// directly at a bound label records the branch as its referrer: when
	// the stub chains, the branch itself is re-pointed at the translation,
	// eliminating the stub hop (real translators patch the branch, not
	// just the stub).
	lastBind      uint32
	lastBindPC    uint32
	lastBindValid bool
}

// PC returns the cache address of the next emitted instruction.
func (e *Emitter) PC() uint32 { return uint32(len(e.d.cache)) }

// Emit appends one instruction to the cache.
func (e *Emitter) Emit(in isa.Instr) { e.d.cache = append(e.d.cache, in) }

// JccFwd emits a conditional branch to a not-yet-bound local label and
// returns a fixup handle for Bind.
func (e *Emitter) JccFwd(c isa.Cond) uint32 {
	at := e.PC()
	e.Emit(isa.Instr{Op: isa.OpJcc, RD: isa.Reg(c)})
	return at
}

// JrzFwd emits a jump-if-register-zero to a not-yet-bound local label.
// It is the flag-transparent check branch (the paper's jcxz idiom).
func (e *Emitter) JrzFwd(r isa.Reg) uint32 {
	at := e.PC()
	e.Emit(isa.Instr{Op: isa.OpJrz, RS1: r})
	return at
}

// JmpFwd emits an unconditional jump to a not-yet-bound local label.
func (e *Emitter) JmpFwd() uint32 {
	at := e.PC()
	e.Emit(isa.Instr{Op: isa.OpJmp})
	return at
}

// Bind points the branch emitted at fixup handle at the current PC.
func (e *Emitter) Bind(fix uint32) {
	e.d.cache[fix].Imm = isa.OffsetFor(fix, e.PC())
	e.lastBind = fix
	e.lastBindPC = e.PC()
	e.lastBindValid = true
}

// Lea emits rd = rs + imm (flag transparent).
func (e *Emitter) Lea(rd, rs isa.Reg, imm int32) {
	e.Emit(isa.Instr{Op: isa.OpLea, RD: rd, RS1: rs, Imm: imm})
}

// Lea3 emits rd = rs1 + rs2 + imm (flag transparent).
func (e *Emitter) Lea3(rd, rs1, rs2 isa.Reg, imm int32) {
	e.Emit(isa.Instr{Op: isa.OpLea3, RD: rd, RS1: rs1, RS2: rs2, Imm: imm})
}

// Report emits the error-report instruction (software detection point).
func (e *Emitter) Report() { e.Emit(isa.Instr{Op: isa.OpReport}) }

// NoteCheck records that the technique emitted one signature-check
// sequence starting at the current PC: it feeds the per-technique
// check-site counter and the optional event trace. Techniques call it
// once per emitted check.
func (e *Emitter) NoteCheck() {
	e.d.stats.CheckSites++
	if e.d.opts.Trace != nil {
		e.d.opts.Trace.Emit(obs.Event{Kind: obs.EvCheckSite, Addr: e.PC()})
	}
}

// PushGuestReturn pushes the guest return address for a translated call.
// The guest stack must hold guest addresses (transparency: the original
// binary may inspect them, and returns re-enter the translator), so the
// translator cannot use the machine's call instruction, whose push would
// leak a code-cache address.
func (e *Emitter) PushGuestReturn(guestRet uint32) {
	e.Emit(isa.Instr{Op: isa.OpMovRI, RD: isa.RegAUX, Imm: int32(guestRet)})
	e.Emit(isa.Instr{Op: isa.OpPush, RS1: isa.RegAUX})
}

// armFallthrough allows the next ExitDirect(target) to emit nothing
// because the trace emits that block immediately after.
func (e *Emitter) armFallthrough(target uint32) {
	e.suppress = target
	e.suppressValid = true
}

// ExitDirect transfers control to the translated code for guestTarget:
// directly when the target is already translated and chaining is on,
// through a chaining stub otherwise, or seamlessly (no instruction) when
// the trace emitter placed the target right behind this block.
func (e *Emitter) ExitDirect(guestTarget uint32) {
	if e.suppressValid && e.suppress == guestTarget {
		e.suppressValid = false
		return
	}
	if tb, ok := e.d.lookupBlock(guestTarget); ok && !e.d.opts.NoChaining {
		at := e.PC()
		if e.lastBindValid && e.lastBindPC == at {
			// The branch bound here can go straight to the translation.
			e.d.cache[e.lastBind].Imm = isa.OffsetFor(e.lastBind, tb.CacheStart)
			e.lastBindValid = false
		}
		e.Emit(isa.Instr{Op: isa.OpJmp, Imm: isa.OffsetFor(at, tb.CacheStart)})
		return
	}
	id := len(e.d.stubs)
	slot := e.PC()
	st := stub{guest: guestTarget, slot: slot, referrer: noReferrer}
	if e.lastBindValid && e.lastBindPC == slot {
		st.referrer = e.lastBind
		e.lastBindValid = false
	}
	e.d.stubs = append(e.d.stubs, st)
	e.Emit(isa.Instr{Op: isa.OpTrapOut, Imm: int32(id)})
}

// ExitIndirect transfers control to the guest address held in isa.RegSCR
// via the translator's indirect-target lookup service.
func (e *Emitter) ExitIndirect() {
	e.Emit(isa.Instr{Op: isa.OpTrapOut, Imm: indirectStub})
}

// indirectStub marks an indirect-dispatch exit in a TrapOut immediate.
const indirectStub = int32(-1)

// noReferrer marks stubs reached by fall-through only.
const noReferrer = ^uint32(0)

// stub is a pending (or chained) direct control transfer out of a block.
type stub struct {
	guest uint32 // guest target address
	slot  uint32 // cache slot holding the TrapOut (patched to Jmp on chain)
	// referrer is the cache slot of the branch that targets this stub
	// (noReferrer when the stub is reached by fall-through); on chaining
	// the branch is re-pointed directly at the translation.
	referrer uint32
	// count is the number of dispatches through this stub; back-edge stubs
	// use it as the hot-trace trigger.
	count int
	// backEdge marks loop-closing transfers (candidates for hot traces).
	backEdge bool
	// chained marks stubs already patched to a direct jump.
	chained bool
}

func (s *stub) String() string {
	return fmt.Sprintf("stub->0x%x@%d count=%d chained=%v", s.guest, s.slot, s.count, s.chained)
}
