package dbt

import (
	"testing"

	"repro/internal/isa"
)

// TestCheckedByPolicy exercises the check-placement decision for every
// policy against every terminator shape.
func TestCheckedByPolicy(t *testing.T) {
	// A program with a ret block, a back-edge block, and a forward-branch
	// block.
	p := mustAssemble(t, `
main:
    movi ecx, 2
loop:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop          ; back edge -> RET-BE
    cmpi ecx, 5
    jlt fwd           ; forward conditional -> ALLBB only
fwd:
    call fn
    halt
fn:
    ret               ; ret -> RET, RET-BE
`)
	type expect struct {
		guest uint32
		pol   Policy
		want  bool
	}
	d := New(p, Options{})
	// Identify block starts by scanning.
	backEdgeBlock := uint32(1) // "loop" label
	fwdBlock := uint32(4)      // after jgt: cmpi ecx,5; jlt
	retBlock := uint32(0)
	for a, in := range p.Code {
		if in.Op == isa.OpRet {
			retBlock = uint32(a)
		}
	}
	cases := []expect{
		{backEdgeBlock, PolicyAllBB, true},
		{backEdgeBlock, PolicyRetBE, true},
		{backEdgeBlock, PolicyRet, false},
		{backEdgeBlock, PolicyEnd, false},
		{fwdBlock, PolicyAllBB, true},
		{fwdBlock, PolicyRetBE, false},
		{fwdBlock, PolicyRet, false},
		{retBlock, PolicyAllBB, true},
		{retBlock, PolicyRetBE, true},
		{retBlock, PolicyRet, true},
		{retBlock, PolicyEnd, false},
	}
	for _, c := range cases {
		d.opts.Policy = c.pol
		end, term := d.scanBlock(c.guest)
		if got := d.checkedByPolicy(c.guest, end, term); got != c.want {
			t.Errorf("checkedByPolicy(0x%x, %v) = %v, want %v (term %v)",
				c.guest, c.pol, got, c.want, term.Kind)
		}
	}
}

func TestSigOf(t *testing.T) {
	if SigOf(0) != 1 || SigOf(41) != 42 {
		t.Error("SigOf must be guest address + 1 (nonzero signatures)")
	}
}

func TestTBlockString(t *testing.T) {
	tb := &TBlock{GuestStart: 4, CacheStart: 8, CacheEnd: 20}
	if s := tb.String(); s != "block guest=0x4 cache=[0x8,0x14)" {
		t.Errorf("String = %q", s)
	}
	tb.IsTrace = true
	if s := tb.String(); s != "trace guest=0x4 cache=[0x8,0x14)" {
		t.Errorf("String = %q", s)
	}
}

func TestStubString(t *testing.T) {
	s := stub{guest: 7, slot: 3, count: 2}
	if s.String() == "" {
		t.Error("empty stub string")
	}
}

func TestProgAccessor(t *testing.T) {
	p := mustAssemble(t, "halt\n")
	d := New(p, Options{})
	if d.Prog() != p {
		t.Error("Prog accessor broken")
	}
	if d.CacheInstr(1000).Op != isa.OpNop {
		t.Error("out-of-range CacheInstr should be zero value")
	}
}

// TestNoneTechniqueDirect exercises the None technique's plug points
// directly (they are normally bypassed when Options.Technique is nil is
// replaced... they are the default, but Prologue/EmitHead are trivially
// empty; verify the contract).
func TestNoneTechniqueDirect(t *testing.T) {
	n := None{}
	if n.Name() != "none" {
		t.Error("name")
	}
	if n.Prologue(5) != nil {
		t.Error("none prologue must be empty")
	}
	p := mustAssemble(t, "movi eax, 1\nout eax\nhalt\n")
	d := New(p, Options{})
	e := &Emitter{d: d}
	before := e.PC()
	n.EmitHead(e, 0, true)
	n.EmitFinalCheck(e, 0)
	if e.PC() != before {
		t.Error("none emits no instrumentation")
	}
}

// TestEmitterHelpers covers the local-label and helper emitters.
func TestEmitterHelpers(t *testing.T) {
	p := mustAssemble(t, "halt\n")
	d := New(p, Options{})
	e := &Emitter{d: d}
	f := e.JrzFwd(isa.R12)
	e.Report()
	e.Bind(f)
	e.Lea(isa.R12, isa.R12, 5)
	e.Lea3(isa.R12, isa.R12, isa.R15, -1)
	j := e.JmpFwd()
	e.Emit(isa.Instr{Op: isa.OpNop})
	e.Bind(j)
	code := d.cache
	if code[0].Op != isa.OpJrz || code[0].Target(0) != 2 {
		t.Errorf("jrz fixup wrong: %v", code[0])
	}
	if code[4].Op != isa.OpJmp || code[4].Target(4) != 6 {
		t.Errorf("jmp fixup wrong: %v", code[4])
	}
}
