package dbt

import (
	"reflect"
	"testing"

	"repro/internal/comp"
	"repro/internal/cpu"
)

// warmFor builds a warm translator over hotLoopSrc under opts and returns
// its snapshot.
func warmFor(t *testing.T, opts Options) *Snapshot {
	t.Helper()
	p := mustAssemble(t, hotLoopSrc)
	d := New(p, opts)
	for i := 0; i < 3; i++ {
		if res := d.Run(nil, 10_000_000); res.Stop.Reason != cpu.StopHalt {
			t.Fatalf("warm-up run %d: %v", i, res.Stop)
		}
	}
	return d.Snapshot()
}

// A snapshot restored from its portable state must behave exactly like
// the original: clones produce the same output, cycles and stats (no
// re-translation), for both the interpreter and the compiled backend.
func TestSnapshotStateRoundTrip(t *testing.T) {
	for _, backend := range []comp.Backend{comp.BackendPlan, comp.BackendCompile} {
		t.Run(backend.String(), func(t *testing.T) {
			opts := Options{TraceThreshold: 20, Backend: backend}
			snap := warmFor(t, opts)
			st, err := snap.State()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreSnapshot(snap.prog, opts, st)
			if err != nil {
				t.Fatal(err)
			}
			if restored.CacheLen() != snap.CacheLen() {
				t.Fatalf("restored cache %d != original %d", restored.CacheLen(), snap.CacheLen())
			}
			if restored.Stats() != snap.Stats() {
				t.Fatalf("restored stats %+v != %+v", restored.Stats(), snap.Stats())
			}
			if restored.CompStats() != snap.CompStats() {
				t.Fatalf("restored comp stats %+v != %+v", restored.CompStats(), snap.CompStats())
			}

			want := snap.NewDBT().Run(nil, 10_000_000)
			got := restored.NewDBT().Run(nil, 10_000_000)
			if got.Stop != want.Stop || got.Cycles != want.Cycles {
				t.Errorf("restored clean run (%v, %d cycles) != original (%v, %d cycles)",
					got.Stop, got.Cycles, want.Stop, want.Cycles)
			}
			if !reflect.DeepEqual(got.Output, want.Output) {
				t.Errorf("restored output %v != %v", got.Output, want.Output)
			}
			if got.Stats != want.Stats {
				t.Errorf("restored clone re-translated: %+v != %+v", got.Stats, want.Stats)
			}

			// Faulty runs — which chain stubs and may translate wild
			// targets — must also agree.
			wf := &cpu.Fault{Kind: cpu.FaultOffsetBit, BranchIndex: 5, Bit: 9}
			gf := &cpu.Fault{Kind: cpu.FaultOffsetBit, BranchIndex: 5, Bit: 9}
			wr := snap.NewDBT().Run(wf, 10_000_000)
			gr := restored.NewDBT().Run(gf, 10_000_000)
			if wf.Fired != gf.Fired || gr.Stop != wr.Stop || gr.Cycles != wr.Cycles {
				t.Errorf("restored faulty run (%v, %d cycles) != original (%v, %d cycles)",
					gr.Stop, gr.Cycles, wr.Stop, wr.Cycles)
			}
		})
	}
}

// The portable image itself must round-trip structurally: extracting
// state from a restored snapshot yields the same image, so publishing a
// fetched artifact re-encodes to the same bytes.
func TestSnapshotStateStable(t *testing.T) {
	opts := Options{TraceThreshold: 20, Backend: comp.BackendCompile}
	snap := warmFor(t, opts)
	st, err := snap.State()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSnapshot(snap.prog, opts, st)
	if err != nil {
		t.Fatal(err)
	}
	again, err := restored.State()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, st) {
		t.Fatalf("state not stable under restore:\n got %+v\nwant %+v", again, st)
	}
}

// Damaged images must be rejected, not trusted.
func TestRestoreSnapshotRejectsInconsistent(t *testing.T) {
	opts := Options{TraceThreshold: 20}
	snap := warmFor(t, opts)
	cases := map[string]func(*SnapshotState){
		"block outside cache": func(st *SnapshotState) { st.Blocks[0].CacheEnd = uint32(len(st.Cache)) + 9 },
		"ref outside blocks":  func(st *SnapshotState) { st.BlockMap[0].Index = uint32(len(st.Blocks)) },
		"stub outside cache":  func(st *SnapshotState) { st.Stubs[0].Slot = uint32(len(st.Cache)) },
	}
	for name, mut := range cases {
		t.Run(name, func(t *testing.T) {
			st, err := snap.State()
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Stubs) == 0 || len(st.BlockMap) == 0 {
				t.Skip("warm snapshot has no stubs/refs to damage")
			}
			mut(st)
			if _, err := RestoreSnapshot(snap.prog, opts, st); err == nil {
				t.Fatal("damaged state restored without error")
			}
		})
	}
}
