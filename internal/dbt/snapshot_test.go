package dbt

import (
	"sync"
	"testing"

	"repro/internal/cpu"
	"repro/internal/live"
)

// The documented default must stay pinned: campaign reproducibility depends
// on every DBT forming traces at the same dispatch count.
func TestDefaultTraceThreshold(t *testing.T) {
	if defaultTraceThreshold != 16 {
		t.Fatalf("defaultTraceThreshold = %d, want 16", defaultTraceThreshold)
	}
	p := mustAssemble(t, sumSrc)
	if got := New(p, Options{}).opts.TraceThreshold; got != 16 {
		t.Errorf("New with zero TraceThreshold resolved to %d, want 16", got)
	}
	if got := New(p, Options{TraceThreshold: 3}).opts.TraceThreshold; got != 3 {
		t.Errorf("explicit TraceThreshold overridden to %d", got)
	}
	if got := New(p, Options{TraceThreshold: -1}).opts.TraceThreshold; got != -1 {
		t.Errorf("negative TraceThreshold (traces off) overridden to %d", got)
	}
}

// A DBT primed from a warm snapshot must behave exactly like the
// snapshotted instance: same output, same cycles, and no re-translation.
func TestSnapshotPrimesWarmDBT(t *testing.T) {
	p := mustAssemble(t, hotLoopSrc)
	d := New(p, Options{TraceThreshold: 20})
	for i := 0; i < 3; i++ {
		if res := d.Run(nil, 10_000_000); res.Stop.Reason != cpu.StopHalt {
			t.Fatalf("warm-up run %d: %v", i, res.Stop)
		}
	}
	snap := d.Snapshot()
	if snap.CacheLen() != d.CacheLen() {
		t.Fatalf("snapshot cache %d != dbt cache %d", snap.CacheLen(), d.CacheLen())
	}

	warm := d.Run(nil, 10_000_000)
	clone := snap.NewDBT().Run(nil, 10_000_000)
	if clone.Stop != warm.Stop || clone.Cycles != warm.Cycles {
		t.Errorf("clone run (%v, %d cycles) != warm original (%v, %d cycles)",
			clone.Stop, clone.Cycles, warm.Stop, warm.Cycles)
	}
	if len(clone.Output) != len(warm.Output) || clone.Output[0] != warm.Output[0] {
		t.Errorf("clone output %v != %v", clone.Output, warm.Output)
	}
	if clone.Stats.BlocksTranslated != warm.Stats.BlocksTranslated ||
		clone.Stats.TracesFormed != warm.Stats.TracesFormed {
		t.Errorf("clone re-translated: stats %+v != %+v", clone.Stats, warm.Stats)
	}
}

// Mutations on a primed DBT (chaining, fresh translations under a faulty
// run) must stay local to that instance: the snapshot and its siblings are
// unaffected.
func TestSnapshotIsolation(t *testing.T) {
	p := mustAssemble(t, hotLoopSrc)

	// Cold snapshot: every clone starts empty and grows privately.
	cold := New(p, Options{}).Snapshot()
	c1 := cold.NewDBT()
	c1.Run(nil, 10_000_000)
	if c1.CacheLen() == 0 {
		t.Fatal("clone run translated nothing")
	}
	if cold.CacheLen() != 0 {
		t.Errorf("clone run grew the snapshot cache to %d", cold.CacheLen())
	}
	if c2 := cold.NewDBT(); c2.CacheLen() != 0 {
		t.Errorf("sibling clone starts with cache %d, want 0", c2.CacheLen())
	}

	// Warm snapshot: a faulty run (which may chain stubs in place and
	// translate wild targets) must not disturb later clones.
	d := New(p, Options{TraceThreshold: 20})
	for i := 0; i < 3; i++ {
		d.Run(nil, 10_000_000)
	}
	snap := d.Snapshot()
	want := snap.NewDBT().Run(nil, 10_000_000)

	f := &cpu.Fault{Kind: cpu.FaultOffsetBit, BranchIndex: 5, Bit: 9}
	snap.NewDBT().Run(f, 10_000_000)
	if !f.Fired {
		t.Fatal("fault did not fire")
	}

	after := snap.NewDBT().Run(nil, 10_000_000)
	if after.Cycles != want.Cycles || after.Output[0] != want.Output[0] {
		t.Errorf("faulty sibling leaked state: (%d cycles, %v) != (%d cycles, %v)",
			after.Cycles, after.Output, want.Cycles, want.Output)
	}
}

// The lazy liveness analysis must be computed once per snapshot and shared
// by every clone — including clones taken *before* the first Liveness call.
// The sync.Once lives on the Snapshot struct itself (which clones reference
// by pointer), so concurrent samples all observe the same *live.Info.
func TestSnapshotLivenessSharedAcrossClones(t *testing.T) {
	p := mustAssemble(t, hotLoopSrc)
	d := New(p, Options{})
	d.Run(nil, 10_000_000)
	snap := d.Snapshot()

	// Clones taken before any Liveness call.
	for i := 0; i < 4; i++ {
		snap.NewDBT()
	}

	const goroutines = 8
	infos := make([]*live.Info, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			infos[g] = snap.Liveness()
		}(g)
	}
	wg.Wait()
	if infos[0] == nil {
		t.Fatal("Liveness returned nil")
	}
	for g := 1; g < goroutines; g++ {
		if infos[g] != infos[0] {
			t.Fatalf("goroutine %d got a distinct liveness analysis: %p != %p",
				g, infos[g], infos[0])
		}
	}
	if again := snap.Liveness(); again != infos[0] {
		t.Fatalf("later call recomputed the analysis: %p != %p", again, infos[0])
	}
}
