// Package dbt implements the paper's dynamic binary translator: guest
// binaries are translated on demand, one basic block at a time, into a code
// cache in the target ISA (which has the extra registers the checking
// techniques need), executed by the simulated CPU, with block chaining,
// hot-trace formation, an indirect-branch lookup service, and
// self-modifying-code invalidation. Control-flow checking techniques plug
// in as Technique implementations that instrument every translated block.
package dbt

import (
	"repro/internal/isa"
)

// Policy selects where signature checks are placed (Section 6 of the
// paper). Signature updates are emitted in every block regardless: once the
// signature goes wrong it stays wrong, so sparse checking trades error
// report latency for speed.
type Policy int

// Checking policies, ordered by checking frequency.
const (
	// PolicyAllBB checks the signature in every basic block.
	PolicyAllBB Policy = iota
	// PolicyRetBE checks in blocks with back edges and blocks with return
	// instructions, bounding report latency even inside loops.
	PolicyRetBE
	// PolicyRet checks only in blocks with return instructions.
	PolicyRet
	// PolicyEnd checks only at the end of the application.
	PolicyEnd
)

var policyNames = [...]string{"ALLBB", "RET-BE", "RET", "END"}

// String names the policy as the paper does.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return "policy(?)"
}

// Policies lists all checking policies in paper order.
func Policies() []Policy { return []Policy{PolicyAllBB, PolicyRetBE, PolicyRet, PolicyEnd} }

// UpdateStyle selects the instruction used for the conditional signature
// update at two-way branches (the paper's Figure 14 comparison).
type UpdateStyle int

// Update styles.
const (
	// UpdateJcc duplicates the conditional branch to pick the successor
	// signature: cheap, but the duplicate branch is itself a new fault
	// site ("unsafe" for EdgCF/ECF; RCF's regions protect it).
	UpdateJcc UpdateStyle = iota
	// UpdateCmov selects the successor signature with a conditional move:
	// no new branch, but cmov costs more (Figure 8).
	UpdateCmov
)

// String names the update style as the paper does.
func (s UpdateStyle) String() string {
	if s == UpdateJcc {
		return "Jcc"
	}
	return "CMOVcc"
}

// TermKind classifies a guest block terminator for instrumentation.
type TermKind int

// Terminator kinds.
const (
	TermFall  TermKind = iota // block falls through into a leader
	TermJmp                   // unconditional direct jump
	TermCond                  // conditional direct branch
	TermCall                  // direct call (pushes guest return address)
	TermRet                   // return (indirect)
	TermJmpR                  // indirect jump through a register
	TermCallR                 // indirect call through a register
	TermHalt                  // program end
)

// TermInfo describes the control transfer a technique must emit at the end
// of a translated block.
type TermInfo struct {
	Kind TermKind
	// Cond is the branch condition for TermCond.
	Cond isa.Cond
	// Taken is the guest target of the branch/jump/call (TermJmp, TermCond,
	// TermCall).
	Taken uint32
	// Fall is the guest fall-through address (TermFall, TermCond; for
	// TermCall and TermCallR it is the guest return address).
	Fall uint32
	// Reg is the target register for TermJmpR/TermCallR.
	Reg isa.Reg
}

// Technique instruments translated blocks with signature generation and
// checking code. Implementations live in internal/check; the DBT itself
// only knows the plug points.
//
// Register convention: techniques may freely use isa.RegPC, isa.RegRTS,
// isa.RegAUX and isa.RegSCR (target-only registers invisible to the guest)
// and must not modify guest registers or the flags register.
type Technique interface {
	// Name identifies the technique ("EdgCF", "RCF", "ECF", "none").
	Name() string
	// Prologue returns the register initializations that establish the
	// signature invariant before the entry block runs. The runtime applies
	// them directly: translator-owned setup lives outside the code cache,
	// exactly as a real DBT's runtime is outside the guest-reachable
	// address space (so a wild branch cannot land on a signature-reset
	// gadget).
	Prologue(entry uint32) []RegInit
	// EmitHead emits block-entry instrumentation for the guest block
	// starting at guestStart. check selects whether this block verifies
	// the signature (per Policy) in addition to updating it.
	EmitHead(e *Emitter, guestStart uint32, check bool)
	// EmitTail emits the signature update for the transition described by
	// term plus the control transfer itself, using the Emitter's exit
	// helpers. The technique owns the terminator so that Jcc-style updates
	// can fold the update into the branch.
	EmitTail(e *Emitter, guestStart uint32, term TermInfo)
	// EmitFinalCheck emits a signature check immediately before program
	// exit (used by every policy so END has at least one check).
	EmitFinalCheck(e *Emitter, guestStart uint32)
}

// BodyTransform rewrites the straight-line body instructions of translated
// blocks — the plug point for data-flow checking (SWIFT-style instruction
// duplication), which the paper lists as future work. It composes with any
// control-flow Technique: the transform owns the block bodies, the
// technique owns heads and tails.
type BodyTransform interface {
	// Name identifies the transform.
	Name() string
	// Prologue returns register initializations applied by the runtime
	// before entry (e.g. zeroing the shadow registers).
	Prologue() []RegInit
	// TransformBody emits the replacement for one guest body instruction.
	TransformBody(e *Emitter, in isa.Instr)
}

// SigOf maps a guest block address to its signature. The paper uses "the
// address of the first instruction in a basic block as the basic block
// signature" so the indirect-branch address-to-signature mapping is free;
// the +1 keeps every signature nonzero, which the EdgCF algebra requires
// (tail regions are represented by zero).
func SigOf(guestStart uint32) int32 { return int32(guestStart) + 1 }

// RegInit is one register initialization performed by the runtime before
// entering translated code.
type RegInit struct {
	Reg isa.Reg
	Val int32
}

// None is the identity technique: plain translation with no checking. It
// is the baseline against which the paper reports slowdowns.
type None struct{}

// Name implements Technique.
func (None) Name() string { return "none" }

// Prologue implements Technique.
func (None) Prologue(uint32) []RegInit { return nil }

// EmitHead implements Technique.
func (None) EmitHead(*Emitter, uint32, bool) {}

// EmitFinalCheck implements Technique.
func (None) EmitFinalCheck(*Emitter, uint32) {}

// EmitTail implements Technique: it only performs the control transfer.
func (None) EmitTail(e *Emitter, guestStart uint32, term TermInfo) {
	EmitPlainTail(e, term)
}

// EmitPlainTail emits the un-instrumented control transfer for term. It is
// exported so techniques can fall back to it for transfers they do not
// specialize.
func EmitPlainTail(e *Emitter, term TermInfo) {
	switch term.Kind {
	case TermFall:
		e.ExitDirect(term.Fall)
	case TermJmp:
		e.ExitDirect(term.Taken)
	case TermCond:
		// Taken arm first, fall arm last (layout contract; see Emitter).
		f := e.JccFwd(term.Cond.Negate())
		e.ExitDirect(term.Taken)
		e.Bind(f)
		e.ExitDirect(term.Fall)
	case TermCall:
		e.PushGuestReturn(term.Fall)
		e.ExitDirect(term.Taken)
	case TermRet:
		e.Emit(isa.Instr{Op: isa.OpPop, RD: isa.RegSCR})
		e.ExitIndirect()
	case TermJmpR:
		e.Emit(isa.Instr{Op: isa.OpMovRR, RD: isa.RegSCR, RS1: term.Reg})
		e.ExitIndirect()
	case TermCallR:
		e.Emit(isa.Instr{Op: isa.OpMovRR, RD: isa.RegSCR, RS1: term.Reg})
		e.PushGuestReturn(term.Fall)
		e.ExitIndirect()
	case TermHalt:
		e.Emit(isa.Instr{Op: isa.OpHalt})
	}
}
