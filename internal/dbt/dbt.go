package dbt

import (
	"fmt"

	"repro/internal/comp"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Options configures a DBT instance.
type Options struct {
	// Technique is the control-flow checking instrumentation; nil means
	// plain translation (the paper's baseline).
	Technique Technique
	// Policy selects check placement (ALLBB by default).
	Policy Policy
	// Backend selects the execution engine driving translated code:
	// BackendStep (per-step interpreter), BackendPlan (predecoded hot
	// loop) or BackendCompile (block-compiled with direct chaining).
	// The zero value BackendAuto resolves to the compiled backend. All
	// backends are byte-identical in architectural state, counters and
	// output — the choice only moves wall-clock.
	Backend comp.Backend
	// NoChaining disables block chaining: every inter-block transfer
	// dispatches through the translator (ablation knob).
	NoChaining bool
	// TraceThreshold is the back-edge dispatch count that triggers hot
	// trace formation; 0 means the default (16), negative disables the
	// trace backend.
	TraceThreshold int
	// Costs overrides the cost model (default cpu.DefaultCosts).
	Costs *cpu.CostModel
	// Body, when non-nil, rewrites block bodies (data-flow checking).
	Body BodyTransform
	// Trace, when non-nil, receives structured translator events (block
	// translated, stub dispatched, chain patched, trace formed, cache
	// invalidated, check sites) plus the machine's fault/check events.
	// The nil fast path costs one branch per instrumented site.
	Trace *obs.Tracer
}

const defaultTraceThreshold = 16

// maxBlockScan caps how many guest instructions one translated block may
// cover (a safety net for malformed images).
const maxBlockScan = 1 << 14

// TBlock is one translated unit in the code cache: a basic block or a hot
// trace (superblock).
type TBlock struct {
	GuestStart uint32
	GuestEnd   uint32 // exclusive; for traces, the end of the first block
	CacheStart uint32
	CacheEnd   uint32 // exclusive
	Checked    bool   // whether the policy placed a signature check here
	IsTrace    bool
	// GuestBlocks lists the guest block start addresses merged into this
	// unit (length 1 for plain blocks).
	GuestBlocks []uint32
}

func (t *TBlock) String() string {
	kind := "block"
	if t.IsTrace {
		kind = "trace"
	}
	return fmt.Sprintf("%s guest=0x%x cache=[0x%x,0x%x)", kind, t.GuestStart, t.CacheStart, t.CacheEnd)
}

// Stats accumulates translator activity over a DBT's lifetime.
type Stats struct {
	BlocksTranslated      int
	GuestInstrsTranslated uint64
	TracesFormed          int
	Dispatches            uint64
	IndirectLookups       uint64
	Invalidations         int
	// CheckSites counts emitted signature-check sequences (technique
	// instrumentation sites, not executions).
	CheckSites int
}

// Add accumulates o into s (campaign reports sum per-sample deltas).
func (s *Stats) Add(o Stats) {
	s.BlocksTranslated += o.BlocksTranslated
	s.GuestInstrsTranslated += o.GuestInstrsTranslated
	s.TracesFormed += o.TracesFormed
	s.Dispatches += o.Dispatches
	s.IndirectLookups += o.IndirectLookups
	s.Invalidations += o.Invalidations
	s.CheckSites += o.CheckSites
}

// Sub returns s minus base: the activity that happened after base was
// captured (e.g. one sample's work on a snapshot clone).
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		BlocksTranslated:      s.BlocksTranslated - base.BlocksTranslated,
		GuestInstrsTranslated: s.GuestInstrsTranslated - base.GuestInstrsTranslated,
		TracesFormed:          s.TracesFormed - base.TracesFormed,
		Dispatches:            s.Dispatches - base.Dispatches,
		IndirectLookups:       s.IndirectLookups - base.IndirectLookups,
		Invalidations:         s.Invalidations - base.Invalidations,
		CheckSites:            s.CheckSites - base.CheckSites,
	}
}

// Structural reports whether the stats record translator activity that
// mutates shared state — translations, trace formation, dispatch (stub
// counters, chain patches) or invalidations. Indirect-branch lookups are
// excluded: they are pure counter traffic that every execution performs
// identically, leaving the cache byte-for-byte intact. The checkpoint
// engine uses this to decide whether a clean run's boundaries are
// restorable into pristine snapshot clones.
func (s Stats) Structural() bool {
	s.IndirectLookups = 0
	return s != Stats{}
}

// Publish adds the stats as counters to reg (nil-safe), labeled with the
// technique name.
func (s Stats) Publish(reg *obs.Registry, technique string) {
	if reg == nil {
		return
	}
	l := fmt.Sprintf("{technique=%q}", technique)
	reg.Counter("dbt_blocks_translated_total" + l).Add(uint64(s.BlocksTranslated))
	reg.Counter("dbt_guest_instrs_translated_total" + l).Add(s.GuestInstrsTranslated)
	reg.Counter("dbt_traces_formed_total" + l).Add(uint64(s.TracesFormed))
	reg.Counter("dbt_dispatches_total" + l).Add(s.Dispatches)
	reg.Counter("dbt_indirect_lookups_total" + l).Add(s.IndirectLookups)
	reg.Counter("dbt_invalidations_total" + l).Add(uint64(s.Invalidations))
	reg.Counter("dbt_check_sites_total" + l).Add(uint64(s.CheckSites))
}

// Result describes one completed execution under the DBT.
type Result struct {
	Stop   cpu.Stop
	Cycles uint64
	Steps  uint64
	Output []int32
	Stats  Stats
	// DirectBranches counts executed direct branches (the fault-site space
	// for injection campaigns).
	DirectBranches uint64
	// CacheSize is the code cache size in instructions at the end of the
	// run.
	CacheSize int
	// SigChecks counts executed signature-check branches during the run.
	SigChecks uint64
	// Comp is the compiled-backend activity accumulated on this DBT (zero
	// when an interpreter backend ran). Snapshot clones start from zero,
	// so a sample's Result.Comp is that sample's own work.
	Comp comp.Stats
}

// Detected reports whether the run ended with an error detection, either
// by a software signature check or by the hardware protection.
func (r *Result) Detected() bool {
	return r.Stop.Reason == cpu.StopReport || r.Stop.Reason.IsHardwareTrap()
}

// DBT is the dynamic binary translator. One instance serves one guest
// program; the code cache persists across Run calls (warm runs skip
// translation).
type DBT struct {
	prog *isa.Program
	opts Options
	tech Technique

	cache  []isa.Instr
	blocks map[uint32]*TBlock // guest start -> current preferred translation
	// snapBlocks is the read-only block map shared with the Snapshot this
	// DBT was primed from. Clones start with a nil owned map and resolve
	// lookups against the shared one; the first structural change (a new
	// translation, a trace, an invalidation) materializes a private copy.
	// Most fault-injection samples never translate a block, so the lazy
	// map removes a per-clone O(blocks) copy from the campaign hot path.
	snapBlocks map[uint32]*TBlock
	tlist      []*TBlock // cache order
	stubs      []stub

	// plan is the predecoded execution plan over the code cache, kept in
	// lockstep with it: synced before every interpreter entry, re-decoded
	// at chain-patched slots, shared copy-on-write between snapshot clones.
	plan cpu.Plan

	// comp is the block-compiled execution engine over the code cache
	// (nil when Options.Backend selects an interpreter tier). The owning
	// DBT's engine compiles adaptively; snapshot clones share a frozen
	// core read-only (see Snapshot).
	comp *comp.Engine

	// pendingCycles accrues translation cost until the next time the
	// machine is available to charge it.
	pendingCycles uint64

	stats Stats
}

// normalizeOptions fills the zero-value defaults New documents: technique
// None, the default trace threshold and the default cost model. Restoring
// a snapshot from a portable image applies the same normalization so a
// restored translator behaves exactly like a locally-built one.
func normalizeOptions(opts Options) Options {
	if opts.Technique == nil {
		opts.Technique = None{}
	}
	if opts.TraceThreshold == 0 {
		opts.TraceThreshold = defaultTraceThreshold
	}
	if opts.Costs == nil {
		opts.Costs = cpu.DefaultCosts()
	}
	return opts
}

// New prepares a translator for program p.
func New(p *isa.Program, opts Options) *DBT {
	opts = normalizeOptions(opts)
	d := &DBT{
		prog:   p,
		opts:   opts,
		tech:   opts.Technique,
		blocks: make(map[uint32]*TBlock),
		plan:   cpu.NewPlan(nil, opts.Costs),
	}
	if opts.Backend.Compiled() {
		d.comp = comp.NewEngine(nil, opts.Costs, 0)
	}
	return d
}

// Prog returns the guest program.
func (d *DBT) Prog() *isa.Program { return d.prog }

// StatsSnapshot returns a copy of the translator statistics accumulated so
// far.
func (d *DBT) StatsSnapshot() Stats { return d.stats }

// CompStats returns a copy of the compiled-backend statistics accumulated
// on this DBT so far (zero for interpreter backends).
func (d *DBT) CompStats() comp.Stats {
	if d.comp == nil {
		return comp.Stats{}
	}
	return d.comp.Stats
}

// CacheLen returns the current code cache size in instructions.
func (d *DBT) CacheLen() int { return len(d.cache) }

// Run executes the guest program under the translator. fault, when
// non-nil, plants a single transient fault (see cpu.Fault). maxSteps bounds
// execution (a control-flow error can loop forever).
func (d *DBT) Run(fault *cpu.Fault, maxSteps uint64) *Result {
	m, res := d.Start(fault)
	if res != nil {
		return res
	}
	return d.Finish(m, d.Advance(m, maxSteps))
}

// Start prepares a machine for a run under the translator: reset, entry
// translation, the pending-translation cycle charge, and the technique
// prologue. It returns the machine positioned at the translated entry, or
// a non-nil Result when the program cannot even start (unmappable entry).
// Run is Start + Advance + Finish; the checkpoint recorder drives the
// pieces separately so it can interleave captures at step boundaries.
func (d *DBT) Start(fault *cpu.Fault) (*cpu.Machine, *Result) {
	m := cpu.New()
	m.Costs = d.opts.Costs
	m.Reset(d.prog)
	m.Fault = fault

	entry, err := d.ensure(d.prog.Entry)
	if err != nil {
		return nil, d.result(m, cpu.Stop{Reason: cpu.StopBadFetch, Detail: err.Error()})
	}
	m.Cycles += d.pendingCycles
	d.pendingCycles = 0
	// Translator-side prologue: signature registers are initialized by the
	// runtime, outside the guest-reachable code cache.
	for _, ri := range d.tech.Prologue(d.prog.Entry) {
		m.Regs[ri.Reg] = ri.Val
	}
	if d.opts.Body != nil {
		for _, ri := range d.opts.Body.Prologue() {
			m.Regs[ri.Reg] = ri.Val
		}
	}
	m.IP = entry.CacheStart
	return m, nil
}

// Resume primes a machine that was restored from a checkpoint to continue
// under this translator: the cost model is attached, the skipped prefix's
// translator work (stats accumulated by the reference run up to the
// checkpoint) is credited, and any pending translation charge is dropped —
// the restored machine's cycle counter already includes it, exactly as a
// full replay would have charged it at Start.
func (d *DBT) Resume(m *cpu.Machine, prefix Stats) {
	m.Costs = d.opts.Costs
	d.stats.Add(prefix)
	d.pendingCycles = 0
}

// Advance executes translated code on m until a terminal stop or until the
// absolute step budget maxSteps is exhausted, servicing dispatch and
// indirect-lookup traps along the way. A StopOutOfSteps return leaves the
// machine at a clean instruction boundary; calling Advance again with a
// larger budget continues the run exactly where it left off (the
// checkpoint recorder uses this to pause at capture points).
func (d *DBT) Advance(m *cpu.Machine, maxSteps uint64) cpu.Stop {
	for {
		d.plan.Sync(d.cache)
		var stop cpu.Stop
		switch d.opts.Backend {
		case comp.BackendStep:
			stop = m.Run(d.cache, maxSteps)
		case comp.BackendPlan:
			stop = m.RunPlan(&d.plan, maxSteps)
		default: // BackendAuto, BackendCompile
			d.comp.Sync(d.cache)
			stop = d.comp.Run(m, &d.plan, maxSteps)
		}
		if stop.Reason != cpu.StopTrapOut {
			return stop
		}
		in := d.cache[stop.IP]
		if in.Imm == indirectStub {
			// Indirect-branch lookup service: the guest target address is
			// in SCR; map it to (and if needed translate) its cache block.
			m.Cycles += uint64(d.opts.Costs.IndirectLookup)
			d.stats.IndirectLookups++
			target := uint32(m.Regs[isa.RegSCR])
			tb, err := d.ensure(target)
			if err != nil {
				// The "address" is not executable guest code: hardware
				// protection catches the stray transfer.
				return cpu.Stop{Reason: cpu.StopBadFetch, IP: stop.IP, Detail: err.Error()}
			}
			m.Cycles += d.pendingCycles
			d.pendingCycles = 0
			m.IP = tb.CacheStart
			continue
		}
		// Direct-edge dispatch through a chaining stub.
		s := &d.stubs[in.Imm]
		m.Cycles += uint64(d.opts.Costs.DispatchCost)
		d.stats.Dispatches++
		s.count++
		if d.opts.Trace != nil {
			d.opts.Trace.Emit(obs.Event{
				Kind: obs.EvStubDispatch, Step: m.Steps,
				Guest: s.guest, Addr: s.slot, Value: int64(s.count),
			})
		}
		tb, err := d.ensure(s.guest)
		if err != nil {
			return cpu.Stop{Reason: cpu.StopBadFetch, IP: stop.IP, Detail: err.Error()}
		}
		// Back-edge stubs are the frontend's profiling points: they keep
		// dispatching (counting) until the hot threshold fires the trace
		// backend, and only then chain — to the freshly built trace.
		profiling := s.backEdge && d.opts.TraceThreshold > 0 && !tb.IsTrace
		if profiling && s.count >= d.opts.TraceThreshold {
			if tr := d.formTrace(s.guest); tr != nil {
				tb = tr
			}
			profiling = false
		}
		m.Cycles += d.pendingCycles
		d.pendingCycles = 0
		if !d.opts.NoChaining && !profiling {
			// Patch the stub slot into a direct jump; later executions of
			// this edge bypass the translator entirely. When the stub was
			// reached through a branch, re-point the branch itself so the
			// chained transfer costs nothing extra.
			d.cache[s.slot] = isa.Instr{Op: isa.OpJmp, Imm: isa.OffsetFor(s.slot, tb.CacheStart)}
			// The patch changes the slot's opcode (trapout -> jmp), so its
			// predecoded metadata must follow; the referrer patch below is
			// immediate-only and needs none.
			d.plan.Sync(d.cache)
			d.plan.Redecode(s.slot)
			// The compiled backend bakes opcodes AND immediates into its
			// uop arrays, so unlike the plan it must drop blocks at both
			// patch sites: the rewritten stub slot and the referring
			// branch whose target immediate changes below.
			d.comp.Redecode(s.slot)
			if s.referrer != noReferrer {
				d.cache[s.referrer].Imm = isa.OffsetFor(s.referrer, tb.CacheStart)
				d.comp.Redecode(s.referrer)
			}
			s.chained = true
			if d.opts.Trace != nil {
				d.opts.Trace.Emit(obs.Event{
					Kind: obs.EvChainPatch, Step: m.Steps,
					Guest: s.guest, Addr: s.slot,
				})
			}
		}
		m.IP = tb.CacheStart
	}
}

// Finish packages a completed execution into a Result and emits the
// post-run machine events (fault fired, check failed).
func (d *DBT) Finish(m *cpu.Machine, stop cpu.Stop) *Result {
	return d.result(m, stop)
}

func (d *DBT) result(m *cpu.Machine, stop cpu.Stop) *Result {
	cpu.TraceRunOutcome(d.opts.Trace, m, stop)
	st := d.stats
	r := &Result{
		Stop:           stop,
		Cycles:         m.Cycles,
		Steps:          m.Steps,
		Output:         append([]int32(nil), m.Output...),
		Stats:          st,
		DirectBranches: m.DirectBranches,
		CacheSize:      len(d.cache),
		SigChecks:      m.SigChecks,
	}
	if d.comp != nil {
		r.Comp = d.comp.Stats
	}
	return r
}

// lookupBlock resolves a guest address against the owned block map, falling
// back to the shared snapshot map when the clone has not yet been
// materialized (see snapBlocks).
func (d *DBT) lookupBlock(guest uint32) (*TBlock, bool) {
	if tb, ok := d.blocks[guest]; ok {
		return tb, true
	}
	tb, ok := d.snapBlocks[guest]
	return tb, ok
}

// setBlock records a (re)translation, materializing a private copy of the
// shared snapshot map on the first structural change.
func (d *DBT) setBlock(guest uint32, tb *TBlock) {
	if d.blocks == nil {
		d.blocks = make(map[uint32]*TBlock, len(d.snapBlocks)+1)
		for g, b := range d.snapBlocks {
			d.blocks[g] = b
		}
		d.snapBlocks = nil
	}
	d.blocks[guest] = tb
}

// ensure returns the translation of the guest block starting at guest,
// translating it now if needed.
func (d *DBT) ensure(guest uint32) (*TBlock, error) {
	if tb, ok := d.lookupBlock(guest); ok {
		return tb, nil
	}
	if !d.prog.Contains(guest) {
		return nil, fmt.Errorf("guest address 0x%x outside code", guest)
	}
	return d.translate(guest), nil
}

// scanBlock decodes the guest block starting at guest: the instruction
// range, the terminator description, and the address of the terminator.
func (d *DBT) scanBlock(guest uint32) (end uint32, term TermInfo) {
	p := d.prog
	addr := guest
	for n := 0; n < maxBlockScan; n++ {
		if addr >= p.Len() {
			// Fell off the code image; executing past the end traps, which
			// the runtime turns into a hardware detection.
			return addr, TermInfo{Kind: TermFall, Fall: addr}
		}
		in := p.Code[addr]
		if in.Op.IsTerminator() {
			switch in.Op {
			case isa.OpJmp:
				return addr + 1, TermInfo{Kind: TermJmp, Taken: in.Target(addr)}
			case isa.OpJcc:
				return addr + 1, TermInfo{Kind: TermCond, Cond: in.Cond(), Taken: in.Target(addr), Fall: addr + 1}
			case isa.OpJrz:
				// Guest jrz is a conditional branch on a register; translate
				// it as a register-zero conditional (rare in guest code).
				return addr + 1, TermInfo{Kind: TermCond, Cond: isa.CondEQ, Taken: in.Target(addr), Fall: addr + 1}
			case isa.OpCall:
				return addr + 1, TermInfo{Kind: TermCall, Taken: in.Target(addr), Fall: addr + 1}
			case isa.OpRet:
				return addr + 1, TermInfo{Kind: TermRet}
			case isa.OpJmpR:
				return addr + 1, TermInfo{Kind: TermJmpR, Reg: in.RS1}
			case isa.OpCallR:
				return addr + 1, TermInfo{Kind: TermCallR, Reg: in.RS1, Fall: addr + 1}
			case isa.OpHalt:
				return addr + 1, TermInfo{Kind: TermHalt}
			}
		}
		addr++
	}
	return addr, TermInfo{Kind: TermFall, Fall: addr}
}

// jrz guest blocks: the scan above translates OpJrz with CondEQ, but the
// condition must come from the tested register, not the flags. The body
// copy handles this by materializing a compare; see translateBody.

// checkedByPolicy decides whether the block gets a signature check.
func (d *DBT) checkedByPolicy(guestStart uint32, end uint32, term TermInfo) bool {
	switch d.opts.Policy {
	case PolicyAllBB:
		return true
	case PolicyRetBE:
		if term.Kind == TermRet {
			return true
		}
		if (term.Kind == TermJmp || term.Kind == TermCond) && term.Taken <= end-1 {
			return true
		}
		return false
	case PolicyRet:
		return term.Kind == TermRet
	default: // PolicyEnd
		return false
	}
}

// translate emits the guest block starting at guest into the code cache.
func (d *DBT) translate(guest uint32) *TBlock {
	end, term := d.scanBlock(guest)
	tb := &TBlock{
		GuestStart:  guest,
		GuestEnd:    end,
		CacheStart:  uint32(len(d.cache)),
		GuestBlocks: []uint32{guest},
	}
	// Register before emitting the tail so self-loops chain to themselves.
	d.setBlock(guest, tb)
	d.tlist = append(d.tlist, tb)

	e := &Emitter{d: d}
	d.emitOne(e, guest, end, term)
	tb.Checked = d.checkedByPolicy(guest, end, term)
	tb.CacheEnd = uint32(len(d.cache))
	d.stats.BlocksTranslated++
	d.stats.GuestInstrsTranslated += uint64(end - guest)
	if d.opts.Trace != nil {
		d.opts.Trace.Emit(obs.Event{
			Kind: obs.EvBlockTranslated, Guest: guest,
			Addr: tb.CacheStart, Len: tb.CacheEnd - tb.CacheStart, Checked: tb.Checked,
		})
	}
	// Translation cost accrues into a pending pool; the run loop charges it
	// to the machine at the dispatch that triggered translation.
	d.pendingCycles += uint64(d.opts.Costs.TranslateUnit) * uint64(tb.CacheEnd-tb.CacheStart)
	return tb
}

// emitOne emits head instrumentation, the block body, and the instrumented
// tail for one guest block.
func (d *DBT) emitOne(e *Emitter, guest, end uint32, term TermInfo) {
	check := d.checkedByPolicy(guest, end, term)
	d.tech.EmitHead(e, guest, check)

	bodyEnd := end
	if term.Kind != TermFall {
		bodyEnd = end - 1 // terminator is re-emitted by the technique
	}
	for a := guest; a < bodyEnd; a++ {
		in := d.prog.Code[a]
		if in.Op == isa.OpHalt {
			// Unreachable: halt is a terminator.
			continue
		}
		if d.opts.Body != nil {
			d.opts.Body.TransformBody(e, in)
			continue
		}
		e.Emit(in)
	}
	if term.Kind == TermCond && d.prog.Contains(end-1) && d.prog.Code[end-1].Op == isa.OpJrz {
		// Rewrite guest jrz into a flags-based conditional the techniques
		// can instrument: test the register and branch on EQ.
		r := d.prog.Code[end-1].RS1
		e.Emit(isa.Instr{Op: isa.OpCmpI, RD: r, Imm: 0})
	}
	if term.Kind == TermHalt {
		d.tech.EmitFinalCheck(e, guest)
	}
	preStubs := len(d.stubs)
	d.tech.EmitTail(e, guest, term)
	// Mark loop-closing stubs for the hot-trace trigger.
	for i := preStubs; i < len(d.stubs); i++ {
		if d.stubs[i].guest <= guest {
			d.stubs[i].backEdge = true
		}
	}
}

// Locate maps a cache address to its translated block, if any. The fault
// injector uses this to classify wild branch targets into the paper's
// categories.
func (d *DBT) Locate(cacheAddr uint32) (*TBlock, bool) {
	// tlist is in cache order; binary search the containing range.
	lo, hi := 0, len(d.tlist)
	for lo < hi {
		mid := (lo + hi) / 2
		tb := d.tlist[mid]
		switch {
		case cacheAddr < tb.CacheStart:
			hi = mid
		case cacheAddr >= tb.CacheEnd:
			lo = mid + 1
		default:
			return tb, true
		}
	}
	return nil, false
}

// Invalidate flushes the entire code cache. The paper's translator removes
// translations whose guest code was overwritten (detected by write
// protection); this implementation models the recovery with a full flush,
// after which execution naturally retranslates on demand.
func (d *DBT) Invalidate() {
	d.opts.Trace.Emit(obs.Event{Kind: obs.EvCacheInvalidate, Value: int64(len(d.cache))})
	d.cache = nil
	d.blocks = make(map[uint32]*TBlock)
	d.snapBlocks = nil
	d.tlist = nil
	d.stubs = nil
	d.plan.Sync(nil)
	d.comp.Sync(nil)
	d.stats.Invalidations++
}

// SelfModify overwrites one guest instruction, modeling self-modifying
// code: the write triggers the (simulated) write-protection fault and the
// translator drops stale translations.
func (d *DBT) SelfModify(addr uint32, in isa.Instr) error {
	if !d.prog.Contains(addr) {
		return fmt.Errorf("self-modify outside code: 0x%x", addr)
	}
	d.prog.Code[addr] = in
	d.Invalidate()
	return nil
}

// CacheInstr returns the translated instruction at a cache address, for
// diagnostics.
func (d *DBT) CacheInstr(addr uint32) isa.Instr {
	if addr < uint32(len(d.cache)) {
		return d.cache[addr]
	}
	return isa.Instr{}
}
