package dbt

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const sumSrc = `
main:
    movi eax, 0
    movi ecx, 10
loop:
    add eax, ecx
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
`

func TestPlainTranslationMatchesNative(t *testing.T) {
	p := mustAssemble(t, sumSrc)
	native := cpu.New()
	nstop := native.RunProgram(p, 1_000_000)
	if nstop.Reason != cpu.StopHalt {
		t.Fatalf("native stop = %v", nstop)
	}

	d := New(p, Options{})
	res := d.Run(nil, 1_000_000)
	if res.Stop.Reason != cpu.StopHalt {
		t.Fatalf("dbt stop = %v", res.Stop)
	}
	if len(res.Output) != 1 || res.Output[0] != 55 {
		t.Errorf("dbt output = %v, want [55]", res.Output)
	}
	if res.Stats.BlocksTranslated == 0 {
		t.Error("no blocks translated")
	}
	// The DBT must cost more cycles than native (translation + dispatch)
	// but not wildly more on this tiny program.
	if res.Cycles <= native.Cycles {
		t.Errorf("dbt cycles %d <= native %d", res.Cycles, native.Cycles)
	}
}

// outputsOf runs a program natively and returns its output (must halt).
func outputsOf(t *testing.T, p *isa.Program) []int32 {
	t.Helper()
	m := cpu.New()
	if stop := m.RunProgram(p, 50_000_000); stop.Reason != cpu.StopHalt {
		t.Fatalf("native stop = %v", stop)
	}
	return append([]int32(nil), m.Output...)
}

const callSrc = `
.data 64
main:
    movi eax, 3
    call work
    call work
    out eax
    halt
work:
    push ebx
    movi ebx, 2
    mul eax, ebx
    pop ebx
    ret
`

func TestCallRetUnderDBT(t *testing.T) {
	p := mustAssemble(t, callSrc)
	want := outputsOf(t, p)
	d := New(p, Options{})
	res := d.Run(nil, 1_000_000)
	if res.Stop.Reason != cpu.StopHalt {
		t.Fatalf("stop = %v", res.Stop)
	}
	if len(res.Output) != len(want) || res.Output[0] != want[0] {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
	if res.Stats.IndirectLookups == 0 {
		t.Error("rets must use the indirect lookup service")
	}
}

const indirectSrc = `
main:
    movi ecx, =fn2
    callr ecx
    movi ecx, =fn1
    callr ecx
    out eax
    halt
fn1:
    addi eax, 1
    ret
fn2:
    addi eax, 10
    ret
`

func TestIndirectCallsUnderDBT(t *testing.T) {
	p := mustAssemble(t, indirectSrc)
	want := outputsOf(t, p)
	d := New(p, Options{})
	res := d.Run(nil, 1_000_000)
	if res.Stop.Reason != cpu.StopHalt {
		t.Fatalf("stop = %v", res.Stop)
	}
	if res.Output[0] != want[0] {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestWarmRunsSkipTranslation(t *testing.T) {
	p := mustAssemble(t, sumSrc)
	d := New(p, Options{})
	r1 := d.Run(nil, 1_000_000)
	blocks := d.StatsSnapshot().BlocksTranslated
	r2 := d.Run(nil, 1_000_000)
	if d.StatsSnapshot().BlocksTranslated != blocks {
		t.Error("warm run retranslated blocks")
	}
	if r2.Output[0] != r1.Output[0] {
		t.Error("warm run output differs")
	}
	// Warm run avoids translation cycles.
	if r2.Cycles >= r1.Cycles {
		t.Errorf("warm cycles %d >= cold %d", r2.Cycles, r1.Cycles)
	}
}

func TestChainingReducesDispatches(t *testing.T) {
	p := mustAssemble(t, sumSrc)
	chained := New(p, Options{}).Run(nil, 1_000_000)
	unchained := New(p, Options{NoChaining: true}).Run(nil, 1_000_000)
	if unchained.Stats.Dispatches <= chained.Stats.Dispatches {
		t.Errorf("dispatches: unchained %d <= chained %d",
			unchained.Stats.Dispatches, chained.Stats.Dispatches)
	}
	if unchained.Cycles <= chained.Cycles {
		t.Errorf("cycles: unchained %d <= chained %d", unchained.Cycles, chained.Cycles)
	}
	if unchained.Output[0] != chained.Output[0] {
		t.Error("chaining changed program output")
	}
}

const hotLoopSrc = `
main:
    movi eax, 0
    movi ecx, 500
loop:
    addi eax, 3
    subi eax, 1
    jmp step
step:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
`

func TestHotTraceFormation(t *testing.T) {
	p := mustAssemble(t, hotLoopSrc)
	want := outputsOf(t, p)

	d := New(p, Options{TraceThreshold: 20})
	res := d.Run(nil, 10_000_000)
	if res.Stop.Reason != cpu.StopHalt {
		t.Fatalf("stop = %v", res.Stop)
	}
	if res.Output[0] != want[0] {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
	if res.Stats.TracesFormed == 0 {
		t.Error("hot loop did not trigger trace formation")
	}

	noTraces := New(p, Options{TraceThreshold: -1}).Run(nil, 10_000_000)
	if noTraces.Stats.TracesFormed != 0 {
		t.Error("TraceThreshold<0 must disable traces")
	}
	if noTraces.Output[0] != want[0] {
		t.Error("trace-free run output differs")
	}
}

func TestTraceSpeedsUpHotLoop(t *testing.T) {
	// The loop body spans two blocks joined by an unconditional jump; the
	// trace merges them and removes the jump+transfer.
	src := `
main:
    movi eax, 0
    movi ecx, 2000
loop:
    addi eax, 1
    jmp second
second:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
`
	p := mustAssemble(t, src)
	with := New(p, Options{TraceThreshold: 10}).Run(nil, 10_000_000)
	without := New(p, Options{TraceThreshold: -1}).Run(nil, 10_000_000)
	if with.Output[0] != without.Output[0] {
		t.Fatal("trace changed output")
	}
	if with.Cycles >= without.Cycles {
		t.Errorf("trace run %d cycles >= non-trace %d", with.Cycles, without.Cycles)
	}
}

func TestSelfModifyingCode(t *testing.T) {
	src := `
main:
    movi eax, 1
    out eax
    halt
`
	p := mustAssemble(t, src)
	d := New(p, Options{})
	r1 := d.Run(nil, 1000)
	if r1.Output[0] != 1 {
		t.Fatalf("output = %v", r1.Output)
	}
	// The "program" overwrites its own movi with a different constant; the
	// write-protection model invalidates stale translations.
	if err := d.SelfModify(0, isa.Instr{Op: isa.OpMovRI, RD: isa.EAX, Imm: 42}); err != nil {
		t.Fatal(err)
	}
	r2 := d.Run(nil, 1000)
	if r2.Output[0] != 42 {
		t.Errorf("after self-modify output = %v, want [42]", r2.Output)
	}
	if d.StatsSnapshot().Invalidations != 1 {
		t.Error("invalidation not recorded")
	}
	if err := d.SelfModify(1_000_000, isa.Instr{}); err == nil {
		t.Error("out-of-range self-modify should fail")
	}
}

func TestWildGuestTargetTrapsLikeHardware(t *testing.T) {
	// An indirect call through a register holding a non-code address is
	// caught by the (simulated) execute protection.
	src := `
main:
    movi ecx, 99999
    callr ecx
    halt
`
	p := mustAssemble(t, src)
	d := New(p, Options{})
	res := d.Run(nil, 1000)
	if res.Stop.Reason != cpu.StopBadFetch {
		t.Fatalf("stop = %v, want bad-fetch", res.Stop)
	}
	if !res.Detected() {
		t.Error("hardware trap should count as detected")
	}
}

func TestLocate(t *testing.T) {
	p := mustAssemble(t, sumSrc)
	d := New(p, Options{})
	d.Run(nil, 1_000_000)
	found := 0
	for addr := uint32(0); addr < uint32(d.CacheLen()); addr++ {
		if tb, ok := d.Locate(addr); ok {
			found++
			if addr < tb.CacheStart || addr >= tb.CacheEnd {
				t.Fatalf("Locate(%d) = %v out of range", addr, tb)
			}
		}
	}
	if found == 0 {
		t.Fatal("Locate found nothing")
	}
	if _, ok := d.Locate(uint32(d.CacheLen()) + 100); ok {
		t.Error("Locate beyond cache should fail")
	}
}

func TestOutOfStepsPropagates(t *testing.T) {
	p := mustAssemble(t, "spin: jmp spin\n")
	d := New(p, Options{})
	res := d.Run(nil, 5000)
	if res.Stop.Reason != cpu.StopOutOfSteps {
		t.Fatalf("stop = %v", res.Stop)
	}
}

func TestPolicyNames(t *testing.T) {
	if PolicyAllBB.String() != "ALLBB" || PolicyRetBE.String() != "RET-BE" ||
		PolicyRet.String() != "RET" || PolicyEnd.String() != "END" {
		t.Error("policy names changed")
	}
	if len(Policies()) != 4 {
		t.Error("policy list wrong")
	}
	if UpdateJcc.String() != "Jcc" || UpdateCmov.String() != "CMOVcc" {
		t.Error("style names changed")
	}
}

func TestFallThroughBlocks(t *testing.T) {
	// A block split by a join leader falls through without a terminator.
	src := `
    cmpi eax, 0
    jeq skip
    addi eax, 1
skip:
    addi eax, 10
    out eax
    halt
`
	p := mustAssemble(t, src)
	want := outputsOf(t, p)
	res := New(p, Options{}).Run(nil, 1000)
	if res.Stop.Reason != cpu.StopHalt || res.Output[0] != want[0] {
		t.Errorf("stop=%v output=%v want %v", res.Stop, res.Output, want)
	}
}

func TestRunsOffCodeEndTraps(t *testing.T) {
	p := &isa.Program{Name: "falloff", Code: []isa.Instr{
		{Op: isa.OpMovRI, RD: isa.EAX, Imm: 1},
		{Op: isa.OpNop},
	}}
	d := New(p, Options{})
	res := d.Run(nil, 1000)
	if res.Stop.Reason != cpu.StopBadFetch {
		t.Fatalf("stop = %v, want bad-fetch", res.Stop)
	}
}
