package dbt

import (
	"fmt"
	"sort"

	"repro/internal/comp"
	"repro/internal/cpu"
	"repro/internal/isa"
)

// SnapshotState is the portable, plain-data image of a warm Snapshot:
// everything a fresh process needs to reconstruct the translated code
// cache, block map, chaining stubs and accumulated statistics without
// re-running the warm-up loop. It deliberately excludes the program (the
// artifact layer carries its content hash and the restoring process
// supplies its own copy) and the Options (interfaces — technique, policy,
// cost model — which the restorer rebuilds from its session key exactly
// as a local build would). The execution plan and the frozen compiled
// core are derived state: both are deterministic functions of the cache
// bytes and are rebuilt on restore.
type SnapshotState struct {
	// Cache is the translated code cache.
	Cache []isa.Instr
	// Blocks holds every translated unit in cache (tlist) order.
	Blocks []BlockState
	// BlockMap maps guest start addresses to indices into Blocks, sorted
	// by guest address so the encoding of one snapshot is deterministic.
	BlockMap []BlockRef
	// Stubs are the pending/chained control transfers with their
	// profiling counters.
	Stubs []StubState
	// PendingCycles is translation cost accrued but not yet charged.
	PendingCycles uint64
	// Stats is the owning translator's accumulated work — the campaign
	// baseline per-sample deltas are added to.
	Stats Stats
	// CompStats is the compiled-backend baseline captured at the freeze
	// (zero for interpreter backends).
	CompStats comp.Stats
}

// BlockState is the plain-data form of one TBlock.
type BlockState struct {
	GuestStart  uint32
	GuestEnd    uint32
	CacheStart  uint32
	CacheEnd    uint32
	Checked     bool
	IsTrace     bool
	GuestBlocks []uint32
}

// BlockRef is one guest-address → translated-unit edge of the block map.
type BlockRef struct {
	Guest uint32
	Index uint32 // index into SnapshotState.Blocks
}

// StubState is the plain-data form of one chaining stub.
type StubState struct {
	Guest    uint32
	Slot     uint32
	Referrer uint32
	Count    int64
	BackEdge bool
	Chained  bool
}

// State extracts the portable image of the snapshot. It fails only on a
// structurally inconsistent snapshot (a block-map entry pointing at a
// unit absent from the block list), which would indicate a translator
// bug — callers treat an error as "do not publish".
func (s *Snapshot) State() (*SnapshotState, error) {
	st := &SnapshotState{
		Cache:         append([]isa.Instr(nil), s.cache...),
		Blocks:        make([]BlockState, len(s.tlist)),
		BlockMap:      make([]BlockRef, 0, len(s.blocks)),
		Stubs:         make([]StubState, len(s.stubs)),
		PendingCycles: s.pendingCycles,
		Stats:         s.stats,
		CompStats:     s.compStats,
	}
	index := make(map[*TBlock]uint32, len(s.tlist))
	for i, tb := range s.tlist {
		index[tb] = uint32(i)
		st.Blocks[i] = BlockState{
			GuestStart:  tb.GuestStart,
			GuestEnd:    tb.GuestEnd,
			CacheStart:  tb.CacheStart,
			CacheEnd:    tb.CacheEnd,
			Checked:     tb.Checked,
			IsTrace:     tb.IsTrace,
			GuestBlocks: append([]uint32(nil), tb.GuestBlocks...),
		}
	}
	for guest, tb := range s.blocks {
		i, ok := index[tb]
		if !ok {
			return nil, fmt.Errorf("dbt: snapshot state: block for guest 0x%x not in translation list", guest)
		}
		st.BlockMap = append(st.BlockMap, BlockRef{Guest: guest, Index: i})
	}
	sort.Slice(st.BlockMap, func(a, b int) bool { return st.BlockMap[a].Guest < st.BlockMap[b].Guest })
	for i, sb := range s.stubs {
		st.Stubs[i] = StubState{
			Guest:    sb.guest,
			Slot:     sb.slot,
			Referrer: sb.referrer,
			Count:    int64(sb.count),
			BackEdge: sb.backEdge,
			Chained:  sb.chained,
		}
	}
	return st, nil
}

// RestoreSnapshot reconstructs a warm Snapshot from a portable image, for
// program p under opts. The caller must supply the same program bytes and
// an Options equivalent to the one the snapshot was captured under (the
// artifact layer enforces both through its fingerprint); opts is
// normalized exactly as New normalizes it. The execution plan is re-derived
// from the cache, and for compiled backends a fresh engine is frozen over
// the restored cache — compiled cores are a deterministic function of the
// cache bytes, so restored campaigns run the exact code a locally-built
// snapshot would.
func RestoreSnapshot(p *isa.Program, opts Options, st *SnapshotState) (*Snapshot, error) {
	opts = normalizeOptions(opts)
	cache := append([]isa.Instr(nil), st.Cache...)
	tlist := make([]*TBlock, len(st.Blocks))
	for i, b := range st.Blocks {
		if b.CacheStart > b.CacheEnd || int(b.CacheEnd) > len(cache) {
			return nil, fmt.Errorf("dbt: restore: block %d cache range [0x%x,0x%x) outside cache of %d",
				i, b.CacheStart, b.CacheEnd, len(cache))
		}
		tlist[i] = &TBlock{
			GuestStart:  b.GuestStart,
			GuestEnd:    b.GuestEnd,
			CacheStart:  b.CacheStart,
			CacheEnd:    b.CacheEnd,
			Checked:     b.Checked,
			IsTrace:     b.IsTrace,
			GuestBlocks: append([]uint32(nil), b.GuestBlocks...),
		}
	}
	blocks := make(map[uint32]*TBlock, len(st.BlockMap))
	for _, ref := range st.BlockMap {
		if int(ref.Index) >= len(tlist) {
			return nil, fmt.Errorf("dbt: restore: block ref 0x%x -> %d outside %d blocks",
				ref.Guest, ref.Index, len(tlist))
		}
		blocks[ref.Guest] = tlist[ref.Index]
	}
	stubs := make([]stub, len(st.Stubs))
	for i, sb := range st.Stubs {
		if int(sb.Slot) >= len(cache) {
			return nil, fmt.Errorf("dbt: restore: stub %d slot 0x%x outside cache of %d", i, sb.Slot, len(cache))
		}
		stubs[i] = stub{
			guest:    sb.Guest,
			slot:     sb.Slot,
			referrer: sb.Referrer,
			count:    int(sb.Count),
			backEdge: sb.BackEdge,
			chained:  sb.Chained,
		}
	}
	s := &Snapshot{
		prog:          p,
		opts:          opts,
		cache:         cache,
		blocks:        blocks,
		tlist:         tlist,
		stubs:         stubs,
		pendingCycles: st.PendingCycles,
		stats:         st.Stats,
	}
	s.plan = cpu.NewPlan(s.cache, opts.Costs)
	if opts.Backend.Compiled() {
		eng := comp.NewEngine(s.cache, opts.Costs, 0)
		eng.Freeze(compStartsFor(tlist, cache))
		s.comp = eng
		s.compStats = st.CompStats
	}
	return s, nil
}
