package dbt

import (
	"sync"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/live"
)

// Snapshot is a frozen copy of a translator's warm state: the code cache,
// the guest-to-translation map, the cache-ordered block list, the chaining
// stubs (including their profiling counters) and the accumulated stats.
// Snapshots exist so that fault-injection campaigns can fan samples across
// goroutines without each worker re-running the warm-up loop: every worker
// primes a private DBT from the snapshot and starts with the fully
// translated, chained and trace-formed cache.
//
// A Snapshot is immutable and safe for concurrent use. TBlocks are shared
// by pointer between the snapshot and every DBT primed from it — they are
// never mutated after translation — while the cache, tlist and stub slices
// are copied on both capture and restore, because faulty runs mutate them
// in place (stub patching, chaining, new translations of wild branch
// targets). The block map is shared copy-on-write: clones reference it
// read-only and materialize a private copy only when a run actually
// translates something new (see DBT.setBlock).
type Snapshot struct {
	prog          *isa.Program
	opts          Options
	cache         []isa.Instr
	blocks        map[uint32]*TBlock
	tlist         []*TBlock
	stubs         []stub
	pendingCycles uint64
	stats         Stats

	// plan is the fully decoded execution plan over the snapshot cache,
	// built once at capture and shared copy-on-write by every clone; it is
	// never mutated through the snapshot itself.
	plan cpu.Plan

	liveOnce sync.Once
	liveInfo *live.Info
}

// Snapshot captures the translator's current state. Call it between Run
// calls (typically after the warm-up runs have stabilized the cache).
func (d *DBT) Snapshot() *Snapshot {
	s := &Snapshot{
		prog:          d.prog,
		opts:          d.opts,
		cache:         append([]isa.Instr(nil), d.cache...),
		tlist:         append([]*TBlock(nil), d.tlist...),
		stubs:         append([]stub(nil), d.stubs...),
		pendingCycles: d.pendingCycles,
		stats:         d.stats,
	}
	s.plan = cpu.NewPlan(s.cache, d.opts.Costs)
	if d.blocks == nil {
		// The clone never materialized a private map; the shared one is
		// already immutable and can be adopted as-is.
		s.blocks = d.snapBlocks
	} else {
		s.blocks = make(map[uint32]*TBlock, len(d.blocks))
		for g, tb := range d.blocks {
			s.blocks[g] = tb
		}
	}
	return s
}

// CacheLen returns the snapshot's code cache size in instructions.
func (s *Snapshot) CacheLen() int { return len(s.cache) }

// Stats returns the translator statistics captured with the snapshot —
// the baseline a clone's final stats are diffed against to recover one
// sample's own translation work.
func (s *Snapshot) Stats() Stats { return s.stats }

// Liveness returns flag/register liveness over the snapshot's code cache,
// computed lazily once and shared by all samples. It is valid for any run
// primed from this snapshot that does no new translation: the checkpoint
// engine only consults it for samples whose clean run is non-structural,
// which guarantees the cache image the fault executes over is exactly the
// analyzed one.
func (s *Snapshot) Liveness() *live.Info {
	s.liveOnce.Do(func() { s.liveInfo = live.AnalyzeCode(s.cache) })
	return s.liveInfo
}

// NewDBT returns a fresh translator primed with a private copy of the
// snapshot state: warm runs on it skip translation exactly as on the
// snapshotted instance, and any mutation (chaining under a faulty run, new
// translations) stays local to the returned DBT. The block map is primed
// lazily: most fault-injection samples never translate a new block, so the
// clone shares the snapshot's read-only map and copies it only on the first
// structural change (see DBT.setBlock).
func (s *Snapshot) NewDBT() *DBT {
	return &DBT{
		prog:          s.prog,
		opts:          s.opts,
		tech:          s.opts.Technique,
		cache:         append([]isa.Instr(nil), s.cache...),
		snapBlocks:    s.blocks,
		tlist:         append([]*TBlock(nil), s.tlist...),
		stubs:         append([]stub(nil), s.stubs...),
		pendingCycles: s.pendingCycles,
		stats:         s.stats,
		plan:          s.plan.Clone(),
	}
}
