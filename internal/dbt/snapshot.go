package dbt

import (
	"sync"

	"repro/internal/comp"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/live"
)

// Snapshot is a frozen copy of a translator's warm state: the code cache,
// the guest-to-translation map, the cache-ordered block list, the chaining
// stubs (including their profiling counters) and the accumulated stats.
// Snapshots exist so that fault-injection campaigns can fan samples across
// goroutines without each worker re-running the warm-up loop: every worker
// primes a private DBT from the snapshot and starts with the fully
// translated, chained and trace-formed cache.
//
// A Snapshot is immutable and safe for concurrent use. TBlocks are shared
// by pointer between the snapshot and every DBT primed from it — they are
// never mutated after translation — while the cache, tlist and stub slices
// are copied on both capture and restore, because faulty runs mutate them
// in place (stub patching, chaining, new translations of wild branch
// targets). The block map is shared copy-on-write: clones reference it
// read-only and materialize a private copy only when a run actually
// translates something new (see DBT.setBlock).
type Snapshot struct {
	prog          *isa.Program
	opts          Options
	cache         []isa.Instr
	blocks        map[uint32]*TBlock
	tlist         []*TBlock
	stubs         []stub
	pendingCycles uint64
	stats         Stats

	// plan is the fully decoded execution plan over the snapshot cache,
	// built once at capture and shared copy-on-write by every clone; it is
	// never mutated through the snapshot itself.
	plan cpu.Plan

	// comp is the frozen block-compiled engine over the snapshot cache
	// (nil for interpreter backends): every entry point is eagerly
	// compiled and chain-resolved at capture, and clones share the
	// compiled core read-only through per-clone views.
	comp *comp.Engine
	// compStats is the owning translator's compiled-backend work up to and
	// including the eager freeze — the campaign-level baseline, mirroring
	// Stats() for translator work.
	compStats comp.Stats

	// liveOnce/liveInfo implement the lazily shared liveness analysis.
	// They live on the Snapshot struct itself — which clones reference by
	// pointer and never copy — so concurrent samples race-freely share one
	// analysis (see TestSnapshotLivenessSharedAcrossClones).
	liveOnce sync.Once
	liveInfo *live.Info
}

// Snapshot captures the translator's current state. Call it between Run
// calls (typically after the warm-up runs have stabilized the cache).
func (d *DBT) Snapshot() *Snapshot {
	s := &Snapshot{
		prog:          d.prog,
		opts:          d.opts,
		cache:         append([]isa.Instr(nil), d.cache...),
		tlist:         append([]*TBlock(nil), d.tlist...),
		stubs:         append([]stub(nil), d.stubs...),
		pendingCycles: d.pendingCycles,
		stats:         d.stats,
	}
	s.plan = cpu.NewPlan(s.cache, d.opts.Costs)
	if d.comp != nil {
		// Freeze the compiled core: eagerly compile every entry point the
		// cache can transfer to, resolve all chain slots, and make the
		// core immutable so clones share it without synchronization. The
		// freeze also stops the owner's adaptive tier — a snapshot is
		// taken when the cache has stabilized, so nothing is lost.
		d.comp.Sync(d.cache)
		d.comp.Freeze(d.compStarts())
		s.comp = d.comp
		s.compStats = d.comp.Stats
	}
	if d.blocks == nil {
		// The clone never materialized a private map; the shared one is
		// already immutable and can be adopted as-is.
		s.blocks = d.snapBlocks
	} else {
		s.blocks = make(map[uint32]*TBlock, len(d.blocks))
		for g, tb := range d.blocks {
			s.blocks[g] = tb
		}
	}
	return s
}

// compStarts collects every cache address block-compiled execution can
// enter: translated-unit starts, fall-throughs past a terminator (the
// technique tails emit several internal basic blocks per translated
// unit — check branches, report paths, chaining stubs) and direct-branch
// targets. Freezing over this set means a warm campaign's samples never
// fall back to the interpreter on a hot path.
func (d *DBT) compStarts() []uint32 {
	return compStartsFor(d.tlist, d.cache)
}

// compStartsFor is compStarts over explicit state, shared with snapshot
// restoration (which freezes a fresh engine over a deserialized cache).
func compStartsFor(tlist []*TBlock, cache []isa.Instr) []uint32 {
	starts := make([]uint32, 0, len(tlist)+len(cache)/4)
	for _, tb := range tlist {
		starts = append(starts, tb.CacheStart)
	}
	for addr, in := range cache {
		if in.Op.IsTerminator() && addr+1 < len(cache) {
			starts = append(starts, uint32(addr+1))
		}
		if in.Op.IsDirectBranch() {
			starts = append(starts, in.Target(uint32(addr)))
		}
	}
	return starts
}

// CacheLen returns the snapshot's code cache size in instructions.
func (s *Snapshot) CacheLen() int { return len(s.cache) }

// CompStats returns the compiled-backend work accumulated by the owning
// translator up to the snapshot freeze (zero for interpreter backends) —
// the baseline campaigns add per-sample deltas to.
func (s *Snapshot) CompStats() comp.Stats { return s.compStats }

// Stats returns the translator statistics captured with the snapshot —
// the baseline a clone's final stats are diffed against to recover one
// sample's own translation work.
func (s *Snapshot) Stats() Stats { return s.stats }

// Liveness returns flag/register liveness over the snapshot's code cache,
// computed lazily once and shared by all samples. It is valid for any run
// primed from this snapshot that does no new translation: the checkpoint
// engine only consults it for samples whose clean run is non-structural,
// which guarantees the cache image the fault executes over is exactly the
// analyzed one.
func (s *Snapshot) Liveness() *live.Info {
	s.liveOnce.Do(func() { s.liveInfo = live.AnalyzeCode(s.cache) })
	return s.liveInfo
}

// NewDBT returns a fresh translator primed with a private copy of the
// snapshot state: warm runs on it skip translation exactly as on the
// snapshotted instance, and any mutation (chaining under a faulty run, new
// translations) stays local to the returned DBT. The block map is primed
// lazily: most fault-injection samples never translate a new block, so the
// clone shares the snapshot's read-only map and copies it only on the first
// structural change (see DBT.setBlock).
func (s *Snapshot) NewDBT() *DBT {
	d := &DBT{
		prog:          s.prog,
		opts:          s.opts,
		tech:          s.opts.Technique,
		cache:         append([]isa.Instr(nil), s.cache...),
		snapBlocks:    s.blocks,
		tlist:         append([]*TBlock(nil), s.tlist...),
		stubs:         append([]stub(nil), s.stubs...),
		pendingCycles: s.pendingCycles,
		stats:         s.stats,
		plan:          s.plan.Clone(),
	}
	if s.comp != nil {
		// A per-clone view over the frozen compiled core: fresh stats, own
		// disable flag, re-aliased onto the clone's private cache copy. A
		// clone that patches its cache under a compiled block disables its
		// view and finishes on the interpreter; the shared core and every
		// other sample are untouched.
		d.comp = s.comp.Clone()
		d.comp.Sync(d.cache)
	}
	return d
}
