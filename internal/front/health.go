package front

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/session"
)

// ReplicaHealth is one replica's last observed health.
type ReplicaHealth struct {
	URL   string `json:"url"`
	Ready bool   `json:"ready"`
	// Status is the replica's own /healthz status ("ok", "draining",
	// "restoring") or "unreachable" when the probe failed.
	Status   string `json:"status"`
	Inflight int64  `json:"inflight"`
}

// healthTracker polls each replica's /healthz and maintains the ready
// set. A replica is ready while its probe answers 200 — "ok" or
// "restoring" (a restoring replica serves fine; its warm set is just
// still filling from the artifact store). "draining" answers 503 and
// ejects the replica, as does any transport error.
type healthTracker struct {
	client   *http.Client
	replicas []string
	// onChange fires with the new sorted ready set whenever membership
	// changes, and with the ejected replicas separately so queued
	// admissions bound to them can fail fast.
	onChange func(ready, ejected []string)

	mu     sync.Mutex
	status map[string]ReplicaHealth
	ready  []string
}

func newHealthTracker(replicas []string, client *http.Client, onChange func(ready, ejected []string)) *healthTracker {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	h := &healthTracker{
		client:   client,
		replicas: append([]string(nil), replicas...),
		onChange: onChange,
		status:   map[string]ReplicaHealth{},
	}
	// Until the first poll answers, every configured replica counts as
	// ready: a front racing its replicas' startup routes optimistically
	// rather than 503ing the whole fleet.
	for _, r := range h.replicas {
		h.status[r] = ReplicaHealth{URL: r, Ready: true, Status: "ok"}
	}
	h.ready = append([]string(nil), h.replicas...)
	sort.Strings(h.ready)
	return h
}

// probe fetches one replica's health. Any 200 is ready; the JSON body
// refines the status label.
func (h *healthTracker) probe(url string) ReplicaHealth {
	rh := ReplicaHealth{URL: url, Status: "unreachable"}
	resp, err := h.client.Get(url + "/healthz")
	if err != nil {
		return rh
	}
	defer resp.Body.Close()
	var hj session.HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&hj); err == nil && hj.Status != "" {
		rh.Status = hj.Status
		rh.Inflight = hj.Inflight
	} else if resp.StatusCode == http.StatusOK {
		rh.Status = "ok" // pre-JSON /healthz bodies still mean ready
	}
	rh.Ready = resp.StatusCode == http.StatusOK
	return rh
}

// poll sweeps every replica once and fires onChange if the ready set
// moved. Probes run concurrently so one unreachable replica's timeout
// does not delay the others' verdicts.
func (h *healthTracker) poll() {
	results := make([]ReplicaHealth, len(h.replicas))
	var wg sync.WaitGroup
	for i, r := range h.replicas {
		wg.Add(1)
		go func(i int, r string) {
			defer wg.Done()
			results[i] = h.probe(r)
		}(i, r)
	}
	wg.Wait()

	h.mu.Lock()
	var ready, ejected []string
	for _, rh := range results {
		if was := h.status[rh.URL]; was.Ready && !rh.Ready {
			ejected = append(ejected, rh.URL)
		}
		h.status[rh.URL] = rh
		if rh.Ready {
			ready = append(ready, rh.URL)
		}
	}
	sort.Strings(ready)
	changed := !reflect.DeepEqual(ready, h.ready)
	h.ready = ready
	h.mu.Unlock()
	if changed && h.onChange != nil {
		h.onChange(ready, ejected)
	}
}

// run polls at the given interval until ctx is done.
func (h *healthTracker) run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.poll()
		}
	}
}

// snapshot returns every replica's last observed health, sorted by URL.
func (h *healthTracker) snapshot() []ReplicaHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ReplicaHealth, 0, len(h.status))
	for _, rh := range h.status {
		out = append(out, rh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// readySet returns the current sorted ready replicas.
func (h *healthTracker) readySet() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.ready...)
}
