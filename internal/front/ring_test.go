package front

import (
	"fmt"
	"testing"
)

// Owner is deterministic, and every key lands on a member.
func TestRingOwnerDeterministic(t *testing.T) {
	reps := []string{"http://a", "http://b", "http://c"}
	r1 := NewRing(reps, 0)
	r2 := NewRing([]string{"http://c", "http://a", "http://b"}, 0) // order-insensitive
	member := map[string]bool{}
	for _, rep := range reps {
		member[rep] = true
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("164.gzip|0.05|RCF|||%d", i)
		o := r1.Owner(key)
		if !member[o] {
			t.Fatalf("key %q owned by non-member %q", key, o)
		}
		if o2 := r2.Owner(key); o2 != o {
			t.Fatalf("key %q: owner differs with construction order: %q vs %q", key, o, o2)
		}
	}
}

// Removing one replica only re-routes the keys it owned: everything
// else keeps its home (the consistent-hash property warm sessions rely
// on during churn).
func TestRingMinimalDisruption(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c"}
	full := NewRing(all, 0)
	without := NewRing(all[:2], 0) // c leaves

	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("session|%d", i)
		before, after := full.Owner(key), without.Owner(key)
		if before == "http://c" {
			if after == "http://c" {
				t.Fatalf("key %q still owned by removed replica", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved from %q to %q though its owner stayed", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// Every replica owns a reasonable share: with vnodes smoothing, no
// member should be starved or hold a large majority.
func TestRingBalance(t *testing.T) {
	reps := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(reps, 0)
	counts := map[string]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, rep := range reps {
		share := float64(counts[rep]) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("replica %s owns %.0f%% of keys (counts %v)", rep, share*100, counts)
		}
	}
}

// Owners returns distinct replicas in preference order, the owner first.
func TestRingOwners(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	owners := r.Owners("some-key", 3)
	if len(owners) != 3 {
		t.Fatalf("Owners(3) = %v, want 3 distinct", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("Owners repeats %q: %v", o, owners)
		}
		seen[o] = true
	}
	if owners[0] != r.Owner("some-key") {
		t.Fatalf("Owners[0] = %q, Owner = %q", owners[0], r.Owner("some-key"))
	}
	// Asking for more than the membership returns them all.
	if got := r.Owners("some-key", 10); len(got) != 3 {
		t.Fatalf("Owners(10) = %v, want all 3", got)
	}
	// Empty ring: no owners.
	if got := NewRing(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
}
