package front

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/session"
)

const (
	testWorkload = "164.gzip"
	testScale    = 0.02
)

// replica is one in-process cfc-serve equivalent.
type replica struct {
	ts  *httptest.Server
	srv *session.Server
	reg *obs.Registry
}

func newReplica(t *testing.T) *replica {
	t.Helper()
	reg := obs.NewRegistry()
	srv := &session.Server{Registry: session.NewRegistry(session.Config{Metrics: reg}), Metrics: reg}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &replica{ts: ts, srv: srv, reg: reg}
}

// newFront builds a front over the replicas and settles its health view.
func newFront(t *testing.T, reps []*replica, cfg Config) (*Front, *httptest.Server) {
	t.Helper()
	for _, r := range reps {
		cfg.Replicas = append(cfg.Replicas, r.ts.URL)
	}
	f := New(cfg)
	f.health.poll()
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return f, ts
}

func postRaw(t *testing.T, url string, req session.Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func batchReq(technique string, specs ...session.SpecJSON) session.Request {
	return session.Request{
		Workload: testWorkload, Scale: testScale, Technique: technique,
		CkptInterval: -1, Workers: 1, Campaigns: specs,
	}
}

// The proxy path: same session key always routes to the same replica
// (warm affinity), and the response bytes pass through unchanged.
func TestFrontAffinityAndPassthrough(t *testing.T) {
	reps := []*replica{newReplica(t), newReplica(t), newReplica(t)}
	_, ts := newFront(t, reps, Config{})

	techniques := []string{"none", "EdgCF", "RCF", "ECF"}
	homes := map[string]string{}
	for round := 0; round < 2; round++ {
		for _, tech := range techniques {
			// Fresh seed per round so the second round exercises the warm
			// session rather than the graph cell cache.
			req := batchReq(tech, session.SpecJSON{Seed: int64(round + 1), Samples: 5})
			resp, out := postRaw(t, ts.URL+"/v1/campaigns", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s round %d: %d: %s", tech, round, resp.StatusCode, out)
			}
			home := resp.Header.Get("X-Replica")
			if home == "" {
				t.Fatalf("%s: no X-Replica header", tech)
			}
			if prev, ok := homes[tech]; ok && prev != home {
				t.Fatalf("%s re-routed from %s to %s with stable membership", tech, prev, home)
			}
			homes[tech] = home

			// Byte passthrough: the front's body equals the replica's own
			// answer for the identical request (graph cache makes the
			// replica's re-answer byte-identical, elapsed/cached aside).
			var viaFront, direct session.RecordJSON
			if err := json.Unmarshal(out, &viaFront); err != nil {
				t.Fatalf("%s: stream is not a record: %v", tech, err)
			}
			_, dout := postRaw(t, home+"/v1/campaigns", req)
			if err := json.Unmarshal(dout, &direct); err != nil {
				t.Fatalf("%s: direct stream: %v", tech, err)
			}
			if viaFront.Report != direct.Report || viaFront.Report == "" {
				t.Fatalf("%s: proxied report differs from direct replica report", tech)
			}
		}
	}

	// Each session was built on exactly one replica: fleet-wide warm
	// builds equal the number of distinct keys.
	total := uint64(0)
	for _, r := range reps {
		total += r.reg.Snapshot().Counters["session_warm_builds_total"]
	}
	if total != uint64(len(techniques)) {
		t.Errorf("fleet session_warm_builds_total = %d, want %d (one home per key)", total, len(techniques))
	}
}

// The fan-out path: ?fanout=3 over three replicas produces a record
// whose normalized report is byte-identical to the unsharded run.
func TestFrontFanoutByteIdentical(t *testing.T) {
	reps := []*replica{newReplica(t), newReplica(t), newReplica(t)}
	_, ts := newFront(t, reps, Config{})

	const seed, samples = 11, 30
	req := batchReq("RCF", session.SpecJSON{Seed: seed, Samples: samples})

	// Reference: the whole campaign on one replica, no front involved.
	_, refOut := postRaw(t, reps[0].ts.URL+"/v1/campaigns", req)
	var ref session.RecordJSON
	if err := json.Unmarshal(refOut, &ref); err != nil {
		t.Fatalf("reference stream: %v\n%s", err, refOut)
	}

	resp, out := postRaw(t, ts.URL+"/v1/campaigns?fanout=3", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fanout POST: %d: %s", resp.StatusCode, out)
	}
	var rec session.RecordJSON
	if err := json.Unmarshal(out, &rec); err != nil {
		t.Fatalf("fanout stream: %v\n%s", err, out)
	}
	if rec.Error != "" {
		t.Fatalf("fanout record error: %s", rec.Error)
	}
	if rec.Report != ref.Report {
		t.Errorf("fan-out merged report differs from single-server run\n--- fanout ---\n%s\n--- single ---\n%s", rec.Report, ref.Report)
	}
	if rec.Samples != samples || rec.NotFired != ref.NotFired {
		t.Errorf("fanout record (samples %d, not_fired %d) != reference (%d, %d)",
			rec.Samples, rec.NotFired, ref.Samples, ref.NotFired)
	}

	// The shards really spread: every replica ran some samples (three
	// shards over three distinct ring successors).
	for i, r := range reps {
		if warm := r.reg.Snapshot().Counters["session_warm_builds_total"]; warm == 0 {
			t.Errorf("replica %d never built the session: fan-out did not reach it", i)
		}
	}
}

// Churn: a replica leaving the ready set re-routes its keys to
// survivors and fails its queued admissions fast; a front with no ready
// replicas answers 503 JSON.
func TestFrontChurnReroutes(t *testing.T) {
	reps := []*replica{newReplica(t), newReplica(t), newReplica(t)}
	f, ts := newFront(t, reps, Config{})

	req := batchReq("RCF", session.SpecJSON{Seed: 3, Samples: 5})
	resp, out := postRaw(t, ts.URL+"/v1/campaigns", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d: %s", resp.StatusCode, out)
	}
	home := resp.Header.Get("X-Replica")

	// Kill the home replica and let the tracker notice.
	for _, r := range reps {
		if r.ts.URL == home {
			r.ts.Close()
		}
	}
	f.health.poll()
	if ring := f.Ring().Replicas(); len(ring) != 2 {
		t.Fatalf("ring after churn has %d members, want 2 (%v)", len(ring), ring)
	}

	resp2, out2 := postRaw(t, ts.URL+"/v1/campaigns", batchReq("RCF", session.SpecJSON{Seed: 4, Samples: 5}))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-churn POST: %d: %s", resp2.StatusCode, out2)
	}
	if newHome := resp2.Header.Get("X-Replica"); newHome == home || newHome == "" {
		t.Fatalf("post-churn home = %q, want a survivor (old home %q)", newHome, home)
	}

	// All replicas gone: fail fast with the JSON error shape.
	for _, r := range reps {
		if r.ts.URL != home {
			r.ts.Close()
		}
	}
	f.health.poll()
	resp3, out3 := postRaw(t, ts.URL+"/v1/campaigns", req)
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-replica POST: %d, want 503", resp3.StatusCode)
	}
	var e session.ErrorJSON
	if err := json.Unmarshal(out3, &e); err != nil || !strings.Contains(e.Error, "no ready replicas") {
		t.Fatalf("no-replica body: %s", out3)
	}
}

// The fleet metrics endpoints merge replica snapshots: counters sum
// across the fleet.
func TestFrontMergedMetrics(t *testing.T) {
	reps := []*replica{newReplica(t), newReplica(t)}
	_, ts := newFront(t, reps, Config{})

	// One campaign per technique: keys spread across (possibly) both
	// replicas; the merged counter must see every build wherever it ran.
	for i, tech := range []string{"RCF", "EdgCF"} {
		resp, out := postRaw(t, ts.URL+"/v1/campaigns", batchReq(tech, session.SpecJSON{Seed: int64(i + 1), Samples: 3}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d: %s", tech, resp.StatusCode, out)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("merged snapshot: %v", err)
	}
	if got := snap.Counters["session_warm_builds_total"]; got != 2 {
		t.Errorf("merged session_warm_builds_total = %d, want 2", got)
	}
}
