package front

import (
	"context"
	"sync"
	"testing"
	"time"
)

// A full tenant queue rejects immediately with ErrQueueFull; other
// tenants are unaffected.
func TestAdmissionQueueBound(t *testing.T) {
	a := NewAdmission(2, 1)
	ctx := context.Background()

	release, err := a.Acquire(ctx, "t1", "r")
	if err != nil {
		t.Fatal(err)
	}
	// Two queued waiters fill t1's depth.
	var wg sync.WaitGroup
	releases := make(chan func(), 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire(ctx, "t1", "r")
			if err != nil {
				t.Error(err)
				return
			}
			releases <- rel
		}()
	}
	waitFor(t, func() bool { return a.Queued("t1") == 2 })

	if _, err := a.Acquire(ctx, "t1", "r"); err != ErrQueueFull {
		t.Fatalf("overfull queue: err = %v, want ErrQueueFull", err)
	}

	release()
	for i := 0; i < 2; i++ {
		(<-releases)()
	}
	wg.Wait()
}

// A cancelled waiter leaves the queue; its slot goes to the next one.
func TestAdmissionCancellation(t *testing.T) {
	a := NewAdmission(8, 1)
	release, err := a.Acquire(context.Background(), "t", "r")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, "t", "r")
		errc <- err
	}()
	waitFor(t, func() bool { return a.Queued("t") == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled waiter: err = %v", err)
	}
	// The slot must still be grantable after the cancelled waiter left.
	granted := make(chan func(), 1)
	go func() {
		rel, err := a.Acquire(context.Background(), "t", "r")
		if err != nil {
			t.Error(err)
		}
		granted <- rel
	}()
	waitFor(t, func() bool { return a.Queued("t") == 1 })
	release()
	rel := <-granted
	rel()
}

// FailReplica fails exactly the waiters bound to the ejected replica.
func TestAdmissionFailReplica(t *testing.T) {
	a := NewAdmission(8, 1)
	relR, err := a.Acquire(context.Background(), "t", "r")
	if err != nil {
		t.Fatal(err)
	}
	relS, err := a.Acquire(context.Background(), "t", "s")
	if err != nil {
		t.Fatal(err)
	}
	errR := make(chan error, 1)
	errS := make(chan error, 1)
	go func() { _, err := a.Acquire(context.Background(), "t", "r"); errR <- err }()
	go func() {
		rel, err := a.Acquire(context.Background(), "t", "s")
		if err == nil {
			defer rel()
		}
		errS <- err
	}()
	waitFor(t, func() bool { return a.Queued("t") == 2 })

	a.FailReplica("r")
	if err := <-errR; err != ErrReplicaGone {
		t.Fatalf("waiter on ejected replica: err = %v, want ErrReplicaGone", err)
	}
	relS()
	if err := <-errS; err != nil {
		t.Fatalf("waiter on surviving replica: err = %v", err)
	}
	relR()
}

// Stride scheduling: with contending tenants of weight 3 and 1, grants
// land roughly 3:1.
func TestAdmissionWeightedFairness(t *testing.T) {
	a := NewAdmission(64, 1)
	a.SetWeight("heavy", 3)
	a.SetWeight("light", 1)

	hold, err := a.Acquire(context.Background(), "seed", "r")
	if err != nil {
		t.Fatal(err)
	}

	const perTenant = 20
	grants := make(chan string, 2*perTenant)
	var wg sync.WaitGroup
	for _, tenant := range []string{"heavy", "light"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				rel, err := a.Acquire(context.Background(), tenant, "r")
				if err != nil {
					t.Error(err)
					return
				}
				grants <- tenant
				rel()
			}(tenant)
		}
	}
	waitFor(t, func() bool { return a.Queued("heavy") == perTenant && a.Queued("light") == perTenant })
	hold()
	wg.Wait()
	close(grants)

	// Count heavy grants among the first 12 slots: with weights 3:1 a
	// fair scheduler gives heavy ~9; require a clear majority.
	heavyEarly := 0
	for i := 0; i < 12; i++ {
		if g, ok := <-grants; ok && g == "heavy" {
			heavyEarly++
		}
	}
	if heavyEarly < 7 {
		t.Errorf("heavy tenant got %d of the first 12 slots, want >= 7 (weight 3:1)", heavyEarly)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in 5s")
}
