package front

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/inject"
	"repro/internal/session"
)

// fanoutCampaigns splits every campaign of the batch into n contiguous
// sample shards, runs each shard on its own replica (the key's ring
// owner first, then its successors, so shard 0 still rides the warm
// home session), merges the shard reports with inject.MergeReports and
// streams one record per campaign — the same wire shape, and a
// byte-identical normalized report, as the unsharded single-server run.
func (f *Front) fanoutCampaigns(w http.ResponseWriter, req *http.Request, body *session.Request, key string, n int) {
	owners := f.Ring().Owners(key, n)
	if len(owners) == 0 {
		session.WriteError(w, http.StatusServiceUnavailable, "no ready replicas")
		return
	}
	tenant := tenantOf(req)
	wantReport := body.ReturnReport

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Fanout", fmt.Sprintf("%d/%d", n, len(owners)))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	for i, spec := range body.Campaigns {
		rec := session.RecordJSON{Index: i, Seed: spec.Seed, Samples: spec.Samples, SampleOffset: spec.SampleOffset}
		rep, cached, err := f.runSharded(req, body, spec, owners, tenant, n)
		if err != nil {
			rec.Error = err.Error()
		} else {
			session.FillRecord(&rec, rep)
			rec.Cached = cached
			if wantReport {
				rec.ReportStruct = rep
			}
		}
		if encErr := enc.Encode(rec); encErr != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if err != nil {
			return // mirror the single-server stream: error record is last
		}
	}
}

// ShardSpecs splits spec into n contiguous shards covering the same
// global sample range: sizes differ by at most one, empty shards
// dropped (more shards than samples). Exported for the fan-out
// benchmark and for tools that shard manually.
func ShardSpecs(spec session.SpecJSON, n int) []session.SpecJSON {
	base, rem := spec.Samples/n, spec.Samples%n
	shards := make([]session.SpecJSON, 0, n)
	offset := spec.SampleOffset
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		shards = append(shards, session.SpecJSON{Seed: spec.Seed, Samples: size, SampleOffset: offset})
		offset += size
	}
	return shards
}

// runSharded executes one campaign as shards across owners and merges.
// Cached is true only when every shard answered from its graph cache.
func (f *Front) runSharded(req *http.Request, body *session.Request, spec session.SpecJSON, owners []string, tenant string, n int) (*inject.Report, bool, error) {
	shards := ShardSpecs(spec, n)
	if len(shards) == 0 {
		// A zero-sample campaign still needs one (empty) run for its record.
		shards = []session.SpecJSON{spec}
	}
	type result struct {
		rec session.RecordJSON
		err error
	}
	results := make([]result, len(shards))
	done := make(chan int, len(shards))
	for i, sh := range shards {
		go func(i int, sh session.SpecJSON) {
			rec, err := f.runShard(req, body, sh, owners[i%len(owners)], tenant)
			results[i] = result{rec, err}
			done <- i
		}(i, sh)
	}
	for range shards {
		<-done
	}
	parts := make([]*inject.Report, len(shards))
	cached := true
	for i, r := range results {
		if r.err != nil {
			return nil, false, fmt.Errorf("shard %d/%d on %s: %w", i, len(shards), owners[i%len(owners)], r.err)
		}
		parts[i] = r.rec.ReportStruct
		cached = cached && r.rec.Cached
	}
	rep, err := inject.MergeReports(parts)
	if err != nil {
		return nil, false, fmt.Errorf("merge: %w", err)
	}
	return rep, cached, nil
}

// runShard posts one single-campaign request for a shard and decodes
// its record. The shard request always sets return_report: the merge
// needs the structured report, not the rendered text.
func (f *Front) runShard(req *http.Request, body *session.Request, shard session.SpecJSON, owner, tenant string) (session.RecordJSON, error) {
	var rec session.RecordJSON
	release, err := f.adm.Acquire(req.Context(), tenant, owner)
	if err != nil {
		return rec, err
	}
	defer release()

	sreq := session.Request{
		Workload:     body.Workload,
		Scale:        body.Scale,
		Technique:    body.Technique,
		Style:        body.Style,
		Policy:       body.Policy,
		CkptInterval: body.CkptInterval,
		Workers:      body.Workers,
		ReturnReport: true,
		Campaigns:    []session.SpecJSON{shard},
	}
	raw, err := json.Marshal(sreq)
	if err != nil {
		return rec, err
	}
	preq, err := http.NewRequestWithContext(req.Context(), http.MethodPost,
		owner+"/v1/campaigns", bytes.NewReader(raw))
	if err != nil {
		return rec, err
	}
	preq.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(preq)
	if err != nil {
		return rec, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return rec, err
	}
	if resp.StatusCode != http.StatusOK {
		var e session.ErrorJSON
		if json.Unmarshal(out, &e) == nil && e.Error != "" {
			return rec, fmt.Errorf("%s (%d)", e.Error, resp.StatusCode)
		}
		return rec, fmt.Errorf("replica answered %d", resp.StatusCode)
	}
	if err := json.Unmarshal(firstLine(out), &rec); err != nil {
		return rec, fmt.Errorf("bad shard record: %v", err)
	}
	if rec.Error != "" {
		return rec, fmt.Errorf("%s", rec.Error)
	}
	if rec.ReportStruct == nil {
		return rec, fmt.Errorf("replica returned no report_struct")
	}
	return rec, nil
}

// firstLine trims an NDJSON body to its first line (a single-campaign
// stream has exactly one record, but be tolerant of trailing frames).
func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i+1]
	}
	return b
}
