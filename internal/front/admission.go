package front

import (
	"context"
	"errors"
	"sync"
)

// Admission control defaults.
const (
	// DefaultQueueDepth bounds how many requests one tenant may have
	// queued (per tenant, across replicas) before new ones get a 429.
	DefaultQueueDepth = 32
	// DefaultReplicaCap bounds concurrently proxied requests per replica.
	DefaultReplicaCap = 4
)

// ErrQueueFull rejects an Acquire whose tenant queue is at its bound;
// the front answers it with 429 and a Retry-After hint.
var ErrQueueFull = errors.New("admission queue full")

// ErrReplicaGone fails queued waiters whose target replica left the
// ready set; the front answers it with a JSON 503, never a hung stream.
var ErrReplicaGone = errors.New("replica left the ready set")

// Admission is the front door's admission controller: per-tenant
// weighted-fair queues with bounded depth feeding per-replica in-flight
// caps. Scheduling is stride-based: each admitted request advances its
// tenant's pass by 1/weight, and a freed slot goes to the queued tenant
// with the lowest pass — so over time tenant throughput is proportional
// to weight, regardless of arrival order or queue length.
type Admission struct {
	mu       sync.Mutex
	depth    int
	cap      int
	weights  map[string]float64
	pass     map[string]float64
	queues   map[string][]*waiter // per-tenant FIFO
	inflight map[string]int       // per-replica admitted count
}

// waiter is one queued request. ready is closed exactly once, after
// setting err for a failure grant; cancelled waiters are skipped (and
// compacted) by the dispatcher.
type waiter struct {
	tenant    string
	replica   string
	ready     chan struct{}
	err       error
	cancelled bool
}

// NewAdmission returns a controller with the given per-tenant queue
// depth and per-replica in-flight cap (0 = the defaults).
func NewAdmission(depth, replicaCap int) *Admission {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	if replicaCap <= 0 {
		replicaCap = DefaultReplicaCap
	}
	return &Admission{
		depth:    depth,
		cap:      replicaCap,
		weights:  map[string]float64{},
		pass:     map[string]float64{},
		queues:   map[string][]*waiter{},
		inflight: map[string]int{},
	}
}

// SetWeight sets a tenant's fair-share weight (default 1). A tenant
// with weight 3 drains its queue three times as fast as a weight-1
// tenant contending for the same replica.
func (a *Admission) SetWeight(tenant string, w float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w > 0 {
		a.weights[tenant] = w
	}
}

func (a *Admission) weightLocked(tenant string) float64 {
	if w, ok := a.weights[tenant]; ok {
		return w
	}
	return 1
}

// Inflight returns the replica's currently admitted request count.
func (a *Admission) Inflight(replica string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight[replica]
}

// Queued returns the tenant's live queue length.
func (a *Admission) Queued(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, w := range a.queues[tenant] {
		if !w.cancelled {
			n++
		}
	}
	return n
}

// Acquire admits one request for tenant against replica, blocking in
// the tenant's fair queue while the replica is at its in-flight cap.
// On success the caller must call the returned release exactly once
// (extra calls are no-ops). Fails with ErrQueueFull when the tenant
// queue is at depth, ErrReplicaGone when the replica is ejected while
// queued, or ctx.Err() on cancellation.
func (a *Admission) Acquire(ctx context.Context, tenant, replica string) (release func(), err error) {
	a.mu.Lock()
	// Jumping the queue would starve waiters, so immediate admission
	// requires both a free slot and an empty line for this replica.
	if a.inflight[replica] < a.cap && !a.hasWaiterLocked(replica) {
		a.inflight[replica]++
		a.advancePassLocked(tenant)
		a.mu.Unlock()
		return a.releaseFunc(replica), nil
	}
	if n := a.queuedLocked(tenant); n >= a.depth {
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{tenant: tenant, replica: replica, ready: make(chan struct{})}
	a.queues[tenant] = append(a.queues[tenant], w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		return a.releaseFunc(replica), nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// Granted while we were cancelling: give the slot straight
			// back so it redispatches, then still report the cancel.
			a.mu.Unlock()
			if w.err == nil {
				a.releaseFunc(replica)()
			}
		default:
			w.cancelled = true
			a.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// releaseFunc returns the idempotent slot release for a granted
// replica: decrement, then hand the freed slot to the fairest waiter.
func (a *Admission) releaseFunc(replica string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight[replica]--
			a.dispatchLocked(replica)
			a.mu.Unlock()
		})
	}
}

// FailReplica fails every waiter queued for a replica that left the
// ready set, so their streams error fast instead of hanging until
// client timeout. In-flight requests are unaffected (their proxied
// connections surface their own errors).
func (a *Admission) FailReplica(replica string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for tenant, q := range a.queues {
		kept := q[:0]
		for _, w := range q {
			if !w.cancelled && w.replica == replica {
				w.err = ErrReplicaGone
				close(w.ready)
				continue
			}
			kept = append(kept, w)
		}
		a.queues[tenant] = kept
	}
}

func (a *Admission) queuedLocked(tenant string) int {
	n := 0
	for _, w := range a.queues[tenant] {
		if !w.cancelled {
			n++
		}
	}
	return n
}

func (a *Admission) hasWaiterLocked(replica string) bool {
	for _, q := range a.queues {
		for _, w := range q {
			if !w.cancelled && w.replica == replica {
				return true
			}
		}
	}
	return false
}

// advancePassLocked charges one admission to the tenant's stride pass.
// New or idle tenants start at the current minimum so a fresh tenant
// cannot monopolize slots by arriving with pass 0.
func (a *Admission) advancePassLocked(tenant string) {
	if _, ok := a.pass[tenant]; !ok {
		min := 0.0
		first := true
		for _, p := range a.pass {
			if first || p < min {
				min, first = p, false
			}
		}
		a.pass[tenant] = min
	}
	a.pass[tenant] += 1 / a.weightLocked(tenant)
}

// dispatchLocked grants freed slots on replica to queued waiters,
// fairest tenant first, until the cap is reached or the line is empty.
func (a *Admission) dispatchLocked(replica string) {
	for a.inflight[replica] < a.cap {
		var best string
		found := false
		for tenant, q := range a.queues {
			// Compact cancelled waiters at the head while we scan.
			i := 0
			for i < len(q) && q[i].cancelled {
				i++
			}
			if i > 0 {
				q = q[i:]
				a.queues[tenant] = q
			}
			hasTarget := false
			for _, w := range q {
				if !w.cancelled && w.replica == replica {
					hasTarget = true
					break
				}
			}
			if !hasTarget {
				if len(q) == 0 {
					delete(a.queues, tenant)
				}
				continue
			}
			if !found || a.passLocked(tenant) < a.passLocked(best) ||
				(a.passLocked(tenant) == a.passLocked(best) && tenant < best) {
				best, found = tenant, true
			}
		}
		if !found {
			return
		}
		q := a.queues[best]
		granted := false
		for i, w := range q {
			if !w.cancelled && w.replica == replica {
				a.queues[best] = append(append([]*waiter{}, q[:i]...), q[i+1:]...)
				a.inflight[replica]++
				a.advancePassLocked(best)
				close(w.ready)
				granted = true
				break
			}
		}
		if !granted {
			return
		}
	}
}

func (a *Admission) passLocked(tenant string) float64 {
	if p, ok := a.pass[tenant]; ok {
		return p
	}
	return 0
}
