package front

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/session"
)

// Config parameterizes a Front.
type Config struct {
	// Replicas are the cfc-serve base URLs ("http://host:port").
	Replicas []string
	// Vnodes is the virtual-node count per replica (0 = DefaultVnodes).
	Vnodes int
	// QueueDepth / ReplicaCap bound admission (0 = the defaults).
	QueueDepth int
	ReplicaCap int
	// Weights are per-tenant fair-share weights (missing tenants get 1).
	Weights map[string]float64
	// Client performs replica requests; nil uses a default with no
	// timeout (campaign streams are long-lived).
	Client *http.Client
	// PollInterval is the health-probe period (0 = 500ms).
	PollInterval time.Duration
}

// Front is the fleet front door. One Front serves:
//
//	POST /v1/campaigns            route a batch to its home replica
//	                              (?fanout=N shards each campaign over N
//	                              replicas and merges, byte-identically)
//	GET  /v1/replicas             per-replica health and ring membership
//	GET  /v1/metrics              fleet-merged metrics snapshot (JSON)
//	GET  /metrics                 fleet-merged Prometheus exposition
//	GET  /healthz                 front readiness (503 with no ready replica)
//
// Routing is by session fingerprint (session.Key.String()), so every
// campaign on one configuration lands on the replica holding that warm
// session; membership changes re-route via the ring, and the survivors
// repopulate warm state from the shared artifact tier.
type Front struct {
	cfg    Config
	adm    *Admission
	client *http.Client
	health *healthTracker

	mu   sync.Mutex
	ring *Ring
}

// New builds a Front over the configured replica set. Call Start to
// begin health polling; until then every replica is assumed ready.
func New(cfg Config) *Front {
	f := &Front{
		cfg:    cfg,
		adm:    NewAdmission(cfg.QueueDepth, cfg.ReplicaCap),
		client: cfg.Client,
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	for t, w := range cfg.Weights {
		f.adm.SetWeight(t, w)
	}
	f.ring = NewRing(cfg.Replicas, cfg.Vnodes)
	f.health = newHealthTracker(cfg.Replicas, nil, func(ready, ejected []string) {
		f.mu.Lock()
		f.ring = NewRing(ready, cfg.Vnodes)
		f.mu.Unlock()
		// Waiters bound to an ejected replica would otherwise hang in
		// the queue until client timeout.
		for _, r := range ejected {
			f.adm.FailReplica(r)
		}
	})
	return f
}

// Start launches the health poll loop; it stops when ctx is done.
func (f *Front) Start(ctx context.Context) {
	f.health.poll() // settle the ready set before the first request
	go f.health.run(ctx, f.cfg.PollInterval)
}

// Ring returns the current ring (swapped whole on membership changes).
func (f *Front) Ring() *Ring {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring
}

// Handler returns the front mux.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", f.handleCampaigns)
	mux.HandleFunc("GET /v1/replicas", f.handleReplicas)
	mux.HandleFunc("GET /v1/metrics", f.handleMetricsJSON)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("GET /healthz", f.handleHealth)
	return mux
}

// tenantOf extracts the fair-queue tenant: the X-Tenant header, or the
// shared default bucket.
func tenantOf(req *http.Request) string {
	if t := req.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// keyOf is the routing fingerprint: the same session key string the
// replicas use for their warm-session and artifact cache identities.
func keyOf(body *session.Request) string {
	return session.Key{
		Workload:     body.Workload,
		Scale:        body.Scale,
		Technique:    body.Technique,
		Style:        body.Style,
		Policy:       body.Policy,
		CkptInterval: body.CkptInterval,
	}.String()
}

func (f *Front) handleCampaigns(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(req.Body)
	if err != nil {
		session.WriteError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var body session.Request
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		session.WriteError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	fanout := 1
	if q := req.URL.Query().Get("fanout"); q != "" {
		fanout, err = strconv.Atoi(q)
		if err != nil || fanout < 1 {
			session.WriteError(w, http.StatusBadRequest, "bad request: fanout %q", q)
			return
		}
	}
	key := keyOf(&body)
	if fanout > 1 {
		f.fanoutCampaigns(w, req, &body, key, fanout)
		return
	}

	owner := f.Ring().Owner(key)
	if owner == "" {
		session.WriteError(w, http.StatusServiceUnavailable, "no ready replicas")
		return
	}
	release, err := f.adm.Acquire(req.Context(), tenantOf(req), owner)
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	defer release()
	f.proxy(w, req, owner, raw)
}

// writeAdmissionError maps Acquire failures onto wire statuses: a full
// queue is the client's backpressure signal (429 + Retry-After), a
// vanished replica or cancellation is a 503.
func writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		session.WriteError(w, http.StatusTooManyRequests, "%v", err)
	default:
		session.WriteError(w, http.StatusServiceUnavailable, "%v", err)
	}
}

// proxy forwards the batch to its home replica and streams the response
// through unchanged — raw byte passthrough, flushed as it arrives, so
// the client sees exactly the bytes the replica produced (the identity
// the CI stream diffs rely on) with no added latency per record.
func (f *Front) proxy(w http.ResponseWriter, req *http.Request, owner string, raw []byte) {
	preq, err := http.NewRequestWithContext(req.Context(), http.MethodPost,
		owner+"/v1/campaigns", bytes.NewReader(raw))
	if err != nil {
		session.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(preq)
	if err != nil {
		session.WriteError(w, http.StatusBadGateway, "replica %s: %v", owner, err)
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Campaign-Id", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Replica", owner)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// FrontHealth is the GET /healthz body.
type FrontHealth struct {
	Status   string          `json:"status"`
	Ready    int             `json:"ready"`
	Replicas []ReplicaHealth `json:"replicas"`
}

func (f *Front) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := FrontHealth{Status: "ok", Replicas: f.health.snapshot()}
	for _, rh := range h.Replicas {
		if rh.Ready {
			h.Ready++
		}
	}
	code := http.StatusOK
	if h.Ready == 0 {
		h.Status = "no-replicas"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h)
}

// ReplicasJSON is the GET /v1/replicas body: health plus ring view.
type ReplicasJSON struct {
	Ring     []string        `json:"ring"`
	Replicas []ReplicaHealth `json:"replicas"`
}

func (f *Front) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ReplicasJSON{Ring: f.Ring().Replicas(), Replicas: f.health.snapshot()})
}

// mergedSnapshot polls every ready replica's /v1/metrics and folds the
// snapshots into one fleet view (counters add, gauges max).
func (f *Front) mergedSnapshot(ctx context.Context) *obs.Snapshot {
	replicas := f.health.readySet()
	snaps := make([]*obs.Snapshot, len(replicas))
	var wg sync.WaitGroup
	for i, r := range replicas {
		wg.Add(1)
		go func(i int, r string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, r+"/v1/metrics", nil)
			if err != nil {
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var s obs.Snapshot
			if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&s) == nil {
				snaps[i] = &s
			}
		}(i, r)
	}
	wg.Wait()
	merged := &obs.Snapshot{}
	for _, s := range snaps {
		merged.Merge(s)
	}
	return merged
}

func (f *Front) handleMetricsJSON(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.mergedSnapshot(req.Context()))
}

func (f *Front) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	f.mergedSnapshot(req.Context()).WritePrometheus(w)
}
