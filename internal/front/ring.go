// Package front is the horizontal serving layer: an HTTP front door
// that makes a fleet of cfc-serve replicas look like one server. It
// routes campaign batches by session fingerprint over a consistent-hash
// ring (so repeated campaigns on the same configuration land on the
// replica that already holds the warm session), applies per-tenant
// weighted-fair admission control with bounded queues and per-replica
// in-flight caps, and can fan one campaign out across replicas as
// contiguous sample shards whose merged report is byte-identical to a
// single-server run (inject.MergeReports).
package front

import (
	"sort"
	"strconv"

	"repro/internal/fp"
)

// DefaultVnodes is the virtual-node count per replica: enough points
// that removing one replica moves only ~1/n of the keyspace and the
// per-replica share stays within a few percent of even.
const DefaultVnodes = 64

// hash64 maps a string onto the ring's keyspace via the tree-wide
// content hash (fp.Hash is SHA-256, so the points spread uniformly and
// the mapping is stable across processes and builds).
func hash64(s string) uint64 {
	h := fp.NewHash()
	h.String(s)
	v, _ := strconv.ParseUint(h.Sum()[:16], 16, 64)
	return v
}

// point is one virtual node: a position on the ring owned by a replica.
type point struct {
	hash    uint64
	replica string
}

// Ring is an immutable consistent-hash ring over a replica set.
// Membership changes (a replica joining or draining) build a new Ring;
// lookups on the old one stay valid, so swaps are a single pointer
// store for the caller.
type Ring struct {
	points   []point
	replicas []string // distinct members, sorted
}

// NewRing places vnodes virtual nodes per replica (0 = DefaultVnodes).
// An empty replica set yields a ring whose lookups return "".
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, rep := range replicas {
		if rep == "" || seen[rep] {
			continue
		}
		seen[rep] = true
		r.replicas = append(r.replicas, rep)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash64(rep + "#" + strconv.Itoa(v)), rep})
		}
	}
	sort.Strings(r.replicas)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// Replicas returns the ring's distinct members, sorted.
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the replica owning key: the first virtual node at or
// clockwise of the key's hash. When several replicas collide on that
// exact ring position, the tie breaks rendezvous-style — highest
// hash64(key@replica) wins — so a tie never resolves differently on two
// fronts and never flips when an uninvolved replica leaves.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct replicas for key in preference order:
// the owner first, then the successors a fan-out spreads shards over
// (or a failover tries next). Fewer than n replicas returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	kh := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if start == len(r.points) {
		start = 0
	}
	var owners []string
	have := map[string]bool{}
	add := func(rep string) {
		if !have[rep] {
			have[rep] = true
			owners = append(owners, rep)
		}
	}
	// Rendezvous tie-break across every point sharing the landing hash.
	if first := r.points[start].hash; start+1 < len(r.points) && r.points[start+1].hash == first {
		end := start
		for end < len(r.points) && r.points[end].hash == first {
			end++
		}
		tied := append([]point(nil), r.points[start:end]...)
		sort.Slice(tied, func(i, j int) bool {
			hi, hj := hash64(key+"@"+tied[i].replica), hash64(key+"@"+tied[j].replica)
			if hi != hj {
				return hi > hj
			}
			return tied[i].replica < tied[j].replica
		})
		for _, p := range tied {
			add(p.replica)
		}
		start = end % len(r.points)
	}
	for i := 0; len(owners) < n && i < len(r.points); i++ {
		add(r.points[(start+i)%len(r.points)].replica)
	}
	return owners
}
