package isa

import (
	"encoding/binary"
	"fmt"
)

// InstrBytes is the size in bytes of one encoded instruction.
const InstrBytes = 8

// OffsetBits is the width of the branch-offset immediate. The paper's error
// model enumerates one fault site per offset bit per executed direct branch.
const OffsetBits = 32

// Instr is one decoded instruction.
//
// Field usage by opcode family:
//
//	Jcc:   RD holds the condition code (as Cond); Imm is the branch offset.
//	Cmov:  RD = destination, RS1 = source, RS2 holds the condition code.
//	Jrz:   RS1 is the tested register; Imm is the branch offset.
//	Store: mem[RS1+Imm] = RS2.
//	Lea3:  RD = RS1 + RS2 + Imm.
//
// Branch offsets are relative to the following instruction, in instruction
// words: target = ip + 1 + Imm.
type Instr struct {
	Op  Op
	RD  Reg
	RS1 Reg
	RS2 Reg
	Imm int32
}

// Cond returns the condition code of a Jcc instruction.
func (in Instr) Cond() Cond { return Cond(in.RD) }

// CmovCond returns the condition code of a Cmov instruction.
func (in Instr) CmovCond() Cond { return Cond(in.RS2) }

// Target returns the absolute branch target of a direct branch located at
// address ip (in instruction words).
func (in Instr) Target(ip uint32) uint32 { return ip + 1 + uint32(in.Imm) }

// OffsetFor returns the Imm value that makes an instruction at ip branch to
// target.
func OffsetFor(ip, target uint32) int32 { return int32(target - ip - 1) }

// Encode serializes the instruction into its 8-byte form.
func (in Instr) Encode() [InstrBytes]byte {
	var b [InstrBytes]byte
	b[0] = byte(in.Op)
	b[1] = byte(in.RD)
	b[2] = byte(in.RS1)
	b[3] = byte(in.RS2)
	binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
	return b
}

// Decode deserializes an instruction from its 8-byte form. Decode never
// fails: like a hardware decoder it produces some instruction for any bit
// pattern; Validate reports whether it is architecturally well formed.
func Decode(b [InstrBytes]byte) Instr {
	return Instr{
		Op:  Op(b[0]),
		RD:  Reg(b[1]),
		RS1: Reg(b[2]),
		RS2: Reg(b[3]),
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
}

// Validate reports whether the instruction is architecturally well formed
// for a machine with nregs registers (pass NumGuestRegs for guest binaries,
// NumRegs for translated code).
func (in Instr) Validate(nregs int) error {
	if !in.Op.Valid() {
		return fmt.Errorf("invalid opcode %d", uint8(in.Op))
	}
	checkReg := func(r Reg, what string) error {
		if int(r) >= nregs {
			return fmt.Errorf("%s: register %d out of range (machine has %d)", in.Op, r, nregs)
		}
		_ = what
		return nil
	}
	switch in.Op {
	case OpNop, OpHalt, OpRet, OpReport, OpTrapOut, OpJmp, OpCall, OpPushF, OpPopF:
		return nil
	case OpJcc:
		if !Cond(in.RD).Valid() {
			return fmt.Errorf("jcc: invalid condition %d", uint8(in.RD))
		}
		return nil
	case OpJrz:
		return checkReg(in.RS1, "rs1")
	case OpCmov:
		if !Cond(in.RS2).Valid() {
			return fmt.Errorf("cmov: invalid condition %d", uint8(in.RS2))
		}
		if err := checkReg(in.RD, "rd"); err != nil {
			return err
		}
		return checkReg(in.RS1, "rs1")
	case OpStore:
		if err := checkReg(in.RS1, "rs1"); err != nil {
			return err
		}
		return checkReg(in.RS2, "rs2")
	case OpLea3, OpXor3:
		if err := checkReg(in.RD, "rd"); err != nil {
			return err
		}
		if err := checkReg(in.RS1, "rs1"); err != nil {
			return err
		}
		return checkReg(in.RS2, "rs2")
	case OpMovRI, OpPop, OpAddI, OpSubI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpCmpI:
		return checkReg(in.RD, "rd")
	case OpPush, OpJmpR, OpCallR, OpOut:
		return checkReg(in.RS1, "rs1")
	default:
		// Two-register forms: rd and rs1.
		if err := checkReg(in.RD, "rd"); err != nil {
			return err
		}
		return checkReg(in.RS1, "rs1")
	}
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpRet, OpReport, OpTrapOut, OpPushF, OpPopF:
		return in.Op.String()
	case OpMovRI:
		return fmt.Sprintf("movi %s, %d", in.RD, in.Imm)
	case OpMovRR:
		return fmt.Sprintf("mov %s, %s", in.RD, in.RS1)
	case OpLea:
		return fmt.Sprintf("lea %s, [%s%+d]", in.RD, in.RS1, in.Imm)
	case OpLea3:
		return fmt.Sprintf("lea3 %s, [%s+%s%+d]", in.RD, in.RS1, in.RS2, in.Imm)
	case OpXor3:
		return fmt.Sprintf("xor3 %s, %s, %s, %d", in.RD, in.RS1, in.RS2, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load %s, [%s%+d]", in.RD, in.RS1, in.Imm)
	case OpStore:
		return fmt.Sprintf("store [%s%+d], %s", in.RS1, in.Imm, in.RS2)
	case OpPush:
		return fmt.Sprintf("push %s", in.RS1)
	case OpPop:
		return fmt.Sprintf("pop %s", in.RD)
	case OpAddI, OpSubI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpCmpI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.RD, in.Imm)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %+d", in.Op, in.Imm)
	case OpJcc:
		return fmt.Sprintf("j%s %+d", in.Cond(), in.Imm)
	case OpJrz:
		return fmt.Sprintf("jrz %s, %+d", in.RS1, in.Imm)
	case OpJmpR:
		return fmt.Sprintf("jmpr %s", in.RS1)
	case OpCallR:
		return fmt.Sprintf("callr %s", in.RS1)
	case OpCmov:
		return fmt.Sprintf("cmov%s %s, %s", in.CmovCond(), in.RD, in.RS1)
	case OpOut:
		return fmt.Sprintf("out %s", in.RS1)
	default:
		return fmt.Sprintf("%s %s, %s", in.Op, in.RD, in.RS1)
	}
}

// EncodeProgram serializes a sequence of instructions into a flat binary
// image, the "existing binary" format the DBT consumes.
func EncodeProgram(code []Instr) []byte {
	out := make([]byte, 0, len(code)*InstrBytes)
	for _, in := range code {
		b := in.Encode()
		out = append(out, b[:]...)
	}
	return out
}

// DecodeProgram deserializes a flat binary image into instructions.
func DecodeProgram(image []byte) ([]Instr, error) {
	if len(image)%InstrBytes != 0 {
		return nil, fmt.Errorf("image size %d is not a multiple of %d", len(image), InstrBytes)
	}
	code := make([]Instr, len(image)/InstrBytes)
	for i := range code {
		var b [InstrBytes]byte
		copy(b[:], image[i*InstrBytes:])
		code[i] = Decode(b)
	}
	return code, nil
}
