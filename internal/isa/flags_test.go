package isa

import (
	"testing"
	"testing/quick"
)

func TestSubFlagsBasics(t *testing.T) {
	cases := []struct {
		a, b int32
		want map[Flags]bool // flags that must be set / clear
	}{
		{5, 5, map[Flags]bool{FlagZ: true, FlagS: false, FlagC: false}},
		{3, 5, map[Flags]bool{FlagZ: false, FlagS: true, FlagC: true}},
		{5, 3, map[Flags]bool{FlagZ: false, FlagS: false, FlagC: false}},
		{-1, 1, map[Flags]bool{FlagS: true, FlagC: false}}, // 0xFFFFFFFF >= 1 unsigned
		{1, -1, map[Flags]bool{FlagS: false, FlagC: true}},
	}
	for _, c := range cases {
		f := SubFlags(c.a, c.b)
		for bit, want := range c.want {
			if got := f&bit != 0; got != want {
				t.Errorf("SubFlags(%d,%d): flag %v = %v, want %v (flags=%v)", c.a, c.b, bit, got, want, f)
			}
		}
	}
}

func TestSubFlagsOverflow(t *testing.T) {
	// INT32_MIN - 1 overflows.
	if f := SubFlags(-2147483648, 1); f&FlagO == 0 {
		t.Errorf("min-1 should overflow, flags=%v", f)
	}
	if f := SubFlags(2147483647, -1); f&FlagO == 0 {
		t.Errorf("max-(-1) should overflow, flags=%v", f)
	}
	if f := SubFlags(100, 50); f&FlagO != 0 {
		t.Errorf("100-50 should not overflow, flags=%v", f)
	}
}

// TestCondConsistentWithInts checks that every signed/unsigned condition
// evaluated over SubFlags agrees with direct integer comparison, the
// fundamental contract the machine relies on.
func TestCondConsistentWithInts(t *testing.T) {
	f := func(a, b int32) bool {
		fl := SubFlags(a, b)
		ua, ub := uint32(a), uint32(b)
		checks := []struct {
			c    Cond
			want bool
		}{
			{CondEQ, a == b}, {CondNE, a != b},
			{CondLT, a < b}, {CondLE, a <= b},
			{CondGT, a > b}, {CondGE, a >= b},
			{CondB, ua < ub}, {CondBE, ua <= ub},
			{CondA, ua > ub}, {CondAE, ua >= ub},
		}
		for _, ch := range checks {
			if ch.c.Eval(fl) != ch.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCondNegateProperty verifies c.Eval(f) == !c.Negate().Eval(f) for all
// conditions and all flag values — 16 conditions x 32 flag combinations.
func TestCondNegateProperty(t *testing.T) {
	for c := Cond(0); c.Valid(); c++ {
		n := c.Negate()
		if !n.Valid() {
			t.Fatalf("negate(%v) invalid", c)
		}
		if n.Negate() != c {
			t.Errorf("negate(negate(%v)) = %v", c, n.Negate())
		}
		for bits := Flags(0); bits <= FlagMask; bits++ {
			if c.Eval(bits) == n.Eval(bits) {
				t.Errorf("cond %v and its negation %v agree on flags %v", c, n, bits)
			}
		}
	}
}

func TestLogicFlags(t *testing.T) {
	if f := LogicFlags(0); f&FlagZ == 0 || f&FlagS != 0 || f&FlagC != 0 || f&FlagO != 0 {
		t.Errorf("LogicFlags(0) = %v", f)
	}
	if f := LogicFlags(-5); f&FlagS == 0 || f&FlagZ != 0 {
		t.Errorf("LogicFlags(-5) = %v", f)
	}
	// Parity: 3 = 0b11 has two bits -> even parity -> PF set.
	if f := LogicFlags(3); f&FlagP == 0 {
		t.Errorf("LogicFlags(3) should set parity, got %v", f)
	}
	if f := LogicFlags(1); f&FlagP != 0 {
		t.Errorf("LogicFlags(1) should clear parity, got %v", f)
	}
}

func TestAddFlags(t *testing.T) {
	if f := AddFlags(2147483647, 1); f&FlagO == 0 {
		t.Errorf("max+1 should overflow, got %v", f)
	}
	if f := AddFlags(-1, 1); f&FlagZ == 0 || f&FlagC == 0 {
		t.Errorf("-1+1 should set Z and carry, got %v", f)
	}
	if f := AddFlags(1, 2); f&(FlagZ|FlagS|FlagO|FlagC) != 0 {
		t.Errorf("1+2 flags = %v", f)
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagZ | FlagS).String(); got != "SZ" {
		t.Errorf("flags string = %q, want SZ", got)
	}
	if got := Flags(0).String(); got != "-" {
		t.Errorf("empty flags string = %q", got)
	}
}

func TestRegNames(t *testing.T) {
	if ESP.String() != "esp" || R12.String() != "r12" {
		t.Error("register names wrong")
	}
	if r, ok := RegByName("ebp"); !ok || r != EBP {
		t.Error("RegByName(ebp) failed")
	}
	if _, ok := RegByName("nope"); ok {
		t.Error("RegByName should fail for unknown names")
	}
	if !EDI.GuestValid() || R8.GuestValid() {
		t.Error("guest register validity wrong")
	}
	if RegPC != R12 || RegRTS != R13 || RegAUX != R14 || RegSCR != R15 {
		t.Error("instrumentation register conventions changed")
	}
}
