package isa

import (
	"strings"
	"testing"
)

func sampleProgram() *Program {
	return &Program{
		Name: "sample",
		Code: []Instr{
			{Op: OpMovRI, RD: EAX, Imm: 1},
			{Op: OpCmpI, RD: EAX, Imm: 0},
			{Op: OpJcc, RD: Reg(CondGT), Imm: -3}, // target 0
			{Op: OpOut, RS1: EAX},
			{Op: OpHalt},
		},
		Entry:     0,
		DataWords: 16,
		Symbols:   map[uint32]string{0: "main", 3: "done"},
	}
}

func TestProgramAccessors(t *testing.T) {
	p := sampleProgram()
	if p.Len() != 5 {
		t.Errorf("len = %d", p.Len())
	}
	if !p.Contains(4) || p.Contains(5) {
		t.Error("Contains wrong")
	}
	if p.At(3).Op != OpOut {
		t.Error("At wrong")
	}
	if p.SymbolAt(0) != "main" || p.SymbolAt(3) != "done" {
		t.Error("named symbols wrong")
	}
	if got := p.SymbolAt(2); !strings.HasPrefix(got, "0x") {
		t.Errorf("anonymous symbol = %q", got)
	}
}

func TestProgramValidate(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Errorf("sample should validate: %v", err)
	}

	empty := &Program{Name: "empty"}
	if empty.Validate() == nil {
		t.Error("empty program should fail")
	}

	badEntry := sampleProgram()
	badEntry.Entry = 99
	if badEntry.Validate() == nil {
		t.Error("out-of-range entry should fail")
	}

	wild := sampleProgram()
	wild.Code[2].Imm = 1000 // branch target outside image
	if wild.Validate() == nil {
		t.Error("wild branch target should fail")
	}

	pseudo := sampleProgram()
	pseudo.Code[3] = Instr{Op: OpReport}
	if pseudo.Validate() == nil {
		t.Error("guest binary with pseudo-op should fail")
	}
	pseudo.Target = true
	if err := pseudo.Validate(); err != nil {
		t.Errorf("target program may use pseudo-ops: %v", err)
	}

	targetRegs := sampleProgram()
	targetRegs.Code[0].RD = R12
	if targetRegs.Validate() == nil {
		t.Error("guest binary using target registers should fail")
	}
	targetRegs.Target = true
	if err := targetRegs.Validate(); err != nil {
		t.Errorf("target program may use r12: %v", err)
	}
}

func TestImageLoadRoundTrip(t *testing.T) {
	p := sampleProgram()
	img := p.Image()
	if len(img) != int(p.Len())*InstrBytes {
		t.Fatalf("image size = %d", len(img))
	}
	back, err := LoadImage("back", img, p.Entry, p.DataWords)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != p.Len() || back.DataWords != p.DataWords {
		t.Error("round trip lost metadata")
	}
	for i := range p.Code {
		if back.Code[i] != p.Code[i] {
			t.Errorf("instr %d differs", i)
		}
	}
	if _, err := LoadImage("bad", img[:7], 0, 0); err == nil {
		t.Error("truncated image should fail")
	}
	if _, err := LoadImage("bad", img, 99, 0); err == nil {
		t.Error("bad entry should fail validation")
	}
}

func TestInstrStringsExtended(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpXor3, RD: R15, RS1: EAX, RS2: R8, Imm: 0}, "xor3 r15, eax, r8, 0"},
		{Instr{Op: OpPushF}, "pushf"},
		{Instr{Op: OpPopF}, "popf"},
		{Instr{Op: OpLea3, RD: R12, RS1: R12, RS2: R15, Imm: 1}, "lea3 r12, [r12+r15+1]"},
		{Instr{Op: OpLoad, RD: EAX, RS1: ESP, Imm: -2}, "load eax, [esp-2]"},
		{Instr{Op: OpPush, RS1: EBX}, "push ebx"},
		{Instr{Op: OpPop, RD: EBX}, "pop ebx"},
		{Instr{Op: OpJmp, Imm: 9}, "jmp +9"},
		{Instr{Op: OpCall, Imm: -4}, "call -4"},
		{Instr{Op: OpJmpR, RS1: ECX}, "jmpr ecx"},
		{Instr{Op: OpCallR, RS1: ECX}, "callr ecx"},
		{Instr{Op: OpOut, RS1: EDI}, "out edi"},
		{Instr{Op: OpAddI, RD: EAX, Imm: 3}, "addi eax, 3"},
		{Instr{Op: OpAdd, RD: EAX, RS1: EBX}, "add eax, ebx"},
		{Instr{Op: OpFDiv, RD: EAX, RS1: EBX}, "fdiv eax, ebx"},
		{Instr{Op: OpTrapOut}, "trapout"},
		{Instr{Op: OpNop}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestNewOpsClassification(t *testing.T) {
	if OpXor3.WritesFlags() {
		t.Error("xor3 must be flag transparent (its whole purpose)")
	}
	if !OpPopF.WritesFlags() {
		t.Error("popf writes flags")
	}
	if OpPushF.WritesFlags() {
		t.Error("pushf reads flags only")
	}
	for _, op := range []Op{OpXor3, OpPushF, OpPopF} {
		if op.IsBranch() || op.IsTerminator() {
			t.Errorf("%v misclassified as control flow", op)
		}
	}
	if Reg(200).Valid() {
		t.Error("register 200 should be invalid")
	}
	if got := Reg(200).String(); !strings.HasPrefix(got, "r?") {
		t.Errorf("invalid reg name = %q", got)
	}
}
