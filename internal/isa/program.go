package isa

import "fmt"

// Program is a loaded guest binary: a flat code image plus an entry point.
// Addresses within the program are instruction-word indices starting at 0;
// the machine maps the code at a base address so that out-of-image branch
// targets model the paper's category F (jump to a non-code memory region).
type Program struct {
	// Name identifies the program (e.g. the benchmark name).
	Name string
	// Code is the decoded instruction stream.
	Code []Instr
	// Entry is the index of the first instruction to execute.
	Entry uint32
	// DataWords is the size of the initialized+bss data segment in words.
	// The stack grows down from the top of the data segment.
	DataWords uint32
	// Symbols optionally maps addresses to labels, for diagnostics.
	Symbols map[uint32]string
	// Target marks programs in the target ISA (16 registers, pseudo-ops
	// allowed): the output of static instrumentation rather than a guest
	// binary.
	Target bool
}

// Len returns the number of instructions in the program.
func (p *Program) Len() uint32 { return uint32(len(p.Code)) }

// Contains reports whether addr is a valid instruction address.
func (p *Program) Contains(addr uint32) bool { return addr < p.Len() }

// At returns the instruction at addr.
func (p *Program) At(addr uint32) Instr { return p.Code[addr] }

// SymbolAt returns the label at addr, or a hex rendering.
func (p *Program) SymbolAt(addr uint32) string {
	if s, ok := p.Symbols[addr]; ok {
		return s
	}
	return fmt.Sprintf("0x%x", addr)
}

// Validate checks every instruction against the guest register file and
// verifies that the entry point and all direct branch targets lie inside the
// image. It returns the first problem found.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("%s: empty program", p.Name)
	}
	if !p.Contains(p.Entry) {
		return fmt.Errorf("%s: entry 0x%x outside code (%d words)", p.Name, p.Entry, p.Len())
	}
	nregs := NumGuestRegs
	if p.Target {
		nregs = NumRegs
	}
	for addr, in := range p.Code {
		if err := in.Validate(nregs); err != nil {
			return fmt.Errorf("%s: @0x%x: %v", p.Name, addr, err)
		}
		if !p.Target && (in.Op == OpReport || in.Op == OpTrapOut) {
			return fmt.Errorf("%s: @0x%x: pseudo-op %s in guest binary", p.Name, addr, in.Op)
		}
		if in.Op.IsDirectBranch() {
			if tgt := in.Target(uint32(addr)); !p.Contains(tgt) {
				return fmt.Errorf("%s: @0x%x: branch target 0x%x outside code", p.Name, addr, tgt)
			}
		}
	}
	return nil
}

// Image serializes the program code to its binary form.
func (p *Program) Image() []byte { return EncodeProgram(p.Code) }

// LoadImage decodes a binary image into a Program with the given name,
// entry point and data size.
func LoadImage(name string, image []byte, entry, dataWords uint32) (*Program, error) {
	code, err := DecodeProgram(image)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	p := &Program{Name: name, Code: code, Entry: entry, DataWords: dataWords}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
