package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op.Valid(); op++ {
		s := op.String()
		if s == "" {
			t.Errorf("op %d has empty name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("invalid op name = %q", got)
	}
}

func TestOpClassification(t *testing.T) {
	branches := []Op{OpJmp, OpJcc, OpJrz, OpCall, OpRet, OpJmpR, OpCallR}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
		if !op.IsTerminator() {
			t.Errorf("%s should be a terminator", op)
		}
	}
	direct := map[Op]bool{OpJmp: true, OpJcc: true, OpJrz: true, OpCall: true}
	for _, op := range branches {
		if op.IsDirectBranch() != direct[op] {
			t.Errorf("%s IsDirectBranch = %v, want %v", op, op.IsDirectBranch(), direct[op])
		}
	}
	for _, op := range []Op{OpAdd, OpMovRI, OpLoad, OpOut, OpNop} {
		if op.IsBranch() || op.IsTerminator() {
			t.Errorf("%s should not be a branch/terminator", op)
		}
	}
	if !OpHalt.IsTerminator() || OpHalt.IsBranch() {
		t.Error("halt should terminate but not branch")
	}
	if !OpJcc.IsConditional() || !OpJrz.IsConditional() || OpJmp.IsConditional() {
		t.Error("conditional classification wrong")
	}
	if !OpJcc.HasFallthrough() || !OpCall.HasFallthrough() || OpJmp.HasFallthrough() || OpRet.HasFallthrough() {
		t.Error("fallthrough classification wrong")
	}
}

func TestLeaDoesNotWriteFlags(t *testing.T) {
	// The paper replaces xor with lea specifically because lea leaves
	// EFLAGS untouched; the instrumentation relies on this.
	for _, op := range []Op{OpLea, OpLea3, OpMovRI, OpMovRR, OpCmov, OpJrz, OpLoad, OpStore, OpPush, OpPop, OpOut} {
		if op.WritesFlags() {
			t.Errorf("%s must not write flags", op)
		}
	}
	for _, op := range []Op{OpAdd, OpXor, OpCmp, OpCmpI, OpTest, OpSubI, OpDiv} {
		if !op.WritesFlags() {
			t.Errorf("%s must write flags", op)
		}
	}
	if !OpJcc.UsesFlags() || !OpCmov.UsesFlags() || OpJrz.UsesFlags() {
		t.Error("flags readers misclassified")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: OpNop},
		{Op: OpMovRI, RD: EAX, Imm: -12345},
		{Op: OpLea3, RD: R12, RS1: R13, RS2: EBX, Imm: 1 << 30},
		{Op: OpJcc, RD: Reg(CondLE), Imm: -1},
		{Op: OpStore, RS1: EBP, RS2: ESI, Imm: 4096},
		{Op: OpCmov, RD: R12, RS1: R14, RS2: Reg(CondGT)},
		{Op: OpHalt},
	}
	for _, in := range ins {
		got := Decode(in.Encode())
		if got != in {
			t.Errorf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instr{Op: Op(op), RD: Reg(rd), RS1: Reg(rs1), RS2: Reg(rs2), Imm: imm}
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeAnyBitsProperty(t *testing.T) {
	// Decode must accept any 8 bytes (hardware decoders do not fail), and
	// re-encoding must reproduce the same bytes: the encoding is a bijection.
	f := func(b [InstrBytes]byte) bool {
		return Decode(b).Encode() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTargetOffsetInverse(t *testing.T) {
	f := func(ip uint32, off int32) bool {
		in := Instr{Op: OpJmp, Imm: off}
		tgt := in.Target(ip)
		return OffsetFor(ip, tgt) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		in    Instr
		nregs int
		ok    bool
	}{
		{Instr{Op: OpNop}, NumGuestRegs, true},
		{Instr{Op: Op(250)}, NumRegs, false},
		{Instr{Op: OpMovRI, RD: R12}, NumGuestRegs, false},
		{Instr{Op: OpMovRI, RD: R12}, NumRegs, true},
		{Instr{Op: OpJcc, RD: Reg(CondAE), Imm: 5}, NumGuestRegs, true},
		{Instr{Op: OpJcc, RD: Reg(99)}, NumGuestRegs, false},
		{Instr{Op: OpCmov, RD: EAX, RS1: EBX, RS2: Reg(CondEQ)}, NumGuestRegs, true},
		{Instr{Op: OpCmov, RD: EAX, RS1: EBX, RS2: Reg(77)}, NumGuestRegs, false},
		{Instr{Op: OpStore, RS1: ESP, RS2: R9, Imm: 0}, NumGuestRegs, false},
		{Instr{Op: OpStore, RS1: ESP, RS2: R9, Imm: 0}, NumRegs, true},
		{Instr{Op: OpLea3, RD: R12, RS1: R12, RS2: R15}, NumRegs, true},
		{Instr{Op: OpJrz, RS1: ECX, Imm: 2}, NumGuestRegs, true},
		{Instr{Op: OpJmp, Imm: 1000}, NumGuestRegs, true},
		{Instr{Op: OpAdd, RD: EAX, RS1: EDI}, NumGuestRegs, true},
		{Instr{Op: OpAdd, RD: EAX, RS1: R8}, NumGuestRegs, false},
	}
	for i, c := range cases {
		err := c.in.Validate(c.nregs)
		if (err == nil) != c.ok {
			t.Errorf("case %d (%v, nregs=%d): err=%v, want ok=%v", i, c.in, c.nregs, err, c.ok)
		}
	}
}

func TestProgramImageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	code := make([]Instr, 500)
	for i := range code {
		code[i] = Instr{
			Op:  Op(rng.Intn(NumOps)),
			RD:  Reg(rng.Intn(NumRegs)),
			RS1: Reg(rng.Intn(NumRegs)),
			RS2: Reg(rng.Intn(NumRegs)),
			Imm: int32(rng.Uint32()),
		}
	}
	img := EncodeProgram(code)
	if len(img) != len(code)*InstrBytes {
		t.Fatalf("image size = %d, want %d", len(img), len(code)*InstrBytes)
	}
	back, err := DecodeProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range code {
		if back[i] != code[i] {
			t.Fatalf("instr %d: got %+v, want %+v", i, back[i], code[i])
		}
	}
	if _, err := DecodeProgram(img[:len(img)-3]); err == nil {
		t.Error("truncated image should fail to decode")
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpMovRI, RD: EAX, Imm: 42}, "movi eax, 42"},
		{Instr{Op: OpLea, RD: R12, RS1: R12, Imm: -7}, "lea r12, [r12-7]"},
		{Instr{Op: OpJcc, RD: Reg(CondLE), Imm: 3}, "jle +3"},
		{Instr{Op: OpJrz, RS1: R12, Imm: 1}, "jrz r12, +1"},
		{Instr{Op: OpCmov, RD: R12, RS1: R14, RS2: Reg(CondGT)}, "cmovgt r12, r14"},
		{Instr{Op: OpStore, RS1: ESP, RS2: EAX, Imm: 2}, "store [esp+2], eax"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpReport}, "report"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
