package isa

import "fmt"

// Reg is a register number. The guest ISA ("x32") exposes registers 0-7 with
// IA32 names; the target ISA ("x64") adds R8-R15, which the dynamic binary
// translator reserves for instrumentation state, mirroring the paper's use of
// the extra EM64T registers so that "we do not need to spill registers to
// provide PC' and RTS".
type Reg uint8

// Guest registers (IA32 names).
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP // stack pointer; push/pop/call/ret operate on it implicitly
	EBP
	ESI
	EDI
	// Target-only registers (EM64T extension).
	R8
	R9
	R10
	R11
	R12 // conventionally PC' (the shadow program counter / signature register)
	R13 // conventionally RTS (run-time signature, ECF technique)
	R14 // conventionally AUX
	R15 // conventionally scratch

	regCount
)

// Instrumentation register conventions used by the checking techniques.
const (
	RegPC  = R12 // PC' signature register
	RegRTS = R13 // run-time adjusting signature (ECF)
	RegAUX = R14 // auxiliary register for conditional signature updates
	RegSCR = R15 // scratch
)

// NumGuestRegs is the number of registers addressable by guest binaries.
const NumGuestRegs = 8

// NumRegs is the number of registers in the target machine.
const NumRegs = int(regCount)

var regNames = [...]string{
	"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the architectural register name.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Valid reports whether r names a target machine register.
func (r Reg) Valid() bool { return r < regCount }

// GuestValid reports whether r names a guest machine register.
func (r Reg) GuestValid() bool { return r < NumGuestRegs }

// RegByName resolves an assembler register name (either namespace).
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}
