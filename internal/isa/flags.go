package isa

import "strings"

// Flags is the condition-flags register. It mirrors the subset of IA32
// EFLAGS that determines conditional branch direction: the paper's error
// model flips single bits "in the flags that determine the conditional
// branches direction", which on IA32 are CF, PF, ZF, SF and OF.
type Flags uint8

// Individual flag bits.
const (
	FlagC Flags = 1 << iota // carry (unsigned below)
	FlagP                   // parity of low result byte
	FlagZ                   // zero
	FlagS                   // sign
	FlagO                   // signed overflow
)

// NumFlagBits is the number of architecturally visible flag bits. The error
// model assigns one fault site per flag bit per executed conditional branch.
const NumFlagBits = 5

// FlagMask covers all defined flag bits.
const FlagMask Flags = FlagC | FlagP | FlagZ | FlagS | FlagO

// String renders the set flags, e.g. "ZP" or "-" when empty.
func (f Flags) String() string {
	var b strings.Builder
	for _, fb := range [...]struct {
		bit Flags
		ch  byte
	}{{FlagO, 'O'}, {FlagS, 'S'}, {FlagZ, 'Z'}, {FlagP, 'P'}, {FlagC, 'C'}} {
		if f&fb.bit != 0 {
			b.WriteByte(fb.ch)
		}
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// SubFlags computes the flags produced by the comparison a - b, with IA32
// semantics for Z, S, O (signed overflow of the subtraction), C (unsigned
// borrow) and P (parity of the low 8 bits of the result).
func SubFlags(a, b int32) Flags {
	r := a - b
	var f Flags
	if r == 0 {
		f |= FlagZ
	}
	if r < 0 {
		f |= FlagS
	}
	// Signed overflow: operands have different signs and the result's sign
	// differs from the minuend's.
	if (a < 0) != (b < 0) && (r < 0) != (a < 0) {
		f |= FlagO
	}
	if uint32(a) < uint32(b) {
		f |= FlagC
	}
	f |= parity(uint8(r))
	return f
}

// LogicFlags computes the flags produced by a logical result r: C and O are
// cleared, Z/S/P follow the result, matching IA32 and/or/xor/test semantics.
func LogicFlags(r int32) Flags {
	var f Flags
	if r == 0 {
		f |= FlagZ
	}
	if r < 0 {
		f |= FlagS
	}
	f |= parity(uint8(r))
	return f
}

// AddFlags computes the flags produced by a + b.
func AddFlags(a, b int32) Flags {
	r := a + b
	var f Flags
	if r == 0 {
		f |= FlagZ
	}
	if r < 0 {
		f |= FlagS
	}
	if (a < 0) == (b < 0) && (r < 0) != (a < 0) {
		f |= FlagO
	}
	if uint32(r) < uint32(a) {
		f |= FlagC
	}
	f |= parity(uint8(r))
	return f
}

func parity(b uint8) Flags {
	// IA32 PF is set when the low byte has an even number of set bits.
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	if b&1 == 0 {
		return FlagP
	}
	return 0
}

// Cond is a condition code for Jcc and CMOVcc, stored in the instruction's
// byte-1 field.
type Cond uint8

// Condition codes with IA32 meanings over the Flags register.
const (
	CondEQ Cond = iota // ZF
	CondNE             // !ZF
	CondLT             // SF != OF (signed <)
	CondLE             // ZF || SF != OF
	CondGT             // !ZF && SF == OF
	CondGE             // SF == OF
	CondB              // CF (unsigned <)
	CondBE             // CF || ZF
	CondA              // !CF && !ZF
	CondAE             // !CF
	CondS              // SF
	CondNS             // !SF
	CondP              // PF
	CondNP             // !PF
	CondO              // OF
	CondNO             // !OF

	condCount
)

// NumConds is the number of defined condition codes.
const NumConds = int(condCount)

var condNames = [...]string{
	CondEQ: "eq", CondNE: "ne", CondLT: "lt", CondLE: "le",
	CondGT: "gt", CondGE: "ge", CondB: "b", CondBE: "be",
	CondA: "a", CondAE: "ae", CondS: "s", CondNS: "ns",
	CondP: "p", CondNP: "np", CondO: "o", CondNO: "no",
}

// String returns the condition mnemonic suffix.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "??"
}

// Valid reports whether c is a defined condition code.
func (c Cond) Valid() bool { return c < condCount }

// Negate returns the complementary condition, such that for all flags f,
// c.Eval(f) == !c.Negate().Eval(f).
func (c Cond) Negate() Cond {
	// Conditions are laid out so most pairs are adjacent; handle explicitly
	// for clarity and safety.
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondGE:
		return CondLT
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondB:
		return CondAE
	case CondAE:
		return CondB
	case CondBE:
		return CondA
	case CondA:
		return CondBE
	case CondS:
		return CondNS
	case CondNS:
		return CondS
	case CondP:
		return CondNP
	case CondNP:
		return CondP
	case CondO:
		return CondNO
	case CondNO:
		return CondO
	}
	return c
}

// FlagsRead returns the flag bits the condition inspects: flipping a bit
// outside this set can never change the condition's verdict. The liveness
// pass uses it as the gen set of Jcc and CMOVcc.
func (c Cond) FlagsRead() Flags {
	switch c {
	case CondEQ, CondNE:
		return FlagZ
	case CondLT, CondGE:
		return FlagS | FlagO
	case CondLE, CondGT:
		return FlagZ | FlagS | FlagO
	case CondB, CondAE:
		return FlagC
	case CondBE, CondA:
		return FlagC | FlagZ
	case CondS, CondNS:
		return FlagS
	case CondP, CondNP:
		return FlagP
	case CondO, CondNO:
		return FlagO
	}
	// Undefined condition codes never evaluate true or false consistently;
	// be conservative and treat them as reading everything.
	return FlagMask
}

// Eval evaluates the condition against a flags value.
func (c Cond) Eval(f Flags) bool {
	zf := f&FlagZ != 0
	sf := f&FlagS != 0
	of := f&FlagO != 0
	cf := f&FlagC != 0
	pf := f&FlagP != 0
	switch c {
	case CondEQ:
		return zf
	case CondNE:
		return !zf
	case CondLT:
		return sf != of
	case CondLE:
		return zf || sf != of
	case CondGT:
		return !zf && sf == of
	case CondGE:
		return sf == of
	case CondB:
		return cf
	case CondBE:
		return cf || zf
	case CondA:
		return !cf && !zf
	case CondAE:
		return !cf
	case CondS:
		return sf
	case CondNS:
		return !sf
	case CondP:
		return pf
	case CondNP:
		return !pf
	case CondO:
		return of
	case CondNO:
		return !of
	}
	return false
}
