// Package isa defines the instruction set architecture shared by the guest
// ("x32", an IA32-flavoured machine with 8 general-purpose registers) and the
// target ("x64", an EM64T-flavoured machine with 16 registers) used throughout
// this reproduction of Borin et al., "Software-Based Transparent and
// Comprehensive Control-Flow Error Detection" (CGO 2006).
//
// Instructions are fixed-width 8-byte words:
//
//	byte 0   opcode
//	byte 1   destination register, or condition code for Jcc/CMOVcc
//	byte 2   first source register
//	byte 3   second source register
//	bytes 4-7  32-bit signed immediate, little endian
//
// Branch offsets are expressed in instruction words relative to the
// instruction that follows the branch (IA32-style relative addressing at word
// granularity). Using word rather than byte granularity keeps every 1-bit
// corruption of an offset decodable, which matches the paper's error model
// where any single bit flip in an address offset yields a well-defined
// (possibly wild) branch target.
package isa

import "fmt"

// Op is an opcode of the simulated architecture.
type Op uint8

// Opcode space. The guest programs produced by the workload generator use
// only the "guest" subset; the dynamic binary translator may additionally
// emit the instrumentation helpers (JRZ, REPORT, TRAPOUT) into translated
// code, mirroring how the paper's DBT emits EM64T-only instructions.
const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpHalt stops the machine; the program has finished.
	OpHalt

	// Data movement.
	OpMovRI // rd = imm (no flags)
	OpMovRR // rd = rs1 (no flags)
	OpLea   // rd = rs1 + imm (no flags; models IA32 "lea")
	OpLea3  // rd = rs1 + rs2 + imm (no flags; three-address lea)
	OpLoad  // rd = mem[rs1 + imm]
	OpStore // mem[rs1 + imm] = rs2
	OpPush  // sp--; mem[sp] = rs1
	OpPop   // rd = mem[sp]; sp++

	// Integer ALU (set flags).
	OpAdd  // rd = rd + rs1
	OpAddI // rd = rd + imm
	OpSub  // rd = rd - rs1
	OpSubI // rd = rd - imm
	OpAnd  // rd = rd & rs1
	OpAndI // rd = rd & imm
	OpOr   // rd = rd | rs1
	OpOrI  // rd = rd | imm
	OpXor  // rd = rd ^ rs1
	OpXorI // rd = rd ^ imm
	OpShl  // rd = rd << (rs1 & 31)
	OpShlI // rd = rd << (imm & 31)
	OpShr  // rd = rd >> (rs1 & 31) (logical)
	OpShrI // rd = rd >> (imm & 31) (logical)
	OpMul  // rd = rd * rs1
	OpDiv  // rd = rd / rs1; traps when rs1 == 0 (used by ECCA checks)

	// Comparison (flags only).
	OpCmp  // flags from rd - rs1
	OpCmpI // flags from rd - imm
	OpTest // flags from rd & rs1

	// Floating point (long-latency; registers hold float32 bit patterns).
	OpFAdd // rd = rd +f rs1
	OpFSub // rd = rd -f rs1
	OpFMul // rd = rd *f rs1
	OpFDiv // rd = rd /f rs1

	// Control flow.
	OpJmp   // ip = ip + 1 + imm
	OpJcc   // if cond(rd as Cond) { ip = ip + 1 + imm }
	OpJrz   // if rs1 == 0 { ip = ip + 1 + imm } (flag-free; models "jcxz")
	OpCall  // push ip+1; ip = ip + 1 + imm
	OpRet   // ip = pop()
	OpJmpR  // ip = rs1 (indirect jump)
	OpCallR // push ip+1; ip = rs1 (indirect call)

	// Conditional move.
	OpCmov // if cond(byte1 as Cond) { rd(rs2 field) = rs1 } -- see Instr docs

	// Output: append rs1 to the program's observable output stream. Silent
	// data corruption (SDC) is detected by comparing output streams.
	OpOut

	// OpXor3 is a target-only three-address xor (rd = rs1 ^ rs2 ^ imm)
	// that does not touch the flags — the EM64T-analogue liberty the
	// data-flow checker needs for flag-transparent value comparisons.
	OpXor3

	// OpPushF and OpPopF save and restore the flags register on the stack
	// (IA32 pushf/popf). They exist for the Section 5.1 ablation: xor-based
	// signature updates clobber EFLAGS and need them, which is exactly why
	// the paper switched to lea.
	OpPushF
	OpPopF

	// DBT/instrumentation pseudo-ops (never appear in guest binaries).
	OpReport  // control-flow error detected by a software check
	OpTrapOut // deliberate trap used by DBT exit stubs

	opCount // number of opcodes; keep last
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt",
	OpMovRI: "movi", OpMovRR: "mov", OpLea: "lea", OpLea3: "lea3",
	OpLoad: "load", OpStore: "store", OpPush: "push", OpPop: "pop",
	OpAdd: "add", OpAddI: "addi", OpSub: "sub", OpSubI: "subi",
	OpAnd: "and", OpAndI: "andi", OpOr: "or", OpOrI: "ori",
	OpXor: "xor", OpXorI: "xori", OpShl: "shl", OpShlI: "shli",
	OpShr: "shr", OpShrI: "shri", OpMul: "mul", OpDiv: "div",
	OpCmp: "cmp", OpCmpI: "cmpi", OpTest: "test",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpJmp: "jmp", OpJcc: "jcc", OpJrz: "jrz",
	OpCall: "call", OpRet: "ret", OpJmpR: "jmpr", OpCallR: "callr",
	OpCmov: "cmov", OpOut: "out", OpXor3: "xor3",
	OpPushF: "pushf", OpPopF: "popf",
	OpReport: "report", OpTrapOut: "trapout",
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount }

// IsBranch reports whether the opcode transfers control (other than
// fall-through). Halt, Report and TrapOut are terminators but not branches.
func (op Op) IsBranch() bool {
	switch op {
	case OpJmp, OpJcc, OpJrz, OpCall, OpRet, OpJmpR, OpCallR:
		return true
	}
	return false
}

// IsDirectBranch reports whether the opcode is a branch whose target is
// encoded as an immediate offset. These are the instructions subject to the
// paper's address-offset bit-flip error model; indirect branches (ret, jmpr,
// callr) are excluded, as in the paper (<5% of dynamic branches).
func (op Op) IsDirectBranch() bool {
	switch op {
	case OpJmp, OpJcc, OpJrz, OpCall:
		return true
	}
	return false
}

// IsConditional reports whether the branch depends on machine state
// (condition flags for Jcc, a register for Jrz) and may fall through.
func (op Op) IsConditional() bool { return op == OpJcc || op == OpJrz }

// UsesFlags reports whether the opcode reads the flags register.
func (op Op) UsesFlags() bool { return op == OpJcc || op == OpCmov }

// WritesFlags reports whether the opcode writes the flags register. The
// LEA family and plain moves deliberately do not: the paper replaces "xor"
// signature updates with "lea" precisely to keep EFLAGS intact.
func (op Op) WritesFlags() bool {
	switch op {
	case OpAdd, OpAddI, OpSub, OpSubI, OpAnd, OpAndI, OpOr, OpOrI,
		OpXor, OpXorI, OpShl, OpShlI, OpShr, OpShrI, OpMul, OpDiv,
		OpCmp, OpCmpI, OpTest, OpPopF:
		return true
	}
	return false
}

// IsTerminator reports whether the opcode ends a basic block.
func (op Op) IsTerminator() bool {
	return op.IsBranch() || op == OpHalt || op == OpReport || op == OpTrapOut
}

// HasFallthrough reports whether execution can continue at the next
// instruction after this terminator (conditional branches and calls).
// Call has a fall-through in the CFG sense: the return resumes after it.
func (op Op) HasFallthrough() bool {
	switch op {
	case OpJcc, OpJrz, OpCall, OpCallR:
		return true
	}
	return false
}
