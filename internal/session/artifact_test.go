package session

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/obs"
)

// artifactRegistry builds a registry wired to the artifact tier.
func artifactRegistry(store *artifact.Store, baseURL string) (*Registry, *obs.Registry) {
	reg := obs.NewRegistry()
	r := NewRegistry(Config{
		Metrics:   reg,
		Artifacts: &artifact.Client{BaseURL: baseURL, Local: store, Metrics: reg},
	})
	return r, reg
}

// The tentpole contract: a cold replica pointed at a warm artifact store
// builds nothing — zero reference recordings, zero block translations —
// and serves campaigns byte-identical to the replica that built the
// state locally. Exercised over HTTP for both a translator technique and
// a static baseline, under the checkpoint engine.
func TestArtifactColdRestoreOverHTTP(t *testing.T) {
	for _, tech := range []string{"RCF", "CFCSS"} {
		t.Run(tech, func(t *testing.T) {
			srv := httptest.NewServer(artifact.Handler(artifact.NewStore("")))
			defer srv.Close()
			k := testKey(tech, -1)

			rA, regA := artifactRegistry(artifact.NewStore(""), srv.URL)
			sA := mustSession(t, rA, k)
			if got := counter(regA, "session_warm_builds_total"); got != 1 {
				t.Fatalf("replica A warm builds = %d, want 1", got)
			}
			if got := counter(regA, "artifact_publish_total"); got != 1 {
				t.Fatalf("replica A publishes = %d, want 1", got)
			}

			rB, regB := artifactRegistry(artifact.NewStore(""), srv.URL)
			sB := mustSession(t, rB, k)
			if got := counter(regB, "session_restores_total"); got != 1 {
				t.Errorf("replica B restores = %d, want 1", got)
			}
			if got := counter(regB, "session_warm_builds_total"); got != 0 {
				t.Errorf("replica B warm builds = %d, want 0", got)
			}
			if got := counter(regB, "artifact_fetch_hits_total"); got != 1 {
				t.Errorf("replica B fetch hits = %d, want 1", got)
			}
			if got := recordings(regB); got != 0 {
				t.Errorf("replica B recordings = %d, want 0", got)
			}

			opts := core.Options{Workers: 2}
			repA, err := sA.Run(context.Background(), Spec{Samples: testSamples, Seed: 7}, opts)
			if err != nil {
				t.Fatal(err)
			}
			repB, err := sB.Run(context.Background(), Spec{Samples: testSamples, Seed: 7}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := inject.FormatNormalized(repB), inject.FormatNormalized(repA); got != want {
				t.Errorf("restored report differs from local build\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// A shared local store (two replicas on one disk) restores without any
// HTTP server, for the replay engine too (artifact carries the snapshot
// but no log).
func TestArtifactSharedLocalStore(t *testing.T) {
	store := artifact.NewStore(t.TempDir())
	k := testKey("RCF", 0)

	rA, _ := artifactRegistry(store, "")
	sA := mustSession(t, rA, k)

	rB, regB := artifactRegistry(store, "")
	sB := mustSession(t, rB, k)
	if got := counter(regB, "session_restores_total"); got != 1 {
		t.Errorf("restores = %d, want 1", got)
	}
	if got := counter(regB, "session_warm_builds_total"); got != 0 {
		t.Errorf("warm builds = %d, want 0", got)
	}

	repA, err := sA.Run(context.Background(), Spec{Samples: testSamples, Seed: 3}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := sB.Run(context.Background(), Spec{Samples: testSamples, Seed: 3}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := inject.FormatNormalized(repB), inject.FormatNormalized(repA); got != want {
		t.Errorf("restored report differs from local build\n got: %s\nwant: %s", got, want)
	}
}

// Verification failures must degrade to a local build that then serves
// correct campaigns — a bad artifact never poisons the registry.
func TestArtifactFailureFallsBackToLocalBuild(t *testing.T) {
	k := testKey("RCF", -1)

	// Warm a store, then change the step bound: the fingerprint differs,
	// so the fetch misses and the registry builds (and republishes).
	store := artifact.NewStore(t.TempDir())
	rA, _ := artifactRegistry(store, "")
	mustSession(t, rA, k)

	regB := obs.NewRegistry()
	rB := NewRegistry(Config{
		MaxSteps:  inject.DefaultMaxSteps / 2,
		Metrics:   regB,
		Artifacts: &artifact.Client{Local: store, Metrics: regB},
	})
	sB := mustSession(t, rB, k)
	if got := counter(regB, "session_restores_total"); got != 0 {
		t.Errorf("mismatched fingerprint restored: restores = %d, want 0", got)
	}
	if got := counter(regB, "session_warm_builds_total"); got != 1 {
		t.Errorf("warm builds = %d, want 1", got)
	}
	if got := counter(regB, "artifact_fetch_misses_total"); got != 1 {
		t.Errorf("fetch misses = %d, want 1", got)
	}

	rep, err := sB.Run(context.Background(), Spec{Samples: testSamples, Seed: 7}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != testSamples {
		t.Errorf("fallback session served %d samples, want %d", rep.Samples, testSamples)
	}

	// A corrupt blob behind a valid ref: corrupt counter, local build.
	badStore := artifact.NewStore("")
	blob := []byte("not an artifact")
	badStore.Put(blob)
	regC := obs.NewRegistry()
	rC := NewRegistry(Config{Metrics: regC, Artifacts: &artifact.Client{Local: badStore, Metrics: regC}})
	// Plant the garbage blob behind the exact fingerprint the registry
	// will derive for k, so the fetch resolves and fails verification.
	base, err := rC.Program(k.Workload, k.Scale)
	if err != nil {
		t.Fatal(err)
	}
	afp := rC.artifactFingerprint(&Session{Key: k, label: "RCF"}, base)
	if err := badStore.Link(artifact.RefID(afp), artifact.Digest(blob)); err != nil {
		t.Fatal(err)
	}
	sC := mustSession(t, rC, k)
	if got := counter(regC, "artifact_fetch_corrupt_total"); got != 1 {
		t.Errorf("corrupt fetches = %d, want 1", got)
	}
	if got := counter(regC, "session_warm_builds_total"); got != 1 {
		t.Errorf("warm builds after corrupt fetch = %d, want 1", got)
	}
	rep, err = sC.Run(context.Background(), Spec{Samples: testSamples, Seed: 7}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != testSamples {
		t.Errorf("post-corruption session served %d samples, want %d", rep.Samples, testSamples)
	}
}
