// The shared API surface: request bounds, the error shape and batch
// tracking that every route mounted on the serve mux — the campaign
// endpoint here and sibling handlers like the bench suite — validates
// and reports through, so one unauthenticated POST can never pin the
// server on an absurd run and every error reads the same on the wire.
package session

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// Served-request bounds defaults. Full-scale runs belong to the batch
// CLIs on the machine's own terms, not to an open HTTP port.
const (
	// DefaultMaxSamples bounds per-campaign sample counts accepted over HTTP.
	DefaultMaxSamples = 1_000_000
	// DefaultMaxScale bounds the workload dynamic scale.
	DefaultMaxScale = 1.0
	// DefaultMaxWorkers bounds the requested worker fan-out.
	DefaultMaxWorkers = 256
)

// Limits bounds what one request may ask for. The zero value means the
// defaults; every route on the serve mux validates through the same
// instance.
type Limits struct {
	MaxSamples int     // 0 = DefaultMaxSamples
	MaxScale   float64 // 0 = DefaultMaxScale
	MaxWorkers int     // 0 = DefaultMaxWorkers
}

// withDefaults fills zero fields.
func (l Limits) withDefaults() Limits {
	if l.MaxSamples <= 0 {
		l.MaxSamples = DefaultMaxSamples
	}
	if l.MaxScale <= 0 {
		l.MaxScale = DefaultMaxScale
	}
	if l.MaxWorkers <= 0 {
		l.MaxWorkers = DefaultMaxWorkers
	}
	return l
}

// CheckSamples validates a per-campaign sample count.
func (l Limits) CheckSamples(n int) error {
	l = l.withDefaults()
	if n < 0 || n > l.MaxSamples {
		return fmt.Errorf("samples %d out of range [0, %d]", n, l.MaxSamples)
	}
	return nil
}

// CheckSampleRange validates one campaign's global sample range
// [offset, offset+n) — the sharded form; offset 0 is a plain campaign.
// The whole range must fit the sample bound, so a fleet of shards can
// never address more global samples than one direct campaign could.
func (l Limits) CheckSampleRange(offset, n int) error {
	if err := l.CheckSamples(n); err != nil {
		return err
	}
	l = l.withDefaults()
	if offset < 0 || offset+n > l.MaxSamples {
		return fmt.Errorf("sample range [%d, %d) out of range [0, %d]", offset, offset+n, l.MaxSamples)
	}
	return nil
}

// CheckScale validates a workload dynamic scale.
func (l Limits) CheckScale(s float64) error {
	l = l.withDefaults()
	if s < 0 || s > l.MaxScale {
		return fmt.Errorf("scale %g out of range [0, %g]", s, l.MaxScale)
	}
	return nil
}

// CheckWorkers validates a requested worker fan-out.
func (l Limits) CheckWorkers(n int) error {
	l = l.withDefaults()
	if n < 0 || n > l.MaxWorkers {
		return fmt.Errorf("workers %d out of range [0, %d]", n, l.MaxWorkers)
	}
	return nil
}

// ErrorJSON is the API's error body: every route answers failures as
// {"error": "..."} with the status carrying the class.
type ErrorJSON struct {
	Error string `json:"error"`
}

// WriteError emits the shared error shape.
func WriteError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorJSON{Error: fmt.Sprintf(format, args...)})
}

// Route is one extra handler mounted on the serve mux by
// Server.Handler, next to the core campaign routes and behind the same
// server instance (Limits, Metrics, batch tracking).
type Route struct {
	// Pattern is a net/http method-qualified pattern, e.g. "POST /v1/bench".
	Pattern string
	Handler http.Handler
}

// Batch is a progress-tracked batch handle: its id is pollable at
// GET /v1/campaigns/{id}/progress until evicted. Sibling routes (the
// bench suite) track their runs through the same table, so one progress
// endpoint covers everything the server is doing.
type Batch struct{ bp *batchProgress }

// TrackBatch registers a batch of n campaigns under a server-assigned
// id. Callers set the Campaign-Id response header from ID, drive
// SetCampaign/Tracker as work proceeds, and Finish when done.
func (s *Server) TrackBatch(n int) *Batch {
	return &Batch{bp: s.registerBatch(n)}
}

// ID returns the server-assigned batch id (the Campaign-Id header).
func (b *Batch) ID() string { return b.bp.id }

// Tracker returns the batch's live progress tracker, suitable for
// core.Options.Progress.
func (b *Batch) Tracker() *obs.Progress { return b.bp.tracker }

// SetCampaign records which campaign of the batch is running.
func (b *Batch) SetCampaign(i int) { b.bp.campaign.Store(int64(i)) }

// Finish marks the batch completed (it stays pollable until evicted).
func (b *Batch) Finish() { b.bp.done.Store(true) }
