// The batch campaign API. One POST carries a session key plus a list of
// (seed, samples) campaigns; the response streams one NDJSON record per
// campaign as it completes, so a long batch delivers results
// incrementally. Campaigns in a batch run sequentially (each one fans its
// samples across the requested worker count), which keeps the stream
// order equal to the request order.
package session

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/obs"
)

// Server serves the batch campaign API over a warm-session registry.
type Server struct {
	Registry *Registry
	// Metrics backs the /metrics endpoint and is handed to every campaign;
	// nil disables both.
	Metrics *obs.Registry
	// Limits bounds what one request may ask for (zero value = defaults);
	// extra routes mounted via Handler validate against the same instance.
	Limits Limits

	// Batch progress tracking: every POST /v1/campaigns registers a
	// batchProgress under a server-assigned id (echoed in the Campaign-Id
	// response header) so GET /v1/campaigns/{id}/progress can poll a
	// running batch from a second connection.
	mu       sync.Mutex
	seq      int
	batches  map[string]*batchProgress
	batchIDs []string // registration order, oldest first

	// Drain state: StartDrain flips draining, after which Begin fails fast
	// with a JSON 503 instead of admitting new work, and DrainWait blocks
	// until every admitted request releases. draining is guarded by drainMu
	// (not mu) so a drain check never contends with batch registration.
	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup
	running  atomic.Int64 // admitted and not yet released, for /healthz
}

// Begin admits one work-carrying request (a campaign batch or a bench
// run). When the server is draining it writes the shared JSON 503 with a
// Retry-After hint and returns ok=false; otherwise the caller must defer
// the returned release. Read-only routes (progress, sessions, metrics,
// health) stay open during a drain and skip Begin.
func (s *Server) Begin(w http.ResponseWriter) (release func(), ok bool) {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusServiceUnavailable, "draining: not accepting new campaigns")
		return nil, false
	}
	// Add under the mutex so it cannot race a StartDrain+DrainWait pair
	// (Add-after-Wait is the classic WaitGroup misuse).
	s.inflight.Add(1)
	s.drainMu.Unlock()
	s.running.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.running.Add(-1)
			s.inflight.Done()
		})
	}, true
}

// StartDrain stops admitting new work: subsequent Begin calls fail fast
// with a JSON 503. In-flight requests keep running; pair with DrainWait.
func (s *Server) StartDrain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
}

// DrainWait blocks until every admitted request has released. Call after
// StartDrain; with new admissions refused the wait can only shrink.
func (s *Server) DrainWait() { s.inflight.Wait() }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// HealthJSON is the GET /healthz body. Status is "ok", "draining" (the
// server refuses new campaigns; the HTTP status is 503 so load-balancer
// probes eject the replica) or "restoring" (the artifact tier is
// populating the warm set — still ready, so the status stays 200).
type HealthJSON struct {
	Status   string `json:"status"`
	Inflight int64  `json:"inflight"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := HealthJSON{Status: "ok", Inflight: s.running.Load()}
	code := http.StatusOK
	if s.Registry != nil && s.Registry.Restoring() {
		h.Status = "restoring"
	}
	if s.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h)
}

// maxTrackedBatches bounds the progress map: finished batches stay
// pollable until evicted by newer registrations.
const maxTrackedBatches = 128

// batchProgress is one batch's live progress state.
type batchProgress struct {
	id        string
	campaigns int
	tracker   *obs.Progress
	campaign  atomic.Int64 // index of the campaign currently running
	done      atomic.Bool
}

// registerBatch assigns the next batch id and its tracker.
func (s *Server) registerBatch(campaigns int) *batchProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batches == nil {
		s.batches = map[string]*batchProgress{}
	}
	s.seq++
	bp := &batchProgress{
		id:        fmt.Sprintf("c%08d", s.seq),
		campaigns: campaigns,
		tracker:   obs.NewProgress(),
	}
	s.batches[bp.id] = bp
	s.batchIDs = append(s.batchIDs, bp.id)
	for len(s.batchIDs) > maxTrackedBatches {
		delete(s.batches, s.batchIDs[0])
		s.batchIDs = s.batchIDs[1:]
	}
	return bp
}

// Request is the POST /v1/campaigns body: one session key and the
// campaigns to run on it.
type Request struct {
	Workload     string  `json:"workload"`
	Scale        float64 `json:"scale"`
	Technique    string  `json:"technique"`
	Style        string  `json:"style"`
	Policy       string  `json:"policy"`
	CkptInterval int64   `json:"ckpt_interval"`
	// Workers shards each campaign's samples (0 = GOMAXPROCS). Results
	// are byte-identical for every value.
	Workers   int        `json:"workers"`
	Campaigns []SpecJSON `json:"campaigns"`
	// ProgressMs, when positive, interleaves progress frames (lines with a
	// single "progress" key) into the NDJSON stream at the given interval.
	// Opt-in, so default streams stay records-only and byte-comparable.
	ProgressMs int `json:"progress_ms"`
	// ReturnReport attaches the structured report to each record
	// (report_struct), so a fan-out front can merge shard reports
	// (inject.MergeReports) without re-parsing the normalized text.
	ReturnReport bool `json:"return_report"`
}

// SpecJSON is one campaign of a batch.
type SpecJSON struct {
	Seed    int64 `json:"seed"`
	Samples int   `json:"samples"`
	// SampleOffset makes the campaign one shard of a fanned-out run: it
	// executes global samples [SampleOffset, SampleOffset+Samples) (see
	// inject.Config.SampleOffset).
	SampleOffset int `json:"sample_offset,omitempty"`
}

// RecordJSON is one line of the NDJSON response stream.
type RecordJSON struct {
	Index   int   `json:"index"`
	Seed    int64 `json:"seed"`
	Samples int   `json:"samples"`
	// SampleOffset echoes the shard's first global sample index.
	SampleOffset int    `json:"sample_offset,omitempty"`
	Program      string `json:"program,omitempty"`
	Technique    string `json:"technique,omitempty"`
	// Error aborts the stream: the failing campaign's record is the last.
	Error       string         `json:"error,omitempty"`
	NotFired    int            `json:"not_fired"`
	Totals      map[string]int `json:"totals,omitempty"`
	Coverage    float64        `json:"coverage"`
	MeanLatency float64        `json:"mean_latency"`
	Workers     int            `json:"workers,omitempty"`
	ElapsedSec  float64        `json:"elapsed_sec"`
	// Engine telemetry: executed vs synthesized tails (offset not-taken
	// and liveness-pruned short-circuit families). Zero under the replay
	// engine; excluded from the normalized Report.
	Executed    int `json:"executed,omitempty"`
	ShortOffset int `json:"short_offset,omitempty"`
	ShortLive   int `json:"short_live,omitempty"`
	// Report is the normalized rendering (worker count and wall clock
	// zeroed): byte-identical to `cfc-inject -report-json` for the same
	// configuration, which the CI smoke test diffs against.
	Report string `json:"report,omitempty"`
	// Cached marks a campaign answered from the graph cell cache: the
	// classified results are byte-identical to an executed run, but no
	// samples actually executed (Workers and ElapsedSec read zero).
	Cached bool `json:"cached,omitempty"`
	// ReportStruct is the full structured report, attached only when the
	// request set return_report: the merge-ready form a fan-out front
	// feeds to inject.MergeReports.
	ReportStruct *inject.Report `json:"report_struct,omitempty"`
}

// Handler returns the API mux:
//
//	POST /v1/campaigns                running batch, streaming NDJSON records
//	GET  /v1/campaigns/{id}/progress  poll a running batch's progress
//	GET  /v1/sessions                 list the warm sessions
//	GET  /v1/version                  build and environment info
//	GET  /v1/metrics                  metrics snapshot as JSON (machine-mergeable)
//	GET  /metrics                     Prometheus text exposition
//	GET  /healthz                     readiness: ok / draining (503) / restoring
//
// extra routes mount on the same mux, behind the same server instance —
// the one place every served surface registers, so request bounds
// (Limits), the error shape (WriteError) and batch tracking (TrackBatch)
// are shared rather than duplicated per handler.
func (s *Server) Handler(extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	mux.HandleFunc("GET /v1/version", handleVersion)
	mux.HandleFunc("GET /v1/metrics", s.handleMetricsJSON)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// ProgressFrame is one interleaved progress line of the NDJSON stream.
// Record lines never carry a "progress" key, so consumers split on it.
type ProgressFrame struct {
	Progress *ProgressJSON `json:"progress"`
}

// ProgressJSON is a batch progress poll result: which campaign of the
// batch is running and the live fold of its tracker.
type ProgressJSON struct {
	ID        string `json:"id"`
	Campaign  int    `json:"campaign"`
	Campaigns int    `json:"campaigns"`
	Completed bool   `json:"completed"`
	obs.ProgressSnapshot
}

func progressJSON(bp *batchProgress) *ProgressJSON {
	return &ProgressJSON{
		ID:               bp.id,
		Campaign:         int(bp.campaign.Load()),
		Campaigns:        bp.campaigns,
		Completed:        bp.done.Load(),
		ProgressSnapshot: bp.tracker.Snapshot(),
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	s.mu.Lock()
	bp := s.batches[id]
	s.mu.Unlock()
	if bp == nil {
		WriteError(w, http.StatusNotFound, "unknown campaign id %s", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(progressJSON(bp))
}

// VersionInfo is the GET /v1/version response.
type VersionInfo struct {
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
	GoVersion string `json:"go_version"`
	// Backend is the execution backend campaigns resolve to by default.
	Backend string `json:"default_backend"`
}

func handleVersion(w http.ResponseWriter, _ *http.Request) {
	v := VersionInfo{
		GoVersion: runtime.Version(),
		Backend:   comp.BackendCompile.String(), // BackendAuto resolves to it
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.Module = bi.Main.Path
		v.Version = bi.Main.Version
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				v.Revision = kv.Value
			case "vcs.modified":
				v.Modified = kv.Value == "true"
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleCampaigns(w http.ResponseWriter, req *http.Request) {
	release, ok := s.Begin(w)
	if !ok {
		return
	}
	defer release()
	var body Request
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		WriteError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if body.Workload == "" {
		WriteError(w, http.StatusBadRequest, "bad request: workload required")
		return
	}
	if len(body.Campaigns) == 0 {
		WriteError(w, http.StatusBadRequest, "bad request: at least one campaign required")
		return
	}
	if err := s.Limits.CheckScale(body.Scale); err != nil {
		WriteError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if err := s.Limits.CheckWorkers(body.Workers); err != nil {
		WriteError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	for _, c := range body.Campaigns {
		if err := s.Limits.CheckSampleRange(c.SampleOffset, c.Samples); err != nil {
			WriteError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
	}
	k := Key{
		Workload:     body.Workload,
		Scale:        body.Scale,
		Technique:    body.Technique,
		Style:        body.Style,
		Policy:       body.Policy,
		CkptInterval: body.CkptInterval,
	}
	ctx := req.Context()
	// Validate the key without building: campaigns go through RunCell,
	// where a graph-cache hit must not pay a session build — but a bad
	// request still deserves a plain status before the stream commits.
	if err := s.Registry.Validate(k); err != nil {
		WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}

	bp := s.registerBatch(len(body.Campaigns))
	defer bp.done.Store(true)

	w.Header().Set("Campaign-Id", bp.id)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	// The progress ticker and the record loop share the connection, so
	// every NDJSON line goes through one mutex-held emit. The first encode
	// failure (client gone) is sticky: it stops the ticker too, instead of
	// only the record loop noticing between campaigns.
	var (
		wmu     sync.Mutex
		emitErr error
	)
	emit := func(v any) error {
		wmu.Lock()
		defer wmu.Unlock()
		if emitErr != nil {
			return emitErr
		}
		if err := enc.Encode(v); err != nil {
			emitErr = err
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if body.ProgressMs > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		// net/http forbids touching the ResponseWriter after the handler
		// returns, so the cleanup must join the goroutine, not just signal
		// it: close stop, then wait for done.
		defer func() {
			close(stop)
			<-done
		}()
		go func() {
			defer close(done)
			t := time.NewTicker(time.Duration(body.ProgressMs) * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// A tick that raced the close must not emit a frame
					// after the record loop wrote its final record.
					select {
					case <-stop:
						return
					default:
					}
					if emit(ProgressFrame{Progress: progressJSON(bp)}) != nil {
						return
					}
				}
			}
		}()
	}
	opts := core.Options{Metrics: s.Metrics, Workers: body.Workers, Progress: bp.tracker}
	for i, c := range body.Campaigns {
		bp.campaign.Store(int64(i))
		rec := RecordJSON{Index: i, Seed: c.Seed, Samples: c.Samples, SampleOffset: c.SampleOffset}
		rep, cached, err := s.Registry.RunCell(ctx, k,
			Spec{Samples: c.Samples, Seed: c.Seed, SampleOffset: c.SampleOffset}, opts)
		if err != nil {
			rec.Error = err.Error()
		} else {
			FillRecord(&rec, rep)
			rec.Cached = cached
			if body.ReturnReport {
				rec.ReportStruct = rep
			}
		}
		if encErr := emit(rec); encErr != nil {
			return // client went away
		}
		if err != nil {
			return
		}
	}
}

// FillRecord projects a report onto the wire record. Exported so a
// fan-out front can render a merged report as the same record shape the
// replicas stream.
func FillRecord(rec *RecordJSON, rep *inject.Report) {
	rec.Program = rep.Program
	rec.Technique = rep.Technique
	rec.Samples = rep.Samples
	rec.SampleOffset = rep.SampleOffset
	rec.NotFired = rep.NotFired
	rec.Coverage = rep.Totals.Coverage()
	rec.MeanLatency = rep.MeanLatency()
	rec.Workers = rep.Workers
	rec.ElapsedSec = rep.Elapsed.Seconds()
	rec.Executed = rep.Executed
	rec.ShortOffset = rep.ShortOffset
	rec.ShortLive = rep.ShortLive
	rec.Report = inject.FormatNormalized(rep)
	totals := map[string]int{}
	for o := inject.Outcome(0); o < inject.NumOutcomes; o++ {
		if n := rep.Totals.Count[o]; n > 0 {
			totals[o.String()] = n
		}
	}
	if len(totals) > 0 {
		rec.Totals = totals
	}
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Sessions []Info `json:"sessions"`
	}{s.Registry.List()})
}

// handleMetricsJSON serves the registry snapshot as JSON: the
// machine-readable twin of /metrics, which a front door polls per
// replica and merges (obs.Snapshot.Merge) into fleet-wide series.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	if s.Metrics == nil {
		WriteError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	obs.PublishRuntime(s.Metrics)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Metrics.Snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.Metrics == nil {
		WriteError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	// Process-health gauges refresh at scrape time only, so they never
	// perturb the deterministic campaign series.
	obs.PublishRuntime(s.Metrics)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics.Snapshot().WritePrometheus(w)
}
