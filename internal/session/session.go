// Package session implements the warm-session registry behind the batch
// injection service: one session per (workload, scale, technique, style,
// policy, checkpoint-interval) configuration, holding the lazily built
// program, the warmed translator snapshot and the recorded checkpoint log
// so that repeated campaigns pay the warm-up and reference-run cost once.
// Checkpoint logs persist to disk in a versioned, checksummed format (see
// internal/ckpt), so even a fresh process skips the reference recording
// when a valid cache file exists; files are fingerprinted by the session
// key and validated against the clean-run geometry, falling back to
// re-recording on any mismatch.
//
// Warm-up, fault derivation and recording are all deterministic, so a
// campaign served from a session is byte-identical to the same campaign
// run cold by cfc-inject — the registry changes only where the time goes.
package session

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbt"
	"repro/internal/fp"
	"repro/internal/graph"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// Key identifies one warm session: everything that shapes the snapshot and
// the checkpoint log. Campaign-level knobs (samples, seed, workers) are
// deliberately absent — they vary per request over the same session.
type Key struct {
	Workload     string
	Scale        float64
	Technique    string
	Style        string
	Policy       string
	CkptInterval int64
}

// String renders the key as the canonical fingerprint written into cache
// files and reported by the sessions endpoint.
func (k Key) String() string {
	return fmt.Sprintf("%s|%g|%s|%s|%s|%d",
		k.Workload, k.Scale, k.Technique, k.Style, k.Policy, k.CkptInterval)
}

// fileName maps the key to a cache file name: the readable fields
// sanitized plus a hash of the exact fingerprint, so distinct keys never
// share a file even when sanitizing collides.
func (k Key) fileName() string {
	return fp.FileName(k.String(), ".ckpt")
}

// Session is one warm configuration: the built (and, for the static
// baselines, instrumented) program, the stabilized translator snapshot,
// the clean-run geometry and — when the checkpoint engine is selected —
// the recorded reference log.
type Session struct {
	Key Key

	prog       *isa.Program
	static     bool
	tech       dbt.Technique // nil for static baselines
	pol        dbt.Policy
	label      string        // canonical technique label ("RCF", "CFCSS", ...)
	snap       *dbt.Snapshot // nil for static baselines
	cleanSteps uint64
	log        *ckpt.Log // nil when CkptInterval == 0

	// FromDisk reports that the checkpoint log was loaded from the cache
	// directory rather than recorded by this process.
	FromDisk bool

	mu        sync.Mutex
	campaigns int64
}

// Campaigns returns how many campaigns this session has served.
func (s *Session) Campaigns() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns
}

// Log returns the session's checkpoint log (nil for full-replay sessions).
func (s *Session) Log() *ckpt.Log { return s.log }

// Label returns the canonical technique label campaigns report under.
func (s *Session) Label() string { return s.label }

// CleanSteps returns the length of the clean reference run in steps.
func (s *Session) CleanSteps() uint64 { return s.cleanSteps }

// Spec is one campaign request against a session.
type Spec struct {
	Samples int
	Seed    int64
	// SampleOffset shifts the campaign onto global sample range
	// [SampleOffset, SampleOffset+Samples) — one shard of a fanned-out
	// campaign (see inject.Config.SampleOffset).
	SampleOffset int
}

// Run executes one campaign on the warm session. opts carries the
// per-request execution surface; its CkptInterval is overridden by the
// session key's (the log was recorded for that interval). The report is
// byte-identical to a cold cfc-inject run of the same configuration.
func (s *Session) Run(ctx context.Context, spec Spec, opts core.Options) (*inject.Report, error) {
	cfg := inject.Config{
		Samples:      spec.Samples,
		Seed:         spec.Seed,
		SampleOffset: spec.SampleOffset,
		Options:      opts,
	}
	cfg.CkptInterval = s.Key.CkptInterval
	var rep *inject.Report
	var err error
	if s.static {
		cfg.Policy = s.pol
		rep, err = inject.Execute(ctx, s.prog, cfg,
			inject.AsStatic(s.label), inject.WithRecording(s.log))
	} else {
		cfg.Technique, cfg.Policy = s.tech, s.pol
		rep, err = inject.Execute(ctx, s.prog, cfg,
			inject.WithSnapshot(s.snap, s.cleanSteps), inject.WithRecording(s.log))
	}
	if err == nil {
		s.mu.Lock()
		s.campaigns++
		s.mu.Unlock()
	}
	return rep, err
}

// Config parameterizes a Registry.
type Config struct {
	// CacheDir persists checkpoint logs across processes; "" keeps them
	// in memory only.
	CacheDir string
	// MaxSessions bounds the warm set; the least recently used session is
	// evicted when a build would exceed it. <= 0 means unbounded.
	MaxSessions int
	// MaxSteps bounds every clean and reference run (0 =
	// inject.DefaultMaxSteps).
	MaxSteps uint64
	// Metrics, when non-nil, receives the registry's cache accounting
	// (session_{hits,misses,evictions}_total, ckpt_disk_{hits,rerecords}_
	// total) plus the recording counters of every build.
	Metrics *obs.Registry
	// Graph, when non-nil, caches whole campaign cells by content key:
	// RunCell consults it before building a session, so a hit skips the
	// warm/record/inject pipeline entirely (see internal/graph).
	Graph *graph.Cache
	// Artifacts, when non-nil, is the warm-artifact tier: before building a
	// session locally the registry tries to fetch a published artifact
	// (snapshot + reference log) for the exact fingerprint, and after a
	// local build it publishes one back, so a cold replica pointed at a
	// warm store performs zero recordings and zero translations. Every
	// verification failure degrades to a local build (see internal/artifact).
	Artifacts *artifact.Client
}

// Registry builds sessions on demand, deduplicates concurrent builds of
// the same key, keeps the warm set under an LRU bound and shares program
// builds across sessions of the same (workload, scale).
type Registry struct {
	cfg Config

	// restoring counts in-flight artifact-tier restores, surfaced by the
	// health endpoint so a front door can tell "warming from the store"
	// apart from plain readiness.
	restoring atomic.Int64

	mu       sync.Mutex
	sessions map[Key]*entry
	order    []Key // LRU, least recently used first
	programs map[progKey]*progEntry
}

type entry struct {
	ready chan struct{} // closed when sess/err are set
	sess  *Session
	err   error
}

type progKey struct {
	workload string
	scale    float64
}

type progEntry struct {
	ready chan struct{}
	prog  *isa.Program
	err   error
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) *Registry {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = inject.DefaultMaxSteps
	}
	return &Registry{
		cfg:      cfg,
		sessions: map[Key]*entry{},
		programs: map[progKey]*progEntry{},
	}
}

// count bumps a registry accounting counter.
func (r *Registry) count(name string) {
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.Counter(name).Add(1)
	}
}

// Session returns the warm session for k, building it on first use. A
// concurrent second request for the same key waits for the in-flight
// build instead of duplicating it. ctx bounds the wait and the build.
func (r *Registry) Session(ctx context.Context, k Key) (*Session, error) {
	r.mu.Lock()
	if e, ok := r.sessions[k]; ok {
		r.touchLocked(k)
		r.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err == nil {
			r.count("session_hits_total")
		}
		return e.sess, e.err
	}
	e := &entry{ready: make(chan struct{})}
	r.sessions[k] = e
	r.order = append(r.order, k)
	evicted := r.evictLocked()
	r.mu.Unlock()
	r.sweepEvicted(evicted)
	r.count("session_misses_total")

	e.sess, e.err = r.build(ctx, k)
	close(e.ready)
	if e.err != nil {
		// A failed build must not poison the key forever (the failure may
		// be a canceled context).
		r.mu.Lock()
		if r.sessions[k] == e {
			delete(r.sessions, k)
			r.dropOrderLocked(k)
		}
		r.mu.Unlock()
	}
	return e.sess, e.err
}

// Graph returns the registry's cell cache (nil when disabled).
func (r *Registry) Graph() *graph.Cache { return r.cfg.Graph }

// RunCell resolves one campaign cell — Session+Run fused behind the
// graph cache. With no cache configured it builds the session and runs as
// always. With one, the cell's content key (program bytes, configuration,
// engine identity) is looked up first: a hit returns the cached
// normalized report without even building the session; a miss builds,
// runs, and stores the result for next time. cached reports which path
// answered. Reports are byte-identical either way, except that cached
// reports carry zero Workers/Elapsed (wall clock was not spent).
func (r *Registry) RunCell(ctx context.Context, k Key, spec Spec, opts core.Options) (*inject.Report, bool, error) {
	g := r.cfg.Graph
	if g == nil {
		sess, err := r.Session(ctx, k)
		if err != nil {
			return nil, false, err
		}
		rep, err := sess.Run(ctx, spec, opts)
		return rep, false, err
	}
	prog, err := r.program(k.Workload, k.Scale)
	if err != nil {
		return nil, false, err
	}
	ck := graph.KeyFor(prog, k.Technique, k.Style, k.Policy, spec.Samples, spec.Seed,
		spec.SampleOffset, k.CkptInterval, opts.Backend, r.cfg.MaxSteps)
	return g.Run(ck, opts.Metrics, func(m *obs.Registry) (*inject.Report, error) {
		sess, err := r.Session(ctx, k)
		if err != nil {
			return nil, err
		}
		copts := opts
		copts.Metrics = m
		return sess.Run(ctx, spec, copts)
	})
}

// Validate checks a key's campaign-independent fields — workload name,
// technique, style, policy — without building anything, so the batch API
// can reject a bad request with a status code before the stream (and any
// graph-cache consultation) starts.
func (r *Registry) Validate(k Key) error {
	if _, err := workloads.ByName(k.Workload); err != nil {
		return err
	}
	if _, err := core.ParsePolicy(k.Policy); err != nil {
		return err
	}
	if _, ok := staticKind(k.Technique); ok {
		return nil
	}
	style, err := core.ParseStyle(k.Style)
	if err != nil {
		return err
	}
	_, err = check.New(k.Technique, style)
	return err
}

// touchLocked moves k to the most-recently-used end.
func (r *Registry) touchLocked(k Key) {
	r.dropOrderLocked(k)
	r.order = append(r.order, k)
}

func (r *Registry) dropOrderLocked(k Key) {
	for i, o := range r.order {
		if o == k {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recently-used completed sessions until the warm
// set fits the bound, returning the evicted keys for the disk sweep (the
// file I/O must not run under the lock). In-flight builds are never
// evicted.
func (r *Registry) evictLocked() []Key {
	if r.cfg.MaxSessions <= 0 {
		return nil
	}
	var evicted []Key
	for i := 0; len(r.sessions) > r.cfg.MaxSessions && i < len(r.order); {
		k := r.order[i]
		e := r.sessions[k]
		select {
		case <-e.ready:
			delete(r.sessions, k)
			r.order = append(r.order[:i], r.order[i+1:]...)
			r.count("session_evictions_total")
			evicted = append(evicted, k)
		default:
			i++ // in flight; try the next oldest
		}
	}
	return evicted
}

// sweepEvicted inspects each evicted session's on-disk checkpoint log and
// deletes it when it is version-stale (decodes cleanly under a different
// fingerprint): such a file can never satisfy a future load, so leaving
// it would accumulate dead bytes in the cache directory. Valid files stay
// — the next build of the same key is exactly who they serve — and
// corrupt files stay too, to be overwritten in place by that build's
// re-record.
func (r *Registry) sweepEvicted(evicted []Key) {
	if r.cfg.CacheDir == "" {
		return
	}
	for _, k := range evicted {
		if k.CkptInterval == 0 {
			continue // replay sessions have no log
		}
		path := filepath.Join(r.cfg.CacheDir, k.fileName())
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		_, err = ckpt.DecodeLog(f, k.String())
		f.Close()
		if errors.Is(err, ckpt.ErrStale) {
			if os.Remove(path) == nil {
				r.count("ckpt_disk_stale_deleted_total")
			}
		}
	}
}

// Program returns the built workload for (workload, scale), deduplicated
// with the sessions that use it. The bench suite builds its workloads
// through the registry so HTTP-driven benchmarks and campaigns share one
// program build per configuration.
func (r *Registry) Program(workload string, scale float64) (*isa.Program, error) {
	return r.program(workload, scale)
}

// program returns the built workload, shared across every session (and
// technique) using the same (workload, scale).
func (r *Registry) program(workload string, scale float64) (*isa.Program, error) {
	pk := progKey{workload, scale}
	r.mu.Lock()
	pe, ok := r.programs[pk]
	if !ok {
		pe = &progEntry{ready: make(chan struct{})}
		r.programs[pk] = pe
	}
	r.mu.Unlock()
	if ok {
		<-pe.ready
		return pe.prog, pe.err
	}
	pe.prog, pe.err = core.Workload(workload, scale)
	close(pe.ready)
	if pe.err != nil {
		r.mu.Lock()
		if r.programs[pk] == pe {
			delete(r.programs, pk)
		}
		r.mu.Unlock()
	}
	return pe.prog, pe.err
}

// staticKind resolves a static-baseline technique name.
func staticKind(name string) (check.StaticKind, bool) {
	switch strings.ToUpper(name) {
	case "CFCSS":
		return check.StaticCFCSS, true
	case "ECCA":
		return check.StaticECCA, true
	}
	return 0, false
}

// build constructs the session for k: program, warm snapshot (DBT) or
// native clean run (static), and — for the checkpoint engine — the
// reference log, from disk when a valid cache file exists.
func (r *Registry) build(ctx context.Context, k Key) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	base, err := r.program(k.Workload, k.Scale)
	if err != nil {
		return nil, err
	}
	pol, err := core.ParsePolicy(k.Policy)
	if err != nil {
		return nil, err
	}
	s := &Session{Key: k, pol: pol}

	if kind, ok := staticKind(k.Technique); ok {
		s.static = true
		s.label = kind.String()
		if s.prog, err = check.InstrumentStatic(base, kind); err != nil {
			return nil, err
		}
		afp := r.artifactFingerprint(s, base)
		if r.restoreSession(s, afp, base) {
			return s, nil
		}
		m := cpu.New()
		m.Reset(s.prog)
		plan := cpu.NewPlan(s.prog.Code, nil)
		stop := m.RunPlan(&plan, r.cfg.MaxSteps)
		if stop.Reason != cpu.StopHalt {
			return nil, fmt.Errorf("%s: clean run ended with %v", s.prog.Name, stop)
		}
		s.cleanSteps = m.Steps
		if k.CkptInterval != 0 {
			s.log, s.FromDisk, err = r.referenceLog(k, s.label, m.Steps, m.DirectBranches, m.Output,
				func(interval uint64) (*ckpt.Log, error) {
					return ckpt.RecordStatic(s.prog, interval, r.cfg.MaxSteps)
				})
			if err != nil {
				return nil, err
			}
		}
		r.count("session_warm_builds_total")
		r.publishArtifact(s, afp, base)
		return s, nil
	}

	style, err := core.ParseStyle(k.Style)
	if err != nil {
		return nil, err
	}
	if s.tech, err = check.New(k.Technique, style); err != nil {
		return nil, err
	}
	s.label = "none"
	if s.tech != nil {
		s.label = s.tech.Name()
	}
	s.prog = base
	afp := r.artifactFingerprint(s, base)
	if r.restoreSession(s, afp, base) {
		return s, nil
	}
	wcfg := inject.Config{Technique: s.tech, Policy: pol, MaxSteps: r.cfg.MaxSteps}
	snap, clean, err := inject.Warm(base, wcfg)
	if err != nil {
		return nil, err
	}
	s.snap = snap
	s.cleanSteps = clean.Steps
	if k.CkptInterval != 0 {
		s.log, s.FromDisk, err = r.referenceLog(k, s.label, clean.Steps, clean.DirectBranches, clean.Output,
			func(interval uint64) (*ckpt.Log, error) {
				return ckpt.Record(snap, interval, r.cfg.MaxSteps)
			})
		if err != nil {
			return nil, err
		}
	}
	r.count("session_warm_builds_total")
	r.publishArtifact(s, afp, base)
	return s, nil
}

// artifactFingerprint derives the warm-artifact identity for the session
// under construction: the session key plus everything that shapes the
// warm state but is not in the key (program content, step budget, engine
// and technique versions). "" disables the tier for this build.
func (r *Registry) artifactFingerprint(s *Session, base *isa.Program) string {
	if r.cfg.Artifacts == nil {
		return ""
	}
	return artifact.Fingerprint(s.Key.String(), s.label, fp.Program(base), r.cfg.MaxSteps)
}

// restoreSession hydrates s from a fetched warm artifact. It reports true
// only when every piece the session needs restored cleanly — any
// shortfall (no artifact, backend mismatch, missing log, inconsistent
// snapshot) reports false and the caller builds locally, so a bad
// artifact can never poison the registry. A restored session performs
// zero reference recordings and zero block translations; its campaigns
// are byte-identical to a locally built session's.
func (r *Registry) restoreSession(s *Session, afp string, base *isa.Program) bool {
	if afp == "" {
		return false
	}
	r.restoring.Add(1)
	defer r.restoring.Add(-1)
	a := r.cfg.Artifacts.Fetch(afp)
	if a == nil {
		return false
	}
	if a.Static != s.static || a.CleanSteps == 0 {
		return false
	}
	if s.Key.CkptInterval != 0 && (a.Log == nil || !a.Log.Complete()) {
		return false
	}
	if !s.static {
		// Zero Backend mirrors the wcfg the local build would have used, so
		// the restored snapshot executes on the same engine tier.
		snap, err := dbt.RestoreSnapshot(base, dbt.Options{Technique: s.tech, Policy: s.pol}, a.Snapshot)
		if err != nil {
			return false
		}
		s.snap = snap
	}
	s.cleanSteps = a.CleanSteps
	if s.Key.CkptInterval != 0 {
		s.log = a.Log
	}
	r.count("session_restores_total")
	return true
}

// publishArtifact ships the locally built session to the artifact tier,
// best effort: an unexportable snapshot or a store failure degrades to
// not publishing, never to a build error.
func (r *Registry) publishArtifact(s *Session, afp string, base *isa.Program) {
	if afp == "" {
		return
	}
	a := &artifact.Artifact{
		Key:         s.Key.String(),
		ProgramHash: fp.Program(base),
		MaxSteps:    r.cfg.MaxSteps,
		CleanSteps:  s.cleanSteps,
		Static:      s.static,
		Log:         s.log,
	}
	if s.snap != nil {
		st, err := s.snap.State()
		if err != nil {
			return
		}
		a.Snapshot = st
	}
	r.cfg.Artifacts.Publish(a, afp)
}

// referenceLog produces the session's checkpoint log: a disk hit when the
// cache file decodes under k's fingerprint and matches the clean-run
// geometry, otherwise a fresh recording (persisted back when a cache
// directory is configured). record runs the engine-appropriate recorder.
func (r *Registry) referenceLog(k Key, label string, cleanSteps, cleanBranches uint64,
	cleanOutput []int32, record func(interval uint64) (*ckpt.Log, error)) (*ckpt.Log, bool, error) {
	interval := ckpt.AutoInterval(k.CkptInterval, cleanSteps)
	if l := r.loadLog(k, interval, cleanSteps, cleanBranches, cleanOutput); l != nil {
		r.count("ckpt_disk_hits_total")
		return l, true, nil
	}
	l, err := record(interval)
	if err != nil {
		return nil, false, err
	}
	if l.Stop.Reason != cpu.StopHalt {
		return nil, false, fmt.Errorf("%s: clean run ended with %v", k.Workload, l.Stop)
	}
	inject.PublishRecording(r.cfg.Metrics, label)
	r.count("ckpt_disk_rerecords_total")
	r.saveLog(k, l)
	return l, false, nil
}

// loadLog tries the cache file for k, validating the decode (magic,
// checksum, fingerprint) and the geometry against the just-measured clean
// run. Any failure returns nil: the caller re-records and overwrites.
func (r *Registry) loadLog(k Key, interval, cleanSteps, cleanBranches uint64, cleanOutput []int32) *ckpt.Log {
	if r.cfg.CacheDir == "" {
		return nil
	}
	f, err := os.Open(filepath.Join(r.cfg.CacheDir, k.fileName()))
	if err != nil {
		return nil
	}
	defer f.Close()
	l, err := ckpt.DecodeLog(f, k.String())
	if err != nil {
		if !errors.Is(err, ckpt.ErrStale) {
			r.count("ckpt_disk_corrupt_total")
		}
		return nil
	}
	if !l.Complete() ||
		l.Interval != interval ||
		l.Final.Steps != cleanSteps ||
		l.Final.DirectBranches != cleanBranches ||
		len(l.Output) != len(cleanOutput) {
		r.count("ckpt_disk_stale_total")
		return nil
	}
	for i := range l.Output {
		if l.Output[i] != cleanOutput[i] {
			r.count("ckpt_disk_stale_total")
			return nil
		}
	}
	return l
}

// saveLog persists the recording, best effort: a full disk or read-only
// cache directory degrades to memory-only sessions, never to an error.
// The write goes through a temp file + rename so a crash mid-write leaves
// either the old file or the new one, not a torn hybrid.
func (r *Registry) saveLog(k Key, l *ckpt.Log) {
	if r.cfg.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(r.cfg.CacheDir, 0o755); err != nil {
		return
	}
	dst := filepath.Join(r.cfg.CacheDir, k.fileName())
	tmp, err := os.CreateTemp(r.cfg.CacheDir, ".ckpt-*")
	if err != nil {
		return
	}
	err = l.EncodeTo(tmp, k.String())
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), dst)
	}
	if err != nil {
		os.Remove(tmp.Name())
	}
}

// Info describes one warm session for the sessions endpoint.
type Info struct {
	Workload     string  `json:"workload"`
	Scale        float64 `json:"scale"`
	Technique    string  `json:"technique"`
	Style        string  `json:"style,omitempty"`
	Policy       string  `json:"policy,omitempty"`
	CkptInterval int64   `json:"ckpt_interval"`
	Campaigns    int64   `json:"campaigns"`
	CleanSteps   uint64  `json:"clean_steps"`
	Points       int     `json:"ckpt_points,omitempty"`
	LogBytes     uint64  `json:"ckpt_bytes,omitempty"`
	FromDisk     bool    `json:"from_disk,omitempty"`
}

// List snapshots the warm set, sorted by key fingerprint so the output is
// stable across calls and internal map order.
func (r *Registry) List() []Info {
	r.mu.Lock()
	var ready []*Session
	for _, e := range r.sessions {
		select {
		case <-e.ready:
			if e.err == nil && e.sess != nil {
				ready = append(ready, e.sess)
			}
		default:
		}
	}
	r.mu.Unlock()
	sort.Slice(ready, func(a, b int) bool {
		return ready[a].Key.String() < ready[b].Key.String()
	})
	infos := make([]Info, 0, len(ready))
	for _, s := range ready {
		in := Info{
			Workload:     s.Key.Workload,
			Scale:        s.Key.Scale,
			Technique:    s.Key.Technique,
			Style:        s.Key.Style,
			Policy:       s.Key.Policy,
			CkptInterval: s.Key.CkptInterval,
			Campaigns:    s.Campaigns(),
			CleanSteps:   s.cleanSteps,
			FromDisk:     s.FromDisk,
		}
		if s.log != nil {
			in.Points = len(s.log.Points)
			in.LogBytes = s.log.Bytes
		}
		infos = append(infos, in)
	}
	return infos
}

// Restoring reports whether any session build is currently pulling a warm
// artifact from the tier (populating the warm set from the store).
func (r *Registry) Restoring() bool { return r.restoring.Load() > 0 }

// Len returns the number of warm (or building) sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}
