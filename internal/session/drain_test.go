package session

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/inject"
	"repro/internal/obs"
)

func getHealth(t *testing.T, url string) (int, HealthJSON) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	return resp.StatusCode, h
}

// /healthz walks ok → restoring → draining with the right status codes:
// restoring keeps 200 (the replica is still serving), draining flips to
// 503 so probes and front doors eject it.
func TestHealthzStates(t *testing.T) {
	reg := obs.NewRegistry()
	registry := NewRegistry(Config{Metrics: reg})
	srv := &Server{Registry: registry, Metrics: reg}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, h := getHealth(t, ts.URL); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("fresh server: got %d %q, want 200 ok", code, h.Status)
	}

	registry.restoring.Add(1)
	if code, h := getHealth(t, ts.URL); code != http.StatusOK || h.Status != "restoring" {
		t.Fatalf("restoring: got %d %q, want 200 restoring", code, h.Status)
	}
	registry.restoring.Add(-1)

	srv.StartDrain()
	if code, h := getHealth(t, ts.URL); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining: got %d %q, want 503 draining", code, h.Status)
	}
}

// A draining server fails new campaign POSTs fast with the shared JSON
// 503 shape (never a hung or refused connection), keeps read-only routes
// open, and DrainWait returns once admitted work releases.
func TestDrainRefusesNewCampaigns(t *testing.T) {
	reg := obs.NewRegistry()
	srv := &Server{Registry: NewRegistry(Config{Metrics: reg}), Metrics: reg}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// An admitted request in flight: drain must wait for it.
	rec := httptest.NewRecorder()
	release, ok := srv.Begin(rec)
	if !ok {
		t.Fatal("Begin refused on a fresh server")
	}
	if n := srv.running.Load(); n != 1 {
		t.Fatalf("running = %d after Begin, want 1", n)
	}
	srv.StartDrain()

	body := `{"workload":"164.gzip","scale":0.02,"campaigns":[{"seed":1,"samples":1}]}`
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST: got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining POST: missing Retry-After")
	}
	var e ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("draining POST: body is not the shared error shape: %v", err)
	}

	// Read-only routes stay open during the drain.
	vresp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sessions while draining: got %d, want 200", vresp.StatusCode)
	}

	done := make(chan struct{})
	go func() {
		srv.DrainWait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("DrainWait returned with a request still admitted")
	default:
	}
	release()
	release() // double release must be a no-op, not a WaitGroup panic
	<-done
	if n := srv.running.Load(); n != 0 {
		t.Fatalf("running = %d after release, want 0", n)
	}
}

// A sharded batch (sample_offset + return_report) answers with
// merge-ready structured reports: MergeReports over the shard records
// reassembles the unsharded record byte for byte.
func TestShardedBatchMergesToWholeCampaign(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	const seed, total, split = 41, 30, 12

	req := Request{
		Workload: testWorkload, Scale: testScale, Technique: "RCF",
		CkptInterval: -1, Workers: 1, ReturnReport: true,
		Campaigns: []SpecJSON{{Seed: seed, Samples: total}},
	}
	code, whole, raw := postBatch(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("whole batch: %d: %s", code, raw)
	}
	if whole[0].ReportStruct == nil {
		t.Fatal("return_report set but report_struct missing")
	}

	req.Campaigns = []SpecJSON{
		{Seed: seed, Samples: split},
		{Seed: seed, Samples: total - split, SampleOffset: split},
	}
	code, shards, raw := postBatch(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("shard batch: %d: %s", code, raw)
	}
	if shards[1].SampleOffset != split {
		t.Fatalf("shard record echoes offset %d, want %d", shards[1].SampleOffset, split)
	}
	merged, err := inject.MergeReports([]*inject.Report{shards[0].ReportStruct, shards[1].ReportStruct})
	if err != nil {
		t.Fatalf("MergeReports over wire reports: %v", err)
	}
	if got, want := inject.FormatNormalized(merged), whole[0].Report; got != want {
		t.Errorf("merged shard reports != whole campaign report\n--- merged ---\n%s\n--- whole ---\n%s", got, want)
	}
}

// Shard ranges validate against the same sample bound as plain
// campaigns: a negative offset or a range past MaxSamples is a 400.
func TestSampleRangeValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	for _, spec := range []SpecJSON{
		{Seed: 1, Samples: 1, SampleOffset: -1},
		{Seed: 1, Samples: 2, SampleOffset: DefaultMaxSamples - 1},
	} {
		code, _, raw := postBatch(t, ts, Request{
			Workload: testWorkload, Scale: testScale,
			Campaigns: []SpecJSON{spec},
		})
		if code != http.StatusBadRequest {
			t.Errorf("offset %d samples %d: got %d, want 400 (%s)",
				spec.SampleOffset, spec.Samples, code, raw)
		}
	}
}

// /v1/metrics serves the registry snapshot as JSON, decodable into the
// same obs.Snapshot shape the front door merges across replicas.
func TestMetricsJSONEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	code, _, raw := postBatch(t, ts, Request{
		Workload: testWorkload, Scale: testScale, Technique: "RCF",
		CkptInterval: -1, Workers: 1,
		Campaigns: []SpecJSON{{Seed: 7, Samples: 3}},
	})
	if code != http.StatusOK {
		t.Fatalf("batch: %d: %s", code, raw)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v", err)
	}
	if snap.Counters["session_warm_builds_total"] != 1 {
		t.Fatalf("session_warm_builds_total = %d, want 1 (counters: %v)",
			snap.Counters["session_warm_builds_total"], snap.Counters)
	}
}
