package session

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inject"
	"repro/internal/obs"
)

// The test key family: one real workload at a tiny scale so every build
// (program + warm-up + reference recording) stays in the tens of
// milliseconds.
const (
	testWorkload = "164.gzip"
	testScale    = 0.02
	testSamples  = 40
)

func testKey(tech string, iv int64) Key {
	return Key{
		Workload:     testWorkload,
		Scale:        testScale,
		Technique:    tech,
		Style:        "CMOVcc",
		Policy:       "ALLBB",
		CkptInterval: iv,
	}
}

func mustSession(t *testing.T, r *Registry, k Key) *Session {
	t.Helper()
	s, err := r.Session(context.Background(), k)
	if err != nil {
		t.Fatalf("session %v: %v", k, err)
	}
	return s
}

func counter(reg *obs.Registry, name string) uint64 {
	return reg.Snapshot().Counters[name]
}

// recordings sums ckpt_recordings_total across techniques: the "did any
// reference run actually re-record" signal the warm-cache CI check gates
// on.
func recordings(reg *obs.Registry) uint64 {
	var n uint64
	for name, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, "ckpt_recordings_total") {
			n += v
		}
	}
	return n
}

// Cache accounting: first use of a key is a miss, reuse is a hit, and the
// LRU bound evicts the coldest completed session.
func TestRegistryHitMissEviction(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRegistry(Config{MaxSessions: 1, Metrics: reg})

	a, b := testKey("none", 0), testKey("RCF", 0)
	first := mustSession(t, r, a)
	if again := mustSession(t, r, a); again != first {
		t.Error("second lookup built a new session instead of reusing")
	}
	mustSession(t, r, b)
	if got := r.Len(); got != 1 {
		t.Errorf("warm set holds %d sessions, want 1 (MaxSessions)", got)
	}
	if got := counter(reg, "session_misses_total"); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := counter(reg, "session_hits_total"); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := counter(reg, "session_evictions_total"); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// The evicted key rebuilds: a third miss, not an error.
	mustSession(t, r, a)
	if got := counter(reg, "session_misses_total"); got != 3 {
		t.Errorf("misses after rebuild = %d, want 3", got)
	}
}

// Persistence round trip: a second registry on the same cache directory
// must load the recorded log from disk — zero re-recordings — and serve
// campaigns byte-identical to the registry that recorded it.
func TestDiskPersistenceRoundTrip(t *testing.T) {
	for _, tech := range []string{"RCF", "CFCSS"} {
		t.Run(tech, func(t *testing.T) {
			dir := t.TempDir()
			k := testKey(tech, -1)

			reg1 := obs.NewRegistry()
			r1 := NewRegistry(Config{CacheDir: dir, Metrics: reg1})
			s1 := mustSession(t, r1, k)
			if s1.FromDisk {
				t.Error("cold build claims FromDisk")
			}
			if got := recordings(reg1); got != 1 {
				t.Errorf("cold build recordings = %d, want 1", got)
			}
			if got := counter(reg1, "ckpt_disk_rerecords_total"); got != 1 {
				t.Errorf("cold build rerecords = %d, want 1", got)
			}
			if _, err := os.Stat(filepath.Join(dir, k.fileName())); err != nil {
				t.Fatalf("cache file not written: %v", err)
			}

			reg2 := obs.NewRegistry()
			r2 := NewRegistry(Config{CacheDir: dir, Metrics: reg2})
			s2 := mustSession(t, r2, k)
			if !s2.FromDisk {
				t.Error("warmed-cache build did not load from disk")
			}
			if got := recordings(reg2); got != 0 {
				t.Errorf("warmed-cache build recordings = %d, want 0", got)
			}
			if got := counter(reg2, "ckpt_disk_hits_total"); got != 1 {
				t.Errorf("disk hits = %d, want 1", got)
			}
			if !reflect.DeepEqual(s2.Log(), s1.Log()) {
				t.Fatal("decoded log differs from recorded log")
			}
			// Bit-identical machine reconstruction from the loaded log.
			orig, dec := s1.Log().NewReplayer(), s2.Log().NewReplayer()
			for _, pt := range []int{0, len(s1.Log().Points) - 1} {
				if !reflect.DeepEqual(dec.Machine(pt), orig.Machine(pt)) {
					t.Fatalf("point %d: restored machine differs", pt)
				}
			}

			// Byte-identical campaigns across the two processes' sessions.
			opts := core.Options{Workers: 2}
			rep1, err := s1.Run(context.Background(), Spec{Samples: testSamples, Seed: 7}, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep2, err := s2.Run(context.Background(), Spec{Samples: testSamples, Seed: 7}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := inject.FormatNormalized(rep2), inject.FormatNormalized(rep1); got != want {
				t.Errorf("warm report differs from cold\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// A corrupt cache file must fall back to re-recording (and heal the file
// for the next process), never fail the build or poison the report.
func TestCorruptCacheFallsBack(t *testing.T) {
	dir := t.TempDir()
	k := testKey("RCF", -1)
	path := filepath.Join(dir, k.fileName())
	if err := os.WriteFile(path, []byte("not a checkpoint log"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	r := NewRegistry(Config{CacheDir: dir, Metrics: reg})
	s := mustSession(t, r, k)
	if s.FromDisk {
		t.Error("corrupt file was trusted")
	}
	if got := counter(reg, "ckpt_disk_corrupt_total"); got != 1 {
		t.Errorf("corrupt = %d, want 1", got)
	}
	if got := counter(reg, "ckpt_disk_rerecords_total"); got != 1 {
		t.Errorf("rerecords = %d, want 1", got)
	}

	// The re-recording overwrote the garbage: a fresh registry now hits.
	reg2 := obs.NewRegistry()
	r2 := NewRegistry(Config{CacheDir: dir, Metrics: reg2})
	if s2 := mustSession(t, r2, k); !s2.FromDisk {
		t.Error("healed cache file not loaded")
	}
	if got := counter(reg2, "ckpt_disk_hits_total"); got != 1 {
		t.Errorf("disk hits after heal = %d, want 1", got)
	}
}

// A structurally valid file recorded under a different configuration
// (wrong fingerprint, or right fingerprint but wrong geometry) is stale:
// re-record, don't trust it.
func TestStaleCacheFallsBack(t *testing.T) {
	dir := t.TempDir()
	k := testKey("RCF", -1)

	// Record once to obtain a genuine log to tamper with.
	seed := mustSession(t, NewRegistry(Config{CacheDir: dir}), k)
	path := filepath.Join(dir, k.fileName())

	t.Run("wrong fingerprint", func(t *testing.T) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := seed.Log().EncodeTo(f, "some|other|key"); err != nil {
			t.Fatal(err)
		}
		f.Close()
		reg := obs.NewRegistry()
		s := mustSession(t, NewRegistry(Config{CacheDir: dir, Metrics: reg}), k)
		if s.FromDisk {
			t.Error("stale-fingerprint file was trusted")
		}
		if got := counter(reg, "ckpt_disk_corrupt_total"); got != 0 {
			t.Errorf("stale counted as corrupt (%d)", got)
		}
		if got := counter(reg, "ckpt_disk_rerecords_total"); got != 1 {
			t.Errorf("rerecords = %d, want 1", got)
		}
	})

	t.Run("wrong geometry", func(t *testing.T) {
		tampered := *seed.Log()
		tampered.Interval++
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := tampered.EncodeTo(f, k.String()); err != nil {
			t.Fatal(err)
		}
		f.Close()
		reg := obs.NewRegistry()
		s := mustSession(t, NewRegistry(Config{CacheDir: dir, Metrics: reg}), k)
		if s.FromDisk {
			t.Error("wrong-geometry file was trusted")
		}
		if got := counter(reg, "ckpt_disk_stale_total"); got != 1 {
			t.Errorf("stale = %d, want 1", got)
		}
		if got := counter(reg, "ckpt_disk_rerecords_total"); got != 1 {
			t.Errorf("rerecords = %d, want 1", got)
		}
	})
}

// Evicting a session sweeps its on-disk log exactly when the file is
// version-stale: dead bytes (a log recorded under another fingerprint)
// are deleted, a valid file stays for the key's next build.
func TestEvictionSweepsStaleDiskLog(t *testing.T) {
	dir := t.TempDir()
	a, b := testKey("RCF", -1), testKey("none", -1)
	reg := obs.NewRegistry()
	r := NewRegistry(Config{CacheDir: dir, MaxSessions: 1, Metrics: reg})

	sa := mustSession(t, r, a)
	path := filepath.Join(dir, a.fileName())
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	// Replace a's log with one recorded under a different fingerprint —
	// the shape a version bump or config change leaves behind — and evict.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Log().EncodeTo(f, "some|other|key"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	mustSession(t, r, b) // evicts a
	if got := counter(reg, "session_evictions_total"); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("stale log survived eviction (stat: %v)", err)
	}
	if got := counter(reg, "ckpt_disk_stale_deleted_total"); got != 1 {
		t.Errorf("stale deletions = %d, want 1", got)
	}

	// Control: a valid file must survive its session's eviction — it is
	// exactly what the next build of the same key loads.
	mustSession(t, r, a) // rebuilds and rewrites the file, evicts b
	mustSession(t, r, b) // evicts a again, now with a valid file
	if _, err := os.Stat(path); err != nil {
		t.Errorf("valid log deleted on eviction: %v", err)
	}
	if got := counter(reg, "ckpt_disk_stale_deleted_total"); got != 1 {
		t.Errorf("stale deletions after valid eviction = %d, want 1", got)
	}
}

// RunCell behind a graph cache: the first call computes through a session,
// the second answers from the cache without touching the session layer,
// and both render identically.
func TestRunCellGraphCache(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRegistry(Config{Metrics: reg, Graph: graph.New("")})
	k := testKey("RCF", -1)
	spec := Spec{Samples: testSamples, Seed: 7}
	opts := core.Options{Metrics: reg}

	rep1, cached1, err := r.RunCell(context.Background(), k, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached1 {
		t.Error("cold cell claimed a cache hit")
	}
	if got := counter(reg, "session_misses_total"); got != 1 {
		t.Errorf("cold cell session misses = %d, want 1", got)
	}

	rep2, cached2, err := r.RunCell(context.Background(), k, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cached2 {
		t.Error("warm cell missed the cache")
	}
	// The hit answered before the session layer: no new build, no hit.
	if got := counter(reg, "session_misses_total") + counter(reg, "session_hits_total"); got != 1 {
		t.Errorf("warm cell touched the session layer (hits+misses = %d, want 1)", got)
	}
	if got, want := inject.FormatNormalized(rep2), inject.FormatNormalized(rep1); got != want {
		t.Errorf("cached cell renders differently\n got: %s\nwant: %s", got, want)
	}

	// Without a cache RunCell is Session+Run: never cached.
	r2 := NewRegistry(Config{})
	if _, cached, err := r2.RunCell(context.Background(), k, spec, core.Options{}); err != nil || cached {
		t.Errorf("uncached RunCell: cached=%v err=%v", cached, err)
	}
}

// Validate rejects bad campaign-independent fields without building.
func TestValidate(t *testing.T) {
	r := NewRegistry(Config{})
	if err := r.Validate(testKey("RCF", -1)); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
	if err := r.Validate(testKey("CFCSS", 0)); err != nil {
		t.Errorf("static technique rejected: %v", err)
	}
	for name, k := range map[string]Key{
		"workload":  {Workload: "999.nope", Technique: "RCF", Style: "CMOVcc", Policy: "ALLBB"},
		"technique": {Workload: testWorkload, Technique: "XYZ", Style: "CMOVcc", Policy: "ALLBB"},
		"style":     {Workload: testWorkload, Technique: "RCF", Style: "weird", Policy: "ALLBB"},
		"policy":    {Workload: testWorkload, Technique: "RCF", Style: "CMOVcc", Policy: "nope"},
	} {
		if err := r.Validate(k); err == nil {
			t.Errorf("bad %s accepted", name)
		}
	}
}

// Concurrent first requests for one key must share a single build.
func TestConcurrentBuildsDeduplicate(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRegistry(Config{Metrics: reg})
	k := testKey("RCF", 0)

	const n = 8
	got := make(chan *Session, n)
	for i := 0; i < n; i++ {
		go func() {
			s, err := r.Session(context.Background(), k)
			if err != nil {
				t.Error(err)
			}
			got <- s
		}()
	}
	first := <-got
	for i := 1; i < n; i++ {
		if s := <-got; s != first {
			t.Fatal("concurrent requests produced distinct sessions")
		}
	}
	if got := counter(reg, "session_misses_total"); got != 1 {
		t.Errorf("misses = %d, want 1 (single-flight)", got)
	}
}

// A canceled build must not poison the key: the next request rebuilds.
func TestCanceledBuildDoesNotPoisonKey(t *testing.T) {
	r := NewRegistry(Config{})
	k := testKey("RCF", 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Session(ctx, k); err == nil {
		t.Fatal("canceled build succeeded")
	}
	mustSession(t, r, k)
}
