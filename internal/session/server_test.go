package session

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/obs"

	"repro/internal/check"
)

// newTestServer returns a running API server over a fresh registry plus
// its metrics registry.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	srv := &Server{Registry: NewRegistry(cfg), Metrics: reg}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func postBatch(t *testing.T, ts *httptest.Server, req Request) (int, []RecordJSON, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, string(raw)
	}
	var recs []RecordJSON
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var rec RecordJSON
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("stream is not clean NDJSON: %v\n%s", err, raw)
		}
		recs = append(recs, rec)
	}
	return resp.StatusCode, recs, string(raw)
}

// A served batch must be byte-identical to the equivalent cfc-inject run —
// for every worker count, cold and warm.
func TestBatchMatchesCLIByteForByte(t *testing.T) {
	// The reference reports, computed the way cfc-inject does: a cold
	// inject.Config.Run per (seed, samples).
	p, err := core.Workload(testWorkload, testScale)
	if err != nil {
		t.Fatal(err)
	}
	style, err := core.ParseStyle("CMOVcc")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.ParsePolicy("ALLBB")
	if err != nil {
		t.Fatal(err)
	}
	tech, err := check.New("RCF", style)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{3, 5}
	want := map[int64]string{}
	for _, seed := range seeds {
		cfg := inject.Config{
			Technique: tech, Policy: pol,
			Samples: testSamples, Seed: seed,
			Options: inject.Options{Workers: 1, CkptInterval: -1},
		}
		rep, err := cfg.Run(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = inject.FormatNormalized(rep)
	}

	ts, _ := newTestServer(t, Config{})
	req := Request{
		Workload: testWorkload, Scale: testScale,
		Technique: "RCF", Style: "CMOVcc", Policy: "ALLBB",
		CkptInterval: -1,
	}
	for _, c := range seeds {
		req.Campaigns = append(req.Campaigns, SpecJSON{Seed: c, Samples: testSamples})
	}

	// normalize strips the only legitimately varying fields so streams
	// compare byte for byte across worker counts and cache temperature.
	normalize := func(recs []RecordJSON) string {
		var b strings.Builder
		for _, r := range recs {
			r.ElapsedSec, r.Workers = 0, 0
			out, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(out)
			b.WriteByte('\n')
		}
		return b.String()
	}

	var streams []string
	for _, workers := range []int{1, 4} {
		req.Workers = workers
		for _, temp := range []string{"cold", "warm"} {
			status, recs, raw := postBatch(t, ts, req)
			if status != http.StatusOK {
				t.Fatalf("workers=%d %s: status %d: %s", workers, temp, status, raw)
			}
			if len(recs) != len(seeds) {
				t.Fatalf("workers=%d %s: %d records, want %d", workers, temp, len(recs), len(seeds))
			}
			for i, rec := range recs {
				if rec.Error != "" {
					t.Fatalf("workers=%d %s: campaign %d failed: %s", workers, temp, i, rec.Error)
				}
				if rec.Seed != seeds[i] {
					t.Errorf("workers=%d %s: record %d has seed %d, want %d", workers, temp, i, rec.Seed, seeds[i])
				}
				if rec.Report != want[rec.Seed] {
					t.Errorf("workers=%d %s seed=%d: served report differs from CLI\n got: %s\nwant: %s",
						workers, temp, rec.Seed, rec.Report, want[rec.Seed])
				}
			}
			streams = append(streams, normalize(recs))
		}
	}
	for i := 1; i < len(streams); i++ {
		if streams[i] != streams[0] {
			t.Errorf("stream %d differs from stream 0 after normalization:\n%s\nvs\n%s",
				i, streams[i], streams[0])
		}
	}
}

// Malformed or out-of-range requests fail fast with 400 before any
// campaign runs.
func TestCampaignValidation(t *testing.T) {
	reg := obs.NewRegistry()
	srv := &Server{Registry: NewRegistry(Config{Metrics: reg}), Metrics: reg, Limits: Limits{MaxSamples: 100}}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ok := Request{
		Workload: testWorkload, Scale: testScale,
		Technique: "none", Style: "CMOVcc", Policy: "ALLBB",
		Campaigns: []SpecJSON{{Seed: 1, Samples: 10}},
	}
	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"missing workload", func(r *Request) { r.Workload = "" }},
		{"no campaigns", func(r *Request) { r.Campaigns = nil }},
		{"negative samples", func(r *Request) { r.Campaigns = []SpecJSON{{Seed: 1, Samples: -1}} }},
		{"samples over max", func(r *Request) { r.Campaigns = []SpecJSON{{Seed: 1, Samples: 101}} }},
		{"unknown workload", func(r *Request) { r.Workload = "999.nope" }},
		{"unknown technique", func(r *Request) { r.Technique = "bogus" }},
		{"unknown policy", func(r *Request) { r.Policy = "bogus" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := ok
			tc.mutate(&req)
			status, _, body := postBatch(t, ts, req)
			if status != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (%s)", status, body)
			}
		})
	}

	t.Run("unknown field", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
			strings.NewReader(`{"workload":"164.gzip","bogus_field":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("valid request still accepted", func(t *testing.T) {
		status, recs, body := postBatch(t, ts, ok)
		if status != http.StatusOK || len(recs) != 1 || recs[0].Error != "" {
			t.Errorf("status %d records %v: %s", status, recs, body)
		}
	})
}

// The inventory and observability endpoints reflect the served work.
func TestSessionsAndMetricsEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	req := Request{
		Workload: testWorkload, Scale: testScale,
		Technique: "RCF", Style: "CMOVcc", Policy: "ALLBB",
		CkptInterval: -1,
		Campaigns:    []SpecJSON{{Seed: 1, Samples: 10}, {Seed: 2, Samples: 10}},
	}
	if status, _, body := postBatch(t, ts, req); status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, body)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	status, body := get("/v1/sessions")
	if status != http.StatusOK {
		t.Fatalf("/v1/sessions: status %d", status)
	}
	var inv struct {
		Sessions []Info `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &inv); err != nil {
		t.Fatalf("/v1/sessions: %v\n%s", err, body)
	}
	if len(inv.Sessions) != 1 {
		t.Fatalf("/v1/sessions: %d sessions, want 1", len(inv.Sessions))
	}
	in := inv.Sessions[0]
	if in.Workload != testWorkload || in.Technique != "RCF" || in.Campaigns != 2 {
		t.Errorf("/v1/sessions: %+v", in)
	}
	if in.Points == 0 || in.CleanSteps == 0 {
		t.Errorf("/v1/sessions: missing checkpoint geometry: %+v", in)
	}

	status, body = get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	for _, series := range []string{"session_misses_total 1", "ckpt_disk_rerecords_total 1"} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics: missing %q in:\n%s", series, body)
		}
	}

	if status, body = get("/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", status, body)
	}

	if resp, err := http.Get(ts.URL + "/v1/campaigns"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/campaigns: status %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// A batch with progress_ms set interleaves progress frames with the
// records without corrupting the stream, and the ticker goroutine is
// joined before the handler returns — under -race this catches any
// write to the ResponseWriter after ServeHTTP. The 1ms interval makes a
// tick racing the final record (and the handler's return) likely.
func TestProgressStreamInterleavesCleanly(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	req := Request{
		Workload: testWorkload, Scale: testScale,
		Technique: "RCF", Style: "CMOVcc", Policy: "ALLBB",
		CkptInterval: -1,
		Workers:      2,
		ProgressMs:   1,
		Campaigns:    []SpecJSON{{Seed: 1, Samples: testSamples}, {Seed: 2, Samples: testSamples}},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var frames int
	for run := 0; run < 8; run++ {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", run, resp.StatusCode, raw)
		}
		// Every line is either a progress frame (single "progress" key) or
		// a record; any torn/interleaved write shows up as a decode error.
		dec := json.NewDecoder(bytes.NewReader(raw))
		var recs []RecordJSON
		for {
			var line map[string]json.RawMessage
			if err := dec.Decode(&line); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("run %d: stream is not clean NDJSON: %v\n%s", run, err, raw)
			}
			if p, ok := line["progress"]; ok {
				frames++
				var pj ProgressJSON
				if err := json.Unmarshal(p, &pj); err != nil {
					t.Fatalf("run %d: bad progress frame: %v\n%s", run, err, p)
				}
				if pj.Campaigns != 2 {
					t.Errorf("run %d: progress frame for %d campaigns, want 2", run, pj.Campaigns)
				}
				continue
			}
			var rec RecordJSON
			full, _ := json.Marshal(line)
			if err := json.Unmarshal(full, &rec); err != nil {
				t.Fatalf("run %d: bad record: %v\n%s", run, err, full)
			}
			recs = append(recs, rec)
		}
		if len(recs) != 2 || recs[0].Error != "" || recs[1].Error != "" {
			t.Fatalf("run %d: records %+v, want 2 clean records", run, recs)
		}
	}
	if frames == 0 {
		t.Errorf("no progress frames across any run; the ticker path never executed")
	}
}

// A failing campaign mid-batch ends the stream with an error record; the
// earlier records still arrive.
func TestBatchStopsAtFirstError(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	req := Request{
		Workload: testWorkload, Scale: testScale,
		Technique: "none", Style: "CMOVcc", Policy: "ALLBB",
		Campaigns: []SpecJSON{{Seed: 1, Samples: 5}, {Seed: 2, Samples: 5}, {Seed: 3, Samples: 5}},
	}
	// Cancel the request context after the first record arrives by closing
	// the response body early — the stream just ends; nothing hangs. The
	// cheap proxy for "stream aborts cleanly" without manufacturing an
	// engine failure.
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The server survives the aborted client and serves the next batch.
	if status, recs, raw := postBatch(t, ts, req); status != http.StatusOK || len(recs) != 3 {
		t.Fatalf("after aborted client: status %d, %d records: %s", status, len(recs), raw)
	}
}
