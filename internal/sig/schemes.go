package sig

// This file expresses each published technique as a Scheme in the Section 4
// framework. Instruction-level details (register choices, lea vs xor, Jcc vs
// CMOVcc) live in internal/check; here only the signature algebra matters.

// EdgCF is the paper's Edge Control-Flow checking scheme:
//
//	GEN_SIG(x, y, z)  = x - y + z
//	CHECK_SIG(x, y)   = (x == y)
//
// with head nodes represented by their unique block address and tail nodes
// by 0. The paper proves this satisfies both the sufficient and the
// necessary condition (Claim 1); Verify re-establishes that exhaustively.
type EdgCF struct{}

// Name implements Scheme.
func (EdgCF) Name() string { return "EdgCF" }

// Init implements Scheme: S0 = B0.
func (EdgCF) Init(sg *SplitGraph) State { return State{G: sigOf(sg.Nodes[sg.Entry])} }

// HasEntryCheck implements Scheme: checks sit at tail entries (the
// instructions "cmp PC',0; jnz .report_error" at the beginning of each
// block's original code).
func (EdgCF) HasEntryCheck(sg *SplitGraph, n int) bool { return !sg.Nodes[n].IsHead }

// Enter implements Scheme.
func (e EdgCF) Enter(sg *SplitGraph, s State, n int) (State, bool) {
	if !e.HasEntryCheck(sg, n) {
		return s, true
	}
	return s, s.G == sigOf(sg.Nodes[n])
}

// Gen implements Scheme: every node updates PC' at its exit.
func (EdgCF) Gen(sg *SplitGraph, s State, n, logicalTarget int) State {
	s.G = s.G - sigOf(sg.Nodes[n]) + sigOf(sg.Nodes[logicalTarget])
	return s
}

// EdgCFXor is the xor form of the EdgCF algebra, GEN_SIG(x,y,z) = x^y^z —
// the formulation the paper proves correct in formula (4) before switching
// to the x-y+z form to sidestep IA32's EFLAGS (Section 4.4: "another
// similar choice is GEN_SIG(x,y,z) = x - y + z, which also satisfies both
// the sufficient and necessary condition; in real implementation we
// actually use this function"). Both must verify identically.
type EdgCFXor struct{}

// Name implements Scheme.
func (EdgCFXor) Name() string { return "EdgCF-xor" }

// Init implements Scheme.
func (EdgCFXor) Init(sg *SplitGraph) State { return State{G: sigOf(sg.Nodes[sg.Entry])} }

// HasEntryCheck implements Scheme.
func (EdgCFXor) HasEntryCheck(sg *SplitGraph, n int) bool { return !sg.Nodes[n].IsHead }

// Enter implements Scheme.
func (e EdgCFXor) Enter(sg *SplitGraph, s State, n int) (State, bool) {
	if !e.HasEntryCheck(sg, n) {
		return s, true
	}
	return s, s.G == sigOf(sg.Nodes[n])
}

// Gen implements Scheme: GEN_SIG(x,y,z) = x ^ y ^ z.
func (EdgCFXor) Gen(sg *SplitGraph, s State, n, logicalTarget int) State {
	s.G = s.G ^ sigOf(sg.Nodes[n]) ^ sigOf(sg.Nodes[logicalTarget])
	return s
}

// RCF shares EdgCF's signature algebra at block granularity; its additional
// value — protecting the instrumentation's own inserted branch instructions
// by giving each a region signature — is below this model's abstraction
// level and is evaluated empirically by the fault-injection campaigns.
type RCF struct{ EdgCF }

// Name implements Scheme.
func (RCF) Name() string { return "RCF" }

// ECF is Reis et al.'s enhanced control-flow checking (SWIFT): PC' holds
// the current block signature, RTS (the run-time adjusting signature, state
// word D) is set at each block exit to sig(cur) XOR sig(next) by a
// conditional move that duplicates the branch condition.
type ECF struct{}

// Name implements Scheme.
func (ECF) Name() string { return "ECF" }

// Init implements Scheme.
func (ECF) Init(sg *SplitGraph) State {
	return State{G: blockSig(sg.Nodes[sg.Entry].Block), D: 0}
}

// HasEntryCheck implements Scheme: like EdgCF, the check ("cmp PC', L0")
// sits at the tail entry.
func (ECF) HasEntryCheck(sg *SplitGraph, n int) bool { return !sg.Nodes[n].IsHead }

// Enter implements Scheme.
func (e ECF) Enter(sg *SplitGraph, s State, n int) (State, bool) {
	if !e.HasEntryCheck(sg, n) {
		return s, true
	}
	return s, s.G == blockSig(sg.Nodes[n].Block)
}

// Gen implements Scheme. At a head exit the instrumentation folds RTS into
// PC' ("xor PC', RTS"); at a tail exit it selects the RTS constant for the
// taken direction ("mov RTS, L0_to_L1 / cmovle RTS, L0_to_L2").
func (ECF) Gen(sg *SplitGraph, s State, n, logicalTarget int) State {
	node := sg.Nodes[n]
	if node.IsHead {
		s.G ^= s.D
		return s
	}
	s.D = blockSig(node.Block) ^ blockSig(sg.Nodes[logicalTarget].Block)
	return s
}

// CFCSS is Oh, Shirvani and McCluskey's control-flow checking by software
// signatures: G is xor-updated with a per-block constant d(B) at block entry
// and compared with the block's static signature. CFCSS requires all
// predecessors of a fan-in block to carry the same signature, which forces
// signature aliasing; NewCFCSS computes that aliased assignment for the
// given graph. The scheme's documented blind spots — category A (successors
// cannot tell a mistaken branch), category C (no mid-block update), and
// category D/E when wrong and correct targets alias — all fall out of the
// model checker.
type CFCSS struct {
	sigs  []uint64 // per-block signature, aliased across fan-in predecessors
	dOf   []uint64 // d(B) = sig(basePred(B)) XOR sig(B)
	initG uint64   // sig(entry) XOR d(entry): the state of a virtual pre-entry edge
}

// NewCFCSS builds the CFCSS signature assignment for g: predecessors that
// share a successor are forced into one signature class (union-find), then
// each class gets a distinct signature.
func NewCFCSS(g *Graph) *CFCSS {
	n := g.NumBlocks()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	preds := make([][]int, n)
	for b, ss := range g.Succs {
		for _, s := range ss {
			preds[s] = append(preds[s], b)
		}
	}
	for _, ps := range preds {
		for i := 1; i < len(ps); i++ {
			union(ps[0], ps[i])
		}
	}
	sigs := make([]uint64, n)
	class := map[int]uint64{}
	for b := 0; b < n; b++ {
		root := find(b)
		if _, ok := class[root]; !ok {
			class[root] = uint64(len(class)) + 1
		}
		sigs[b] = class[root]
	}
	dOf := make([]uint64, n)
	for b := 0; b < n; b++ {
		if len(preds[b]) > 0 {
			dOf[b] = sigs[preds[b][0]] ^ sigs[b]
		}
	}
	return &CFCSS{sigs: sigs, dOf: dOf, initG: sigs[0] ^ dOf[0]}
}

// Name implements Scheme.
func (*CFCSS) Name() string { return "CFCSS" }

// Init implements Scheme: the initial G is chosen so the entry block's own
// xor-update lands on the entry signature, which keeps loop-backs to the
// entry block consistent.
func (c *CFCSS) Init(sg *SplitGraph) State { return State{G: c.initG} }

// HasEntryCheck implements Scheme: CFCSS instruments block entries (heads);
// there is no mid-block or exit instrumentation.
func (*CFCSS) HasEntryCheck(sg *SplitGraph, n int) bool { return sg.Nodes[n].IsHead }

// Enter implements Scheme: G ^= d(B), then compare with sig(B).
func (c *CFCSS) Enter(sg *SplitGraph, s State, n int) (State, bool) {
	node := sg.Nodes[n]
	if !node.IsHead {
		return s, true
	}
	s.G ^= c.dOf[node.Block]
	return s, s.G == c.sigs[node.Block]
}

// Gen implements Scheme: CFCSS generates no signature at exits; the state
// carries the current block's signature forward unchanged.
func (*CFCSS) Gen(sg *SplitGraph, s State, n, logicalTarget int) State { return s }

// ECCA is Alkhalifa et al.'s Enhanced Control-flow Checking using
// Assertions: each block holds a unique id; the entry assertion divides by a
// value that is zero unless the arriving id belongs to a legal predecessor,
// and the exit assignment sets the id unconditionally. Abstractly: the
// entry check accepts any predecessor's id (hence category A escapes), and
// only block entries are instrumented (hence categories C and E escape).
type ECCA struct {
	legalPred [][]uint64 // per block: the G values accepted by the assertion
}

// NewECCA builds the ECCA assertion tables for g.
func NewECCA(g *Graph) *ECCA {
	n := g.NumBlocks()
	e := &ECCA{legalPred: make([][]uint64, n)}
	for b, ss := range g.Succs {
		for _, s := range ss {
			e.legalPred[s] = append(e.legalPred[s], blockSig(BlockID(b)))
		}
	}
	return e
}

// Name implements Scheme.
func (*ECCA) Name() string { return "ECCA" }

// Init implements Scheme.
func (*ECCA) Init(sg *SplitGraph) State {
	return State{G: blockSig(sg.Nodes[sg.Entry].Block)}
}

// HasEntryCheck implements Scheme.
func (*ECCA) HasEntryCheck(sg *SplitGraph, n int) bool { return sg.Nodes[n].IsHead }

// Enter implements Scheme: the BID assertion, then the id assignment.
func (e *ECCA) Enter(sg *SplitGraph, s State, n int) (State, bool) {
	node := sg.Nodes[n]
	if !node.IsHead {
		return s, true
	}
	if n == sg.Entry && s.G == blockSig(node.Block) {
		return s, true
	}
	for _, p := range e.legalPred[node.Block] {
		if s.G == p {
			s.G = blockSig(node.Block)
			return s, true
		}
	}
	return s, false
}

// Gen implements Scheme: the end-of-block assignment re-materializes the
// current block's id (the NEXT product in the concrete technique).
func (*ECCA) Gen(sg *SplitGraph, s State, n, logicalTarget int) State {
	node := sg.Nodes[n]
	if !node.IsHead {
		s.G = blockSig(node.Block)
	}
	return s
}

// NullScheme performs no checking at all; it trivially satisfies the
// necessary condition and fails the sufficient one. Used to validate the
// verifier itself.
type NullScheme struct{}

// Name implements Scheme.
func (NullScheme) Name() string { return "null" }

// Init implements Scheme.
func (NullScheme) Init(*SplitGraph) State { return State{} }

// HasEntryCheck implements Scheme. The verifier requires at least one
// check to ever execute for an error to count as missed (Assumption 2), so
// the null scheme claims a check at every tail that always passes.
func (NullScheme) HasEntryCheck(sg *SplitGraph, n int) bool { return !sg.Nodes[n].IsHead }

// Enter implements Scheme.
func (NullScheme) Enter(sg *SplitGraph, s State, n int) (State, bool) { return s, true }

// Gen implements Scheme.
func (NullScheme) Gen(sg *SplitGraph, s State, n, logicalTarget int) State { return s }
